// Command loadgen is the closed-loop load generator for cmd/serve and
// cmd/gateway: it replays synthetic corpus programs against one or more
// classify endpoints at a target RPS (or flat out) and reports achieved
// throughput plus p50/p95/p99 latency, broken down per target.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8377 -conc 8 -duration 10s -rps 500
//	loadgen -targets http://127.0.0.1:8377,http://127.0.0.1:8380 -requests 100 -json
//	loadgen -addr http://GW -duration 6s -chaos "at=2s,url=http://REPLICA,mode=kill"
//
// -endpoint selects which API the run exercises: classify (default) or
// similar, which drives POST /v1/similar on an index-loaded target.
// -targets spreads requests round-robin over several endpoints (direct
// replica baselines); -addr remains the single-endpoint form. -chaos
// drives replica fault injection mid-run: a semicolon-separated list of
// events, each `at=DUR,mode=MODE[,target=IDX|url=URL][,delay=DUR][,every=N]`,
// POSTed to the victim's /chaosz (the replica must run with -chaos).
// Modes: kill (crash the replica), slow (handler delay), infer
// (serialized engine delay), blackhole, error (every Nth request 500s),
// clear.
//
// Exit status is non-zero when any request failed (transport error or
// non-200), unless -tolerate-errors is set — overload runs expect 429s.
// -strict narrows the failure condition to transport errors and 5xx
// (shed 4xx load passes), giving smoke scripts a machine-checkable
// "zero dropped requests" assertion without report grepping.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"advmal/internal/serve"
	"advmal/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// targetReport is one endpoint's share of the run.
type targetReport struct {
	URL         string               `json:"url"`
	Requests    int                  `json:"requests"`
	OK          int                  `json:"ok"`
	Errors      int                  `json:"errors"`
	ByStatus    map[string]int       `json:"by_status"`
	AchievedRPS float64              `json:"achieved_rps"`
	Latency     serve.LatencySummary `json:"latency"`
}

// report is the machine-readable run summary (-json).
type report struct {
	Requests    int                  `json:"requests"`
	OK          int                  `json:"ok"`
	Errors      int                  `json:"errors"`
	ByStatus    map[string]int       `json:"by_status"`
	DurationSec float64              `json:"duration_sec"`
	AchievedRPS float64              `json:"achieved_rps"`
	Latency     serve.LatencySummary `json:"latency"`
	Targets     []targetReport       `json:"targets,omitempty"`
	ChaosEvents []string             `json:"chaos_events,omitempty"`
	FirstError  string               `json:"first_error,omitempty"`
}

func run() error {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8377", "server base URL (single-target form)")
		targets  = flag.String("targets", "", "comma-separated base URLs; requests round-robin across them (overrides -addr)")
		rps      = flag.Float64("rps", 0, "target request rate (0 = closed loop, as fast as the server answers)")
		conc     = flag.Int("conc", 8, "concurrent client connections")
		duration = flag.Duration("duration", 10*time.Second, "run length (ignored when -requests > 0)")
		requests = flag.Int("requests", 0, "total request budget (0 = run for -duration)")
		programs = flag.Int("programs", 32, "distinct synthetic programs to replay")
		seed     = flag.Int64("seed", 1, "program-generation seed")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request client timeout")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		tolerate = flag.Bool("tolerate-errors", false, "exit 0 even when requests failed (overload runs)")
		strict   = flag.Bool("strict", false, "exit non-zero iff any request saw a transport error or 5xx; 4xx (shed load) is tolerated — smoke scripts use this instead of grepping reports")
		endpoint = flag.String("endpoint", "classify", "endpoint to exercise: classify (POST /v1/classify) or similar (POST /v1/similar — target must be started with an index)")
		chaos    = flag.String("chaos", "", "fault schedule: 'at=DUR,mode=MODE[,target=IDX|url=URL][,delay=DUR][,every=N];...'")
	)
	flag.Parse()

	var path string
	switch *endpoint {
	case "classify":
		path = "/v1/classify"
	case "similar":
		path = "/v1/similar"
	default:
		return fmt.Errorf("-endpoint %q: want classify or similar", *endpoint)
	}

	urls := []string{strings.TrimRight(*addr, "/")}
	if *targets != "" {
		urls = urls[:0]
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				urls = append(urls, strings.TrimRight(t, "/"))
			}
		}
		if len(urls) == 0 {
			return fmt.Errorf("-targets is empty")
		}
	}
	events, err := parseChaos(*chaos, urls)
	if err != nil {
		return err
	}

	bodies, err := corpus(*programs, *seed)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: *timeout}

	// Pacing: a paced run feeds tokens at the target rate into a small
	// bucket (burst = conc); a closed-loop run hands out tokens freely.
	var tokens chan struct{}
	stopPacer := make(chan struct{})
	if *rps > 0 {
		tokens = make(chan struct{}, *conc)
		interval := time.Duration(float64(time.Second) / *rps)
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default: // bucket full; shed the token
					}
				case <-stopPacer:
					return
				}
			}
		}()
	}

	// Per-target accounting, folded into the global report at the end.
	type bucket struct {
		lats     []time.Duration
		byStatus map[string]int
		ok, errs int
	}
	var (
		next    atomic.Int64 // round-robin program index and request budget
		mu      sync.Mutex
		buckets = make([]bucket, len(urls))

		// First hard failure's body, so a -strict run says what went
		// wrong instead of just which status code did.
		failMu    sync.Mutex
		firstFail string
	)
	noteFail := func(desc string) {
		failMu.Lock()
		if firstFail == "" {
			firstFail = desc
		}
		failMu.Unlock()
	}
	for i := range buckets {
		buckets[i].byStatus = map[string]int{}
	}
	record := func(target int, lat time.Duration, status string, ok bool) {
		mu.Lock()
		defer mu.Unlock()
		b := &buckets[target]
		b.lats = append(b.lats, lat)
		b.byStatus[status]++
		if ok {
			b.ok++
		} else {
			b.errs++
		}
	}

	// Chaos events fire on their own clock, concurrent with the load.
	fired := launchChaos(events, client)

	deadline := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1)
				if *requests > 0 && n > int64(*requests) {
					return
				}
				if *requests == 0 && time.Now().After(deadline) {
					return
				}
				if tokens != nil {
					<-tokens
				}
				target := int(n-1) % len(urls)
				body := bodies[int(n-1)%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(urls[target]+path, "text/plain", strings.NewReader(body))
				lat := time.Since(t0)
				if err != nil {
					record(target, lat, "transport_error", false)
					noteFail(fmt.Sprintf("%s%s: transport error: %v", urls[target], path, err))
					continue
				}
				if resp.StatusCode != http.StatusOK {
					// Keep the first failing body for the report; the rest
					// are drained unread.
					msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
					noteFail(fmt.Sprintf("%s%s: HTTP %d: %s",
						urls[target], path, resp.StatusCode, strings.TrimSpace(string(msg))))
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				record(target, lat, fmt.Sprintf("%d", resp.StatusCode), resp.StatusCode == http.StatusOK)
			}
		}()
	}
	wg.Wait()
	close(stopPacer)
	elapsed := time.Since(start)

	rep := report{
		ByStatus:    map[string]int{},
		DurationSec: elapsed.Seconds(),
		ChaosEvents: fired(),
		FirstError:  firstFail,
	}
	var allLats []time.Duration
	for i, u := range urls {
		b := &buckets[i]
		tr := targetReport{
			URL:         u,
			Requests:    b.ok + b.errs,
			OK:          b.ok,
			Errors:      b.errs,
			ByStatus:    b.byStatus,
			AchievedRPS: float64(b.ok+b.errs) / elapsed.Seconds(),
			Latency:     serve.Summarize(b.lats),
		}
		rep.Targets = append(rep.Targets, tr)
		rep.OK += b.ok
		rep.Errors += b.errs
		for k, v := range b.byStatus {
			rep.ByStatus[k] += v
		}
		allLats = append(allLats, b.lats...)
	}
	rep.Requests = rep.OK + rep.Errors
	rep.AchievedRPS = float64(rep.Requests) / elapsed.Seconds()
	rep.Latency = serve.Summarize(allLats)
	if len(urls) == 1 {
		rep.Targets = nil // single-target runs keep the old report shape
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Printf("loadgen: %d requests in %.2fs — %.1f req/s achieved\n",
			rep.Requests, rep.DurationSec, rep.AchievedRPS)
		fmt.Printf("loadgen: ok=%d errors=%d by-status=%v\n", rep.OK, rep.Errors, rep.ByStatus)
		fmt.Printf("loadgen: latency %s\n", rep.Latency)
		for _, tr := range rep.Targets {
			fmt.Printf("loadgen:   %s — %.1f req/s ok=%d errors=%d %s\n",
				tr.URL, tr.AchievedRPS, tr.OK, tr.Errors, tr.Latency)
		}
		for _, ev := range rep.ChaosEvents {
			fmt.Printf("loadgen: chaos %s\n", ev)
		}
		if rep.FirstError != "" {
			fmt.Printf("loadgen: first failure: %s\n", rep.FirstError)
		}
	}
	if *strict {
		// Strict mode cares about server failures only: transport errors
		// and 5xx fail the run, 4xx (deliberately shed or rejected load)
		// does not. Scripts assert "zero dropped requests" through this
		// exit status instead of parsing the report.
		hard := 0
		for status, n := range rep.ByStatus {
			if status == "transport_error" || (len(status) == 3 && status[0] == '5') {
				hard += n
			}
		}
		if hard > 0 {
			return fmt.Errorf("strict: %d of %d requests hit transport errors or 5xx (by-status %v; first: %s)",
				hard, rep.Requests, rep.ByStatus, rep.FirstError)
		}
	} else if rep.Errors > 0 && !*tolerate {
		return fmt.Errorf("%d of %d requests failed", rep.Errors, rep.Requests)
	}
	if rep.Requests == 0 {
		return fmt.Errorf("no requests issued")
	}
	return nil
}

// chaosEvent is one scheduled fault.
type chaosEvent struct {
	at   time.Duration
	url  string // victim base URL
	mode string
	body []byte // /chaosz payload
}

// parseChaos parses the -chaos schedule. Victims are named by url= or by
// target= (an index into the -targets list).
func parseChaos(spec string, urls []string) ([]chaosEvent, error) {
	if spec == "" {
		return nil, nil
	}
	var events []chaosEvent
	for _, raw := range strings.Split(spec, ";") {
		if raw = strings.TrimSpace(raw); raw == "" {
			continue
		}
		ev := chaosEvent{url: urls[0]}
		delay := 50 * time.Millisecond
		every := 2
		for _, kv := range strings.Split(raw, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("chaos: bad field %q in %q", kv, raw)
			}
			switch k {
			case "at":
				d, err := time.ParseDuration(v)
				if err != nil {
					return nil, fmt.Errorf("chaos: at: %w", err)
				}
				ev.at = d
			case "mode":
				ev.mode = v
			case "target":
				var idx int
				if _, err := fmt.Sscanf(v, "%d", &idx); err != nil || idx < 0 || idx >= len(urls) {
					return nil, fmt.Errorf("chaos: target %q out of range [0,%d)", v, len(urls))
				}
				ev.url = urls[idx]
			case "url":
				ev.url = strings.TrimRight(v, "/")
			case "delay":
				d, err := time.ParseDuration(v)
				if err != nil {
					return nil, fmt.Errorf("chaos: delay: %w", err)
				}
				delay = d
			case "every":
				if _, err := fmt.Sscanf(v, "%d", &every); err != nil {
					return nil, fmt.Errorf("chaos: every: %w", err)
				}
			default:
				return nil, fmt.Errorf("chaos: unknown field %q in %q", k, raw)
			}
		}
		ms := int(delay / time.Millisecond)
		tru := true
		var req struct {
			Clear      bool  `json:"clear,omitempty"`
			SlowMs     *int  `json:"slow_ms,omitempty"`
			InferMs    *int  `json:"infer_ms,omitempty"`
			ErrorEvery *int  `json:"error_every,omitempty"`
			Blackhole  *bool `json:"blackhole,omitempty"`
			Die        bool  `json:"die,omitempty"`
		}
		switch ev.mode {
		case "kill":
			req.Die = true
		case "slow":
			req.SlowMs = &ms
		case "infer":
			req.InferMs = &ms
		case "blackhole":
			req.Blackhole = &tru
		case "error":
			req.ErrorEvery = &every
		case "clear":
			req.Clear = true
		default:
			return nil, fmt.Errorf("chaos: unknown mode %q (want kill, slow, infer, blackhole, error, clear)", ev.mode)
		}
		body, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		ev.body = body
		events = append(events, ev)
	}
	return events, nil
}

// launchChaos schedules the events and returns a function that, called
// after the load finishes, reports what fired.
func launchChaos(events []chaosEvent, client *http.Client) func() []string {
	if len(events) == 0 {
		return func() []string { return nil }
	}
	var (
		mu    sync.Mutex
		fired []string
		wg    sync.WaitGroup
	)
	start := time.Now()
	for _, ev := range events {
		wg.Add(1)
		go func(ev chaosEvent) {
			defer wg.Done()
			time.Sleep(time.Until(start.Add(ev.at)))
			resp, err := client.Post(ev.url+"/chaosz", "application/json", bytes.NewReader(ev.body))
			status := "ok"
			if err != nil {
				// A kill victim may die before the response flushes.
				status = "send-failed: " + err.Error()
			} else {
				if resp.StatusCode != http.StatusOK {
					status = fmt.Sprintf("status %d", resp.StatusCode)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			mu.Lock()
			fired = append(fired, fmt.Sprintf("%s %s at %v: %s", ev.mode, ev.url, ev.at, status))
			mu.Unlock()
		}(ev)
	}
	return func() []string {
		wg.Wait()
		mu.Lock()
		defer mu.Unlock()
		return fired
	}
}

// corpus renders n synthetic programs (half benign, half malware) to
// assembly text.
func corpus(n int, seed int64) ([]string, error) {
	if n <= 0 {
		n = 1
	}
	samples, err := synth.Generate(synth.Config{Seed: seed, NumBenign: (n + 1) / 2, NumMal: n / 2})
	if err != nil {
		return nil, err
	}
	bodies := make([]string, len(samples))
	for i, s := range samples {
		bodies[i] = s.Prog.String()
	}
	return bodies, nil
}
