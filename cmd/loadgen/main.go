// Command loadgen is the closed-loop load generator for cmd/serve: it
// replays synthetic corpus programs against the classify endpoint at a
// target RPS (or flat out) and reports achieved throughput plus
// p50/p95/p99 latency.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8377 -conc 8 -duration 10s -rps 500
//	loadgen -addr http://127.0.0.1:8377 -requests 100 -json
//
// Exit status is non-zero when any request failed (transport error or
// non-200), unless -tolerate-errors is set — overload runs expect 429s.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"advmal/internal/serve"
	"advmal/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// report is the machine-readable run summary (-json).
type report struct {
	Requests    int                  `json:"requests"`
	OK          int                  `json:"ok"`
	Errors      int                  `json:"errors"`
	ByStatus    map[string]int       `json:"by_status"`
	DurationSec float64              `json:"duration_sec"`
	AchievedRPS float64              `json:"achieved_rps"`
	Latency     serve.LatencySummary `json:"latency"`
}

func run() error {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8377", "server base URL")
		rps      = flag.Float64("rps", 0, "target request rate (0 = closed loop, as fast as the server answers)")
		conc     = flag.Int("conc", 8, "concurrent client connections")
		duration = flag.Duration("duration", 10*time.Second, "run length (ignored when -requests > 0)")
		requests = flag.Int("requests", 0, "total request budget (0 = run for -duration)")
		programs = flag.Int("programs", 32, "distinct synthetic programs to replay")
		seed     = flag.Int64("seed", 1, "program-generation seed")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request client timeout")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		tolerate = flag.Bool("tolerate-errors", false, "exit 0 even when requests failed (overload runs)")
	)
	flag.Parse()

	bodies, err := corpus(*programs, *seed)
	if err != nil {
		return err
	}
	url := strings.TrimRight(*addr, "/") + "/v1/classify"
	client := &http.Client{Timeout: *timeout}

	// Pacing: a paced run feeds tokens at the target rate into a small
	// bucket (burst = conc); a closed-loop run hands out tokens freely.
	var tokens chan struct{}
	stopPacer := make(chan struct{})
	if *rps > 0 {
		tokens = make(chan struct{}, *conc)
		interval := time.Duration(float64(time.Second) / *rps)
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default: // bucket full; shed the token
					}
				case <-stopPacer:
					return
				}
			}
		}()
	}

	var (
		next     atomic.Int64 // round-robin program index and request budget
		mu       sync.Mutex
		lats     []time.Duration
		byStatus = map[string]int{}
		okCount  int
		errCount int
	)
	deadline := time.Now().Add(*duration)
	record := func(lat time.Duration, status string, ok bool) {
		mu.Lock()
		defer mu.Unlock()
		lats = append(lats, lat)
		byStatus[status]++
		if ok {
			okCount++
		} else {
			errCount++
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1)
				if *requests > 0 && n > int64(*requests) {
					return
				}
				if *requests == 0 && time.Now().After(deadline) {
					return
				}
				if tokens != nil {
					<-tokens
				}
				body := bodies[int(n-1)%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(url, "text/plain", strings.NewReader(body))
				lat := time.Since(t0)
				if err != nil {
					record(lat, "transport_error", false)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				record(lat, fmt.Sprintf("%d", resp.StatusCode), resp.StatusCode == http.StatusOK)
			}
		}()
	}
	wg.Wait()
	close(stopPacer)
	elapsed := time.Since(start)

	rep := report{
		Requests:    okCount + errCount,
		OK:          okCount,
		Errors:      errCount,
		ByStatus:    byStatus,
		DurationSec: elapsed.Seconds(),
		AchievedRPS: float64(okCount+errCount) / elapsed.Seconds(),
		Latency:     serve.Summarize(lats),
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Printf("loadgen: %d requests in %.2fs — %.1f req/s achieved\n",
			rep.Requests, rep.DurationSec, rep.AchievedRPS)
		fmt.Printf("loadgen: ok=%d errors=%d by-status=%v\n", rep.OK, rep.Errors, rep.ByStatus)
		fmt.Printf("loadgen: latency %s\n", rep.Latency)
	}
	if rep.Errors > 0 && !*tolerate {
		return fmt.Errorf("%d of %d requests failed", rep.Errors, rep.Requests)
	}
	if rep.Requests == 0 {
		return fmt.Errorf("no requests issued")
	}
	return nil
}

// corpus renders n synthetic programs (half benign, half malware) to
// assembly text.
func corpus(n int, seed int64) ([]string, error) {
	if n <= 0 {
		n = 1
	}
	samples, err := synth.Generate(synth.Config{Seed: seed, NumBenign: (n + 1) / 2, NumMal: n / 2})
	if err != nil {
		return nil, err
	}
	bodies := make([]string, len(samples))
	for i, s := range samples {
		bodies[i] = s.Prog.String()
	}
	return bodies, nil
}
