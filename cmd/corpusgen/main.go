// Command corpusgen generates the synthetic IoT software corpus (Table I)
// and optionally writes it as JSON plus a CSV feature matrix.
//
// Usage:
//
//	corpusgen [-seed N] [-benign N] [-malware N] [-out corpus.json] [-csv features.csv]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"advmal/internal/dataset"
	"advmal/internal/report"
	"advmal/internal/synth"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "corpusgen: interrupted — generation cancelled cleanly, partial progress above")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		seed    = flag.Int64("seed", 1, "generation seed")
		benign  = flag.Int("benign", 276, "number of benign samples (Table I: 276)")
		malware = flag.Int("malware", 2281, "number of malicious samples (Table I: 2281)")
		out     = flag.String("out", "", "write the corpus as JSON to this file")
		csvOut  = flag.String("csv", "", "write the 23-feature matrix as CSV to this file")
	)
	flag.Parse()

	samples, err := synth.Generate(synth.Config{Seed: *seed, NumBenign: *benign, NumMal: *malware})
	if err != nil {
		return err
	}
	total := len(samples)
	t := report.New("TABLE I: DISTRIBUTION OF IOT SAMPLES ACROSS THE CLASSES",
		"Class types", "# of Samples", "% of Samples")
	t.Add("Benign", *benign, report.Pct(float64(*benign)/float64(total))+"%")
	t.Add("Malicious", *malware, report.Pct(float64(*malware)/float64(total))+"%")
	t.Add("Total", total, "100%")
	fmt.Print(t.String())

	fam := report.New("Family breakdown", "Family", "# of Samples", "Median nodes")
	for _, f := range append([]synth.Family{synth.Benign}, synth.MalwareFamilies()...) {
		var nodes []int
		for _, s := range samples {
			if s.Family == f {
				nodes = append(nodes, s.Nodes)
			}
		}
		if len(nodes) == 0 {
			continue
		}
		med := median(nodes)
		fam.Add(f.String(), len(nodes), med)
	}
	fmt.Print(fam.String())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dataset.SaveSamples(f, samples); err != nil {
			return err
		}
		fmt.Println("corpus written to", *out)
	}
	if *csvOut != "" {
		ds, skips, err := dataset.FromSamplesCtx(ctx, samples, dataset.Options{SkipBad: true})
		if err != nil {
			return err
		}
		if skips.Count() > 0 {
			fmt.Fprintf(os.Stderr, "corpusgen: %s\n", skips)
		}
		f, err := os.Create(*csvOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := ds.SaveCSV(f); err != nil {
			return err
		}
		fmt.Println("features written to", *csvOut)
	}
	return nil
}

func median(xs []int) int {
	sorted := append([]int(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
