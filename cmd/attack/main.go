// Command attack trains the detector and evaluates the eight generic
// adversarial attacks, printing Table III (MR, Avg.FG, CT).
//
// Usage:
//
//	attack [-seed N] [-epochs N] [-benign N] [-malware N] [-max N] [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"advmal/internal/attacks"
	"advmal/internal/core"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "attack: interrupted — pipeline cancelled cleanly, partial progress above")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "attack:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		seed       = flag.Int64("seed", 1, "pipeline seed")
		epochs     = flag.Int("epochs", 200, "training epochs")
		benign     = flag.Int("benign", 276, "benign corpus size")
		malware    = flag.Int("malware", 2281, "malicious corpus size")
		maxSamples = flag.Int("max", 0, "cap attacked samples per method (0 = all correctly classified)")
		families   = flag.Bool("families", false, "train the multi-class family head and evaluate the eight attacks as source->target family misclassification (untargeted + targeted) instead of Table III")
		verbose    = flag.Bool("v", false, "print per-epoch training progress")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Epochs = *epochs
	cfg.NumBenign = *benign
	cfg.NumMal = *malware
	if *families {
		cfg.Classes = core.NumFamilyClasses
	}
	if *verbose {
		cfg.Verbose = os.Stderr
	}
	sys := core.New(cfg)
	if err := sys.BuildCorpusCtx(ctx); err != nil {
		return err
	}
	if _, err := sys.FitCtx(ctx); err != nil {
		return err
	}
	m, err := sys.EvaluateTest()
	if err != nil {
		return err
	}
	fmt.Printf("detector: %v\n\n", m)

	if *families {
		fm, err := sys.EvaluateFamilyHead()
		if err != nil {
			return err
		}
		fmt.Printf("%s\ncollapsed binary operating point: %v\n\n", fm, fm.Collapse())
		fres, err := sys.RunFamilyAttacksCtx(ctx, attacks.Options{MaxSamples: *maxSamples})
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFamilyAttacks(fres))
		return nil
	}

	results, err := sys.RunTableIIICtx(ctx, attacks.Options{MaxSamples: *maxSamples})
	if err != nil {
		return err
	}
	fmt.Print(core.RenderTableIII(results))
	return nil
}
