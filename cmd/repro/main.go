// Command repro runs the paper's entire evaluation end-to-end — corpus
// (Table I), features (Table II), detector (§IV-C1, Fig. 5), the eight
// generic attacks (Table III), and GEA (Tables IV-VII) — and prints every
// table in the paper's layout.
//
// With the defaults this is the full-fidelity run (2,557 samples, 200
// epochs) and takes on the order of 15-30 minutes on a laptop; use
// -epochs/-max/-benign/-malware to scale it down.
//
// Usage:
//
//	repro [-seed N] [-epochs N] [-max N] [-benign N] [-malware N] [-noverify] [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"advmal/internal/attacks"
	"advmal/internal/core"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "repro: interrupted — pipeline cancelled cleanly, partial progress above")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		seed       = flag.Int64("seed", 1, "pipeline seed")
		epochs     = flag.Int("epochs", 200, "training epochs (paper: 200)")
		benign     = flag.Int("benign", 276, "benign corpus size (paper: 276)")
		malware    = flag.Int("malware", 2281, "malicious corpus size (paper: 2281)")
		maxSamples = flag.Int("max", 0, "cap attacked samples per generic method (0 = all)")
		noverify   = flag.Bool("noverify", false, "skip GEA functionality verification")
		workers    = flag.Int("workers", 0, "data-parallel width for feature extraction and training (0 = GOMAXPROCS)")
		verbose    = flag.Bool("v", false, "print per-epoch training progress")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Epochs = *epochs
	cfg.NumBenign = *benign
	cfg.NumMal = *malware
	cfg.Workers = *workers
	if *verbose {
		cfg.Verbose = os.Stderr
	}
	sys := core.New(cfg)

	t0 := time.Now()
	rep, err := sys.RunAllCtx(ctx, core.RunAllOptions{
		Attacks:   attacks.Options{MaxSamples: *maxSamples},
		VerifyGEA: !*noverify,
	})
	if err != nil {
		return err
	}
	fmt.Print(sys.Render(rep))
	fmt.Printf("\nFig. 5 architecture:\n%s", sys.Net.Summary())
	fmt.Printf("\ntotal wall time: %v\n", time.Since(t0).Round(time.Second))
	return nil
}
