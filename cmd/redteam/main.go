// Command redteam generates an adversarial campaign from a deterministic
// seed and replays it as paced HTTP traffic against a live serve or
// gateway target, scoring responses online: per-attack/per-family/
// per-budget evasion rates, detection-score distributions, ANN-triage
// catch rate, and per-model-version attribution so a retrain hot swap
// mid-campaign is measured as a before/after robustness delta.
//
// Usage:
//
//	redteam -target http://127.0.0.1:8377 -model model.gob \
//	        [-seed N] [-benign N] [-malware N] [-per-cell N] \
//	        [-eps 0.1,0.3] [-attacks FGSM,PGD] [-no-gea] \
//	        [-replay-workers N] [-rps N] [-similar] [-json]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"advmal/internal/core"
	"advmal/internal/redteam"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "redteam: interrupted — partial scorecard above")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "redteam:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		target    = flag.String("target", "", "base URL of the live serve/gateway target (required)")
		modelPath = flag.String("model", "", "surrogate model gob — the same file the target serves (required)")
		seed      = flag.Int64("seed", 1, "campaign seed")
		benign    = flag.Int("benign", 40, "benign source corpus size")
		malware   = flag.Int("malware", 150, "malicious source corpus size")
		perCell   = flag.Int("per-cell", 3, "source samples per (attack, family, budget) cell")
		epsList   = flag.String("eps", "", "comma-separated budget sweep (default 0.1,0.3)")
		atkList   = flag.String("attacks", "", "comma-separated attack filter (default all eight)")
		noGEA     = flag.Bool("no-gea", false, "skip GEA graph-splice items")
		clean     = flag.Int("clean", 0, "clean control items per class (default per-cell)")
		craftW    = flag.Int("craft-workers", 0, "crafting parallelism (0 = GOMAXPROCS)")
		replayW   = flag.Int("replay-workers", 4, "concurrent replay senders")
		rps       = flag.Float64("rps", 0, "aggregate replay pacing in req/s (0 = unpaced)")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		similar   = flag.Bool("similar", false, "also query /v1/similar for the ANN-triage catch rate")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON instead of tables")
	)
	flag.Parse()
	if *target == "" || *modelPath == "" {
		flag.Usage()
		return fmt.Errorf("-target and -model are required")
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	mdl, err := core.LoadModel(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "redteam: surrogate %s (version %d, %d classes)\n",
		*modelPath, mdl.Version, mdl.Net.NumClasses())

	eps, err := parseFloats(*epsList)
	if err != nil {
		return fmt.Errorf("-eps: %w", err)
	}
	cfg := redteam.CampaignConfig{
		Seed:      *seed,
		Model:     mdl,
		NumBenign: *benign,
		NumMal:    *malware,
		PerCell:   *perCell,
		Eps:       eps,
		Attacks:   splitList(*atkList),
		SkipGEA:   *noGEA,
		Clean:     *clean,
		Workers:   *craftW,
	}
	t0 := time.Now()
	camp, err := redteam.Generate(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "redteam: campaign ready — %d items (%d attacks × %d families × %d budgets) in %v\n",
		len(camp.Items), len(camp.Attacks), len(camp.Families), len(camp.Budgets),
		time.Since(t0).Round(time.Millisecond))

	rep, err := redteam.Replay(ctx, camp, redteam.ReplayConfig{
		Target:  strings.TrimRight(*target, "/"),
		Workers: *replayW,
		RPS:     *rps,
		Timeout: *timeout,
		Similar: *similar,
	}, nil)
	if rep != nil {
		if *jsonOut {
			if jerr := writeJSON(os.Stdout, rep); jerr != nil && err == nil {
				err = jerr
			}
		} else {
			fmt.Print(rep.String())
		}
	}
	return err
}

func writeJSON(w io.Writer, rep *redteam.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
