// Command gea trains the detector and runs the Graph Embedding and
// Augmentation experiments, printing Tables IV-VII. Every crafted sample
// is verified functionality-preserving via interpreter-trace equality
// unless -noverify is given.
//
// Usage:
//
//	gea [-seed N] [-epochs N] [-benign N] [-malware N] [-noverify] [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"advmal/internal/core"
	"advmal/internal/gea"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "gea: interrupted — pipeline cancelled cleanly, partial progress above")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "gea:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		seed     = flag.Int64("seed", 1, "pipeline seed")
		epochs   = flag.Int("epochs", 200, "training epochs")
		benign   = flag.Int("benign", 276, "benign corpus size")
		malware  = flag.Int("malware", 2281, "malicious corpus size")
		noverify = flag.Bool("noverify", false, "skip per-sample functionality verification")
		verbose  = flag.Bool("v", false, "print per-epoch training progress")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Epochs = *epochs
	cfg.NumBenign = *benign
	cfg.NumMal = *malware
	if *verbose {
		cfg.Verbose = os.Stderr
	}
	sys := core.New(cfg)
	if err := sys.BuildCorpusCtx(ctx); err != nil {
		return err
	}
	if _, err := sys.FitCtx(ctx); err != nil {
		return err
	}
	m, err := sys.EvaluateTest()
	if err != nil {
		return err
	}
	fmt.Printf("detector: %v\n\n", m)

	verify := !*noverify
	experiments := []struct {
		title string
		run   func(context.Context, bool) ([]gea.Row, error)
		fixed bool
	}{
		{"TABLE IV: GEA MALWARE TO BENIGN MISCLASSIFICATION RATE", sys.RunTableIVCtx, false},
		{"TABLE V: GEA BENIGN TO MALWARE MISCLASSIFICATION RATE", sys.RunTableVCtx, false},
		{"TABLE VI: GEA MALWARE TO BENIGN, FIXED NUMBER OF NODES", sys.RunTableVICtx, true},
		{"TABLE VII: GEA BENIGN TO MALWARE, FIXED NUMBER OF NODES", sys.RunTableVIICtx, true},
	}
	for _, exp := range experiments {
		rows, err := exp.run(ctx, verify)
		if err != nil {
			return err
		}
		if exp.fixed {
			fmt.Print(core.RenderGEAFixed(exp.title, rows))
		} else {
			fmt.Print(core.RenderGEASize(exp.title, rows))
		}
		if verify {
			verified, total := 0, 0
			for _, r := range rows {
				verified += r.Verified
				total += r.Total
			}
			fmt.Printf("functionality preserved on %d/%d crafted samples\n", verified, total)
		}
		fmt.Println()
	}
	return nil
}
