// Command train builds the corpus, trains the Fig. 5 CNN detector, and
// reports the §IV-C1 metrics (accuracy, FNR, FPR) plus the architecture
// summary. Optionally saves the trained weights.
//
// Usage:
//
//	train [-seed N] [-epochs N] [-batch N] [-benign N] [-malware N] [-workers N] [-model weights.gob] [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"advmal/internal/core"
	"advmal/internal/nn"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "train: interrupted — pipeline cancelled cleanly, partial progress above")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		seed     = flag.Int64("seed", 1, "pipeline seed")
		epochs   = flag.Int("epochs", 200, "training epochs (paper: 200)")
		batch    = flag.Int("batch", 100, "batch size (paper: 100)")
		benign   = flag.Int("benign", 276, "benign corpus size")
		malware  = flag.Int("malware", 2281, "malicious corpus size")
		model    = flag.String("model", "", "save trained weights (gob) to this file")
		families = flag.Bool("families", false, "also train the family-level multi-class classifier")
		workers  = flag.Int("workers", 0, "data-parallel width for feature extraction and training (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "print per-epoch progress")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Epochs = *epochs
	cfg.BatchSize = *batch
	cfg.NumBenign = *benign
	cfg.NumMal = *malware
	cfg.Workers = *workers
	if *verbose {
		cfg.Verbose = os.Stderr
	}
	sys := core.New(cfg)
	if err := sys.BuildCorpusCtx(ctx); err != nil {
		return err
	}
	fmt.Printf("corpus: %d train / %d test samples\n", sys.Train.Len(), sys.Test.Len())
	hist, err := sys.FitCtx(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("trained %d epochs (final loss %.5f)\n", len(hist.Loss), hist.Loss[len(hist.Loss)-1])
	fmt.Println("\nFig. 5 architecture:")
	fmt.Print(sys.Net.Summary())

	test, err := sys.EvaluateTest()
	if err != nil {
		return err
	}
	train, err := sys.EvaluateTrain()
	if err != nil {
		return err
	}
	fmt.Printf("\ntrain: %v\ntest:  %v\n", train, test)
	fmt.Printf("test (paper's benign-positive convention): AR=%.2f%% FNR=%.2f%% FPR=%.2f%%\n",
		test.Accuracy*100, test.FPR*100, test.FNR*100)
	fmt.Printf("test AUC: %.4f\n", nn.DetectorAUC(sys.Net, sys.TestX, sys.TestY))

	if *families {
		fmt.Println("\ntraining the family-level classifier...")
		fc, _, err := sys.TrainFamilyClassifier()
		if err != nil {
			return err
		}
		fm, err := sys.EvaluateFamilies(fc)
		if err != nil {
			return err
		}
		fmt.Print(fm)
	}

	if *model != "" {
		f, err := os.Create(*model)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sys.Net.Save(f); err != nil {
			return err
		}
		fmt.Println("weights written to", *model)
	}
	return nil
}
