package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"advmal/internal/core"
	"advmal/internal/features"
	"advmal/internal/nn"
	"advmal/internal/redteam"
	"advmal/internal/serve"
)

// redteamSuite measures the attack-replay harness: campaign generation
// cost (crafting against the surrogate), end-to-end replay throughput
// against an in-process serve target at 1/2/4 senders, and the pure
// scoring overhead per observed outcome. The replay rows carry
// items_per_sec so the claim "scoring keeps up with the wire" is
// checkable against the serve suite's raw classify throughput.
func redteamSuite(h *harness, short bool) {
	min := make([]float64, features.NumFeatures)
	max := make([]float64, features.NumFeatures)
	for i := range max {
		max[i] = 1
	}
	mdl := &core.Model{
		Version: 1,
		Classes: 2,
		Scaler:  &features.Scaler{Min: min, Max: max},
		Net:     nn.PaperCNN(0),
	}
	cfg := redteam.CampaignConfig{
		Seed:    3,
		Model:   mdl,
		PerCell: 2,
		Eps:     []float64{0.3},
		Attacks: []string{"FGSM", "PGD", "JSMA"},
		SkipGEA: short,
		Clean:   1,
	}
	if short {
		cfg.PerCell = 1
		cfg.Attacks = []string{"FGSM"}
	}

	var camp *redteam.Campaign
	genRes := h.run("redteam/generate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			camp, err = redteam.Generate(context.Background(), cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	if genRes.NsPerOp > 0 {
		addMetric(h, "redteam/generate", "items_per_sec",
			float64(len(camp.Items))/(genRes.NsPerOp/1e9))
	}
	addMetric(h, "redteam/generate", "items", float64(len(camp.Items)))

	srv, err := serve.New(serve.Config{
		Handle: core.NewHandle(mdl),
		Window: -1,
	})
	if err != nil {
		fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Drain()
	}()

	replayRow := func(name string, workers int) Result {
		res := h.run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := redteam.Replay(context.Background(), camp, redteam.ReplayConfig{
					Target:  ts.URL,
					Workers: workers,
					Timeout: 30 * time.Second,
				}, nil)
				if err != nil {
					b.Fatal(err)
				}
				if rep.TransportErrors+rep.HTTPErrors > 0 {
					b.Fatalf("replay errors: %s", rep.FirstError)
				}
			}
		})
		addMetric(h, name, "workers", float64(workers))
		if res.NsPerOp > 0 {
			addMetric(h, name, "items_per_sec",
				float64(len(camp.Items))/(res.NsPerOp/1e9))
		}
		return res
	}
	r1 := replayRow("redteam/replay-1w", 1)
	r2 := replayRow("redteam/replay-2w", 2)
	r4 := replayRow("redteam/replay-4w", 4)
	h.snap.Speedups["redteam-replay-2w-vs-1w"] = ratio(r1, r2)
	h.snap.Speedups["redteam-replay-4w-vs-1w"] = ratio(r1, r4)

	// Scoring overhead in isolation: one Observe per op, the per-item
	// cost the replay path adds on top of the HTTP round trip.
	outcome := redteam.Outcome{
		Item:   &camp.Items[len(camp.Items)-1],
		Status: 200,
		Verdict: serve.Verdict{
			Malicious: false, Probs: []float64{0.7, 0.3}, ModelVersion: 1,
		},
		Latency: time.Millisecond,
	}
	s := redteam.NewScorer()
	obs := h.run("redteam/observe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Observe(outcome)
		}
	})
	if obs.NsPerOp > 0 && r4.NsPerOp > 0 {
		perItem := r4.NsPerOp / float64(len(camp.Items))
		addMetric(h, "redteam/observe", "pct_of_replay_item", 100*obs.NsPerOp/perItem)
	}
}
