// Command bench runs the extraction and attack micro-benchmarks and
// writes a machine-readable snapshot (BENCH_extract.json by default) so
// the repo's performance trajectory has committed data points. Each
// entry records ns/op, B/op, and allocs/op from testing.Benchmark plus
// derived metrics (corpus samples/sec, cache hit counts); the speedups
// map compares the fused single-sweep feature engine against the naive
// four-traversal composition on the same graphs.
//
// Usage:
//
//	go run ./cmd/bench [-short] [-o BENCH_extract.json]
//
// -short trims graph sizes and skips the trained-detector benches; the
// Makefile `check` target runs it as a smoke test, while `make
// bench-snapshot` refreshes the committed full snapshot.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"advmal/internal/attacks"
	"advmal/internal/core"
	"advmal/internal/dataset"
	"advmal/internal/features"
	"advmal/internal/gea"
	"advmal/internal/graph"
	"advmal/internal/ir"
	"advmal/internal/synth"
)

// Result is one benchmark row of the snapshot.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the BENCH_extract.json schema.
type Snapshot struct {
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Short      bool     `json:"short"`
	Results    []Result `json:"results"`
	// Speedups maps a comparison label to (baseline ns/op / candidate
	// ns/op); >1 means the candidate is faster.
	Speedups map[string]float64 `json:"speedups"`
}

type harness struct {
	snap   Snapshot
	byName map[string]Result
}

func (h *harness) run(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	res := Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	h.snap.Results = append(h.snap.Results, res)
	h.byName[name] = res
	fmt.Fprintf(os.Stderr, "%-34s %12.0f ns/op %10d B/op %8d allocs/op\n",
		name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	return res
}

func (h *harness) runWithMetrics(name string, metrics map[string]float64, fn func(b *testing.B)) {
	res := h.run(name, fn)
	res.Metrics = metrics
	h.snap.Results[len(h.snap.Results)-1] = res
	h.byName[name] = res
}

func (h *harness) speedup(label, baseline, candidate string) {
	base, okB := h.byName[baseline]
	cand, okC := h.byName[candidate]
	if !okB || !okC || cand.NsPerOp == 0 {
		return
	}
	h.snap.Speedups[label] = base.NsPerOp / cand.NsPerOp
}

// benchGraph returns a deterministic CFG-shaped graph with ~constant
// average out-degree, mimicking real disassembled CFG sparsity.
func benchGraph(n int) *graph.Graph {
	return graph.RandomFlow(rand.New(rand.NewSource(int64(n))), n, 6/float64(n))
}

func main() {
	out := flag.String("o", "BENCH_extract.json", "output path for the JSON snapshot")
	short := flag.Bool("short", false, "reduced sizes, no trained-detector benches (smoke mode)")
	flag.Parse()

	h := &harness{
		snap: Snapshot{
			Generated:  time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Short:      *short,
			Speedups:   map[string]float64{},
		},
		byName: map[string]Result{},
	}

	sizes := []int{64, 192, 384}
	if *short {
		sizes = []int{32, 96}
	}
	for _, n := range sizes {
		g := benchGraph(n)
		naive := fmt.Sprintf("extract/naive/n=%d", n)
		fused := fmt.Sprintf("extract/fused/n=%d", n)
		cached := fmt.Sprintf("extract/cached/n=%d", n)
		h.run(naive, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				features.ExtractNaive(g)
			}
		})
		h.run(fused, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				features.Extract(g)
			}
		})
		e := features.NewExtractor(0)
		h.run(cached, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Extract(g)
			}
		})
		h.speedup(fmt.Sprintf("fused-vs-naive/n=%d", n), naive, fused)
		h.speedup(fmt.Sprintf("cached-vs-naive/n=%d", n), naive, cached)
	}

	// Corpus throughput: disassemble + extract the synthetic corpus on
	// the worker pool, cold cache every iteration vs. a warm shared one.
	nBenign, nMal := 80, 320
	if *short {
		nBenign, nMal = 12, 48
	}
	samples, err := synth.Generate(synth.Config{Seed: 1, NumBenign: nBenign, NumMal: nMal})
	if err != nil {
		fatal(err)
	}
	build := func(b *testing.B, e *features.Extractor) {
		_, _, err := dataset.FromSamplesCtx(context.Background(), samples,
			dataset.Options{Extractor: e})
		if err != nil {
			b.Fatal(err)
		}
	}
	h.runWithMetrics("corpus/build-cold",
		map[string]float64{"samples": float64(len(samples))},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				build(b, features.NewExtractor(0)) // fresh cache: pure extraction cost
			}
		})
	warm := features.NewExtractor(0)
	h.runWithMetrics("corpus/build-warm",
		map[string]float64{"samples": float64(len(samples))},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				build(b, warm)
			}
		})
	h.speedup("corpus-warm-vs-cold", "corpus/build-cold", "corpus/build-warm")
	addThroughput(h, "corpus/build-cold", float64(len(samples)))
	addThroughput(h, "corpus/build-warm", float64(len(samples)))

	if !*short {
		trainedBenches(h)
	}

	finish(h, *out)
}

// addThroughput derives items/sec from an already-recorded result.
func addThroughput(h *harness, name string, items float64) {
	res, ok := h.byName[name]
	if !ok || res.NsPerOp == 0 {
		return
	}
	if res.Metrics == nil {
		res.Metrics = map[string]float64{}
	}
	res.Metrics["samples_per_sec"] = items / (res.NsPerOp / 1e9)
	for i := range h.snap.Results {
		if h.snap.Results[i].Name == name {
			h.snap.Results[i] = res
		}
	}
	h.byName[name] = res
}

// trainedBenches covers the attack-side hot loops against a small
// trained detector: generic feature-space crafting and the GEA
// merge→disassemble→extract cycle that dominates Tables IV–VII.
func trainedBenches(h *harness) {
	cfg := core.DefaultConfig()
	cfg.NumBenign = 60
	cfg.NumMal = 240
	cfg.Epochs = 30
	cfg.BatchSize = 50
	sys := core.New(cfg)
	if err := sys.BuildCorpus(); err != nil {
		fatal(err)
	}
	if _, err := sys.Fit(); err != nil {
		fatal(err)
	}

	x, y := sys.TestX[0], sys.TestY[0]
	for _, atk := range []struct {
		name string
		a    attacks.Attack
	}{
		{"attack/fgsm", attacks.NewFGSM(0)},
		{"attack/pgd", attacks.NewPGD(0, 0)},
		{"attack/jsma", attacks.NewJSMA(0, 0)},
	} {
		clone := sys.Net.CloneShared()
		h.run(atk.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				atk.a.Craft(clone, x, y)
			}
		})
	}

	// GEA crafting unit: merge + disassemble + (cached) extract +
	// classify, the exact inner loop of RunTarget and MinimizeTargetSize.
	targets, err := gea.SelectBySize(sys.Samples, false)
	if err != nil {
		fatal(err)
	}
	var victim *synth.Sample
	for _, s := range sys.TestSamples() {
		if s.Malicious {
			victim = s
			break
		}
	}
	if victim == nil {
		fatal(fmt.Errorf("no malicious test sample"))
	}
	before := sys.Extractor.Stats()
	h.run("gea/merge-extract-classify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			merged, err := gea.Merge(victim.Prog, targets.Median.Prog)
			if err != nil {
				b.Fatal(err)
			}
			cfg, err := ir.Disassemble(merged)
			if err != nil {
				b.Fatal(err)
			}
			raw := sys.Extractor.Extract(cfg.G())
			scaled, err := sys.Scaler.Transform(raw)
			if err != nil {
				b.Fatal(err)
			}
			sys.Net.Predict(scaled)
		}
	})
	after := sys.Extractor.Stats()
	addMetric(h, "gea/merge-extract-classify", "cache_hits", float64(after.Hits-before.Hits))
	addMetric(h, "gea/merge-extract-classify", "cache_misses", float64(after.Misses-before.Misses))
}

func addMetric(h *harness, name, key string, val float64) {
	res, ok := h.byName[name]
	if !ok {
		return
	}
	if res.Metrics == nil {
		res.Metrics = map[string]float64{}
	}
	res.Metrics[key] = val
	for i := range h.snap.Results {
		if h.snap.Results[i].Name == name {
			h.snap.Results[i] = res
		}
	}
	h.byName[name] = res
}

func finish(h *harness, out string) {
	labels := make([]string, 0, len(h.snap.Speedups))
	for k := range h.snap.Speedups {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	for _, k := range labels {
		fmt.Fprintf(os.Stderr, "speedup %-28s %.2fx\n", k, h.snap.Speedups[k])
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h.snap); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d results)\n", out, len(h.snap.Results))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
