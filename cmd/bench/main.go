// Command bench runs the repo's micro-benchmark suites and writes a
// machine-readable snapshot so the performance trajectory has committed
// data points. Each entry records ns/op, B/op, and allocs/op from
// testing.Benchmark plus derived metrics; the speedups map compares a
// baseline against its optimized counterpart (>1 means faster).
//
// Two suites exist, selected with -suite:
//
//	extract (default) — CFG feature extraction: the fused single-sweep
//	  engine vs the naive four-traversal composition, the content-keyed
//	  cache, and corpus build throughput. Snapshot: BENCH_extract.json.
//	nn — the neural-network substrate: workspace engine vs allocating
//	  oracle on forward / loss-gradient / Jacobian / train-step, batched
//	  probs, end-to-end attack crafting, the GEA merge→extract→classify
//	  unit (the Table IV/V inner loop), and train-epoch wall-clock.
//	  Snapshot: BENCH_nn.json.
//	serve — the online-service scheduler at saturation: micro-batching
//	  configurations vs the unbatched per-request baseline (the seed's
//	  mutex-serialized allocating oracle), plus a closed-loop latency
//	  pass against the window + inference-budget SLO. Snapshot:
//	  BENCH_serve.json.
//	gateway — cluster throughput scaling: real serve replicas plus the
//	  consistent-hash gateway in child processes, driven by the real
//	  cmd/loadgen, with replica capacity pinned by a simulated service
//	  time so the N-replicas-vs-1 speedup is meaningful on any host.
//	  Snapshot: BENCH_gateway.json.
//	index — the similarity layer: HNSW graph search vs the exact-scan
//	  oracle at 10k/100k/1M entries, recording build wall-clock, mean
//	  and p50/p99 search latency, and recall@10 against the oracle's
//	  ground truth. Snapshot: BENCH_index.json.
//	train — the training path: the chunked pairwise-tree gradient
//	  reduction vs the pre-PR serial sweep at 1–8 workers, epoch
//	  wall-clock with pinned per-sample service time (worker-scaling
//	  meaningful on any host, per the gateway suite's precedent) and
//	  with real compute, plus the int8 quantized engine vs the float64
//	  workspace and its Table I accuracy fidelity. Snapshot:
//	  BENCH_train.json.
//	swap — hot-swap overhead on the serving path: saturated handle-engine
//	  throughput with no swaps vs snapshots installed every 100ms/10ms,
//	  asserting zero request errors across every swap. Snapshot:
//	  BENCH_swap.json.
//
// Usage:
//
//	go run ./cmd/bench [-suite extract|nn|serve|gateway|index|train|swap] [-short] [-o FILE]
//
// -short trims sizes and skips the trained-detector benches; the
// Makefile `check` target runs both suites as smoke tests, while `make
// bench-snapshot` / `make bench-nn` refresh the committed snapshots.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"advmal/internal/attacks"
	"advmal/internal/core"
	"advmal/internal/dataset"
	"advmal/internal/features"
	"advmal/internal/gea"
	"advmal/internal/graph"
	"advmal/internal/ir"
	"advmal/internal/nn"
	"advmal/internal/synth"
)

// Result is one benchmark row of the snapshot.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the BENCH_extract.json schema.
type Snapshot struct {
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Short      bool     `json:"short"`
	Results    []Result `json:"results"`
	// Speedups maps a comparison label to (baseline ns/op / candidate
	// ns/op); >1 means the candidate is faster.
	Speedups map[string]float64 `json:"speedups"`
}

type harness struct {
	snap   Snapshot
	byName map[string]Result
}

func (h *harness) run(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	res := Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	h.snap.Results = append(h.snap.Results, res)
	h.byName[name] = res
	fmt.Fprintf(os.Stderr, "%-34s %12.0f ns/op %10d B/op %8d allocs/op\n",
		name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	return res
}

func (h *harness) runWithMetrics(name string, metrics map[string]float64, fn func(b *testing.B)) {
	res := h.run(name, fn)
	res.Metrics = metrics
	h.snap.Results[len(h.snap.Results)-1] = res
	h.byName[name] = res
}

func (h *harness) speedup(label, baseline, candidate string) {
	base, okB := h.byName[baseline]
	cand, okC := h.byName[candidate]
	if !okB || !okC || cand.NsPerOp == 0 {
		return
	}
	h.snap.Speedups[label] = base.NsPerOp / cand.NsPerOp
}

// benchGraph returns a deterministic CFG-shaped graph with ~constant
// average out-degree, mimicking real disassembled CFG sparsity.
func benchGraph(n int) *graph.Graph {
	return graph.RandomFlow(rand.New(rand.NewSource(int64(n))), n, 6/float64(n))
}

func main() {
	out := flag.String("o", "", "output path for the JSON snapshot (default BENCH_<suite>.json)")
	short := flag.Bool("short", false, "reduced sizes, no trained-detector benches (smoke mode)")
	suite := flag.String("suite", "extract", "benchmark suite: extract or nn")
	flag.Parse()

	h := &harness{
		snap: Snapshot{
			Generated:  time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Short:      *short,
			Speedups:   map[string]float64{},
		},
		byName: map[string]Result{},
	}
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%s.json", *suite)
	}

	switch *suite {
	case "extract":
		extractSuite(h, *short)
	case "nn":
		nnSuite(h, *short)
	case "serve":
		serveSuite(h, *short)
	case "gateway":
		gatewaySuite(h, *short)
	case "index":
		indexSuite(h, *short)
	case "train":
		trainSuite(h, *short)
	case "swap":
		swapSuite(h, *short)
	case "redteam":
		redteamSuite(h, *short)
	default:
		fatal(fmt.Errorf("unknown suite %q (want extract, nn, serve, gateway, index, train, swap, or redteam)", *suite))
	}

	finish(h, *out)
}

// extractSuite benchmarks CFG feature extraction: fused vs naive sweeps,
// the content-keyed cache, and corpus build throughput.
func extractSuite(h *harness, short bool) {
	sizes := []int{64, 192, 384}
	if short {
		sizes = []int{32, 96}
	}
	for _, n := range sizes {
		g := benchGraph(n)
		naive := fmt.Sprintf("extract/naive/n=%d", n)
		fused := fmt.Sprintf("extract/fused/n=%d", n)
		cached := fmt.Sprintf("extract/cached/n=%d", n)
		h.run(naive, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				features.ExtractNaive(g)
			}
		})
		h.run(fused, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				features.Extract(g)
			}
		})
		e := features.NewExtractor(0)
		h.run(cached, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Extract(g)
			}
		})
		h.speedup(fmt.Sprintf("fused-vs-naive/n=%d", n), naive, fused)
		h.speedup(fmt.Sprintf("cached-vs-naive/n=%d", n), naive, cached)
	}

	// Corpus throughput: disassemble + extract the synthetic corpus on
	// the worker pool, cold cache every iteration vs. a warm shared one.
	nBenign, nMal := 80, 320
	if short {
		nBenign, nMal = 12, 48
	}
	samples, err := synth.Generate(synth.Config{Seed: 1, NumBenign: nBenign, NumMal: nMal})
	if err != nil {
		fatal(err)
	}
	build := func(b *testing.B, e *features.Extractor) {
		_, _, err := dataset.FromSamplesCtx(context.Background(), samples,
			dataset.Options{Extractor: e})
		if err != nil {
			b.Fatal(err)
		}
	}
	h.runWithMetrics("corpus/build-cold",
		map[string]float64{"samples": float64(len(samples))},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				build(b, features.NewExtractor(0)) // fresh cache: pure extraction cost
			}
		})
	warm := features.NewExtractor(0)
	h.runWithMetrics("corpus/build-warm",
		map[string]float64{"samples": float64(len(samples))},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				build(b, warm)
			}
		})
	h.speedup("corpus-warm-vs-cold", "corpus/build-cold", "corpus/build-warm")
	addThroughput(h, "corpus/build-cold", float64(len(samples)))
	addThroughput(h, "corpus/build-warm", float64(len(samples)))

	if !short {
		trainedBenches(h)
	}
}

// addThroughput derives items/sec from an already-recorded result.
func addThroughput(h *harness, name string, items float64) {
	res, ok := h.byName[name]
	if !ok || res.NsPerOp == 0 {
		return
	}
	if res.Metrics == nil {
		res.Metrics = map[string]float64{}
	}
	res.Metrics["samples_per_sec"] = items / (res.NsPerOp / 1e9)
	for i := range h.snap.Results {
		if h.snap.Results[i].Name == name {
			h.snap.Results[i] = res
		}
	}
	h.byName[name] = res
}

// trainedBenches covers the attack-side hot loops against a small
// trained detector: generic feature-space crafting and the GEA
// merge→disassemble→extract cycle that dominates Tables IV–VII.
func trainedBenches(h *harness) {
	cfg := core.DefaultConfig()
	cfg.NumBenign = 60
	cfg.NumMal = 240
	cfg.Epochs = 30
	cfg.BatchSize = 50
	sys := core.New(cfg)
	if err := sys.BuildCorpus(); err != nil {
		fatal(err)
	}
	if _, err := sys.Fit(); err != nil {
		fatal(err)
	}

	x, y := sys.TestX[0], sys.TestY[0]
	for _, atk := range []struct {
		name string
		a    attacks.Attack
	}{
		{"attack/fgsm", attacks.NewFGSM(0)},
		{"attack/pgd", attacks.NewPGD(0, 0)},
		{"attack/jsma", attacks.NewJSMA(0, 0)},
	} {
		clone := sys.Net.CloneShared()
		h.run(atk.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				atk.a.Craft(clone, x, y)
			}
		})
	}

	// GEA crafting unit: merge + disassemble + (cached) extract +
	// classify, the exact inner loop of RunTarget and MinimizeTargetSize.
	targets, err := gea.SelectBySize(sys.Samples, false)
	if err != nil {
		fatal(err)
	}
	var victim *synth.Sample
	for _, s := range sys.TestSamples() {
		if s.Malicious {
			victim = s
			break
		}
	}
	if victim == nil {
		fatal(fmt.Errorf("no malicious test sample"))
	}
	before := sys.Extractor.Stats()
	h.run("gea/merge-extract-classify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			merged, err := gea.Merge(victim.Prog, targets.Median.Prog)
			if err != nil {
				b.Fatal(err)
			}
			cfg, err := ir.Disassemble(merged)
			if err != nil {
				b.Fatal(err)
			}
			raw := sys.Extractor.Extract(cfg.G())
			scaled, err := sys.Scaler.Transform(raw)
			if err != nil {
				b.Fatal(err)
			}
			sys.Net.Predict(scaled)
		}
	})
	after := sys.Extractor.Stats()
	addMetric(h, "gea/merge-extract-classify", "cache_hits", float64(after.Hits-before.Hits))
	addMetric(h, "gea/merge-extract-classify", "cache_misses", float64(after.Misses-before.Misses))
}

// nnSuite benchmarks the neural-network substrate: the zero-allocation
// workspace engine against the allocating oracle on every hot query, the
// batched probs entry point, end-to-end attack crafting on a trained
// detector, the GEA classify unit, and train-epoch wall-clock.
func nnSuite(h *harness, short bool) {
	net := nn.PaperCNN(1)
	ws := net.CloneShared().WS()
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, net.InputDim())
	for i := range x {
		x[i] = rng.Float64()
	}

	h.run("nn/forward/naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net.Logits(x)
		}
	})
	h.run("nn/forward/ws", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ws.Logits(x)
		}
	})
	h.speedup("nn-forward", "nn/forward/naive", "nn/forward/ws")

	h.run("nn/lossgrad/naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net.LossGrad(x, 1)
		}
	})
	h.run("nn/lossgrad/ws", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ws.LossGrad(x, 1)
		}
	})
	h.speedup("nn-lossgrad", "nn/lossgrad/naive", "nn/lossgrad/ws")

	h.run("nn/jacobian/naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net.Jacobian(x)
		}
	})
	h.run("nn/jacobian/ws", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ws.Jacobian(x)
		}
	})
	h.speedup("nn-jacobian", "nn/jacobian/naive", "nn/jacobian/ws")

	// Full training step: forward in train mode + weighted CE + backward
	// with parameter-gradient accumulation, on private views.
	naiveClone := net.CloneShared()
	h.run("nn/trainstep/naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			logits := naiveClone.Forward(x, true)
			_, dLogits := nn.SoftmaxCE(logits, 1)
			naiveClone.Backward(dLogits)
		}
	})
	wsTrain := net.CloneShared().WS()
	h.run("nn/trainstep/ws", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wsTrain.TrainStep(x, 1, 1)
		}
	})
	h.speedup("nn-trainstep", "nn/trainstep/naive", "nn/trainstep/ws")

	// Batched probabilities over a small evaluation set.
	const batchN = 64
	xs := make([][]float64, batchN)
	for i := range xs {
		v := make([]float64, net.InputDim())
		for j := range v {
			v[j] = rng.Float64()
		}
		xs[i] = v
	}
	h.runWithMetrics("nn/probs-batch/naive",
		map[string]float64{"batch": batchN},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, v := range xs {
					net.Probs(v)
				}
			}
		})
	var dst [][]float64
	h.runWithMetrics("nn/probs-batch/ws",
		map[string]float64{"batch": batchN},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst = ws.ProbsBatch(xs, dst)
			}
		})
	h.speedup("nn-probs-batch", "nn/probs-batch/naive", "nn/probs-batch/ws")

	if short {
		return
	}

	// Attack crafting and the GEA classify unit against a small trained
	// detector — the Table III / Table IV–V hot loops end to end.
	cfg := core.DefaultConfig()
	cfg.NumBenign = 60
	cfg.NumMal = 240
	cfg.Epochs = 30
	cfg.BatchSize = 50
	sys := core.New(cfg)
	if err := sys.BuildCorpus(); err != nil {
		fatal(err)
	}
	if _, err := sys.Fit(); err != nil {
		fatal(err)
	}

	tx, ty := sys.TestX[0], sys.TestY[0]
	for _, atk := range []struct {
		name string
		a    attacks.Attack
	}{
		{"attack/fgsm", attacks.NewFGSM(0)},
		{"attack/pgd", attacks.NewPGD(0, 0)},
		{"attack/jsma", attacks.NewJSMA(0, 0)},
		{"attack/cw", attacks.NewCW(0, 0, 0)},
	} {
		oracle := sys.Net.CloneShared()
		h.run(atk.name+"/oracle", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				atk.a.Craft(oracle, tx, ty)
			}
		})
		aws := sys.Net.CloneShared().WS()
		h.run(atk.name+"/ws", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				atk.a.Craft(aws, tx, ty)
			}
		})
		h.speedup(atk.name, atk.name+"/oracle", atk.name+"/ws")
	}

	// The GEA merge→disassemble→extract→classify unit (Tables IV–V, and
	// the MinimizeTargetSize probe loop), oracle vs workspace classify.
	targets, err := gea.SelectBySize(sys.Samples, false)
	if err != nil {
		fatal(err)
	}
	var victim *synth.Sample
	for _, s := range sys.TestSamples() {
		if s.Malicious {
			victim = s
			break
		}
	}
	if victim == nil {
		fatal(fmt.Errorf("no malicious test sample"))
	}
	geaUnit := func(b *testing.B, classify func([]float64) int) {
		merged, err := gea.Merge(victim.Prog, targets.Median.Prog)
		if err != nil {
			b.Fatal(err)
		}
		cfgG, err := ir.Disassemble(merged)
		if err != nil {
			b.Fatal(err)
		}
		raw := sys.Extractor.Extract(cfgG.G())
		scaled, err := sys.Scaler.Transform(raw)
		if err != nil {
			b.Fatal(err)
		}
		classify(scaled)
	}
	h.run("gea/merge-extract-classify/oracle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			geaUnit(b, sys.Net.Predict)
		}
	})
	gws := sys.Net.WS()
	h.run("gea/merge-extract-classify/ws", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			geaUnit(b, gws.Predict)
		}
	})
	h.speedup("gea-classify", "gea/merge-extract-classify/oracle", "gea/merge-extract-classify/ws")

	// Train-epoch wall-clock: one full epoch of the workspace-backed
	// trainer on the corpus (includes per-epoch setup).
	h.runWithMetrics("nn/train-epoch",
		map[string]float64{"samples": float64(len(sys.TrainX))},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := &nn.Trainer{Epochs: 1, BatchSize: cfg.BatchSize, Seed: 11}
				if _, err := tr.Fit(nn.PaperCNN(11), sys.TrainX, sys.TrainY); err != nil {
					b.Fatal(err)
				}
			}
		})
	addThroughput(h, "nn/train-epoch", float64(len(sys.TrainX)))
}

func addMetric(h *harness, name, key string, val float64) {
	res, ok := h.byName[name]
	if !ok {
		return
	}
	if res.Metrics == nil {
		res.Metrics = map[string]float64{}
	}
	res.Metrics[key] = val
	for i := range h.snap.Results {
		if h.snap.Results[i].Name == name {
			h.snap.Results[i] = res
		}
	}
	h.byName[name] = res
}

func finish(h *harness, out string) {
	labels := make([]string, 0, len(h.snap.Speedups))
	for k := range h.snap.Speedups {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	for _, k := range labels {
		fmt.Fprintf(os.Stderr, "speedup %-28s %.2fx\n", k, h.snap.Speedups[k])
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h.snap); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d results)\n", out, len(h.snap.Results))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
