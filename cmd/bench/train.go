package main

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"advmal/internal/core"
	"advmal/internal/nn"
)

// trainSuite benchmarks the training path this PR parallelized plus the
// int8 quantized inference tier.
//
// Two kinds of rows exist because this host may have a single core:
//
//   - reduce/* and epoch/real/* rows measure real compute — the chunked
//     pairwise-tree gradient reduction against the pre-PR serial sweep
//     (which re-resolved clone params per (param, worker) pair and ran
//     separate per-clone and master ZeroGrad passes). These speedups are
//     honest single-host numbers: on one core they come from fusing the
//     zeroing into the reduction and hoisting the param resolution, not
//     from parallelism.
//   - epoch/pinned/* rows pin per-sample service time with the trainer's
//     Augment hook (the BENCH_gateway.json precedent: sleeps overlap
//     across pool workers regardless of host parallelism), so the
//     epochs/sec scaling at workers ∈ {1,2,4,8} against the
//     serial-reduction single-worker baseline is meaningful on any
//     machine.
//
// Full mode adds the quantized tier: int8 forward and batched-probs
// throughput against the float64 workspace on a trained detector, plus
// the Table I accuracy fidelity of the quantized model.
func trainSuite(h *harness, short bool) {
	widths := []int{1, 2, 4, 8}
	if short {
		widths = []int{1, 2, 4}
	}

	// Reduction micro-rows: one per-batch gradient reduction on the
	// paper CNN (582k parameters), serial sweep vs chunked tree. Both
	// paths leave every accumulator zero, so iterations repeat the exact
	// memory traffic of a real training batch regardless of values.
	for _, w := range widths {
		net := nn.PaperCNN(int64(w))
		clones := make([]*nn.Network, w)
		for i := range clones {
			clones[i] = net.CloneShared()
		}
		red := nn.NewGradReducer(net, clones)
		fillGrads(clones, int64(w))
		serial := fmt.Sprintf("reduce/serial/w=%d", w)
		tree := fmt.Sprintf("reduce/tree/w=%d", w)
		h.run(serial, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				red.ReduceSerial()
				red.ZeroClones()
				net.ZeroGrad()
			}
		})
		h.run(tree, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := red.Reduce(context.Background(), w); err != nil {
					b.Fatal(err)
				}
			}
		})
		h.speedup(fmt.Sprintf("reduce-tree-vs-serial/w=%d", w), serial, tree)
	}

	// Pinned-service-time epochs: a small MLP whose per-sample cost is
	// dominated by a fixed Augment-hook sleep, so wall-clock scales with
	// the worker overlap the trainer achieves, not this host's cores.
	nSamples, perSample := 256, 200*time.Microsecond
	if short {
		nSamples = 96
	}
	px, py := trainBlobs(3, nSamples, 23)
	pinned := func(workers int, serialRed bool) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := &nn.Trainer{
					Epochs: 1, BatchSize: 32, Seed: 11, Workers: workers,
					SerialReduction: serialRed,
					Augment: func(_ *nn.Network, _ int, _ []float64, _ int) []float64 {
						time.Sleep(perSample)
						return nil
					},
				}
				if _, err := tr.Fit(nn.SmallMLP(5, 23, 32, 2), px, py); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	base := "epoch/pinned/serial/w=1"
	h.runWithMetrics(base, map[string]float64{
		"samples": float64(nSamples), "service_us": float64(perSample.Microseconds()),
	}, pinned(1, true))
	addMetric(h, base, "epochs_per_sec", 1e9/h.byName[base].NsPerOp)
	for _, w := range widths {
		name := fmt.Sprintf("epoch/pinned/tree/w=%d", w)
		h.runWithMetrics(name, map[string]float64{
			"samples": float64(nSamples), "service_us": float64(perSample.Microseconds()),
		}, pinned(w, false))
		addMetric(h, name, "epochs_per_sec", 1e9/h.byName[name].NsPerOp)
		h.speedup(fmt.Sprintf("train-pinned/w=%d-vs-serial-w=1", w), base, name)
	}

	// Real-compute epoch on the paper CNN: the honest single-host number
	// for the reduction rewrite inside a full training epoch.
	en := 128
	if short {
		en = 48
	}
	ex, ey := trainBlobs(9, en, nn.PaperInputLen)
	epoch := func(serialRed bool) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := &nn.Trainer{Epochs: 1, BatchSize: 32, Seed: 17, Workers: 1,
					SerialReduction: serialRed}
				if _, err := tr.Fit(nn.PaperCNN(17), ex, ey); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	h.runWithMetrics("epoch/real/serial/w=1", map[string]float64{"samples": float64(en)}, epoch(true))
	h.runWithMetrics("epoch/real/tree/w=1", map[string]float64{"samples": float64(en)}, epoch(false))
	h.speedup("train-real-tree-vs-serial/w=1", "epoch/real/serial/w=1", "epoch/real/tree/w=1")

	if !short {
		quantBenches(h)
	}
}

// fillGrads seeds every clone's gradient accumulators with nonzero
// values so the first reduction iteration matches a post-backward batch.
func fillGrads(clones []*nn.Network, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, c := range clones {
		for _, p := range c.Params() {
			for j := range p.G {
				p.G[j] = rng.NormFloat64()
			}
		}
	}
}

// trainBlobs builds a two-class gaussian-blob design matrix.
func trainBlobs(seed int64, n, dim int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]int, n)
	for i := range xs {
		y := i % 2
		center := -1.0
		if y == 1 {
			center = 1.0
		}
		x := make([]float64, dim)
		for j := range x {
			x[j] = center + rng.NormFloat64()*0.3
		}
		xs[i], ys[i] = x, y
	}
	return xs, ys
}

// quantBenches measures the int8 tier against the float64 workspace on
// a trained detector: single forward, batched probs (the serving bulk
// path), and the Table I accuracy fidelity of the quantized model.
func quantBenches(h *harness) {
	cfg := core.DefaultConfig()
	cfg.NumBenign = 60
	cfg.NumMal = 240
	cfg.Epochs = 30
	cfg.BatchSize = 50
	sys := core.New(cfg)
	if err := sys.BuildCorpus(); err != nil {
		fatal(err)
	}
	if _, err := sys.Fit(); err != nil {
		fatal(err)
	}
	det, err := sys.Detector()
	if err != nil {
		fatal(err)
	}
	qm, err := det.Quantized()
	if err != nil {
		fatal(err)
	}
	qws := qm.NewWS()
	fws := det.AcquireWS()
	defer det.ReleaseWS(fws)

	x := sys.TestX[0]
	h.run("quant/forward/float", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fws.Probs(x)
		}
	})
	h.run("quant/forward/int8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qws.Probs(x)
		}
	})
	h.speedup("quant-vs-float/forward", "quant/forward/float", "quant/forward/int8")

	xs := sys.TestX
	var dst [][]float64
	h.runWithMetrics("quant/probs-batch/float",
		map[string]float64{"batch": float64(len(xs))},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst = fws.ProbsBatch(xs, dst)
			}
		})
	var qdst [][]float64
	h.runWithMetrics("quant/probs-batch/int8",
		map[string]float64{"batch": float64(len(xs))},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				qdst = qws.ProbsBatch(xs, qdst)
			}
		})
	h.speedup("quant-vs-float/probs-batch", "quant/probs-batch/float", "quant/probs-batch/int8")

	// Fidelity: accuracy on the held-out split, float vs int8, plus the
	// fraction of rows a 0.2 escalation band would send to the float
	// engine. The delta is the Table I claim the docs cite.
	fHits, qHits, escalated := 0, 0, 0
	for i, v := range sys.TestX {
		fp := fws.Probs(v)
		if nn.Argmax(fp) == sys.TestY[i] {
			fHits++
		}
		qp := qws.Probs(v)
		if nn.Argmax(qp) == sys.TestY[i] {
			qHits++
		}
		if m := qp[0] - qp[1]; m < 0.2 && m > -0.2 {
			escalated++
		}
	}
	n := float64(len(sys.TestX))
	fAcc, qAcc := float64(fHits)/n, float64(qHits)/n
	delta := fAcc - qAcc
	if delta < 0 {
		delta = -delta
	}
	addMetric(h, "quant/probs-batch/int8", "acc_float", fAcc)
	addMetric(h, "quant/probs-batch/int8", "acc_int8", qAcc)
	addMetric(h, "quant/probs-batch/int8", "acc_delta_pp", delta*100)
	addMetric(h, "quant/probs-batch/int8", "escalation_frac_band=0.2", float64(escalated)/n)
}
