package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"advmal/internal/core"
	"advmal/internal/features"
	"advmal/internal/nn"
	"advmal/internal/serve"
	"advmal/internal/synth"
)

// serveSuite benchmarks the online detection service's inference
// scheduler at saturation: the micro-batching configurations against the
// unbatched per-request baseline — the seed's serving path, where every
// request runs alone through the shared allocating oracle (which must be
// mutex-serialized: the oracle Network keeps per-layer activation state,
// so concurrent use is a data race). A second per-request row swaps in
// pooled zero-alloc workspaces to separate the engine win from the
// batching win. A closed-loop latency pass then checks the p99 SLO:
// client latency stays under the batch window plus the inference budget.
func serveSuite(h *harness, short bool) {
	det := serveDetector()
	vecs := serveVectors(det, 64)

	// Saturation means enough closed-loop clients to fill the largest
	// batch cap; with fewer clients than the cap every batch would wait
	// out the full window on an empty queue.
	parallel := 64
	requests := 2000
	if short {
		parallel = 16
		requests = 400
	}

	// The seed's per-request path: one shared oracle, one request at a
	// time. BatchSize 1 + zero window = no coalescing, pure scheduling.
	oracle := &oracleEngine{net: det.Net}
	perReqOracle := serveThroughputRow(h, "serve/per-request/oracle", parallel, vecs,
		serve.BatcherConfig{
			BatchSize: 1, QueueDepth: 4096,
			NewEngine: func() serve.BatchEngine { return oracle },
		})

	// Per-request with pooled workspaces: engine win without batching.
	serveThroughputRow(h, "serve/per-request/ws", parallel, vecs,
		serve.BatcherConfig{
			BatchSize: 1, QueueDepth: 4096,
			NewEngine: func() serve.BatchEngine { return det.AcquireWS() },
		})

	// Micro-batching configurations.
	configs := []struct {
		name   string
		batch  int
		window time.Duration
	}{
		{"serve/batch/b=16,w=500us", 16, 500 * time.Microsecond},
		{"serve/batch/b=64,w=2ms", 64, 2 * time.Millisecond},
	}
	for _, c := range configs {
		serveThroughputRow(h, c.name, parallel, vecs, serve.BatcherConfig{
			BatchSize: c.batch, Window: c.window, QueueDepth: 4096,
			NewEngine: func() serve.BatchEngine { return det.AcquireWS() },
		})
	}

	h.speedup("serve-ws-vs-oracle/per-request", "serve/per-request/oracle", "serve/per-request/ws")
	h.speedup("serve-batch16-vs-per-request", "serve/per-request/oracle", "serve/batch/b=16,w=500us")
	h.speedup("serve-batch64-vs-per-request", "serve/per-request/oracle", "serve/batch/b=64,w=2ms")

	// Quantized tiers on the headline batching configuration: the pure
	// int8 bulk path, and the two-tier engine with the default 0.2
	// escalation band (borderline rows re-run on the float workspace; the
	// recorded escalated_frac says how much of this traffic that was).
	calib, err := nn.Calibrate(det.Net, vecs)
	if err != nil {
		fatal(err)
	}
	det.Calib = calib
	qm, err := det.Quantized()
	if err != nil {
		fatal(err)
	}
	serveThroughputRow(h, "serve/batch/b=64,w=2ms/quant", parallel, vecs,
		serve.BatcherConfig{
			BatchSize: 64, Window: 2 * time.Millisecond, QueueDepth: 4096,
			NewEngine: func() serve.BatchEngine { return qm.NewWS() },
		})
	tierMetrics := serve.NewMetrics()
	serveThroughputRow(h, "serve/batch/b=64,w=2ms/tiered", parallel, vecs,
		serve.BatcherConfig{
			BatchSize: 64, Window: 2 * time.Millisecond, QueueDepth: 4096,
			NewEngine: func() serve.BatchEngine {
				return serve.NewTieredEngine(qm.NewWS(), det.AcquireWS(), 0.2, tierMetrics)
			},
		})
	if total := tierMetrics.TierBulk.Load() + tierMetrics.TierEscalated.Load(); total > 0 {
		addMetric(h, "serve/batch/b=64,w=2ms/tiered", "escalated_frac",
			float64(tierMetrics.TierEscalated.Load())/float64(total))
	}
	h.speedup("serve-quant-vs-float/batch64", "serve/batch/b=64,w=2ms", "serve/batch/b=64,w=2ms/quant")
	h.speedup("serve-tiered-vs-float/batch64", "serve/batch/b=64,w=2ms", "serve/batch/b=64,w=2ms/tiered")

	// Latency pass on the headline configuration: closed-loop clients,
	// client-observed latency vs. the window + inference budget SLO.
	serveLatencyRow(h, "serve/latency/b=64,w=2ms", parallel, requests, vecs,
		serve.BatcherConfig{
			BatchSize: 64, Window: 2 * time.Millisecond, QueueDepth: 4096,
			NewEngine: func() serve.BatchEngine { return det.AcquireWS() },
		}, 2*time.Millisecond)

	_ = perReqOracle
}

// serveDetector builds the serving detector: an untrained PaperCNN with
// an identity scaler — inference cost is weight-independent, so verdict
// speed matches a trained model without paying for training.
func serveDetector() *core.Detector {
	min := make([]float64, features.NumFeatures)
	max := make([]float64, features.NumFeatures)
	for i := range max {
		max[i] = 1
	}
	return &core.Detector{
		Scaler:    &features.Scaler{Min: min, Max: max},
		Net:       nn.PaperCNN(0),
		Extractor: features.NewExtractor(0),
	}
}

// serveVectors renders n synthetic programs through the real serving
// front half (disassemble → extract → scale).
func serveVectors(det *core.Detector, n int) [][]float64 {
	samples, err := synth.Generate(synth.Config{Seed: 1, NumBenign: (n + 1) / 2, NumMal: n / 2})
	if err != nil {
		fatal(err)
	}
	vecs := make([][]float64, len(samples))
	for i, s := range samples {
		v, _, _, err := det.Vectorize(s.Prog)
		if err != nil {
			fatal(err)
		}
		vecs[i] = v
	}
	return vecs
}

// oracleEngine is the seed's inference path as a BatchEngine: the
// allocating oracle Network behind a mutex (its layers keep per-call
// activation state, so serialization is the minimal correct deployment).
type oracleEngine struct {
	mu  sync.Mutex
	net *nn.Network
}

func (e *oracleEngine) ProbsBatch(xs [][]float64, dst [][]float64) [][]float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = e.net.Probs(x)
	}
	return out
}

func (e *oracleEngine) SafeProbs(x []float64) ([]float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.net.SafeProbs(x)
}

// serveThroughputRow measures one scheduler configuration at saturation:
// `parallel` closed-loop clients submitting round-robin vectors. ns/op
// is wall-clock per request; the row records achieved req/s.
func serveThroughputRow(h *harness, name string, parallel int, vecs [][]float64, cfg serve.BatcherConfig) Result {
	b := serve.NewBatcher(cfg)
	defer b.Close()
	var rr atomic.Int64
	res := h.run(name, func(tb *testing.B) {
		tb.SetParallelism(parallel)
		tb.RunParallel(func(pb *testing.PB) {
			ctx := context.Background()
			for pb.Next() {
				x := vecs[int(rr.Add(1))%len(vecs)]
				if _, err := b.Submit(ctx, x); err != nil {
					tb.Error(err)
					return
				}
			}
		})
	})
	addMetric(h, name, "clients", float64(parallel))
	if res.NsPerOp > 0 {
		addMetric(h, name, "req_per_sec", 1e9/res.NsPerOp)
	}
	return res
}

// serveLatencyRow runs a fixed request count through one configuration
// and records client-observed p50/p95/p99 against the SLO budget: the
// batch window plus the p99 batch-execution time.
func serveLatencyRow(h *harness, name string, parallel, requests int, vecs [][]float64, cfg serve.BatcherConfig, window time.Duration) {
	m := serve.NewMetrics()
	cfg.Metrics = m
	b := serve.NewBatcher(cfg)
	lats := make([]time.Duration, requests)
	var idx atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < parallel; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for {
				i := int(idx.Add(1)) - 1
				if i >= requests {
					return
				}
				t0 := time.Now()
				if _, err := b.Submit(ctx, vecs[i%len(vecs)]); err != nil {
					fatal(fmt.Errorf("%s: %w", name, err))
				}
				lats[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.Close()

	sum := serve.Summarize(lats)
	inferP99 := time.Duration(m.InferLat.Quantile(0.99) * float64(time.Second))
	budget := window + inferP99
	res := Result{
		Name:       name,
		Iterations: requests,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(requests),
		Metrics: map[string]float64{
			"clients":           float64(parallel),
			"req_per_sec":       float64(requests) / elapsed.Seconds(),
			"p50_ms":            float64(sum.P50) / 1e6,
			"p95_ms":            float64(sum.P95) / 1e6,
			"p99_ms":            float64(sum.P99) / 1e6,
			"window_ms":         float64(window) / 1e6,
			"infer_p99_ms":      float64(inferP99) / 1e6,
			"budget_ms":         float64(budget) / 1e6,
			"p99_within_budget": boolMetric(sum.P99 <= budget),
			"mean_batch_size":   meanBatch(m),
		},
	}
	h.snap.Results = append(h.snap.Results, res)
	h.byName[name] = res
	fmt.Fprintf(os.Stderr, "%-34s p50=%v p95=%v p99=%v budget=%v batch=%.1f\n",
		name, sum.P50.Round(time.Microsecond), sum.P95.Round(time.Microsecond),
		sum.P99.Round(time.Microsecond), budget.Round(time.Microsecond), meanBatch(m))
	if sum.P99 > budget {
		fatal(fmt.Errorf("%s: p99 %v exceeds budget %v (window %v + infer p99 %v)",
			name, sum.P99, budget, window, inferP99))
	}
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func meanBatch(m *serve.Metrics) float64 {
	if m.BatchSize.Count() == 0 {
		return 0
	}
	return m.BatchSize.Sum() / float64(m.BatchSize.Count())
}
