package main

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"
	"time"

	"advmal/internal/features"
	"advmal/internal/index"
	"advmal/internal/synth"
)

// indexSuite benchmarks the similarity layer: HNSW graph search against
// the exact-scan oracle at corpus scale. For each size it records build
// wall-clock, mean search throughput, per-query p50/p99 latency, and
// recall@10 measured against the oracle's ground truth on the same
// queries — the committed snapshot is the evidence behind the "≥10x at
// 100k with recall ≥0.95" serving claim.
func indexSuite(h *harness, short bool) {
	sizes := []int{10_000, 100_000, 1_000_000}
	if short {
		sizes = []int{2_000, 10_000}
	}
	const nQueries = 200
	const k = 10
	// Queries are held out from the same generator draw as the corpus —
	// same cluster structure, never inserted — so recall is measured on
	// the distribution the index actually serves. EfSearch=64 is the
	// serving operating point: recall@10 ≈ 0.99 in-distribution at half
	// the beam cost of the library default (the default stays 128, sized
	// for the harder off-manifold probes the property test throws at it).
	const benchEfSearch = 64

	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		all, labels := synth.LabeledVectors(rng, n+nQueries, features.NumFeatures)
		vecs, queries := all[:n], all[n:]

		buildName := fmt.Sprintf("index/build-hnsw/n=%d", n)
		var hn *index.HNSW
		h.runWithMetrics(buildName,
			map[string]float64{"entries": float64(n)},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					hn = index.NewHNSW(index.HNSWConfig{Seed: 1, EfSearch: benchEfSearch}, nil)
					for j, v := range vecs {
						if _, err := hn.Add(labels[j], v); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		addThroughput(h, buildName, float64(n))

		ex := index.NewExact(nil)
		for j, v := range vecs {
			if _, err := ex.Add(labels[j], v); err != nil {
				fatal(err)
			}
		}

		// Ground truth once per query, reused for both recall and the
		// exact-scan latency distribution.
		truth := make([][]index.Hit, len(queries))
		exactLat := make([]time.Duration, len(queries))
		for i, q := range queries {
			start := time.Now()
			hits, err := ex.Search(q, k)
			exactLat[i] = time.Since(start)
			if err != nil {
				fatal(err)
			}
			truth[i] = hits
		}

		for _, q := range queries { // warm the graph + scratch pool before timing
			if _, err := hn.Search(q, k); err != nil {
				fatal(err)
			}
		}
		hnswLat := make([]time.Duration, len(queries))
		var overlap, total int
		for i, q := range queries {
			start := time.Now()
			hits, err := hn.Search(q, k)
			hnswLat[i] = time.Since(start)
			if err != nil {
				fatal(err)
			}
			ids := make(map[int]bool, len(truth[i]))
			for _, t := range truth[i] {
				ids[t.ID] = true
			}
			for _, g := range hits {
				if ids[g.ID] {
					overlap++
				}
			}
			total += len(truth[i])
		}
		recall := float64(overlap) / float64(total)

		exP50, exP99 := percentiles(exactLat)
		hnP50, hnP99 := percentiles(hnswLat)

		exName := fmt.Sprintf("index/search-exact/n=%d", n)
		hnName := fmt.Sprintf("index/search-hnsw/n=%d", n)
		h.runWithMetrics(exName,
			map[string]float64{
				"k":      k,
				"p50_us": float64(exP50.Microseconds()),
				"p99_us": float64(exP99.Microseconds()),
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := ex.Search(queries[i%len(queries)], k); err != nil {
						b.Fatal(err)
					}
				}
			})
		h.runWithMetrics(hnName,
			map[string]float64{
				"k":            k,
				"ef_search":    benchEfSearch,
				"recall_at_10": recall,
				"p50_us":       float64(hnP50.Microseconds()),
				"p99_us":       float64(hnP99.Microseconds()),
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := hn.Search(queries[i%len(queries)], k); err != nil {
						b.Fatal(err)
					}
				}
			})
		h.speedup(fmt.Sprintf("hnsw-vs-exact/n=%d", n), exName, hnName)
		if hnP99 > 0 {
			h.snap.Speedups[fmt.Sprintf("hnsw-vs-exact-p99/n=%d", n)] =
				float64(exP99) / float64(hnP99)
		}
		fmt.Fprintf(os.Stderr, "index n=%d: recall@10=%.3f exact p99=%v hnsw p99=%v\n",
			n, recall, exP99, hnP99)
	}
}

// percentiles returns the p50 and p99 of the latency samples.
func percentiles(lat []time.Duration) (p50, p99 time.Duration) {
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := func(q float64) time.Duration {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return idx(0.50), idx(0.99)
}
