package main

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"advmal/internal/core"
	"advmal/internal/features"
	"advmal/internal/nn"
	"advmal/internal/serve"
)

// swapSuite measures what a hot swap costs the serving path. The handle
// engine re-binds to the current Model snapshot per batch, so the steady
// row (no swaps ever) is the zero-overhead baseline; the swap rows keep
// the same saturated client load while a background goroutine installs a
// fresh snapshot every interval. The claims under test: throughput under
// continuous swapping stays near steady-state (the re-bind is one
// pointer compare per batch), and not a single request errors — zero
// dropped requests is the tentpole guarantee, measured here in-process
// and in scripts/swap_smoke.sh over HTTP.
func swapSuite(h *harness, short bool) {
	det := serveDetector()
	rawVecs := serveVectors(det, 64)

	parallel := 64
	if short {
		parallel = 16
	}
	cfg := serve.BatcherConfig{BatchSize: 64, Window: 2 * time.Millisecond, QueueDepth: 4096}

	steady := swapThroughputRow(h, "swap/steady", parallel, rawVecs, cfg, 0)
	every100 := swapThroughputRow(h, "swap/every-100ms", parallel, rawVecs, cfg, 100*time.Millisecond)
	every10 := swapThroughputRow(h, "swap/every-10ms", parallel, rawVecs, cfg, 10*time.Millisecond)

	h.snap.Speedups["swap-steady-vs-100ms-swaps"] = ratio(steady, every100)
	h.snap.Speedups["swap-steady-vs-10ms-swaps"] = ratio(steady, every10)
}

// ratio returns baseline/candidate ns/op (>1 = candidate faster; for the
// swap suite ~1.0 means swapping costs nothing).
func ratio(base, cand Result) float64 {
	if cand.NsPerOp == 0 {
		return 0
	}
	return base.NsPerOp / cand.NsPerOp
}

// swapThroughputRow drives saturated closed-loop clients through a
// handle-backed batcher while snapshots swap in at the given interval
// (0 = never). Any Submit error fails the bench — a hot swap must not
// surface to a single request.
func swapThroughputRow(h *harness, name string, parallel int, rawVecs [][]float64, cfg serve.BatcherConfig, every time.Duration) Result {
	freshModel := func(seed int64) *core.Model {
		min := make([]float64, features.NumFeatures)
		max := make([]float64, features.NumFeatures)
		for i := range max {
			max[i] = 1
		}
		return &core.Model{
			Scaler:    &features.Scaler{Min: min, Max: max},
			Net:       nn.PaperCNN(seed),
			Extractor: features.NewExtractor(0),
		}
	}
	handle := core.NewHandle(freshModel(0))
	cfg.NewEngine = func() serve.BatchEngine { return serve.NewHandleEngine(handle, false, 0, nil) }
	b := serve.NewBatcher(cfg)
	defer b.Close()

	done := make(chan struct{})
	swapsDone := make(chan uint64, 1)
	if every > 0 {
		go func() {
			tick := time.NewTicker(every)
			defer tick.Stop()
			var n uint64
			for {
				select {
				case <-done:
					swapsDone <- n
					return
				case <-tick.C:
					if _, err := handle.Swap(freshModel(int64(n%2) + 1)); err != nil {
						fatal(err)
					}
					n++
				}
			}
		}()
	}

	var rr atomic.Int64
	res := h.run(name, func(tb *testing.B) {
		tb.SetParallelism(parallel)
		tb.RunParallel(func(pb *testing.PB) {
			ctx := context.Background()
			for pb.Next() {
				x := rawVecs[int(rr.Add(1))%len(rawVecs)]
				if _, err := b.Submit(ctx, x); err != nil {
					tb.Errorf("request failed during hot swap: %v", err)
					return
				}
			}
		})
	})
	close(done)
	addMetric(h, name, "clients", float64(parallel))
	if res.NsPerOp > 0 {
		addMetric(h, name, "req_per_sec", 1e9/res.NsPerOp)
	}
	if every > 0 {
		swaps := <-swapsDone
		addMetric(h, name, "swaps_performed", float64(swaps))
		addMetric(h, name, "swap_interval_ms", float64(every)/1e6)
	}
	addMetric(h, name, "errors", 0) // tb.Error above aborts the run
	return res
}
