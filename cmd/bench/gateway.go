package main

// The gateway suite is unlike the in-process suites: it measures the
// cluster, not a function. It builds the real binaries, trains a small
// detector, boots N serve replicas plus the gateway in child processes,
// and drives them with the real cmd/loadgen — so the committed numbers
// exercise the exact code paths production would.
//
// Replica capacity is pinned by *service time*, not host parallelism:
// each replica runs -workers 1 -batch 1 with a serialized chaos
// inference delay (simulating a heavier model), so its ceiling is
// 1/delay requests per second no matter how many cores the host has.
// That makes the scaling claim honest on any machine — including a
// single-core CI box, where three CPU-bound replicas could never beat
// one — because the gateway's job here is routing and failover, and
// what the suite pins is that three service-time-bound replicas behind
// the gateway deliver >= 1.8x the throughput of one.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"advmal/internal/core"
	"advmal/internal/serve"
)

// gatewayLoadReport mirrors the loadgen -json fields the suite consumes.
type gatewayLoadReport struct {
	Requests    int                  `json:"requests"`
	OK          int                  `json:"ok"`
	Errors      int                  `json:"errors"`
	AchievedRPS float64              `json:"achieved_rps"`
	Latency     serve.LatencySummary `json:"latency"`
}

// proc is one child process with its scraped listen address.
type proc struct {
	cmd  *exec.Cmd
	addr string
}

func gatewaySuite(h *harness, short bool) {
	dir, err := os.MkdirTemp("", "gwbench")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Fprintln(os.Stderr, "gateway: building binaries")
	bins := map[string]string{}
	for _, name := range []string{"serve", "gateway", "loadgen"} {
		bin := filepath.Join(dir, name)
		build := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			fatal(fmt.Errorf("building cmd/%s: %w", name, err))
		}
		bins[name] = bin
	}

	model := filepath.Join(dir, "detector.gob")
	if err := trainDetector(model, short); err != nil {
		fatal(err)
	}

	duration, conc := 8*time.Second, 16
	inferMs := 3
	counts := []int{1, 2, 3}
	if short {
		duration, counts = 2*time.Second, []int{1, 3}
	}

	for _, n := range counts {
		rps, lat, err := gatewayPoint(bins, model, n, inferMs, conc, duration)
		if err != nil {
			fatal(fmt.Errorf("replicas=%d: %w", n, err))
		}
		name := fmt.Sprintf("gateway/replicas=%d", n)
		res := Result{
			Name:       name,
			Iterations: lat.Count,
			// ns per request keeps speedup() meaning "x-fold throughput".
			NsPerOp: 1e9 / rps,
			Metrics: map[string]float64{
				"achieved_rps": rps,
				"infer_ms":     float64(inferMs),
				"conc":         float64(conc),
				"p50_ms":       float64(lat.P50) / 1e6,
				"p99_ms":       float64(lat.P99) / 1e6,
			},
		}
		h.snap.Results = append(h.snap.Results, res)
		h.byName[name] = res
		fmt.Fprintf(os.Stderr, "%-34s %10.1f req/s  p50=%.1fms p99=%.1fms\n",
			name, rps, res.Metrics["p50_ms"], res.Metrics["p99_ms"])
	}
	for _, n := range counts[1:] {
		h.speedup(fmt.Sprintf("gateway-%d-vs-1", n),
			"gateway/replicas=1", fmt.Sprintf("gateway/replicas=%d", n))
	}
}

// trainDetector fits a small detector and saves it for the replicas.
func trainDetector(path string, short bool) error {
	cfg := core.DefaultConfig()
	cfg.NumBenign = 40
	cfg.NumMal = 160
	cfg.Epochs = 20
	cfg.BatchSize = 50
	if short {
		cfg.NumBenign, cfg.NumMal, cfg.Epochs = 15, 60, 6
	}
	fmt.Fprintln(os.Stderr, "gateway: training detector")
	sys := core.New(cfg)
	if err := sys.BuildCorpus(); err != nil {
		return err
	}
	if _, err := sys.Fit(); err != nil {
		return err
	}
	det, err := sys.Detector()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := det.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// gatewayPoint boots n replicas + the gateway, applies the simulated
// service time, runs one loadgen pass through the gateway, and tears
// everything down.
func gatewayPoint(bins map[string]string, model string, n, inferMs, conc int, duration time.Duration) (rps float64, lat serve.LatencySummary, err error) {
	var procs []*proc
	defer func() {
		for _, p := range procs {
			p.cmd.Process.Signal(syscall.SIGTERM)
		}
		for _, p := range procs {
			waitOrKill(p.cmd, 10*time.Second)
		}
	}()

	var backendAddrs []string
	for i := 0; i < n; i++ {
		p, perr := startProc(bins["serve"],
			"-model", model, "-addr", "127.0.0.1:0",
			"-workers", "1", "-batch", "1", "-window", "0", "-chaos")
		if perr != nil {
			return 0, lat, fmt.Errorf("replica %d: %w", i, perr)
		}
		procs = append(procs, p)
		backendAddrs = append(backendAddrs, p.addr)
		if perr := postJSON("http://"+p.addr+"/chaosz",
			fmt.Sprintf(`{"infer_ms":%d}`, inferMs)); perr != nil {
			return 0, lat, fmt.Errorf("arming chaos on %s: %w", p.addr, perr)
		}
	}
	gw, err := startProc(bins["gateway"],
		"-addr", "127.0.0.1:0", "-backends", strings.Join(backendAddrs, ","))
	if err != nil {
		return 0, lat, fmt.Errorf("gateway: %w", err)
	}
	procs = append(procs, gw)

	out, err := exec.Command(bins["loadgen"],
		"-addr", "http://"+gw.addr,
		"-conc", fmt.Sprint(conc),
		"-duration", duration.String(),
		"-programs", "32", "-seed", "1", "-json").Output()
	if err != nil {
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return 0, lat, fmt.Errorf("loadgen: %w\nstderr: %s\nstdout: %s", err, ee.Stderr, out)
		}
		return 0, lat, fmt.Errorf("loadgen: %w", err)
	}
	var rep gatewayLoadReport
	if err := json.Unmarshal(out, &rep); err != nil {
		return 0, lat, fmt.Errorf("parsing loadgen report: %w", err)
	}
	if rep.Errors > 0 {
		return 0, lat, fmt.Errorf("loadgen reported %d errors of %d requests", rep.Errors, rep.Requests)
	}
	if rep.AchievedRPS <= 0 {
		return 0, lat, fmt.Errorf("loadgen achieved no throughput")
	}
	return rep.AchievedRPS, rep.Latency, nil
}

// startProc launches a binary that prints "... listening on ADDR ..."
// and returns once the address is scraped. Stdout keeps draining in the
// background so the child never blocks on a full pipe.
func startProc(bin string, args ...string) (*proc, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = io.Discard
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrC := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j >= 0 {
					rest = rest[:j]
				}
				select {
				case addrC <- rest:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrC:
		return &proc{cmd: cmd, addr: addr}, nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("%s: no listen line within 30s", filepath.Base(bin))
	}
}

// waitOrKill waits for a signaled child, escalating to SIGKILL at the
// deadline.
func waitOrKill(cmd *exec.Cmd, d time.Duration) {
	done := make(chan struct{})
	go func() { cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(d):
		cmd.Process.Kill()
		<-done
	}
}

// postJSON posts a small JSON body and checks for 200.
func postJSON(url, body string) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}
