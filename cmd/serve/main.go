// Command serve runs the online detection service: an HTTP front end
// over a saved detector whose inference core is the micro-batching
// scheduler in internal/serve.
//
// Usage:
//
//	serve -model detector.gob -addr :8377 -batch 64 -window 2ms
//
// Endpoints: POST /v1/classify (assembly text or JSON), POST
// /v1/classify/vector (raw feature vector), GET /v1/model (serving
// snapshot version + swap count), GET /metrics, /healthz, /readyz.
// With -admin, POST /admin/swap hot-swaps a model gob into the serving
// handle with zero dropped requests. With -retrain, the canary-gated
// online retraining loop (internal/lifecycle) runs in-process: train a
// candidate per drifted window, gate it against the live model on
// clean holdout metrics and per-attack evasion rates, swap on pass.
//
// On SIGTERM or SIGINT the server drains gracefully: /readyz flips to
// 503, the listener stops accepting, in-flight requests flush through
// the batcher, and the process exits 0 with the drain accounting on
// stderr — dropped is always 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"advmal/internal/core"
	"advmal/internal/index"
	"advmal/internal/lifecycle"
	"advmal/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		model   = flag.String("model", "detector.gob", "detector file (train one with classify -train)")
		addr    = flag.String("addr", ":8377", "listen address (use :0 for an ephemeral port)")
		batch   = flag.Int("batch", 64, "max requests coalesced per inference batch")
		window  = flag.Duration("window", 2*time.Millisecond, "max time a request waits for batch peers (0 = flush greedily)")
		queue   = flag.Int("queue", 1024, "admission queue depth (full queue fast-fails 429)")
		workers = flag.Int("workers", 0, "batcher workers (0 = GOMAXPROCS)")
		timeout = flag.Duration("timeout", 5*time.Second, "per-request budget in queue + inference")
		grace   = flag.Duration("grace", 30*time.Second, "drain deadline after SIGTERM")
		chaos   = flag.Bool("chaos", false, "arm the fault-injection surface (/chaosz) — test harnesses only")
		idx     = flag.String("index", "", "similarity corpus snapshot (build one with classify -train -index); arms /v1/similar and classify triage")
		quant   = flag.Bool("quant", false, "serve bulk traffic on the int8 quantized tier (detector must carry calibration ranges)")
		band    = flag.Float64("band", 0.2, "with -quant: escalate rows whose quantized top-two margin is below this to the float engine (negative = never)")
		admin   = flag.Bool("admin", false, "mount POST /admin/swap (hot-swap a model gob into the serving handle)")

		retrain       = flag.Bool("retrain", false, "run the online retraining loop: train candidates on a drifting sample stream, canary-gate them against the live model, hot-swap on pass")
		retrainEvery  = flag.Duration("retrain-interval", 30*time.Second, "with -retrain: cycle interval")
		retrainBenign = flag.Int("retrain-benign", 40, "with -retrain: benign samples per window")
		retrainMal    = flag.Int("retrain-malware", 120, "with -retrain: malicious samples per window")
		retrainEpochs = flag.Int("retrain-epochs", 30, "with -retrain: candidate training epochs")
		retrainAtkN   = flag.Int("retrain-attack-samples", 24, "with -retrain: holdout samples per evasion gate (negative skips the attack gates)")
		retrainSeed   = flag.Int64("retrain-seed", 1, "with -retrain: stream + training seed")
	)
	flag.Parse()

	f, err := os.Open(*model)
	if err != nil {
		return fmt.Errorf("opening detector (train one with classify -train): %w", err)
	}
	mdl, err := core.LoadModel(f)
	f.Close()
	if err != nil {
		return err
	}
	handle := core.NewHandle(mdl)

	var corpus *index.Corpus
	if *idx != "" {
		fi, err := os.Open(*idx)
		if err != nil {
			return fmt.Errorf("opening index (build one with classify -train -index): %w", err)
		}
		corpus, err = index.Load(fi)
		fi.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "serve: similarity index loaded (%d entries, triage threshold %.4f)\n",
			corpus.HNSW.Len(), corpus.Triage.Threshold)
	}

	w := *window
	if w == 0 {
		w = -1 // Config: negative = greedy flush, zero = default
	}
	cfg := serve.Config{
		Handle:         handle,
		Admin:          *admin,
		BatchSize:      *batch,
		Window:         w,
		QueueDepth:     *queue,
		Workers:        *workers,
		RequestTimeout: *timeout,
		Corpus:         corpus,
		Quantize:       *quant,
		Band:           *band,
	}
	if *quant {
		fmt.Fprintf(os.Stderr, "serve: int8 quantized tier armed (escalation band %.2f)\n", *band)
	}
	if *admin {
		fmt.Fprintln(os.Stderr, "serve: admin swap endpoint armed (POST /admin/swap)")
	}
	if *chaos {
		cfg.Chaos = &serve.Chaos{Exit: os.Exit}
		fmt.Fprintln(os.Stderr, "serve: chaos surface armed (/chaosz)")
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}

	ln, err := listenRetry(*addr)
	if err != nil {
		return err
	}
	// The resolved address line doubles as the discovery protocol: smoke
	// scripts and the gateway harness scrape it instead of sleeping, so
	// :0 ephemeral ports work without races.
	fmt.Printf("serve: listening on %s (batch=%d window=%v queue=%d)\n",
		ln.Addr(), *batch, *window, *queue)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *retrain {
		rt := &lifecycle.Retrainer{
			Handle: handle,
			Stream: lifecycle.NewStream(lifecycle.StreamConfig{
				Seed:      *retrainSeed,
				NumBenign: *retrainBenign,
				NumMal:    *retrainMal,
			}),
			Trainer:   lifecycle.Trainer{Seed: *retrainSeed, Epochs: *retrainEpochs},
			Gates:     lifecycle.Gates{AttackSamples: *retrainAtkN},
			WarmStart: true,
		}
		rt.OnReport = func(rep *lifecycle.CycleReport) {
			srv.SetLifecycle(rt.Status())
			verdict := "REJECTED"
			if rep.Swapped {
				verdict = fmt.Sprintf("SWAPPED v%d -> v%d", rep.OldVersion, rep.NewVersion)
			}
			fmt.Fprintf(os.Stderr,
				"serve: retrain window %d (%d samples): %s — live %s, candidate %s (train %v, canary %v)\n",
				rep.Window, rep.WindowSize, verdict, rep.Canary.Live, rep.Canary.Candidate,
				rep.TrainTime.Round(time.Millisecond), rep.CanaryTime.Round(time.Millisecond))
		}
		go rt.Run(ctx, *retrainEvery, func(err error) {
			fmt.Fprintln(os.Stderr, "serve: retrain cycle:", err)
		})
		fmt.Fprintf(os.Stderr, "serve: online retraining armed (every %v, window %d+%d, %d epochs)\n",
			*retrainEvery, *retrainBenign, *retrainMal, *retrainEpochs)
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Drain sequence: stop advertising readiness, stop the listener and
	// wait for in-flight handlers (which wait on the batcher), then
	// flush the batcher queue. Order matters — Shutdown before Close
	// keeps every accepted request answerable.
	fmt.Fprintln(os.Stderr, "serve: signal received, draining")
	srv.NotReady()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "serve: shutdown:", err)
	}
	st := srv.Drain()
	fmt.Fprintf(os.Stderr, "serve: drained accepted=%d completed=%d dropped=%d\n",
		st.Accepted, st.Completed, st.Dropped)
	if st.Dropped != 0 {
		return fmt.Errorf("drain dropped %d in-flight requests", st.Dropped)
	}
	return nil
}

// listenRetry binds addr, retrying transient EADDRINUSE with doubling
// backoff — the window where a bounced replica's old socket lingers in
// TIME_WAIT, or a supervisor restarts it faster than the kernel reaps
// the port. Other bind errors fail immediately.
func listenRetry(addr string) (net.Listener, error) {
	const attempts = 5
	backoff := 100 * time.Millisecond
	for i := 1; ; i++ {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		if !errors.Is(err, syscall.EADDRINUSE) || i == attempts {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "serve: bind %s busy (attempt %d/%d), retrying in %v\n",
			addr, i, attempts, backoff)
		time.Sleep(backoff)
		backoff *= 2
	}
}
