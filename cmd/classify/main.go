// Command classify applies a saved detector (see cmd/train -model ... or
// classify -train) to programs given as assembly text files in the ir
// format, printing each verdict with its confidence and CFG summary.
//
// Usage:
//
//	classify -train -model detector.gob              # train & save a detector
//	classify -model detector.gob prog1.asm prog2.asm # classify programs
//	classify -json -model detector.gob prog1.asm     # one verdict object per line
//
// -json emits each verdict in the serving schema (internal/serve.Verdict,
// the same objects cmd/serve returns), so offline and online pipelines
// are diffable.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"advmal/internal/core"
	"advmal/internal/index"
	"advmal/internal/ir"
	"advmal/internal/report"
	"advmal/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "classify: interrupted — pipeline cancelled cleanly, partial progress above")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "classify:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		model    = flag.String("model", "detector.gob", "detector file")
		train    = flag.Bool("train", false, "train a detector and save it to -model")
		seed     = flag.Int64("seed", 1, "pipeline seed (with -train)")
		epochs   = flag.Int("epochs", 200, "training epochs (with -train)")
		benign   = flag.Int("benign", 276, "benign corpus size (with -train)")
		malware  = flag.Int("malware", 2281, "malicious corpus size (with -train)")
		asJSON   = flag.Bool("json", false, "emit one serve.Verdict JSON object per line")
		idxPath  = flag.String("index", "", "with -train: also build the similarity corpus index (HNSW over the labeled training split) and save it here")
		families = flag.Bool("families", false, "with -train: fit the multi-class family head (benign + each malware family) instead of the binary detector; prints the confusion matrix and the collapsed binary operating point")
	)
	flag.Parse()

	if *train {
		cfg := core.DefaultConfig()
		cfg.Seed = *seed
		cfg.Epochs = *epochs
		cfg.NumBenign = *benign
		cfg.NumMal = *malware
		if *families {
			cfg.Classes = core.NumFamilyClasses
		}
		sys := core.New(cfg)
		if err := sys.BuildCorpusCtx(ctx); err != nil {
			return err
		}
		if _, err := sys.FitCtx(ctx); err != nil {
			return err
		}
		m, err := sys.EvaluateTest()
		if err != nil {
			return err
		}
		fmt.Println("trained:", m)
		if *families {
			fm, err := sys.EvaluateFamilyHead()
			if err != nil {
				return err
			}
			fmt.Print(report.Confusion(
				fmt.Sprintf("Family head confusion (accuracy %.2f%%, n=%d)", fm.Accuracy*100, fm.N),
				core.ClassLabels(core.NumFamilyClasses), fm.Confusion).String())
			fmt.Printf("collapsed binary operating point: %v\n", fm.Collapse())
		}
		det, err := sys.Detector()
		if err != nil {
			return err
		}
		f, err := os.Create(*model)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := det.Save(f); err != nil {
			return err
		}
		fmt.Println("detector saved to", *model)
		if *idxPath != "" {
			corpus, err := sys.BuildCorpusIndex(index.HNSWConfig{}, 0)
			if err != nil {
				return err
			}
			fi, err := os.Create(*idxPath)
			if err != nil {
				return err
			}
			defer fi.Close()
			if err := corpus.Save(fi); err != nil {
				return err
			}
			fmt.Printf("similarity index saved to %s (%d entries, triage threshold %.4f)\n",
				*idxPath, corpus.HNSW.Len(), corpus.Triage.Threshold)
		}
		return nil
	}

	if flag.NArg() == 0 {
		return fmt.Errorf("no programs given; pass assembly files (ir format) or use -train")
	}
	f, err := os.Open(*model)
	if err != nil {
		return fmt.Errorf("opening detector (train one with -train): %w", err)
	}
	det, err := core.LoadDetector(f)
	f.Close()
	if err != nil {
		return err
	}
	if *asJSON {
		return classifyFilesJSON(ctx, det, flag.Args(), os.Stdout)
	}
	return classifyFiles(ctx, det, flag.Args(), os.Stdout)
}

// classifyFiles classifies each assembly file with det, writing one verdict
// line per program to w. Malformed inputs produce errors, never panics: the
// parser, disassembler, and the recover-guarded detector forward pass all
// report failures as wrapped errors carrying the file path.
func classifyFiles(ctx context.Context, det *core.Detector, paths []string, w io.Writer) error {
	for _, path := range paths {
		if err := ctx.Err(); err != nil {
			return err
		}
		v, err := classifyOne(det, path)
		if err != nil {
			return err
		}
		verdict := "benign"
		if v.Malicious {
			verdict = "MALWARE"
			if v.Family != "" {
				verdict += " (" + v.Family + ")"
			}
		}
		fmt.Fprintf(w, "%-30s %s (p=%.3f) — %d blocks, %d edges\n",
			path, verdict, v.Confidence, v.Blocks, v.Edges)
	}
	return nil
}

// classifyFilesJSON emits one serve.Verdict object per line — the exact
// response schema of cmd/serve's classify endpoint.
func classifyFilesJSON(ctx context.Context, det *core.Detector, paths []string, w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, path := range paths {
		if err := ctx.Err(); err != nil {
			return err
		}
		v, err := classifyOne(det, path)
		if err != nil {
			return err
		}
		if err := enc.Encode(v); err != nil {
			return err
		}
	}
	return nil
}

// classifyOne runs the shared parse → vectorize → classify pipeline on
// one file and assembles the serving-schema verdict.
func classifyOne(det *core.Detector, path string) (serve.Verdict, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return serve.Verdict{}, err
	}
	prog, err := ir.Parse(string(text))
	if err != nil {
		return serve.Verdict{}, fmt.Errorf("%s: %w", path, err)
	}
	vec, blocks, edges, err := det.Vectorize(prog)
	if err != nil {
		return serve.Verdict{}, fmt.Errorf("%s: %w", path, err)
	}
	w := det.AcquireWS()
	probs, err := w.SafeProbs(vec)
	det.ReleaseWS(w)
	if err != nil {
		return serve.Verdict{}, fmt.Errorf("%s: %w", path, err)
	}
	v, err := serve.MakeVerdict(path, probs, blocks, edges, true, det.Version)
	if err != nil {
		return serve.Verdict{}, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}
