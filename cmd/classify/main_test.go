package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"advmal/internal/core"
	"advmal/internal/features"
	"advmal/internal/ir"
	"advmal/internal/nn"
	"advmal/internal/serve"
)

// testDetector builds a detector with an untrained network and an
// identity-ish scaler — enough to exercise the full classify path
// without the cost of training.
func testDetector() *core.Detector {
	min := make([]float64, features.NumFeatures)
	max := make([]float64, features.NumFeatures)
	for i := range max {
		max[i] = 1
	}
	return &core.Detector{
		Scaler: &features.Scaler{Min: min, Max: max},
		Net:    nn.PaperCNN(0),
	}
}

func writeFile(t *testing.T, name, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestClassifyFilesMalformedInputs feeds hostile assembly through the
// real cmd/classify path: every malformed input must come back as an
// error naming the offending file — never a panic, never a hang.
func TestClassifyFilesMalformedInputs(t *testing.T) {
	det := testDetector()
	oversized := strings.Repeat("nop\n", ir.MaxProgramLen+1) + "ret\n"
	cases := []struct {
		name string
		text string
	}{
		{"garbage.asm", "this is not assembly at all\n%%%\n"},
		{"empty.asm", ""},
		{"noret.asm", "movi r0, 1\nmovi r1, 2\n"},
		{"badjump.asm", "jmp @999\nret\n"},
		{"badreg.asm", "movi r999, 1\nret\n"},
		{"oversized.asm", oversized},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeFile(t, tc.name, tc.text)
			var sb strings.Builder
			err := classifyFiles(context.Background(), det, []string{path}, &sb)
			if err == nil {
				t.Fatalf("classifyFiles accepted malformed input %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.name) {
				t.Fatalf("error does not name the offending file: %v", err)
			}
		})
	}
}

// TestClassifyFilesValidInput checks the happy path still works with the
// same detector: a well-formed program classifies and prints a verdict.
func TestClassifyFilesValidInput(t *testing.T) {
	det := testDetector()
	path := writeFile(t, "ok.asm", "movi r0, 1\nmovi r1, 2\nadd r0, r1\nret\n")
	var sb strings.Builder
	if err := classifyFiles(context.Background(), det, []string{path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ok.asm") || !(strings.Contains(out, "benign") || strings.Contains(out, "MALWARE")) {
		t.Fatalf("unexpected verdict line: %q", out)
	}
}

// TestClassifyFilesJSON checks -json output: one serve.Verdict object
// per line, field-for-field consistent with the plain classify path.
func TestClassifyFilesJSON(t *testing.T) {
	det := testDetector()
	path := writeFile(t, "ok.asm", "movi r0, 1\nmovi r1, 2\nadd r0, r1\nret\n")
	var sb strings.Builder
	if err := classifyFilesJSON(context.Background(), det, []string{path, path}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 verdict lines, got %d: %q", len(lines), sb.String())
	}
	prog, err := ir.Parse("movi r0, 1\nmovi r1, 2\nadd r0, r1\nret\n")
	if err != nil {
		t.Fatal(err)
	}
	pred, probs, err := det.Classify(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range lines {
		var v serve.Verdict
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("line is not a verdict object: %q: %v", line, err)
		}
		if v.Name != path || v.Class != pred || v.Label != serve.Label(pred) {
			t.Fatalf("verdict %+v diverges from Classify (%d)", v, pred)
		}
		if v.Confidence != probs[pred] || len(v.Probs) != 2 {
			t.Fatalf("probabilities not faithful: %+v vs %v", v, probs)
		}
		if v.Blocks <= 0 {
			t.Fatalf("missing CFG summary: %+v", v)
		}
	}
}

// TestClassifyFilesCancelled checks a cancelled context stops the loop
// before any file is touched.
func TestClassifyFilesCancelled(t *testing.T) {
	det := testDetector()
	path := writeFile(t, "ok.asm", "ret\n")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb strings.Builder
	err := classifyFiles(ctx, det, []string{path}, &sb)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if sb.Len() != 0 {
		t.Fatalf("output written despite cancellation: %q", sb.String())
	}
}
