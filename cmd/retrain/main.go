// Command retrain drives the online model lifecycle from outside the
// serving process: load the live model, draw labeled windows from the
// drifting sample stream, train a candidate per window, canary-gate it
// against the live model (clean holdout metrics plus evasion rates under
// the paper's eight attacks), and on pass either save the winner to disk
// or hot-swap it into a running replica over POST /admin/swap.
//
// Usage:
//
//	retrain -model detector.gob -out detector2.gob              # offline: save the gated winner
//	retrain -model detector.gob -swap-url http://127.0.0.1:8377 # online: swap into a live replica
//	retrain -windows 3 -json                                    # machine-readable cycle reports
//
// Exit status is 0 only when at least one window produced a candidate
// that passed every gate.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"advmal/internal/core"
	"advmal/internal/lifecycle"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "retrain:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		model   = flag.String("model", "detector.gob", "live model file (train one with classify -train)")
		out     = flag.String("out", "", "save the last gate-passing candidate here")
		swapURL = flag.String("swap-url", "", "base URL of a replica started with serve -admin; each gate-passing candidate is POSTed to /admin/swap")
		windows = flag.Int("windows", 1, "retraining windows to run")
		benign  = flag.Int("benign", 40, "benign samples per window")
		malware = flag.Int("malware", 120, "malicious samples per window")
		epochs  = flag.Int("epochs", 30, "candidate training epochs")
		seed    = flag.Int64("seed", 1, "stream + training seed")
		warm    = flag.Bool("warm", true, "warm-start candidates from the live weights")
		asJSON  = flag.Bool("json", false, "emit one CycleReport JSON object per window")

		maxAccDrop = flag.Float64("max-acc-drop", 0.01, "gate: max holdout accuracy drop vs live")
		maxFNRInc  = flag.Float64("max-fnr-increase", 0.01, "gate: max FNR increase vs live")
		maxFPRInc  = flag.Float64("max-fpr-increase", 0.02, "gate: max FPR increase vs live")
		maxEvaInc  = flag.Float64("max-evasion-increase", 0.05, "gate: max per-attack misclassification-rate increase vs live")
		atkSamples = flag.Int("attack-samples", 32, "holdout samples per evasion gate (negative skips the attack gates)")
	)
	flag.Parse()

	f, err := os.Open(*model)
	if err != nil {
		return fmt.Errorf("opening live model (train one with classify -train): %w", err)
	}
	live, err := core.LoadModel(f)
	f.Close()
	if err != nil {
		return err
	}
	h := core.NewHandle(live)

	rt := &lifecycle.Retrainer{
		Handle: h,
		Stream: lifecycle.NewStream(lifecycle.StreamConfig{
			Seed:      *seed,
			NumBenign: *benign,
			NumMal:    *malware,
		}),
		Trainer: lifecycle.Trainer{Seed: *seed, Epochs: *epochs},
		Gates: lifecycle.Gates{
			MaxAccuracyDrop:    *maxAccDrop,
			MaxFNRIncrease:     *maxFNRInc,
			MaxFPRIncrease:     *maxFPRInc,
			MaxEvasionIncrease: *maxEvaInc,
			AttackSamples:      *atkSamples,
		},
		WarmStart: *warm,
	}

	enc := json.NewEncoder(os.Stdout)
	passed := 0
	for w := 0; w < *windows; w++ {
		rep, err := rt.RunOnce(ctx)
		if err != nil {
			return err
		}
		if *asJSON {
			if err := enc.Encode(rep); err != nil {
				return err
			}
		} else {
			printReport(rep)
		}
		if !rep.Swapped {
			continue
		}
		passed++
		// The handle now serves the winner; publish it onward.
		winner := h.Current()
		if *out != "" {
			if err := saveModel(winner, *out); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "retrain: candidate v%d saved to %s\n", winner.Version, *out)
		}
		if *swapURL != "" {
			resp, err := postSwap(ctx, *swapURL, winner)
			if err != nil {
				return fmt.Errorf("swapping into %s: %w", *swapURL, err)
			}
			fmt.Fprintf(os.Stderr, "retrain: replica %s swapped v%d -> v%d\n",
				*swapURL, resp.OldVersion, resp.NewVersion)
		}
	}
	if passed == 0 {
		return fmt.Errorf("no candidate passed the canary gates in %d window(s)", *windows)
	}
	return nil
}

// printReport renders one cycle for humans: verdict line plus the
// gate-by-gate margins.
func printReport(rep *lifecycle.CycleReport) {
	verdict := "REJECTED"
	if rep.Swapped {
		verdict = fmt.Sprintf("PASSED (v%d -> v%d)", rep.OldVersion, rep.NewVersion)
	}
	fmt.Printf("window %d (%d samples): %s\n", rep.Window, rep.WindowSize, verdict)
	fmt.Printf("  live      %s\n  candidate %s\n", rep.Canary.Live, rep.Canary.Candidate)
	for _, g := range rep.Canary.Gates {
		mark := "PASS"
		if !g.Pass {
			mark = "FAIL"
		}
		fmt.Printf("  gate %-18s %s  live=%.4f cand=%.4f margin=%+.4f\n",
			g.Name, mark, g.Live, g.Candidate, g.Margin)
	}
	fmt.Printf("  train %v, canary %v\n",
		rep.TrainTime.Round(time.Millisecond), rep.CanaryTime.Round(time.Millisecond))
}

// saveModel writes the model gob to path.
func saveModel(m *core.Model, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// swapResponse mirrors the serve admin endpoint's response.
type swapResponse struct {
	OldVersion uint64 `json:"old_version"`
	NewVersion uint64 `json:"new_version"`
}

// postSwap ships the model gob to a replica's admin swap endpoint.
func postSwap(ctx context.Context, base string, m *core.Model) (*swapResponse, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/admin/swap", &buf)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica answered %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var sr swapResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return nil, fmt.Errorf("decoding swap response: %w", err)
	}
	return &sr, nil
}
