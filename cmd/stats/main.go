// Command stats performs the paper's §III corpus analysis: it generates
// (or loads) the corpus, extracts the 23 CFG features, and prints the
// per-class feature distributions, the benign-vs-malware comparison, the
// most discriminative features, and per-family structural summaries.
//
// Usage:
//
//	stats [-seed N] [-benign N] [-malware N] [-in corpus.json] [-top K]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"advmal/internal/dataset"
	"advmal/internal/features"
	"advmal/internal/report"
	"advmal/internal/synth"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "stats: interrupted — analysis cancelled cleanly, partial progress above")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "stats:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		seed    = flag.Int64("seed", 1, "generation seed")
		benign  = flag.Int("benign", 276, "benign samples")
		malware = flag.Int("malware", 2281, "malicious samples")
		in      = flag.String("in", "", "load corpus JSON (from corpusgen) instead of generating")
		top     = flag.Int("top", 8, "how many discriminative features to report")
	)
	flag.Parse()

	var samples []*synth.Sample
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		if samples, err = dataset.LoadSamples(f); err != nil {
			return err
		}
	} else {
		var err error
		samples, err = synth.Generate(synth.Config{Seed: *seed, NumBenign: *benign, NumMal: *malware})
		if err != nil {
			return err
		}
	}
	ds, skips, err := dataset.FromSamplesCtx(ctx, samples, dataset.Options{SkipBad: true})
	if err != nil {
		return err
	}
	if skips.Count() > 0 {
		fmt.Fprintf(os.Stderr, "stats: %s\n", skips)
	}
	var benignVecs, malVecs []features.Vector
	for _, r := range ds.Records {
		if r.Label == dataset.LabelMalware {
			malVecs = append(malVecs, r.Raw)
		} else {
			benignVecs = append(benignVecs, r.Raw)
		}
	}

	fmt.Println("=== Benign vs malware feature medians (§III analysis) ===")
	fmt.Println(features.Compare("benign", benignVecs, "malware", malVecs))

	fmt.Printf("=== Top %d discriminative features (robust effect size) ===\n", *top)
	names := features.Names()
	for rank, idx := range features.TopDiscriminative(benignVecs, malVecs, *top) {
		fmt.Printf("%2d. %s\n", rank+1, names[idx])
	}
	fmt.Println()

	famTable := report.New("Per-family structure", "Family", "Samples",
		"Median nodes", "Median edges", "Median density")
	fams := append([]synth.Family{synth.Benign}, synth.MalwareFamilies()...)
	for _, fam := range fams {
		var vecs []features.Vector
		for _, r := range ds.Records {
			if r.Sample.Family == fam {
				vecs = append(vecs, r.Raw)
			}
		}
		if len(vecs) == 0 {
			continue
		}
		d := features.Describe(vecs)
		famTable.Add(fam.String(), len(vecs),
			fmt.Sprintf("%.0f", d[22].Stats[2]),
			fmt.Sprintf("%.0f", d[21].Stats[2]),
			fmt.Sprintf("%.4f", d[20].Stats[2]))
	}
	fmt.Print(famTable.String())
	return nil
}
