// Command gateway fronts a cluster of cmd/serve replicas with the
// fault-tolerant reverse proxy in internal/gateway: consistent-hash
// routing on graph content (per-replica feature caches stay warm),
// health-checked membership over /readyz, capped-backoff retries,
// p99-budget hedging, per-backend circuit breakers, and per-client
// token-bucket load shedding.
//
// Usage:
//
//	gateway -addr :8378 -backends 127.0.0.1:8377,127.0.0.1:8380
//
// Endpoints: POST /v1/classify and /v1/classify/vector (proxied), GET
// /metrics (gateway counters), /backends (replica state JSON),
// /healthz, /readyz.
//
// On SIGTERM or SIGINT the gateway drains: /readyz flips to 503, the
// listener stops accepting, in-flight proxied requests finish, and the
// process exits 0 with a traffic summary on stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"advmal/internal/gateway"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gateway:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8378", "listen address (use :0 for an ephemeral port)")
		backends = flag.String("backends", "", "comma-separated replica addresses (host:port), required")
		vnodes   = flag.Int("vnodes", gateway.DefaultVirtualNodes, "ring points per backend")
		attempts = flag.Int("attempts", 3, "max upstream attempts per request (first try + retries + hedges)")
		attemptT = flag.Duration("attempt-timeout", 2*time.Second, "per-attempt upstream budget")
		hedge    = flag.Duration("hedge-after", 0, "hedge budget (0 = auto from observed p99, negative = disable)")
		rate     = flag.Float64("rate", 0, "per-client sustained requests/sec (0 = no rate limiting)")
		burst    = flag.Float64("burst", 0, "per-client burst size (default max(rate, 1))")
		health   = flag.Duration("health-interval", 250*time.Millisecond, "readyz poll interval (jittered ±20%)")
		eject    = flag.Int("eject-after", 2, "consecutive failed probes before ejecting a backend")
		brkFail  = flag.Int("breaker-failures", 5, "consecutive failures tripping a backend's breaker")
		brkCool  = flag.Duration("breaker-cooldown", 2*time.Second, "open-breaker cooldown before half-open probes")
		grace    = flag.Duration("grace", 30*time.Second, "drain deadline after SIGTERM")
	)
	flag.Parse()

	if *backends == "" {
		return errors.New("-backends is required (comma-separated host:port list)")
	}
	gw, err := gateway.New(gateway.Config{
		Backends:       strings.Split(*backends, ","),
		VirtualNodes:   *vnodes,
		MaxAttempts:    *attempts,
		AttemptTimeout: *attemptT,
		HedgeAfter:     *hedge,
		Rate:           *rate,
		Burst:          *burst,
		HealthInterval: *health,
		EjectAfter:     *eject,
		Breaker: gateway.BreakerConfig{
			FailThreshold: *brkFail,
			Cooldown:      *brkCool,
		},
	})
	if err != nil {
		return err
	}
	defer gw.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Same discovery protocol as cmd/serve: harnesses scrape this line.
	fmt.Printf("gateway: listening on %s (backends=%d attempts=%d hedge=%v)\n",
		ln.Addr(), len(gw.Backends()), *attempts, *hedge)

	hs := &http.Server{Handler: gw.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "gateway: signal received, draining")
	gw.NotReady()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "gateway: shutdown:", err)
	}
	m := gw.Metrics()
	fmt.Fprintf(os.Stderr,
		"gateway: drained requests=%d retries=%d hedges=%d hedge_wins=%d breaker_trips=%d ejections=%d rate_limited=%d unroutable=%d\n",
		m.Requests.Load(), m.Retries.Load(), m.Hedges.Load(), m.HedgeWins.Load(),
		m.BreakerTrips.Load(), m.Ejections.Load(), m.RateLimited.Load(), m.Unroutable.Load())
	return nil
}
