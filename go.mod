module advmal

go 1.22
