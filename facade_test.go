package advmal_test

import (
	"testing"

	"advmal"
)

func TestFacadeDefaults(t *testing.T) {
	cfg := advmal.DefaultConfig()
	if cfg.NumBenign != 276 || cfg.NumMal != 2281 {
		t.Errorf("DefaultConfig corpus = %d/%d, want Table I", cfg.NumBenign, cfg.NumMal)
	}
	if cfg.Epochs != 200 || cfg.BatchSize != 100 {
		t.Errorf("DefaultConfig trainer = %d/%d, want 200/100", cfg.Epochs, cfg.BatchSize)
	}
}

func TestFacadeAllAttacks(t *testing.T) {
	atks := advmal.AllAttacks()
	if len(atks) != 8 {
		t.Fatalf("AllAttacks = %d, want the paper's 8", len(atks))
	}
}

func TestFacadeSystemLifecycle(t *testing.T) {
	cfg := advmal.DefaultConfig()
	cfg.NumBenign = 10
	cfg.NumMal = 20
	cfg.Epochs = 2
	cfg.BatchSize = 8
	sys := advmal.NewSystem(cfg)
	if err := sys.BuildCorpus(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Fit(); err != nil {
		t.Fatal(err)
	}
	var m advmal.Metrics
	m, err := sys.EvaluateTest()
	if err != nil {
		t.Fatal(err)
	}
	if m.N == 0 {
		t.Error("no test samples evaluated")
	}
	var samples []*advmal.Sample = sys.TestSamples()
	if len(samples) == 0 {
		t.Error("no test samples exposed")
	}
}
