// Package advmal_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation:
//
//	BenchmarkTableI_*    corpus generation (Table I)
//	BenchmarkTableII_*   feature extraction (Table II / the 23 features)
//	BenchmarkFig5_*      detector forward pass and training (§IV-C1, Fig. 5)
//	BenchmarkTableIII_*  one bench per generic attack (Table III columns)
//	BenchmarkTableIV_*   GEA malware->benign by target size
//	BenchmarkTableV_*    GEA benign->malware by target size
//	BenchmarkTableVI_*   GEA malware->benign at fixed node counts
//	BenchmarkTableVII_*  GEA benign->malware at fixed node counts
//	BenchmarkFig2to4_*   the CFG figures pipeline (disassemble + merge)
//	BenchmarkAblation_*  substrate ablations called out in DESIGN.md
//
// The per-table rows themselves are printed via b.Log (visible with
// `go test -bench . -v`) from a shared reduced-size trained system; the
// full-fidelity numbers come from `go run ./cmd/repro` and are recorded
// in EXPERIMENTS.md.
package advmal_test

import (
	"sync"
	"testing"

	"advmal/internal/attacks"
	"advmal/internal/core"
	"advmal/internal/features"
	"advmal/internal/gea"
	"advmal/internal/ir"
	"advmal/internal/nn"
	"advmal/internal/synth"
)

// benchSystem is the shared reduced-size trained pipeline for attack and
// GEA benchmarks (the full Table I corpus with 200 epochs takes ~10
// minutes to train, which does not belong inside b.N loops).
var (
	benchOnce sync.Once
	benchSys  *core.System
)

func trainedBenchSystem(b *testing.B) *core.System {
	b.Helper()
	benchOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.NumBenign = 100
		cfg.NumMal = 500
		cfg.Epochs = 60
		cfg.BatchSize = 50
		benchSys = core.New(cfg)
		if err := benchSys.BuildCorpus(); err != nil {
			panic(err)
		}
		if _, err := benchSys.Fit(); err != nil {
			panic(err)
		}
	})
	return benchSys
}

// BenchmarkTableI_CorpusGeneration measures generating the full Table I
// corpus: 276 benign + 2,281 malicious programs, disassembled and
// halting-checked.
func BenchmarkTableI_CorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		samples, err := synth.Generate(synth.Config{Seed: int64(i + 1), NumBenign: 276, NumMal: 2281})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			benign, mal := 0, 0
			for _, s := range samples {
				if s.Malicious {
					mal++
				} else {
					benign++
				}
			}
			b.Logf("Table I: benign=%d (%.2f%%) malicious=%d (%.2f%%) total=%d",
				benign, 100*float64(benign)/float64(len(samples)),
				mal, 100*float64(mal)/float64(len(samples)), len(samples))
		}
	}
}

// BenchmarkTableII_FeatureExtraction measures extracting the 23 Table II
// features from one mid-sized CFG.
func BenchmarkTableII_FeatureExtraction(b *testing.B) {
	sys := trainedBenchSystem(b)
	// Use the median benign sample's CFG.
	targets, err := gea.SelectBySize(sys.Samples, false)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := ir.Disassemble(targets.Median.Prog)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("Table II: 7 groups, %d features on a %d-node CFG", features.NumFeatures, cfg.G().N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := features.Extract(cfg.G())
		if len(v) != features.NumFeatures {
			b.Fatal("bad vector")
		}
	}
}

// BenchmarkTableII_FeatureExtractionNaive is the seed four-traversal
// baseline kept for comparison against the fused single-sweep Extract
// above; `go run ./cmd/bench` snapshots the same pair into
// BENCH_extract.json.
func BenchmarkTableII_FeatureExtractionNaive(b *testing.B) {
	sys := trainedBenchSystem(b)
	targets, err := gea.SelectBySize(sys.Samples, false)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := ir.Disassemble(targets.Median.Prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := features.ExtractNaive(cfg.G())
		if len(v) != features.NumFeatures {
			b.Fatal("bad vector")
		}
	}
}

// BenchmarkTableII_FeatureExtractionCached measures the content-keyed
// cache hit path every repeat extraction (GEA minimize probes, corpus
// rebuilds) takes.
func BenchmarkTableII_FeatureExtractionCached(b *testing.B) {
	sys := trainedBenchSystem(b)
	targets, err := gea.SelectBySize(sys.Samples, false)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := ir.Disassemble(targets.Median.Prog)
	if err != nil {
		b.Fatal(err)
	}
	e := features.NewExtractor(0)
	e.Extract(cfg.G())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := e.Extract(cfg.G())
		if len(v) != features.NumFeatures {
			b.Fatal("bad vector")
		}
	}
}

// BenchmarkFig5_Forward measures one detector forward pass (the unit of
// every attack's inner loop).
func BenchmarkFig5_Forward(b *testing.B) {
	sys := trainedBenchSystem(b)
	x := sys.TestX[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Net.Logits(x)
	}
}

// BenchmarkFig5_TrainingEpoch measures one epoch of the paper's training
// configuration on the reduced corpus.
func BenchmarkFig5_TrainingEpoch(b *testing.B) {
	sys := trainedBenchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := nn.PaperCNN(int64(i))
		tr := &nn.Trainer{Epochs: 1, BatchSize: 50, Seed: int64(i), Workers: 2}
		if _, err := tr.Fit(net, sys.TrainX, sys.TrainY); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAttack crafts adversarial examples with one attack, one eligible
// sample per iteration, and logs the Table III row measured over the
// bench samples.
func benchAttack(b *testing.B, atk attacks.Attack) {
	sys := trainedBenchSystem(b)
	idx := attacks.Eligible(sys.Net, sys.TestX, sys.TestY, 0)
	if len(idx) == 0 {
		b.Fatal("no eligible samples")
	}
	res := attacks.Evaluate(sys.Net, []attacks.Attack{atk}, sys.TestX, sys.TestY,
		attacks.Options{MaxSamples: 25})
	b.Logf("Table III row: %v", res[0])
	clone := sys.Net.CloneShared()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := idx[i%len(idx)]
		adv := atk.Craft(clone, sys.TestX[j], sys.TestY[j])
		if len(adv) != features.NumFeatures {
			b.Fatal("bad adversarial vector")
		}
	}
}

func BenchmarkTableIII_CW(b *testing.B)         { benchAttack(b, attacks.NewCW(0, 0, 0)) }
func BenchmarkTableIII_DeepFool(b *testing.B)   { benchAttack(b, attacks.NewDeepFool(0, 0)) }
func BenchmarkTableIII_ElasticNet(b *testing.B) { benchAttack(b, attacks.NewElasticNet(0, 0, 0, 0)) }
func BenchmarkTableIII_FGSM(b *testing.B)       { benchAttack(b, attacks.NewFGSM(0)) }
func BenchmarkTableIII_JSMA(b *testing.B)       { benchAttack(b, attacks.NewJSMA(0, 0)) }
func BenchmarkTableIII_MIM(b *testing.B)        { benchAttack(b, attacks.NewMIM(0, 0)) }
func BenchmarkTableIII_PGD(b *testing.B)        { benchAttack(b, attacks.NewPGD(0, 0)) }
func BenchmarkTableIII_VAM(b *testing.B)        { benchAttack(b, attacks.NewVAM(0, 0)) }

// benchGEASize runs the size experiment once for the log, then measures
// single GEA crafts against the named target.
func benchGEASize(b *testing.B, targetMalicious bool, table string) {
	sys := trainedBenchSystem(b)
	p, err := sys.GEAPipeline(false)
	if err != nil {
		b.Fatal(err)
	}
	origs := sys.TestSamples()
	rows, err := p.RunSizeExperiment(origs, sys.Samples, targetMalicious)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.Logf("%s row: %v", table, r)
	}
	targets, err := gea.SelectBySize(sys.Samples, targetMalicious)
	if err != nil {
		b.Fatal(err)
	}
	var victim *synth.Sample
	for _, s := range origs {
		if s.Malicious != targetMalicious {
			victim = s
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged, err := gea.Merge(victim.Prog, targets.Median.Prog)
		if err != nil {
			b.Fatal(err)
		}
		cfg, err := ir.Disassemble(merged)
		if err != nil {
			b.Fatal(err)
		}
		features.Extract(cfg.G())
	}
}

func BenchmarkTableIV_GEAMalwareToBenign(b *testing.B) { benchGEASize(b, false, "Table IV") }
func BenchmarkTableV_GEABenignToMalware(b *testing.B)  { benchGEASize(b, true, "Table V") }

// benchGEAFixed logs the fixed-node tables and measures the selection
// plus one crafting round.
func benchGEAFixed(b *testing.B, targetMalicious bool, table string) {
	sys := trainedBenchSystem(b)
	p, err := sys.GEAPipeline(false)
	if err != nil {
		b.Fatal(err)
	}
	rows, err := p.RunFixedNodesExperiment(sys.TestSamples(), sys.Samples, targetMalicious, 3, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.Logf("%s row: %v", table, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gea.SelectFixedNodes(sys.Samples, targetMalicious, 3, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVI_GEAFixedNodesMtoB(b *testing.B)  { benchGEAFixed(b, false, "Table VI") }
func BenchmarkTableVII_GEAFixedNodesBtoM(b *testing.B) { benchGEAFixed(b, true, "Table VII") }

// BenchmarkFig2to4_MergePipeline measures the figure pipeline: merge the
// Fig. 2 and Fig. 3 programs and disassemble the Fig. 4 result.
func BenchmarkFig2to4_MergePipeline(b *testing.B) {
	orig, err := gea.FigureOriginal()
	if err != nil {
		b.Fatal(err)
	}
	target, err := gea.FigureTarget()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		merged, err := gea.Merge(orig, target)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ir.Disassemble(merged); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Betweenness isolates the most expensive of the 23
// features (Brandes betweenness) on the largest corpus CFG.
func BenchmarkAblation_Betweenness(b *testing.B) {
	sys := trainedBenchSystem(b)
	targets, err := gea.SelectBySize(sys.Samples, false)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := ir.Disassemble(targets.Maximum.Prog)
	if err != nil {
		b.Fatal(err)
	}
	g := cfg.G()
	b.Logf("largest benign CFG: %d nodes, %d edges", g.N(), g.M())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BetweennessCentrality()
	}
}

// BenchmarkAblation_Disassemble measures CFG recovery alone.
func BenchmarkAblation_Disassemble(b *testing.B) {
	sys := trainedBenchSystem(b)
	targets, err := gea.SelectBySize(sys.Samples, true)
	if err != nil {
		b.Fatal(err)
	}
	prog := targets.Maximum.Prog
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ir.Disassemble(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Interpreter measures executing the median malware
// program on the probe inputs (the GEA verification cost per sample).
func BenchmarkAblation_Interpreter(b *testing.B) {
	sys := trainedBenchSystem(b)
	targets, err := gea.SelectBySize(sys.Samples, true)
	if err != nil {
		b.Fatal(err)
	}
	it := &ir.Interp{}
	inputs := synth.ProbeInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range inputs {
			if _, err := it.Run(targets.Median.Prog, in...); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblation_EpsSweepPGD reports PGD's misclassification rate as
// eps shrinks — the distortion-budget ablation DESIGN.md calls out.
func BenchmarkAblation_EpsSweepPGD(b *testing.B) {
	sys := trainedBenchSystem(b)
	for _, eps := range []float64{0.05, 0.1, 0.2, 0.3} {
		res := attacks.Evaluate(sys.Net, []attacks.Attack{attacks.NewPGD(eps, 20)},
			sys.TestX, sys.TestY, attacks.Options{MaxSamples: 20})
		b.Logf("PGD eps=%.2f MR=%.1f%%", eps, res[0].MR*100)
	}
	idx := attacks.Eligible(sys.Net, sys.TestX, sys.TestY, 0)
	atk := attacks.NewPGD(0.1, 20)
	clone := sys.Net.CloneShared()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := idx[i%len(idx)]
		atk.Craft(clone, sys.TestX[j], sys.TestY[j])
	}
}
