GO ?= go

.PHONY: build test vet race check bench fault

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The robustness gate: static analysis plus the full suite under the race
# detector. The fault-injection harness (internal/pool/faultinject) and the
# pool invariant tests run here with -race so leaked goroutines, racy
# result slots, and missed cancellations fail loudly.
race: vet
	$(GO) test -race ./...

# Just the worker-pool runtime and fault-injection suites, under -race.
fault:
	$(GO) test -race ./internal/pool/... ./internal/dataset/ ./cmd/classify/

bench:
	$(GO) test -bench . -benchmem -run '^$$'

check: build race
