GO ?= go

.PHONY: build test vet race check bench fault bench-snapshot bench-short race-fused

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The robustness gate: static analysis plus the full suite under the race
# detector. The fault-injection harness (internal/pool/faultinject) and the
# pool invariant tests run here with -race so leaked goroutines, racy
# result slots, and missed cancellations fail loudly.
race: vet
	$(GO) test -race ./...

# Just the worker-pool runtime and fault-injection suites, under -race.
fault:
	$(GO) test -race ./internal/pool/... ./internal/dataset/ ./cmd/classify/

bench:
	$(GO) test -bench . -benchmem -run '^$$'

# Refresh the committed perf-trajectory snapshot (full sizes + the
# trained-detector attack benches). See EXPERIMENTS.md §Benchmark
# snapshots for how to read it.
bench-snapshot:
	$(GO) run ./cmd/bench -o BENCH_extract.json

# Smoke-run the snapshot harness at reduced sizes; the JSON goes to a
# scratch file so the committed snapshot only changes via bench-snapshot.
bench-short:
	$(GO) run ./cmd/bench -short -o /tmp/BENCH_extract.short.json

# The fused extraction engine + content-keyed cache under the race
# detector: the single-sweep/naive equivalence properties and the
# concurrent cache tests.
race-fused:
	$(GO) test -race -run 'Sweep|Profile|Fused|Extractor' ./internal/graph/ ./internal/features/

check: build race race-fused bench-short
