GO ?= go

.PHONY: build test vet race check bench fault bench-snapshot bench-short race-fused bench-nn bench-nn-short race-nn race-serve serve-smoke bench-serve bench-serve-short race-gateway gateway-smoke bench-gateway bench-gateway-short race-index index-smoke bench-index bench-index-short race-train quant-parity bench-train bench-train-short race-lifecycle swap-smoke bench-swap bench-swap-short race-redteam redteam-smoke bench-redteam bench-redteam-short

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The robustness gate: static analysis plus the full suite under the race
# detector. The fault-injection harness (internal/pool/faultinject) and the
# pool invariant tests run here with -race so leaked goroutines, racy
# result slots, and missed cancellations fail loudly. The explicit
# timeout covers low-core machines, where the adversarial-training test
# (two 30-epoch runs with per-sample PGD) exceeds Go's 600s default
# under the race detector.
race: vet
	$(GO) test -race -timeout 2400s ./...

# Just the worker-pool runtime and fault-injection suites, under -race.
fault:
	$(GO) test -race ./internal/pool/... ./internal/dataset/ ./cmd/classify/

bench:
	$(GO) test -bench . -benchmem -run '^$$'

# Refresh the committed perf-trajectory snapshot (full sizes + the
# trained-detector attack benches). See EXPERIMENTS.md §Benchmark
# snapshots for how to read it.
bench-snapshot:
	$(GO) run ./cmd/bench -o BENCH_extract.json

# Smoke-run the snapshot harness at reduced sizes; the JSON goes to a
# scratch file so the committed snapshot only changes via bench-snapshot.
bench-short:
	$(GO) run ./cmd/bench -short -o /tmp/BENCH_extract.short.json

# The fused extraction engine + content-keyed cache under the race
# detector: the single-sweep/naive equivalence properties and the
# concurrent cache tests.
race-fused:
	$(GO) test -race -run 'Sweep|Profile|Fused|Extractor' ./internal/graph/ ./internal/features/

# Refresh the committed NN-engine perf snapshot (workspace vs oracle on
# forward/gradient/Jacobian/train-step, attack crafting, the GEA
# classify unit, train-epoch). See EXPERIMENTS.md §Benchmark snapshots.
bench-nn:
	$(GO) run ./cmd/bench -suite nn -o BENCH_nn.json

# Smoke-run the NN suite at reduced scope; scratch output so the
# committed snapshot only changes via bench-nn.
bench-nn-short:
	$(GO) run ./cmd/bench -suite nn -short -o /tmp/BENCH_nn.short.json

# The zero-allocation workspace engine under the race detector: the
# bit-identity properties, the per-worker workspace fan-out, the
# oracle/workspace attack equivalence, and trainer parity.
race-nn:
	$(GO) test -race -timeout 1800s -run 'Workspace|Parity|AttacksOracle|Eligible' ./internal/nn/ ./internal/attacks/

# The serving stack under the race detector: the micro-batching
# scheduler and HTTP front end (whole package), the detector
# load/classify hardening, and the extractor cache under
# serving-concurrency churn. The timeout covers the shared trained
# system the core tests build once under -race.
race-serve:
	$(GO) test -race -timeout 1800s ./internal/serve/
	$(GO) test -race -timeout 1800s -run 'Detector|Churn' ./internal/core/ ./internal/features/

# End-to-end smoke of the online detection service: build
# serve/loadgen/classify, train a tiny detector, serve it on an
# ephemeral port, assert every loadgen request answers 200, then SIGTERM
# mid-load and assert a clean zero-drop drain (DESIGN.md §9).
serve-smoke:
	sh scripts/serve_smoke.sh

# Refresh the committed serving perf snapshot: micro-batching vs the
# unbatched per-request baseline at saturation, plus the closed-loop
# latency/SLO row. See EXPERIMENTS.md §Benchmark snapshots.
bench-serve:
	$(GO) run ./cmd/bench -suite serve -o BENCH_serve.json

# Smoke-run the serve suite at reduced scope; scratch output so the
# committed snapshot only changes via bench-serve.
bench-serve-short:
	$(GO) run ./cmd/bench -suite serve -short -o /tmp/BENCH_serve.short.json

# The gateway's resilience tiers under the race detector: the ring
# properties, the breaker state machine on a fake clock, the rate
# limiter, and the chaos-driven end-to-end tests (retry failover,
# kill-mid-load, hedging, eject/readmit) plus the replica-side chaos
# surface and the /readyz drain-ordering regression.
race-gateway:
	$(GO) test -race -timeout 600s ./internal/gateway/
	$(GO) test -race -timeout 600s -run 'Readyz|Chaos' ./internal/serve/

# End-to-end smoke of the cluster: 3 chaos-armed replicas + gateway on
# ephemeral ports; assert all-200 through the gateway, zero client 5xx
# while one replica is chaos-killed mid-load, the ejection lands in
# gateway /metrics, and SIGTERM drains everything with dropped=0
# (DESIGN.md §10).
gateway-smoke:
	sh scripts/gateway_smoke.sh

# Refresh the committed cluster-scaling snapshot: real replicas + gateway
# + loadgen in child processes, replica capacity pinned by a simulated
# service time, recording N-replicas-vs-1 throughput. See EXPERIMENTS.md
# §Benchmark snapshots.
bench-gateway:
	$(GO) run ./cmd/bench -suite gateway -o BENCH_gateway.json

# Smoke-run the gateway suite at reduced scope; scratch output so the
# committed snapshot only changes via bench-gateway.
bench-gateway-short:
	$(GO) run ./cmd/bench -suite gateway -short -o /tmp/BENCH_gateway.short.json

# The similarity layer under the race detector: the HNSW recall/
# determinism/round-trip properties, the concurrent search-during-insert
# test, and the serve-level similarity + triage surface (including the
# GEA-splice acceptance test).
race-index:
	$(GO) test -race -timeout 600s ./internal/index/
	$(GO) test -race -timeout 600s -run 'Similar|Triage|Verdict|NaN' ./internal/serve/

# End-to-end smoke of the similarity layer: classify -train -index →
# serve -index → /v1/similar family attribution + triage flagging on an
# off-manifold program (DESIGN.md §11).
index-smoke:
	sh scripts/index_smoke.sh

# Refresh the committed ANN perf snapshot: HNSW vs the exact-scan oracle
# at 10k/100k/1M — recall@10, p50/p99 latency, and the p99 speedup the
# serving claim rests on. See EXPERIMENTS.md §Benchmark snapshots.
bench-index:
	$(GO) run ./cmd/bench -suite index -o BENCH_index.json

# Smoke-run the index suite at reduced sizes; scratch output so the
# committed snapshot only changes via bench-index.
bench-index-short:
	$(GO) run ./cmd/bench -suite index -short -o /tmp/BENCH_index.short.json

# The parallel gradient reduction under the race detector: the chunked
# pairwise-tree fold racing across pool workers, pinned byte-identical
# against the serial oracle at 1/2/4 workers, plus the serial-vs-tree
# agreement contract below three workers.
race-train:
	$(GO) test -race -timeout 1800s -run 'TrainerReduction|SerialReduction|TrainerWorkspaceParity' ./internal/nn/

# The int8 quantized tier's fidelity gates: the quant-vs-float property
# tests (probability closeness, argmax agreement away from the band,
# determinism, zero allocs), the core Table I accuracy-delta pin and
# calibration persistence round-trip, and the serve tier escalation
# tests.
quant-parity:
	$(GO) test -timeout 1800s -run 'Quant' ./internal/nn/
	$(GO) test -timeout 1800s -run 'Quantized|Calibration' ./internal/core/
	$(GO) test -timeout 1800s -run 'Tier|Quantiz' ./internal/serve/

# Refresh the committed training-path snapshot: tree vs serial gradient
# reduction at 1–8 workers, pinned-service-time epoch scaling, real
# epoch wall-clock, and the int8-vs-float inference rows with the
# Table I fidelity metrics. See EXPERIMENTS.md §Benchmark snapshots.
bench-train:
	$(GO) run ./cmd/bench -suite train -o BENCH_train.json

# Smoke-run the train suite at reduced scope; scratch output so the
# committed snapshot only changes via bench-train.
bench-train-short:
	$(GO) run ./cmd/bench -suite train -short -o /tmp/BENCH_train.short.json

# The Model/Handle split and online-retraining loop under the race
# detector: the swap-under-Classify-load attribution test (per-Model
# workspace pools), the HTTP-layer hot-swap/admin/metrics tests, the
# persistence compatibility pins, and the lifecycle package (stream
# determinism, canary gate selectivity, retrainer cycles).
race-lifecycle:
	$(GO) test -race -timeout 1800s -run 'HandleSwap|LegacyEnvelope|LegacyDecoder|LegacyCorrupt' ./internal/core/
	$(GO) test -race -timeout 1800s -run 'AdminSwap|SwapMetrics|SwapUnderLoad' ./internal/serve/
	$(GO) test -race -timeout 1800s ./internal/lifecycle/

# End-to-end smoke of the hot-swap lifecycle: serve -admin on an
# ephemeral port, continuous no-error-tolerated load, retrain trains +
# canaries + swaps a candidate in over /admin/swap, /metrics reports the
# new version, and the load that spanned the swap exits clean
# (DESIGN.md §13).
swap-smoke:
	sh scripts/swap_smoke.sh

# Refresh the committed hot-swap overhead snapshot: saturated handle-
# engine throughput with no swaps vs snapshots installed every
# 100ms/10ms, zero request errors required. See EXPERIMENTS.md
# §Benchmark snapshots.
bench-swap:
	$(GO) run ./cmd/bench -suite swap -o BENCH_swap.json

# Smoke-run the swap suite at reduced scope; scratch output so the
# committed snapshot only changes via bench-swap.
bench-swap-short:
	$(GO) run ./cmd/bench -suite swap -short -o /tmp/BENCH_swap.short.json

# The red-team harness and the multi-class head under the race detector:
# concurrent campaign replay against a live serve instance while the
# handle hot-swaps (the full wire path), the multi-class attack fan-outs
# (target state set only between fan-outs), and the K=2 bit-identity /
# head-width validation pins.
race-redteam:
	$(GO) test -race -timeout 600s ./internal/redteam/
	$(GO) test -race -timeout 1800s -run 'Families|TargetSelector|Targeted' ./internal/attacks/
	$(GO) test -race -timeout 600s -run 'Classes|ClassMapping|HeadWidth' ./internal/core/ ./internal/nn/

# End-to-end smoke of the live attack-replay harness: serve -admin on an
# ephemeral port, a paced mixed campaign (eight attacks + GEA + clean
# controls), a retrain hot swap landing mid-campaign, then assert zero
# transport/HTTP errors, nonzero evasion, triage counters present, and a
# per-model-version robustness delta (DESIGN.md §14).
redteam-smoke:
	sh scripts/redteam_smoke.sh

# Refresh the committed red-team snapshot: campaign generation cost,
# replay throughput at 1/2/4 senders against an in-process serve target,
# and the per-outcome scoring overhead. See EXPERIMENTS.md §Benchmark
# snapshots.
bench-redteam:
	$(GO) run ./cmd/bench -suite redteam -o BENCH_redteam.json

# Smoke-run the redteam suite at reduced scope; scratch output so the
# committed snapshot only changes via bench-redteam.
bench-redteam-short:
	$(GO) run ./cmd/bench -suite redteam -short -o /tmp/BENCH_redteam.short.json

check: build race race-fused race-nn race-serve race-gateway race-index race-train quant-parity race-lifecycle race-redteam serve-smoke gateway-smoke index-smoke swap-smoke redteam-smoke bench-short bench-nn-short bench-serve-short bench-gateway-short bench-index-short bench-train-short bench-swap-short bench-redteam-short
