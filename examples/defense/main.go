// The defense example implements the direction the paper's conclusion
// calls for: adversarial training. It measures the eight attacks against
// a normally trained detector, retrains with adversarially augmented
// data, and measures again, printing the misclassification-rate drop per
// attack.
package main

import (
	"fmt"
	"os"

	"advmal/internal/attacks"
	"advmal/internal/core"
	"advmal/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "defense:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := core.DefaultConfig()
	cfg.NumBenign = 80
	cfg.NumMal = 400
	cfg.Epochs = 40
	sys := core.New(cfg)
	fmt.Println("building corpus and training the baseline detector...")
	if err := sys.BuildCorpus(); err != nil {
		return err
	}
	if _, err := sys.Fit(); err != nil {
		return err
	}
	before, err := sys.EvaluateTest()
	if err != nil {
		return err
	}

	opts := attacks.Options{MaxSamples: 40}
	fmt.Println("measuring attacks against the baseline...")
	baseline, err := sys.RunTableIII(opts)
	if err != nil {
		return err
	}

	fmt.Println("adversarial training (online PGD, half of every batch)...")
	if _, err := sys.AdversarialTrain(core.AdversarialTrainOptions{Epochs: 40}); err != nil {
		return err
	}
	after, err := sys.EvaluateTest()
	if err != nil {
		return err
	}
	fmt.Printf("clean accuracy: before=%.2f%% after=%.2f%%\n",
		before.Accuracy*100, after.Accuracy*100)

	fmt.Println("re-measuring attacks against the hardened detector...")
	hardened, err := sys.RunTableIII(opts)
	if err != nil {
		return err
	}

	t := report.New("Adversarial training: misclassification rate before vs after",
		"Attack", "MR before (%)", "MR after (%)")
	for i, b := range baseline {
		t.Add(b.Attack, report.Pct(b.MR), report.Pct(hardened[i].MR))
	}
	fmt.Print(t.String())
	return nil
}
