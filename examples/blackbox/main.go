// The blackbox example explores the other side of the paper's §II-C
// threat model: an adversary WITHOUT white-box access. It steals the
// detector by querying it (training a substitute on the detector's own
// verdicts), crafts white-box adversarial examples against the
// substitute, and measures how many transfer to the real detector.
package main

import (
	"fmt"
	"os"

	"advmal/internal/attacks"
	"advmal/internal/core"
	"advmal/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "blackbox:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := core.DefaultConfig()
	cfg.NumBenign = 80
	cfg.NumMal = 400
	cfg.Epochs = 40
	sys := core.New(cfg)
	fmt.Println("training the victim detector (reduced setup)...")
	if err := sys.BuildCorpus(); err != nil {
		return err
	}
	if _, err := sys.Fit(); err != nil {
		return err
	}
	m, err := sys.EvaluateTest()
	if err != nil {
		return err
	}
	fmt.Println("victim:", m)

	fmt.Println("stealing the model: training a substitute on the victim's verdicts...")
	results, err := attacks.TransferEvaluate(sys.Net,
		[]attacks.Attack{attacks.NewPGD(0, 0), attacks.NewMIM(0, 0), attacks.NewFGSM(0), attacks.NewJSMA(0, 0)},
		sys.TrainX, // query budget: the adversary's own sample collection
		sys.TestX, sys.TestY,
		attacks.TransferConfig{Seed: 5, MaxSamples: 60})
	if err != nil {
		return err
	}
	t := report.New("Black-box transfer (white-box on substitute -> replay on victim)",
		"Attack", "Substitute MR (%)", "Victim MR (%)", "Agreement (%)")
	for _, r := range results {
		t.Add(r.Attack, report.Pct(r.SubstituteMR), report.Pct(r.VictimMR), report.Pct(r.SubstituteAcc))
	}
	fmt.Print(t.String())
	fmt.Println("\nTransfer is weaker than the white-box Table III rates — the cost")
	fmt.Println("of black-box access — but nonzero, so secrecy of the model is not")
	fmt.Println("a defense.")
	return nil
}
