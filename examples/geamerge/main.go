// The geamerge example reproduces Figures 2-4 of the paper: it builds the
// original counting-loop program (Fig. 2) and the selected target program
// (Fig. 3), prints their disassembly and CFGs (as Graphviz DOT), splices
// them with GEA into the combined graph of Fig. 4 sharing entry and exit
// nodes, and then *proves* functionality preservation by running both
// programs and comparing their observable traces.
package main

import (
	"fmt"
	"os"

	"advmal/internal/features"
	"advmal/internal/gea"
	"advmal/internal/ir"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "geamerge:", err)
		os.Exit(1)
	}
}

func run() error {
	orig, err := gea.FigureOriginal()
	if err != nil {
		return err
	}
	target, err := gea.FigureTarget()
	if err != nil {
		return err
	}

	if err := show("Fig. 2 — original sample", orig); err != nil {
		return err
	}
	if err := show("Fig. 3 — selected target sample", target); err != nil {
		return err
	}

	merged, err := gea.Merge(orig, target)
	if err != nil {
		return err
	}
	if err := show("Fig. 4 — GEA combined graph (shared entry and exit)", merged); err != nil {
		return err
	}

	// Functionality preservation: identical observable traces.
	it := &ir.Interp{}
	for _, input := range [][]int64{{0}, {5}, {42}} {
		want, err := it.Run(orig, input...)
		if err != nil {
			return err
		}
		got, err := it.Run(merged, input...)
		if err != nil {
			return err
		}
		fmt.Printf("input %v: original result=%d (%d steps), merged result=%d (%d steps), equal=%v\n",
			input, want.Result, want.Steps, got.Result, got.Steps, want.Equal(got))
	}
	return nil
}

func show(title string, p *ir.Program) error {
	cfg, err := ir.Disassemble(p)
	if err != nil {
		return err
	}
	fmt.Printf("=== %s ===\n%s\n", title, p)
	fmt.Printf("CFG: %d nodes, %d edges, density %.3f\n",
		cfg.G().N(), cfg.G().M(), cfg.G().Density())
	v := features.Extract(cfg.G())
	fmt.Printf("features (first 5, betweenness stats): %.4f\n", v[:5])
	fmt.Println("DOT:")
	fmt.Println(cfg.G().DOT(p.Name, cfg.BlockLabels(p)))
	return nil
}
