// The quickstart example builds a small corpus, trains the detector, and
// classifies unseen programs through the full pipeline (disassemble ->
// CFG features -> scale -> CNN). It is the smallest end-to-end use of the
// public API; expect it to run in about a minute.
package main

import (
	"fmt"
	"os"

	"advmal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := advmal.DefaultConfig()
	// Scale down for a fast demo; drop these overrides for the paper's
	// full setup.
	cfg.NumBenign = 80
	cfg.NumMal = 400
	cfg.Epochs = 40
	sys := advmal.NewSystem(cfg)

	fmt.Println("building corpus and extracting CFG features...")
	if err := sys.BuildCorpus(); err != nil {
		return err
	}
	fmt.Printf("corpus: %d train / %d test\n", sys.Train.Len(), sys.Test.Len())

	fmt.Println("training the Fig. 5 CNN...")
	if _, err := sys.Fit(); err != nil {
		return err
	}
	m, err := sys.EvaluateTest()
	if err != nil {
		return err
	}
	fmt.Println("held-out metrics:", m)

	// Classify one unseen benign and one unseen malicious program
	// end-to-end.
	var picks []*advmal.Sample
	for _, malicious := range []bool{false, true} {
		for _, s := range sys.TestSamples() {
			if s.Malicious == malicious {
				picks = append(picks, s)
				break
			}
		}
	}
	for _, s := range picks {
		pred, probs, err := sys.Classify(s.Prog)
		if err != nil {
			return err
		}
		verdict := "benign"
		if pred == 1 {
			verdict = "MALWARE"
		}
		fmt.Printf("%-16s family=%-8s nodes=%3d -> %s (p=%.3f)\n",
			s.Name, s.Family, s.Nodes, verdict, probs[pred])
	}
	return nil
}
