// The craftattack example trains a reduced detector, takes one correctly
// classified malware sample from the held-out split, and crafts
// adversarial examples with JSMA (fewest features changed) and FGSM
// (one-shot), printing exactly which of the 23 CFG features each attack
// perturbed and how the detector's verdict flips.
package main

import (
	"fmt"
	"math"
	"os"

	"advmal/internal/attacks"
	"advmal/internal/core"
	"advmal/internal/features"
	"advmal/internal/nn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "craftattack:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := core.DefaultConfig()
	cfg.NumBenign = 80
	cfg.NumMal = 400
	cfg.Epochs = 40
	sys := core.New(cfg)
	fmt.Println("building corpus and training (reduced setup)...")
	if err := sys.BuildCorpus(); err != nil {
		return err
	}
	if _, err := sys.Fit(); err != nil {
		return err
	}
	m, err := sys.EvaluateTest()
	if err != nil {
		return err
	}
	fmt.Println("detector:", m)

	// First correctly classified malware sample in the held-out split.
	idx := -1
	for i, y := range sys.TestY {
		if y == nn.ClassMalware && sys.Net.Predict(sys.TestX[i]) == y {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("no correctly classified malware in the test split")
	}
	x := sys.TestX[idx]
	name := sys.Test.Records[idx].Sample.Name
	fmt.Printf("\nvictim: %s (malware, p=%.3f)\n", name, sys.Net.Probs(x)[nn.ClassMalware])

	names := features.Names()
	for _, atk := range []attacks.Attack{attacks.NewJSMA(0, 0), attacks.NewFGSM(0)} {
		adv := atk.Craft(sys.Net, x, nn.ClassMalware)
		probs := sys.Net.Probs(adv)
		pred := nn.Argmax(probs)
		verdict := "still MALWARE"
		if pred == nn.ClassBenign {
			verdict = "now classified BENIGN"
		}
		fmt.Printf("\n%s: %s (p_benign=%.3f)\n", atk.Name(), verdict, probs[nn.ClassBenign])
		fmt.Println("features changed (scaled space):")
		changed := 0
		for i := range x {
			d := adv[i] - x[i]
			if math.Abs(d) > 1e-3 {
				fmt.Printf("  %-28s %+.3f (%.3f -> %.3f)\n", names[i], d, x[i], adv[i])
				changed++
			}
		}
		fmt.Printf("  total: %d of %d features\n", changed, len(x))
	}
	return nil
}
