#!/bin/sh
# index_smoke.sh — end-to-end smoke of the similarity layer.
#
# Trains a tiny detector with a similarity corpus (classify -train
# -index), serves both artefacts, and asserts the full path works:
#
#   1. /v1/similar with a raw-vector query answers 200 with k hits and a
#      non-empty family attribution;
#   2. /v1/similar with an assembly program answers 200 and an
#      off-manifold toy program comes back triage-flagged;
#   3. /v1/classify carries the triage block when an index is loaded.
#
# Run from the repo root (the Makefile index-smoke target does).
set -eu

TMP=$(mktemp -d)
SERVE_PID=""
cleanup() {
	[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "index-smoke: building binaries"
go build -o "$TMP" ./cmd/serve ./cmd/classify

echo "index-smoke: training a tiny detector + similarity corpus"
"$TMP/classify" -train -model "$TMP/det.gob" -index "$TMP/corpus.gob" \
	-benign 20 -malware 60 -epochs 15 >/dev/null

echo "index-smoke: starting server with the corpus loaded"
"$TMP/serve" -model "$TMP/det.gob" -index "$TMP/corpus.gob" -addr 127.0.0.1:0 \
	>"$TMP/serve.out" 2>"$TMP/serve.err" &
SERVE_PID=$!

ADDR=""
i=0
while [ $i -lt 100 ]; do
	ADDR=$(sed -n 's/^serve: listening on \([^ ]*\).*/\1/p' "$TMP/serve.out")
	[ -n "$ADDR" ] && break
	if ! kill -0 "$SERVE_PID" 2>/dev/null; then
		cat "$TMP/serve.err" >&2
		echo "index-smoke: FAIL — server died during startup" >&2
		exit 1
	fi
	sleep 0.1
	i=$((i + 1))
done
if [ -z "$ADDR" ]; then
	echo "index-smoke: FAIL — server never reported its address" >&2
	exit 1
fi
echo "index-smoke: server up at $ADDR"

# 1: raw-vector similarity query → 200, k hits, non-empty family.
VEC='{"vector":[120,14,3,8,2,1,4,2.5,1.5,0.8,6,2,9,3,1,0.5,0.2,0.1,4,2,1,0.5,0.3]}'
OUT=$(curl -sf -X POST -H 'Content-Type: application/json' \
	-d "$VEC" "http://$ADDR/v1/similar?k=5") || {
	echo "index-smoke: FAIL — vector query did not answer 200" >&2
	exit 1
}
echo "$OUT" | grep -q '"family":"[a-z]' || {
	echo "index-smoke: FAIL — no family attribution in: $OUT" >&2
	exit 1
}
echo "$OUT" | grep -q '"hits":\[{' || {
	echo "index-smoke: FAIL — no hits in: $OUT" >&2
	exit 1
}
echo "index-smoke: vector query attributed a family"

# 2: an off-manifold toy program must be triage-flagged.
OUT=$(curl -sf -X POST -H 'Content-Type: text/plain' \
	--data-binary 'movi r0, 1
ret
' "http://$ADDR/v1/similar") || {
	echo "index-smoke: FAIL — program query did not answer 200" >&2
	exit 1
}
echo "$OUT" | grep -q '"flagged":true' || {
	echo "index-smoke: FAIL — toy program not triage-flagged: $OUT" >&2
	exit 1
}
echo "index-smoke: off-manifold program triage-flagged"

# 3: /v1/classify carries the triage block when an index is loaded.
OUT=$(curl -sf -X POST -H 'Content-Type: text/plain' \
	--data-binary 'movi r0, 1
ret
' "http://$ADDR/v1/classify") || {
	echo "index-smoke: FAIL — classify did not answer 200" >&2
	exit 1
}
echo "$OUT" | grep -q '"triage":{' || {
	echo "index-smoke: FAIL — classify verdict missing triage block: $OUT" >&2
	exit 1
}
echo "index-smoke: classify verdict carries triage"

kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "index-smoke: PASS"
