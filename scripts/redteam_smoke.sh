#!/bin/sh
# redteam_smoke.sh — end-to-end smoke of the live attack-replay harness.
#
# Builds serve/classify/retrain/redteam, trains a tiny detector, boots
# one admin-armed replica, and replays a short mixed campaign (all eight
# feature-space attacks + GEA splices + clean controls) as paced traffic
# while an external retrain hot-swaps a new model in mid-campaign. The
# scorecard must then show:
#
#   1. zero transport errors and zero HTTP errors — every item answered;
#   2. nonzero evasion — the white-box campaign actually evades the
#      served model, so the harness is measuring something real;
#   3. triage counters present — the /v1/similar side query is scored
#      (unavailable on this index-less replica, and said so explicitly);
#   4. verdicts attributed to at least two model versions with a
#      per-attack robustness delta — the mid-campaign hot swap was
#      measured as a before/after population split, not averaged away.
#
# Run from the repo root (the Makefile redteam-smoke target does).
set -eu

TMP=$(mktemp -d)
PIDS=""
cleanup() {
	for pid in $PIDS; do
		kill "$pid" 2>/dev/null || true
	done
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "redteam-smoke: building binaries"
go build -o "$TMP" ./cmd/serve ./cmd/classify ./cmd/retrain ./cmd/redteam

echo "redteam-smoke: training a tiny detector"
"$TMP/classify" -train -model "$TMP/det.gob" -benign 20 -malware 60 -epochs 15 >/dev/null

# wait_addr LOGFILE PREFIX PID — scrape the resolved listen address.
wait_addr() {
	_addr=""
	_i=0
	while [ $_i -lt 100 ]; do
		_addr=$(sed -n "s/^$2: listening on \\([^ ]*\\).*/\\1/p" "$1")
		[ -n "$_addr" ] && break
		if ! kill -0 "$3" 2>/dev/null; then
			echo "redteam-smoke: FAIL — $2 died during startup" >&2
			exit 1
		fi
		sleep 0.1
		_i=$((_i + 1))
	done
	if [ -z "$_addr" ]; then
		echo "redteam-smoke: FAIL — $2 never reported its address" >&2
		exit 1
	fi
	echo "$_addr"
}

echo "redteam-smoke: starting admin-armed replica"
"$TMP/serve" -model "$TMP/det.gob" -addr 127.0.0.1:0 -admin \
	>"$TMP/serve.out" 2>"$TMP/serve.err" &
SRV_PID=$!
PIDS="$PIDS $SRV_PID"
ADDR=$(wait_addr "$TMP/serve.out" serve "$SRV_PID")
echo "redteam-smoke: replica up at $ADDR (pid $SRV_PID)"

# Paced campaign: ~200 items at 15 req/s spans >10s, leaving a wide
# window for the swap to land between items.
echo "redteam-smoke: launching paced campaign"
"$TMP/redteam" -target "http://$ADDR" -model "$TMP/det.gob" \
	-per-cell 2 -rps 15 -similar -json \
	>"$TMP/rep.json" 2>"$TMP/redteam.err" &
RT_PID=$!
PIDS="$PIDS $RT_PID"

# Generation happens before any traffic flows; wait for the replay
# phase to actually start, then let a slice of the campaign be served
# by the original model before swapping.
_i=0
while ! grep -q 'campaign ready' "$TMP/redteam.err" 2>/dev/null; do
	if ! kill -0 "$RT_PID" 2>/dev/null; then
		cat "$TMP/redteam.err" >&2
		echo "redteam-smoke: FAIL — campaign exited before replay started" >&2
		exit 1
	fi
	_i=$((_i + 1))
	if [ $_i -gt 600 ]; then
		echo "redteam-smoke: FAIL — campaign generation never finished" >&2
		exit 1
	fi
	sleep 0.1
done
sleep 3

# Hot-swap a retrained candidate in mid-campaign (permissive clean
# gates, evasion gates off — gate selectivity is pinned elsewhere).
echo "redteam-smoke: retraining and swapping mid-campaign"
"$TMP/retrain" -model "$TMP/det.gob" -swap-url "http://$ADDR" \
	-benign 12 -malware 36 -epochs 5 \
	-max-acc-drop 1 -max-fnr-increase 1 -max-fpr-increase 1 -attack-samples -1 \
	>"$TMP/retrain.out" 2>"$TMP/retrain.err"

if ! kill -0 "$RT_PID" 2>/dev/null; then
	cat "$TMP/redteam.err" >&2
	echo "redteam-smoke: FAIL — campaign ended before the swap landed" >&2
	exit 1
fi

set +e
wait "$RT_PID"
RT_STATUS=$?
set -e
if [ "$RT_STATUS" -ne 0 ]; then
	cat "$TMP/redteam.err" >&2
	echo "redteam-smoke: FAIL — redteam exited $RT_STATUS" >&2
	exit 1
fi

# 1. Every item answered: zero transport and HTTP errors.
if ! grep -q '"transport_errors": 0' "$TMP/rep.json" ||
	! grep -q '"http_errors": 0' "$TMP/rep.json"; then
	grep -E 'errors|first_error' "$TMP/rep.json" >&2 || true
	echo "redteam-smoke: FAIL — campaign saw transport or HTTP errors" >&2
	exit 1
fi
echo "redteam-smoke: zero transport/HTTP errors"

# 2. Nonzero evasion: at least one cell evaded the served model.
if ! grep -q '"evaded": [1-9]' "$TMP/rep.json"; then
	echo "redteam-smoke: FAIL — no cell reports nonzero evasion" >&2
	exit 1
fi
echo "redteam-smoke: nonzero evasion measured"

# 3. Triage counters present (this replica has no index, so the
# scorecard must say triage was unavailable rather than omit it).
if ! grep -q '"triage"' "$TMP/rep.json" ||
	! grep -q '"unavailable": true' "$TMP/rep.json"; then
	echo "redteam-smoke: FAIL — triage counters missing from scorecard" >&2
	exit 1
fi
echo "redteam-smoke: triage counters present"

# 4. The hot swap split every attack's population: at least two model
# versions attributed, with a per-attack robustness delta.
VERSIONS=$(grep -o '"version": [0-9]*' "$TMP/rep.json" | sort -u | wc -l)
if [ "$VERSIONS" -lt 2 ]; then
	grep -E '"version"|"deltas"' "$TMP/rep.json" >&2 || true
	echo "redteam-smoke: FAIL — verdicts attributed to fewer than two model versions" >&2
	exit 1
fi
if ! grep -q '"old_version"' "$TMP/rep.json"; then
	echo "redteam-smoke: FAIL — no per-attack robustness delta across the swap" >&2
	exit 1
fi
echo "redteam-smoke: robustness delta measured across $VERSIONS model versions"

kill -TERM "$SRV_PID"
set +e
wait "$SRV_PID"
set -e
PIDS=""
echo "redteam-smoke: PASS"
