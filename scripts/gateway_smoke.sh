#!/bin/sh
# gateway_smoke.sh — end-to-end smoke of the fault-tolerant gateway.
#
# Builds serve/gateway/loadgen/classify, trains a tiny detector, boots
# three chaos-armed replicas on ephemeral ports plus the gateway over
# them, and asserts the resilience claims end to end:
#
#   1. a fixed budget of loadgen requests through the gateway all
#      answer 200;
#   2. kill -9 one replica mid-load: every client request still answers
#      200 (the survivors absorb the dead replica's shards), and the
#      gateway's /metrics records the health-check ejection;
#   3. SIGTERM the gateway and the surviving replicas mid-load: each
#      exits 0 and each replica's drain accounting reports dropped=0.
#
# Run from the repo root (the Makefile gateway-smoke target does).
set -eu

TMP=$(mktemp -d)
PIDS=""
cleanup() {
	for pid in $PIDS; do
		kill "$pid" 2>/dev/null || true
	done
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "gateway-smoke: building binaries"
go build -o "$TMP" ./cmd/serve ./cmd/gateway ./cmd/loadgen ./cmd/classify

echo "gateway-smoke: training a tiny detector"
"$TMP/classify" -train -model "$TMP/det.gob" -benign 20 -malware 60 -epochs 15 >/dev/null

# wait_addr LOGFILE PREFIX PID — scrape the resolved listen address.
wait_addr() {
	_addr=""
	_i=0
	while [ $_i -lt 100 ]; do
		_addr=$(sed -n "s/^$2: listening on \\([^ ]*\\).*/\\1/p" "$1")
		[ -n "$_addr" ] && break
		if ! kill -0 "$3" 2>/dev/null; then
			echo "gateway-smoke: FAIL — $2 died during startup" >&2
			exit 1
		fi
		sleep 0.1
		_i=$((_i + 1))
	done
	if [ -z "$_addr" ]; then
		echo "gateway-smoke: FAIL — $2 never reported its address" >&2
		exit 1
	fi
	echo "$_addr"
}

echo "gateway-smoke: starting 3 chaos-armed replicas"
REPLICA_ADDRS=""
REPLICA_PIDS=""
for i in 1 2 3; do
	"$TMP/serve" -model "$TMP/det.gob" -addr 127.0.0.1:0 -chaos \
		>"$TMP/serve$i.out" 2>"$TMP/serve$i.err" &
	pid=$!
	PIDS="$PIDS $pid"
	REPLICA_PIDS="$REPLICA_PIDS $pid"
	addr=$(wait_addr "$TMP/serve$i.out" serve "$pid")
	REPLICA_ADDRS="$REPLICA_ADDRS,$addr"
	echo "gateway-smoke: replica $i up at $addr (pid $pid)"
done
REPLICA_ADDRS=${REPLICA_ADDRS#,}

echo "gateway-smoke: starting gateway"
"$TMP/gateway" -addr 127.0.0.1:0 -backends "$REPLICA_ADDRS" \
	-health-interval 100ms \
	>"$TMP/gateway.out" 2>"$TMP/gateway.err" &
GW_PID=$!
PIDS="$PIDS $GW_PID"
GW=$(wait_addr "$TMP/gateway.out" gateway "$GW_PID")
echo "gateway-smoke: gateway up at $GW"

# Phase 1: clean cluster — every request answers 200. loadgen exits
# non-zero on any transport error or non-200, so its exit code is the
# assertion.
echo "gateway-smoke: phase 1 — clean cluster"
"$TMP/loadgen" -addr "http://$GW" -requests 300 -conc 8 -programs 16

# Phase 2: kill one replica mid-load via the chaos surface (the replica
# os.Exit(137)s itself — a crash, not a drain) and keep asserting zero
# server failures through the gateway. -strict makes loadgen's exit code
# the assertion: any transport error or 5xx fails the run, shed 4xx load
# would not — no report grepping.
VICTIM=$(echo "$REPLICA_ADDRS" | cut -d, -f1)
VICTIM_PID=$(echo "$REPLICA_PIDS" | awk '{print $1}')
echo "gateway-smoke: phase 2 — killing replica $VICTIM mid-load"
"$TMP/loadgen" -addr "http://$GW" -duration 4s -conc 8 -programs 16 -strict \
	-chaos "at=1s,url=http://$VICTIM,mode=kill" \
	>"$TMP/phase2.out" 2>"$TMP/phase2.err"
cat "$TMP/phase2.out"
set +e
wait "$VICTIM_PID" 2>/dev/null
VICTIM_STATUS=$?
set -e
if [ "$VICTIM_STATUS" -ne 137 ]; then
	echo "gateway-smoke: FAIL — victim exited $VICTIM_STATUS, want 137 (chaos kill)" >&2
	exit 1
fi
REPLICA_PIDS=$(echo "$REPLICA_PIDS" | awk '{$1=""; print}')

# The health checker must have ejected the dead replica by now.
if ! curl -sf "http://$GW/metrics" | grep -q '^gateway_ejections_total [1-9]'; then
	curl -s "http://$GW/metrics" | grep -E 'eject|healthy' >&2 || true
	echo "gateway-smoke: FAIL — gateway never recorded the ejection" >&2
	exit 1
fi
echo "gateway-smoke: ejection recorded; routable shards stayed 200"

# Phase 3: graceful drain under load. SIGTERM gateway + survivors; each
# must exit 0 and the replicas' accounting must report dropped=0.
echo "gateway-smoke: phase 3 — SIGTERM mid-load"
"$TMP/loadgen" -addr "http://$GW" -duration 2s -conc 8 -tolerate-errors \
	>/dev/null 2>&1 &
LOAD_PID=$!
sleep 0.5
kill -TERM "$GW_PID"
set +e
wait "$GW_PID"
GW_STATUS=$?
set -e
if [ "$GW_STATUS" -ne 0 ]; then
	cat "$TMP/gateway.err" >&2
	echo "gateway-smoke: FAIL — gateway exited $GW_STATUS after SIGTERM" >&2
	exit 1
fi
grep 'drained' "$TMP/gateway.err"

for pid in $REPLICA_PIDS; do
	kill -TERM "$pid" 2>/dev/null || true
done
for pid in $REPLICA_PIDS; do
	set +e
	wait "$pid"
	STATUS=$?
	set -e
	if [ "$STATUS" -ne 0 ]; then
		echo "gateway-smoke: FAIL — replica (pid $pid) exited $STATUS after SIGTERM" >&2
		cat "$TMP"/serve*.err >&2
		exit 1
	fi
done
for i in 2 3; do
	if ! grep -q 'dropped=0' "$TMP/serve$i.err"; then
		cat "$TMP/serve$i.err" >&2
		echo "gateway-smoke: FAIL — replica $i drain accounting does not report dropped=0" >&2
		exit 1
	fi
done
wait "$LOAD_PID" 2>/dev/null || true
PIDS=""
echo "gateway-smoke: PASS"
