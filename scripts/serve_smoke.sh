#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the online detection service.
#
# Builds serve/loadgen/classify, trains a tiny detector, starts the
# server on an ephemeral port, and asserts two things:
#
#   1. a fixed budget of loadgen requests all answer 200;
#   2. SIGTERM in the middle of a live load drains cleanly — the server
#      exits 0 and its drain accounting reports dropped=0.
#
# Run from the repo root (the Makefile serve-smoke target does).
set -eu

TMP=$(mktemp -d)
SERVE_PID=""
cleanup() {
	[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building binaries"
go build -o "$TMP" ./cmd/serve ./cmd/loadgen ./cmd/classify

echo "serve-smoke: training a tiny detector"
"$TMP/classify" -train -model "$TMP/det.gob" -benign 20 -malware 60 -epochs 15 >/dev/null

echo "serve-smoke: starting server on an ephemeral port"
"$TMP/serve" -model "$TMP/det.gob" -addr 127.0.0.1:0 \
	>"$TMP/serve.out" 2>"$TMP/serve.err" &
SERVE_PID=$!

# The server prints its resolved address once the listener is up.
ADDR=""
i=0
while [ $i -lt 100 ]; do
	ADDR=$(sed -n 's/^serve: listening on \([^ ]*\).*/\1/p' "$TMP/serve.out")
	[ -n "$ADDR" ] && break
	if ! kill -0 "$SERVE_PID" 2>/dev/null; then
		cat "$TMP/serve.err" >&2
		echo "serve-smoke: FAIL — server died during startup" >&2
		exit 1
	fi
	sleep 0.1
	i=$((i + 1))
done
if [ -z "$ADDR" ]; then
	echo "serve-smoke: FAIL — server never reported its address" >&2
	exit 1
fi
echo "serve-smoke: server up at $ADDR"

# Phase 1: every request must answer 200. loadgen exits non-zero on any
# transport error or non-200 status, so its exit code is the assertion.
"$TMP/loadgen" -addr "http://$ADDR" -requests 200 -conc 8 -programs 16

# Phase 2: SIGTERM mid-load. Background clients keep traffic flowing
# while the server drains; their post-drain connection failures are
# expected (-tolerate-errors) — the server's own accounting is the
# assertion.
"$TMP/loadgen" -addr "http://$ADDR" -duration 2s -conc 8 -tolerate-errors \
	>/dev/null 2>&1 &
LOAD_PID=$!
sleep 0.5
echo "serve-smoke: sending SIGTERM mid-load"
kill -TERM "$SERVE_PID"
set +e
wait "$SERVE_PID"
STATUS=$?
set -e
SERVE_PID=""
wait "$LOAD_PID" 2>/dev/null || true

if [ "$STATUS" -ne 0 ]; then
	cat "$TMP/serve.err" >&2
	echo "serve-smoke: FAIL — server exited $STATUS after SIGTERM" >&2
	exit 1
fi
if ! grep -q 'dropped=0' "$TMP/serve.err"; then
	cat "$TMP/serve.err" >&2
	echo "serve-smoke: FAIL — drain accounting does not report dropped=0" >&2
	exit 1
fi
grep 'drained' "$TMP/serve.err"
echo "serve-smoke: PASS"
