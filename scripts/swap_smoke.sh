#!/bin/sh
# swap_smoke.sh — end-to-end smoke of the canary-gated hot-swap path.
#
# Builds serve/loadgen/classify/retrain, trains a tiny detector, boots
# one admin-armed replica, and asserts the lifecycle claims end to end:
#
#   1. with client load running continuously against the replica, the
#      external retrain driver trains a candidate on a drifted window,
#      passes the (permissive, clean-only) canary gates, and hot-swaps
#      it in over POST /admin/swap;
#   2. not a single client request fails across the swap — loadgen runs
#      without -tolerate-errors, so any non-200 fails the script;
#   3. the replica's /metrics reports the new version and the swap count,
#      and /v1/model agrees.
#
# Run from the repo root (the Makefile swap-smoke target does).
set -eu

TMP=$(mktemp -d)
PIDS=""
cleanup() {
	for pid in $PIDS; do
		kill "$pid" 2>/dev/null || true
	done
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "swap-smoke: building binaries"
go build -o "$TMP" ./cmd/serve ./cmd/loadgen ./cmd/classify ./cmd/retrain

echo "swap-smoke: training a tiny detector"
"$TMP/classify" -train -model "$TMP/det.gob" -benign 20 -malware 60 -epochs 15 >/dev/null

# wait_addr LOGFILE PREFIX PID — scrape the resolved listen address.
wait_addr() {
	_addr=""
	_i=0
	while [ $_i -lt 100 ]; do
		_addr=$(sed -n "s/^$2: listening on \\([^ ]*\\).*/\\1/p" "$1")
		[ -n "$_addr" ] && break
		if ! kill -0 "$3" 2>/dev/null; then
			echo "swap-smoke: FAIL — $2 died during startup" >&2
			exit 1
		fi
		sleep 0.1
		_i=$((_i + 1))
	done
	if [ -z "$_addr" ]; then
		echo "swap-smoke: FAIL — $2 never reported its address" >&2
		exit 1
	fi
	echo "$_addr"
}

echo "swap-smoke: starting admin-armed replica"
"$TMP/serve" -model "$TMP/det.gob" -addr 127.0.0.1:0 -admin \
	>"$TMP/serve.out" 2>"$TMP/serve.err" &
SRV_PID=$!
PIDS="$PIDS $SRV_PID"
ADDR=$(wait_addr "$TMP/serve.out" serve "$SRV_PID")
echo "swap-smoke: replica up at $ADDR (pid $SRV_PID)"

# Continuous client load across the whole swap window. No error
# tolerance: a single non-200 during the hot swap fails the script.
echo "swap-smoke: starting continuous load"
"$TMP/loadgen" -addr "http://$ADDR" -duration 25s -conc 8 -programs 16 \
	>"$TMP/load.out" 2>"$TMP/load.err" &
LOAD_PID=$!
PIDS="$PIDS $LOAD_PID"

# Retrain + canary + swap from outside the serving process. Clean gates
# are fully permissive (the tiny windows make metrics noisy) and the
# evasion gates are skipped — gate selectivity is pinned by the
# lifecycle package tests; this script asserts the wire path.
echo "swap-smoke: retraining and swapping a candidate in"
"$TMP/retrain" -model "$TMP/det.gob" -swap-url "http://$ADDR" \
	-benign 12 -malware 36 -epochs 5 \
	-max-acc-drop 1 -max-fnr-increase 1 -max-fpr-increase 1 -attack-samples -1 \
	>"$TMP/retrain.out" 2>"$TMP/retrain.err"
cat "$TMP/retrain.out"

# The swap must have landed while load was still flowing.
if ! kill -0 "$LOAD_PID" 2>/dev/null; then
	echo "swap-smoke: FAIL — load generator exited before the swap landed" >&2
	cat "$TMP/load.err" >&2
	exit 1
fi

# The replica must now serve version 2 and account for one swap.
if ! curl -sf "http://$ADDR/metrics" | grep -q '^advmal_model_version 2$'; then
	curl -s "http://$ADDR/metrics" | grep -E 'model_version|swaps' >&2 || true
	echo "swap-smoke: FAIL — /metrics does not report model version 2" >&2
	exit 1
fi
if ! curl -sf "http://$ADDR/metrics" | grep -q '^advmal_model_swaps_total 1$'; then
	echo "swap-smoke: FAIL — /metrics does not report exactly one swap" >&2
	exit 1
fi
if ! curl -sf "http://$ADDR/v1/model" | grep -q '"version":2'; then
	echo "swap-smoke: FAIL — /v1/model does not report version 2" >&2
	exit 1
fi
echo "swap-smoke: replica serves v2 after one hot swap"

# Zero dropped requests: the load that spanned the swap must exit 0.
set +e
wait "$LOAD_PID"
LOAD_STATUS=$?
set -e
if [ "$LOAD_STATUS" -ne 0 ]; then
	cat "$TMP/load.out" "$TMP/load.err" >&2
	echo "swap-smoke: FAIL — client load saw errors across the hot swap" >&2
	exit 1
fi
grep -E 'requests|by_status' "$TMP/load.out" || true

kill -TERM "$SRV_PID"
set +e
wait "$SRV_PID"
SRV_STATUS=$?
set -e
if [ "$SRV_STATUS" -ne 0 ]; then
	cat "$TMP/serve.err" >&2
	echo "swap-smoke: FAIL — replica exited $SRV_STATUS after SIGTERM" >&2
	exit 1
fi
if ! grep -q 'dropped=0' "$TMP/serve.err"; then
	cat "$TMP/serve.err" >&2
	echo "swap-smoke: FAIL — drain accounting does not report dropped=0" >&2
	exit 1
fi
PIDS=""
echo "swap-smoke: PASS"
