package graph

// DegreeCentrality returns the normalized degree centrality of every node:
// (in-degree + out-degree) / (n - 1), the standard definition for directed
// graphs. For n < 2 all centralities are 0.
func (g *Graph) DegreeCentrality() []float64 {
	n := g.N()
	c := make([]float64, n)
	if n < 2 {
		return c
	}
	norm := 1 / float64(n-1)
	for u := 0; u < n; u++ {
		c[u] = float64(g.InDegree(u)+g.OutDegree(u)) * norm
	}
	return c
}

// ClosenessCentrality returns the incoming-distance closeness centrality of
// every node with the Wasserman–Faust scaling used by standard graph
// toolkits: for node v, with R the set of nodes that can reach v,
//
//	C(v) = (|R| / sum_{u in R} d(u,v)) * (|R| / (n-1))
//
// Nodes that no other node can reach get centrality 0.
func (g *Graph) ClosenessCentrality() []float64 {
	n := g.N()
	c := make([]float64, n)
	if n < 2 {
		return c
	}
	rev := g.Reverse()
	for v := 0; v < n; v++ {
		dist := rev.BFSFrom(v)
		var sum, reach int
		for u, d := range dist {
			if u == v || d < 0 {
				continue
			}
			sum += d
			reach++
		}
		if sum > 0 {
			c[v] = float64(reach) / float64(sum) * float64(reach) / float64(n-1)
		}
	}
	return c
}

// BetweennessCentrality returns the shortest-path betweenness centrality of
// every node, computed with Brandes' algorithm for unweighted directed
// graphs, normalized by 1/((n-1)(n-2)). Endpoints are excluded, matching
// the standard definition. For n < 3 all centralities are 0.
func (g *Graph) BetweennessCentrality() []float64 {
	n := g.N()
	bc := make([]float64, n)
	if n < 3 {
		return bc
	}
	// Reused per-source scratch space.
	var (
		dist  = make([]int, n)
		sigma = make([]float64, n)
		delta = make([]float64, n)
		preds = make([][]int32, n)
		order = make([]int32, 0, n)
	)
	for s := 0; s < n; s++ {
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		order = order[:0]
		dist[s] = 0
		sigma[s] = 1
		order = append(order, int32(s))
		for head := 0; head < len(order); head++ {
			u := order[head]
			for _, v := range g.out[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					order = append(order, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], u)
				}
			}
		}
		// Dependency accumulation in reverse BFS order.
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, u := range preds[w] {
				delta[u] += sigma[u] / sigma[w] * (1 + delta[w])
			}
			if int(w) != s {
				bc[w] += delta[w]
			}
		}
	}
	norm := 1 / (float64(n-1) * float64(n-2))
	for i := range bc {
		bc[i] *= norm
	}
	return bc
}

// ShortestPathLengths returns the multiset of all finite pairwise
// shortest-path lengths d(u,v) for u != v, in deterministic order
// (ascending source, then BFS layer order). The paper's "shortest path"
// feature group is the {min,max,median,mean,std} summary of this multiset.
func (g *Graph) ShortestPathLengths() []float64 {
	n := g.N()
	var out []float64
	for s := 0; s < n; s++ {
		dist := g.BFSFrom(s)
		for v, d := range dist {
			if v == s || d <= 0 {
				continue
			}
			out = append(out, float64(d))
		}
	}
	return out
}
