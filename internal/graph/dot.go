package graph

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz DOT syntax. labels may be nil, in which
// case nodes are labelled by index; otherwise labels[i] labels node i.
// Used to regenerate the CFG figures (Figs. 2-4 of the paper).
func (g *Graph) DOT(name string, labels []string) string {
	var sb strings.Builder
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  node [shape=box fontname=\"monospace\"];\n")
	for u := 0; u < g.N(); u++ {
		label := fmt.Sprintf("b%d", u)
		if labels != nil && u < len(labels) && labels[u] != "" {
			label = labels[u]
		}
		// Labels may contain DOT escapes like \l, so only quotes are
		// escaped rather than using %q.
		label = strings.ReplaceAll(label, `"`, `\"`)
		fmt.Fprintf(&sb, "  n%d [label=\"%s\"];\n", u, label)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  n%d -> n%d;\n", e[0], e[1])
	}
	sb.WriteString("}\n")
	return sb.String()
}
