package graph

import (
	"math"
)

// EigenvectorCentrality computes eigenvector centrality by power
// iteration on the adjacency matrix (incoming-edge convention: a node is
// central if central nodes point at it), the third centrality the paper's
// §II-B names. maxIter bounds the iterations (0 means 100); the result is
// L2-normalized. Graphs whose iteration does not converge (e.g. DAGs,
// where mass drains to sinks) still return the final iterate, which is
// deterministic.
func (g *Graph) EigenvectorCentrality(maxIter int) []float64 {
	n := g.N()
	if n == 0 {
		return nil
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	v := make([]float64, n)
	next := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
	}
	const tol = 1e-10
	for it := 0; it < maxIter; it++ {
		for i := range next {
			next[i] = v[i] * 1e-4 // damping keeps DAG iterates nonzero
		}
		for u := 0; u < n; u++ {
			for _, w := range g.out[u] {
				next[w] += v[u]
			}
		}
		var norm float64
		for _, x := range next {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			break
		}
		var delta float64
		for i := range next {
			next[i] /= norm
			delta += math.Abs(next[i] - v[i])
		}
		v, next = next, v
		if delta < tol {
			break
		}
	}
	return v
}

// SCCs returns the strongly connected components in reverse topological
// order (Tarjan's algorithm, iterative). Every node appears in exactly
// one component. CFG loops show up as multi-node (or self-loop) SCCs.
func (g *Graph) SCCs() [][]int {
	n := g.N()
	var (
		index   = make([]int, n)
		lowlink = make([]int, n)
		onStack = make([]bool, n)
		stack   = make([]int, 0, n)
		comps   [][]int
		counter = 1 // 0 means unvisited
	)
	type frame struct {
		v, next int
	}
	for start := 0; start < n; start++ {
		if index[start] != 0 {
			continue
		}
		frames := []frame{{v: start}}
		index[start] = counter
		lowlink[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.next < len(g.out[v]) {
				w := int(g.out[v][f.next])
				f.next++
				switch {
				case index[w] == 0:
					index[w] = counter
					lowlink[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				case onStack[w]:
					if index[w] < lowlink[v] {
						lowlink[v] = index[w]
					}
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// Diameter returns the longest finite shortest-path distance in the
// graph, 0 for graphs with no reachable pairs.
func (g *Graph) Diameter() int {
	best := 0
	for s := 0; s < g.N(); s++ {
		for _, d := range g.BFSFrom(s) {
			if d > best {
				best = d
			}
		}
	}
	return best
}

// Dominators computes the immediate dominator of every node for flow
// graphs rooted at entry, using the iterative Cooper–Harvey–Kennedy
// algorithm. idom[entry] == entry; unreachable nodes get -1. Dominator
// trees are the standard CFG analysis for loop detection and code
// structure recovery.
func (g *Graph) Dominators(entry int) []int {
	n := g.N()
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if entry < 0 || entry >= n {
		return idom
	}
	// Reverse postorder from entry.
	order := g.postorder(entry)
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, v := range order {
		// order is postorder; reverse numbering.
		rpoNum[v] = len(order) - 1 - i
	}
	idom[entry] = entry
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		// Process in reverse postorder (skip entry).
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			if v == entry {
				continue
			}
			newIdom := -1
			for _, p := range g.in[v] {
				if idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = int(p)
				} else {
					newIdom = intersect(int(p), newIdom)
				}
			}
			if newIdom >= 0 && idom[v] != newIdom {
				idom[v] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// postorder returns the DFS postorder of nodes reachable from entry.
func (g *Graph) postorder(entry int) []int {
	n := g.N()
	seen := make([]bool, n)
	order := make([]int, 0, n)
	type frame struct {
		v, next int
	}
	frames := []frame{{v: entry}}
	seen[entry] = true
	for len(frames) > 0 {
		f := &frames[len(frames)-1]
		if f.next < len(g.out[f.v]) {
			w := int(g.out[f.v][f.next])
			f.next++
			if !seen[w] {
				seen[w] = true
				frames = append(frames, frame{v: w})
			}
			continue
		}
		order = append(order, f.v)
		frames = frames[:len(frames)-1]
	}
	return order
}

// BackEdges returns the edges u->v where v dominates u — the natural
// loop back edges of a flow graph rooted at entry.
func (g *Graph) BackEdges(entry int) [][2]int {
	idom := g.Dominators(entry)
	dominates := func(a, b int) bool {
		// Does a dominate b? Walk b's dominator chain.
		if idom[b] < 0 {
			return false
		}
		for {
			if b == a {
				return true
			}
			if b == idom[b] {
				return false
			}
			b = idom[b]
		}
	}
	var back [][2]int
	for u := 0; u < g.N(); u++ {
		if idom[u] < 0 {
			continue
		}
		for _, v := range g.out[u] {
			if dominates(int(v), u) {
				back = append(back, [2]int{u, int(v)})
			}
		}
	}
	return back
}
