package graph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestEigenvectorCentralityCycle(t *testing.T) {
	// On a cycle every node is equally central: 1/sqrt(n) each.
	n := 6
	g := cycle(t, n)
	c := g.EigenvectorCentrality(0)
	want := 1 / math.Sqrt(float64(n))
	for i, x := range c {
		if math.Abs(x-want) > 1e-6 {
			t.Errorf("eigen[%d] = %v, want %v", i, x, want)
		}
	}
}

func TestEigenvectorCentralityHub(t *testing.T) {
	// Everyone points at node 0; node 0 must dominate.
	b := NewBuilder(5)
	for i := 1; i < 5; i++ {
		mustEdge(t, b, i, 0)
		mustEdge(t, b, 0, i) // back edges keep the iteration alive
	}
	c := b.Build().EigenvectorCentrality(0)
	for i := 1; i < 5; i++ {
		if c[0] <= c[i] {
			t.Errorf("hub centrality %v not above leaf %v", c[0], c[i])
		}
	}
}

func TestEigenvectorCentralityEmpty(t *testing.T) {
	if c := NewBuilder(0).Build().EigenvectorCentrality(0); c != nil {
		t.Errorf("empty graph eigenvector = %v, want nil", c)
	}
}

func TestSCCsLinearChain(t *testing.T) {
	g := path(t, 4)
	comps := g.SCCs()
	if len(comps) != 4 {
		t.Fatalf("chain SCCs = %d, want 4 singletons", len(comps))
	}
	// Reverse topological order: sinks first.
	if comps[0][0] != 3 {
		t.Errorf("first SCC = %v, want the sink", comps[0])
	}
}

func TestSCCsCycleAndTail(t *testing.T) {
	// 0->1->2->0 cycle, plus 2->3 tail.
	b := NewBuilder(4)
	mustEdge(t, b, 0, 1)
	mustEdge(t, b, 1, 2)
	mustEdge(t, b, 2, 0)
	mustEdge(t, b, 2, 3)
	comps := b.Build().SCCs()
	if len(comps) != 2 {
		t.Fatalf("SCCs = %v, want 2 components", comps)
	}
	var sizes []int
	for _, c := range comps {
		sizes = append(sizes, len(c))
	}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 3 {
		t.Errorf("SCC sizes = %v, want [1 3]", sizes)
	}
}

func TestSCCsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		g := RandomDirected(rng, 3+rng.Intn(25), 0.15)
		comps := g.SCCs()
		seen := make([]int, g.N())
		for _, c := range comps {
			for _, v := range c {
				seen[v]++
			}
		}
		for v, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("node %d appears in %d SCCs", v, cnt)
			}
		}
	}
}

func TestDiameter(t *testing.T) {
	if d := path(t, 5).Diameter(); d != 4 {
		t.Errorf("path diameter = %d, want 4", d)
	}
	if d := cycle(t, 5).Diameter(); d != 4 {
		t.Errorf("cycle diameter = %d, want 4", d)
	}
	if d := NewBuilder(3).Build().Diameter(); d != 0 {
		t.Errorf("edgeless diameter = %d, want 0", d)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	// 0 -> {1,2} -> 3: the join is dominated by the entry, not by
	// either branch arm.
	b := NewBuilder(4)
	mustEdge(t, b, 0, 1)
	mustEdge(t, b, 0, 2)
	mustEdge(t, b, 1, 3)
	mustEdge(t, b, 2, 3)
	idom := b.Build().Dominators(0)
	want := []int{0, 0, 0, 0}
	for i := range want {
		if idom[i] != want[i] {
			t.Errorf("idom[%d] = %d, want %d", i, idom[i], want[i])
		}
	}
}

func TestDominatorsChain(t *testing.T) {
	idom := path(t, 4).Dominators(0)
	want := []int{0, 0, 1, 2}
	for i := range want {
		if idom[i] != want[i] {
			t.Errorf("idom[%d] = %d, want %d", i, idom[i], want[i])
		}
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	b := NewBuilder(3)
	mustEdge(t, b, 0, 1)
	// Node 2 unreachable.
	idom := b.Build().Dominators(0)
	if idom[2] != -1 {
		t.Errorf("unreachable idom = %d, want -1", idom[2])
	}
	// Bad entry yields all -1.
	for _, d := range b.Build().Dominators(99) {
		if d != -1 {
			t.Error("bad entry should mark everything unreachable")
		}
	}
}

func TestBackEdgesLoop(t *testing.T) {
	// 0 -> 1 -> 2 -> 1 (loop), 2 -> 3.
	b := NewBuilder(4)
	mustEdge(t, b, 0, 1)
	mustEdge(t, b, 1, 2)
	mustEdge(t, b, 2, 1)
	mustEdge(t, b, 2, 3)
	back := b.Build().BackEdges(0)
	if len(back) != 1 || back[0] != [2]int{2, 1} {
		t.Errorf("back edges = %v, want [[2 1]]", back)
	}
}

func TestBackEdgesSelfLoop(t *testing.T) {
	b := NewBuilder(2).AllowSelfLoops()
	mustEdge(t, b, 0, 1)
	mustEdge(t, b, 1, 1)
	back := b.Build().BackEdges(0)
	if len(back) != 1 || back[0] != [2]int{1, 1} {
		t.Errorf("self-loop back edges = %v", back)
	}
}

func TestBackEdgesAcyclic(t *testing.T) {
	if back := path(t, 5).BackEdges(0); len(back) != 0 {
		t.Errorf("acyclic graph has back edges: %v", back)
	}
}

// TestLoopinessSeparatesClasses: random flow graphs with more probability
// mass get more loops — sanity for using back-edge counts as a
// malware signal in the corpus generator.
func TestBackEdgesIncreaseWithDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	count := func(p float64) int {
		total := 0
		for i := 0; i < 10; i++ {
			total += len(RandomFlow(rng, 30, p).BackEdges(0))
		}
		return total
	}
	sparse, dense := count(0.005), count(0.08)
	if dense <= sparse {
		t.Errorf("back edges sparse=%d dense=%d, want dense > sparse", sparse, dense)
	}
}
