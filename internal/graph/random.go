package graph

import (
	"math/rand"
)

// RandomDirected returns a G(n, p) directed random graph without self loops,
// generated deterministically from rng. Used by tests and property checks.
func RandomDirected(rng *rand.Rand, n int, p float64) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if rng.Float64() < p {
				// Endpoints are in range and u != v by construction.
				_ = b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// RandomFlow returns a random CFG-shaped graph: node 0 is an entry from
// which every node is reachable, node n-1 is an exit reachable from every
// node, and extra forward/back edges are added with probability p. This
// mimics the structure disassembled CFGs have and is used for property
// tests and calibration.
func RandomFlow(rng *rand.Rand, n int, p float64) *Graph {
	if n < 1 {
		return NewBuilder(0).Build()
	}
	b := NewBuilder(n).AllowSelfLoops()
	// Spine guarantees entry->...->exit connectivity.
	for u := 0; u+1 < n; u++ {
		_ = b.AddEdge(u, u+1)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || v == u+1 {
				continue
			}
			if rng.Float64() < p {
				_ = b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}
