package graph

// Profile bundles everything the feature layer summarizes about a graph:
// the three per-node centrality distributions and the multiset of finite
// pairwise shortest-path lengths. A Profile produced by a Sweeper aliases
// the Sweeper's scratch memory and is valid only until the next call on
// that Sweeper; callers that need the data longer must copy it.
type Profile struct {
	// Betweenness is normalized shortest-path betweenness centrality,
	// identical to Graph.BetweennessCentrality.
	Betweenness []float64
	// Closeness is incoming-distance Wasserman–Faust closeness,
	// identical to Graph.ClosenessCentrality.
	Closeness []float64
	// Degree is normalized (in+out)/(n-1) degree centrality, identical
	// to Graph.DegreeCentrality.
	Degree []float64
	// PathLengths is the multiset of finite pairwise shortest-path
	// lengths d(u,v), u != v, identical (as a multiset) to
	// Graph.ShortestPathLengths.
	PathLengths []float64
}

// Sweeper computes a graph's full feature Profile in a single fused
// all-sources sweep instead of the four independent traversals the naive
// composition performs. One Brandes pass per source yields
//
//   - the per-source BFS distance vector, harvested once per source for
//     both the shortest-path multiset (d(s,v) for every reachable v != s)
//     and the incoming-closeness accumulators of every reached node
//     (d(s,v) is exactly the reverse-BFS distance d_rev(v,s)), and
//   - the sigma/predecessor structures whose reverse-order dependency
//     accumulation produces betweenness.
//
// Degree centrality falls out of the adjacency lists directly. The sweep
// therefore touches each edge O(n) times total where the naive
// composition touches it ~3·O(n) times (forward BFS for paths, reverse
// BFS for closeness, Brandes for betweenness) and also skips the reverse
// graph materialization entirely.
//
// All per-source scratch (distance, sigma, delta, predecessor lists, BFS
// order) and the Profile's result slices are owned by the Sweeper and
// reused across calls, so steady-state profiling performs no per-call
// allocation beyond path-multiset growth. A Sweeper is NOT safe for
// concurrent use; pool Sweepers for parallel extraction (the features
// package does).
//
// Numerics: every floating-point operation is performed in the same
// order and with the same expressions as the naive per-centrality
// methods, so Profile results are bit-for-bit identical to them — a
// property the feature layer's regression tests assert.
type Sweeper struct {
	dist       []int
	sigma      []float64
	delta      []float64
	preds      [][]int32
	order      []int32
	closeSum   []int
	closeReach []int
	res        Profile
}

// NewSweeper returns an empty Sweeper; scratch grows on first use.
func NewSweeper() *Sweeper { return &Sweeper{} }

// resizeZeroed returns s with length n and every element zeroed, reusing
// capacity when possible.
func resizeZeroed(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func (sw *Sweeper) grow(n int) {
	if cap(sw.dist) < n {
		sw.dist = make([]int, n)
		sw.sigma = make([]float64, n)
		sw.delta = make([]float64, n)
		sw.preds = make([][]int32, n)
		sw.closeSum = make([]int, n)
		sw.closeReach = make([]int, n)
	}
	sw.dist = sw.dist[:n]
	sw.sigma = sw.sigma[:n]
	sw.delta = sw.delta[:n]
	sw.preds = sw.preds[:n]
	sw.closeSum = sw.closeSum[:n]
	sw.closeReach = sw.closeReach[:n]
	if cap(sw.order) < n {
		sw.order = make([]int32, 0, n)
	}
	sw.res.Betweenness = resizeZeroed(sw.res.Betweenness, n)
	sw.res.Closeness = resizeZeroed(sw.res.Closeness, n)
	sw.res.Degree = resizeZeroed(sw.res.Degree, n)
	sw.res.PathLengths = sw.res.PathLengths[:0]
	for i := 0; i < n; i++ {
		sw.closeSum[i] = 0
		sw.closeReach[i] = 0
	}
}

// Profile computes g's feature profile in one fused sweep. The returned
// Profile aliases the Sweeper's scratch and is valid until the next
// Profile call on sw.
func (sw *Sweeper) Profile(g *Graph) *Profile {
	n := g.N()
	sw.grow(n)
	p := &sw.res

	if n >= 2 {
		norm := 1 / float64(n-1)
		for u := 0; u < n; u++ {
			p.Degree[u] = float64(g.InDegree(u)+g.OutDegree(u)) * norm
		}
	}

	// Betweenness is only defined (and only normalizable) for n >= 3;
	// the distance harvest below still runs for smaller graphs so the
	// path multiset and closeness match the naive methods exactly.
	doBC := n >= 3
	dist, sigma, delta, preds := sw.dist, sw.sigma, sw.delta, sw.preds
	order := sw.order
	for s := 0; s < n; s++ {
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		order = order[:0]
		dist[s] = 0
		sigma[s] = 1
		order = append(order, int32(s))
		for head := 0; head < len(order); head++ {
			u := order[head]
			for _, v := range g.out[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					order = append(order, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], u)
				}
			}
		}
		// Harvest the distance vector once for two feature groups:
		// d(s,v) joins the shortest-path multiset and accumulates into
		// v's incoming-closeness sums. Node-index order mirrors
		// ShortestPathLengths' enumeration.
		for v := 0; v < n; v++ {
			d := dist[v]
			if v == s || d <= 0 {
				continue
			}
			p.PathLengths = append(p.PathLengths, float64(d))
			sw.closeSum[v] += d
			sw.closeReach[v]++
		}
		if doBC {
			// Dependency accumulation in reverse BFS order.
			for i := len(order) - 1; i >= 0; i-- {
				w := order[i]
				for _, u := range preds[w] {
					delta[u] += sigma[u] / sigma[w] * (1 + delta[w])
				}
				if int(w) != s {
					p.Betweenness[w] += delta[w]
				}
			}
		}
	}
	sw.order = order
	if doBC {
		norm := 1 / (float64(n-1) * float64(n-2))
		for i := range p.Betweenness {
			p.Betweenness[i] *= norm
		}
	}
	if n >= 2 {
		for v := 0; v < n; v++ {
			if sw.closeSum[v] > 0 {
				p.Closeness[v] = float64(sw.closeReach[v]) / float64(sw.closeSum[v]) *
					float64(sw.closeReach[v]) / float64(n-1)
			}
		}
	}
	return p
}

// Profile computes the graph's feature profile with a throwaway Sweeper.
// Convenience for one-off callers; hot paths should reuse a Sweeper (or
// go through the features package's pooled extractor).
func (g *Graph) Profile() *Profile {
	return NewSweeper().Profile(g)
}
