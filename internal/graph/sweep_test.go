package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bitsEqual reports exact (bit-for-bit) float64 slice equality.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// profileMatchesNaive asserts the fused sweep reproduces the four naive
// traversals bit-for-bit, path lengths in identical enumeration order.
func profileMatchesNaive(t *testing.T, g *Graph, sw *Sweeper) {
	t.Helper()
	p := sw.Profile(g)
	if got, want := p.Betweenness, g.BetweennessCentrality(); !bitsEqual(got, want) {
		t.Errorf("n=%d m=%d: fused betweenness %v != naive %v", g.N(), g.M(), got, want)
	}
	if got, want := p.Closeness, g.ClosenessCentrality(); !bitsEqual(got, want) {
		t.Errorf("n=%d m=%d: fused closeness %v != naive %v", g.N(), g.M(), got, want)
	}
	if got, want := p.Degree, g.DegreeCentrality(); !bitsEqual(got, want) {
		t.Errorf("n=%d m=%d: fused degree %v != naive %v", g.N(), g.M(), got, want)
	}
	if got, want := p.PathLengths, g.ShortestPathLengths(); !bitsEqual(got, want) {
		t.Errorf("n=%d m=%d: fused path multiset (len %d) != naive (len %d)",
			g.N(), g.M(), len(got), len(want))
	}
}

func TestSweepMatchesNaiveDegenerate(t *testing.T) {
	sw := NewSweeper()
	// n = 0, 1, 2 exercise every "too small for this centrality" branch.
	profileMatchesNaive(t, NewBuilder(0).Build(), sw)
	profileMatchesNaive(t, NewBuilder(1).Build(), sw)
	b := NewBuilder(2)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	profileMatchesNaive(t, b.Build(), sw)
	// Self loops (allowed in CFGs) must not perturb any distribution.
	b = NewBuilder(3).AllowSelfLoops()
	for _, e := range [][2]int{{0, 0}, {0, 1}, {1, 2}, {2, 0}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	profileMatchesNaive(t, b.Build(), sw)
}

func TestSweepMatchesNaiveRandom(t *testing.T) {
	sw := NewSweeper() // one sweeper across all cases: exercises scratch reuse
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g *Graph
		if rng.Intn(2) == 0 {
			g = RandomDirected(rng, 1+rng.Intn(40), rng.Float64()*0.5)
		} else {
			g = RandomFlow(rng, 1+rng.Intn(40), rng.Float64()*0.3)
		}
		p := sw.Profile(g)
		return bitsEqual(p.Betweenness, g.BetweennessCentrality()) &&
			bitsEqual(p.Closeness, g.ClosenessCentrality()) &&
			bitsEqual(p.Degree, g.DegreeCentrality()) &&
			bitsEqual(p.PathLengths, g.ShortestPathLengths())
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

// TestSweepScratchReuse: profiling a large graph then a small one must
// not leak stale scratch into the second result, and re-profiling the
// same graph on a warm sweeper must reproduce the cold result.
func TestSweepScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	big := RandomFlow(rng, 60, 0.2)
	small := RandomFlow(rng, 9, 0.3)
	sw := NewSweeper()
	sw.Profile(big)
	profileMatchesNaive(t, small, sw)
	cold := NewSweeper().Profile(big)
	warm := sw.Profile(big)
	if !bitsEqual(cold.Betweenness, warm.Betweenness) ||
		!bitsEqual(cold.Closeness, warm.Closeness) ||
		!bitsEqual(cold.Degree, warm.Degree) ||
		!bitsEqual(cold.PathLengths, warm.PathLengths) {
		t.Error("warm sweeper diverged from cold sweeper on the same graph")
	}
}

func TestGraphProfileConvenience(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomDirected(rng, 15, 0.2)
	p := g.Profile()
	if !bitsEqual(p.Betweenness, g.BetweennessCentrality()) {
		t.Error("Graph.Profile betweenness != naive")
	}
}
