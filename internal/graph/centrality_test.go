package graph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDegreeCentralityPath(t *testing.T) {
	g := path(t, 3) // 0->1->2
	got := g.DegreeCentrality()
	want := []float64{0.5, 1, 0.5} // (deg)/(n-1) with n-1 = 2
	for i := range want {
		if !almostEqual(got[i], want[i]) {
			t.Errorf("degree[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDegreeCentralityTiny(t *testing.T) {
	if c := NewBuilder(1).Build().DegreeCentrality(); c[0] != 0 {
		t.Errorf("single node degree centrality = %v, want 0", c[0])
	}
}

func TestClosenessCentralityPath(t *testing.T) {
	g := path(t, 3) // 0->1->2, incoming distances
	got := g.ClosenessCentrality()
	// Node 0: nothing reaches it -> 0.
	// Node 1: reached by {0} at distance 1 -> (1/1)*(1/2) = 0.5.
	// Node 2: reached by {0,1}, distances 2+1 -> (2/3)*(2/2) = 2/3.
	want := []float64{0, 0.5, 2.0 / 3.0}
	for i := range want {
		if !almostEqual(got[i], want[i]) {
			t.Errorf("closeness[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestClosenessCentralityCycle(t *testing.T) {
	n := 5
	g := cycle(t, n)
	got := g.ClosenessCentrality()
	// Every node is reached by all others with distance sum 1+2+3+4=10.
	want := float64(n-1) / 10.0
	for i := range got {
		if !almostEqual(got[i], want) {
			t.Errorf("closeness[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestBetweennessCentralityPath(t *testing.T) {
	g := path(t, 3)
	got := g.BetweennessCentrality()
	// Only node 1 lies on the single shortest path 0->2; normalization
	// is 1/((n-1)(n-2)) = 1/2.
	want := []float64{0, 0.5, 0}
	for i := range want {
		if !almostEqual(got[i], want[i]) {
			t.Errorf("betweenness[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBetweennessCentralityStar(t *testing.T) {
	// Star with center 0: 0->i and i->0 for i=1..4. Every pair (i,j)
	// routes through the center.
	n := 5
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		mustEdge(t, b, 0, i)
		mustEdge(t, b, i, 0)
	}
	g := b.Build()
	got := g.BetweennessCentrality()
	// Center: (n-1)(n-2) ordered pairs pass through -> normalized 1.
	if !almostEqual(got[0], 1) {
		t.Errorf("center betweenness = %v, want 1", got[0])
	}
	for i := 1; i < n; i++ {
		if !almostEqual(got[i], 0) {
			t.Errorf("leaf %d betweenness = %v, want 0", i, got[i])
		}
	}
}

func TestBetweennessTinyGraphs(t *testing.T) {
	for n := 0; n < 3; n++ {
		g := path(t, n)
		for i, bc := range g.BetweennessCentrality() {
			if bc != 0 {
				t.Errorf("n=%d betweenness[%d] = %v, want 0", n, i, bc)
			}
		}
	}
}

// naiveBetweenness recomputes betweenness by explicit all-pairs
// shortest-path enumeration (BFS + path counting), as an independent
// reference for Brandes.
func naiveBetweenness(g *Graph) []float64 {
	n := g.N()
	bc := make([]float64, n)
	for s := 0; s < n; s++ {
		// BFS counting shortest paths from s.
		dist := g.BFSFrom(s)
		sigma := make([]float64, n)
		sigma[s] = 1
		order := make([]int, 0, n)
		for d := 0; ; d++ {
			found := false
			for v := 0; v < n; v++ {
				if dist[v] == d {
					order = append(order, v)
					found = true
				}
			}
			if !found {
				break
			}
		}
		for _, u := range order {
			for _, v := range g.Out(u) {
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
				}
			}
		}
		for tgt := 0; tgt < n; tgt++ {
			if tgt == s || dist[tgt] < 0 {
				continue
			}
			// Count, for every intermediate w, the fraction of s->tgt
			// shortest paths through w.
			sigmaTo := make([]float64, n)
			sigmaTo[tgt] = 1
			for i := len(order) - 1; i >= 0; i-- {
				u := order[i]
				for _, v := range g.Out(u) {
					if dist[v] == dist[u]+1 {
						sigmaTo[u] += sigmaTo[v]
					}
				}
			}
			for w := 0; w < n; w++ {
				if w == s || w == tgt || dist[w] < 0 {
					continue
				}
				bc[w] += sigma[w] * sigmaTo[w] / sigma[tgt]
			}
		}
	}
	norm := 1 / (float64(n-1) * float64(n-2))
	for i := range bc {
		bc[i] *= norm
	}
	return bc
}

func TestBetweennessMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(12)
		g := RandomDirected(rng, n, 0.25)
		got := g.BetweennessCentrality()
		want := naiveBetweenness(g)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d node %d: Brandes %v, naive %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestShortestPathLengthsPath(t *testing.T) {
	g := path(t, 4)
	got := g.ShortestPathLengths()
	sort.Float64s(got)
	want := []float64{1, 1, 1, 2, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %d lengths, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("lengths[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCentralityPropertiesRandom(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomFlow(rng, 3+rng.Intn(30), 0.1)
		for _, c := range [][]float64{
			g.BetweennessCentrality(),
			g.ClosenessCentrality(),
			g.DegreeCentrality(),
		} {
			for _, x := range c {
				if x < -tol || math.IsNaN(x) || math.IsInf(x, 0) {
					return false
				}
			}
		}
		for _, l := range g.ShortestPathLengths() {
			if l < 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

// TestCentralityRelabelInvariance: the sorted centrality multiset must be
// invariant under node relabelling — the property that makes the 23
// features well-defined graph invariants.
func TestCentralityRelabelInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		g := RandomFlow(rng, 5+rng.Intn(20), 0.1)
		perm := rng.Perm(g.N())
		h, err := g.Relabel(perm)
		if err != nil {
			t.Fatalf("Relabel: %v", err)
		}
		checks := []struct {
			name string
			f    func(*Graph) []float64
		}{
			{"betweenness", (*Graph).BetweennessCentrality},
			{"closeness", (*Graph).ClosenessCentrality},
			{"degree", (*Graph).DegreeCentrality},
		}
		for _, c := range checks {
			a, b := c.f(g), c.f(h)
			sort.Float64s(a)
			sort.Float64s(b)
			for i := range a {
				if math.Abs(a[i]-b[i]) > 1e-9 {
					t.Fatalf("%s not relabel-invariant at rank %d: %v vs %v", c.name, i, a[i], b[i])
				}
			}
		}
	}
}
