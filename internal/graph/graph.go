// Package graph provides the directed-graph substrate used to represent
// control flow graphs (CFGs) and to compute the graph-algorithmic features
// the paper's detector is trained on: degree, closeness and betweenness
// centralities, shortest-path statistics, and density.
//
// Graphs are immutable once built. Nodes are dense integers in [0, N);
// construction goes through a Builder so that adjacency is validated and
// deduplicated exactly once. All algorithms are deterministic.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Common construction errors.
var (
	// ErrNodeRange indicates an edge endpoint outside [0, N).
	ErrNodeRange = errors.New("graph: node out of range")
	// ErrSelfLoop indicates a rejected self loop.
	ErrSelfLoop = errors.New("graph: self loop not allowed")
)

// Graph is an immutable simple directed graph. The zero value is an empty
// graph with no nodes.
type Graph struct {
	out  [][]int32
	in   [][]int32
	m    int
	name string
}

// Builder accumulates edges for a Graph. The zero value is unusable; create
// one with NewBuilder.
type Builder struct {
	n     int
	edges map[int64]struct{}
	order []int64
	loops bool
}

// NewBuilder returns a Builder for a graph with n nodes (n >= 0).
func NewBuilder(n int) *Builder {
	return &Builder{
		n:     n,
		edges: make(map[int64]struct{}),
	}
}

// AllowSelfLoops makes the builder accept u->u edges. CFGs contain self
// loops for single-block loops, so the disassembler enables this.
func (b *Builder) AllowSelfLoops() *Builder {
	b.loops = true
	return b
}

// AddEdge records the directed edge u->v. Duplicate edges are ignored.
// It returns an error if either endpoint is out of range, or if u == v and
// self loops are disallowed.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrNodeRange, u, v, b.n)
	}
	if u == v && !b.loops {
		return fmt.Errorf("%w: node %d", ErrSelfLoop, u)
	}
	key := int64(u)<<32 | int64(int32(v))&0xffffffff
	if _, dup := b.edges[key]; dup {
		return nil
	}
	b.edges[key] = struct{}{}
	b.order = append(b.order, key)
	return nil
}

// Build finalizes the graph. The Builder may not be reused afterwards.
func (b *Builder) Build() *Graph {
	g := &Graph{
		out: make([][]int32, b.n),
		in:  make([][]int32, b.n),
		m:   len(b.order),
	}
	// Sort for determinism independent of insertion order.
	sort.Slice(b.order, func(i, j int) bool { return b.order[i] < b.order[j] })
	for _, key := range b.order {
		u := int32(key >> 32)
		v := int32(key)
		g.out[u] = append(g.out[u], v)
		g.in[v] = append(g.in[v], u)
	}
	b.edges = nil
	b.order = nil
	return g
}

// N returns the number of nodes (the order of the graph).
func (g *Graph) N() int { return len(g.out) }

// M returns the number of edges (the size of the graph).
func (g *Graph) M() int { return g.m }

// Out returns the out-neighbors of u. The returned slice must not be
// modified.
func (g *Graph) Out(u int) []int32 { return g.out[u] }

// In returns the in-neighbors of u. The returned slice must not be modified.
func (g *Graph) In(u int) []int32 { return g.in[u] }

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u int) int { return len(g.out[u]) }

// InDegree returns the in-degree of u.
func (g *Graph) InDegree(u int) int { return len(g.in[u]) }

// HasEdge reports whether the edge u->v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.N() {
		return false
	}
	for _, w := range g.out[u] {
		if int(w) == v {
			return true
		}
	}
	return false
}

// Edges returns all edges in deterministic (sorted) order.
func (g *Graph) Edges() [][2]int {
	es := make([][2]int, 0, g.m)
	for u := range g.out {
		for _, v := range g.out[u] {
			es = append(es, [2]int{u, int(v)})
		}
	}
	return es
}

// Density returns |E| / (|V| * (|V|-1)) for a simple directed graph, the
// definition used in the paper (§II-B). Graphs with fewer than two nodes
// have density 0.
func (g *Graph) Density() float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	return float64(g.m) / float64(n*(n-1))
}

// Reverse returns a new graph with every edge direction flipped.
func (g *Graph) Reverse() *Graph {
	r := &Graph{
		out: make([][]int32, g.N()),
		in:  make([][]int32, g.N()),
		m:   g.m,
	}
	for u := range g.out {
		r.out[u] = append([]int32(nil), g.in[u]...)
		r.in[u] = append([]int32(nil), g.out[u]...)
	}
	return r
}

// Relabel returns a new graph where node i of the result corresponds to node
// perm[i] of g. perm must be a permutation of [0, N). Used by tests to check
// that feature extraction is invariant to node order.
func (g *Graph) Relabel(perm []int) (*Graph, error) {
	n := g.N()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d != n %d", len(perm), n)
	}
	inv := make([]int, n)
	seen := make([]bool, n)
	for i, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("graph: invalid permutation entry %d", p)
		}
		seen[p] = true
		inv[p] = i
	}
	b := NewBuilder(n).AllowSelfLoops()
	for u := range g.out {
		for _, v := range g.out[u] {
			if err := b.AddEdge(inv[u], inv[int(v)]); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}

// ReachableFrom returns the set of nodes reachable from src (including src)
// following out-edges.
func (g *Graph) ReachableFrom(src int) []bool {
	seen := make([]bool, g.N())
	if src < 0 || src >= g.N() {
		return seen
	}
	stack := []int32{int32(src)}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.out[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// BFSFrom returns the vector of unweighted shortest-path distances from src
// following out-edges; unreachable nodes get -1.
func (g *Graph) BFSFrom(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.N() {
		return dist
	}
	dist[src] = 0
	queue := make([]int32, 0, g.N())
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.out[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Equal reports whether g and h have identical node and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for u := range g.out {
		if len(g.out[u]) != len(h.out[u]) {
			return false
		}
		for i, v := range g.out[u] {
			if h.out[u][i] != v {
				return false
			}
		}
	}
	return true
}
