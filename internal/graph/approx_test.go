package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestBetweennessSampleFullIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomFlow(rng, 25, 0.08)
	exact := g.BetweennessCentrality()
	sampled := g.BetweennessSample(rand.New(rand.NewSource(1)), g.N())
	for i := range exact {
		if math.Abs(exact[i]-sampled[i]) > 1e-12 {
			t.Fatalf("k=n sample differs from exact at %d: %v vs %v", i, sampled[i], exact[i])
		}
	}
}

func TestBetweennessSampleApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := RandomFlow(rng, 120, 0.02)
	exact := g.BetweennessCentrality()
	approx := g.BetweennessSample(rand.New(rand.NewSource(2)), 60)
	// The estimate is unbiased; with half the pivots the top-ranked
	// node should agree or be close. Check rank correlation loosely:
	// the exact-top node must be within the approx top 10%.
	top := 0
	for i, v := range exact {
		if v > exact[top] {
			top = i
		}
	}
	better := 0
	for _, v := range approx {
		if v > approx[top] {
			better++
		}
	}
	if better > g.N()/10 {
		t.Errorf("exact top node ranked %d by the approximation", better)
	}
	// Mean absolute error bounded well below the value scale.
	var mae, scale float64
	for i := range exact {
		mae += math.Abs(exact[i] - approx[i])
		scale += exact[i]
	}
	if scale > 0 && mae/scale > 0.5 {
		t.Errorf("relative MAE %v too large", mae/scale)
	}
}

func TestBetweennessSampleTinyGraph(t *testing.T) {
	g := path(t, 2)
	if got := g.BetweennessSample(rand.New(rand.NewSource(1)), 1); len(got) != 2 {
		t.Errorf("tiny graph sample = %v", got)
	}
}
