package graph

import (
	"strings"
	"testing"
)

func TestDOTBasic(t *testing.T) {
	g := path(t, 2)
	dot := g.DOT("demo", nil)
	for _, want := range []string{`digraph "demo"`, "n0", "n1", "n0 -> n1;"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestDOTLabelsAndEscaping(t *testing.T) {
	g := path(t, 2)
	dot := g.DOT("", []string{`say "hi"\l`, ""})
	if !strings.Contains(dot, `say \"hi\"\l`) {
		t.Errorf("DOT did not escape quotes while keeping DOT escapes:\n%s", dot)
	}
	if !strings.Contains(dot, `digraph "G"`) {
		t.Errorf("empty name should default to G:\n%s", dot)
	}
	// Missing label falls back to the node index.
	if !strings.Contains(dot, `n1 [label="b1"]`) {
		t.Errorf("missing label fallback wrong:\n%s", dot)
	}
}
