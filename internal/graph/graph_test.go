package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEdge(t *testing.T, b *Builder, u, v int) {
	t.Helper()
	if err := b.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

// path returns 0->1->...->n-1.
func path(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		mustEdge(t, b, i, i+1)
	}
	return b.Build()
}

// cycle returns 0->1->...->n-1->0.
func cycle(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		mustEdge(t, b, i, (i+1)%n)
	}
	return b.Build()
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	tests := []struct{ u, v int }{
		{-1, 0}, {0, -1}, {3, 0}, {0, 3}, {5, 5},
	}
	for _, tc := range tests {
		b := NewBuilder(3)
		if err := b.AddEdge(tc.u, tc.v); !errors.Is(err, ErrNodeRange) {
			t.Errorf("AddEdge(%d,%d) = %v, want ErrNodeRange", tc.u, tc.v, err)
		}
	}
}

func TestBuilderSelfLoops(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("self loop without AllowSelfLoops = %v, want ErrSelfLoop", err)
	}
	b = NewBuilder(2).AllowSelfLoops()
	mustEdge(t, b, 1, 1)
	g := b.Build()
	if !g.HasEdge(1, 1) {
		t.Error("self loop missing after AllowSelfLoops")
	}
	if g.M() != 1 {
		t.Errorf("M() = %d, want 1", g.M())
	}
}

func TestBuilderDeduplicatesEdges(t *testing.T) {
	b := NewBuilder(2)
	mustEdge(t, b, 0, 1)
	mustEdge(t, b, 0, 1)
	g := b.Build()
	if g.M() != 1 {
		t.Errorf("M() = %d, want 1 after duplicate AddEdge", g.M())
	}
}

func TestBuildDeterministicOrder(t *testing.T) {
	b1 := NewBuilder(3)
	mustEdge(t, b1, 0, 2)
	mustEdge(t, b1, 0, 1)
	mustEdge(t, b1, 2, 1)
	b2 := NewBuilder(3)
	mustEdge(t, b2, 2, 1)
	mustEdge(t, b2, 0, 1)
	mustEdge(t, b2, 0, 2)
	if !b1.Build().Equal(b2.Build()) {
		t.Error("graphs built from permuted edge insertions differ")
	}
}

func TestDegreesAndEdges(t *testing.T) {
	b := NewBuilder(3)
	mustEdge(t, b, 0, 1)
	mustEdge(t, b, 0, 2)
	mustEdge(t, b, 1, 2)
	g := b.Build()
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", got)
	}
	if got := g.InDegree(2); got != 2 {
		t.Errorf("InDegree(2) = %d, want 2", got)
	}
	if got := len(g.Edges()); got != 3 {
		t.Errorf("len(Edges()) = %d, want 3", got)
	}
	if g.HasEdge(2, 0) {
		t.Error("HasEdge(2,0) = true, want false")
	}
	if g.HasEdge(-1, 0) {
		t.Error("HasEdge(-1,0) = true for out-of-range node")
	}
}

func TestDensity(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want float64
	}{
		{"empty", NewBuilder(0).Build(), 0},
		{"single", NewBuilder(1).Build(), 0},
		{"path3", path(t, 3), 2.0 / 6.0},
		{"cycle4", cycle(t, 4), 4.0 / 12.0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.Density(); got != tc.want {
				t.Errorf("Density() = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestDensityCompleteGraphIsOne(t *testing.T) {
	n := 5
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				mustEdge(t, b, u, v)
			}
		}
	}
	if got := b.Build().Density(); got != 1 {
		t.Errorf("complete graph density = %v, want 1", got)
	}
}

func TestReverse(t *testing.T) {
	g := path(t, 4)
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(3, 2) {
		t.Error("Reverse missing flipped edges")
	}
	if r.HasEdge(0, 1) {
		t.Error("Reverse kept a forward edge")
	}
	if r.M() != g.M() || r.N() != g.N() {
		t.Errorf("Reverse changed size: %d/%d vs %d/%d", r.N(), r.M(), g.N(), g.M())
	}
	if !r.Reverse().Equal(g) {
		t.Error("double Reverse is not identity")
	}
}

func TestBFSFrom(t *testing.T) {
	g := path(t, 4)
	dist := g.BFSFrom(0)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
	dist = g.BFSFrom(3)
	for i := 0; i < 3; i++ {
		if dist[i] != -1 {
			t.Errorf("dist[%d] from sink = %d, want -1", i, dist[i])
		}
	}
	if d := g.BFSFrom(-1); d[0] != -1 {
		t.Error("BFSFrom out-of-range source should mark all unreachable")
	}
}

func TestReachableFrom(t *testing.T) {
	b := NewBuilder(4)
	mustEdge(t, b, 0, 1)
	mustEdge(t, b, 2, 3)
	g := b.Build()
	seen := g.ReachableFrom(0)
	want := []bool{true, true, false, false}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("ReachableFrom(0)[%d] = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestRelabel(t *testing.T) {
	g := path(t, 3)
	h, err := g.Relabel([]int{2, 1, 0})
	if err != nil {
		t.Fatalf("Relabel: %v", err)
	}
	// Node i of h corresponds to node perm[i] of g: h's node 0 is g's
	// node 2 (the sink).
	if !h.HasEdge(2, 1) || !h.HasEdge(1, 0) {
		t.Errorf("relabelled edges wrong: %v", h.Edges())
	}
	if _, err := g.Relabel([]int{0, 0, 1}); err == nil {
		t.Error("Relabel accepted a non-permutation")
	}
	if _, err := g.Relabel([]int{0, 1}); err == nil {
		t.Error("Relabel accepted wrong-length permutation")
	}
}

func TestEqual(t *testing.T) {
	g := path(t, 3)
	if !g.Equal(path(t, 3)) {
		t.Error("identical graphs reported unequal")
	}
	if g.Equal(path(t, 4)) {
		t.Error("different-order graphs reported equal")
	}
	if g.Equal(cycle(t, 3)) {
		t.Error("different-edge graphs reported equal")
	}
}

func TestRandomDirectedProperties(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%40) + 2
		p := float64(pRaw%100) / 100
		g := RandomDirected(rand.New(rand.NewSource(seed)), n, p)
		d := g.Density()
		if d < 0 || d > 1 {
			return false
		}
		for u := 0; u < n; u++ {
			if g.HasEdge(u, u) {
				return false // no self loops
			}
		}
		return g.N() == n
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestRandomFlowConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		n := 2 + rng.Intn(60)
		g := RandomFlow(rng, n, 0.05)
		seen := g.ReachableFrom(0)
		for v, ok := range seen {
			if !ok {
				t.Fatalf("RandomFlow node %d unreachable from entry (n=%d)", v, n)
			}
		}
	}
}

func TestRandomFlowEmpty(t *testing.T) {
	g := RandomFlow(rand.New(rand.NewSource(1)), 0, 0.5)
	if g.N() != 0 {
		t.Errorf("N() = %d, want 0", g.N())
	}
}
