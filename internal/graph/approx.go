package graph

import (
	"math/rand"
)

// BetweennessSample estimates betweenness centrality from k sampled
// source pivots (Brandes–Pich style): exact Brandes accumulation from a
// uniform sample of sources, scaled by n/k. For k >= n it falls back to
// the exact algorithm. Useful when feature extraction must scale past
// the corpus's largest CFGs; the trade-off is quantified by
// BenchmarkAblation_Betweenness.
func (g *Graph) BetweennessSample(rng *rand.Rand, k int) []float64 {
	n := g.N()
	if k >= n || n < 3 {
		return g.BetweennessCentrality()
	}
	bc := make([]float64, n)
	var (
		dist  = make([]int, n)
		sigma = make([]float64, n)
		delta = make([]float64, n)
		preds = make([][]int32, n)
		order = make([]int32, 0, n)
	)
	for _, s := range rng.Perm(n)[:k] {
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		order = order[:0]
		dist[s] = 0
		sigma[s] = 1
		order = append(order, int32(s))
		for head := 0; head < len(order); head++ {
			u := order[head]
			for _, v := range g.out[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					order = append(order, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], u)
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, u := range preds[w] {
				delta[u] += sigma[u] / sigma[w] * (1 + delta[w])
			}
			if int(w) != s {
				bc[w] += delta[w]
			}
		}
	}
	scale := float64(n) / float64(k) / (float64(n-1) * float64(n-2))
	for i := range bc {
		bc[i] *= scale
	}
	return bc
}
