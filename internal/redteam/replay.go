package redteam

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"advmal/internal/serve"
)

// ReplayConfig parameterizes Replay.
type ReplayConfig struct {
	// Target is the base URL of a live serve or gateway instance, e.g.
	// "http://127.0.0.1:8377". Required.
	Target string
	// Workers is the number of concurrent senders. Default 4.
	Workers int
	// RPS paces the campaign across all workers; 0 replays as fast as
	// the target answers. Pacing is what lets a mid-campaign retrain
	// swap land between items instead of after all of them.
	RPS float64
	// Timeout bounds each request. Default 10s.
	Timeout time.Duration
	// Similar also queries POST /v1/similar for every adversarial item,
	// scoring the ANN-triage catch rate alongside the classifier
	// verdicts. A target without an index (501) marks triage
	// unavailable rather than failing the campaign.
	Similar bool
	// Client overrides the HTTP client (tests); nil builds one from
	// Timeout.
	Client *http.Client
}

// Outcome is one item's observed response, as fed to the Scorer.
type Outcome struct {
	Item *Item
	// Status is the HTTP status (0 on transport error).
	Status int
	// Err is the transport error, if any.
	Err error
	// Verdict is the parsed response on status 200.
	Verdict serve.Verdict
	// Latency is the request round-trip time.
	Latency time.Duration
	// TriageQueried/TriageFlagged/TriageUnavailable report the optional
	// /v1/similar side query.
	TriageQueried     bool
	TriageFlagged     bool
	TriageUnavailable bool
}

// Replay streams the campaign's items against the live target and
// scores every response online. It returns the scorer's report; the
// error is non-nil only for setup failures or context cancellation —
// per-item transport errors are scored, not fatal, so a flaky target
// yields a report that says so.
func Replay(ctx context.Context, c *Campaign, cfg ReplayConfig, s *Scorer) (*Report, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("redteam: ReplayConfig.Target is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	if s == nil {
		s = NewScorer()
	}

	// Pacing: a shared ticker-fed channel. Workers pull a token per
	// item, so the aggregate rate is RPS regardless of worker count.
	var pace <-chan time.Time
	if cfg.RPS > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / cfg.RPS))
		defer t.Stop()
		pace = t.C
	}

	jobs := make(chan *Item)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range jobs {
				if pace != nil {
					select {
					case <-pace:
					case <-ctx.Done():
						return
					}
				}
				s.Observe(send(ctx, client, cfg, it))
			}
		}()
	}

	start := time.Now()
feed:
	for i := range c.Items {
		select {
		case jobs <- &c.Items[i]:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return s.Report(c, cfg.Target, time.Since(start)), fmt.Errorf("redteam: replay: %w", err)
	}
	return s.Report(c, cfg.Target, time.Since(start)), nil
}

// send replays one item: the classify request, plus the optional
// /v1/similar triage query for adversarial items.
func send(ctx context.Context, client *http.Client, cfg ReplayConfig, it *Item) Outcome {
	out := Outcome{Item: it}
	var path string
	var body []byte
	var err error
	switch it.Kind {
	case KindVector:
		path = "/v1/classify/vector"
		body, err = json.Marshal(struct {
			Name   string    `json:"name"`
			Vector []float64 `json:"vector"`
		}{Name: itemName(it), Vector: it.Vector})
	default:
		path = "/v1/classify"
		body, err = json.Marshal(struct {
			Name    string `json:"name"`
			Program string `json:"program"`
		}{Name: itemName(it), Program: it.Program})
	}
	if err != nil {
		out.Err = err
		return out
	}
	t0 := time.Now()
	status, respBody, err := post(ctx, client, cfg.Target+path, body)
	out.Latency = time.Since(t0)
	out.Status = status
	if err != nil {
		out.Err = err
		return out
	}
	if status == http.StatusOK {
		if err := json.Unmarshal(respBody, &out.Verdict); err != nil {
			out.Err = fmt.Errorf("decoding verdict: %w", err)
			return out
		}
	}

	if cfg.Similar && it.Attack != CleanAttack {
		// /v1/similar accepts the same JSON schema as both classify
		// endpoints (program or vector form), so the request body is
		// reusable as-is.
		st, resp, err := post(ctx, client, cfg.Target+"/v1/similar", body)
		switch {
		case err != nil:
			// Triage side-query transport error: recorded as not queried.
		case st == http.StatusNotImplemented:
			out.TriageUnavailable = true
		case st == http.StatusOK:
			var sim serve.SimilarResponse
			if json.Unmarshal(resp, &sim) == nil {
				out.TriageQueried = true
				out.TriageFlagged = sim.Triage.Flagged
			}
		}
	}
	return out
}

func post(ctx context.Context, client *http.Client, url string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, data, nil
}

func itemName(it *Item) string {
	return fmt.Sprintf("rt-%d-%s-%s", it.ID, it.Attack, it.Family)
}
