package redteam

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"advmal/internal/report"
)

// histBins is the detection-score histogram resolution: P(malicious)
// bucketed into [0,0.1), [0.1,0.2), ... [0.9,1.0].
const histBins = 10

type cellKey struct{ attack, family, budget string }

type cellAgg struct {
	sent, errors int
	evaded       int
	familyN      int
	familyMiss   int
	scoreSum     float64
	hist         [histBins]int
}

type verKey struct {
	version uint64
	attack  string
}

type verAgg struct{ sent, evaded int }

// Scorer aggregates replay outcomes online. It is safe for concurrent
// Observe calls from every replay worker; Report snapshots the state.
type Scorer struct {
	mu       sync.Mutex
	cells    map[cellKey]*cellAgg
	versions map[verKey]*verAgg

	sent, transport, httpErr int
	statuses                 map[int]int
	firstError               string
	latSum                   time.Duration

	triageQueried, triageFlagged int
	triageUnavailable            bool
}

// NewScorer returns an empty scorer.
func NewScorer() *Scorer {
	return &Scorer{
		cells:    make(map[cellKey]*cellAgg),
		versions: make(map[verKey]*verAgg),
		statuses: make(map[int]int),
	}
}

// Observe folds one replay outcome into the aggregates.
func (s *Scorer) Observe(o Outcome) {
	it := o.Item
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sent++
	s.latSum += o.Latency
	s.statuses[o.Status]++
	key := cellKey{attack: it.Attack, family: it.Family, budget: it.Budget}
	cell := s.cells[key]
	if cell == nil {
		cell = &cellAgg{}
		s.cells[key] = cell
	}
	cell.sent++

	switch {
	case o.Err != nil:
		s.transport++
		cell.errors++
		if s.firstError == "" {
			s.firstError = fmt.Sprintf("%s: %v", itemName(it), o.Err)
		}
		return
	case o.Status != 200:
		s.httpErr++
		cell.errors++
		if s.firstError == "" {
			s.firstError = fmt.Sprintf("%s: HTTP %d", itemName(it), o.Status)
		}
		return
	}

	// Detection score: P(malicious) = 1 - P(benign). Identical on both
	// head widths because class 0 is benign in every class space.
	score := 0.0
	if len(o.Verdict.Probs) > 0 {
		score = 1 - o.Verdict.Probs[0]
	}
	cell.scoreSum += score
	bin := int(score * histBins)
	if bin >= histBins {
		bin = histBins - 1
	}
	if bin < 0 {
		bin = 0
	}
	cell.hist[bin]++

	evaded := it.Malicious && !o.Verdict.Malicious
	if evaded {
		cell.evaded++
	}
	if o.Verdict.Family != "" {
		cell.familyN++
		if o.Verdict.Family != it.Family {
			cell.familyMiss++
		}
	}

	// Model-version attribution: every verdict is stamped with the
	// snapshot that produced it, so a mid-campaign hot swap partitions
	// the same attack's items into before/after populations.
	if it.Malicious && it.Attack != CleanAttack {
		vk := verKey{version: o.Verdict.ModelVersion, attack: it.Attack}
		va := s.versions[vk]
		if va == nil {
			va = &verAgg{}
			s.versions[vk] = va
		}
		va.sent++
		if evaded {
			va.evaded++
		}
	}

	if o.TriageUnavailable {
		s.triageUnavailable = true
	}
	if o.TriageQueried {
		s.triageQueried++
		if o.TriageFlagged {
			s.triageFlagged++
		}
	}
}

// CellReport is one (attack, family, budget) cell of the campaign.
type CellReport struct {
	Attack      string        `json:"attack"`
	Family      string        `json:"family"`
	Budget      string        `json:"budget"`
	Sent        int           `json:"sent"`
	Errors      int           `json:"errors"`
	Evaded      int           `json:"evaded"`
	EvasionRate float64       `json:"evasion_rate"`
	MeanScore   float64       `json:"mean_score"`
	Hist        [histBins]int `json:"score_hist"`
	FamilyN     int           `json:"family_n,omitempty"`
	FamilyMiss  int           `json:"family_miss,omitempty"`
}

// VersionReport is one (model version, attack) population: the same
// attack's evasion rate under one serving snapshot.
type VersionReport struct {
	Version     uint64  `json:"version"`
	Attack      string  `json:"attack"`
	Sent        int     `json:"sent"`
	Evaded      int     `json:"evaded"`
	EvasionRate float64 `json:"evasion_rate"`
}

// AttackDelta is the before/after robustness delta for one attack
// across a mid-campaign swap: first-version evasion minus last-version
// evasion (positive = the swap hardened the model against this attack).
type AttackDelta struct {
	Attack    string  `json:"attack"`
	OldVer    uint64  `json:"old_version"`
	NewVer    uint64  `json:"new_version"`
	OldRate   float64 `json:"old_rate"`
	NewRate   float64 `json:"new_rate"`
	Delta     float64 `json:"delta"`
	OldSent   int     `json:"old_sent"`
	NewSent   int     `json:"new_sent"`
	Improved  bool    `json:"improved"`
	Regressed bool    `json:"regressed"`
}

// TriageReport is the ANN catch-rate view: among adversarial items also
// queried against /v1/similar, how many the triage layer flagged as
// off-manifold.
type TriageReport struct {
	Queried     int     `json:"queried"`
	Flagged     int     `json:"flagged"`
	CatchRate   float64 `json:"catch_rate"`
	Unavailable bool    `json:"unavailable"`
}

// Report is the campaign's online scorecard.
type Report struct {
	Target          string          `json:"target"`
	Items           int             `json:"items"`
	Sent            int             `json:"sent"`
	TransportErrors int             `json:"transport_errors"`
	HTTPErrors      int             `json:"http_errors"`
	FirstError      string          `json:"first_error,omitempty"`
	Statuses        map[int]int     `json:"statuses"`
	Duration        time.Duration   `json:"duration"`
	Throughput      float64         `json:"throughput_rps"`
	MeanLatency     time.Duration   `json:"mean_latency"`
	Cells           []CellReport    `json:"cells"`
	Versions        []VersionReport `json:"versions"`
	Deltas          []AttackDelta   `json:"deltas,omitempty"`
	Triage          TriageReport    `json:"triage"`
	// Axis labels, for rendering.
	AttackNames []string `json:"attacks"`
	FamilyNames []string `json:"families"`
	BudgetNames []string `json:"budgets"`
}

// Report snapshots the aggregates into a Report.
func (s *Scorer) Report(c *Campaign, target string, dur time.Duration) *Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &Report{
		Target:          target,
		Items:           len(c.Items),
		Sent:            s.sent,
		TransportErrors: s.transport,
		HTTPErrors:      s.httpErr,
		FirstError:      s.firstError,
		Statuses:        make(map[int]int, len(s.statuses)),
		Duration:        dur,
		AttackNames:     c.Attacks,
		FamilyNames:     c.Families,
		BudgetNames:     c.Budgets,
	}
	for k, v := range s.statuses {
		r.Statuses[k] = v
	}
	if dur > 0 {
		r.Throughput = float64(s.sent) / dur.Seconds()
	}
	if s.sent > 0 {
		r.MeanLatency = s.latSum / time.Duration(s.sent)
	}

	keys := make([]cellKey, 0, len(s.cells))
	for k := range s.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].attack != keys[j].attack {
			return keys[i].attack < keys[j].attack
		}
		if keys[i].family != keys[j].family {
			return keys[i].family < keys[j].family
		}
		return keys[i].budget < keys[j].budget
	})
	for _, k := range keys {
		cell := s.cells[k]
		cr := CellReport{
			Attack: k.attack, Family: k.family, Budget: k.budget,
			Sent: cell.sent, Errors: cell.errors, Evaded: cell.evaded,
			Hist: cell.hist, FamilyN: cell.familyN, FamilyMiss: cell.familyMiss,
		}
		if ok := cell.sent - cell.errors; ok > 0 {
			cr.EvasionRate = float64(cell.evaded) / float64(ok)
			cr.MeanScore = cell.scoreSum / float64(ok)
		}
		r.Cells = append(r.Cells, cr)
	}

	vkeys := make([]verKey, 0, len(s.versions))
	for k := range s.versions {
		vkeys = append(vkeys, k)
	}
	sort.Slice(vkeys, func(i, j int) bool {
		if vkeys[i].version != vkeys[j].version {
			return vkeys[i].version < vkeys[j].version
		}
		return vkeys[i].attack < vkeys[j].attack
	})
	for _, k := range vkeys {
		va := s.versions[k]
		vr := VersionReport{Version: k.version, Attack: k.attack, Sent: va.sent, Evaded: va.evaded}
		if va.sent > 0 {
			vr.EvasionRate = float64(va.evaded) / float64(va.sent)
		}
		r.Versions = append(r.Versions, vr)
	}
	r.Deltas = deltas(r.Versions)

	r.Triage = TriageReport{
		Queried:     s.triageQueried,
		Flagged:     s.triageFlagged,
		Unavailable: s.triageUnavailable,
	}
	if s.triageQueried > 0 {
		r.Triage.CatchRate = float64(s.triageFlagged) / float64(s.triageQueried)
	}
	return r
}

// deltas pairs each attack's earliest- and latest-version populations.
// With a single serving version (no swap mid-campaign) there is nothing
// to compare and the result is empty.
func deltas(versions []VersionReport) []AttackDelta {
	first := make(map[string]VersionReport)
	last := make(map[string]VersionReport)
	var order []string
	for _, v := range versions {
		if _, ok := first[v.Attack]; !ok {
			first[v.Attack] = v
			order = append(order, v.Attack)
		}
		last[v.Attack] = v
	}
	var out []AttackDelta
	for _, a := range order {
		f, l := first[a], last[a]
		if f.Version == l.Version {
			continue
		}
		d := AttackDelta{
			Attack: a,
			OldVer: f.Version, NewVer: l.Version,
			OldRate: f.EvasionRate, NewRate: l.EvasionRate,
			Delta:   f.EvasionRate - l.EvasionRate,
			OldSent: f.Sent, NewSent: l.Sent,
		}
		d.Improved = d.Delta > 0
		d.Regressed = d.Delta < 0
		out = append(out, d)
	}
	return out
}

// String renders the full online scorecard as ASCII tables.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "redteam: %s — %d/%d items answered in %v (%.1f req/s, mean latency %v)\n",
		r.Target, r.Sent-r.TransportErrors-r.HTTPErrors, r.Items,
		r.Duration.Round(time.Millisecond), r.Throughput, r.MeanLatency.Round(time.Microsecond))
	fmt.Fprintf(&sb, "errors: transport=%d http=%d", r.TransportErrors, r.HTTPErrors)
	if r.FirstError != "" {
		fmt.Fprintf(&sb, " (first: %s)", r.FirstError)
	}
	sb.WriteString("\n\n")

	// Attack × family evasion (aggregated over budgets).
	type af struct{ attack, family string }
	agg := make(map[af]*struct{ ok, evaded int })
	type ab struct{ attack, budget string }
	aggB := make(map[ab]*struct {
		ok, evaded int
		scoreSum   float64
	})
	for _, c := range r.Cells {
		k := af{c.Attack, c.Family}
		a := agg[k]
		if a == nil {
			a = &struct{ ok, evaded int }{}
			agg[k] = a
		}
		a.ok += c.Sent - c.Errors
		a.evaded += c.Evaded
		kb := ab{c.Attack, c.Budget}
		b := aggB[kb]
		if b == nil {
			b = &struct {
				ok, evaded int
				scoreSum   float64
			}{}
			aggB[kb] = b
		}
		okN := c.Sent - c.Errors
		b.ok += okN
		b.evaded += c.Evaded
		b.scoreSum += c.MeanScore * float64(okN)
	}
	tf := report.New("Online evasion rate (%) by attack × source family, all budgets",
		append([]string{"attack"}, r.FamilyNames...)...)
	for _, atk := range r.AttackNames {
		cells := make([]any, 0, len(r.FamilyNames)+1)
		cells = append(cells, atk)
		for _, fam := range r.FamilyNames {
			if a, ok := agg[af{atk, fam}]; ok && a.ok > 0 {
				cells = append(cells, report.Pct(float64(a.evaded)/float64(a.ok)))
			} else {
				cells = append(cells, "-")
			}
		}
		tf.Add(cells...)
	}
	sb.WriteString(tf.String())
	sb.WriteByte('\n')

	tb := report.New("Evasion rate (%) and mean detection score by attack × budget",
		append([]string{"attack"}, r.BudgetNames...)...)
	for _, atk := range r.AttackNames {
		cells := make([]any, 0, len(r.BudgetNames)+1)
		cells = append(cells, atk)
		for _, bud := range r.BudgetNames {
			if b, ok := aggB[ab{atk, bud}]; ok && b.ok > 0 {
				cells = append(cells, fmt.Sprintf("%s / %.2f",
					report.Pct(float64(b.evaded)/float64(b.ok)), b.scoreSum/float64(b.ok)))
			} else {
				cells = append(cells, "-")
			}
		}
		tb.Add(cells...)
	}
	sb.WriteString(tb.String())
	sb.WriteByte('\n')

	if len(r.Versions) > 0 {
		tv := report.New("Evasion rate by model version (hot-swap attribution)",
			"version", "attack", "sent", "evaded", "rate %")
		for _, v := range r.Versions {
			tv.Add(v.Version, v.Attack, v.Sent, v.Evaded, report.Pct(v.EvasionRate))
		}
		sb.WriteString(tv.String())
		sb.WriteByte('\n')
	}
	if len(r.Deltas) > 0 {
		td := report.New("Robustness delta across swap (old - new evasion)",
			"attack", "old ver", "new ver", "old %", "new %", "delta pp")
		for _, d := range r.Deltas {
			td.Add(d.Attack, d.OldVer, d.NewVer, report.Pct(d.OldRate), report.Pct(d.NewRate),
				fmt.Sprintf("%+.2f", d.Delta*100))
		}
		sb.WriteString(td.String())
		sb.WriteByte('\n')
	}

	switch {
	case r.Triage.Unavailable:
		sb.WriteString("triage: /v1/similar unavailable on target (no index loaded)\n")
	case r.Triage.Queried > 0:
		fmt.Fprintf(&sb, "triage: flagged %d/%d adversarial items (catch rate %.2f%%)\n",
			r.Triage.Flagged, r.Triage.Queried, r.Triage.CatchRate*100)
	}
	return sb.String()
}
