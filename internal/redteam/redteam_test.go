package redteam

import (
	"context"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"advmal/internal/core"
	"advmal/internal/features"
	"advmal/internal/nn"
	"advmal/internal/serve"
	"advmal/internal/synth"
)

// testModel builds an untrained surrogate with an identity scaler — the
// full generate/replay path without training cost.
func testModel(seed int64, classes int) *core.Model {
	min := make([]float64, features.NumFeatures)
	max := make([]float64, features.NumFeatures)
	for i := range max {
		max[i] = 1
	}
	return &core.Model{
		Version: 1,
		Classes: classes,
		Scaler:  &features.Scaler{Min: min, Max: max},
		Net:     nn.PaperCNNClasses(seed, classes),
	}
}

func smallConfig(mdl *core.Model) CampaignConfig {
	return CampaignConfig{
		Seed:    7,
		Model:   mdl,
		PerCell: 1,
		Eps:     []float64{0.3},
		Attacks: []string{"FGSM", "PGD"},
		Clean:   1,
	}
}

// TestGenerateDeterministic pins the campaign identity contract: same
// config, same items, bit for bit.
func TestGenerateDeterministic(t *testing.T) {
	mdl := testModel(0, 2)
	a, err := Generate(context.Background(), smallConfig(mdl))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(context.Background(), smallConfig(mdl))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two generations from the same config differ")
	}
}

// TestGenerateShape checks the campaign covers every requested axis:
// clean controls, both filtered attacks at the eps budget, GEA splices
// at all three size tiers, every malware family.
func TestGenerateShape(t *testing.T) {
	mdl := testModel(0, core.NumFamilyClasses)
	c, err := Generate(context.Background(), smallConfig(mdl))
	if err != nil {
		t.Fatal(err)
	}
	wantAttacks := map[string]bool{CleanAttack: true, "FGSM": true, "PGD": true, GEAAttack: true}
	for _, a := range c.Attacks {
		if !wantAttacks[a] {
			t.Fatalf("unexpected attack axis %q", a)
		}
		delete(wantAttacks, a)
	}
	if len(wantAttacks) != 0 {
		t.Fatalf("missing attack axes: %v", wantAttacks)
	}
	fams := map[string]bool{}
	for _, f := range c.Families {
		fams[f] = true
	}
	for _, fam := range synth.MalwareFamilies() {
		if !fams[fam.String()] {
			t.Fatalf("family %s missing from campaign", fam)
		}
	}
	budgets := map[string]bool{}
	for _, b := range c.Budgets {
		budgets[b] = true
	}
	for _, want := range []string{"-", "eps=0.30", "size=minimum", "size=median", "size=maximum"} {
		if !budgets[want] {
			t.Fatalf("budget %q missing (have %v)", want, c.Budgets)
		}
	}
	for _, it := range c.Items {
		switch it.Kind {
		case KindVector:
			if len(it.Vector) != features.NumFeatures {
				t.Fatalf("item %d: vector has %d features", it.ID, len(it.Vector))
			}
		case KindProgram:
			if it.Program == "" {
				t.Fatalf("item %d: empty program", it.ID)
			}
		}
		if it.Attack != CleanAttack && !it.Malicious {
			t.Fatalf("item %d: adversarial item with benign ground truth", it.ID)
		}
	}
}

func liveTarget(t *testing.T, h *core.Handle) *httptest.Server {
	t.Helper()
	s, err := serve.New(serve.Config{Handle: h, Window: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return ts
}

// TestReplayAgainstServe replays a small campaign against a live serve
// instance and checks the online scorecard end to end: every item
// answered, no transport or HTTP errors, triage marked unavailable on
// an index-less target, and the clean-control cells present.
func TestReplayAgainstServe(t *testing.T) {
	mdl := testModel(0, 2)
	c, err := Generate(context.Background(), smallConfig(mdl))
	if err != nil {
		t.Fatal(err)
	}
	ts := liveTarget(t, core.NewHandle(mdl))
	rep, err := Replay(context.Background(), c, ReplayConfig{
		Target: ts.URL, Workers: 3, Similar: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != len(c.Items) {
		t.Fatalf("sent %d of %d items", rep.Sent, len(c.Items))
	}
	if rep.TransportErrors != 0 || rep.HTTPErrors != 0 {
		t.Fatalf("errors against healthy target: transport=%d http=%d first=%q",
			rep.TransportErrors, rep.HTTPErrors, rep.FirstError)
	}
	if rep.Statuses[200] != rep.Sent {
		t.Fatalf("statuses: %v", rep.Statuses)
	}
	if !rep.Triage.Unavailable {
		t.Fatal("index-less target should report triage unavailable")
	}
	var cleanCells int
	for _, cell := range rep.Cells {
		if cell.Attack == CleanAttack {
			cleanCells++
		}
		if cell.Sent == 0 {
			t.Fatalf("empty cell %+v", cell)
		}
	}
	if cleanCells == 0 {
		t.Fatal("no clean-control cells in report")
	}
	if len(rep.Versions) == 0 {
		t.Fatal("no model-version attribution rows")
	}
	for _, v := range rep.Versions {
		if v.Version != mdl.Version {
			t.Fatalf("version attribution %d, want %d", v.Version, mdl.Version)
		}
	}
	if s := rep.String(); s == "" {
		t.Fatal("empty rendered report")
	}
}

// TestReplayDuringSwap replays concurrently with repeated hot swaps on
// the serving handle — the -race configuration for the whole wire path —
// and checks the scorecard attributes verdicts to more than one model
// version with per-attack deltas.
func TestReplayDuringSwap(t *testing.T) {
	mdl := testModel(0, 2)
	cfg := smallConfig(mdl)
	cfg.PerCell = 2
	c, err := Generate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := core.NewHandle(mdl)
	ts := liveTarget(t, h)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(1); !stop.Load(); i++ {
			if _, err := h.Swap(testModel(i, 2)); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	rep, err := Replay(ctx, c, ReplayConfig{Target: ts.URL, Workers: 4}, nil)
	stop.Store(true)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransportErrors != 0 || rep.HTTPErrors != 0 {
		t.Fatalf("errors during swap: transport=%d http=%d first=%q",
			rep.TransportErrors, rep.HTTPErrors, rep.FirstError)
	}
	versions := map[uint64]bool{}
	for _, v := range rep.Versions {
		versions[v.Version] = true
	}
	if len(versions) < 2 {
		t.Skip("swaps did not land mid-campaign on this run; race coverage still exercised")
	}
	if len(rep.Deltas) == 0 {
		t.Fatal("multiple versions attributed but no robustness deltas")
	}
	for _, d := range rep.Deltas {
		if d.OldVer >= d.NewVer {
			t.Fatalf("delta versions not ordered: %+v", d)
		}
	}
}

// TestScorerAccounting drives the scorer directly with fabricated
// outcomes and checks every aggregate: evasion, errors, score
// histogram, triage, and the before/after version delta.
func TestScorerAccounting(t *testing.T) {
	s := NewScorer()
	it := &Item{ID: 0, Attack: "FGSM", Family: "mirai", Budget: "eps=0.30", Malicious: true}
	// Version 1: evaded twice out of two.
	for i := 0; i < 2; i++ {
		s.Observe(Outcome{Item: it, Status: 200, Verdict: serve.Verdict{
			Malicious: false, Probs: []float64{0.85, 0.15}, ModelVersion: 1,
		}, TriageQueried: true, TriageFlagged: i == 0})
	}
	// Version 2: detected twice out of two.
	for i := 0; i < 2; i++ {
		s.Observe(Outcome{Item: it, Status: 200, Verdict: serve.Verdict{
			Malicious: true, Probs: []float64{0.2, 0.8}, ModelVersion: 2,
		}})
	}
	// One transport error and one HTTP error.
	s.Observe(Outcome{Item: it, Err: context.DeadlineExceeded})
	s.Observe(Outcome{Item: it, Status: 503})

	camp := &Campaign{
		Items:    make([]Item, 6),
		Attacks:  []string{"FGSM"},
		Families: []string{"mirai"},
		Budgets:  []string{"eps=0.30"},
	}
	rep := s.Report(camp, "http://test", time.Second)
	if rep.TransportErrors != 1 || rep.HTTPErrors != 1 {
		t.Fatalf("error counts: %+v", rep)
	}
	if rep.FirstError == "" {
		t.Fatal("first failing outcome not recorded")
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("cells: %+v", rep.Cells)
	}
	cell := rep.Cells[0]
	if cell.Sent != 6 || cell.Errors != 2 || cell.Evaded != 2 {
		t.Fatalf("cell accounting: %+v", cell)
	}
	if got, want := cell.EvasionRate, 0.5; got != want {
		t.Fatalf("evasion rate %v, want %v", got, want)
	}
	if cell.Hist[1] != 2 || cell.Hist[8] != 2 {
		t.Fatalf("score histogram: %v", cell.Hist)
	}
	if len(rep.Deltas) != 1 {
		t.Fatalf("deltas: %+v", rep.Deltas)
	}
	d := rep.Deltas[0]
	if d.OldRate != 1 || d.NewRate != 0 || d.Delta != 1 || !d.Improved {
		t.Fatalf("delta: %+v", d)
	}
	if rep.Triage.Queried != 2 || rep.Triage.Flagged != 1 || rep.Triage.CatchRate != 0.5 {
		t.Fatalf("triage: %+v", rep.Triage)
	}
}
