// Package redteam is the live attack-replay harness: it turns the
// paper's offline adversarial evaluation (Tables IV–VII) into a
// continuous online experiment against a running serve or gateway
// target.
//
// A campaign is generated offline from a deterministic seed: for every
// source malware family it crafts adversarial feature vectors with all
// eight feature-space attacks (at a configurable budget/epsilon sweep)
// against a surrogate model — the same gob the target serves, in the
// usual white-box setting — plus GEA graph splices rendered back to
// assembly, plus clean controls. Crafting happens in the scaled feature
// space the attacks are defined in; each vector is mapped back to raw
// feature space with the surrogate scaler's inverse so the live target
// re-scales it under its own snapshot, exactly like production traffic.
//
// Replay then streams the items as paced HTTP traffic (POST
// /v1/classify/vector for crafted vectors, POST /v1/classify for GEA
// splices, optionally POST /v1/similar for the ANN-triage view) and the
// scorer aggregates responses online: per-attack/per-family/per-budget
// evasion rates, detection-score distributions, triage catch rates, and
// per-model-version attribution — so a retrain hot swap mid-campaign
// shows up as a before/after robustness delta, not as noise.
package redteam

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"

	"advmal/internal/attacks"
	"advmal/internal/core"
	"advmal/internal/gea"
	"advmal/internal/nn"
	"advmal/internal/pool"
	"advmal/internal/synth"
)

// CleanAttack labels the unmodified control items every campaign
// carries: they pin the target's clean operating point so evasion rates
// have a baseline in the same run.
const CleanAttack = "clean"

// GEAAttack labels graph-splice items (the budget field carries the
// target-size tier: size=min, size=med, size=max).
const GEAAttack = "GEA"

// Kind selects the wire form of one campaign item.
type Kind int

const (
	// KindVector is a raw feature vector replayed via /v1/classify/vector.
	KindVector Kind = iota
	// KindProgram is assembly text replayed via /v1/classify.
	KindProgram
)

// Item is one replayable request with its ground truth.
type Item struct {
	ID     int    `json:"id"`
	Attack string `json:"attack"` // CleanAttack, an attack name, or GEAAttack
	Family string `json:"family"` // source family name ("benign" for benign controls)
	// Budget is the printable budget label for the cell: "eps=0.30" for
	// the feature-space attacks, "size=min|med|max" for GEA splices,
	// "-" for clean controls.
	Budget string `json:"budget"`
	Kind   Kind   `json:"kind"`
	// Vector is the RAW (unscaled) feature vector for KindVector items.
	Vector []float64 `json:"vector,omitempty"`
	// Program is the assembly text for KindProgram items.
	Program string `json:"program,omitempty"`
	// Malicious is the ground truth on the binary detection axis.
	Malicious bool `json:"malicious"`
}

// CampaignConfig parameterizes Generate. The zero value of every field
// has a sensible default; Model and Seed are the identity of a campaign
// — same config, same items, bit for bit.
type CampaignConfig struct {
	// Seed drives corpus generation and every sampling choice.
	Seed int64
	// Model is the surrogate the attacks are crafted against — load the
	// same gob the target serves for the white-box setting the paper
	// evaluates. Required.
	Model *core.Model
	// NumBenign / NumMal size the synthetic source corpus (defaults
	// 40 / 150 — enough for PerCell picks per family plus GEA targets).
	NumBenign int
	NumMal    int
	// PerCell is how many source samples each (attack, family, budget)
	// cell crafts. Default 3.
	PerCell int
	// Eps is the budget sweep. For FGSM/MIM/PGD/VAM it is the L∞
	// distortion bound; for the margin attacks (C&W, DeepFool,
	// ElasticNet, JSMA) it scales the iteration/feature budget
	// proportionally to eps/attacks.DefaultEps. Default {0.1, 0.3}.
	Eps []float64
	// Attacks filters the attack set by name; empty means all eight.
	Attacks []string
	// GEA includes graph-splice items (min/med/max benign targets per
	// source sample). Default true; set SkipGEA to disable.
	SkipGEA bool
	// Clean is the number of clean control items per class (benign +
	// each family). Default PerCell.
	Clean int
	// Workers bounds crafting parallelism; 0 = GOMAXPROCS.
	Workers int
}

// Campaign is a generated set of replayable items.
type Campaign struct {
	Items []Item
	// Attacks/Families/Budgets enumerate the cell axes present, in
	// deterministic order, for report layout.
	Attacks  []string
	Families []string
	Budgets  []string
}

// Generate builds a campaign deterministically from cfg. Crafting runs
// against the surrogate model on the shared worker pool; the output item
// order, IDs, and payloads depend only on the config.
func Generate(ctx context.Context, cfg CampaignConfig) (*Campaign, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("redteam: CampaignConfig.Model is required")
	}
	if cfg.NumBenign <= 0 {
		cfg.NumBenign = 40
	}
	if cfg.NumMal <= 0 {
		cfg.NumMal = 150
	}
	if cfg.PerCell <= 0 {
		cfg.PerCell = 3
	}
	if len(cfg.Eps) == 0 {
		cfg.Eps = []float64{0.1, attacks.DefaultEps}
	}
	if cfg.Clean <= 0 {
		cfg.Clean = cfg.PerCell
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	samples, err := synth.Generate(synth.Config{
		Seed:      cfg.Seed,
		NumBenign: cfg.NumBenign,
		NumMal:    cfg.NumMal,
	})
	if err != nil {
		return nil, fmt.Errorf("redteam: generating source corpus: %w", err)
	}

	// Partition sources by family and pick each cell's samples with a
	// seeded shuffle, so campaigns with different seeds stress different
	// corners of the family manifolds.
	byFamily := make(map[synth.Family][]*synth.Sample)
	var benign []*synth.Sample
	for _, s := range samples {
		if s.Malicious {
			byFamily[s.Family] = append(byFamily[s.Family], s)
		} else {
			benign = append(benign, s)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 101))
	for _, fam := range synth.MalwareFamilies() {
		list := byFamily[fam]
		rng.Shuffle(len(list), func(i, j int) { list[i], list[j] = list[j], list[i] })
	}
	rng.Shuffle(len(benign), func(i, j int) { benign[i], benign[j] = benign[j], benign[i] })

	mdl := cfg.Model
	surrogateClasses := mdl.Net.NumClasses()

	// Pre-vectorize every picked source under the surrogate: raw
	// features (replayed as clean controls and inverted attack outputs)
	// plus the scaled vector the attacks perturb.
	type source struct {
		sample *synth.Sample
		raw    []float64
		scaled []float64
		label  int // class label in the surrogate's class space
	}
	vectorize := func(s *synth.Sample) (*source, error) {
		raw, _, _, err := mdl.RawFeatures(s.Prog)
		if err != nil {
			return nil, fmt.Errorf("redteam: vectorizing %s: %w", s.Name, err)
		}
		scaled, err := mdl.Scaler.Transform(raw)
		if err != nil {
			return nil, fmt.Errorf("redteam: scaling %s: %w", s.Name, err)
		}
		label := nn.ClassMalware
		if surrogateClasses > 2 {
			label = core.ClassOf(s.Family)
		}
		if !s.Malicious {
			label = nn.ClassBenign
		}
		return &source{sample: s, raw: raw, scaled: scaled, label: label}, nil
	}

	perFamily := make(map[synth.Family][]*source)
	for _, fam := range synth.MalwareFamilies() {
		list := byFamily[fam]
		n := min(cfg.PerCell, len(list))
		for _, s := range list[:n] {
			src, err := vectorize(s)
			if err != nil {
				return nil, err
			}
			perFamily[fam] = append(perFamily[fam], src)
		}
	}

	c := &Campaign{}
	add := func(it Item) {
		it.ID = len(c.Items)
		c.Items = append(c.Items, it)
	}

	// Clean controls: benign + per-family unmodified vectors.
	for i := 0; i < min(cfg.Clean, len(benign)); i++ {
		src, err := vectorize(benign[i])
		if err != nil {
			return nil, err
		}
		add(Item{Attack: CleanAttack, Family: synth.Benign.String(), Budget: "-",
			Kind: KindVector, Vector: src.raw, Malicious: false})
	}
	for _, fam := range synth.MalwareFamilies() {
		for i, src := range perFamily[fam] {
			if i >= cfg.Clean {
				break
			}
			add(Item{Attack: CleanAttack, Family: fam.String(), Budget: "-",
				Kind: KindVector, Vector: src.raw, Malicious: true})
		}
	}

	// Feature-space attacks: craft per (attack, family, eps) cell in
	// parallel over samples; the cell loop is serial so item order stays
	// deterministic.
	type craftJob struct {
		atk    attacks.Attack
		name   string
		budget string
		fam    synth.Family
		src    *source
	}
	var jobs []craftJob
	for _, eps := range cfg.Eps {
		for _, atk := range budgetedAttacks(eps, cfg.Attacks) {
			for _, fam := range synth.MalwareFamilies() {
				for _, src := range perFamily[fam] {
					jobs = append(jobs, craftJob{
						atk:    atk,
						name:   atk.Name(),
						budget: fmt.Sprintf("eps=%.2f", eps),
						fam:    fam,
						src:    src,
					})
				}
			}
		}
	}
	crafted := make([][]float64, len(jobs))
	wss := make([]*nn.Workspace, min(workers, max(len(jobs), 1)))
	for w := range wss {
		wss[w] = mdl.Net.CloneShared().WS()
	}
	// One pool fan-out per attack instance would re-run setup costs;
	// instead group jobs by attack so the stateful Targeted attacks are
	// never mutated mid-flight (no targets are set here — untargeted
	// crafting only — but the grouping also keeps per-attack cache
	// behaviour deterministic).
	err = pool.Run(ctx, len(jobs), pool.Options{
		Workers: workers,
		Name:    func(k int) string { return fmt.Sprintf("craft/%s/%s", jobs[k].name, jobs[k].src.sample.Name) },
	}, func(_ context.Context, w, k int) error {
		j := jobs[k]
		adv := j.atk.Craft(wss[w], j.src.scaled, j.src.label)
		raw, err := mdl.Scaler.Inverse(adv)
		if err != nil {
			return fmt.Errorf("redteam: inverting %s/%s: %w", j.name, j.src.sample.Name, err)
		}
		crafted[k] = raw
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("redteam: crafting: %w", err)
	}
	for k, j := range jobs {
		if crafted[k] == nil {
			continue // isolated crafting fault
		}
		add(Item{Attack: j.name, Family: j.fam.String(), Budget: j.budget,
			Kind: KindVector, Vector: crafted[k], Malicious: true})
	}

	// GEA splices: each source program merged with the min/med/max
	// benign target, rendered back to assembly and replayed through the
	// full parse → disassemble → extract path.
	if !cfg.SkipGEA && len(benign) > 0 {
		targets, err := gea.SelectBySize(benign, false)
		if err != nil {
			return nil, fmt.Errorf("redteam: selecting GEA targets: %w", err)
		}
		for _, fam := range synth.MalwareFamilies() {
			for _, src := range perFamily[fam] {
				for _, tgt := range targets.Rows() {
					merged, err := gea.Merge(src.sample.Prog, tgt.Sample.Prog)
					if err != nil {
						return nil, fmt.Errorf("redteam: GEA merge %s+%s: %w",
							src.sample.Name, tgt.Sample.Name, err)
					}
					add(Item{Attack: GEAAttack, Family: fam.String(),
						Budget: "size=" + strings.ToLower(string(tgt.Label)),
						Kind:   KindProgram, Program: merged.String(), Malicious: true})
				}
			}
		}
	}

	c.Attacks, c.Families, c.Budgets = axes(c.Items)
	return c, nil
}

// budgetedAttacks instantiates the paper's attacks at one budget point.
// eps is the L∞ bound for the single/iterated-step attacks; the margin
// attacks have no eps knob, so their iteration (C&W, DeepFool,
// ElasticNet) or touched-feature (JSMA) budgets scale with
// eps/DefaultEps instead — one dial sweeps every attack's strength.
func budgetedAttacks(eps float64, filter []string) []attacks.Attack {
	scale := eps / attacks.DefaultEps
	iters := func(base int) int {
		n := int(float64(base) * scale)
		if n < 1 {
			n = 1
		}
		return n
	}
	gamma := attacks.DefaultJSMAGamma * scale
	if gamma > 1 {
		gamma = 1
	}
	all := []attacks.Attack{
		attacks.NewCW(0, iters(attacks.DefaultCWIters), 0),
		attacks.NewDeepFool(0, iters(attacks.DefaultDeepFoolIters)),
		attacks.NewElasticNet(0, iters(attacks.DefaultEADIters), 0, 0),
		attacks.NewFGSM(eps),
		attacks.NewJSMA(0, gamma),
		attacks.NewMIM(eps, 0),
		attacks.NewPGD(eps, 0),
		attacks.NewVAM(eps, 0),
	}
	if len(filter) == 0 {
		return all
	}
	want := make(map[string]bool, len(filter))
	for _, n := range filter {
		want[n] = true
	}
	var out []attacks.Attack
	for _, a := range all {
		if want[a.Name()] {
			out = append(out, a)
		}
	}
	return out
}

// axes extracts the distinct attack/family/budget labels present, in
// first-seen order for attacks and families and sorted order for
// budgets.
func axes(items []Item) (atks, fams, budgets []string) {
	seenA := map[string]bool{}
	seenF := map[string]bool{}
	seenB := map[string]bool{}
	for _, it := range items {
		if !seenA[it.Attack] {
			seenA[it.Attack] = true
			atks = append(atks, it.Attack)
		}
		if !seenF[it.Family] {
			seenF[it.Family] = true
			fams = append(fams, it.Family)
		}
		if !seenB[it.Budget] {
			seenB[it.Budget] = true
			budgets = append(budgets, it.Budget)
		}
	}
	sort.Strings(budgets)
	return atks, fams, budgets
}
