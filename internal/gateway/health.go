package gateway

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"sync/atomic"
	"time"
)

// Backend is one serve replica behind the gateway: its identity on the
// ring, its health-checker verdict, its circuit breaker, and its traffic
// counters. Health and breaker are independent signals — health comes
// from the /readyz poller (slow, authoritative about drain), the breaker
// from live traffic (fast, authoritative about crashes) — and a backend
// receives requests only when both pass.
type Backend struct {
	// ID is the ring identity (host:port). Stable across restarts so a
	// bounced replica gets its old shard — and its warm cache keys — back.
	ID string
	// URL is the base URL requests are proxied to.
	URL string
	// Breaker is the backend's circuit breaker.
	Breaker *Breaker

	healthy atomic.Bool

	// ModelVer is the replica's serving model version, scraped from its
	// GET /v1/model after each successful ready probe. Zero until the
	// first scrape (or for replicas predating the endpoint). /backends
	// reports it so fleet-wide version skew during a rolling hot swap is
	// observable from one place.
	ModelVer atomic.Uint64

	Attempts   atomic.Uint64 // upstream attempts sent here
	Failures   atomic.Uint64 // attempts that failed (transport or 5xx)
	EjectCount atomic.Uint64 // health-check ejections

	// health-loop bookkeeping; touched only by this backend's checker
	// goroutine.
	consecFail int
	consecOK   int
}

// Healthy reports the health checker's current verdict.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// Available reports whether the backend should receive traffic right
// now: health-checked ready and breaker admitting. Calling it may
// advance the breaker open → half-open.
func (b *Backend) Available() bool { return b.healthy.Load() && b.Breaker.Allow() }

// healthLoop polls one backend's /readyz on a jittered interval,
// ejecting it after EjectAfter consecutive failures and re-admitting it
// after ReadmitAfter consecutive successes. Jitter (±20%) decorrelates
// the pollers so N backends aren't probed in lockstep. Re-admission also
// resets the breaker: the replica answered ready, so stale failure
// history shouldn't hold its shard hostage.
func (g *Gateway) healthLoop(b *Backend, seed int64) {
	defer g.wg.Done()
	rng := rand.New(rand.NewSource(seed))
	for {
		d := jitter(g.cfg.HealthInterval, rng)
		select {
		case <-g.done:
			return
		case <-time.After(d):
		}
		g.observeHealth(b, g.probeReady(b))
	}
}

// probeReady asks one backend whether it is ready to serve. A ready
// replica also has its model version scraped, so /backends tracks the
// fleet's version skew at health-check cadence.
func (g *Gateway) probeReady(b *Backend) bool {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	g.scrapeModel(ctx, b)
	return true
}

// scrapeModel best-effort refreshes the backend's serving model version
// from GET /v1/model. Failures leave the last known version in place —
// the probe already established readiness, and a replica predating the
// endpoint simply stays at 0.
func (g *Gateway) scrapeModel(ctx context.Context, b *Backend) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL+"/v1/model", nil)
	if err != nil {
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var info struct {
		Version uint64 `json:"version"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&info) == nil && info.Version > 0 {
		b.ModelVer.Store(info.Version)
	}
}

// observeHealth folds one probe result into the backend's state.
func (g *Gateway) observeHealth(b *Backend, ok bool) {
	if ok {
		b.consecFail = 0
		b.consecOK++
		if !b.healthy.Load() && b.consecOK >= g.cfg.ReadmitAfter {
			b.healthy.Store(true)
			b.Breaker.Success()
			g.metrics.Readmissions.Add(1)
		}
		return
	}
	b.consecOK = 0
	b.consecFail++
	if b.healthy.Load() && b.consecFail >= g.cfg.EjectAfter {
		b.healthy.Store(false)
		b.EjectCount.Add(1)
		g.metrics.Ejections.Add(1)
	}
}

// jitter spreads d by ±20%. A nil rng uses the (locked) global source —
// the concurrent proxy path needs decorrelation, not determinism.
func jitter(d time.Duration, rng *rand.Rand) time.Duration {
	f := rand.Float64()
	if rng != nil {
		f = rng.Float64()
	}
	return time.Duration(float64(d) * (0.8 + 0.4*f))
}
