package gateway

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"time"
)

// upstream is the outcome of proxying one client request: either a
// response from some backend (any status — 4xx/5xx pass through) or a
// terminal error after every attempt failed.
type upstream struct {
	status  int
	header  http.Header
	body    []byte
	backend *Backend
	err     error // non-nil when no backend produced a response
	hedged  bool  // this response came from a hedge attempt
}

// forward proxies one request across the shard's candidate backends with
// the full resilience ladder:
//
//   - the first attempt goes to the key's owner (cache affinity);
//   - a failed attempt (transport error or 5xx — classify is a pure
//     function, so replays are always safe) retries the next candidate
//     after capped exponential backoff with jitter;
//   - an attempt that outlives the hedge budget (p99-derived unless
//     configured) triggers a parallel hedge to the next candidate, and
//     the first usable response wins while the loser is canceled;
//   - every outcome feeds the owning backend's breaker, except attempts
//     canceled because a peer already won.
//
// The caller guarantees cands is non-empty.
func (g *Gateway) forward(ctx context.Context, path, contentType string, body []byte, cands []*Backend) upstream {
	fctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels stragglers once a winner returns

	results := make(chan upstream, len(cands))
	launch := func(i int, hedged bool) {
		g.metrics.Attempts.Add(1)
		go g.attempt(fctx, cands[i], path, contentType, body, hedged, results)
	}
	launch(0, false)
	launched, pending := 1, 1

	var hedgeC <-chan time.Time
	if delay := g.hedgeDelay(); delay > 0 && len(cands) > 1 {
		t := time.NewTimer(delay)
		defer t.Stop()
		hedgeC = t.C
	}

	backoff := g.cfg.RetryBackoff
	var last upstream
	for pending > 0 {
		select {
		case r := <-results:
			pending--
			if r.err == nil && r.status < http.StatusInternalServerError {
				if r.hedged {
					g.metrics.HedgeWins.Add(1)
				}
				return r
			}
			last = r
			if ctx.Err() != nil {
				return upstream{err: ctx.Err()}
			}
			if launched < len(cands) {
				if !sleepCtx(fctx, jitter(backoff, nil)) {
					return upstream{err: fctx.Err()}
				}
				if backoff *= 2; backoff > g.cfg.RetryBackoffMax {
					backoff = g.cfg.RetryBackoffMax
				}
				g.metrics.Retries.Add(1)
				launch(launched, false)
				launched++
				pending++
			}
		case <-hedgeC:
			hedgeC = nil
			if launched < len(cands) {
				g.metrics.Hedges.Add(1)
				launch(launched, true)
				launched++
				pending++
			}
		case <-ctx.Done():
			return upstream{err: ctx.Err()}
		}
	}
	return last
}

// attempt sends one upstream request and reports into results (buffered:
// a send never blocks, so attempts whose waiter already returned exit
// cleanly). Breaker and latency accounting happen here — skipped when
// the shared context was canceled, so a hedge loser is not a "failure".
func (g *Gateway) attempt(ctx context.Context, b *Backend, path, contentType string, body []byte, hedged bool, results chan<- upstream) {
	b.Attempts.Add(1)
	actx, cancel := context.WithTimeout(ctx, g.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, b.URL+path, bytes.NewReader(body))
	if err != nil {
		results <- upstream{backend: b, err: err, hedged: hedged}
		return
	}
	req.Header.Set("Content-Type", contentType)
	start := time.Now()
	resp, err := g.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			// A real failure (refused, reset, attempt timeout) — not a
			// cancellation because some peer already won.
			g.recordFailure(b)
		}
		results <- upstream{backend: b, err: err, hedged: hedged}
		return
	}
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxBody+1))
	resp.Body.Close()
	if err != nil {
		if ctx.Err() == nil {
			g.recordFailure(b)
		}
		results <- upstream{backend: b, err: err, hedged: hedged}
		return
	}
	if resp.StatusCode >= http.StatusInternalServerError {
		g.recordFailure(b)
	} else {
		b.Breaker.Success()
		g.metrics.BackendLat.ObserveDuration(time.Since(start))
	}
	results <- upstream{
		status:  resp.StatusCode,
		header:  resp.Header,
		body:    respBody,
		backend: b,
		hedged:  hedged,
	}
}

// recordFailure feeds one failed attempt into the backend's breaker and
// counters, counting the trip if this failure opened it.
func (g *Gateway) recordFailure(b *Backend) {
	b.Failures.Add(1)
	if b.Breaker.Failure() {
		g.metrics.BreakerTrips.Add(1)
	}
}

// hedgeDelay returns the current hedge budget: the configured value, or
// the observed upstream p99 (clamped to [HedgeMin, HedgeMax]) once
// enough samples exist. Zero disables hedging for this request.
func (g *Gateway) hedgeDelay() time.Duration {
	if g.cfg.HedgeAfter < 0 {
		return 0
	}
	if g.cfg.HedgeAfter > 0 {
		return g.cfg.HedgeAfter
	}
	h := g.metrics.BackendLat
	if h.Count() < hedgeMinSamples {
		return 0
	}
	d := time.Duration(h.Quantile(0.99) * float64(time.Second))
	if d < g.cfg.HedgeMin {
		d = g.cfg.HedgeMin
	}
	if d > g.cfg.HedgeMax {
		d = g.cfg.HedgeMax
	}
	return d
}

// hedgeMinSamples is how many latency observations the auto budget needs
// before its p99 estimate is trusted.
const hedgeMinSamples = 64

// sleepCtx sleeps for d or until ctx is done, reporting whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
