package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// validProgram is the same minimal parseable program the serve tests
// use; its CFG is what classifyKey hashes.
const validProgram = "movi r0, 1\nmovi r1, 2\nadd r0, r1\nret\n"

// fakeReplica is a scriptable stand-in for a serve replica: /readyz
// toggles, the classify endpoints run a swappable handler, and every
// classify hit is counted.
type fakeReplica struct {
	ts    *httptest.Server
	hits  atomic.Uint64
	ready atomic.Bool

	mu      sync.Mutex
	handler http.HandlerFunc
}

func newFakeReplica(t *testing.T) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.ready.Store(true)
	mux := http.NewServeMux()
	classify := func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		f.mu.Lock()
		h := f.handler
		f.mu.Unlock()
		if h != nil {
			h(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"class":"benign"}`)
	}
	mux.HandleFunc("POST /v1/classify", classify)
	mux.HandleFunc("POST /v1/classify/vector", classify)
	mux.HandleFunc("POST /v1/similar", classify)
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if f.ready.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeReplica) setHandler(h http.HandlerFunc) {
	f.mu.Lock()
	f.handler = h
	f.mu.Unlock()
}

func (f *fakeReplica) addr() string { return strings.TrimPrefix(f.ts.URL, "http://") }

// newTestGateway builds a gateway over the replicas. The base config
// parks the health checker on a long interval so tests control health
// transitions deterministically; tests override what they probe.
func newTestGateway(t *testing.T, cfg Config, replicas ...*fakeReplica) *Gateway {
	t.Helper()
	for _, f := range replicas {
		cfg.Backends = append(cfg.Backends, f.addr())
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = time.Hour
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = -1 // tests opt into hedging explicitly
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// do sends one request through the gateway handler.
func do(g *Gateway, method, path, contentType, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	return rec
}

// replicaByURL finds which fake replica backs a *Backend.
func replicaByURL(t *testing.T, replicas []*fakeReplica, b *Backend) *fakeReplica {
	t.Helper()
	for _, f := range replicas {
		if f.ts.URL == b.URL {
			return f
		}
	}
	t.Fatalf("no replica for backend %s", b.URL)
	return nil
}

// Textual re-encodings of the same program — raw text, JSON under
// different names — carry the same CFG, so they must route to the same
// replica (the GraphKey affinity claim), and repeats must hit the
// routing-key cache.
func TestGatewayRoutesByGraphKey(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)}
	g := newTestGateway(t, Config{}, replicas...)

	encodings := []struct{ contentType, body string }{
		{"text/plain", validProgram},
		{"application/json", fmt.Sprintf(`{"name":"alpha","program":%q}`, validProgram)},
		{"application/json", fmt.Sprintf(`{"name":"beta","program":%q}`, validProgram)},
	}
	for _, enc := range encodings {
		for i := 0; i < 2; i++ {
			rec := do(g, http.MethodPost, "/v1/classify", enc.contentType, enc.body)
			if rec.Code != http.StatusOK {
				t.Fatalf("status %d body %s", rec.Code, rec.Body)
			}
		}
	}
	hot := 0
	for _, f := range replicas {
		if n := f.hits.Load(); n > 0 {
			hot++
			if n != 6 {
				t.Errorf("replica %s got %d hits, want all 6", f.addr(), n)
			}
		}
	}
	if hot != 1 {
		t.Fatalf("%d replicas received traffic, want exactly 1 (same CFG → same shard)", hot)
	}
	// 3 distinct bodies, each sent twice: second sends are cache hits.
	if hits := g.Metrics().KeyCacheHits.Load(); hits != 3 {
		t.Errorf("key cache hits = %d, want 3", hits)
	}
	if misses := g.Metrics().KeyCacheMisses.Load(); misses != 3 {
		t.Errorf("key cache misses = %d, want 3", misses)
	}
}

// Distinct vector bodies spread across the cluster rather than piling
// onto one replica.
func TestGatewayVectorSpread(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)}
	g := newTestGateway(t, Config{}, replicas...)
	for i := 0; i < 60; i++ {
		body := fmt.Sprintf(`{"vector":[%d]}`, i)
		if rec := do(g, http.MethodPost, "/v1/classify/vector", "application/json", body); rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
	}
	for _, f := range replicas {
		if f.hits.Load() == 0 {
			t.Errorf("replica %s received no traffic over 60 random keys", f.addr())
		}
	}
}

// A failing primary is retried on the shard's next candidate and the
// client still sees 200; the retry and the backend failure are counted.
func TestGatewayRetryFailover(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t)}
	g := newTestGateway(t, Config{RetryBackoff: time.Millisecond}, replicas...)

	key := g.classifyKey([]byte(validProgram), "text/plain")
	cands := g.candidates(key)
	if len(cands) != 2 {
		t.Fatalf("want 2 candidates, got %d", len(cands))
	}
	primary := replicaByURL(t, replicas, cands[0])
	primary.setHandler(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})

	rec := do(g, http.MethodPost, "/v1/classify", "text/plain", validProgram)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via failover", rec.Code)
	}
	m := g.Metrics()
	if m.Retries.Load() != 1 {
		t.Errorf("retries = %d, want 1", m.Retries.Load())
	}
	if m.Attempts.Load() != 2 {
		t.Errorf("attempts = %d, want 2", m.Attempts.Load())
	}
	if got := cands[0].Failures.Load(); got != 1 {
		t.Errorf("primary failures = %d, want 1", got)
	}
	if m.Requests.Load() != 1 {
		t.Errorf("requests = %d, want 1 (retries are not client requests)", m.Requests.Load())
	}
	if got := m.Responses()[http.StatusOK]; got != 1 {
		t.Errorf("200 responses = %d, want exactly 1", got)
	}
}

// Killing a replica mid-load never surfaces a 5xx to clients: requests
// in flight to the dead backend fail over to the shard's survivors.
func TestGatewayKillMidLoadZeroClientErrors(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)}
	g := newTestGateway(t, Config{RetryBackoff: time.Millisecond}, replicas...)

	const total, killAt, workers = 80, 20, 4
	var sent atomic.Int64
	var non200 atomic.Int64
	var killOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				n := sent.Add(1)
				if n > total {
					return
				}
				if n == killAt {
					killOnce.Do(replicas[0].ts.Close)
				}
				body := fmt.Sprintf(`{"vector":[%d,%d]}`, w, n)
				rec := do(g, http.MethodPost, "/v1/classify/vector", "application/json", body)
				if rec.Code != http.StatusOK {
					non200.Add(1)
					t.Errorf("request %d: status %d body %s", n, rec.Code, rec.Body)
				}
			}
		}(w)
	}
	wg.Wait()
	if non200.Load() != 0 {
		t.Fatalf("%d client requests failed across the kill", non200.Load())
	}
	if got := g.Metrics().Responses()[http.StatusOK]; got != total {
		t.Errorf("200 responses = %d, want %d", got, total)
	}
}

// A slow primary past the hedge budget triggers exactly one hedge; the
// fast secondary's answer wins, the client sees it quickly, and the
// canceled loser is not booked as a backend failure.
func TestGatewayHedge(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t)}
	g := newTestGateway(t, Config{HedgeAfter: 10 * time.Millisecond, AttemptTimeout: 5 * time.Second}, replicas...)

	key := g.classifyKey([]byte(validProgram), "text/plain")
	cands := g.candidates(key)
	primary := replicaByURL(t, replicas, cands[0])
	release := make(chan struct{})
	primary.setHandler(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"class":"benign"}`)
	})
	defer close(release)

	start := time.Now()
	rec := do(g, http.MethodPost, "/v1/classify", "text/plain", validProgram)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("hedged request took %v; the slow primary gated the response", elapsed)
	}
	m := g.Metrics()
	if m.Hedges.Load() != 1 {
		t.Errorf("hedges = %d, want 1", m.Hedges.Load())
	}
	if m.HedgeWins.Load() != 1 {
		t.Errorf("hedge wins = %d, want 1", m.HedgeWins.Load())
	}
	if m.Requests.Load() != 1 || m.Responses()[http.StatusOK] != 1 {
		t.Errorf("requests=%d 200s=%d, want 1/1 — hedges must not double-count",
			m.Requests.Load(), m.Responses()[http.StatusOK])
	}
	if got := cands[0].Failures.Load(); got != 0 {
		t.Errorf("hedge loser booked %d failures, want 0", got)
	}
	if cands[0].Breaker.State() != BreakerClosed {
		t.Errorf("hedge loser's breaker = %v, want closed", cands[0].Breaker.State())
	}
}

// Consecutive failures trip the backend's breaker; while open the shard
// degrades to 503 + Retry-After; after the cooldown a half-open probe
// against the recovered replica closes it again.
func TestGatewayBreakerTripAndRecover(t *testing.T) {
	f := newFakeReplica(t)
	g := newTestGateway(t, Config{
		Breaker:      BreakerConfig{FailThreshold: 2, Cooldown: 50 * time.Millisecond},
		RetryBackoff: time.Millisecond,
	}, f)
	b := g.Backends()[0]

	f.setHandler(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	for i := 0; i < 2; i++ {
		if rec := do(g, http.MethodPost, "/v1/classify", "text/plain", validProgram); rec.Code != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want passed-through 500", i+1, rec.Code)
		}
	}
	if b.Breaker.State() != BreakerOpen {
		t.Fatalf("breaker %v after threshold failures, want open", b.Breaker.State())
	}
	if g.Metrics().BreakerTrips.Load() != 1 {
		t.Errorf("breaker trips = %d, want 1", g.Metrics().BreakerTrips.Load())
	}

	// Open breaker: the shard has no admitted replica → degrade, fast.
	rec := do(g, http.MethodPost, "/v1/classify", "text/plain", validProgram)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d while breaker open, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if g.Metrics().Unroutable.Load() != 1 {
		t.Errorf("unroutable = %d, want 1", g.Metrics().Unroutable.Load())
	}

	// Replica recovers; after the cooldown the half-open probe succeeds.
	f.setHandler(nil)
	time.Sleep(60 * time.Millisecond)
	rec = do(g, http.MethodPost, "/v1/classify", "text/plain", validProgram)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d after recovery, want 200", rec.Code)
	}
	if b.Breaker.State() != BreakerClosed {
		t.Errorf("breaker %v after successful probe, want closed", b.Breaker.State())
	}
}

// With the whole shard dark the gateway answers 503 + Retry-After in
// bounded time instead of hanging.
func TestGatewayAllReplicasDown(t *testing.T) {
	f := newFakeReplica(t)
	g := newTestGateway(t, Config{AttemptTimeout: 200 * time.Millisecond, RetryBackoff: time.Millisecond}, f)
	f.ts.Close()

	start := time.Now()
	rec := do(g, http.MethodPost, "/v1/classify", "text/plain", validProgram)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("degraded 503 without Retry-After")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Errorf("degraded 503 body %q is not the JSON error envelope", rec.Body)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("degradation took %v, want bounded", d)
	}
}

// Health ejection is driven by consecutive probe verdicts; an ejected
// backend's shard is 503 (no live replica) without an upstream attempt,
// and re-admission restores routing and resets the breaker.
func TestGatewayEjectReadmitDeterministic(t *testing.T) {
	f := newFakeReplica(t)
	g := newTestGateway(t, Config{EjectAfter: 2, ReadmitAfter: 1}, f)
	b := g.Backends()[0]

	g.observeHealth(b, false)
	if !b.Healthy() {
		t.Fatal("ejected after 1 failed probe, want 2")
	}
	g.observeHealth(b, false)
	if b.Healthy() {
		t.Fatal("not ejected after EjectAfter failed probes")
	}
	if g.Metrics().Ejections.Load() != 1 || b.EjectCount.Load() != 1 {
		t.Errorf("ejections = %d/%d, want 1/1", g.Metrics().Ejections.Load(), b.EjectCount.Load())
	}
	rec := do(g, http.MethodPost, "/v1/classify", "text/plain", validProgram)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d against ejected shard, want 503", rec.Code)
	}
	if f.hits.Load() != 0 {
		t.Errorf("ejected backend still received %d attempts", f.hits.Load())
	}

	// Pre-load stale breaker state; re-admission must clear it.
	b.Breaker.Failure()
	g.observeHealth(b, true)
	if !b.Healthy() {
		t.Fatal("not readmitted after ReadmitAfter ok probes")
	}
	if g.Metrics().Readmissions.Load() != 1 {
		t.Errorf("readmissions = %d, want 1", g.Metrics().Readmissions.Load())
	}
	if rec := do(g, http.MethodPost, "/v1/classify", "text/plain", validProgram); rec.Code != http.StatusOK {
		t.Fatalf("status %d after readmission, want 200", rec.Code)
	}
}

// The live health loop converges too: a replica flipping /readyz to 503
// is ejected within a few poll intervals and readmitted after recovery.
func TestGatewayHealthLoopLive(t *testing.T) {
	f := newFakeReplica(t)
	g := newTestGateway(t, Config{HealthInterval: 5 * time.Millisecond, EjectAfter: 2, ReadmitAfter: 1}, f)
	b := g.Backends()[0]

	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}
	f.ready.Store(false)
	waitFor(func() bool { return !b.Healthy() }, "ejection")
	f.ready.Store(true)
	waitFor(func() bool { return b.Healthy() }, "re-admission")
}

// The per-client token bucket sheds with 429 + Retry-After before any
// routing work happens.
func TestGatewayRateLimit(t *testing.T) {
	f := newFakeReplica(t)
	g := newTestGateway(t, Config{Rate: 1, Burst: 1}, f)

	if rec := do(g, http.MethodPost, "/v1/classify", "text/plain", validProgram); rec.Code != http.StatusOK {
		t.Fatalf("first request status %d", rec.Code)
	}
	rec := do(g, http.MethodPost, "/v1/classify", "text/plain", validProgram)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	m := g.Metrics()
	if m.RateLimited.Load() != 1 {
		t.Errorf("rate limited = %d, want 1", m.RateLimited.Load())
	}
	if m.Requests.Load() != 1 {
		t.Errorf("requests = %d, want 1 (shed requests are not admitted)", m.Requests.Load())
	}
	if f.hits.Load() != 1 {
		t.Errorf("backend saw %d hits, want 1", f.hits.Load())
	}
}

// Oversized bodies are rejected at the gateway, not proxied.
func TestGatewayMaxBody(t *testing.T) {
	f := newFakeReplica(t)
	g := newTestGateway(t, Config{MaxBody: 64}, f)
	rec := do(g, http.MethodPost, "/v1/classify", "text/plain", strings.Repeat("x", 200))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
	if f.hits.Load() != 0 {
		t.Error("oversized body reached a backend")
	}
}

// /metrics exposes the gateway counters and per-backend series in
// Prometheus text format.
func TestGatewayMetricsEndpoint(t *testing.T) {
	f := newFakeReplica(t)
	g := newTestGateway(t, Config{}, f)
	do(g, http.MethodPost, "/v1/classify", "text/plain", validProgram)

	rec := do(g, http.MethodGet, "/metrics", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"gateway_requests_total 1",
		"gateway_responses_total{code=\"200\"} 1",
		fmt.Sprintf("gateway_backend_healthy{backend=%q} 1", f.addr()),
		fmt.Sprintf("gateway_backend_breaker_state{backend=%q,state=\"closed\"} 1", f.addr()),
		"gateway_backend_latency_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

// /readyz: ready while any backend is healthy, 503 when draining or
// when the whole replica set is dark. /backends dumps the state.
func TestGatewayReadyzAndBackends(t *testing.T) {
	f := newFakeReplica(t)
	g := newTestGateway(t, Config{}, f)
	if rec := do(g, http.MethodGet, "/readyz", "", ""); rec.Code != http.StatusOK {
		t.Fatalf("readyz %d, want 200", rec.Code)
	}
	if rec := do(g, http.MethodGet, "/healthz", "", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz %d, want 200", rec.Code)
	}

	rec := do(g, http.MethodGet, "/backends", "", "")
	var rows []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil || len(rows) != 1 {
		t.Fatalf("backends dump %q: %v", rec.Body, err)
	}

	b := g.Backends()[0]
	g.observeHealth(b, false)
	g.observeHealth(b, false)
	if rec := do(g, http.MethodGet, "/readyz", "", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d with all backends dark, want 503", rec.Code)
	}
	g.observeHealth(b, true)
	g.NotReady()
	if rec := do(g, http.MethodGet, "/readyz", "", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d while draining, want 503", rec.Code)
	}
}

func TestNormalizeBackend(t *testing.T) {
	cases := []struct{ in, id, url string }{
		{"127.0.0.1:8377", "127.0.0.1:8377", "http://127.0.0.1:8377"},
		{"http://127.0.0.1:8377", "127.0.0.1:8377", "http://127.0.0.1:8377"},
		{"http://127.0.0.1:8377/", "127.0.0.1:8377", "http://127.0.0.1:8377"},
		{"https://replica:443", "replica:443", "https://replica:443"},
	}
	for _, c := range cases {
		id, url, err := normalizeBackend(c.in)
		if err != nil || id != c.id || url != c.url {
			t.Errorf("normalizeBackend(%q) = %q, %q, %v; want %q, %q", c.in, id, url, err, c.id, c.url)
		}
	}
	for _, bad := range []string{"", "nohost", "http://noport/"} {
		if _, _, err := normalizeBackend(bad); err == nil {
			t.Errorf("normalizeBackend(%q) accepted", bad)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New without backends accepted")
	}
}

// The routing-key cache is a bounded LRU: hot keys survive, cold ones
// are evicted at capacity.
func TestKeyCacheLRU(t *testing.T) {
	c := newKeyCache(2)
	sum := func(s string) [32]byte { var b [32]byte; copy(b[:], s); return b }
	c.put(sum("a"), 1)
	c.put(sum("b"), 2)
	c.get(sum("a")) // refresh a
	c.put(sum("c"), 3)
	if _, ok := c.get(sum("b")); ok {
		t.Error("LRU kept the cold entry")
	}
	if v, ok := c.get(sum("a")); !ok || v != 1 {
		t.Error("LRU evicted the hot entry")
	}
	if v, ok := c.get(sum("c")); !ok || v != 3 {
		t.Error("newest entry missing")
	}
}

// Unparseable classify bodies still route (body-hash fallback) and the
// replica's 400 passes through untouched.
func TestGatewayUnparseableBodyFallback(t *testing.T) {
	f := newFakeReplica(t)
	g := newTestGateway(t, Config{}, f)
	f.setHandler(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintln(w, `{"error":"parse"}`)
	})
	rec := do(g, http.MethodPost, "/v1/classify", "text/plain", "not a program !!")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want replica's 400 passed through", rec.Code)
	}
	if g.Metrics().Retries.Load() != 0 {
		t.Error("4xx must not be retried")
	}
}

// The gateway survives a ReverseProxy-style comparison burn-in: many
// concurrent mixed requests, no races (run under -race), every request
// answered.
func TestGatewayConcurrentMixedLoad(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t)}
	g := newTestGateway(t, Config{RetryBackoff: time.Millisecond}, replicas...)

	var wg sync.WaitGroup
	var bad atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				var rec *httptest.ResponseRecorder
				if i%2 == 0 {
					rec = do(g, http.MethodPost, "/v1/classify", "text/plain", validProgram)
				} else {
					rec = do(g, http.MethodPost, "/v1/classify/vector", "application/json",
						fmt.Sprintf(`{"vector":[%d,%d]}`, w, i))
				}
				if rec.Code != http.StatusOK {
					bad.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d requests failed under concurrent load", bad.Load())
	}
}

// TestGatewaySimilarAffinityAndQuery pins the /v1/similar route: the
// same program body shares a shard with /v1/classify (both hash the
// GraphKey, so a replica's warm feature cache serves both), and the ?k=
// query string is forwarded to the backend without perturbing the
// routing key.
func TestGatewaySimilarAffinityAndQuery(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)}
	var gotQuery atomic.Value
	for _, f := range replicas {
		f.setHandler(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/similar" {
				gotQuery.Store(r.URL.RawQuery)
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"family":"mirai"}`)
		})
	}
	g := newTestGateway(t, Config{}, replicas...)

	for _, path := range []string{"/v1/classify", "/v1/similar", "/v1/similar?k=7"} {
		rec := do(g, http.MethodPost, path, "text/plain", validProgram)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d body %s", path, rec.Code, rec.Body)
		}
	}
	hot := 0
	for _, f := range replicas {
		if n := f.hits.Load(); n > 0 {
			hot++
			if n != 3 {
				t.Errorf("replica %s got %d hits, want all 3", f.addr(), n)
			}
		}
	}
	if hot != 1 {
		t.Fatalf("%d replicas received traffic, want exactly 1 (classify and similar share the CFG shard)", hot)
	}
	if q, _ := gotQuery.Load().(string); q != "k=7" {
		t.Fatalf("backend saw query %q, want k=7 forwarded", q)
	}
}

// TestGatewaySimilarFailover: a replica without a loaded index answers
// 501; the gateway's retry ladder must fail the request over to a
// replica that has one.
func TestGatewaySimilarFailover(t *testing.T) {
	noIndex := newFakeReplica(t)
	noIndex.setHandler(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotImplemented)
		fmt.Fprintln(w, `{"error":"no similarity index loaded"}`)
	})
	withIndex := newFakeReplica(t)
	withIndex.setHandler(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"family":"gafgyt"}`)
	})
	g := newTestGateway(t, Config{RetryBackoff: time.Millisecond}, noIndex, withIndex)

	// Whichever replica owns the shard, the answer must come from the
	// indexed one.
	rec := do(g, http.MethodPost, "/v1/similar?k=3", "text/plain", validProgram)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d body %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "gafgyt") {
		t.Fatalf("response did not come from the indexed replica: %s", rec.Body)
	}
}
