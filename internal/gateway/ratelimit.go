package gateway

import (
	"math"
	"sync"
	"time"
)

// RateLimiterConfig configures a per-client token-bucket limiter.
type RateLimiterConfig struct {
	// Rate is the steady-state tokens/second granted to each client.
	Rate float64
	// Burst is each bucket's capacity. Defaults to max(Rate, 1).
	Burst float64
	// MaxClients bounds the bucket map so an adversary rotating client
	// addresses cannot grow it without bound. Default 4096.
	MaxClients int
}

// RateLimiter is a lazily-refilled token bucket per client key. A
// request costs one token; an empty bucket rejects with the time until
// the next token, which the gateway surfaces as Retry-After. Buckets
// refill on access (no background goroutine), and fully-refilled idle
// buckets are evicted when the map hits MaxClients.
type RateLimiter struct {
	cfg RateLimiterConfig

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter returns a limiter, or nil when cfg.Rate <= 0 (rate
// limiting disabled; a nil *RateLimiter allows everything).
func NewRateLimiter(cfg RateLimiterConfig) *RateLimiter {
	if cfg.Rate <= 0 {
		return nil
	}
	if cfg.Burst <= 0 {
		cfg.Burst = math.Max(cfg.Rate, 1)
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = 4096
	}
	return &RateLimiter{cfg: cfg, buckets: make(map[string]*bucket)}
}

// Allow spends one token from client's bucket. When the bucket is empty
// it returns false and how long until a token accrues.
func (l *RateLimiter) Allow(client string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[client]
	if b == nil {
		if len(l.buckets) >= l.cfg.MaxClients {
			l.evict(now)
		}
		b = &bucket{tokens: l.cfg.Burst, last: now}
		l.buckets[client] = b
	} else {
		dt := now.Sub(b.last).Seconds()
		if dt > 0 {
			b.tokens = math.Min(l.cfg.Burst, b.tokens+dt*l.cfg.Rate)
			b.last = now
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.cfg.Rate
	return false, time.Duration(need * float64(time.Second))
}

// evict drops buckets that would be fully refilled by now — clients
// idle long enough that forgetting them loses nothing. If every bucket
// is active, it drops an arbitrary one to stay bounded. Callers hold
// l.mu.
func (l *RateLimiter) evict(now time.Time) {
	full := now.Add(-time.Duration(l.cfg.Burst / l.cfg.Rate * float64(time.Second)))
	for k, b := range l.buckets {
		if b.last.Before(full) {
			delete(l.buckets, k)
		}
	}
	if len(l.buckets) >= l.cfg.MaxClients {
		for k := range l.buckets {
			delete(l.buckets, k)
			break
		}
	}
}

// Clients returns the number of tracked buckets (for tests/metrics).
func (l *RateLimiter) Clients() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
