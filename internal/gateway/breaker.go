package gateway

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

// Breaker states.
const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects traffic until Cooldown has elapsed.
	BreakerOpen
	// BreakerHalfOpen admits one probe per Cooldown window; a success
	// closes the breaker, a failure re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// BreakerConfig configures a Breaker. Zero values select the defaults
// noted on each field.
type BreakerConfig struct {
	// FailThreshold is the consecutive-failure count that trips a closed
	// breaker open. Default 5.
	FailThreshold int
	// Cooldown is how long an open breaker rejects before admitting a
	// half-open probe, and the minimum spacing between half-open probes.
	// Default 2s.
	Cooldown time.Duration
}

func (c *BreakerConfig) defaults() {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
}

// Breaker is a per-backend circuit breaker: closed until FailThreshold
// consecutive failures, then open for Cooldown, then half-open — one
// probe per Cooldown window — until a success closes it again. Every
// transition to open (the initial trip and each half-open re-trip)
// increments the trip counter. Safe for concurrent use; the clock is
// injectable so the state machine is testable without sleeping.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // time.Now unless a test injects a fake clock

	mu        sync.Mutex
	state     BreakerState
	fails     int       // consecutive failures while closed
	openedAt  time.Time // when the breaker last tripped
	lastProbe time.Time // last half-open probe admission
	trips     uint64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.defaults()
	return &Breaker{cfg: cfg, now: time.Now}
}

// Allow reports whether a request may be sent through the breaker,
// advancing open → half-open once Cooldown has elapsed. In half-open it
// admits at most one probe per Cooldown window, so a burst arriving at
// a recovering backend cannot stampede it.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = BreakerHalfOpen
			b.lastProbe = now
			return true
		}
		return false
	default: // half-open
		if now.Sub(b.lastProbe) >= b.cfg.Cooldown {
			b.lastProbe = now
			return true
		}
		return false
	}
}

// Success records a successful request: any state closes.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
}

// Failure records a failed request and returns whether this failure
// tripped the breaker open (callers count trips off the return value so
// the metric increments exactly once per transition).
func (b *Breaker) Failure() (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailThreshold {
			b.trip()
			return true
		}
	case BreakerHalfOpen:
		// The probe failed: straight back to open for another cooldown.
		b.trip()
		return true
	case BreakerOpen:
		// A straggler attempt launched before the trip; the breaker is
		// already open, don't extend the cooldown.
	}
	return false
}

// trip moves to open. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.fails = 0
	b.trips++
}

// State returns the breaker's current position without advancing it.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has transitioned to open.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
