// Package gateway is the fault-tolerant front door of the detection
// cluster: a stdlib-only reverse proxy spreading /v1/classify traffic
// over N serve replicas.
//
// Routing is a consistent hash on features.GraphKey — the same content
// hash the per-replica feature-cache memoizes under — so every repeated
// graph (a GEA probe stream, a re-submitted sample) lands on the replica
// whose extractor LRU is already warm for it. Around that placement sit
// the resilience layers the single-node stack cannot provide: a
// health-checked replica set polled over /readyz, capped-backoff retries
// and p99-budget hedging across the shard's failover candidates, a
// half-open circuit breaker per backend, per-client token-bucket load
// shedding, and graceful 503 + Retry-After degradation when a shard has
// no live replica. Every layer exports Prometheus-text counters on the
// gateway's own /metrics.
package gateway

import (
	"container/list"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"advmal/internal/features"
	"advmal/internal/ir"
)

// Config configures a Gateway. Backends is required; everything else
// has the default noted on its field.
type Config struct {
	// Backends lists the replica base URLs (http://host:port; a bare
	// host:port gets the scheme prefixed). Required, order-insensitive —
	// ring placement depends only on the address set.
	Backends []string
	// VirtualNodes is the ring points per backend. Default 128.
	VirtualNodes int
	// MaxAttempts caps upstream attempts per request (first try +
	// retries + hedges). Default 3, clamped to len(Backends).
	MaxAttempts int
	// RetryBackoff and RetryBackoffMax bound the capped exponential
	// backoff (±20% jitter) between retry attempts. Defaults 5ms, 100ms.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// AttemptTimeout bounds each upstream attempt. Default 2s.
	AttemptTimeout time.Duration
	// HedgeAfter sets the hedge budget: >0 fixed, 0 auto (the observed
	// upstream p99, clamped to [HedgeMin, HedgeMax], once 64 samples
	// exist), <0 disables hedging.
	HedgeAfter time.Duration
	// HedgeMin and HedgeMax clamp the auto hedge budget. Defaults 2ms, 1s.
	HedgeMin time.Duration
	HedgeMax time.Duration
	// Breaker configures each backend's circuit breaker.
	Breaker BreakerConfig
	// HealthInterval and HealthTimeout tune the /readyz pollers.
	// Defaults 250ms, 1s.
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// EjectAfter and ReadmitAfter are the consecutive-probe thresholds
	// for leaving and rejoining the replica set. Defaults 2, 1.
	EjectAfter   int
	ReadmitAfter int
	// Rate and Burst configure per-client token-bucket shedding
	// (tokens/second and bucket size). Rate 0 disables.
	Rate  float64
	Burst float64
	// MaxBody bounds request and response bodies. Default 1 MiB.
	MaxBody int64
	// KeyCacheSize bounds the body-hash → routing-key cache that spares
	// the gateway re-parsing hot request bodies. Default 4096.
	KeyCacheSize int
	// Transport overrides the upstream transport (tests). Nil selects a
	// keep-alive transport sized for the backend count.
	Transport http.RoundTripper
}

func (c *Config) defaults() error {
	if len(c.Backends) == 0 {
		return errors.New("gateway: Config.Backends is required")
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.MaxAttempts > len(c.Backends) {
		c.MaxAttempts = len(c.Backends)
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 100 * time.Millisecond
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 2 * time.Second
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 2 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = time.Second
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 2
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 1
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.KeyCacheSize <= 0 {
		c.KeyCacheSize = 4096
	}
	return nil
}

// Gateway is the cluster front door. Create with New, expose via
// Handler, stop with Close.
type Gateway struct {
	cfg      Config
	backends []*Backend
	ring     *Ring
	metrics  *Metrics
	client   *http.Client
	limiter  *RateLimiter
	keys     *keyCache
	mux      *http.ServeMux
	ready    atomic.Bool
	done     chan struct{}
	wg       sync.WaitGroup
}

// New builds the gateway and starts its health-check loops. Backends
// start healthy — the first failed probes eject them — so a cluster
// boots routable without waiting a full poll interval.
func New(cfg Config) (*Gateway, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:     cfg,
		metrics: NewMetrics(),
		keys:    newKeyCache(cfg.KeyCacheSize),
		limiter: NewRateLimiter(RateLimiterConfig{Rate: cfg.Rate, Burst: cfg.Burst}),
		done:    make(chan struct{}),
	}
	ids := make([]string, len(cfg.Backends))
	for i, raw := range cfg.Backends {
		id, url, err := normalizeBackend(raw)
		if err != nil {
			return nil, err
		}
		ids[i] = id
		b := &Backend{ID: id, URL: url, Breaker: NewBreaker(cfg.Breaker)}
		b.healthy.Store(true)
		g.backends = append(g.backends, b)
	}
	g.ring = NewRing(ids, cfg.VirtualNodes)
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        64 * len(cfg.Backends),
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	g.client = &http.Client{Transport: transport}

	g.mux = http.NewServeMux()
	g.mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		g.proxy(w, r, "/v1/classify", g.classifyKey)
	})
	g.mux.HandleFunc("POST /v1/classify/vector", func(w http.ResponseWriter, r *http.Request) {
		g.proxy(w, r, "/v1/classify/vector", bodyKey)
	})
	// /v1/similar routes on the same graph key as /v1/classify: a
	// sample queried for neighbors right after classification lands on
	// the replica whose extractor cache is already warm for its CFG.
	// The same retry/hedge/breaker ladder applies.
	g.mux.HandleFunc("POST /v1/similar", func(w http.ResponseWriter, r *http.Request) {
		g.proxy(w, r, "/v1/similar", g.classifyKey)
	})
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /readyz", g.handleReadyz)
	g.mux.HandleFunc("GET /backends", g.handleBackends)
	g.ready.Store(true)

	for i, b := range g.backends {
		g.wg.Add(1)
		go g.healthLoop(b, int64(i+1))
	}
	return g, nil
}

// normalizeBackend splits a configured backend into its ring ID
// (host:port) and base URL.
func normalizeBackend(raw string) (id, url string, err error) {
	url = raw
	switch {
	case len(raw) >= 7 && raw[:7] == "http://":
		id = raw[7:]
	case len(raw) >= 8 && raw[:8] == "https://":
		id = raw[8:]
	default:
		id = raw
		url = "http://" + raw
	}
	for len(id) > 0 && id[len(id)-1] == '/' {
		id = id[:len(id)-1]
		url = url[:len(url)-1]
	}
	if _, _, err := net.SplitHostPort(id); err != nil {
		return "", "", fmt.Errorf("gateway: backend %q: want host:port: %w", raw, err)
	}
	return id, url, nil
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Metrics returns the gateway's metrics registry.
func (g *Gateway) Metrics() *Metrics { return g.metrics }

// Backends returns the replica set (read-only use).
func (g *Gateway) Backends() []*Backend { return g.backends }

// NotReady flips /readyz to 503 so upstream load balancers stop routing
// here; the first step of a graceful drain.
func (g *Gateway) NotReady() { g.ready.Store(false) }

// Close stops the health-check loops. In-flight proxied requests are
// unaffected (the caller drains its http.Server separately).
func (g *Gateway) Close() {
	select {
	case <-g.done:
	default:
		close(g.done)
	}
	g.wg.Wait()
}

// candidates returns the shard's live failover chain for a key: ring
// successors that are health-checked ready and breaker-admitted, capped
// at MaxAttempts. Empty means the whole shard is down.
func (g *Gateway) candidates(key uint64) []*Backend {
	nodes := g.ring.Successors(key, g.cfg.MaxAttempts, func(n int) bool {
		return g.backends[n].Available()
	})
	out := make([]*Backend, len(nodes))
	for i, n := range nodes {
		out[i] = g.backends[n]
	}
	return out
}

// proxy is the shared request path: shed, read, route, forward, relay.
func (g *Gateway) proxy(w http.ResponseWriter, r *http.Request, path string, keyFn func(body []byte, contentType string) uint64) {
	if ok, retryAfter := g.limiter.Allow(clientKey(r), time.Now()); !ok {
		g.metrics.RateLimited.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
		g.respondError(w, http.StatusTooManyRequests, "client rate limit exceeded")
		return
	}
	g.metrics.Requests.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			g.respondError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", g.cfg.MaxBody))
		} else {
			g.respondError(w, http.StatusBadRequest, "reading body: "+err.Error())
		}
		return
	}
	contentType := r.Header.Get("Content-Type")
	key := keyFn(body, contentType)
	// Forward the query string (e.g. /v1/similar?k=10) but never let it
	// into the routing key — placement depends only on content.
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	cands := g.candidates(key)
	if len(cands) == 0 {
		g.metrics.Unroutable.Add(1)
		w.Header().Set("Retry-After", "1")
		g.respondError(w, http.StatusServiceUnavailable, "no live replica for shard")
		return
	}
	res := g.forward(r.Context(), path, contentType, body, cands)
	if res.err != nil {
		// Every live candidate failed (or the client gave up). Degrade,
		// don't hang: tell the client when to come back.
		g.metrics.Unroutable.Add(1)
		w.Header().Set("Retry-After", "1")
		g.respondError(w, http.StatusServiceUnavailable, "all shard replicas failed: "+res.err.Error())
		return
	}
	g.metrics.Response(res.status)
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// classifyKey computes the routing key for a /v1/classify body: the
// program's features.GraphKey, so textual re-encodings of the same CFG
// (a renamed JSON sample, the same graph re-submitted) route to the same
// replica and hit its warm extractor cache. Unparseable bodies fall back
// to the body hash — the replica will reject them with 400, any replica
// will do. Keys are memoized under the body's SHA-256 so hot bodies
// (replayed probe streams) skip the parse entirely.
func (g *Gateway) classifyKey(body []byte, contentType string) uint64 {
	sum := sha256.Sum256(body)
	if key, ok := g.keys.get(sum); ok {
		g.metrics.KeyCacheHits.Add(1)
		return key
	}
	g.metrics.KeyCacheMisses.Add(1)
	text := body
	if contentType == "application/json" || contentType == "application/json; charset=utf-8" {
		var req struct {
			Program string `json:"program"`
		}
		if err := json.Unmarshal(body, &req); err == nil {
			text = []byte(req.Program)
		}
	}
	key := KeyFromSum(sum)
	if prog, err := ir.Parse(string(text)); err == nil {
		if cfg, err := ir.Disassemble(prog); err == nil {
			key = KeyFromSum(features.GraphKey(cfg.G()))
		}
	}
	g.keys.put(sum, key)
	return key
}

// bodyKey routes a raw-vector request by its body hash: there is no
// graph, hence no cache affinity to preserve — the hash just keeps the
// placement deterministic and evenly spread.
func bodyKey(body []byte, _ string) uint64 {
	return KeyFromSum(sha256.Sum256(body))
}

// clientKey identifies a client for rate limiting: the connection's
// remote IP.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterSeconds renders a Retry-After value, at least 1 second.
func retryAfterSeconds(d time.Duration) string {
	s := int(d / time.Second)
	if d%time.Second != 0 || s == 0 {
		s++
	}
	return strconv.Itoa(s)
}

// respondError writes the same JSON error envelope the replicas use.
func (g *Gateway) respondError(w http.ResponseWriter, status int, msg string) {
	g.metrics.Response(status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: msg})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	g.metrics.WriteText(w, g.backends)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// handleReadyz answers ready while the gateway is not draining and at
// least one backend is routable.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !g.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	for _, b := range g.backends {
		if b.Healthy() {
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, "ready\n")
			return
		}
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	io.WriteString(w, "no healthy backends\n")
}

// handleBackends dumps the replica set's state as JSON (debugging aid).
func (g *Gateway) handleBackends(w http.ResponseWriter, r *http.Request) {
	type row struct {
		ID       string `json:"id"`
		Healthy  bool   `json:"healthy"`
		Breaker  string `json:"breaker"`
		Attempts uint64 `json:"attempts"`
		Failures uint64 `json:"failures"`
		Trips    uint64 `json:"breaker_trips"`
		Ejected  uint64 `json:"ejections"`
		// ModelVer is the replica's serving model version as of its last
		// successful ready probe (0 = not yet scraped).
		ModelVer uint64 `json:"model_version"`
	}
	rows := make([]row, len(g.backends))
	for i, b := range g.backends {
		rows[i] = row{
			ID:       b.ID,
			Healthy:  b.Healthy(),
			Breaker:  b.Breaker.State().String(),
			Attempts: b.Attempts.Load(),
			Failures: b.Failures.Load(),
			Trips:    b.Breaker.Trips(),
			Ejected:  b.EjectCount.Load(),
			ModelVer: b.ModelVer.Load(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rows)
}

// keyCache is a bounded LRU from body SHA-256 to routing key, sparing
// the gateway an ir.Parse + Disassemble per repeated body.
type keyCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List
	byKey map[[sha256.Size]byte]*list.Element
}

type keyEntry struct {
	sum [sha256.Size]byte
	key uint64
}

func newKeyCache(capacity int) *keyCache {
	return &keyCache{
		cap:   capacity,
		lru:   list.New(),
		byKey: make(map[[sha256.Size]byte]*list.Element),
	}
}

func (c *keyCache) get(sum [sha256.Size]byte) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[sum]
	if !ok {
		return 0, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*keyEntry).key, true
}

func (c *keyCache) put(sum [sha256.Size]byte, key uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[sum]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[sum] = c.lru.PushFront(&keyEntry{sum: sum, key: key})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*keyEntry).sum)
	}
}
