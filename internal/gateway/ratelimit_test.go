package gateway

import (
	"fmt"
	"testing"
	"time"
)

// A fresh client gets Burst tokens, then rejections with a sensible
// Retry-After, then refill at Rate.
func TestRateLimiterBurstAndRefill(t *testing.T) {
	l := NewRateLimiter(RateLimiterConfig{Rate: 10, Burst: 3})
	now := time.Unix(1700000000, 0)
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("c", now); !ok {
			t.Fatalf("request %d within burst rejected", i+1)
		}
	}
	ok, retry := l.Allow("c", now)
	if ok {
		t.Fatal("request past burst admitted")
	}
	// Bucket is exactly empty: next token in 1/Rate = 100ms.
	if retry <= 0 || retry > 150*time.Millisecond {
		t.Fatalf("retryAfter = %v, want ~100ms", retry)
	}
	// After 100ms one token has accrued.
	if ok, _ := l.Allow("c", now.Add(100*time.Millisecond)); !ok {
		t.Fatal("token accrued after 1/Rate not granted")
	}
	// Refill caps at Burst: a long idle spell doesn't bank extra tokens.
	later := now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("c", later); !ok {
			t.Fatalf("post-idle request %d rejected", i+1)
		}
	}
	if ok, _ := l.Allow("c", later); ok {
		t.Fatal("idle refill exceeded burst")
	}
}

// Buckets are per client: one client exhausting its bucket does not
// starve another.
func TestRateLimiterPerClientIsolation(t *testing.T) {
	l := NewRateLimiter(RateLimiterConfig{Rate: 1, Burst: 1})
	now := time.Unix(1700000000, 0)
	if ok, _ := l.Allow("a", now); !ok {
		t.Fatal("client a's first request rejected")
	}
	if ok, _ := l.Allow("a", now); ok {
		t.Fatal("client a's second request admitted")
	}
	if ok, _ := l.Allow("b", now); !ok {
		t.Fatal("client b starved by client a")
	}
}

// The bucket map stays bounded under client-address rotation.
func TestRateLimiterBoundedClients(t *testing.T) {
	l := NewRateLimiter(RateLimiterConfig{Rate: 1, Burst: 1, MaxClients: 8})
	now := time.Unix(1700000000, 0)
	for i := 0; i < 100; i++ {
		l.Allow(fmt.Sprintf("client-%d", i), now.Add(time.Duration(i)*10*time.Second))
	}
	if n := l.Clients(); n > 8 {
		t.Fatalf("tracked %d clients, want <= 8", n)
	}
}

// Rate <= 0 disables limiting entirely via a nil limiter.
func TestRateLimiterDisabled(t *testing.T) {
	l := NewRateLimiter(RateLimiterConfig{Rate: 0})
	if l != nil {
		t.Fatal("Rate=0 should return nil")
	}
	if ok, _ := l.Allow("anyone", time.Now()); !ok {
		t.Fatal("nil limiter should allow everything")
	}
	if l.Clients() != 0 {
		t.Fatal("nil limiter tracks no clients")
	}
}
