package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

func ringIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("10.0.0.%d:8377", i+1)
	}
	return ids
}

func randomKeys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	return keys
}

// The ring is a pure function of the ID set: two rings built from the
// same IDs agree on every placement (a gateway restart, or a second
// gateway instance, preserves cache affinity).
func TestRingDeterministic(t *testing.T) {
	ids := ringIDs(5)
	a, b := NewRing(ids, 128), NewRing(ids, 128)
	for _, key := range randomKeys(2000, 1) {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rings disagree on key %d: %d vs %d", key, a.Owner(key), b.Owner(key))
		}
	}
}

// Property: load balance. Over many random keys, no node's share strays
// far from the mean — 128 vnodes keeps the max/mean ratio under ~1.35
// and min/mean above ~0.65 for small clusters.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		r := NewRing(ringIDs(n), 128)
		counts := make([]int, n)
		keys := randomKeys(20000, 42)
		for _, key := range keys {
			counts[r.Owner(key)]++
		}
		mean := float64(len(keys)) / float64(n)
		for node, c := range counts {
			ratio := float64(c) / mean
			if ratio < 0.6 || ratio > 1.4 {
				t.Errorf("n=%d node=%d share ratio %.2f outside [0.6, 1.4] (count=%d mean=%.0f)",
					n, node, ratio, c, mean)
			}
		}
	}
}

// Property: minimal movement on join. Adding one node to an N-node ring
// moves roughly K/(N+1) of K keys — we allow 2x slack — and every moved
// key moves TO the new node (no shuffling among survivors).
func TestRingJoinMinimalMovement(t *testing.T) {
	const n, k = 4, 20000
	ids := ringIDs(n)
	before := NewRing(ids, 128)
	after := NewRing(append(append([]string{}, ids...), "10.0.0.99:8377"), 128)
	newNode := n // appended last

	keys := randomKeys(k, 7)
	moved := 0
	for _, key := range keys {
		a, b := before.Owner(key), after.Owner(key)
		if a == b {
			continue
		}
		moved++
		if b != newNode {
			t.Fatalf("key %d moved %d→%d, not to the new node %d", key, a, b, newNode)
		}
	}
	limit := 2 * k / (n + 1)
	if moved > limit {
		t.Errorf("join moved %d of %d keys, want <= %d (~K/(N+1) with 2x slack)", moved, k, limit)
	}
	if moved == 0 {
		t.Error("join moved no keys; the new node owns nothing")
	}
}

// Property: minimal movement on leave. Removing one node moves exactly
// the keys it owned, and nothing else.
func TestRingLeaveMinimalMovement(t *testing.T) {
	const n, k = 5, 20000
	ids := ringIDs(n)
	before := NewRing(ids, 128)
	gone := n - 1
	after := NewRing(ids[:gone], 128)

	for _, key := range randomKeys(k, 13) {
		a, b := before.Owner(key), after.Owner(key)
		if a == gone {
			if b == gone {
				t.Fatalf("key %d still owned by removed node", key)
			}
			continue // orphaned keys may land anywhere
		}
		if a != b {
			t.Fatalf("key %d moved %d→%d though its owner %d survived", key, a, b, a)
		}
	}
}

// Filtering a node via the Successors accept predicate produces the same
// placement as removing it from the ring: ejection-by-filter IS the
// removal remap, so a bounced backend's keys come back untouched.
func TestRingFilterEquivalentToRemoval(t *testing.T) {
	const n = 5
	ids := ringIDs(n)
	full := NewRing(ids, 128)
	down := 2
	reduced := NewRing(append(append([]string{}, ids[:down]...), ids[down+1:]...), 128)
	// reduced ring's node indices skip `down`; map back to full-ring indices.
	toFull := func(node int) int {
		if node >= down {
			return node + 1
		}
		return node
	}
	for _, key := range randomKeys(5000, 99) {
		got := full.Successors(key, 1, func(node int) bool { return node != down })
		want := reduced.Successors(key, 1, nil)
		if len(got) != 1 || len(want) != 1 || got[0] != toFull(want[0]) {
			t.Fatalf("key %d: filtered owner %v != reduced-ring owner %v", key, got, want)
		}
	}
}

// Successors returns distinct nodes in clockwise order, first entry the
// owner, and caps at the node count.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(ringIDs(4), 64)
	for _, key := range randomKeys(500, 3) {
		succ := r.Successors(key, 10, nil)
		if len(succ) != 4 {
			t.Fatalf("want all 4 nodes, got %v", succ)
		}
		if succ[0] != r.Owner(key) {
			t.Fatalf("first successor %d != owner %d", succ[0], r.Owner(key))
		}
		seen := map[int]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("duplicate node %d in %v", n, succ)
			}
			seen[n] = true
		}
	}
	if got := r.Successors(0, 0, nil); got != nil {
		t.Errorf("max=0 should return nil, got %v", got)
	}
	if got := (&Ring{}).Successors(0, 3, nil); got != nil {
		t.Errorf("empty ring should return nil, got %v", got)
	}
	if (&Ring{}).Owner(42) != -1 {
		t.Error("empty ring Owner should be -1")
	}
}

// An accept predicate rejecting everything yields no candidates (the
// all-replicas-down shard).
func TestRingSuccessorsAllRejected(t *testing.T) {
	r := NewRing(ringIDs(3), 64)
	if got := r.Successors(1, 3, func(int) bool { return false }); len(got) != 0 {
		t.Errorf("want no survivors, got %v", got)
	}
}

// KeyFromSum projects the leading 8 bytes big-endian — pinned so stored
// routing expectations stay valid.
func TestKeyFromSum(t *testing.T) {
	sum := sha256.Sum256([]byte("probe"))
	want := binary.BigEndian.Uint64(sum[:8])
	if got := KeyFromSum(sum); got != want {
		t.Fatalf("KeyFromSum = %d, want %d", got, want)
	}
}
