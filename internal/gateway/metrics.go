package gateway

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"advmal/internal/serve"
)

// Metrics is the gateway's observability registry. Counters follow the
// one-fact-one-counter rule the resilience tests pin: Requests counts
// each client request exactly once no matter how many attempts, retries,
// or hedges it fans into — those are counted separately — and responses
// are counted once under the status the client actually saw.
type Metrics struct {
	Requests    atomic.Uint64 // client requests admitted past rate limiting
	RateLimited atomic.Uint64 // 429s from the per-client token bucket
	Unroutable  atomic.Uint64 // 503s: no live replica for the key's shard

	Attempts  atomic.Uint64 // upstream attempts launched (first + retries + hedges)
	Retries   atomic.Uint64 // attempts launched because a prior one failed
	Hedges    atomic.Uint64 // attempts launched because a prior one was slow
	HedgeWins atomic.Uint64 // hedged attempts that delivered the client response

	BreakerTrips atomic.Uint64 // breaker transitions to open, all backends
	Ejections    atomic.Uint64 // health-check ejections, all backends
	Readmissions atomic.Uint64 // health-check re-admissions, all backends

	KeyCacheHits   atomic.Uint64 // routing keys served from the body-hash cache
	KeyCacheMisses atomic.Uint64

	// BackendLat observes successful upstream attempt latency; its p99
	// feeds the auto hedge budget.
	BackendLat *serve.Histogram

	mu        sync.Mutex
	responses map[int]uint64 // client-visible responses by status
}

// NewMetrics returns a registry with the standard latency buckets.
func NewMetrics() *Metrics {
	return &Metrics{
		BackendLat: serve.NewHistogram(50e-6, 100e-6, 250e-6, 500e-6, 1e-3,
			2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1, 2.5),
		responses: make(map[int]uint64),
	}
}

// Response records the status the client saw. Exactly one call per
// client request.
func (m *Metrics) Response(status int) {
	m.mu.Lock()
	m.responses[status]++
	m.mu.Unlock()
}

// Responses returns a copy of the by-status response counts.
func (m *Metrics) Responses() map[int]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]uint64, len(m.responses))
	for k, v := range m.responses {
		out[k] = v
	}
	return out
}

// WriteText emits every gateway metric in Prometheus text exposition
// format, including per-backend health, breaker state, and traffic.
func (m *Metrics) WriteText(w io.Writer, backends []*Backend) {
	fmt.Fprintf(w, "gateway_requests_total %d\n", m.Requests.Load())
	fmt.Fprintf(w, "gateway_rate_limited_total %d\n", m.RateLimited.Load())
	fmt.Fprintf(w, "gateway_unroutable_total %d\n", m.Unroutable.Load())
	fmt.Fprintf(w, "gateway_attempts_total %d\n", m.Attempts.Load())
	fmt.Fprintf(w, "gateway_retries_total %d\n", m.Retries.Load())
	fmt.Fprintf(w, "gateway_hedges_total %d\n", m.Hedges.Load())
	fmt.Fprintf(w, "gateway_hedge_wins_total %d\n", m.HedgeWins.Load())
	fmt.Fprintf(w, "gateway_breaker_trips_total %d\n", m.BreakerTrips.Load())
	fmt.Fprintf(w, "gateway_ejections_total %d\n", m.Ejections.Load())
	fmt.Fprintf(w, "gateway_readmissions_total %d\n", m.Readmissions.Load())
	fmt.Fprintf(w, "gateway_key_cache_hits_total %d\n", m.KeyCacheHits.Load())
	fmt.Fprintf(w, "gateway_key_cache_misses_total %d\n", m.KeyCacheMisses.Load())

	m.mu.Lock()
	statuses := make([]int, 0, len(m.responses))
	for s := range m.responses {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	for _, s := range statuses {
		fmt.Fprintf(w, "gateway_responses_total{code=\"%d\"} %d\n", s, m.responses[s])
	}
	m.mu.Unlock()

	for _, b := range backends {
		healthy := 0
		if b.Healthy() {
			healthy = 1
		}
		fmt.Fprintf(w, "gateway_backend_healthy{backend=%q} %d\n", b.ID, healthy)
		fmt.Fprintf(w, "gateway_backend_breaker_state{backend=%q,state=%q} 1\n",
			b.ID, b.Breaker.State())
		fmt.Fprintf(w, "gateway_backend_breaker_trips_total{backend=%q} %d\n", b.ID, b.Breaker.Trips())
		fmt.Fprintf(w, "gateway_backend_attempts_total{backend=%q} %d\n", b.ID, b.Attempts.Load())
		fmt.Fprintf(w, "gateway_backend_failures_total{backend=%q} %d\n", b.ID, b.Failures.Load())
		fmt.Fprintf(w, "gateway_backend_ejections_total{backend=%q} %d\n", b.ID, b.EjectCount.Load())
	}
	m.BackendLat.WritePrometheus(w, "gateway_backend_latency_seconds")
}
