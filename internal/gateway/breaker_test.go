package gateway

import (
	"testing"
	"time"
)

// fakeClock drives a Breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time              { return c.t }
func (c *fakeClock) advance(d time.Duration)     { c.t = c.t.Add(d) }
func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	b := NewBreaker(BreakerConfig{FailThreshold: threshold, Cooldown: cooldown})
	b.now = clk.now
	return b, clk
}

// Closed → open at exactly FailThreshold consecutive failures; the trip
// is reported exactly once.
func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if b.Failure() {
			t.Fatalf("failure %d tripped early", i+1)
		}
		if b.State() != BreakerClosed {
			t.Fatalf("failure %d left state %v, want closed", i+1, b.State())
		}
	}
	if !b.Failure() {
		t.Fatal("third failure should trip")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after trip, want open", b.State())
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
}

// A success resets the consecutive-failure count: interleaved failures
// never accumulate to a trip.
func TestBreakerSuccessResetsCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 10; i++ {
		b.Failure()
		b.Failure()
		b.Success()
	}
	if b.State() != BreakerClosed || b.Trips() != 0 {
		t.Fatalf("state=%v trips=%d, want closed/0", b.State(), b.Trips())
	}
}

// Open → half-open after Cooldown; the half-open probe is throttled to
// one per cooldown window; a probe success closes.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker admitted immediately")
	}
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("admitted before cooldown elapsed")
	}
	clk.advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed, probe should be admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half_open", b.State())
	}
	// Second probe inside the same window is throttled.
	if b.Allow() {
		t.Fatal("second half-open probe admitted within the window")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after probe success, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker should admit")
	}
}

// A failed half-open probe re-trips: back to open, another cooldown,
// and the trip counter increments again.
func TestBreakerHalfOpenReTrip(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure() // trip 1
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	if !b.Failure() {
		t.Fatal("half-open failure should report a trip")
	}
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("state=%v trips=%d, want open/2", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted before its new cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second recovery probe not admitted")
	}
}

// A straggler failure landing while already open neither extends the
// cooldown nor counts a new trip.
func TestBreakerStragglerFailureWhileOpen(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure() // trip
	clk.advance(900 * time.Millisecond)
	if b.Failure() {
		t.Fatal("straggler failure while open counted as a trip")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	clk.advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("straggler extended the cooldown")
	}
}

// Half-open probes unthrottle once the window passes even without a
// verdict, so a lost probe response cannot wedge the breaker.
func TestBreakerHalfOpenProbeWindow(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	b.Allow() // probe 1, verdict never arrives
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("next window's probe should be admitted")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	if b.cfg.FailThreshold != 5 || b.cfg.Cooldown != 2*time.Second {
		t.Fatalf("defaults = %+v, want threshold 5 cooldown 2s", b.cfg)
	}
	for _, want := range []struct {
		s    BreakerState
		name string
	}{{BreakerClosed, "closed"}, {BreakerOpen, "open"}, {BreakerHalfOpen, "half_open"}, {BreakerState(9), "unknown"}} {
		if got := want.s.String(); got != want.name {
			t.Errorf("State(%d).String() = %q, want %q", want.s, got, want.name)
		}
	}
}
