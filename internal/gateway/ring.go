package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the default number of ring points per backend.
// At 128 points the expected per-backend load imbalance over random keys
// is within ~±20% of the mean (the ring property test pins this).
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over a fixed set of node
// IDs. Each node contributes VirtualNodes points, hashed from its ID, so
// the mapping is a pure function of the ID set: two gateways configured
// with the same backends route identically, and restarting the gateway
// preserves every replica's cache affinity.
//
// Membership changes are modeled by building a new ring (the backend set
// is static per gateway process) or, at lookup time, by filtering nodes
// with an accept predicate — skipping a node hands its keys to the next
// point clockwise, which is exactly the remap a removal would cause, so
// ejected backends lose their keys to their ring successors and get them
// back untouched on re-admission.
type Ring struct {
	points []ringPoint
	n      int
}

type ringPoint struct {
	hash uint64
	node int
}

// NewRing builds a ring over the given node IDs with vnodes points per
// node (vnodes <= 0 selects DefaultVirtualNodes).
func NewRing(ids []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{n: len(ids), points: make([]ringPoint, 0, len(ids)*vnodes)}
	for node, id := range ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(id, v), node: node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node // deterministic tie-break
	})
	return r
}

// pointHash places one virtual node on the ring. SHA-256 keeps the
// points uniformly spread regardless of how similar the IDs are
// (host:8001 vs host:8002 differ by one byte).
func pointHash(id string, v int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", id, v)))
	return binary.BigEndian.Uint64(sum[:8])
}

// Len returns the number of nodes on the ring.
func (r *Ring) Len() int { return r.n }

// Owner returns the node owning key: the node of the first ring point
// clockwise from key (wrapping). -1 when the ring is empty.
func (r *Ring) Owner(key uint64) int {
	if len(r.points) == 0 {
		return -1
	}
	return r.points[r.search(key)].node
}

// Successors walks the ring clockwise from key and returns up to max
// distinct nodes passing accept (nil accepts every node). The first
// entry is the key's owner among accepted nodes; subsequent entries are
// the natural failover order, i.e. where the key's shard replicates.
func (r *Ring) Successors(key uint64, max int, accept func(node int) bool) []int {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	if max > r.n {
		max = r.n
	}
	out := make([]int, 0, max)
	seen := make(map[int]bool, max)
	start := r.search(key)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		node := r.points[(start+i)%len(r.points)].node
		if seen[node] {
			continue
		}
		seen[node] = true
		if accept == nil || accept(node) {
			out = append(out, node)
		}
	}
	return out
}

// search returns the index of the first point with hash >= key,
// wrapping to 0 past the end.
func (r *Ring) search(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		return 0
	}
	return i
}

// KeyFromSum projects a 32-byte content hash (features.GraphKey or a
// body SHA-256) onto the ring's key space.
func KeyFromSum(sum [sha256.Size]byte) uint64 {
	return binary.BigEndian.Uint64(sum[:8])
}
