// Package tensor provides the minimal dense float64 tensor used by the
// neural-network substrate. Tensors are row-major and at most rank 2; the
// CNN works on (channels, length) activations and flat vectors.
package tensor

import (
	"fmt"
)

// T is a dense row-major tensor of rank 1 or 2.
type T struct {
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

// New returns a zero tensor with the given shape.
func New(shape ...int) *T {
	size := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		size *= d
	}
	return &T{Shape: append([]int(nil), shape...), Data: make([]float64, size)}
}

// FromSlice wraps data (not copied) as a rank-1 tensor.
func FromSlice(data []float64) *T {
	return &T{Shape: []int{len(data)}, Data: data}
}

// New2D returns a zero (rows, cols) tensor.
func New2D(rows, cols int) *T { return New(rows, cols) }

// Size returns the total number of elements.
func (t *T) Size() int { return len(t.Data) }

// Rows returns the first dimension (1 for rank-1 tensors).
func (t *T) Rows() int {
	if len(t.Shape) < 2 {
		return 1
	}
	return t.Shape[0]
}

// Cols returns the last dimension.
func (t *T) Cols() int {
	if len(t.Shape) == 0 {
		return 0
	}
	return t.Shape[len(t.Shape)-1]
}

// At returns element (r, c) of a rank-2 tensor.
func (t *T) At(r, c int) float64 { return t.Data[r*t.Cols()+c] }

// Set assigns element (r, c) of a rank-2 tensor.
func (t *T) Set(r, c int, v float64) { t.Data[r*t.Cols()+c] = v }

// Row returns the slice aliasing row r of a rank-2 tensor.
func (t *T) Row(r int) []float64 {
	c := t.Cols()
	return t.Data[r*c : (r+1)*c]
}

// Clone returns a deep copy.
func (t *T) Clone() *T {
	return &T{
		Shape: append([]int(nil), t.Shape...),
		Data:  append([]float64(nil), t.Data...),
	}
}

// Zero sets every element to 0 in place.
func (t *T) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// SameShape reports whether t and u have identical shapes.
func (t *T) SameShape(u *T) bool {
	if len(t.Shape) != len(u.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if u.Shape[i] != d {
			return false
		}
	}
	return true
}

// String renders the shape and a size summary.
func (t *T) String() string {
	return fmt.Sprintf("tensor%v(%d)", t.Shape, t.Size())
}
