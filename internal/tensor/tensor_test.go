package tensor

import (
	"testing"
)

func TestNewShapes(t *testing.T) {
	tt := New(2, 3)
	if tt.Size() != 6 || tt.Rows() != 2 || tt.Cols() != 3 {
		t.Errorf("New(2,3): size=%d rows=%d cols=%d", tt.Size(), tt.Rows(), tt.Cols())
	}
	v := New(5)
	if v.Rows() != 1 || v.Cols() != 5 {
		t.Errorf("rank-1: rows=%d cols=%d, want 1/5", v.Rows(), v.Cols())
	}
	empty := &T{}
	if empty.Cols() != 0 {
		t.Errorf("empty Cols = %d, want 0", empty.Cols())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with negative dim did not panic")
		}
	}()
	New(-1)
}

func TestAtSetRow(t *testing.T) {
	tt := New2D(2, 3)
	tt.Set(1, 2, 7)
	if tt.At(1, 2) != 7 {
		t.Errorf("At(1,2) = %v, want 7", tt.At(1, 2))
	}
	row := tt.Row(1)
	if len(row) != 3 || row[2] != 7 {
		t.Errorf("Row(1) = %v", row)
	}
	row[0] = 5 // Row aliases the tensor
	if tt.At(1, 0) != 5 {
		t.Error("Row does not alias underlying data")
	}
}

func TestFromSliceAliases(t *testing.T) {
	data := []float64{1, 2, 3}
	tt := FromSlice(data)
	data[0] = 9
	if tt.Data[0] != 9 {
		t.Error("FromSlice must wrap, not copy")
	}
	if tt.Size() != 3 {
		t.Errorf("Size = %d, want 3", tt.Size())
	}
}

func TestCloneAndZero(t *testing.T) {
	a := FromSlice([]float64{1, 2})
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 1 {
		t.Error("Clone shares data")
	}
	a.Zero()
	if a.Data[0] != 0 || a.Data[1] != 0 {
		t.Error("Zero did not clear data")
	}
}

func TestSameShape(t *testing.T) {
	if !New(2, 3).SameShape(New(2, 3)) {
		t.Error("identical shapes reported different")
	}
	if New(2, 3).SameShape(New(3, 2)) {
		t.Error("different shapes reported same")
	}
	if New(6).SameShape(New(2, 3)) {
		t.Error("different ranks reported same")
	}
}

func TestString(t *testing.T) {
	if s := New(2, 3).String(); s != "tensor[2 3](6)" {
		t.Errorf("String() = %q", s)
	}
}
