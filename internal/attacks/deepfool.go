package attacks

import (
	"advmal/internal/nn"
)

// DeepFool (Moosavi-Dezfooli et al.) iteratively linearizes the classifier
// and takes the minimal L2 step to the nearest decision boundary, with a
// small overshoot so the iterate actually crosses it. The paper uses
// overshoot 0.02 and at most 100 iterations.
type DeepFool struct {
	targetSelector
	Overshoot float64
	Iters     int
}

// NewDeepFool returns a DeepFool attack; zero parameters select the
// paper's values.
func NewDeepFool(overshoot float64, iters int) *DeepFool {
	if overshoot <= 0 {
		overshoot = DefaultOvershoot
	}
	if iters <= 0 {
		iters = DefaultDeepFoolIters
	}
	return &DeepFool{Overshoot: overshoot, Iters: iters}
}

// Name implements Attack.
func (d *DeepFool) Name() string { return "DeepFool" }

// Craft implements Attack. For the binary detector the boundary is
// f(x) = z_t - z_y; each step moves -f(x)/||w||^2 * w with
// w = dz_t/dx - dz_y/dx, scaled by (1+overshoot).
func (d *DeepFool) Craft(eng nn.Engine, x []float64, label int) []float64 {
	target := d.target(eng, x, label)
	adv := cloneVec(x)
	w := make([]float64, len(adv)) // boundary normal, reused across iterations
	for it := 0; it < d.Iters; it++ {
		logits, jac := eng.Jacobian(adv)
		if nn.Argmax(logits) == target {
			break
		}
		f := logits[target] - logits[label]
		for i := range w {
			w[i] = jac[target][i] - jac[label][i]
		}
		norm2 := 0.0
		for _, wi := range w {
			norm2 += wi * wi
		}
		if norm2 == 0 {
			break
		}
		// Before misclassification f < 0, so -f/||w||^2 > 0 and the step
		// moves along +w toward the boundary.
		scale := (-f / norm2) * (1 + d.Overshoot)
		for i := range adv {
			adv[i] += scale * w[i]
		}
		clipBox(adv)
	}
	return adv
}

var _ Attack = (*DeepFool)(nil)
