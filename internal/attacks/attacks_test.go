package attacks

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"advmal/internal/nn"
)

// testModel caches a small trained model on [0,1]-box blob data shared
// across attack tests.
var (
	modelOnce sync.Once
	model     *nn.Network
	modelX    [][]float64
	modelY    []int
)

// trainedModel returns a deterministic MLP with ~100% accuracy on a
// two-cluster problem inside the [0,1] box (clusters at 0.3 and 0.7).
func trainedModel(t *testing.T) (*nn.Network, [][]float64, []int) {
	t.Helper()
	modelOnce.Do(func() {
		rng := rand.New(rand.NewSource(4))
		n, dim := 160, 6
		modelX = make([][]float64, n)
		modelY = make([]int, n)
		for i := range modelX {
			label := i % 2
			center := 0.3
			if label == 1 {
				center = 0.7
			}
			v := make([]float64, dim)
			for j := range v {
				v[j] = center + rng.NormFloat64()*0.04
			}
			modelX[i] = v
			modelY[i] = label
		}
		model = nn.SmallMLP(5, dim, 24, 2)
		tr := &nn.Trainer{Epochs: 60, BatchSize: 16, Seed: 6, Workers: 1}
		if _, err := tr.Fit(model, modelX, modelY); err != nil {
			panic(err)
		}
	})
	m := nn.Evaluate(model, modelX, modelY)
	if m.Accuracy < 0.99 {
		t.Fatalf("test model underfit: %v", m)
	}
	return model, modelX, modelY
}

func inBox(v []float64) bool {
	for _, x := range v {
		if x < BoxLo-1e-12 || x > BoxHi+1e-12 {
			return false
		}
	}
	return true
}

func TestAllReturnsEightAttacks(t *testing.T) {
	atks := All()
	if len(atks) != 8 {
		t.Fatalf("All() = %d attacks, want 8", len(atks))
	}
	want := []string{"C&W", "DeepFool", "ElasticNet", "FGSM", "JSMA", "MIM", "PGD", "VAM"}
	for i, a := range atks {
		if a.Name() != want[i] {
			t.Errorf("attack %d = %q, want %q (Table III order)", i, a.Name(), want[i])
		}
	}
}

// TestAttacksStayInBoxAndAreDeterministic runs every attack on several
// samples, asserting box membership and run-to-run determinism.
func TestAttacksStayInBoxAndAreDeterministic(t *testing.T) {
	net, x, y := trainedModel(t)
	for _, atk := range All() {
		t.Run(atk.Name(), func(t *testing.T) {
			for i := 0; i < 6; i++ {
				a := atk.Craft(net, x[i], y[i])
				if !inBox(a) {
					t.Fatalf("sample %d escaped the box: %v", i, a)
				}
				if len(a) != len(x[i]) {
					t.Fatalf("sample %d changed dimension", i)
				}
				b := atk.Craft(net, x[i], y[i])
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("sample %d not deterministic at feature %d", i, j)
					}
				}
			}
		})
	}
}

// TestAttacksDoNotMutateInput guards against in-place perturbation.
func TestAttacksDoNotMutateInput(t *testing.T) {
	net, x, y := trainedModel(t)
	for _, atk := range All() {
		orig := append([]float64(nil), x[0]...)
		atk.Craft(net, x[0], y[0])
		for j := range orig {
			if x[0][j] != orig[j] {
				t.Fatalf("%s mutated its input", atk.Name())
			}
		}
	}
}

// TestIterativeAttacksFoolEasyModel: on a simple separable problem, the
// strong iterative attacks must reach ~100% success, reproducing the
// paper's headline.
func TestIterativeAttacksFoolEasyModel(t *testing.T) {
	net, x, y := trainedModel(t)
	strong := []Attack{NewCW(0, 0, 0), NewElasticNet(0, 0, 0, 0), NewPGD(0, 0), NewMIM(0, 0), NewJSMA(0, 0), NewDeepFool(0, 0)}
	for _, atk := range strong {
		flipped := 0
		total := 10
		for i := 0; i < total; i++ {
			if net.Predict(x[i]) != y[i] {
				continue
			}
			adv := atk.Craft(net, x[i], y[i])
			if net.Predict(adv) != y[i] {
				flipped++
			}
		}
		if flipped < total-1 {
			t.Errorf("%s flipped %d/%d, want near-all", atk.Name(), flipped, total)
		}
	}
}

func TestCWMinimizesDistortion(t *testing.T) {
	net, x, y := trainedModel(t)
	cw := NewCW(0, 0, 0)
	adv := cw.Craft(net, x[0], y[0])
	if net.Predict(adv) == y[0] {
		t.Fatal("C&W failed on easy model")
	}
	var dist float64
	for i := range adv {
		d := adv[i] - x[0][i]
		dist += d * d
	}
	// The clusters are ~0.4 apart; a minimal-distortion attack should
	// cross the midpoint, not jump to the far cluster.
	if math.Sqrt(dist) > 0.6 {
		t.Errorf("C&W L2 distortion %v unexpectedly large", math.Sqrt(dist))
	}
}

func TestJSMAChangesFewFeatures(t *testing.T) {
	net, x, y := trainedModel(t)
	jsma := NewJSMA(0, 0)
	adv := jsma.Craft(net, x[0], y[0])
	changed := 0
	for i := range adv {
		if math.Abs(adv[i]-x[0][i]) > 1e-9 {
			changed++
		}
	}
	budget := int(DefaultJSMAGamma * float64(len(x[0])))
	if changed > budget {
		t.Errorf("JSMA changed %d features, budget %d", changed, budget)
	}
	if changed == 0 && net.Predict(x[0]) == y[0] {
		t.Error("JSMA changed nothing on a correctly classified sample")
	}
}

func TestFGSMRespectsEps(t *testing.T) {
	net, x, y := trainedModel(t)
	eps := 0.1
	adv := NewFGSM(eps).Craft(net, x[0], y[0])
	for i := range adv {
		if d := math.Abs(adv[i] - x[0][i]); d > eps+1e-12 {
			t.Errorf("feature %d moved %v > eps %v", i, d, eps)
		}
	}
}

func TestPGDAndMIMRespectEpsBall(t *testing.T) {
	net, x, y := trainedModel(t)
	for _, atk := range []Attack{NewPGD(0.2, 10), NewMIM(0.2, 5)} {
		adv := atk.Craft(net, x[1], y[1])
		for i := range adv {
			if d := math.Abs(adv[i] - x[1][i]); d > 0.2+1e-9 {
				t.Errorf("%s: feature %d moved %v > 0.2", atk.Name(), i, d)
			}
		}
	}
}

func TestVAMRespectsEps(t *testing.T) {
	net, x, y := trainedModel(t)
	adv := NewVAM(0.25, 5).Craft(net, x[2], y[2])
	var dist float64
	for i := range adv {
		d := adv[i] - x[2][i]
		dist += d * d
	}
	// VAM steps eps along a unit direction (then clips), so the L2 move
	// is at most eps.
	if math.Sqrt(dist) > 0.25+1e-9 {
		t.Errorf("VAM L2 move %v > eps", math.Sqrt(dist))
	}
}

func TestDefaultsFollowPaper(t *testing.T) {
	if cw := NewCW(0, 0, 0); cw.LR != 0.1 || cw.Iters != 200 {
		t.Errorf("C&W defaults %v/%v, want 0.1/200", cw.LR, cw.Iters)
	}
	if df := NewDeepFool(0, 0); df.Overshoot != 0.02 || df.Iters != 100 {
		t.Errorf("DeepFool defaults %v/%v, want 0.02/100", df.Overshoot, df.Iters)
	}
	if ead := NewElasticNet(0, 0, 0, 0); ead.LR != 0.1 || ead.Iters != 250 {
		t.Errorf("EAD defaults %v/%v, want 0.1/250", ead.LR, ead.Iters)
	}
	if f := NewFGSM(0); f.Eps != 0.3 {
		t.Errorf("FGSM eps %v, want 0.3", f.Eps)
	}
	if j := NewJSMA(0, 0); j.Theta != 0.3 || j.Gamma != 0.6 {
		t.Errorf("JSMA %v/%v, want 0.3/0.6", j.Theta, j.Gamma)
	}
	if m := NewMIM(0, 0); m.Eps != 0.3 || m.Iters != 10 {
		t.Errorf("MIM %v/%v, want 0.3/10", m.Eps, m.Iters)
	}
	if p := NewPGD(0, 0); p.Eps != 0.3 || p.Iters != 40 {
		t.Errorf("PGD %v/%v, want 0.3/40", p.Eps, p.Iters)
	}
	if v := NewVAM(0, 0); v.Eps != 0.3 || v.Iters != 40 {
		t.Errorf("VAM %v/%v, want 0.3/40", v.Eps, v.Iters)
	}
}

func TestHelpers(t *testing.T) {
	if sign(3) != 1 || sign(-2) != -1 || sign(0) != 0 {
		t.Error("sign wrong")
	}
	v := []float64{-0.5, 0.5, 1.5}
	clipBox(v)
	if v[0] != 0 || v[1] != 0.5 || v[2] != 1 {
		t.Errorf("clipBox = %v", v)
	}
	w := []float64{0, 1}
	clipLinf(w, []float64{0.5, 0.5}, 0.2)
	if w[0] != 0.3 || w[1] != 0.7 {
		t.Errorf("clipLinf = %v", w)
	}
	if l2norm([]float64{3, 4}) != 5 {
		t.Error("l2norm wrong")
	}
	if l1norm([]float64{-3, 4}) != 7 {
		t.Error("l1norm wrong")
	}
	if opposite(0) != 1 || opposite(1) != 0 {
		t.Error("opposite wrong")
	}
}
