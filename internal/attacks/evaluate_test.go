package attacks

import (
	"strings"
	"testing"
	"time"
)

func TestEligibleFiltersMisclassified(t *testing.T) {
	net, x, y := trainedModel(t)
	idx := Eligible(net, x, y, 0)
	for _, i := range idx {
		if net.Predict(x[i]) != y[i] {
			t.Fatalf("Eligible returned misclassified sample %d", i)
		}
	}
	if len(idx) == 0 {
		t.Fatal("no eligible samples on an accurate model")
	}
}

func TestEligibleSubsampling(t *testing.T) {
	net, x, y := trainedModel(t)
	all := Eligible(net, x, y, 0)
	capped := Eligible(net, x, y, 10)
	if len(capped) != 10 {
		t.Fatalf("capped = %d, want 10", len(capped))
	}
	// Deterministic and sorted (evenly spaced over the eligible list).
	again := Eligible(net, x, y, 10)
	for i := range capped {
		if capped[i] != again[i] {
			t.Fatal("subsample not deterministic")
		}
	}
	if capped[0] != all[0] {
		t.Error("subsample should start at the first eligible sample")
	}
	if capped[len(capped)-1] <= capped[0] {
		t.Error("subsample not spread")
	}
	// Cap above population returns everything.
	if got := Eligible(net, x, y, len(all)+100); len(got) != len(all) {
		t.Errorf("over-cap returned %d, want %d", len(got), len(all))
	}
}

func TestEvaluateAggregates(t *testing.T) {
	net, x, y := trainedModel(t)
	results := Evaluate(net, []Attack{NewPGD(0, 5), NewFGSM(0)}, x, y,
		Options{MaxSamples: 20, Workers: 2})
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for _, r := range results {
		if r.Total != 20 {
			t.Errorf("%s: Total = %d, want 20", r.Attack, r.Total)
		}
		if r.MR < 0 || r.MR > 1 {
			t.Errorf("%s: MR = %v out of range", r.Attack, r.MR)
		}
		if r.Misclassified != r.MalToBen+r.BenToMal {
			t.Errorf("%s: direction counts %d+%d != %d",
				r.Attack, r.MalToBen, r.BenToMal, r.Misclassified)
		}
		if r.AvgCT <= 0 {
			t.Errorf("%s: AvgCT = %v", r.Attack, r.AvgCT)
		}
		if r.ValidRate != 1 {
			t.Errorf("%s: ValidRate = %v, want 1 (attacks clip to box)", r.Attack, r.ValidRate)
		}
		if r.AvgFG < 0 || r.AvgFG > float64(len(x[0])) {
			t.Errorf("%s: AvgFG = %v out of range", r.Attack, r.AvgFG)
		}
	}
	// PGD (40-step default reduced to 5 here) must beat or match FGSM.
	if results[0].MR < results[1].MR {
		t.Errorf("PGD MR %v < FGSM MR %v on identical samples", results[0].MR, results[1].MR)
	}
}

func TestEvaluateWorkerInvariance(t *testing.T) {
	net, x, y := trainedModel(t)
	a := Evaluate(net, []Attack{NewFGSM(0)}, x, y, Options{MaxSamples: 15, Workers: 1})
	b := Evaluate(net, []Attack{NewFGSM(0)}, x, y, Options{MaxSamples: 15, Workers: 3})
	if a[0].MR != b[0].MR || a[0].AvgFG != b[0].AvgFG || a[0].Misclassified != b[0].Misclassified {
		t.Errorf("results differ across worker counts: %+v vs %+v", a[0], b[0])
	}
}

func TestResultString(t *testing.T) {
	r := Result{Attack: "FGSM", MR: 0.2584, AvgFG: 23, AvgCT: 370 * time.Microsecond, Total: 100, ValidRate: 1}
	s := r.String()
	for _, want := range []string{"FGSM", "25.84", "23.00", "0.370"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
