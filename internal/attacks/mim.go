package attacks

import (
	"advmal/internal/nn"
)

// MIM is the momentum iterative method (Dong et al.): iterated sign steps
// on an L1-normalized gradient accumulated with decay factor mu, which
// stabilizes the update direction and escapes poor local maxima. The
// paper runs 10 iterations with eps=0.3.
type MIM struct {
	targetSelector
	Eps   float64
	Iters int
	Mu    float64 // decay factor; 0 means 1.0 (the MIM paper's default)
}

// NewMIM returns an MIM attack; zero parameters select the paper's values.
func NewMIM(eps float64, iters int) *MIM {
	if eps <= 0 {
		eps = DefaultEps
	}
	if iters <= 0 {
		iters = DefaultMIMIters
	}
	return &MIM{Eps: eps, Iters: iters, Mu: 1.0}
}

// Name implements Attack.
func (m *MIM) Name() string { return "MIM" }

// Craft implements Attack.
func (m *MIM) Craft(eng nn.Engine, x []float64, label int) []float64 {
	mu := m.Mu
	if mu == 0 {
		mu = 1.0
	}
	lbl, dir := label, 1.0
	if t := m.forcedTarget(); t >= 0 {
		lbl, dir = t, -1.0 // targeted: descend the target-class loss
	}
	alpha := m.Eps / float64(m.Iters)
	adv := cloneVec(x)
	momentum := make([]float64, len(x))
	for it := 0; it < m.Iters; it++ {
		_, grad := eng.LossGrad(adv, lbl)
		n1 := l1norm(grad)
		if n1 == 0 {
			n1 = 1
		}
		for i := range momentum {
			momentum[i] = mu*momentum[i] + grad[i]/n1
		}
		for i := range adv {
			adv[i] += dir * alpha * sign(momentum[i])
		}
		clipLinf(adv, x, m.Eps)
		clipBox(adv)
	}
	return adv
}

var _ Attack = (*MIM)(nil)
