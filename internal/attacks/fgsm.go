package attacks

import (
	"advmal/internal/nn"
)

// FGSM is the fast gradient sign method (Goodfellow et al.): a single step
// of size eps along the sign of the loss gradient. The paper uses eps=0.3
// and observes a low misclassification rate — one step cannot escape the
// local neighbourhood.
type FGSM struct {
	Eps float64
}

// NewFGSM returns an FGSM attack; eps<=0 selects the paper's 0.3.
func NewFGSM(eps float64) *FGSM {
	if eps <= 0 {
		eps = DefaultEps
	}
	return &FGSM{Eps: eps}
}

// Name implements Attack.
func (f *FGSM) Name() string { return "FGSM" }

// Craft implements Attack: x' = clip(x + eps * sign(dJ/dx)).
func (f *FGSM) Craft(eng nn.Engine, x []float64, label int) []float64 {
	_, grad := eng.LossGrad(x, label)
	adv := cloneVec(x)
	for i := range adv {
		adv[i] += f.Eps * sign(grad[i])
	}
	return clipBox(adv)
}

var _ Attack = (*FGSM)(nil)
