package attacks

import (
	"advmal/internal/nn"
)

// FGSM is the fast gradient sign method (Goodfellow et al.): a single step
// of size eps along the sign of the loss gradient. The paper uses eps=0.3
// and observes a low misclassification rate — one step cannot escape the
// local neighbourhood.
type FGSM struct {
	targetSelector
	Eps float64
}

// NewFGSM returns an FGSM attack; eps<=0 selects the paper's 0.3.
func NewFGSM(eps float64) *FGSM {
	if eps <= 0 {
		eps = DefaultEps
	}
	return &FGSM{Eps: eps}
}

// Name implements Attack.
func (f *FGSM) Name() string { return "FGSM" }

// Craft implements Attack: x' = clip(x + eps * sign(dJ/dx)). Targeted
// (SetTarget on a K-way head) it descends the target-class loss instead:
// x' = clip(x - eps * sign(dJ_t/dx)).
func (f *FGSM) Craft(eng nn.Engine, x []float64, label int) []float64 {
	lbl, dir := label, 1.0
	if t := f.forcedTarget(); t >= 0 {
		lbl, dir = t, -1.0
	}
	_, grad := eng.LossGrad(x, lbl)
	adv := cloneVec(x)
	for i := range adv {
		adv[i] += dir * f.Eps * sign(grad[i])
	}
	return clipBox(adv)
}

var _ Attack = (*FGSM)(nil)
