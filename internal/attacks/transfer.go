package attacks

import (
	"context"
	"errors"
	"fmt"

	"advmal/internal/nn"
	"advmal/internal/pool"
)

// Transfer errors.
var (
	// ErrNoQueries indicates an empty query set for substitute training.
	ErrNoQueries = errors.New("attacks: no queries for substitute training")
)

// TransferConfig controls the black-box transfer evaluation. The paper's
// threat model (§II-C) distinguishes white-box attacks (used in Table
// III) from black-box ones; transfer is the standard black-box technique:
// train a substitute on the victim's input/output behaviour, craft
// white-box adversarial examples on the substitute, and replay them
// against the victim.
type TransferConfig struct {
	// Hidden is the substitute MLP's hidden width; 0 means 64.
	Hidden int
	// Epochs trains the substitute; 0 means 60.
	Epochs int
	// Seed drives substitute init and training.
	Seed int64
	// MaxSamples caps attacked victim samples; 0 means all eligible.
	MaxSamples int
	// Workers is the crafting parallelism.
	Workers int
}

// TransferResult pairs the substitute's own (white-box) misclassification
// rate with the rate that transfers to the black-box victim.
type TransferResult struct {
	Attack        string  `json:"attack"`
	SubstituteMR  float64 `json:"substitute_mr"`
	VictimMR      float64 `json:"victim_mr"`
	Total         int     `json:"total"`
	SubstituteAcc float64 `json:"substitute_acc"` // agreement with victim labels
}

// String renders the transfer result.
func (r TransferResult) String() string {
	return fmt.Sprintf("%-11s substitute MR=%6.2f%% -> victim MR=%6.2f%% (n=%d, agreement=%.1f%%)",
		r.Attack, r.SubstituteMR*100, r.VictimMR*100, r.Total, r.SubstituteAcc*100)
}

// TrainSubstitute is TrainSubstituteCtx without cancellation.
func TrainSubstitute(victim *nn.Network, queries [][]float64, cfg TransferConfig) (*nn.Network, error) {
	return TrainSubstituteCtx(context.Background(), victim, queries, cfg)
}

// TrainSubstituteCtx fits a small MLP to imitate the victim: the queries
// are labelled by the victim's own predictions (model stealing), so the
// adversary needs no ground truth. Training checks ctx between batches.
func TrainSubstituteCtx(ctx context.Context, victim *nn.Network, queries [][]float64, cfg TransferConfig) (*nn.Network, error) {
	if len(queries) == 0 {
		return nil, ErrNoQueries
	}
	hidden := cfg.Hidden
	if hidden <= 0 {
		hidden = 64
	}
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = 60
	}
	labels := make([]int, len(queries))
	vws := victim.WS()
	for i, q := range queries {
		labels[i] = vws.Predict(q)
	}
	sub := nn.SmallMLP(cfg.Seed+1, len(queries[0]), hidden, victim.NumClasses())
	tr := &nn.Trainer{
		Epochs:    epochs,
		BatchSize: 32,
		Seed:      cfg.Seed + 2,
		Workers:   cfg.Workers,
	}
	if _, err := tr.FitCtx(ctx, sub, queries, labels); err != nil {
		return nil, fmt.Errorf("attacks: substitute training: %w", err)
	}
	return sub, nil
}

// TransferEvaluate is TransferEvaluateCtx without cancellation.
func TransferEvaluate(victim *nn.Network, atks []Attack, queries, testX [][]float64, testY []int, cfg TransferConfig) ([]TransferResult, error) {
	return TransferEvaluateCtx(context.Background(), victim, atks, queries, testX, testY, cfg)
}

// TransferEvaluateCtx trains a substitute on queries, crafts adversarial
// examples against the substitute with every attack on the shared worker
// pool, and measures how often they also fool the black-box victim.
// Crafting failures are isolated per sample and excluded from the rates.
func TransferEvaluateCtx(ctx context.Context, victim *nn.Network, atks []Attack, queries, testX [][]float64, testY []int, cfg TransferConfig) ([]TransferResult, error) {
	sub, err := TrainSubstituteCtx(ctx, victim, queries, cfg)
	if err != nil {
		return nil, err
	}
	// Substitute/victim agreement on the test set.
	agree := 0
	sws, vws := sub.WS(), victim.WS()
	for _, x := range testX {
		if sws.Predict(x) == vws.Predict(x) {
			agree++
		}
	}
	agreement := 0.0
	if len(testX) > 0 {
		agreement = float64(agree) / float64(len(testX))
	}
	idx := Eligible(vws, testX, testY, cfg.MaxSamples)
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	results := make([]TransferResult, 0, len(atks))
	for _, atk := range atks {
		var res TransferResult
		res.Attack = atk.Name()
		res.SubstituteAcc = agreement
		type outcome struct {
			ok      bool
			subMiss bool
			vicMiss bool
		}
		outs := make([]outcome, len(idx))
		subWS := make([]*nn.Workspace, workers)
		vicWS := make([]*nn.Workspace, workers)
		for w := range subWS {
			subWS[w] = sub.CloneShared().WS()
			vicWS[w] = victim.CloneShared().WS()
		}
		err := pool.Run(ctx, len(idx), pool.Options{Workers: workers},
			func(_ context.Context, w, k int) error {
				i := idx[k]
				adv := atk.Craft(subWS[w], testX[i], testY[i])
				outs[k] = outcome{
					ok:      true,
					subMiss: subWS[w].Predict(adv) != testY[i],
					vicMiss: vicWS[w].Predict(adv) != testY[i],
				}
				return nil
			})
		if ctx.Err() != nil {
			return results, fmt.Errorf("attacks: transfer %s: %w", atk.Name(), err)
		}
		subFooled, victimFooled := 0, 0
		for _, o := range outs {
			if !o.ok {
				continue
			}
			res.Total++
			if o.subMiss {
				subFooled++
			}
			if o.vicMiss {
				victimFooled++
			}
		}
		if res.Total > 0 {
			res.SubstituteMR = float64(subFooled) / float64(res.Total)
			res.VictimMR = float64(victimFooled) / float64(res.Total)
		}
		results = append(results, res)
	}
	return results, nil
}
