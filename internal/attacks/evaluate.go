package attacks

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"advmal/internal/features"
	"advmal/internal/nn"
)

// Options configures the Table III evaluation harness.
type Options struct {
	// MaxSamples caps how many correctly classified test samples are
	// attacked (evenly spaced subsample, deterministic); 0 means all.
	MaxSamples int
	// Tol is the per-feature change threshold for the Avg.FG column;
	// 0 means 1e-3 of the scaled range.
	Tol float64
	// Workers is the crafting parallelism; 0 means GOMAXPROCS.
	Workers int
}

// Result aggregates one attack's row of Table III.
type Result struct {
	Attack        string        `json:"attack"`
	Total         int           `json:"total"`
	Misclassified int           `json:"misclassified"`
	MR            float64       `json:"mr"`     // misclassification rate
	AvgFG         float64       `json:"avg_fg"` // avg features changed
	AvgCT         time.Duration `json:"avg_ct"` // crafting time per sample
	ValidRate     float64       `json:"valid"`  // fraction inside the box
	MalToBen      int           `json:"mal_to_ben"`
	BenToMal      int           `json:"ben_to_mal"`
}

// String renders the result like a Table III row.
func (r Result) String() string {
	return fmt.Sprintf("%-11s MR=%6.2f%% Avg.FG=%5.2f CT=%8.3fms (n=%d, valid=%.0f%%)",
		r.Attack, r.MR*100, r.AvgFG, float64(r.AvgCT.Microseconds())/1000, r.Total, r.ValidRate*100)
}

// Eligible returns the indices of samples the harness attacks: those the
// detector classifies correctly, optionally capped to an evenly spaced
// subset of size maxSamples.
func Eligible(net *nn.Network, x [][]float64, y []int, maxSamples int) []int {
	var idx []int
	for i := range x {
		if net.Predict(x[i]) == y[i] {
			idx = append(idx, i)
		}
	}
	if maxSamples > 0 && maxSamples < len(idx) {
		out := make([]int, maxSamples)
		for k := 0; k < maxSamples; k++ {
			out[k] = idx[k*len(idx)/maxSamples]
		}
		idx = out
	}
	return idx
}

// Evaluate crafts adversarial examples with every attack against every
// eligible sample and aggregates the paper's Table III columns. Crafting
// fans out over weight-sharing network clones; aggregation order is
// deterministic.
func Evaluate(net *nn.Network, atks []Attack, x [][]float64, y []int, opts Options) []Result {
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-3
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	idx := Eligible(net, x, y, opts.MaxSamples)
	validator := &features.Validator{Lo: BoxLo, Hi: BoxHi, Eps: 1e-9}

	results := make([]Result, 0, len(atks))
	for _, atk := range atks {
		type perSample struct {
			mis   bool
			fg    int
			ct    time.Duration
			valid bool
			label int
		}
		rows := make([]perSample, len(idx))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				clone := net.CloneShared()
				for k := w; k < len(idx); k += workers {
					i := idx[k]
					t0 := time.Now()
					adv := atk.Craft(clone, x[i], y[i])
					ct := time.Since(t0)
					pred := clone.Predict(adv)
					rows[k] = perSample{
						mis:   pred != y[i],
						fg:    features.Diff(features.Vector(x[i]), features.Vector(adv), tol),
						ct:    ct,
						valid: validator.Valid(features.Vector(adv)),
						label: y[i],
					}
				}
			}(w)
		}
		wg.Wait()
		var res Result
		res.Attack = atk.Name()
		res.Total = len(idx)
		var fgSum, ctSum, validCnt int64
		for _, row := range rows {
			if row.mis {
				res.Misclassified++
				if row.label == nn.ClassMalware {
					res.MalToBen++
				} else {
					res.BenToMal++
				}
			}
			fgSum += int64(row.fg)
			ctSum += int64(row.ct)
			if row.valid {
				validCnt++
			}
		}
		if res.Total > 0 {
			res.MR = float64(res.Misclassified) / float64(res.Total)
			res.AvgFG = float64(fgSum) / float64(res.Total)
			res.AvgCT = time.Duration(ctSum / int64(res.Total))
			res.ValidRate = float64(validCnt) / float64(res.Total)
		}
		results = append(results, res)
	}
	return results
}
