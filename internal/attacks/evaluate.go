package attacks

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"advmal/internal/features"
	"advmal/internal/nn"
	"advmal/internal/pool"
)

// Options configures the Table III evaluation harness.
type Options struct {
	// MaxSamples caps how many correctly classified test samples are
	// attacked (evenly spaced subsample, deterministic); 0 means all.
	MaxSamples int
	// Tol is the per-feature change threshold for the Avg.FG column;
	// 0 means 1e-3 of the scaled range.
	Tol float64
	// Workers is the crafting parallelism; 0 means GOMAXPROCS.
	Workers int
	// Hook is the pool fault-injection hook, for tests.
	Hook pool.Hook
}

// Result aggregates one attack's row of Table III.
type Result struct {
	Attack        string        `json:"attack"`
	Total         int           `json:"total"`
	Misclassified int           `json:"misclassified"`
	MR            float64       `json:"mr"`     // misclassification rate
	AvgFG         float64       `json:"avg_fg"` // avg features changed
	AvgCT         time.Duration `json:"avg_ct"` // crafting time per sample
	ValidRate     float64       `json:"valid"`  // fraction inside the box
	MalToBen      int           `json:"mal_to_ben"`
	BenToMal      int           `json:"ben_to_mal"`
	// Skipped counts samples whose crafting failed (an error or panic in
	// the attack); they are isolated and excluded from every aggregate.
	Skipped int `json:"skipped,omitempty"`
}

// String renders the result like a Table III row.
func (r Result) String() string {
	s := fmt.Sprintf("%-11s MR=%6.2f%% Avg.FG=%5.2f CT=%8.3fms (n=%d, valid=%.0f%%)",
		r.Attack, r.MR*100, r.AvgFG, float64(r.AvgCT.Microseconds())/1000, r.Total, r.ValidRate*100)
	if r.Skipped > 0 {
		s += fmt.Sprintf(" [skipped=%d]", r.Skipped)
	}
	return s
}

// Eligible returns the indices of samples the harness attacks: those the
// detector classifies correctly, optionally capped to an evenly spaced
// subset of size maxSamples.
func Eligible(eng nn.Engine, x [][]float64, y []int, maxSamples int) []int {
	var idx []int
	for i := range x {
		if eng.Predict(x[i]) == y[i] {
			idx = append(idx, i)
		}
	}
	if maxSamples > 0 && maxSamples < len(idx) {
		out := make([]int, maxSamples)
		for k := 0; k < maxSamples; k++ {
			out[k] = idx[k*len(idx)/maxSamples]
		}
		idx = out
	}
	return idx
}

// Evaluate is EvaluateCtx without cancellation.
func Evaluate(net *nn.Network, atks []Attack, x [][]float64, y []int, opts Options) []Result {
	results, _ := EvaluateCtx(context.Background(), net, atks, x, y, opts)
	return results
}

// EvaluateCtx crafts adversarial examples with every attack against every
// eligible sample on the shared worker pool and aggregates the paper's
// Table III columns. Aggregation order is deterministic. A sample whose
// crafting fails (error or panic) is isolated, counted in the row's
// Skipped column, and excluded from the aggregates; the run completes on
// the survivors. The returned error is non-nil only when ctx is cancelled,
// in which case the rows completed so far are returned with it.
func EvaluateCtx(ctx context.Context, net *nn.Network, atks []Attack, x [][]float64, y []int, opts Options) ([]Result, error) {
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-3
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	idx := Eligible(net.WS(), x, y, opts.MaxSamples)
	validator := &features.Validator{Lo: BoxLo, Hi: BoxHi, Eps: 1e-9}

	results := make([]Result, 0, len(atks))
	for _, atk := range atks {
		type perSample struct {
			ok    bool
			mis   bool
			fg    int
			ct    time.Duration
			valid bool
			label int
			pred  int
		}
		rows := make([]perSample, len(idx))
		// One shared-weight view plus its workspace per worker: crafting
		// runs on the zero-allocation engine, fully in parallel.
		wss := make([]*nn.Workspace, min(workers, max(len(idx), 1)))
		for w := range wss {
			wss[w] = net.CloneShared().WS()
		}
		err := pool.Run(ctx, len(idx), pool.Options{
			Workers: workers,
			Hook:    opts.Hook,
			Name:    func(k int) string { return fmt.Sprintf("%s/sample-%d", atk.Name(), idx[k]) },
		}, func(_ context.Context, w, k int) error {
			ws := wss[w]
			i := idx[k]
			t0 := time.Now()
			adv := atk.Craft(ws, x[i], y[i])
			ct := time.Since(t0)
			pred := ws.Predict(adv)
			rows[k] = perSample{
				ok:    true,
				mis:   pred != y[i],
				fg:    features.Diff(features.Vector(x[i]), features.Vector(adv), tol),
				ct:    ct,
				valid: validator.Valid(features.Vector(adv)),
				label: y[i],
				pred:  pred,
			}
			return nil
		})
		if ctx.Err() != nil {
			return results, fmt.Errorf("attacks: %s: %w", atk.Name(), err)
		}
		var res Result
		res.Attack = atk.Name()
		var fgSum, ctSum, validCnt int64
		for _, row := range rows {
			if !row.ok {
				res.Skipped++
				continue
			}
			res.Total++
			if row.mis {
				res.Misclassified++
				// Class 0 is benign in both the binary and the family class
				// space. MalToBen counts full detection evasion — a
				// malicious sample predicted benign — so a family head's
				// family-to-family confusion inflates neither column; on the
				// binary head any misclassification flips the axis, exactly
				// the legacy accounting.
				switch {
				case row.label != nn.ClassBenign && row.pred == nn.ClassBenign:
					res.MalToBen++
				case row.label == nn.ClassBenign && row.pred != nn.ClassBenign:
					res.BenToMal++
				}
			}
			fgSum += int64(row.fg)
			ctSum += int64(row.ct)
			if row.valid {
				validCnt++
			}
		}
		if res.Total > 0 {
			res.MR = float64(res.Misclassified) / float64(res.Total)
			res.AvgFG = float64(fgSum) / float64(res.Total)
			res.AvgCT = time.Duration(ctSum / int64(res.Total))
			res.ValidRate = float64(validCnt) / float64(res.Total)
		}
		results = append(results, res)
	}
	return results, nil
}
