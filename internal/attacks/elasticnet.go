package attacks

import (
	"math"

	"advmal/internal/nn"
)

// ElasticNet is the EAD attack (Chen et al.): C&W's margin loss augmented
// with an elastic-net regularizer beta*||d||_1 + ||d||_2^2, optimized with
// iterative shrinkage-thresholding (ISTA). The L1 term concentrates the
// perturbation on few features, which is why the paper measures the
// second-lowest Avg.FG for EAD. The paper runs 250 iterations with
// learning rate 0.1.
type ElasticNet struct {
	targetSelector
	LR    float64
	Iters int
	C     float64 // margin penalty weight; 0 means 10
	Beta  float64 // L1 weight; 0 means 0.05
}

// NewElasticNet returns an EAD attack; zero parameters select the paper's
// values.
func NewElasticNet(lr float64, iters int, c, beta float64) *ElasticNet {
	if lr <= 0 {
		lr = DefaultEADLR
	}
	if iters <= 0 {
		iters = DefaultEADIters
	}
	if c <= 0 {
		c = 10
	}
	if beta <= 0 {
		beta = 0.05
	}
	return &ElasticNet{LR: lr, Iters: iters, C: c, Beta: beta}
}

// Name implements Attack.
func (e *ElasticNet) Name() string { return "ElasticNet" }

// Craft implements Attack. Among successful iterates it keeps the one
// with the smallest elastic-net distortion.
func (e *ElasticNet) Craft(eng nn.Engine, x []float64, label int) []float64 {
	target := e.target(eng, x, label)
	dim := len(x)
	y := cloneVec(x) // ISTA iterate before shrinkage
	adv := cloneVec(x)
	best := cloneVec(x)
	bestCost := math.Inf(1)
	found := false
	for it := 0; it < e.Iters; it++ {
		logits, jac := eng.Jacobian(y)
		margin := logits[label] - logits[target]
		// Gradient of the smooth part: c * dg/dx + 2*(y - x).
		for i := 0; i < dim; i++ {
			g := 2 * (y[i] - x[i])
			if margin > 0 {
				g += e.C * (jac[label][i] - jac[target][i])
			}
			y[i] -= e.LR * g
		}
		// Shrinkage toward the original sample (prox of beta*||d||_1).
		thr := e.LR * e.Beta
		for i := 0; i < dim; i++ {
			d := y[i] - x[i]
			switch {
			case d > thr:
				adv[i] = y[i] - thr
			case d < -thr:
				adv[i] = y[i] + thr
			default:
				adv[i] = x[i]
			}
		}
		clipBox(adv)
		copy(y, adv)
		// Track the least-distorted success.
		advLogits := eng.Logits(adv)
		if nn.Argmax(advLogits) == target {
			var l1, l2 float64
			for i := range adv {
				d := adv[i] - x[i]
				l1 += math.Abs(d)
				l2 += d * d
			}
			cost := e.Beta*l1 + l2
			if cost < bestCost {
				bestCost = cost
				copy(best, adv)
				found = true
			}
		}
	}
	if found {
		return best
	}
	return adv
}

var _ Attack = (*ElasticNet)(nil)
