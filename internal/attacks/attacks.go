// Package attacks implements the eight off-the-shelf adversarial learning
// methods the paper evaluates against the CFG-based detector (§III-A,
// Table III): C&W (L2), DeepFool, ElasticNet (EAD), FGSM, JSMA, MIM, PGD,
// and VAM, plus the evaluation harness that reports the paper's three
// columns: misclassification rate (MR), average number of features changed
// (Avg.FG), and crafting time per sample (CT).
//
// All attacks operate in the scaled feature space (the [0,1] box the
// min-max scaler maps the training range onto) and are deterministic.
// For the binary detection task every attack targets the opposite class,
// which coincides with the untargeted objective.
package attacks

import (
	"math"

	"advmal/internal/nn"
)

// Attack crafts an adversarial example from a correctly classified sample.
// x is the scaled feature vector, label its true class. Implementations
// return a best-effort adversarial vector inside the [0,1] box; they do
// not fail.
//
// Attacks drive the model through the nn.Engine surface, so they run
// unchanged on the allocating *nn.Network oracle or on an *nn.Workspace
// (the zero-allocation engine every hot path uses). Implementations
// respect the engine contract: slices an engine returns may alias its
// internal buffers and are consumed — or copied — before the next engine
// call invalidates them.
type Attack interface {
	Name() string
	Craft(eng nn.Engine, x []float64, label int) []float64
}

// Box is the valid scaled feature range.
const (
	BoxLo = 0.0
	BoxHi = 1.0
)

// clipBox clamps v into the [BoxLo, BoxHi] box in place and returns it.
func clipBox(v []float64) []float64 {
	for i, x := range v {
		switch {
		case x < BoxLo:
			v[i] = BoxLo
		case x > BoxHi:
			v[i] = BoxHi
		}
	}
	return v
}

// clipLinf projects v onto the L-inf ball of radius eps around center,
// in place.
func clipLinf(v, center []float64, eps float64) []float64 {
	for i := range v {
		lo, hi := center[i]-eps, center[i]+eps
		switch {
		case v[i] < lo:
			v[i] = lo
		case v[i] > hi:
			v[i] = hi
		}
	}
	return v
}

func sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

func l2norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func l1norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

func cloneVec(v []float64) []float64 { return append([]float64(nil), v...) }

// opposite returns the adversary's target class for a binary detector.
func opposite(label int) int { return 1 - label }

// Default hyper-parameters, from §IV-B2 of the paper.
const (
	// DefaultEps is the distortion threshold for FGSM/MIM/PGD/VAM.
	DefaultEps = 0.3
	// DefaultCWIters and DefaultCWLR configure C&W (200 iterations, lr 0.1).
	DefaultCWIters = 200
	DefaultCWLR    = 0.1
	// DefaultDeepFoolIters and DefaultOvershoot configure DeepFool.
	DefaultDeepFoolIters = 100
	DefaultOvershoot     = 0.02
	// DefaultEADIters and DefaultEADLR configure ElasticNet.
	DefaultEADIters = 250
	DefaultEADLR    = 0.1
	// DefaultJSMATheta and DefaultJSMAGamma configure JSMA.
	DefaultJSMATheta = 0.3
	DefaultJSMAGamma = 0.6
	// DefaultMIMIters and DefaultPGDIters and DefaultVAMIters configure
	// the iterative eps-ball attacks.
	DefaultMIMIters = 10
	DefaultPGDIters = 40
	DefaultVAMIters = 40
)

// All returns the paper's eight attacks with their §IV-B2 configurations,
// in Table III order.
func All() []Attack {
	return []Attack{
		NewCW(0, 0, 0),
		NewDeepFool(0, 0),
		NewElasticNet(0, 0, 0, 0),
		NewFGSM(0),
		NewJSMA(0, 0),
		NewMIM(0, 0),
		NewPGD(0, 0),
		NewVAM(0, 0),
	}
}
