// Package attacks implements the eight off-the-shelf adversarial learning
// methods the paper evaluates against the CFG-based detector (§III-A,
// Table III): C&W (L2), DeepFool, ElasticNet (EAD), FGSM, JSMA, MIM, PGD,
// and VAM, plus the evaluation harness that reports the paper's three
// columns: misclassification rate (MR), average number of features changed
// (Avg.FG), and crafting time per sample (CT).
//
// All attacks operate in the scaled feature space (the [0,1] box the
// min-max scaler maps the training range onto) and are deterministic.
// For the binary detection task every attack targets the opposite class,
// which coincides with the untargeted objective. Against a K-way family
// head the margin attacks default to the runner-up class of the clean
// prediction (the nearest boundary), and every attack except VAM also
// supports an explicit target class via SetTarget — source→target
// family misclassification, evaluated by EvaluateFamiliesCtx.
package attacks

import (
	"math"

	"advmal/internal/nn"
)

// Attack crafts an adversarial example from a correctly classified sample.
// x is the scaled feature vector, label its true class. Implementations
// return a best-effort adversarial vector inside the [0,1] box; they do
// not fail.
//
// Attacks drive the model through the nn.Engine surface, so they run
// unchanged on the allocating *nn.Network oracle or on an *nn.Workspace
// (the zero-allocation engine every hot path uses). Implementations
// respect the engine contract: slices an engine returns may alias its
// internal buffers and are consumed — or copied — before the next engine
// call invalidates them.
type Attack interface {
	Name() string
	Craft(eng nn.Engine, x []float64, label int) []float64
}

// Box is the valid scaled feature range.
const (
	BoxLo = 0.0
	BoxHi = 1.0
)

// clipBox clamps v into the [BoxLo, BoxHi] box in place and returns it.
func clipBox(v []float64) []float64 {
	for i, x := range v {
		switch {
		case x < BoxLo:
			v[i] = BoxLo
		case x > BoxHi:
			v[i] = BoxHi
		}
	}
	return v
}

// clipLinf projects v onto the L-inf ball of radius eps around center,
// in place.
func clipLinf(v, center []float64, eps float64) []float64 {
	for i := range v {
		lo, hi := center[i]-eps, center[i]+eps
		switch {
		case v[i] < lo:
			v[i] = lo
		case v[i] > hi:
			v[i] = hi
		}
	}
	return v
}

func sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

func l2norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func l1norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

func cloneVec(v []float64) []float64 { return append([]float64(nil), v...) }

// opposite returns the adversary's target class for a binary detector.
func opposite(label int) int { return 1 - label }

// Targeted is implemented by attacks that support an explicit target
// class against a K-way head. SetTarget(class) forces subsequent Craft
// calls toward class; SetTarget is not safe concurrently with Craft —
// set the target, then fan crafting out. All eight attacks implement it
// except VAM, whose objective (output-distribution divergence) has no
// target class.
type Targeted interface {
	Attack
	SetTarget(class int)
}

// SetTarget forces a's target class when the attack supports targeting,
// reporting whether it does. Pass a negative class to reset to the
// untargeted objective.
func SetTarget(a Attack, class int) bool {
	t, ok := a.(Targeted)
	if ok {
		t.SetTarget(class)
	}
	return ok
}

// targetSelector is the shared target-class state for the margin-based
// attacks (C&W, DeepFool, EAD, JSMA). The zero value is the untargeted
// objective: the opposite class on a binary head — bit-identical to the
// legacy binary crafting path — or the runner-up class of the clean
// prediction on a K-way head (the nearest decision boundary). forced
// stores the explicit target class + 1 so the zero value stays
// untargeted.
type targetSelector struct {
	forced int
}

// SetTarget implements Targeted.
func (t *targetSelector) SetTarget(class int) {
	if class < 0 {
		t.forced = 0
		return
	}
	t.forced = class + 1
}

// forcedTarget returns the explicit target class, or -1 when untargeted.
// The loss-gradient attacks (FGSM/MIM/PGD) use it directly: untargeted
// they ascend the true-label loss (K-safe as-is), targeted they descend
// the target-class loss.
func (t *targetSelector) forcedTarget() int { return t.forced - 1 }

// target resolves the target class for one sample with true label label.
func (t *targetSelector) target(eng nn.Engine, x []float64, label int) int {
	if t.forced > 0 {
		return t.forced - 1
	}
	if eng.NumClasses() == 2 {
		return opposite(label)
	}
	return runnerUp(eng.Logits(x), label)
}

// runnerUp returns the highest-logit class other than label.
func runnerUp(logits []float64, label int) int {
	best, bestV := -1, math.Inf(-1)
	for k, v := range logits {
		if k == label {
			continue
		}
		if v > bestV {
			best, bestV = k, v
		}
	}
	if best < 0 {
		return opposite(label)
	}
	return best
}

// Default hyper-parameters, from §IV-B2 of the paper.
const (
	// DefaultEps is the distortion threshold for FGSM/MIM/PGD/VAM.
	DefaultEps = 0.3
	// DefaultCWIters and DefaultCWLR configure C&W (200 iterations, lr 0.1).
	DefaultCWIters = 200
	DefaultCWLR    = 0.1
	// DefaultDeepFoolIters and DefaultOvershoot configure DeepFool.
	DefaultDeepFoolIters = 100
	DefaultOvershoot     = 0.02
	// DefaultEADIters and DefaultEADLR configure ElasticNet.
	DefaultEADIters = 250
	DefaultEADLR    = 0.1
	// DefaultJSMATheta and DefaultJSMAGamma configure JSMA.
	DefaultJSMATheta = 0.3
	DefaultJSMAGamma = 0.6
	// DefaultMIMIters and DefaultPGDIters and DefaultVAMIters configure
	// the iterative eps-ball attacks.
	DefaultMIMIters = 10
	DefaultPGDIters = 40
	DefaultVAMIters = 40
)

// All returns the paper's eight attacks with their §IV-B2 configurations,
// in Table III order.
func All() []Attack {
	return []Attack{
		NewCW(0, 0, 0),
		NewDeepFool(0, 0),
		NewElasticNet(0, 0, 0, 0),
		NewFGSM(0),
		NewJSMA(0, 0),
		NewMIM(0, 0),
		NewPGD(0, 0),
		NewVAM(0, 0),
	}
}
