package attacks

import (
	"errors"
	"strings"
	"testing"
)

func TestTrainSubstituteImitatesVictim(t *testing.T) {
	victim, x, _ := trainedModel(t)
	sub, err := TrainSubstitute(victim, x, TransferConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, xi := range x {
		if sub.Predict(xi) == victim.Predict(xi) {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(x)); frac < 0.95 {
		t.Errorf("substitute agrees on %.0f%%, want >= 95%%", frac*100)
	}
}

func TestTrainSubstituteNoQueries(t *testing.T) {
	victim, _, _ := trainedModel(t)
	if _, err := TrainSubstitute(victim, nil, TransferConfig{}); !errors.Is(err, ErrNoQueries) {
		t.Errorf("err = %v, want ErrNoQueries", err)
	}
}

func TestTransferEvaluate(t *testing.T) {
	victim, x, y := trainedModel(t)
	// Query set: first half; attack targets: second half.
	queries := x[:len(x)/2]
	testX, testY := x[len(x)/2:], y[len(y)/2:]
	results, err := TransferEvaluate(victim,
		[]Attack{NewPGD(0, 10), NewFGSM(0)},
		queries, testX, testY,
		TransferConfig{Seed: 7, MaxSamples: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Total != 20 {
			t.Errorf("%s: total = %d", r.Attack, r.Total)
		}
		if r.SubstituteMR < 0 || r.SubstituteMR > 1 || r.VictimMR < 0 || r.VictimMR > 1 {
			t.Errorf("%s: rates out of range: %+v", r.Attack, r)
		}
		// Transfer can lose effectiveness but the substitute itself must
		// be fooled by its own white-box attack on this easy problem.
		if r.SubstituteMR < 0.5 {
			t.Errorf("%s: substitute MR = %v, want majority fooled", r.Attack, r.SubstituteMR)
		}
		if r.SubstituteAcc < 0.9 {
			t.Errorf("%s: agreement = %v", r.Attack, r.SubstituteAcc)
		}
	}
	// Transfer loses effectiveness (the substitute's decision surface
	// extrapolates differently off the data manifold) — the black-box
	// rate must not exceed the white-box rate on the substitute itself.
	for _, r := range results {
		if r.VictimMR > r.SubstituteMR {
			t.Errorf("%s: victim MR %v exceeds substitute MR %v",
				r.Attack, r.VictimMR, r.SubstituteMR)
		}
	}
}

func TestTransferResultString(t *testing.T) {
	r := TransferResult{Attack: "PGD", SubstituteMR: 1, VictimMR: 0.75, Total: 20, SubstituteAcc: 0.97}
	s := r.String()
	for _, want := range []string{"PGD", "100.00", "75.00", "97.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
