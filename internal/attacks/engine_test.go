package attacks

import (
	"context"
	"math"
	"testing"

	"advmal/internal/nn"
	"advmal/internal/pool"
)

// TestAttacksOracleWorkspaceIdentical pins every attack's output crafted
// through the zero-allocation workspace engine to the output crafted
// through the allocating oracle, bitwise. The attacks are deterministic
// and the two engines compute identical floating-point operation
// sequences, so any divergence is an engine bug.
func TestAttacksOracleWorkspaceIdentical(t *testing.T) {
	net, x, y := trainedModel(t)
	ws := net.CloneShared().WS()
	for _, atk := range All() {
		atk := atk
		t.Run(atk.Name(), func(t *testing.T) {
			for _, i := range []int{0, 1, 7, 20} {
				advO := atk.Craft(net, x[i], y[i])
				advW := atk.Craft(ws, x[i], y[i])
				if len(advO) != len(advW) {
					t.Fatalf("sample %d: lengths %d vs %d", i, len(advO), len(advW))
				}
				for j := range advO {
					if math.Float64bits(advO[j]) != math.Float64bits(advW[j]) {
						t.Fatalf("sample %d feature %d: oracle %v workspace %v",
							i, j, advO[j], advW[j])
					}
				}
			}
		})
	}
}

// TestEligibleEngines checks Eligible agrees between the two engines.
func TestEligibleEngines(t *testing.T) {
	net, x, y := trainedModel(t)
	o := Eligible(net, x, y, 0)
	w := Eligible(net.CloneShared().WS(), x, y, 0)
	if len(o) != len(w) {
		t.Fatalf("eligible counts differ: oracle %d workspace %d", len(o), len(w))
	}
	for i := range o {
		if o[i] != w[i] {
			t.Fatalf("eligible index %d: oracle %d workspace %d", i, o[i], w[i])
		}
	}
}

// TestWorkspacePerWorkerRace fans attack crafting across the shared pool
// with one workspace per worker — the deployment shape every harness
// uses — and relies on the -race runs in `make check` to flag any shared
// mutable state between workspaces (the weights are shared read-only;
// everything mutable must be per-workspace).
func TestWorkspacePerWorkerRace(t *testing.T) {
	net, x, y := trainedModel(t)
	const workers = 4
	wss := make([]*nn.Workspace, workers)
	for w := range wss {
		wss[w] = net.CloneShared().WS()
	}
	atk := NewPGD(0, 10)
	preds := make([]int, len(x))
	err := pool.Run(context.Background(), len(x), pool.Options{Workers: workers},
		func(_ context.Context, w, i int) error {
			adv := atk.Craft(wss[w], x[i], y[i])
			preds[i] = wss[w].Predict(adv)
			return nil
		})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	// Sanity: results must match a serial run on a single workspace.
	serial := net.CloneShared().WS()
	for i := range x {
		adv := atk.Craft(serial, x[i], y[i])
		if p := serial.Predict(adv); p != preds[i] {
			t.Fatalf("sample %d: parallel pred %d, serial pred %d", i, preds[i], p)
		}
	}
}
