package attacks

import (
	"context"
	"fmt"
	"runtime"

	"advmal/internal/nn"
	"advmal/internal/pool"
)

// FamilySourceRow is the untargeted family-attack outcome for one source
// class: how often crafting pushed its samples out of the class at all
// (MR, the K-way misclassification rate) and how often it achieved full
// detection evasion (predicted benign — meaningful for malicious
// sources only).
type FamilySourceRow struct {
	Source        int     `json:"source"`
	Total         int     `json:"total"`
	Misclassified int     `json:"misclassified"`
	Evaded        int     `json:"evaded"`
	MR            float64 `json:"mr"`
	EvasionRate   float64 `json:"evasion_rate"`
}

// FamilyCell is one targeted source→target cell: among Total samples of
// the source class crafted toward the target class, Hits landed exactly
// on the target.
type FamilyCell struct {
	Total int     `json:"total"`
	Hits  int     `json:"hits"`
	Rate  float64 `json:"rate"`
}

// FamilyResult aggregates one attack's family-level evaluation: the
// untargeted per-source rows plus the full source→target success matrix
// for attacks that support explicit targets. Targeted is nil for VAM
// (no target class in its objective); diagonal cells are zero-valued.
type FamilyResult struct {
	Attack     string            `json:"attack"`
	Classes    int               `json:"classes"`
	Untargeted []FamilySourceRow `json:"untargeted"`
	Targeted   [][]FamilyCell    `json:"targeted,omitempty"`
}

// EvaluateFamilies is EvaluateFamiliesCtx without cancellation.
func EvaluateFamilies(net *nn.Network, atks []Attack, x [][]float64, y []int, opts Options) []FamilyResult {
	results, _ := EvaluateFamiliesCtx(context.Background(), net, atks, x, y, opts)
	return results
}

// EvaluateFamiliesCtx re-runs the attack evaluation against a K-way
// family head as source→target misclassification. For every attack it
// crafts each eligible (correctly classified) sample twice over: once
// untargeted — does the sample leave its true class, and does a
// malicious sample reach benign — and once per foreign target class
// with the attack's explicit target forced, scoring exact target hits.
// Labels must be family class indices (0 = benign) matching the
// network's head width. Crafting fans out over the shared worker pool;
// target state is set between fan-outs, never during one, so the
// stateful Targeted attacks stay race-free.
func EvaluateFamiliesCtx(ctx context.Context, net *nn.Network, atks []Attack, x [][]float64, y []int, opts Options) ([]FamilyResult, error) {
	classes := net.NumClasses()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	idx := Eligible(net.WS(), x, y, opts.MaxSamples)

	results := make([]FamilyResult, 0, len(atks))
	for _, atk := range atks {
		res := FamilyResult{Attack: atk.Name(), Classes: classes}
		res.Untargeted = make([]FamilySourceRow, classes)
		for s := range res.Untargeted {
			res.Untargeted[s].Source = s
		}

		// Untargeted pass.
		SetTarget(atk, -1)
		preds, err := craftPredictions(ctx, net, atk, x, y, idx, workers)
		if err != nil {
			return results, err
		}
		for k, i := range idx {
			pred := preds[k]
			if pred < 0 {
				continue // crafting fault: isolated, excluded
			}
			row := &res.Untargeted[y[i]]
			row.Total++
			if pred != y[i] {
				row.Misclassified++
			}
			if y[i] != nn.ClassBenign && pred == nn.ClassBenign {
				row.Evaded++
			}
		}
		for s := range res.Untargeted {
			if t := res.Untargeted[s].Total; t > 0 {
				res.Untargeted[s].MR = float64(res.Untargeted[s].Misclassified) / float64(t)
				res.Untargeted[s].EvasionRate = float64(res.Untargeted[s].Evaded) / float64(t)
			}
		}

		// Targeted pass, one fan-out per target class.
		if _, ok := atk.(Targeted); ok {
			res.Targeted = make([][]FamilyCell, classes)
			for s := range res.Targeted {
				res.Targeted[s] = make([]FamilyCell, classes)
			}
			for target := 0; target < classes; target++ {
				SetTarget(atk, target)
				preds, err := craftPredictions(ctx, net, atk, x, y, idx, workers)
				if err != nil {
					SetTarget(atk, -1)
					return results, err
				}
				for k, i := range idx {
					if y[i] == target || preds[k] < 0 {
						continue
					}
					cell := &res.Targeted[y[i]][target]
					cell.Total++
					if preds[k] == target {
						cell.Hits++
					}
				}
			}
			SetTarget(atk, -1)
			for s := range res.Targeted {
				for t := range res.Targeted[s] {
					if cell := &res.Targeted[s][t]; cell.Total > 0 {
						cell.Rate = float64(cell.Hits) / float64(cell.Total)
					}
				}
			}
		}
		results = append(results, res)
	}
	return results, nil
}

// craftPredictions crafts every idx sample with atk under its current
// target state and returns the post-attack predictions, -1 where
// crafting faulted.
func craftPredictions(ctx context.Context, net *nn.Network, atk Attack, x [][]float64, y []int, idx []int, workers int) ([]int, error) {
	preds := make([]int, len(idx))
	for k := range preds {
		preds[k] = -1
	}
	wss := make([]*nn.Workspace, min(workers, max(len(idx), 1)))
	for w := range wss {
		wss[w] = net.CloneShared().WS()
	}
	err := pool.Run(ctx, len(idx), pool.Options{
		Workers: workers,
		Name:    func(k int) string { return fmt.Sprintf("%s/family-%d", atk.Name(), idx[k]) },
	}, func(_ context.Context, w, k int) error {
		ws := wss[w]
		i := idx[k]
		adv := atk.Craft(ws, x[i], y[i])
		preds[k] = ws.Predict(adv)
		return nil
	})
	if ctx.Err() != nil {
		return preds, fmt.Errorf("attacks: %s: %w", atk.Name(), err)
	}
	return preds, nil
}
