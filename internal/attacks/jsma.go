package attacks

import (
	"advmal/internal/nn"
)

// JSMA is the Jacobian-based saliency map attack (Papernot et al.): an
// L0-minimizing iterative method that perturbs, one at a time, the
// features whose adversarial saliency score is highest, until the sample
// crosses into the target class or the feature-change budget gamma is
// exhausted. The paper uses theta=0.3 (per-step feature change) and
// gamma=0.6 (fraction of features that may be touched) and reports that
// JSMA needs the fewest feature changes of all eight attacks.
type JSMA struct {
	targetSelector
	Theta float64
	Gamma float64
	// Allowed, when non-nil, restricts the attack to these feature
	// indices — the paper constrains JSMA so "the applied changes can be
	// achieved by manipulating the original graph", i.e. to features an
	// attacker can realize by adding nodes and edges.
	Allowed []int
	// NoDecrease forbids downward perturbations; adding code can only
	// grow counts.
	NoDecrease bool
}

// NewJSMA returns a JSMA attack; zero parameters select the paper's values.
func NewJSMA(theta, gamma float64) *JSMA {
	if theta <= 0 {
		theta = DefaultJSMATheta
	}
	if gamma <= 0 {
		gamma = DefaultJSMAGamma
	}
	return &JSMA{Theta: theta, Gamma: gamma}
}

// Name implements Attack.
func (j *JSMA) Name() string { return "JSMA" }

// Craft implements Attack. Saliency for increasing feature i toward
// target t: s_t = dz_t/dx_i must be positive and the summed other-class
// derivative s_o negative; the score is s_t*|s_o|. The mirrored condition
// admits decreasing a feature. When no feature satisfies the strict
// condition the attack falls back to the largest s_t - s_o gap, the
// standard relaxation for low-dimensional feature spaces.
func (j *JSMA) Craft(eng nn.Engine, x []float64, label int) []float64 {
	target := j.target(eng, x, label)
	adv := cloneVec(x)
	budget := int(j.Gamma * float64(len(x)))
	if budget < 1 {
		budget = 1
	}
	var allowed map[int]bool
	if j.Allowed != nil {
		allowed = make(map[int]bool, len(j.Allowed))
		for _, i := range j.Allowed {
			allowed[i] = true
		}
	}
	touched := make(map[int]bool, budget)
	// The iteration cap prevents oscillating on the same feature when the
	// touched-feature budget alone would not terminate the loop.
	for iter := 0; len(touched) < budget && iter < 3*budget; iter++ {
		logits, jac := eng.Jacobian(adv)
		if nn.Argmax(logits) == target {
			break
		}
		bestIdx, bestDir, bestScore := -1, 0.0, 0.0
		fallbackIdx, fallbackDir, fallbackScore := -1, 0.0, 0.0
		for i := range adv {
			if allowed != nil && !allowed[i] {
				continue
			}
			st := jac[target][i]
			var so float64
			for k := range jac {
				if k != target {
					so += jac[k][i]
				}
			}
			// Increasing direction.
			if adv[i] < BoxHi {
				if st > 0 && so < 0 {
					if score := st * -so; score > bestScore {
						bestIdx, bestDir, bestScore = i, +1, score
					}
				}
				if gap := st - so; gap > fallbackScore {
					fallbackIdx, fallbackDir, fallbackScore = i, +1, gap
				}
			}
			// Decreasing direction.
			if adv[i] > BoxLo && !j.NoDecrease {
				if st < 0 && so > 0 {
					if score := -st * so; score > bestScore {
						bestIdx, bestDir, bestScore = i, -1, score
					}
				}
				if gap := so - st; gap > fallbackScore {
					fallbackIdx, fallbackDir, fallbackScore = i, -1, gap
				}
			}
		}
		if bestIdx < 0 {
			bestIdx, bestDir = fallbackIdx, fallbackDir
		}
		if bestIdx < 0 {
			break
		}
		adv[bestIdx] += bestDir * j.Theta
		if adv[bestIdx] > BoxHi {
			adv[bestIdx] = BoxHi
		}
		if adv[bestIdx] < BoxLo {
			adv[bestIdx] = BoxLo
		}
		touched[bestIdx] = true
	}
	return adv
}

var _ Attack = (*JSMA)(nil)
