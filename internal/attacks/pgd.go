package attacks

import (
	"advmal/internal/nn"
)

// PGD is projected gradient descent (Madry et al.): iterated FGSM steps
// projected back onto the eps L-inf ball around the original sample and
// the [0,1] box. The paper runs 40 iterations with eps=0.3.
type PGD struct {
	targetSelector
	Eps   float64
	Iters int
	// Alpha is the per-step size; 0 means 2.5*Eps/Iters, the standard
	// choice that lets iterates traverse the ball.
	Alpha float64
}

// NewPGD returns a PGD attack; zero parameters select the paper's values.
func NewPGD(eps float64, iters int) *PGD {
	if eps <= 0 {
		eps = DefaultEps
	}
	if iters <= 0 {
		iters = DefaultPGDIters
	}
	return &PGD{Eps: eps, Iters: iters}
}

// Name implements Attack.
func (p *PGD) Name() string { return "PGD" }

// Craft implements Attack.
func (p *PGD) Craft(eng nn.Engine, x []float64, label int) []float64 {
	alpha := p.Alpha
	if alpha <= 0 {
		alpha = 2.5 * p.Eps / float64(p.Iters)
	}
	lbl, dir := label, 1.0
	if t := p.forcedTarget(); t >= 0 {
		lbl, dir = t, -1.0 // targeted: descend the target-class loss
	}
	adv := cloneVec(x)
	for it := 0; it < p.Iters; it++ {
		_, grad := eng.LossGrad(adv, lbl)
		for i := range adv {
			adv[i] += dir * alpha * sign(grad[i])
		}
		clipLinf(adv, x, p.Eps)
		clipBox(adv)
	}
	return adv
}

var _ Attack = (*PGD)(nil)
