package attacks

import (
	"math/rand"
	"sync"
	"testing"

	"advmal/internal/nn"
)

var (
	famOnce sync.Once
	famNet  *nn.Network
	famX    [][]float64
	famY    []int
)

// familyModel returns a deterministic 6-class MLP trained on six
// well-separated clusters in the [0,1] box — class 0 standing in for
// benign, 1..5 for the malware families.
func familyModel(t *testing.T) (*nn.Network, [][]float64, []int) {
	t.Helper()
	famOnce.Do(func() {
		rng := rand.New(rand.NewSource(11))
		const k, dim, perClass = 6, 8, 30
		famX = make([][]float64, 0, k*perClass)
		famY = make([]int, 0, k*perClass)
		for c := 0; c < k; c++ {
			center := 0.1 + 0.16*float64(c)
			for i := 0; i < perClass; i++ {
				v := make([]float64, dim)
				for j := range v {
					v[j] = center + rng.NormFloat64()*0.02
				}
				famX = append(famX, v)
				famY = append(famY, c)
			}
		}
		famNet = nn.SmallMLP(5, dim, 32, k)
		tr := &nn.Trainer{Epochs: 250, BatchSize: 16, Seed: 6, Workers: 1}
		if _, err := tr.Fit(famNet, famX, famY); err != nil {
			panic(err)
		}
	})
	acc := 0
	ws := famNet.WS()
	for i := range famX {
		if ws.Predict(famX[i]) == famY[i] {
			acc++
		}
	}
	if float64(acc)/float64(len(famX)) < 0.95 {
		t.Fatalf("family test model underfit: %d/%d", acc, len(famX))
	}
	return famNet, famX, famY
}

// TestSetTargetCoverage pins which attacks accept an explicit target:
// all but VAM (whose KL objective has no target class).
func TestSetTargetCoverage(t *testing.T) {
	for _, atk := range All() {
		ok := SetTarget(atk, 2)
		if atk.Name() == "VAM" {
			if ok {
				t.Error("VAM claims to support targeting")
			}
			continue
		}
		if !ok {
			t.Errorf("%s does not accept a target", atk.Name())
		}
		SetTarget(atk, -1) // reset to untargeted
	}
}

// TestTargetSelectorBinary pins the binary fast path: with a 2-class
// engine the untargeted target is the opposite class, bit-identical to
// the legacy behaviour, with no forced state leaking between calls.
func TestTargetSelectorBinary(t *testing.T) {
	net, x, y := trainedModel(t)
	var ts targetSelector
	for i := 0; i < 8; i++ {
		if got := ts.target(net, x[i], y[i]); got != opposite(y[i]) {
			t.Fatalf("sample %d: untargeted binary target %d, want %d", i, got, opposite(y[i]))
		}
	}
	ts.SetTarget(0)
	if got := ts.target(net, x[0], y[0]); got != 0 {
		t.Fatalf("forced target ignored: %d", got)
	}
	if got := ts.forcedTarget(); got != 0 {
		t.Fatalf("forcedTarget = %d, want 0", got)
	}
	ts.SetTarget(-1)
	if got := ts.forcedTarget(); got != -1 {
		t.Fatalf("reset did not clear the forced target: %d", got)
	}
}

// TestTargetSelectorRunnerUp checks the K-way untargeted choice: the
// highest non-true logit class.
func TestTargetSelectorRunnerUp(t *testing.T) {
	net, x, y := familyModel(t)
	var ts targetSelector
	for i := 0; i < len(x); i += 17 {
		got := ts.target(net, x[i], y[i])
		if got == y[i] {
			t.Fatalf("sample %d: untargeted target equals the true class", i)
		}
		logits := net.Logits(x[i])
		for c := range logits {
			if c != y[i] && c != got && logits[c] > logits[got] {
				t.Fatalf("sample %d: target %d is not the runner-up (class %d has higher logit)", i, got, c)
			}
		}
	}
}

// TestEvaluateFamiliesShapes runs the K-way evaluation with one targeted
// and one untargeted attack and checks the result's structural
// contract: per-source rows for every class, a full source→target matrix
// for the targeted attack with an empty diagonal, nil for VAM.
func TestEvaluateFamiliesShapes(t *testing.T) {
	net, x, y := familyModel(t)
	atks := []Attack{NewFGSM(0.2), NewVAM(0.2, 0)}
	results := EvaluateFamilies(net, atks, x, y, Options{MaxSamples: 60, Workers: 2})
	if len(results) != 2 {
		t.Fatalf("results: %d", len(results))
	}
	fgsm, vam := results[0], results[1]
	if fgsm.Classes != 6 || len(fgsm.Untargeted) != 6 {
		t.Fatalf("FGSM result shape: %+v", fgsm)
	}
	if vam.Targeted != nil {
		t.Fatal("VAM has a targeted matrix")
	}
	if fgsm.Targeted == nil {
		t.Fatal("FGSM has no targeted matrix")
	}
	totalMis := 0
	for s, row := range fgsm.Untargeted {
		if row.Source != s {
			t.Fatalf("row %d labeled %d", s, row.Source)
		}
		if row.MR < 0 || row.MR > 1 || row.EvasionRate < 0 || row.EvasionRate > 1 {
			t.Fatalf("row %d rates out of range: %+v", s, row)
		}
		if row.Evaded > row.Misclassified {
			t.Fatalf("row %d: evaded %d > misclassified %d", s, row.Evaded, row.Misclassified)
		}
		totalMis += row.Misclassified
	}
	if totalMis == 0 {
		t.Fatal("FGSM at eps 0.2 misclassified nothing — evaluation inert")
	}
	hits := 0
	for s := range fgsm.Targeted {
		for tc, cell := range fgsm.Targeted[s] {
			if s == tc && cell.Total != 0 {
				t.Fatalf("diagonal cell (%d,%d) populated: %+v", s, tc, cell)
			}
			hits += cell.Hits
		}
	}
	if hits == 0 {
		t.Fatal("targeted FGSM never hit a target class")
	}
}
