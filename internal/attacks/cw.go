package attacks

import (
	"math"

	"advmal/internal/nn"
)

// CW is the Carlini & Wagner L2 attack: the adversarial example is
// parameterized in tanh space so it always stays inside the box, and Adam
// minimizes ||x'-x||^2 + c * g(x'), where g penalizes the margin between
// the original and target logits. The paper runs 200 iterations with
// learning rate 0.1 and reports 100% MR with small L2 distortion.
type CW struct {
	targetSelector
	LR    float64
	Iters int
	C     float64 // penalty weight; 0 means 10
	Kappa float64 // confidence margin; paper setting is 0
}

// NewCW returns a C&W-L2 attack; zero parameters select the paper's values.
func NewCW(lr float64, iters int, c float64) *CW {
	if lr <= 0 {
		lr = DefaultCWLR
	}
	if iters <= 0 {
		iters = DefaultCWIters
	}
	if c <= 0 {
		c = 10
	}
	return &CW{LR: lr, Iters: iters, C: c}
}

// Name implements Attack.
func (a *CW) Name() string { return "C&W" }

const tanhClamp = 0.999999

func atanhClamped(x float64) float64 {
	// Map box [0,1] to (-1,1) and clamp away from the poles.
	y := 2*x - 1
	if y > tanhClamp {
		y = tanhClamp
	}
	if y < -tanhClamp {
		y = -tanhClamp
	}
	return math.Atanh(y)
}

// Craft implements Attack. It tracks the successful iterate with minimal
// L2 distortion and returns it; if no iterate succeeds it returns the
// final one.
func (a *CW) Craft(eng nn.Engine, x []float64, label int) []float64 {
	target := a.target(eng, x, label)
	dim := len(x)
	w := make([]float64, dim)
	for i, xi := range x {
		w[i] = atanhClamped(xi)
	}
	// Adam state.
	m := make([]float64, dim)
	v := make([]float64, dim)
	adv := make([]float64, dim)
	grad := make([]float64, dim)
	best := cloneVec(x)
	bestDist := math.Inf(1)
	found := false
	const b1, b2, eps = 0.9, 0.999, 1e-8
	for it := 1; it <= a.Iters; it++ {
		// adv = (tanh(w)+1)/2; dadv/dw = (1-tanh^2)/2.
		for i := range adv {
			adv[i] = (math.Tanh(w[i]) + 1) / 2
		}
		logits, jac := eng.Jacobian(adv)
		// g = max(z_label - z_target, -kappa).
		margin := logits[label] - logits[target]
		dist2 := 0.0
		for i := range adv {
			d := adv[i] - x[i]
			dist2 += d * d
		}
		if nn.Argmax(logits) == target && dist2 < bestDist {
			bestDist = dist2
			copy(best, adv)
			found = true
		}
		for i := range grad {
			g := 2 * (adv[i] - x[i])
			if margin > -a.Kappa {
				g += a.C * (jac[label][i] - jac[target][i])
			}
			th := math.Tanh(w[i])
			grad[i] = g * (1 - th*th) / 2
		}
		c1 := 1 - math.Pow(b1, float64(it))
		c2 := 1 - math.Pow(b2, float64(it))
		for i := range w {
			m[i] = b1*m[i] + (1-b1)*grad[i]
			v[i] = b2*v[i] + (1-b2)*grad[i]*grad[i]
			w[i] -= a.LR * (m[i] / c1) / (math.Sqrt(v[i]/c2) + eps)
		}
	}
	if found {
		return best
	}
	for i := range adv {
		adv[i] = (math.Tanh(w[i]) + 1) / 2
	}
	return adv
}

var _ Attack = (*CW)(nil)
