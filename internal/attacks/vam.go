package attacks

import (
	"math"

	"advmal/internal/nn"
)

// VAM is the virtual adversarial method (Miyato et al.): the perturbation
// direction maximizing the KL divergence between the model's output
// distribution at x and at x+r, estimated with power iterations, scaled
// to the eps ball. Like FGSM it takes a single eps-sized step along a
// locally estimated direction, which the paper identifies as the reason
// both attacks sit far below the iterative methods in Table III.
type VAM struct {
	Eps   float64
	Iters int     // power iterations refining the direction
	Xi    float64 // probe scale; 0 means 1e-2
}

// NewVAM returns a VAM attack; zero parameters select the paper's values
// (eps=0.3, 40 iterations).
func NewVAM(eps float64, iters int) *VAM {
	if eps <= 0 {
		eps = DefaultEps
	}
	if iters <= 0 {
		iters = DefaultVAMIters
	}
	return &VAM{Eps: eps, Iters: iters, Xi: 1e-2}
}

// Name implements Attack.
func (v *VAM) Name() string { return "VAM" }

// Craft implements Attack. The gradient of KL(p(x) || p(x+r)) with
// respect to the logits at x+r is p(x+r) - p(x), so one backward pass per
// power iteration refines the direction d; the attack returns
// x + eps * d / ||d||_2.
func (v *VAM) Craft(eng nn.Engine, x []float64, label int) []float64 {
	xi := v.Xi
	if xi <= 0 {
		xi = 1e-2
	}
	// Probs may alias an engine buffer the next Forward clobbers; the
	// anchor distribution survives the whole loop, so copy it.
	p0 := cloneVec(eng.Probs(x))
	dim := len(x)
	// Deterministic unit init.
	d := make([]float64, dim)
	for i := range d {
		d[i] = 1 / math.Sqrt(float64(dim))
	}
	probe := make([]float64, dim)
	p := make([]float64, len(p0))
	dLogits := make([]float64, len(p0))
	for it := 0; it < v.Iters; it++ {
		for i := range probe {
			probe[i] = x[i] + xi*d[i]
		}
		logits := eng.Forward(probe, false)
		nn.SoftmaxInto(p, logits)
		for k := range p {
			dLogits[k] = p[k] - p0[k]
		}
		g := eng.InputGrad(dLogits)
		norm := l2norm(g)
		if norm == 0 {
			break
		}
		for i := range d {
			d[i] = g[i] / norm
		}
	}
	adv := cloneVec(x)
	for i := range adv {
		adv[i] += v.Eps * d[i]
	}
	return clipBox(adv)
}

var _ Attack = (*VAM)(nil)
