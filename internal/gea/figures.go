package gea

import (
	"fmt"

	"advmal/internal/ir"
)

// FigureOriginal returns the ir equivalent of the paper's Fig. 2 original
// sample: a counter initialized to zero and incremented in a loop until it
// exceeds nine, then return.
//
//	movi r4, 0
//	loop: addi r4, 1 ; cmpi r4, 9 ; jle loop
//	movr r0, r4 ; ret
func FigureOriginal() (*ir.Program, error) {
	p, err := ir.NewAsm("fig2-original").
		Emit(ir.MovI, 4, 0).
		Label("loop").
		Emit(ir.AddI, 4, 1).
		Emit(ir.CmpI, 4, 9).
		Jump(ir.Jle, "loop").
		Emit(ir.MovR, 0, 4).
		Emit(ir.Ret).
		Build()
	if err != nil {
		return nil, fmt.Errorf("gea: figure original: %w", err)
	}
	return p, nil
}

// FigureTarget returns the ir equivalent of the paper's Fig. 3 selected
// target sample: straight-line constant stores ending in a small epilogue
// block.
//
//	movi r4, 1 ; movi r4, 2 ; movi r4, 10
//	jmp end
//	end: nop ; ret
func FigureTarget() (*ir.Program, error) {
	p, err := ir.NewAsm("fig3-target").
		Emit(ir.MovI, 4, 1).
		Emit(ir.MovI, 4, 2).
		Emit(ir.MovI, 4, 10).
		Jump(ir.Jmp, "end").
		Label("end").
		Emit(ir.Nop).
		Emit(ir.Ret).
		Build()
	if err != nil {
		return nil, fmt.Errorf("gea: figure target: %w", err)
	}
	return p, nil
}
