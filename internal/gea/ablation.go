package gea

import (
	"fmt"

	"advmal/internal/ir"
)

// MergeNoSharedExit is the ablation of Merge that DESIGN.md calls out:
// the target body keeps its own ret instructions instead of being
// rewired into the shared exit block, so the combined CFG shares only
// the entry node (Fig. 4 without the common exit). Functionality is
// still preserved — the opaque predicate keeps the target body dead.
// Comparing misclassification rates between Merge and MergeNoSharedExit
// isolates how much the shared-exit structure itself contributes to the
// feature shift.
func MergeNoSharedExit(orig, target *ir.Program) (*ir.Program, error) {
	if err := orig.Validate(); err != nil {
		return nil, fmt.Errorf("gea: original: %w", err)
	}
	if err := target.Validate(); err != nil {
		return nil, fmt.Errorf("gea: target: %w", err)
	}
	origBase := stubLen
	targetBase := origBase + len(orig.Code)
	exitIdx := targetBase + len(target.Code)

	code := make([]ir.Instr, 0, exitIdx+1)
	code = append(code,
		ir.Instr{Op: ir.MovI, A: predicateReg, B: 1},
		ir.Instr{Op: ir.CmpI, A: predicateReg, B: 0},
		ir.Instr{Op: ir.Jeq, A: int32(targetBase)},
	)
	// The original still exits through the trailing shared block so the
	// ablation isolates the *target's* exit wiring.
	code = appendRelocated(code, orig.Code, int32(origBase), int32(exitIdx))
	// Target body verbatim (rets kept), only jump targets shifted.
	for _, ins := range target.Code {
		if ins.Op.IsJump() {
			ins.A += int32(targetBase)
		}
		code = append(code, ins)
	}
	code = append(code, ir.Instr{Op: ir.Ret})

	merged := &ir.Program{
		Name: fmt.Sprintf("gea-noexit(%s+%s)", orig.Name, target.Name),
		Code: code,
	}
	if err := merged.Validate(); err != nil {
		return nil, fmt.Errorf("gea: merged: %w", err)
	}
	return merged, nil
}

// CompareExitWiring crafts both merge variants for one original/target
// pair and classifies each, returning (sharedExitPred, ownExitsPred).
// Used by the ablation bench and example analyses.
func (p *Pipeline) CompareExitWiring(orig, target *ir.Program) (shared, own int, err error) {
	m1, err := Merge(orig, target)
	if err != nil {
		return 0, 0, err
	}
	m2, err := MergeNoSharedExit(orig, target)
	if err != nil {
		return 0, 0, err
	}
	if shared, err = p.classifyProgram(m1); err != nil {
		return 0, 0, err
	}
	if own, err = p.classifyProgram(m2); err != nil {
		return 0, 0, err
	}
	return shared, own, nil
}
