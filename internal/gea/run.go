package gea

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"advmal/internal/features"
	"advmal/internal/ir"
	"advmal/internal/nn"
	"advmal/internal/synth"
)

// Pipeline crafts GEA adversarial samples against a trained detector:
// merge -> disassemble -> extract features -> scale -> classify. It owns
// no state beyond references to the trained model and scaler and is safe
// for use from a single goroutine (it clones the network internally for
// its own worker fan-out).
type Pipeline struct {
	Net    *nn.Network
	Scaler *features.Scaler
	// Workers is the per-target crafting parallelism; 0 = GOMAXPROCS.
	Workers int
	// Verify enables the interpreter-trace equivalence check on every
	// crafted sample (the functionality-preservation property).
	Verify bool
	// VerifyInputs are the probe inputs used when Verify is set; nil
	// selects synth.ProbeInputs.
	VerifyInputs [][]int64
}

// Row is one row of Tables IV-VII: one target graph evaluated against
// every original sample of the opposite class.
type Row struct {
	Label       SizeLabel     `json:"label,omitempty"`
	TargetName  string        `json:"target"`
	TargetNodes int           `json:"nodes"`
	TargetEdges int           `json:"edges"`
	Total       int           `json:"total"`
	Misclass    int           `json:"misclassified"`
	MR          float64       `json:"mr"`
	AvgCT       time.Duration `json:"avg_ct"`
	Verified    int           `json:"verified"` // functionality-preserving count
}

// String renders the row like the paper's GEA tables.
func (r Row) String() string {
	label := string(r.Label)
	if label == "" {
		label = r.TargetName
	}
	return fmt.Sprintf("%-8s nodes=%4d edges=%4d MR=%6.2f%% CT=%9.3fms (n=%d, verified=%d)",
		label, r.TargetNodes, r.TargetEdges, r.MR*100,
		float64(r.AvgCT.Microseconds())/1000, r.Total, r.Verified)
}

// RunTarget crafts one GEA adversarial sample per original and measures
// how many flip to the class opposite their true one. origs must all
// share a true class; wantLabel is that class's opposite (the adversary's
// goal). Crafting time covers the full pipeline per sample: merge,
// disassembly, feature extraction, scaling, and classification, which is
// why CT grows with target size as in the paper.
func (p *Pipeline) RunTarget(origs []*synth.Sample, target *synth.Sample, wantLabel int) (Row, error) {
	row := Row{
		TargetName:  target.Name,
		TargetNodes: target.Nodes,
		TargetEdges: target.Edges,
		Total:       len(origs),
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	verifyInputs := p.VerifyInputs
	if p.Verify && verifyInputs == nil {
		verifyInputs = synth.ProbeInputs()
	}
	type outcome struct {
		mis      bool
		verified bool
		ct       time.Duration
		err      error
	}
	outs := make([]outcome, len(origs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clone := p.Net.CloneShared()
			for i := w; i < len(origs); i += workers {
				outs[i] = p.craftOne(clone, origs[i], target, wantLabel, verifyInputs)
			}
		}(w)
	}
	wg.Wait()
	var ctSum int64
	for i, o := range outs {
		if o.err != nil {
			return row, fmt.Errorf("gea: sample %q vs target %q: %w",
				origs[i].Name, target.Name, o.err)
		}
		if o.mis {
			row.Misclass++
		}
		if o.verified {
			row.Verified++
		}
		ctSum += int64(o.ct)
	}
	if row.Total > 0 {
		row.MR = float64(row.Misclass) / float64(row.Total)
		row.AvgCT = time.Duration(ctSum / int64(row.Total))
	}
	return row, nil
}

func (p *Pipeline) craftOne(net *nn.Network, orig, target *synth.Sample, wantLabel int, verifyInputs [][]int64) (o struct {
	mis      bool
	verified bool
	ct       time.Duration
	err      error
}) {
	t0 := time.Now()
	merged, err := Merge(orig.Prog, target.Prog)
	if err != nil {
		o.err = err
		return o
	}
	cfg, err := ir.Disassemble(merged)
	if err != nil {
		o.err = err
		return o
	}
	raw := features.Extract(cfg.G())
	scaled, err := p.Scaler.Transform(raw)
	if err != nil {
		o.err = err
		return o
	}
	pred := net.Predict(scaled)
	o.ct = time.Since(t0)
	o.mis = pred == wantLabel
	if verifyInputs != nil {
		if err := VerifyEquivalent(orig.Prog, merged, verifyInputs); err != nil {
			o.err = err
			return o
		}
		o.verified = true
	}
	return o
}

// RunSizeExperiment reproduces Table IV (malware->benign when
// targetMalicious is false) or Table V (benign->malware when true): the
// minimum-, median-, and maximum-size target of the target class is
// merged with every original of the opposite class.
func (p *Pipeline) RunSizeExperiment(origs, targetPool []*synth.Sample, targetMalicious bool) ([]Row, error) {
	targets, err := SelectBySize(targetPool, targetMalicious)
	if err != nil {
		return nil, err
	}
	wantLabel := nn.ClassBenign
	if targetMalicious {
		wantLabel = nn.ClassMalware
	}
	origSet := filter(origs, !targetMalicious)
	if len(origSet) == 0 {
		return nil, ErrNoSamples
	}
	rows := make([]Row, 0, 3)
	for _, t := range targets.Rows() {
		row, err := p.RunTarget(origSet, t.Sample, wantLabel)
		if err != nil {
			return nil, err
		}
		row.Label = t.Label
		rows = append(rows, row)
	}
	return rows, nil
}

// RunFixedNodesExperiment reproduces Table VI (targetMalicious=false,
// malware->benign) or Table VII (targetMalicious=true): for each of
// numGroups node counts, perGroup targets with distinct edge counts are
// merged with every original of the opposite class.
func (p *Pipeline) RunFixedNodesExperiment(origs, targetPool []*synth.Sample, targetMalicious bool, numGroups, perGroup int) ([]Row, error) {
	groups, err := SelectFixedNodes(targetPool, targetMalicious, numGroups, perGroup)
	if err != nil {
		return nil, err
	}
	wantLabel := nn.ClassBenign
	if targetMalicious {
		wantLabel = nn.ClassMalware
	}
	origSet := filter(origs, !targetMalicious)
	if len(origSet) == 0 {
		return nil, ErrNoSamples
	}
	var rows []Row
	for _, g := range groups {
		for _, t := range g.Samples {
			row, err := p.RunTarget(origSet, t, wantLabel)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
