package gea

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"advmal/internal/features"
	"advmal/internal/ir"
	"advmal/internal/nn"
	"advmal/internal/pool"
	"advmal/internal/synth"
)

// Pipeline crafts GEA adversarial samples against a trained detector:
// merge -> disassemble -> extract features -> scale -> classify. It owns
// no state beyond references to the trained model and scaler and is safe
// for use from a single goroutine (it clones the network internally for
// its own worker fan-out).
type Pipeline struct {
	Net    *nn.Network
	Scaler *features.Scaler
	// Extractor serves every crafting path's feature extraction through
	// the fused sweep engine and its content-keyed cache, so repeated
	// candidate graphs — e.g. MinimizeTargetSize probing the same
	// truncation, or the same original/target pair across experiments —
	// are extracted once. nil uses the process-wide features.Shared.
	Extractor *features.Extractor
	// Workers is the per-target crafting parallelism; 0 = GOMAXPROCS.
	Workers int
	// Verify enables the interpreter-trace equivalence check on every
	// crafted sample (the functionality-preservation property).
	Verify bool
	// VerifyInputs are the probe inputs used when Verify is set; nil
	// selects synth.ProbeInputs.
	VerifyInputs [][]int64
	// Hook is the pool fault-injection hook, for tests.
	Hook pool.Hook
}

// Row is one row of Tables IV-VII: one target graph evaluated against
// every original sample of the opposite class.
type Row struct {
	Label       SizeLabel     `json:"label,omitempty"`
	TargetName  string        `json:"target"`
	TargetNodes int           `json:"nodes"`
	TargetEdges int           `json:"edges"`
	Total       int           `json:"total"`
	Misclass    int           `json:"misclassified"`
	MR          float64       `json:"mr"`
	AvgCT       time.Duration `json:"avg_ct"`
	Verified    int           `json:"verified"` // functionality-preserving count
	// Skipped counts originals whose crafting failed (merge, disassembly,
	// scaling, verification, or a panic); they are isolated and excluded
	// from Total and every aggregate.
	Skipped int `json:"skipped,omitempty"`
	// SkipReasons lists one line per skipped original.
	SkipReasons []string `json:"skip_reasons,omitempty"`
}

// String renders the row like the paper's GEA tables.
func (r Row) String() string {
	label := string(r.Label)
	if label == "" {
		label = r.TargetName
	}
	s := fmt.Sprintf("%-8s nodes=%4d edges=%4d MR=%6.2f%% CT=%9.3fms (n=%d, verified=%d)",
		label, r.TargetNodes, r.TargetEdges, r.MR*100,
		float64(r.AvgCT.Microseconds())/1000, r.Total, r.Verified)
	if r.Skipped > 0 {
		s += fmt.Sprintf(" [skipped=%d]", r.Skipped)
	}
	return s
}

// RunTarget is RunTargetCtx without cancellation.
func (p *Pipeline) RunTarget(origs []*synth.Sample, target *synth.Sample, wantLabel int) (Row, error) {
	return p.RunTargetCtx(context.Background(), origs, target, wantLabel)
}

// RunTargetCtx crafts one GEA adversarial sample per original on the
// shared worker pool and measures how many flip to the class opposite
// their true one. origs must all share a true class; wantLabel is that
// class's opposite (the adversary's goal). Crafting time covers the full
// pipeline per sample: merge, disassembly, feature extraction, scaling,
// and classification, which is why CT grows with target size as in the
// paper.
//
// An original whose crafting fails (a merge/disassembly/scaling error, a
// failed functionality verification, or a panic in a stage) is isolated,
// recorded in Row.Skipped and Row.SkipReasons, and excluded from the
// aggregates; the row completes on the survivors. The returned error is
// non-nil only when ctx is cancelled.
func (p *Pipeline) RunTargetCtx(ctx context.Context, origs []*synth.Sample, target *synth.Sample, wantLabel int) (Row, error) {
	row := Row{
		TargetName:  target.Name,
		TargetNodes: target.Nodes,
		TargetEdges: target.Edges,
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(origs) && len(origs) > 0 {
		workers = len(origs)
	}
	verifyInputs := p.VerifyInputs
	if p.Verify && verifyInputs == nil {
		verifyInputs = synth.ProbeInputs()
	}
	type outcome struct {
		ok       bool
		mis      bool
		verified bool
		ct       time.Duration
	}
	outs := make([]outcome, len(origs))
	// One shared-weight view plus workspace per worker so the classify
	// probe inside craftOne runs on the zero-allocation engine.
	wss := make([]*nn.Workspace, workers)
	for w := range wss {
		wss[w] = p.Net.CloneShared().WS()
	}
	err := pool.Run(ctx, len(origs), pool.Options{
		Workers: workers,
		Hook:    p.Hook,
		Name:    func(i int) string { return origs[i].Name },
	}, func(_ context.Context, w, i int) error {
		o := p.craftOne(wss[w], origs[i], target, wantLabel, verifyInputs)
		if o.err != nil {
			return o.err
		}
		outs[i] = outcome{ok: true, mis: o.mis, verified: o.verified, ct: o.ct}
		return nil
	})
	if ctx.Err() != nil {
		return row, fmt.Errorf("gea: target %q: %w", target.Name, err)
	}
	for _, f := range pool.Failures(err) {
		row.Skipped++
		row.SkipReasons = append(row.SkipReasons,
			fmt.Sprintf("%s vs target %s: %v", f.Name, target.Name, f.Err))
	}
	var ctSum int64
	for _, o := range outs {
		if !o.ok {
			continue
		}
		row.Total++
		if o.mis {
			row.Misclass++
		}
		if o.verified {
			row.Verified++
		}
		ctSum += int64(o.ct)
	}
	if row.Total > 0 {
		row.MR = float64(row.Misclass) / float64(row.Total)
		row.AvgCT = time.Duration(ctSum / int64(row.Total))
	}
	return row, nil
}

func (p *Pipeline) craftOne(eng nn.Engine, orig, target *synth.Sample, wantLabel int, verifyInputs [][]int64) (o struct {
	mis      bool
	verified bool
	ct       time.Duration
	err      error
}) {
	t0 := time.Now()
	merged, err := Merge(orig.Prog, target.Prog)
	if err != nil {
		o.err = err
		return o
	}
	cfg, err := ir.Disassemble(merged)
	if err != nil {
		o.err = err
		return o
	}
	raw := p.Extractor.Extract(cfg.G())
	scaled, err := p.Scaler.Transform(raw)
	if err != nil {
		o.err = err
		return o
	}
	pred := eng.Predict(scaled)
	o.ct = time.Since(t0)
	o.mis = pred == wantLabel
	if verifyInputs != nil {
		if err := VerifyEquivalent(orig.Prog, merged, verifyInputs); err != nil {
			o.err = err
			return o
		}
		o.verified = true
	}
	return o
}

// RunSizeExperiment is RunSizeExperimentCtx without cancellation.
func (p *Pipeline) RunSizeExperiment(origs, targetPool []*synth.Sample, targetMalicious bool) ([]Row, error) {
	return p.RunSizeExperimentCtx(context.Background(), origs, targetPool, targetMalicious)
}

// RunSizeExperimentCtx reproduces Table IV (malware->benign when
// targetMalicious is false) or Table V (benign->malware when true): the
// minimum-, median-, and maximum-size target of the target class is
// merged with every original of the opposite class.
func (p *Pipeline) RunSizeExperimentCtx(ctx context.Context, origs, targetPool []*synth.Sample, targetMalicious bool) ([]Row, error) {
	targets, err := SelectBySize(targetPool, targetMalicious)
	if err != nil {
		return nil, err
	}
	wantLabel := nn.ClassBenign
	if targetMalicious {
		wantLabel = nn.ClassMalware
	}
	origSet := filter(origs, !targetMalicious)
	if len(origSet) == 0 {
		return nil, ErrNoSamples
	}
	rows := make([]Row, 0, 3)
	for _, t := range targets.Rows() {
		row, err := p.RunTargetCtx(ctx, origSet, t.Sample, wantLabel)
		if err != nil {
			return nil, err
		}
		row.Label = t.Label
		rows = append(rows, row)
	}
	return rows, nil
}

// RunFixedNodesExperiment is RunFixedNodesExperimentCtx without
// cancellation.
func (p *Pipeline) RunFixedNodesExperiment(origs, targetPool []*synth.Sample, targetMalicious bool, numGroups, perGroup int) ([]Row, error) {
	return p.RunFixedNodesExperimentCtx(context.Background(), origs, targetPool, targetMalicious, numGroups, perGroup)
}

// RunFixedNodesExperimentCtx reproduces Table VI (targetMalicious=false,
// malware->benign) or Table VII (targetMalicious=true): for each of
// numGroups node counts, perGroup targets with distinct edge counts are
// merged with every original of the opposite class.
func (p *Pipeline) RunFixedNodesExperimentCtx(ctx context.Context, origs, targetPool []*synth.Sample, targetMalicious bool, numGroups, perGroup int) ([]Row, error) {
	groups, err := SelectFixedNodes(targetPool, targetMalicious, numGroups, perGroup)
	if err != nil {
		return nil, err
	}
	wantLabel := nn.ClassBenign
	if targetMalicious {
		wantLabel = nn.ClassMalware
	}
	origSet := filter(origs, !targetMalicious)
	if len(origSet) == 0 {
		return nil, ErrNoSamples
	}
	var rows []Row
	for _, g := range groups {
		for _, t := range g.Samples {
			row, err := p.RunTargetCtx(ctx, origSet, t, wantLabel)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
