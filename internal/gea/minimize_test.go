package gea

import (
	"errors"
	"testing"

	"advmal/internal/ir"
	"advmal/internal/nn"
	"advmal/internal/synth"
)

func TestTruncateTargetFullKeepsProgram(t *testing.T) {
	target := figOriginal(t)
	got, err := TruncateTarget(target, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Code) != len(target.Code) {
		t.Errorf("over-sized truncation changed the program")
	}
	// Must be a copy, not the same object.
	got.Code[0].B = 99
	if target.Code[0].B == 99 {
		t.Error("TruncateTarget aliases the input")
	}
}

func TestTruncateTargetPrefixValidates(t *testing.T) {
	samples, err := synth.Generate(synth.Config{Seed: 23, NumBenign: 3, NumMal: 6})
	if err != nil {
		t.Fatal(err)
	}
	it := &ir.Interp{}
	for _, s := range samples {
		cfg, err := ir.Disassemble(s.Prog)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, cfg.G().N() / 2, cfg.G().N()} {
			if k < 1 {
				continue
			}
			trunc, err := TruncateTarget(s.Prog, k)
			if err != nil {
				t.Fatalf("TruncateTarget(%s, %d): %v", s.Name, k, err)
			}
			if err := trunc.Validate(); err != nil {
				t.Fatalf("truncated %s at %d does not validate: %v", s.Name, k, err)
			}
			tcfg, err := ir.Disassemble(trunc)
			if err != nil {
				t.Fatalf("disassembling truncated %s: %v", s.Name, err)
			}
			if tcfg.G().N() > cfg.G().N()+1 {
				t.Errorf("truncation grew the CFG: %d -> %d", cfg.G().N(), tcfg.G().N())
			}
			// The truncated target is embedded dead, but it must still
			// be a halting program on its own for hygiene.
			if _, err := it.Run(trunc); err != nil {
				// A truncated loop body may legitimately spin if its
				// exit condition was cut; only a step-budget error is
				// acceptable.
				if !errors.Is(err, ir.ErrStepBudget) {
					t.Fatalf("running truncated %s: %v", s.Name, err)
				}
			}
		}
	}
}

func TestTruncateTargetBadK(t *testing.T) {
	if _, err := TruncateTarget(figOriginal(t), 0); err == nil {
		t.Error("TruncateTarget accepted k=0")
	}
}

func TestMinimizeTargetSize(t *testing.T) {
	p, samples := testPipeline(t)
	// Victim: a malware sample the detector classifies as malware.
	var victim *synth.Sample
	for _, s := range samples {
		if !s.Malicious {
			continue
		}
		pred, err := p.classifyProgram(s.Prog)
		if err != nil {
			t.Fatal(err)
		}
		if pred == nn.ClassMalware {
			victim = s
			break
		}
	}
	if victim == nil {
		t.Skip("no correctly classified malware in the tiny corpus")
	}
	targets, err := SelectBySize(samples, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.MinimizeTargetSize(victim.Prog, targets.Maximum.Prog,
		nn.ClassBenign, synth.ProbeInputs())
	if errors.Is(err, ErrCannotMinimize) {
		t.Skip("max benign target does not flip this reduced detector")
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks > res.FullBlocks {
		t.Errorf("kept %d of %d blocks", res.Blocks, res.FullBlocks)
	}
	if res.Blocks == res.FullBlocks {
		t.Logf("no reduction possible (kept all %d blocks)", res.FullBlocks)
	} else {
		t.Logf("reduced target from %d to %d blocks", res.FullBlocks, res.Blocks)
	}
	// The minimized merge still flips the classifier...
	pred, err := p.classifyProgram(res.Merged)
	if err != nil {
		t.Fatal(err)
	}
	if pred != nn.ClassBenign {
		t.Error("minimized merge no longer flips the classifier")
	}
	// ...and still preserves functionality.
	if err := VerifyEquivalent(victim.Prog, res.Merged, synth.ProbeInputs()); err != nil {
		t.Errorf("minimized merge broke functionality: %v", err)
	}
}

func TestMinimizeTargetSizeCannotFlip(t *testing.T) {
	p, samples := testPipeline(t)
	// Merging a malware sample with the *minimum* benign target (a couple
	// of blocks) should usually not flip a confident detector; but to be
	// deterministic, ask for the impossible: flip a benign original to
	// benign... i.e. wantLabel equal to its current prediction is always
	// "flipped", so instead use a tiny target against a confidently
	// classified original and accept either outcome, asserting only
	// error semantics.
	var victim *synth.Sample
	for _, s := range samples {
		if s.Malicious {
			victim = s
			break
		}
	}
	targets, err := SelectBySize(samples, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.MinimizeTargetSize(victim.Prog, targets.Minimum.Prog, nn.ClassBenign, nil)
	if err != nil {
		if !errors.Is(err, ErrCannotMinimize) {
			t.Fatalf("unexpected error: %v", err)
		}
		return // fine: tiny target cannot flip
	}
	if res.Blocks < 1 {
		t.Errorf("kept %d blocks", res.Blocks)
	}
}
