package gea

import (
	"testing"

	"advmal/internal/ir"
	"advmal/internal/synth"
)

func TestMergeNoSharedExitStructure(t *testing.T) {
	orig := figOriginal(t)
	target := figTarget(t)
	merged, err := MergeNoSharedExit(orig, target)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ir.Disassemble(merged)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.G()
	// Entry still branches both ways.
	if g.OutDegree(0) != 2 {
		t.Errorf("entry out-degree = %d, want 2", g.OutDegree(0))
	}
	// There must be more than one exit block now (the target keeps its
	// own rets; the original routes to the trailing ret).
	exits := cfg.ExitBlocks(merged)
	if len(exits) < 2 {
		t.Errorf("exits = %v, want >= 2 (no shared exit)", exits)
	}
	// The trailing shared block is reached only from the original body.
	last := g.N() - 1
	if g.InDegree(last) < 1 {
		t.Errorf("trailing exit in-degree = %d", g.InDegree(last))
	}
}

func TestMergeNoSharedExitPreservesFunctionality(t *testing.T) {
	orig := figOriginal(t)
	merged, err := MergeNoSharedExit(orig, figTarget(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEquivalent(orig, merged, synth.ProbeInputs()); err != nil {
		t.Fatalf("no-shared-exit merge broke functionality: %v", err)
	}
}

func TestMergeNoSharedExitRejectsInvalid(t *testing.T) {
	valid := figOriginal(t)
	if _, err := MergeNoSharedExit(&ir.Program{}, valid); err == nil {
		t.Error("accepted invalid original")
	}
	if _, err := MergeNoSharedExit(valid, &ir.Program{}); err == nil {
		t.Error("accepted invalid target")
	}
}

func TestCompareExitWiring(t *testing.T) {
	p, samples := testPipeline(t)
	var mal, ben *synth.Sample
	for _, s := range samples {
		if s.Malicious && mal == nil {
			mal = s
		}
		if !s.Malicious && ben == nil {
			ben = s
		}
	}
	shared, own, err := p.CompareExitWiring(mal.Prog, ben.Prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []int{shared, own} {
		if pred != 0 && pred != 1 {
			t.Errorf("prediction out of range: %d", pred)
		}
	}
}
