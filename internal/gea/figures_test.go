package gea

import (
	"testing"

	"advmal/internal/ir"
)

// figOriginal returns the Fig. 2 original program, failing the test on
// error.
func figOriginal(t testing.TB) *ir.Program {
	t.Helper()
	p, err := FigureOriginal()
	if err != nil {
		t.Fatalf("FigureOriginal: %v", err)
	}
	return p
}

// figTarget returns the Fig. 3 target program, failing the test on error.
func figTarget(t testing.TB) *ir.Program {
	t.Helper()
	p, err := FigureTarget()
	if err != nil {
		t.Fatalf("FigureTarget: %v", err)
	}
	return p
}

// TestFiguresBuild guards the figure programs themselves: they must build
// without error and validate.
func TestFiguresBuild(t *testing.T) {
	for name, p := range map[string]*ir.Program{
		"original": figOriginal(t),
		"target":   figTarget(t),
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
