package gea

import (
	"errors"
	"fmt"

	"advmal/internal/ir"
)

// Minimization errors.
var (
	// ErrCannotMinimize indicates even the full target fails to flip the
	// classifier, so there is nothing to minimize.
	ErrCannotMinimize = errors.New("gea: full target does not flip the classifier")
)

// TruncateTarget returns a copy of target reduced to its first k basic
// blocks. Jumps that leave the kept prefix are retargeted to a fresh
// trailing ret, so the result is a valid program. k is clamped to the
// block count; k < 1 is an error.
func TruncateTarget(target *ir.Program, k int) (*ir.Program, error) {
	if k < 1 {
		return nil, fmt.Errorf("gea: truncate to %d blocks", k)
	}
	cfg, err := ir.Disassemble(target)
	if err != nil {
		return nil, fmt.Errorf("gea: truncate: %w", err)
	}
	if k >= len(cfg.Blocks) {
		return target.Clone(), nil
	}
	cut := cfg.Blocks[k-1].End
	code := append([]ir.Instr(nil), target.Code[:cut]...)
	retIdx := int32(len(code))
	needRet := false
	hasRet := false
	for i, ins := range code {
		if ins.Op.IsJump() && ins.A >= int32(cut) {
			code[i].A = retIdx
			needRet = true
		}
		if ins.Op == ir.Ret {
			hasRet = true
		}
	}
	// Terminate the prefix: retargeted jumps land here, a fall-off-end
	// tail needs an exit, and validation requires at least one ret.
	if needRet || !hasRet || !code[len(code)-1].Op.Terminates() {
		code = append(code, ir.Instr{Op: ir.Ret})
	}
	p := &ir.Program{Name: fmt.Sprintf("%s[:%d]", target.Name, k), Code: code}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("gea: truncate: %w", err)
	}
	return p, nil
}

// MinimizeResult reports the outcome of target-size minimization.
type MinimizeResult struct {
	// Blocks is the number of target blocks kept.
	Blocks int
	// FullBlocks is the block count of the untruncated target.
	FullBlocks int
	// Target is the truncated target program actually embedded.
	Target *ir.Program
	// Merged is the final adversarial program.
	Merged *ir.Program
}

// MinimizeTargetSize addresses the paper's §VI future-work item: find a
// small prefix of the target whose GEA embedding still flips the
// classifier, shrinking the size overhead GEA adds to the original
// sample. It exponentially grows the kept-prefix size until the merge
// flips the classifier, then binary-searches the crossing point
// (misclassification is approximately monotone in embedded-subgraph
// size, per Tables IV/V). The returned merge is verified
// functionality-preserving on the probe inputs.
func (p *Pipeline) MinimizeTargetSize(orig, target *ir.Program, wantLabel int, verifyInputs [][]int64) (*MinimizeResult, error) {
	cfg, err := ir.Disassemble(target)
	if err != nil {
		return nil, err
	}
	full := len(cfg.Blocks)
	flips := func(k int) (bool, *ir.Program, *ir.Program, error) {
		trunc, err := TruncateTarget(target, k)
		if err != nil {
			return false, nil, nil, err
		}
		merged, err := Merge(orig, trunc)
		if err != nil {
			return false, nil, nil, err
		}
		pred, err := p.classifyProgram(merged)
		if err != nil {
			return false, nil, nil, err
		}
		return pred == wantLabel, trunc, merged, nil
	}
	ok, trunc, merged, err := flips(full)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrCannotMinimize
	}
	best := &MinimizeResult{Blocks: full, FullBlocks: full, Target: trunc, Merged: merged}
	// Exponential probe for a flipping prefix.
	lo, hi := 0, full // lo: known non-flipping (0 = empty), hi: known flipping
	for k := 1; k < full; k *= 2 {
		ok, trunc, merged, err := flips(k)
		if err != nil {
			return nil, err
		}
		if ok {
			hi = k
			best = &MinimizeResult{Blocks: k, FullBlocks: full, Target: trunc, Merged: merged}
			break
		}
		lo = k
	}
	// Binary search between lo and hi.
	for lo+1 < hi {
		mid := (lo + hi) / 2
		ok, trunc, merged, err := flips(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			hi = mid
			best = &MinimizeResult{Blocks: mid, FullBlocks: full, Target: trunc, Merged: merged}
		} else {
			lo = mid
		}
	}
	if verifyInputs != nil {
		if err := VerifyEquivalent(orig, best.Merged, verifyInputs); err != nil {
			return nil, err
		}
	}
	return best, nil
}

// classifyProgram runs the pipeline's feature extraction + detector on a
// program.
func (p *Pipeline) classifyProgram(prog *ir.Program) (int, error) {
	cfg, err := ir.Disassemble(prog)
	if err != nil {
		return 0, err
	}
	raw := p.Extractor.Extract(cfg.G())
	scaled, err := p.Scaler.Transform(raw)
	if err != nil {
		return 0, err
	}
	// The minimize search probes this classifier dozens of times per
	// sample; the lazily attached workspace makes each probe
	// allocation-free after the first.
	return p.Net.WS().Predict(scaled), nil
}
