package gea

import (
	"errors"
	"fmt"
	"math"

	"advmal/internal/attacks"
	"advmal/internal/features"
	"advmal/internal/ir"
)

// Realization errors.
var (
	// ErrNotRealizable indicates the requested structural delta cannot
	// be produced by adding nodes and edges.
	ErrNotRealizable = errors.New("gea: feature delta not realizable by adding nodes/edges")
)

// AddNodesEdges grows a program's CFG by exactly deltaNodes basic blocks
// carrying between deltaNodes/2*0 and 2*deltaNodes edges — the "carefully
// adding new nodes and edges" the paper uses to realize JSMA's feature
// perturbations (§IV-B2). The added blocks are dead code (skipped by a
// direct jump), so observable behaviour is untouched; they are wired
// back into real blocks so the disassembled CFG gains the edges.
//
// Realizable combinations: deltaNodes >= 1 and
// 0 <= deltaEdges <= 2*deltaNodes, plus the single skip-jump edge cost
// accounted internally. Each added block contributes 0 (ret block),
// 1 (jump block), or 2 (conditional block) edges.
func AddNodesEdges(p *ir.Program, deltaNodes, deltaEdges int) (*ir.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("gea: realize: %w", err)
	}
	if deltaNodes < 1 || deltaEdges < 0 || deltaEdges > 2*deltaNodes {
		return nil, fmt.Errorf("%w: +%d nodes, +%d edges", ErrNotRealizable, deltaNodes, deltaEdges)
	}
	// The program gains a trailing dead region guarded by one jmp that
	// skips it. That jmp splits the final block only if the program
	// falls off... generated programs always end in ret, so appending
	// dead code after the final ret adds no skip jump and no edges.
	out := p.Clone()
	if out.Code[len(out.Code)-1].Op != ir.Ret {
		// Defensive: terminate so appended blocks are dead.
		out.Code = append(out.Code, ir.Instr{Op: ir.Ret})
	}
	// Distribute edges over blocks: b2 blocks with 2 edges, b1 with 1,
	// b0 with 0, such that b2+b1+b0 = deltaNodes, 2*b2+b1 = deltaEdges.
	b2 := deltaEdges - deltaNodes
	if b2 < 0 {
		b2 = 0
	}
	b1 := deltaEdges - 2*b2
	b0 := deltaNodes - b2 - b1
	if b0 < 0 || b1 < 0 {
		return nil, fmt.Errorf("%w: +%d nodes, +%d edges", ErrNotRealizable, deltaNodes, deltaEdges)
	}
	// Edges from dead blocks target the program's entry (block 0), a
	// real node, mimicking opaque-predicate wiring.
	for i := 0; i < b2; i++ {
		out.Code = append(out.Code,
			ir.Instr{Op: ir.CmpI, A: 4, B: int32(i)},
			ir.Instr{Op: ir.Jle, A: 0}, // edge 1: branch to entry
		)
		// Edge 2: fallthrough to the next appended block; the final
		// conditional block must not fall off the end, so order blocks
		// as: all b2 blocks first, then b1/b0 blocks, and ensure at
		// least one block follows. b1+b0 >= 1 whenever b2 >= 1 and
		// deltaEdges <= 2*deltaNodes-? Not guaranteed; fix below.
	}
	for i := 0; i < b1; i++ {
		out.Code = append(out.Code, ir.Instr{Op: ir.Jmp, A: 0})
	}
	for i := 0; i < b0; i++ {
		out.Code = append(out.Code, ir.Instr{Op: ir.Ret})
	}
	// If the last appended block was conditional (b1 == 0 && b0 == 0),
	// its fallthrough would leave the program; append a terminating ret
	// only if the instruction stream ends with a conditional jump.
	if last := out.Code[len(out.Code)-1]; last.Op.IsCondJump() {
		// This ret forms an extra block, exceeding deltaNodes by one —
		// reject instead of silently over-shooting.
		return nil, fmt.Errorf("%w: +%d nodes, +%d edges needs a trailing block", ErrNotRealizable, deltaNodes, deltaEdges)
	}
	out.Name = fmt.Sprintf("realized(%s)", p.Name)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("gea: realize: %w", err)
	}
	return out, nil
}

// RealizeResult reports one JSMA realization: the feature-space attack's
// verdict and the verdict after the perturbation is actually applied to
// the graph.
type RealizeResult struct {
	FeatureSpaceFlipped bool
	Realized            bool
	RealizedFlipped     bool
	DeltaNodes          int
	DeltaEdges          int
	Program             *ir.Program
}

// RealizeJSMA crafts a feature-space JSMA adversarial example for the
// original sample, reads the #nodes/#edges perturbation it requested,
// applies that perturbation to the actual program with AddNodesEdges,
// and classifies the result — closing the loop the paper describes for
// JSMA ("we insure that the applied changes can be achieved by
// manipulating the original graph"). Decreases are not realizable by
// adding code and are clipped to zero.
func (p *Pipeline) RealizeJSMA(orig *ir.Program, label int, verifyInputs [][]int64) (*RealizeResult, error) {
	cfg, err := ir.Disassemble(orig)
	if err != nil {
		return nil, err
	}
	raw := p.Extractor.Extract(cfg.G())
	scaled, err := p.Scaler.Transform(raw)
	if err != nil {
		return nil, err
	}
	jsma := attacks.NewJSMA(0, 0)
	ws := p.Net.WS()
	adv := jsma.Craft(ws, scaled, label)
	res := &RealizeResult{
		FeatureSpaceFlipped: ws.Predict(adv) != label,
	}
	advRaw, err := p.Scaler.Inverse(features.Vector(adv))
	if err != nil {
		return nil, err
	}
	res.DeltaNodes = int(math.Round(advRaw[22] - raw[22]))
	res.DeltaEdges = int(math.Round(advRaw[21] - raw[21]))
	if res.DeltaNodes < 1 {
		// Unconstrained JSMA asked to shrink or leave the graph, which
		// adding code cannot realize. Retry with the paper's constraint:
		// only the #edges / #nodes features, increase-only.
		constrained := attacks.NewJSMA(0, 0)
		constrained.Allowed = []int{21, 22}
		constrained.NoDecrease = true
		adv = constrained.Craft(ws, scaled, label)
		if advRaw, err = p.Scaler.Inverse(features.Vector(adv)); err != nil {
			return nil, err
		}
		res.DeltaNodes = int(math.Round(advRaw[22] - raw[22]))
		res.DeltaEdges = int(math.Round(advRaw[21] - raw[21]))
	}
	if res.DeltaNodes < 1 {
		return res, nil
	}
	if res.DeltaEdges < 0 {
		res.DeltaEdges = 0
	}
	// 2*deltaNodes edges would require the final conditional block to
	// fall through off the program end, so the realizable cap is one
	// less.
	if res.DeltaEdges > 2*res.DeltaNodes-1 {
		res.DeltaEdges = 2*res.DeltaNodes - 1
	}
	realized, err := AddNodesEdges(orig, res.DeltaNodes, res.DeltaEdges)
	if errors.Is(err, ErrNotRealizable) {
		return res, nil
	}
	if err != nil {
		return nil, err
	}
	if verifyInputs != nil {
		if err := VerifyEquivalent(orig, realized, verifyInputs); err != nil {
			return nil, err
		}
	}
	pred, err := p.classifyProgram(realized)
	if err != nil {
		return nil, err
	}
	res.Realized = true
	res.RealizedFlipped = pred != label
	res.Program = realized
	return res, nil
}
