package gea

import (
	"errors"
	"testing"

	"advmal/internal/ir"
	"advmal/internal/nn"
	"advmal/internal/synth"
)

func TestAddNodesEdgesExactDeltas(t *testing.T) {
	orig := figOriginal(t)
	base, err := ir.Disassemble(orig)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct{ dn, de int }{
		{1, 0}, {1, 1}, {3, 0}, {3, 3}, {4, 7}, {5, 5}, {10, 15},
	}
	for _, tc := range tests {
		grown, err := AddNodesEdges(orig, tc.dn, tc.de)
		if err != nil {
			t.Fatalf("AddNodesEdges(+%d,+%d): %v", tc.dn, tc.de, err)
		}
		cfg, err := ir.Disassemble(grown)
		if err != nil {
			t.Fatal(err)
		}
		if got := cfg.G().N() - base.G().N(); got != tc.dn {
			t.Errorf("+%d/+%d: node delta = %d", tc.dn, tc.de, got)
		}
		if got := cfg.G().M() - base.G().M(); got != tc.de {
			t.Errorf("+%d/+%d: edge delta = %d", tc.dn, tc.de, got)
		}
	}
}

func TestAddNodesEdgesPreservesBehaviour(t *testing.T) {
	samples, err := synth.Generate(synth.Config{Seed: 41, NumBenign: 3, NumMal: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		grown, err := AddNodesEdges(s.Prog, 6, 9)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := VerifyEquivalent(s.Prog, grown, synth.ProbeInputs()); err != nil {
			t.Fatalf("%s: realization broke behaviour: %v", s.Name, err)
		}
	}
}

func TestAddNodesEdgesRejectsImpossible(t *testing.T) {
	orig := figOriginal(t)
	tests := []struct{ dn, de int }{
		{0, 0}, {-1, 0}, {1, -1}, {1, 3}, {2, 5},
	}
	for _, tc := range tests {
		if _, err := AddNodesEdges(orig, tc.dn, tc.de); !errors.Is(err, ErrNotRealizable) {
			t.Errorf("AddNodesEdges(+%d,+%d) = %v, want ErrNotRealizable", tc.dn, tc.de, err)
		}
	}
	if _, err := AddNodesEdges(&ir.Program{}, 1, 1); err == nil {
		t.Error("accepted invalid program")
	}
}

func TestAddNodesEdgesFullConditionalLoad(t *testing.T) {
	// deltaEdges == 2*deltaNodes needs a trailing block and must be
	// rejected rather than silently over-shooting.
	if _, err := AddNodesEdges(figOriginal(t), 2, 4); !errors.Is(err, ErrNotRealizable) {
		t.Errorf("err = %v, want ErrNotRealizable", err)
	}
}

func TestRealizeJSMA(t *testing.T) {
	p, samples := testPipeline(t)
	tried, realized, flipped := 0, 0, 0
	for _, s := range samples {
		if !s.Malicious {
			continue
		}
		pred, err := p.classifyProgram(s.Prog)
		if err != nil {
			t.Fatal(err)
		}
		if pred != nn.ClassMalware {
			continue
		}
		res, err := p.RealizeJSMA(s.Prog, nn.ClassMalware, synth.ProbeInputs())
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		tried++
		if res.Realized {
			realized++
			if res.RealizedFlipped {
				flipped++
			}
			if res.Program == nil {
				t.Fatalf("%s: realized without a program", s.Name)
			}
		}
		if tried == 12 {
			break
		}
	}
	if tried == 0 {
		t.Skip("no correctly classified malware")
	}
	t.Logf("JSMA realization: %d tried, %d realized in graph space, %d flipped after realization",
		tried, realized, flipped)
	// JSMA changes few features; whenever it grows nodes/edges we must
	// be able to realize it.
	if realized == 0 {
		t.Log("JSMA never requested a node increase on these samples (all perturbations were decreases)")
	}
}
