// Package gea implements the paper's contribution: Graph Embedding and
// Augmentation (§III-B). GEA splices a selected target program into the
// original program behind an opaque predicate so that
//
//   - the combined CFG contains both subgraphs, sharing one entry and one
//     exit node (Fig. 4), which moves the extracted graph features toward
//     the target class, while
//   - only the original body ever executes, so the sample's observable
//     behaviour — and therefore its practicality and functionality — is
//     preserved, which the package verifies mechanically by comparing
//     interpreter traces.
package gea

import (
	"errors"
	"fmt"

	"advmal/internal/ir"
)

// Merge errors.
var (
	// ErrNotEquivalent indicates the merged program's observable
	// behaviour diverged from the original's.
	ErrNotEquivalent = errors.New("gea: merged program not equivalent")
)

// stubLen is the length of the injected entry block:
// movi r7,1 ; cmpi r7,0 ; jeq <target entry>.
const stubLen = 3

// predicateReg is the scratch register the opaque predicate uses. The ir
// package's calling convention treats r4-r7 and the comparison flag as
// undefined at function entry, so clobbering them before the original
// body cannot change its behaviour.
const predicateReg = 7

// Merge embeds target into orig per Fig. 4: a new shared entry block whose
// opaque predicate (always false at run time, opaque to static CFG
// extraction) branches to the relocated target body, falls through to the
// relocated original body, and both bodies' returns are rewritten to jump
// to a new shared exit block holding the single ret.
func Merge(orig, target *ir.Program) (*ir.Program, error) {
	if err := orig.Validate(); err != nil {
		return nil, fmt.Errorf("gea: original: %w", err)
	}
	if err := target.Validate(); err != nil {
		return nil, fmt.Errorf("gea: target: %w", err)
	}
	origBase := stubLen
	targetBase := origBase + len(orig.Code)
	exitIdx := targetBase + len(target.Code)

	code := make([]ir.Instr, 0, exitIdx+1)
	// Shared entry block with the opaque predicate: r7 == 1, compared
	// against 0, so the jeq edge into the target body is never taken.
	code = append(code,
		ir.Instr{Op: ir.MovI, A: predicateReg, B: 1},
		ir.Instr{Op: ir.CmpI, A: predicateReg, B: 0},
		ir.Instr{Op: ir.Jeq, A: int32(targetBase)},
	)
	code = appendRelocated(code, orig.Code, int32(origBase), int32(exitIdx))
	code = appendRelocated(code, target.Code, int32(targetBase), int32(exitIdx))
	// Shared exit block.
	code = append(code, ir.Instr{Op: ir.Ret})

	merged := &ir.Program{
		Name: fmt.Sprintf("gea(%s+%s)", orig.Name, target.Name),
		Code: code,
	}
	if err := merged.Validate(); err != nil {
		return nil, fmt.Errorf("gea: merged: %w", err)
	}
	return merged, nil
}

// appendRelocated copies body shifting jump targets by base and rewriting
// every ret into a jump to the shared exit block.
func appendRelocated(dst, body []ir.Instr, base, exitIdx int32) []ir.Instr {
	for _, ins := range body {
		switch {
		case ins.Op == ir.Ret:
			dst = append(dst, ir.Instr{Op: ir.Jmp, A: exitIdx})
		case ins.Op.IsJump():
			ins.A += base
			dst = append(dst, ins)
		default:
			dst = append(dst, ins)
		}
	}
	return dst
}

// VerifyEquivalent runs orig and merged on every probe input and returns
// ErrNotEquivalent if any observable trace differs. This is the
// functionality-preservation check the paper claims for GEA.
func VerifyEquivalent(orig, merged *ir.Program, inputs [][]int64) error {
	it := &ir.Interp{}
	for _, in := range inputs {
		want, err := it.Run(orig, in...)
		if err != nil {
			return fmt.Errorf("gea: running original on %v: %w", in, err)
		}
		got, err := it.Run(merged, in...)
		if err != nil {
			return fmt.Errorf("gea: running merged on %v: %w", in, err)
		}
		if !want.Equal(got) {
			return fmt.Errorf("%w: input %v: result %d vs %d, %d vs %d events",
				ErrNotEquivalent, in, want.Result, got.Result, len(want.Events), len(got.Events))
		}
	}
	return nil
}
