package gea

import (
	"errors"
	"fmt"
	"sort"

	"advmal/internal/synth"
)

// Selection errors.
var (
	// ErrNoSamples indicates an empty candidate pool.
	ErrNoSamples = errors.New("gea: no candidate samples")
	// ErrNoFixedNodeGroups indicates no node count had enough distinct
	// edge counts.
	ErrNoFixedNodeGroups = errors.New("gea: no fixed-node groups found")
)

// SizeLabel names a row of Tables IV and V.
type SizeLabel string

// Size labels, matching the paper's rows.
const (
	SizeMinimum SizeLabel = "Minimum"
	SizeMedian  SizeLabel = "Median"
	SizeMaximum SizeLabel = "Maximum"
)

// SizeTargets holds the three target samples of Tables IV/V: the
// minimum-, median-, and maximum-order CFG of the selected class.
type SizeTargets struct {
	Minimum *synth.Sample
	Median  *synth.Sample
	Maximum *synth.Sample
}

// Rows returns the targets in paper order with their labels.
func (t SizeTargets) Rows() []struct {
	Label  SizeLabel
	Sample *synth.Sample
} {
	return []struct {
		Label  SizeLabel
		Sample *synth.Sample
	}{
		{SizeMinimum, t.Minimum},
		{SizeMedian, t.Median},
		{SizeMaximum, t.Maximum},
	}
}

// SelectBySize picks the minimum, median, and maximum graph-size samples
// (size = number of CFG nodes, as in the paper) from the candidates with
// the given maliciousness.
func SelectBySize(samples []*synth.Sample, malicious bool) (SizeTargets, error) {
	pool := filter(samples, malicious)
	if len(pool) == 0 {
		return SizeTargets{}, ErrNoSamples
	}
	sort.SliceStable(pool, func(i, j int) bool { return pool[i].Nodes < pool[j].Nodes })
	return SizeTargets{
		Minimum: pool[0],
		Median:  pool[len(pool)/2],
		Maximum: pool[len(pool)-1],
	}, nil
}

// FixedNodeGroup is one block of Tables VI/VII: samples sharing a node
// count but differing in edge count.
type FixedNodeGroup struct {
	Nodes   int
	Samples []*synth.Sample // sorted by edge count, distinct edge counts
}

// SelectFixedNodes builds the Tables VI/VII target sets: groups of
// perGroup samples that share a CFG node count but have pairwise distinct
// edge counts. Up to numGroups groups are returned, spread across the
// node-count range (small, middle, large), sorted by node count.
func SelectFixedNodes(samples []*synth.Sample, malicious bool, numGroups, perGroup int) ([]FixedNodeGroup, error) {
	if numGroups <= 0 || perGroup <= 0 {
		return nil, fmt.Errorf("gea: invalid group shape %dx%d", numGroups, perGroup)
	}
	pool := filter(samples, malicious)
	byNodes := make(map[int]map[int]*synth.Sample) // nodes -> edges -> sample
	for _, s := range pool {
		m, ok := byNodes[s.Nodes]
		if !ok {
			m = make(map[int]*synth.Sample)
			byNodes[s.Nodes] = m
		}
		if _, dup := m[s.Edges]; !dup {
			m[s.Edges] = s
		}
	}
	var candidates []FixedNodeGroup
	for nodes, m := range byNodes {
		if len(m) < perGroup {
			continue
		}
		edges := make([]int, 0, len(m))
		for e := range m {
			edges = append(edges, e)
		}
		sort.Ints(edges)
		// Spread the chosen edge counts across the observed range.
		chosen := make([]*synth.Sample, perGroup)
		for k := 0; k < perGroup; k++ {
			chosen[k] = m[edges[k*(len(edges)-1)/max(perGroup-1, 1)]]
		}
		candidates = append(candidates, FixedNodeGroup{Nodes: nodes, Samples: chosen})
	}
	if len(candidates) == 0 {
		return nil, ErrNoFixedNodeGroups
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Nodes < candidates[j].Nodes })
	if len(candidates) <= numGroups {
		return candidates, nil
	}
	// Spread groups across the node-count range.
	out := make([]FixedNodeGroup, numGroups)
	for k := 0; k < numGroups; k++ {
		out[k] = candidates[k*(len(candidates)-1)/max(numGroups-1, 1)]
	}
	return out, nil
}

func filter(samples []*synth.Sample, malicious bool) []*synth.Sample {
	var out []*synth.Sample
	for _, s := range samples {
		if s.Malicious == malicious {
			out = append(out, s)
		}
	}
	return out
}
