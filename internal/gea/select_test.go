package gea

import (
	"errors"
	"testing"

	"advmal/internal/synth"
)

func fakeSample(id, nodes, edges int, malicious bool) *synth.Sample {
	return &synth.Sample{ID: id, Nodes: nodes, Edges: edges, Malicious: malicious}
}

func TestSelectBySize(t *testing.T) {
	samples := []*synth.Sample{
		fakeSample(0, 10, 12, false),
		fakeSample(1, 2, 1, false),
		fakeSample(2, 455, 600, false),
		fakeSample(3, 24, 30, false),
		fakeSample(4, 100, 150, false),
		fakeSample(5, 999, 1, true), // wrong class, must be ignored
	}
	targets, err := SelectBySize(samples, false)
	if err != nil {
		t.Fatal(err)
	}
	if targets.Minimum.Nodes != 2 {
		t.Errorf("minimum = %d nodes, want 2", targets.Minimum.Nodes)
	}
	if targets.Maximum.Nodes != 455 {
		t.Errorf("maximum = %d nodes, want 455", targets.Maximum.Nodes)
	}
	if targets.Median.Nodes != 24 {
		t.Errorf("median = %d nodes, want 24", targets.Median.Nodes)
	}
	rows := targets.Rows()
	if len(rows) != 3 || rows[0].Label != SizeMinimum || rows[2].Label != SizeMaximum {
		t.Errorf("Rows() = %+v", rows)
	}
}

func TestSelectBySizeEmpty(t *testing.T) {
	if _, err := SelectBySize(nil, false); !errors.Is(err, ErrNoSamples) {
		t.Errorf("SelectBySize(nil) = %v, want ErrNoSamples", err)
	}
	only := []*synth.Sample{fakeSample(0, 5, 5, true)}
	if _, err := SelectBySize(only, false); !errors.Is(err, ErrNoSamples) {
		t.Errorf("wrong-class pool = %v, want ErrNoSamples", err)
	}
}

func TestSelectFixedNodes(t *testing.T) {
	var samples []*synth.Sample
	id := 0
	// Three node counts with 4 distinct edge counts each, plus noise.
	for _, nodes := range []int{8, 33, 63} {
		for e := 0; e < 4; e++ {
			samples = append(samples, fakeSample(id, nodes, nodes+e*3, true))
			id++
		}
	}
	samples = append(samples, fakeSample(id, 100, 120, true)) // only one edge count
	groups, err := SelectFixedNodes(samples, true, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	wantNodes := []int{8, 33, 63}
	for gi, g := range groups {
		if g.Nodes != wantNodes[gi] {
			t.Errorf("group %d nodes = %d, want %d", gi, g.Nodes, wantNodes[gi])
		}
		if len(g.Samples) != 3 {
			t.Fatalf("group %d has %d samples, want 3", gi, len(g.Samples))
		}
		seen := map[int]bool{}
		prev := -1
		for _, s := range g.Samples {
			if s.Nodes != g.Nodes {
				t.Errorf("group %d sample has %d nodes", gi, s.Nodes)
			}
			if seen[s.Edges] {
				t.Errorf("group %d duplicate edge count %d", gi, s.Edges)
			}
			seen[s.Edges] = true
			if s.Edges <= prev {
				t.Errorf("group %d edges not ascending", gi)
			}
			prev = s.Edges
		}
	}
}

func TestSelectFixedNodesErrors(t *testing.T) {
	if _, err := SelectFixedNodes(nil, true, 0, 3); err == nil {
		t.Error("accepted zero groups")
	}
	// All samples share one edge count per node count: no group possible.
	samples := []*synth.Sample{
		fakeSample(0, 5, 6, true), fakeSample(1, 7, 8, true),
	}
	if _, err := SelectFixedNodes(samples, true, 3, 3); !errors.Is(err, ErrNoFixedNodeGroups) {
		t.Errorf("SelectFixedNodes = %v, want ErrNoFixedNodeGroups", err)
	}
}

func TestSelectFixedNodesSpreadsGroups(t *testing.T) {
	var samples []*synth.Sample
	id := 0
	for nodes := 5; nodes <= 50; nodes += 5 { // 10 candidate groups
		for e := 0; e < 3; e++ {
			samples = append(samples, fakeSample(id, nodes, nodes+e, true))
			id++
		}
	}
	groups, err := SelectFixedNodes(samples, true, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	if groups[0].Nodes != 5 || groups[2].Nodes != 50 {
		t.Errorf("groups not spread across range: %d..%d", groups[0].Nodes, groups[2].Nodes)
	}
	if groups[1].Nodes <= groups[0].Nodes || groups[1].Nodes >= groups[2].Nodes {
		t.Errorf("middle group %d not between extremes", groups[1].Nodes)
	}
}

func TestSelectFixedNodesOnRealCorpus(t *testing.T) {
	samples, err := synth.Generate(synth.Config{Seed: 5, NumBenign: 60, NumMal: 300})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := SelectFixedNodes(samples, true, 3, 3)
	if err != nil {
		t.Fatalf("real corpus has no fixed-node groups: %v", err)
	}
	if len(groups) != 3 {
		t.Errorf("groups = %d, want 3 (Tables VI/VII shape)", len(groups))
	}
}
