package gea

import (
	"strings"
	"sync"
	"testing"

	"advmal/internal/dataset"
	"advmal/internal/features"
	"advmal/internal/nn"
	"advmal/internal/synth"
)

var (
	pipeOnce    sync.Once
	pipeShared  *Pipeline
	pipeSamples []*synth.Sample
)

// testPipeline builds a small trained detector once and shares it.
func testPipeline(t *testing.T) (*Pipeline, []*synth.Sample) {
	t.Helper()
	pipeOnce.Do(func() {
		samples, err := synth.Generate(synth.Config{Seed: 21, NumBenign: 40, NumMal: 120})
		if err != nil {
			panic(err)
		}
		ds, err := dataset.FromSamples(samples, 0)
		if err != nil {
			panic(err)
		}
		scaler := &features.Scaler{}
		if err := scaler.Fit(ds.RawVectors()); err != nil {
			panic(err)
		}
		x, err := scaler.TransformAll(ds.RawVectors())
		if err != nil {
			panic(err)
		}
		xs := make([][]float64, len(x))
		for i := range x {
			xs[i] = x[i]
		}
		net := nn.PaperCNN(3)
		tr := &nn.Trainer{Epochs: 15, BatchSize: 32, Seed: 4, Workers: 2}
		if _, err := tr.Fit(net, xs, ds.Labels()); err != nil {
			panic(err)
		}
		pipeShared = &Pipeline{Net: net, Scaler: scaler, Verify: true}
		pipeSamples = samples
	})
	return pipeShared, pipeSamples
}

func TestRunTarget(t *testing.T) {
	p, samples := testPipeline(t)
	var origs []*synth.Sample
	for _, s := range samples {
		if s.Malicious {
			origs = append(origs, s)
		}
		if len(origs) == 25 {
			break
		}
	}
	targets, err := SelectBySize(samples, false)
	if err != nil {
		t.Fatal(err)
	}
	row, err := p.RunTarget(origs, targets.Maximum, nn.ClassBenign)
	if err != nil {
		t.Fatal(err)
	}
	if row.Total != len(origs) {
		t.Errorf("Total = %d, want %d", row.Total, len(origs))
	}
	if row.Verified != row.Total {
		t.Errorf("Verified = %d, want %d (all GEA samples preserve functionality)",
			row.Verified, row.Total)
	}
	if row.MR < 0 || row.MR > 1 {
		t.Errorf("MR = %v", row.MR)
	}
	if row.AvgCT <= 0 {
		t.Errorf("AvgCT = %v", row.AvgCT)
	}
	if row.TargetNodes != targets.Maximum.Nodes {
		t.Errorf("TargetNodes = %d, want %d", row.TargetNodes, targets.Maximum.Nodes)
	}
}

func TestRunSizeExperimentShape(t *testing.T) {
	p, samples := testPipeline(t)
	rows, err := p.RunSizeExperiment(samples[:60], samples, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (min/median/max)", len(rows))
	}
	wantLabels := []SizeLabel{SizeMinimum, SizeMedian, SizeMaximum}
	for i, r := range rows {
		if r.Label != wantLabels[i] {
			t.Errorf("row %d label = %q, want %q", i, r.Label, wantLabels[i])
		}
	}
	if rows[0].TargetNodes > rows[1].TargetNodes || rows[1].TargetNodes > rows[2].TargetNodes {
		t.Errorf("target sizes not ascending: %d, %d, %d",
			rows[0].TargetNodes, rows[1].TargetNodes, rows[2].TargetNodes)
	}
}

func TestRunSizeExperimentNoOrigs(t *testing.T) {
	p, samples := testPipeline(t)
	var benignOnly []*synth.Sample
	for _, s := range samples {
		if !s.Malicious {
			benignOnly = append(benignOnly, s)
		}
	}
	// Malware->benign needs malware originals; passing only benign
	// samples must fail cleanly.
	if _, err := p.RunSizeExperiment(benignOnly, samples, false); err == nil {
		t.Error("RunSizeExperiment accepted an empty original pool")
	}
}

func TestRunFixedNodesExperimentShape(t *testing.T) {
	p, samples := testPipeline(t)
	rows, err := p.RunFixedNodesExperiment(samples[:60], samples, true, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 2 groups x 2 targets", len(rows))
	}
	// Within a group the node count is fixed.
	if rows[0].TargetNodes != rows[1].TargetNodes {
		t.Errorf("group 1 node counts differ: %d vs %d", rows[0].TargetNodes, rows[1].TargetNodes)
	}
	if rows[0].TargetEdges == rows[1].TargetEdges {
		t.Error("group 1 edge counts identical; want distinct")
	}
}

func TestRowString(t *testing.T) {
	r := Row{Label: SizeMedian, TargetNodes: 24, TargetEdges: 30, MR: 0.9548, Total: 100}
	s := r.String()
	for _, want := range []string{"Median", "24", "95.48"} {
		if !strings.Contains(s, want) {
			t.Errorf("Row.String() = %q missing %q", s, want)
		}
	}
}
