package gea

import (
	"errors"
	"testing"

	"advmal/internal/ir"
	"advmal/internal/synth"
)

func mustMerge(t *testing.T, orig, target *ir.Program) *ir.Program {
	t.Helper()
	m, err := Merge(orig, target)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	return m
}

func TestMergeFigures(t *testing.T) {
	orig := figOriginal(t)
	target := figTarget(t)
	merged := mustMerge(t, orig, target)

	origCFG, err := ir.Disassemble(orig)
	if err != nil {
		t.Fatal(err)
	}
	targetCFG, err := ir.Disassemble(target)
	if err != nil {
		t.Fatal(err)
	}
	mergedCFG, err := ir.Disassemble(merged)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 4 structure: original blocks + target blocks + shared entry +
	// shared exit.
	wantNodes := origCFG.G().N() + targetCFG.G().N() + 2
	if mergedCFG.G().N() != wantNodes {
		t.Errorf("merged nodes = %d, want %d", mergedCFG.G().N(), wantNodes)
	}
	g := mergedCFG.G()
	// The entry block (0) has exactly two successors: the original body
	// (fallthrough) and the target body (opaque-predicate branch).
	if g.OutDegree(0) != 2 {
		t.Errorf("entry out-degree = %d, want 2", g.OutDegree(0))
	}
	// The shared exit is the last block, ends in ret, no successors.
	exit := g.N() - 1
	if g.OutDegree(exit) != 0 {
		t.Errorf("exit out-degree = %d, want 0", g.OutDegree(exit))
	}
	// Exit is reached from both subgraphs: at least two predecessors.
	if g.InDegree(exit) < 2 {
		t.Errorf("exit in-degree = %d, want >= 2 (shared exit)", g.InDegree(exit))
	}
	// Every block is reachable from the shared entry in the CFG, even
	// though the target body never executes.
	for v, ok := range g.ReachableFrom(0) {
		if !ok {
			t.Errorf("block %d unreachable from shared entry", v)
		}
	}
}

func TestMergePreservesFunctionality(t *testing.T) {
	orig := figOriginal(t)
	merged := mustMerge(t, orig, figTarget(t))
	if err := VerifyEquivalent(orig, merged, synth.ProbeInputs()); err != nil {
		t.Fatalf("VerifyEquivalent: %v", err)
	}
	// The target body must NOT execute: the merged trace has the same
	// step count as the original plus the 3-instruction stub plus the
	// final jump-to-exit replacement cost.
	it := &ir.Interp{}
	origTr, err := it.Run(orig)
	if err != nil {
		t.Fatal(err)
	}
	mergedTr, err := it.Run(merged)
	if err != nil {
		t.Fatal(err)
	}
	// stub (3) + ret rewritten to jmp (+1 for the extra hop to the
	// shared exit's ret) = exactly 4 extra steps.
	if mergedTr.Steps != origTr.Steps+4 {
		t.Errorf("merged steps = %d, want %d+5 (target body must not run)",
			mergedTr.Steps, origTr.Steps)
	}
}

func TestMergeIsSymmetricallyUsable(t *testing.T) {
	// Merging in the opposite direction also works and preserves the
	// *other* program's behaviour.
	orig := figTarget(t)
	merged := mustMerge(t, orig, figOriginal(t))
	if err := VerifyEquivalent(orig, merged, synth.ProbeInputs()); err != nil {
		t.Fatalf("reverse merge: %v", err)
	}
}

func TestMergeRejectsInvalidPrograms(t *testing.T) {
	valid := figOriginal(t)
	if _, err := Merge(&ir.Program{}, valid); err == nil {
		t.Error("Merge accepted invalid original")
	}
	if _, err := Merge(valid, &ir.Program{}); err == nil {
		t.Error("Merge accepted invalid target")
	}
}

func TestMergeDoesNotMutateInputs(t *testing.T) {
	orig := figOriginal(t)
	target := figTarget(t)
	origLen, targetLen := len(orig.Code), len(target.Code)
	origJle := orig.Code[3]
	mustMerge(t, orig, target)
	if len(orig.Code) != origLen || len(target.Code) != targetLen {
		t.Fatal("Merge changed input program lengths")
	}
	if orig.Code[3] != origJle {
		t.Fatal("Merge rewrote the original's jump targets in place")
	}
}

func TestVerifyEquivalentDetectsDivergence(t *testing.T) {
	orig := figOriginal(t)
	broken := orig.Clone()
	// Change the loop bound: result differs.
	broken.Code[2].B = 5
	err := VerifyEquivalent(orig, broken, synth.ProbeInputs())
	if !errors.Is(err, ErrNotEquivalent) {
		t.Errorf("VerifyEquivalent = %v, want ErrNotEquivalent", err)
	}
}

func TestVerifyEquivalentRunErrors(t *testing.T) {
	orig := figOriginal(t)
	if err := VerifyEquivalent(&ir.Program{}, orig, synth.ProbeInputs()); err == nil {
		t.Error("VerifyEquivalent accepted invalid original")
	}
	if err := VerifyEquivalent(orig, &ir.Program{}, synth.ProbeInputs()); err == nil {
		t.Error("VerifyEquivalent accepted invalid merged program")
	}
}

// TestMergeEquivalenceOverCorpus is the paper's functionality-preservation
// claim checked as a property over generated samples: any corpus program
// merged with any other keeps its observable behaviour.
func TestMergeEquivalenceOverCorpus(t *testing.T) {
	samples, err := synth.Generate(synth.Config{Seed: 11, NumBenign: 15, NumMal: 30})
	if err != nil {
		t.Fatal(err)
	}
	inputs := synth.ProbeInputs()
	pairs := 0
	for i := 0; i < len(samples) && pairs < 40; i += 3 {
		j := (i*7 + 5) % len(samples)
		if i == j {
			continue
		}
		merged, err := Merge(samples[i].Prog, samples[j].Prog)
		if err != nil {
			t.Fatalf("Merge(%s,%s): %v", samples[i].Name, samples[j].Name, err)
		}
		if err := VerifyEquivalent(samples[i].Prog, merged, inputs); err != nil {
			t.Fatalf("equivalence broken for %s + %s: %v",
				samples[i].Name, samples[j].Name, err)
		}
		pairs++
	}
	if pairs == 0 {
		t.Fatal("no pairs tested")
	}
}

// TestMergeNodeAccounting: merged CFG sizes follow orig + target + 2 for
// arbitrary corpus programs, not just the figure examples.
func TestMergeNodeAccounting(t *testing.T) {
	samples, err := synth.Generate(synth.Config{Seed: 13, NumBenign: 6, NumMal: 12})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k+1 < len(samples) && k < 10; k += 2 {
		orig, target := samples[k], samples[k+1]
		merged, err := Merge(orig.Prog, target.Prog)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := ir.Disassemble(merged)
		if err != nil {
			t.Fatal(err)
		}
		want := orig.Nodes + target.Nodes + 2
		if cfg.G().N() != want {
			t.Errorf("%s+%s: merged nodes %d, want %d",
				orig.Name, target.Name, cfg.G().N(), want)
		}
	}
}

func TestFigurePrograms(t *testing.T) {
	it := &ir.Interp{}
	tr, err := it.Run(figOriginal(t))
	if err != nil {
		t.Fatal(err)
	}
	// The Fig. 2 loop counts 0 -> 10.
	if tr.Result != 10 {
		t.Errorf("fig2 result = %d, want 10", tr.Result)
	}
	tr, err = it.Run(figTarget(t))
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 3 leaves 10 in r4 but never moves it to r0.
	if tr.Result != 0 {
		t.Errorf("fig3 result = %d, want 0", tr.Result)
	}
}
