package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// quantTolerance is the calibrated probability tolerance the int8 engine
// is held to against the float64 oracle: with per-tensor affine codes
// (≤255 levels per tensor) and calibrated activation ranges, the
// end-to-end probability error stays well under this bound on inputs
// drawn from the calibrated distribution; the property tests below pin
// it across random architectures, seeds, and a trained model. The serve
// tier's borderline band (default 0.2 top-two margin) is an order of
// magnitude wider, so a bulk-tier score can never be quantization noise
// away from flipping without the row escalating to the float engine.
const quantTolerance = 0.08

// quantBand is the borderline top-two-probability margin used by the
// agreement property: samples whose float margin exceeds the band must
// agree on argmax ≥99.9% of the time.
const quantBand = 0.2

// calibSamples draws n random inputs spanning roughly the scaled-feature
// range the pipeline produces, with some mass outside [0, 1] so the
// calibration covers attack-perturbed vectors too.
func calibSamples(rng *rand.Rand, n, dim int) [][]float64 {
	xs := make([][]float64, n)
	for i := range xs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64()*1.4 - 0.2
		}
		xs[i] = v
	}
	return xs
}

// quantArch bundles one architecture under quantization test.
type quantArch struct {
	name string
	net  *Network
}

func quantArchs(t *testing.T) []quantArch {
	t.Helper()
	archs := []quantArch{
		{"paper-cnn/3", PaperCNN(3)},
		{"paper-cnn/17", PaperCNN(17)},
		{"small-mlp-23-32-2", SmallMLP(5, 23, 32, 2)},
		{"small-mlp-10-16-3", SmallMLP(6, 10, 16, 3)},
	}
	// One trained, confidently separating model: quantization error on
	// saturated logits is the case Table I cares about.
	trained := SmallMLP(7, 23, 48, 2)
	x, y := blobs(21, 240, 23)
	tr := &Trainer{Epochs: 15, BatchSize: 32, Seed: 9}
	if _, err := tr.Fit(trained, x, y); err != nil {
		t.Fatalf("train small mlp: %v", err)
	}
	archs = append(archs, quantArch{"trained-mlp", trained})
	return archs
}

// TestQuantProbsCloseToFloat is the headline property: across random
// architectures and inputs drawn from the calibrated range, the int8
// engine's probabilities stay within quantTolerance of the float64
// oracle, and argmax agreement away from the borderline band is ≥99.9%.
func TestQuantProbsCloseToFloat(t *testing.T) {
	for _, a := range quantArchs(t) {
		t.Run(a.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(101))
			dim := a.net.InputDim()
			calib, err := Calibrate(a.net, calibSamples(rng, 400, dim))
			if err != nil {
				t.Fatalf("Calibrate: %v", err)
			}
			qm, err := Quantize(a.net, calib)
			if err != nil {
				t.Fatalf("Quantize: %v", err)
			}
			qws := qm.NewWS()
			fws := a.net.CloneShared().WS()

			const samples = 3000
			var maxDelta, sumDelta float64
			confident, disagree := 0, 0
			for s := 0; s < samples; s++ {
				x := calibSamples(rng, 1, dim)[0]
				pf := append([]float64(nil), fws.Probs(x)...)
				pq := qws.Probs(x)
				for k := range pf {
					d := math.Abs(pf[k] - pq[k])
					sumDelta += d / float64(len(pf))
					if d > maxDelta {
						maxDelta = d
					}
				}
				top, second := topTwo(pf)
				if pf[top]-pf[second] > quantBand {
					confident++
					if Argmax(pq) != top {
						disagree++
					}
				}
			}
			t.Logf("%s: max|Δp|=%.4f mean|Δp|=%.5f confident=%d disagree=%d",
				a.name, maxDelta, sumDelta/samples, confident, disagree)
			if maxDelta > quantTolerance {
				t.Errorf("max |p_quant - p_float| = %.4f exceeds calibrated tolerance %.2f",
					maxDelta, quantTolerance)
			}
			if confident > 0 {
				agree := 1 - float64(disagree)/float64(confident)
				if agree < 0.999 {
					t.Errorf("argmax agreement %.4f < 0.999 on %d samples outside the %.2f band",
						agree, confident, quantBand)
				}
			}
		})
	}
}

func topTwo(p []float64) (top, second int) {
	top = Argmax(p)
	second = -1
	for i := range p {
		if i == top {
			continue
		}
		if second < 0 || p[i] > p[second] {
			second = i
		}
	}
	if second < 0 {
		second = top
	}
	return top, second
}

// TestQuantDeterministic pins the quantized path to byte-identical
// outputs across calls and across independent workspaces over the same
// model — all arithmetic is integer plus one fixed-rounding float
// rescale, so there is nothing scheduling- or state-dependent.
func TestQuantDeterministic(t *testing.T) {
	net := PaperCNN(23)
	rng := rand.New(rand.NewSource(3))
	calib, err := Calibrate(net, calibSamples(rng, 100, net.InputDim()))
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	qm, err := Quantize(net, calib)
	if err != nil {
		t.Fatalf("Quantize: %v", err)
	}
	a, b := qm.NewWS(), qm.NewWS()
	for s := 0; s < 50; s++ {
		x := calibSamples(rng, 1, net.InputDim())[0]
		pa := append([]float64(nil), a.Probs(x)...)
		pb := b.Probs(x)
		pa2 := a.Probs(x)
		for k := range pa {
			if math.Float64bits(pa[k]) != math.Float64bits(pb[k]) ||
				math.Float64bits(pa[k]) != math.Float64bits(pa2[k]) {
				t.Fatalf("sample %d class %d: %v %v %v", s, k, pa[k], pb[k], pa2[k])
			}
		}
	}
}

// TestQuantProbsBatch pins ProbsBatch to the per-row path bit-for-bit
// and checks dst reuse semantics match Workspace.ProbsBatch.
func TestQuantProbsBatch(t *testing.T) {
	net := SmallMLP(11, 23, 32, 2)
	rng := rand.New(rand.NewSource(4))
	calib, err := Calibrate(net, calibSamples(rng, 50, 23))
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	qm, err := Quantize(net, calib)
	if err != nil {
		t.Fatalf("Quantize: %v", err)
	}
	ws := qm.NewWS()
	xs := calibSamples(rng, 17, 23)
	var dst [][]float64
	dst = ws.ProbsBatch(xs, dst)
	if len(dst) != len(xs) {
		t.Fatalf("got %d rows, want %d", len(dst), len(xs))
	}
	ref := qm.NewWS()
	for r, x := range xs {
		p := ref.Probs(x)
		for k := range p {
			if math.Float64bits(p[k]) != math.Float64bits(dst[r][k]) {
				t.Fatalf("row %d class %d: batch %v per-row %v", r, k, dst[r][k], p[k])
			}
		}
	}
	// Reuse must not allocate new rows.
	again := ws.ProbsBatch(xs[:5], dst)
	if &again[0][0] != &dst[0][0] {
		t.Fatalf("dst rows were reallocated on reuse")
	}
}

// TestQuantSafeProbs checks the serving-path error boundary: dimension
// mismatch is an ErrBadInput error, not a panic, and the returned slice
// is fresh (not aliased to workspace buffers).
func TestQuantSafeProbs(t *testing.T) {
	net := SmallMLP(13, 23, 16, 2)
	rng := rand.New(rand.NewSource(5))
	calib, err := Calibrate(net, calibSamples(rng, 20, 23))
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	qm, err := Quantize(net, calib)
	if err != nil {
		t.Fatalf("Quantize: %v", err)
	}
	ws := qm.NewWS()
	if _, err := ws.SafeProbs(make([]float64, 7)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("short input: got %v, want ErrBadInput", err)
	}
	x := calibSamples(rng, 1, 23)[0]
	p1, err := ws.SafeProbs(x)
	if err != nil {
		t.Fatalf("SafeProbs: %v", err)
	}
	p2, err := ws.SafeProbs(calibSamples(rng, 1, 23)[0])
	if err != nil {
		t.Fatalf("SafeProbs: %v", err)
	}
	if &p1[0] == &p2[0] {
		t.Fatalf("SafeProbs returned aliased slices")
	}
	// Saturating inputs (way outside calibration) must still produce
	// finite probabilities — they clamp, not overflow.
	huge := make([]float64, 23)
	for i := range huge {
		huge[i] = 1e18 * float64(1-2*(i%2))
	}
	p, err := ws.SafeProbs(huge)
	if err != nil {
		t.Fatalf("SafeProbs(huge): %v", err)
	}
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite prob %v on saturating input", v)
		}
	}
}

// TestQuantErrors covers the compile-time guard rails.
func TestQuantErrors(t *testing.T) {
	net := SmallMLP(17, 8, 8, 2)
	if _, err := Quantize(net, nil); !errors.Is(err, ErrNoCalibration) {
		t.Fatalf("nil calibration: got %v", err)
	}
	if _, err := Quantize(net, &Calibration{Min: []float64{0}, Max: []float64{1}}); !errors.Is(err, ErrNoCalibration) {
		t.Fatalf("short calibration: got %v", err)
	}
	if _, err := Calibrate(net, nil); !errors.Is(err, ErrNoCalibration) {
		t.Fatalf("empty set: got %v", err)
	}
	if _, err := Calibrate(net, [][]float64{make([]float64, 3)}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("bad dim: got %v", err)
	}
	// A network ending in ReLU after the last Dense is not quantizable.
	rng := rand.New(rand.NewSource(1))
	bad := NewNetwork([]int{4}, 2,
		NewDense("fc", 4, 2, rng),
		NewReLU("relu"),
	)
	calib, err := Calibrate(bad, [][]float64{{0.1, 0.2, 0.3, 0.4}})
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if _, err := Quantize(bad, calib); !errors.Is(err, ErrQuantUnsupported) {
		t.Fatalf("trailing relu: got %v", err)
	}
}

// TestQuantAllocFree pins the steady-state quantized forward to zero
// allocations, matching the float workspace's contract.
func TestQuantAllocFree(t *testing.T) {
	net := PaperCNN(29)
	rng := rand.New(rand.NewSource(6))
	calib, err := Calibrate(net, calibSamples(rng, 30, net.InputDim()))
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	qm, err := Quantize(net, calib)
	if err != nil {
		t.Fatalf("Quantize: %v", err)
	}
	ws := qm.NewWS()
	x := calibSamples(rng, 1, net.InputDim())[0]
	ws.Probs(x)
	if n := testing.AllocsPerRun(50, func() { ws.Probs(x) }); n != 0 {
		t.Fatalf("Probs allocates %v per run, want 0", n)
	}
}

// BenchmarkQuantForward measures the quantized per-row forward against
// the float64 workspace on the paper CNN — the bulk-tier speedup claim
// in BENCH_serve.json rests on this gap.
func BenchmarkQuantForward(b *testing.B) {
	net := PaperCNN(31)
	rng := rand.New(rand.NewSource(8))
	calib, err := Calibrate(net, calibSamples(rng, 50, net.InputDim()))
	if err != nil {
		b.Fatalf("Calibrate: %v", err)
	}
	qm, err := Quantize(net, calib)
	if err != nil {
		b.Fatalf("Quantize: %v", err)
	}
	x := calibSamples(rng, 1, net.InputDim())[0]
	b.Run("quant", func(b *testing.B) {
		ws := qm.NewWS()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ws.Probs(x)
		}
	})
	b.Run("float-ws", func(b *testing.B) {
		ws := net.CloneShared().WS()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ws.Probs(x)
		}
	})
}

var _ = fmt.Sprintf // keep fmt for debug logging during development
