package nn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"advmal/internal/tensor"
)

// buildRandomNet builds a random conv/pool/dropout/dense stack for the
// bit-identity property test: kernel sizes 1/3/5, both paddings, with
// enough variety to hit every workspace kernel including the fused k=3
// interior/edge splits at small lengths.
func buildRandomNet(rng *rand.Rand) *Network {
	for {
		wrng := rand.New(rand.NewSource(rng.Int63()))
		length := 5 + rng.Intn(28)
		ch := 1
		classes := 2 + rng.Intn(3)
		inLen := length
		var layers []Layer
		ok := true
		blocks := 1 + rng.Intn(3)
		for b := 0; b < blocks; b++ {
			k := []int{1, 3, 3, 3, 5}[rng.Intn(5)]
			same := rng.Intn(2) == 0
			if !same && length < k {
				same = true
			}
			cout := 1 + rng.Intn(8)
			layers = append(layers, NewConv1D(fmt.Sprintf("conv%d", b), ch, cout, k, same, wrng))
			if !same {
				length = length - k + 1
			}
			ch = cout
			layers = append(layers, NewReLU(fmt.Sprintf("relu%d", b)))
			if length >= 2 && rng.Intn(2) == 0 {
				layers = append(layers, NewMaxPool1D(fmt.Sprintf("pool%d", b), 2))
				length /= 2
			}
			if rng.Intn(2) == 0 {
				layers = append(layers, NewDropout(fmt.Sprintf("drop%d", b), 0.25, rng.Int63()))
			}
			if length < 1 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		layers = append(layers, NewFlatten("flatten"))
		hidden := 4 + rng.Intn(24)
		layers = append(layers,
			NewDense("fc1", ch*length, hidden, wrng),
			NewReLU("reluF"),
			NewDropout("dropF", 0.5, rng.Int63()),
			NewDense("logits", hidden, classes, wrng),
		)
		return NewNetwork([]int{1, inLen}, classes, layers...)
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func bitsEqual(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d = %v (bits %x), oracle %v (bits %x)",
				what, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestWorkspaceBitIdentical is the central property test: on random
// architectures (kernel sizes 1/3/5, both paddings, random pools and
// dropouts) and random inputs, every workspace query — eval and train
// forward, probs, loss/logit gradients, Jacobian, and full backward with
// parameter accumulation — is bit-for-bit identical to the allocating
// oracle.
func TestWorkspaceBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		net := buildRandomNet(rng)
		view := net.CloneShared()
		ws := NewWorkspace(view)
		dim := net.InputDim()

		for rep := 0; rep < 3; rep++ {
			x := randVec(rng, dim)

			bitsEqual(t, "eval logits", ws.Logits(x), net.Logits(x))
			bitsEqual(t, "probs", ws.Probs(x), net.Probs(x))
			if gp, gn := ws.Predict(x), net.Predict(x); gp != gn {
				t.Fatalf("predict: ws %d oracle %d", gp, gn)
			}

			// Train-mode forward: align the dropout streams first.
			seed := rng.Int63()
			net.Reseed(seed)
			ws.Reseed(seed)
			bitsEqual(t, "train logits", ws.Forward(x, true), net.Forward(x, true))

			label := rng.Intn(net.NumClasses())
			wl, wg := ws.LossGrad(x, label)
			nl, ng := net.LossGrad(x, label)
			if math.Float64bits(wl) != math.Float64bits(nl) {
				t.Fatalf("loss: ws %v oracle %v", wl, nl)
			}
			bitsEqual(t, "loss input-grad", wg, ng)

			k := rng.Intn(net.NumClasses())
			wlog, wgk := ws.LogitGrad(x, k)
			nlog, ngk := net.LogitGrad(x, k)
			bitsEqual(t, "logitgrad logits", wlog, nlog)
			bitsEqual(t, "logitgrad grad", wgk, ngk)

			wjl, wj := ws.Jacobian(x)
			njl, nj := net.Jacobian(x)
			bitsEqual(t, "jacobian logits", wjl, njl)
			for r := range nj {
				bitsEqual(t, fmt.Sprintf("jacobian row %d", r), wj[r], nj[r])
			}

			// Full backward with parameter accumulation, train mode:
			// run TrainStep on the workspace and the equivalent
			// composition on the oracle, then compare every Param.G of
			// the private views bitwise.
			net.Reseed(seed)
			ws.Reseed(seed)
			net.ZeroGrad()
			ws.ZeroGrad()
			weight := 1.0
			if rep == 1 {
				weight = 1.75
			}
			wloss, _ := ws.TrainStep(x, label, weight)
			logits := net.Forward(x, true)
			oloss, dLogits := SoftmaxCE(logits, label)
			if weight != 1 {
				oloss *= weight
				for j := range dLogits {
					dLogits[j] *= weight
				}
			}
			net.Backward(dLogits)
			if math.Float64bits(wloss) != math.Float64bits(oloss) {
				t.Fatalf("train loss: ws %v oracle %v", wloss, oloss)
			}
			op, wp := net.Params(), view.Params()
			for pi := range op {
				bitsEqual(t, "param grad "+op[pi].Name, wp[pi].G, op[pi].G)
			}
		}
	}
}

// TestWorkspaceZeroTapFallback pins the zero-weight edge case: the
// forward oracle skips zero taps, so the fused kernel must detect them
// and fall back to the exact per-tap loop.
func TestWorkspaceZeroTapFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := PaperCNN(3)
	// Zero one tap of each k=3 conv weight row in the first conv layers.
	for _, l := range net.Layers() {
		if c, ok := l.(*Conv1D); ok {
			for i := 0; i < len(c.w.W); i += 3 {
				c.w.W[i+rng.Intn(3)] = 0
			}
		}
	}
	ws := NewWorkspace(net.CloneShared())
	for rep := 0; rep < 5; rep++ {
		x := randVec(rng, net.InputDim())
		bitsEqual(t, "zero-tap logits", ws.Logits(x), net.Logits(x))
		label := rep % 2
		wl, wg := ws.LossGrad(x, label)
		nl, ng := net.LossGrad(x, label)
		if math.Float64bits(wl) != math.Float64bits(nl) {
			t.Fatalf("zero-tap loss: ws %v oracle %v", wl, nl)
		}
		bitsEqual(t, "zero-tap grad", wg, ng)
	}
}

// scaleLayer is a Layer type the workspace has no kernel for, to exercise
// the oracleKernel fallback.
type scaleLayer struct{ f float64 }

func (s *scaleLayer) Name() string       { return "scale" }
func (s *scaleLayer) Params() []*Param   { return nil }
func (s *scaleLayer) CloneShared() Layer { return &scaleLayer{f: s.f} }
func (s *scaleLayer) Forward(x *tensor.T, _ bool) *tensor.T {
	y := x.Clone()
	for i := range y.Data {
		y.Data[i] *= s.f
	}
	return y
}
func (s *scaleLayer) Backward(g *tensor.T) *tensor.T {
	d := g.Clone()
	for i := range d.Data {
		d.Data[i] *= s.f
	}
	return d
}

func TestWorkspaceFallbackKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	wrng := newTestRNG()
	net := NewNetwork([]int{6}, 2,
		NewDense("fc1", 6, 12, wrng),
		&scaleLayer{f: 0.5},
		NewReLU("relu"),
		NewDense("fc2", 12, 2, wrng),
	)
	ws := NewWorkspace(net.CloneShared())
	for rep := 0; rep < 4; rep++ {
		x := randVec(rng, 6)
		bitsEqual(t, "fallback logits", ws.Logits(x), net.Logits(x))
		_, wg := ws.LossGrad(x, 1)
		_, ng := net.LossGrad(x, 1)
		bitsEqual(t, "fallback grad", wg, ng)
	}
}

// TestWorkspaceBatchAPIs pins ProbsBatch/PredictBatch/GradBatch to their
// single-call counterparts and checks the dst-reuse contract.
func TestWorkspaceBatchAPIs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := PaperCNN(2)
	ws := net.WS()
	n := 12
	xs := make([][]float64, n)
	labels := make([]int, n)
	for i := range xs {
		xs[i] = randVec(rng, net.InputDim())
		labels[i] = i % 2
	}

	probs := ws.ProbsBatch(xs, nil)
	preds := ws.PredictBatch(xs, nil)
	losses, grads := ws.GradBatch(xs, labels, nil, nil)
	for i := range xs {
		bitsEqual(t, "batch probs", probs[i], net.Probs(xs[i]))
		if want := net.Predict(xs[i]); preds[i] != want {
			t.Fatalf("batch predict %d: got %d want %d", i, preds[i], want)
		}
		wl, wg := net.LossGrad(xs[i], labels[i])
		if math.Float64bits(losses[i]) != math.Float64bits(wl) {
			t.Fatalf("batch loss %d: got %v want %v", i, losses[i], wl)
		}
		bitsEqual(t, "batch grad", grads[i], wg)
	}

	// Reusing the returned buffers must not allocate new rows.
	p0, g0 := probs[0], grads[0]
	probs = ws.ProbsBatch(xs, probs)
	_, grads = ws.GradBatch(xs, labels, losses, grads)
	if &probs[0][0] != &p0[0] || &grads[0][0] != &g0[0] {
		t.Fatal("batch APIs did not reuse caller buffers")
	}
}

// TestWorkspaceSafeProbs covers the serving-path contract: dimension
// validation, and a returned slice that does not alias workspace
// internals.
func TestWorkspaceSafeProbs(t *testing.T) {
	net := PaperCNN(4)
	ws := net.WS()
	if _, err := ws.SafeProbs(make([]float64, 7)); err == nil {
		t.Fatal("SafeProbs accepted a wrong-dimension input")
	}
	x := randVec(rand.New(rand.NewSource(3)), net.InputDim())
	p, err := ws.SafeProbs(x)
	if err != nil {
		t.Fatalf("SafeProbs: %v", err)
	}
	// Mutating the workspace afterwards must not change p.
	keep := append([]float64(nil), p...)
	ws.Probs(randVec(rand.New(rand.NewSource(4)), net.InputDim()))
	bitsEqual(t, "retained probs", p, keep)
}

// TestWorkspaceAllocFree is the allocation-regression gate from the
// issue: steady-state Forward+Backward (and the attack-side gradient
// queries) on the paper architecture run with zero allocations.
func TestWorkspaceAllocFree(t *testing.T) {
	net := PaperCNN(1)
	ws := net.WS()
	x := randVec(rand.New(rand.NewSource(2)), net.InputDim())

	// Warm up once (lazy nothing remains, but keep the measurement pure).
	ws.TrainStep(x, 1, 1)
	ws.LossGrad(x, 1)

	if n := testing.AllocsPerRun(50, func() { ws.TrainStep(x, 1, 1) }); n > 0 {
		t.Errorf("TrainStep allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { ws.LossGrad(x, 0) }); n > 0 {
		t.Errorf("LossGrad allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { ws.Jacobian(x) }); n > 0 {
		t.Errorf("Jacobian allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { ws.Probs(x) }); n > 0 {
		t.Errorf("Probs allocates %v/op, want 0", n)
	}
}
