package nn

import (
	"fmt"

	"advmal/internal/tensor"
)

// Batch-major eval forward: the serving-path engine behind ProbsBatch and
// PredictBatch. The per-row path executes one input through the layers
// with each output element's accumulator chain serialized in memory (the
// k=3 conv read-modify-writes every output once per input channel; the
// Dense matvec has one long add chain per output), which leaves the
// forward pass latency-bound on scalar FP adds. With a whole batch in
// hand the loops can be restructured for instruction-level parallelism
// without touching the math:
//
//   - Conv1D (k=3): outputs are computed t-tile-at-a-time in registers
//     with the input-channel loop innermost, so the per-(channel, tap)
//     partial sums accumulate in registers instead of through the output
//     row, and four independent accumulator chains overlap their add
//     latencies.
//   - Dense: rows are processed four at a time with the four dot-product
//     chains interleaved in the inner loop — one request has exactly one
//     chain per output, so this headroom exists only when a batch is
//     available, which is precisely what micro-batching buys.
//   - ReLU / eval-mode MaxPool run over the packed batch arena without
//     the mask/argmax bookkeeping only the backward pass needs; eval-mode
//     Dropout is the identity and vanishes.
//
// Every per-(row, output-element) floating-point sequence — bias first,
// then tap/term additions in ascending (channel, tap) or index order — is
// exactly the sequence the per-row kernels and the allocating oracle
// execute, so the batch path is bit-for-bit identical to both
// (TestBatchForwardBitIdentical, TestBatchForwardZeroTaps).
//
// The plan owns two ping-pong arenas sized maxBoundary x rows; they are
// grown on demand and reused, so steady-state batched inference performs
// zero heap allocations (TestProbsBatchAllocFree). Like every other
// workspace query, batch calls are single-threaded per workspace.
//
// Contract note: the batch path does not pass through the workspace's
// single-row activation buffers, so after a ProbsBatch/PredictBatch call
// acts/gbufs no longer describe any particular row. Backward-pass queries
// keep their own per-row protocol; batched gradients go through
// GradBatch.
type batchPlan struct {
	shapes  [][]int // boundary shapes, len(layers)+1
	sizes   []int   // boundary sizes (product of shape dims)
	maxSize int
	rows    int       // allocated row capacity of the arenas
	ping    []float64 // arena A: rows x maxSize
	pong    []float64 // arena B: rows x maxSize
	xt, yt  tensor.T  // reusable per-row views for generic kernels
}

// ensureBatchPlan returns the workspace's batch plan, building it on first
// use and growing the arenas when a larger batch arrives.
func (ws *Workspace) ensureBatchPlan(rows int) *batchPlan {
	bp := ws.bp
	if bp == nil {
		bp = &batchPlan{shapes: ws.shapes, sizes: make([]int, len(ws.shapes))}
		for i, shape := range ws.shapes {
			size := 1
			for _, d := range shape {
				size *= d
			}
			bp.sizes[i] = size
			if size > bp.maxSize {
				bp.maxSize = size
			}
		}
		ws.bp = bp
	}
	if rows > bp.rows {
		bp.rows = rows
		bp.ping = make([]float64, bp.maxSize*rows)
		bp.pong = make([]float64, bp.maxSize*rows)
	}
	return bp
}

// forwardBatch runs an eval-mode forward pass over every row of xs in
// batch-major order and returns the arena holding the logits plus its row
// stride: row r's logits are out[r*stride : r*stride+NumClasses]. The
// returned slice aliases a plan arena and is valid until the next batch
// call. Row lengths are validated like Forward (a mismatch panics; the
// serving path validates before enqueueing).
func (ws *Workspace) forwardBatch(xs [][]float64) (out []float64, stride int) {
	n := len(xs)
	bp := ws.ensureBatchPlan(n)
	in, nxt := bp.ping, bp.pong
	inSize := bp.sizes[0]
	for r, x := range xs {
		if len(x) != ws.inDim {
			panic(fmt.Sprintf("nn: workspace: batch row %d size %d, want %d", r, len(x), ws.inDim))
		}
		copy(in[r*inSize:(r+1)*inSize], x)
	}
	for li, k := range ws.kernels {
		outSize := bp.sizes[li+1]
		switch l := ws.net.layers[li].(type) {
		case *Flatten:
			// Pure reshape: the arena layout is already flat, and the
			// boundary sizes are equal, so the layer vanishes.
			continue
		case *Dropout:
			// Eval-mode dropout is the identity; skip the copy entirely.
			continue
		case *Dense:
			denseFwdBatch(l, in, nxt, n, inSize, outSize)
		case *Conv1D:
			conv1DFwdBatch(l, in, nxt, n, inSize, outSize,
				bp.shapes[li], bp.shapes[li+1])
		case *ReLU:
			reluFwdBatch(in[:n*inSize], nxt)
		case *MaxPool1D:
			poolFwdBatch(l, in, nxt, n, inSize, outSize,
				bp.shapes[li], bp.shapes[li+1])
		default:
			// Any other layer (an external fallback) runs its per-row
			// workspace kernel over reusable row views.
			for r := 0; r < n; r++ {
				bp.xt.Shape, bp.xt.Data = bp.shapes[li], in[r*inSize:r*inSize+inSize]
				bp.yt.Shape, bp.yt.Data = bp.shapes[li+1], nxt[r*outSize:r*outSize+outSize]
				k.fwdWS(&ws.states[li], &bp.xt, &bp.yt, false)
			}
		}
		in, nxt = nxt, in
		inSize = outSize
	}
	return in, inSize
}

// denseFwdBatch computes the Dense layer for every row in blocks of four
// rows with the four accumulator chains interleaved in the inner loop.
// Each chain is the exact ascending-index bias-then-dot-product sequence
// of the per-row kernel (bit-identical per row), but the chains are
// independent, so the CPU overlaps their floating-point add latencies.
// The row block also keeps four input rows hot in L1 while each weight
// row streams once per block.
func denseFwdBatch(d *Dense, in, out []float64, rows, inSize, outSize int) {
	r := 0
	for ; r+4 <= rows; r += 4 {
		x0 := in[(r+0)*inSize : (r+0)*inSize+d.in]
		x1 := in[(r+1)*inSize : (r+1)*inSize+d.in]
		x2 := in[(r+2)*inSize : (r+2)*inSize+d.in]
		x3 := in[(r+3)*inSize : (r+3)*inSize+d.in]
		for o := 0; o < d.out; o++ {
			wRow := d.w.W[o*d.in : (o+1)*d.in]
			bias := d.b.W[o]
			s0, s1, s2, s3 := bias, bias, bias, bias
			for i, wi := range wRow {
				s0 += wi * x0[i]
				s1 += wi * x1[i]
				s2 += wi * x2[i]
				s3 += wi * x3[i]
			}
			out[(r+0)*outSize+o] = s0
			out[(r+1)*outSize+o] = s1
			out[(r+2)*outSize+o] = s2
			out[(r+3)*outSize+o] = s3
		}
	}
	for ; r < rows; r++ {
		x := in[r*inSize : r*inSize+d.in]
		for o := 0; o < d.out; o++ {
			wRow := d.w.W[o*d.in : (o+1)*d.in]
			sum := d.b.W[o]
			for i, wi := range wRow {
				sum += wi * x[i]
			}
			out[r*outSize+o] = sum
		}
	}
}

// conv1DFwdBatch computes the Conv1D layer for every row. The k=3 cases
// the paper architecture uses go through register-blocked kernels (see
// conv3RowValid/conv3RowSame); anything else replicates the per-row
// kernel's generic tap loop, weight-row-outer so each weight row is
// resident across the batch.
func conv1DFwdBatch(c *Conv1D, in, out []float64, rows, inSize, outSize int, inShape, outShape []int) {
	l := inShape[len(inShape)-1]
	lout := outShape[len(outShape)-1]
	if c.k == 3 && ((c.same && l >= 2) || (!c.same && lout >= 1)) {
		for r := 0; r < rows; r++ {
			xr := in[r*inSize : r*inSize+inSize]
			yr := out[r*outSize : r*outSize+outSize]
			for o := 0; o < c.cout; o++ {
				w := c.w.W[o*c.cin*3 : (o+1)*c.cin*3]
				yRow := yr[o*lout : (o+1)*lout]
				if c.same {
					conv3RowSame(yRow, xr, w, c.cin, l, c.b.W[o])
				} else {
					conv3RowValid(yRow, xr, w, c.cin, l, lout, c.b.W[o])
				}
			}
		}
		return
	}
	pad := c.pad()
	for o := 0; o < c.cout; o++ {
		bias := c.b.W[o]
		for r := 0; r < rows; r++ {
			yRow := out[r*outSize+o*lout : r*outSize+(o+1)*lout]
			for t := range yRow {
				yRow[t] = bias
			}
		}
		for ci := 0; ci < c.cin; ci++ {
			wBase := (o*c.cin + ci) * c.k
			wRow := c.w.W[wBase : wBase+c.k]
			for r := 0; r < rows; r++ {
				xRow := in[r*inSize+ci*l : r*inSize+(ci+1)*l]
				yRow := out[r*outSize+o*lout : r*outSize+(o+1)*lout]
				for j, wj := range wRow {
					if wj == 0 {
						continue
					}
					off := j - pad
					lo := 0
					if off < 0 {
						lo = -off
					}
					hi := lout
					if hi > l-off {
						hi = l - off
					}
					for t := lo; t < hi; t++ {
						yRow[t] += wj * xRow[t+off]
					}
				}
			}
		}
	}
}

// conv3RowValid computes one (row, output-channel) slice of a k=3 "valid"
// convolution, four output elements at a time in registers with the
// input-channel loop innermost. Per output element the additions are
// bias, then per ascending input channel the three taps in ascending
// order when all are non-zero, otherwise only the non-zero taps — the
// per-row kernel's exact sequence (its fused/generic split per channel
// pair), with the partial sums carried in registers instead of
// read-modify-written through the output row once per channel.
func conv3RowValid(yRow, x, w []float64, cin, l, lout int, bias float64) {
	t := 0
	for ; t+4 <= lout; t += 4 {
		v0, v1, v2, v3 := bias, bias, bias, bias
		for ci := 0; ci < cin; ci++ {
			w0, w1, w2 := w[ci*3], w[ci*3+1], w[ci*3+2]
			xr := x[ci*l+t : ci*l+t+6]
			if w0 != 0 && w1 != 0 && w2 != 0 {
				v0 += w0 * xr[0]
				v0 += w1 * xr[1]
				v0 += w2 * xr[2]
				v1 += w0 * xr[1]
				v1 += w1 * xr[2]
				v1 += w2 * xr[3]
				v2 += w0 * xr[2]
				v2 += w1 * xr[3]
				v2 += w2 * xr[4]
				v3 += w0 * xr[3]
				v3 += w1 * xr[4]
				v3 += w2 * xr[5]
			} else {
				if w0 != 0 {
					v0 += w0 * xr[0]
					v1 += w0 * xr[1]
					v2 += w0 * xr[2]
					v3 += w0 * xr[3]
				}
				if w1 != 0 {
					v0 += w1 * xr[1]
					v1 += w1 * xr[2]
					v2 += w1 * xr[3]
					v3 += w1 * xr[4]
				}
				if w2 != 0 {
					v0 += w2 * xr[2]
					v1 += w2 * xr[3]
					v2 += w2 * xr[4]
					v3 += w2 * xr[5]
				}
			}
		}
		yRow[t] = v0
		yRow[t+1] = v1
		yRow[t+2] = v2
		yRow[t+3] = v3
	}
	for ; t < lout; t++ {
		v := bias
		for ci := 0; ci < cin; ci++ {
			w0, w1, w2 := w[ci*3], w[ci*3+1], w[ci*3+2]
			xr := x[ci*l+t : ci*l+t+3]
			if w0 != 0 && w1 != 0 && w2 != 0 {
				v += w0 * xr[0]
				v += w1 * xr[1]
				v += w2 * xr[2]
			} else {
				if w0 != 0 {
					v += w0 * xr[0]
				}
				if w1 != 0 {
					v += w1 * xr[1]
				}
				if w2 != 0 {
					v += w2 * xr[2]
				}
			}
		}
		yRow[t] = v
	}
}

// conv3RowValidZeroTapOrder documents the bit-identity argument for the
// zero-tap branch above: the per-row kernel routes a channel pair with
// any zero tap through its generic loop, which adds only the non-zero
// taps in ascending tap order — exactly what the else-branch does, one
// output element at a time.

// conv3RowSame computes one (row, output-channel) slice of a k=3 "same"
// convolution (l >= 2): the interior elements register-blocked like the
// valid case, the two edge elements (which see only two taps) with their
// own channel loops. Edge taps are added iff non-zero, which matches both
// the fused kernel (whose gate implies all taps non-zero) and the generic
// zero-tap-skipping loop.
func conv3RowSame(yRow, x, w []float64, cin, l int, bias float64) {
	t := 1
	for ; t+4 <= l-1; t += 4 {
		v0, v1, v2, v3 := bias, bias, bias, bias
		for ci := 0; ci < cin; ci++ {
			w0, w1, w2 := w[ci*3], w[ci*3+1], w[ci*3+2]
			xr := x[ci*l+t-1 : ci*l+t+5]
			if w0 != 0 && w1 != 0 && w2 != 0 {
				v0 += w0 * xr[0]
				v0 += w1 * xr[1]
				v0 += w2 * xr[2]
				v1 += w0 * xr[1]
				v1 += w1 * xr[2]
				v1 += w2 * xr[3]
				v2 += w0 * xr[2]
				v2 += w1 * xr[3]
				v2 += w2 * xr[4]
				v3 += w0 * xr[3]
				v3 += w1 * xr[4]
				v3 += w2 * xr[5]
			} else {
				if w0 != 0 {
					v0 += w0 * xr[0]
					v1 += w0 * xr[1]
					v2 += w0 * xr[2]
					v3 += w0 * xr[3]
				}
				if w1 != 0 {
					v0 += w1 * xr[1]
					v1 += w1 * xr[2]
					v2 += w1 * xr[3]
					v3 += w1 * xr[4]
				}
				if w2 != 0 {
					v0 += w2 * xr[2]
					v1 += w2 * xr[3]
					v2 += w2 * xr[4]
					v3 += w2 * xr[5]
				}
			}
		}
		yRow[t] = v0
		yRow[t+1] = v1
		yRow[t+2] = v2
		yRow[t+3] = v3
	}
	for ; t < l-1; t++ {
		v := bias
		for ci := 0; ci < cin; ci++ {
			w0, w1, w2 := w[ci*3], w[ci*3+1], w[ci*3+2]
			xr := x[ci*l+t-1 : ci*l+t+2]
			if w0 != 0 && w1 != 0 && w2 != 0 {
				v += w0 * xr[0]
				v += w1 * xr[1]
				v += w2 * xr[2]
			} else {
				if w0 != 0 {
					v += w0 * xr[0]
				}
				if w1 != 0 {
					v += w1 * xr[1]
				}
				if w2 != 0 {
					v += w2 * xr[2]
				}
			}
		}
		yRow[t] = v
	}
	// t = 0 sees taps w1, w2; t = l-1 sees taps w0, w1.
	vF, vL := bias, bias
	for ci := 0; ci < cin; ci++ {
		w0, w1, w2 := w[ci*3], w[ci*3+1], w[ci*3+2]
		xr := x[ci*l : ci*l+l]
		if w1 != 0 {
			vF += w1 * xr[0]
		}
		if w2 != 0 {
			vF += w2 * xr[1]
		}
		if w0 != 0 {
			vL += w0 * xr[l-2]
		}
		if w1 != 0 {
			vL += w1 * xr[l-1]
		}
	}
	yRow[0] = vF
	yRow[l-1] = vL
}

// reluFwdBatch applies ReLU over the packed batch arena in one pass,
// without the mask writes only the backward pass needs.
func reluFwdBatch(in, out []float64) {
	for i, v := range in {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
}

// poolFwdBatch applies eval-mode max pooling per row without the argmax
// bookkeeping. Ties keep the earliest element, like the per-row kernel's
// index comparison.
func poolFwdBatch(m *MaxPool1D, in, out []float64, rows, inSize, outSize int, inShape, outShape []int) {
	chans := inShape[0]
	l := inShape[len(inShape)-1]
	lout := outShape[len(outShape)-1]
	for r := 0; r < rows; r++ {
		for ch := 0; ch < chans; ch++ {
			xRow := in[r*inSize+ch*l : r*inSize+(ch+1)*l]
			yRow := out[r*outSize+ch*lout : r*outSize+(ch+1)*lout]
			for t := 0; t < lout; t++ {
				base := t * m.size
				best := xRow[base]
				for j := base + 1; j < base+m.size; j++ {
					if xRow[j] > best {
						best = xRow[j]
					}
				}
				yRow[t] = best
			}
		}
	}
}
