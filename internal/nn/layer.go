// Package nn is the deep-learning substrate: a from-scratch CNN with the
// paper's exact architecture (Fig. 5), hand-written forward and backward
// passes, Adam and SGD optimizers, a data-parallel trainer, evaluation
// metrics (accuracy / FNR / FPR), and the input-gradient and per-logit
// Jacobian queries the adversarial attacks require.
//
// Networks are not safe for concurrent use; CloneShared produces a view
// that shares weights but has private activation caches and gradients, so
// clones may run forward/backward in parallel as long as nobody is
// updating the shared weights at the same time.
package nn

import (
	"math"
	"math/rand"

	"advmal/internal/tensor"
)

// Param is one learnable parameter tensor. W is shared between a network
// and its CloneShared views; G is private to each view.
type Param struct {
	Name string
	W    []float64
	G    []float64
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Layer is one differentiable stage of the network. Forward caches
// whatever Backward needs; Backward consumes the gradient w.r.t. the
// layer's output and returns the gradient w.r.t. its input, accumulating
// parameter gradients into Params().
type Layer interface {
	Name() string
	Forward(x *tensor.T, train bool) *tensor.T
	Backward(grad *tensor.T) *tensor.T
	Params() []*Param
	// CloneShared returns a view sharing weights but with private caches
	// and gradient buffers.
	CloneShared() Layer
}

// Reseeder is implemented by stochastic layers (Dropout) so the trainer
// can give each data-parallel worker a deterministic, distinct stream.
type Reseeder interface {
	Reseed(seed int64)
}

// heInit fills w with He-normal initialization for fanIn inputs.
func heInit(rng *rand.Rand, w []float64, fanIn int) {
	std := math.Sqrt(2 / float64(fanIn))
	for i := range w {
		w[i] = rng.NormFloat64() * std
	}
}
