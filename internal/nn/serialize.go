package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the on-disk weight format: parameter name -> values.
type snapshot struct {
	Params map[string][]float64
}

// Save writes the network weights to w in gob format. The architecture
// itself is code, so only weights are persisted; Load requires a network
// built with the same constructor.
func (n *Network) Save(w io.Writer) error {
	snap := snapshot{Params: make(map[string][]float64, len(n.Params()))}
	for _, p := range n.Params() {
		if _, dup := snap.Params[p.Name]; dup {
			return fmt.Errorf("nn: save: duplicate parameter name %q", p.Name)
		}
		snap.Params[p.Name] = append([]float64(nil), p.W...)
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

// CloneInto copies this network's weights into dst, which must share the
// architecture (same parameter names and sizes). Unlike CloneShared, dst
// owns private weight tensors afterwards: training dst never touches the
// source. The online-retraining path uses it to warm-start a candidate
// from the live model's weights without aliasing them.
func (n *Network) CloneInto(dst *Network) error {
	src := n.Params()
	out := dst.Params()
	if len(src) != len(out) {
		return fmt.Errorf("nn: clone: %d params into %d", len(src), len(out))
	}
	for i, p := range src {
		q := out[i]
		if q.Name != p.Name || len(q.W) != len(p.W) {
			return fmt.Errorf("nn: clone: param %d is %q[%d], want %q[%d]",
				i, q.Name, len(q.W), p.Name, len(p.W))
		}
		copy(q.W, p.W)
	}
	return nil
}

// SnapshotClasses peeks at a weight blob written by Save and reports the
// width of the PaperCNN softmax head — the length of the output-layer
// bias — without building a network. Model loaders use it to size the
// head before Load and to reject a blob whose width contradicts the
// labeled class count at load time instead of deep inside inference.
func SnapshotClasses(r io.Reader) (int, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return 0, fmt.Errorf("nn: snapshot classes: %w", err)
	}
	bias, ok := snap.Params["logits.b"]
	if !ok {
		return 0, fmt.Errorf("nn: snapshot classes: weight blob has no %q parameter", "logits.b")
	}
	if len(bias) < 2 {
		return 0, fmt.Errorf("nn: snapshot classes: output bias has %d values, want >= 2", len(bias))
	}
	return len(bias), nil
}

// Load restores weights previously written by Save into a network with an
// identical architecture.
func (n *Network) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: load: %w", err)
	}
	for _, p := range n.Params() {
		vals, ok := snap.Params[p.Name]
		if !ok {
			return fmt.Errorf("nn: load: missing parameter %q", p.Name)
		}
		if len(vals) != len(p.W) {
			return fmt.Errorf("nn: load: parameter %q has %d values, want %d",
				p.Name, len(vals), len(p.W))
		}
		copy(p.W, vals)
	}
	return nil
}
