package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the on-disk weight format: parameter name -> values.
type snapshot struct {
	Params map[string][]float64
}

// Save writes the network weights to w in gob format. The architecture
// itself is code, so only weights are persisted; Load requires a network
// built with the same constructor.
func (n *Network) Save(w io.Writer) error {
	snap := snapshot{Params: make(map[string][]float64, len(n.Params()))}
	for _, p := range n.Params() {
		if _, dup := snap.Params[p.Name]; dup {
			return fmt.Errorf("nn: save: duplicate parameter name %q", p.Name)
		}
		snap.Params[p.Name] = append([]float64(nil), p.W...)
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

// Load restores weights previously written by Save into a network with an
// identical architecture.
func (n *Network) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: load: %w", err)
	}
	for _, p := range n.Params() {
		vals, ok := snap.Params[p.Name]
		if !ok {
			return fmt.Errorf("nn: load: missing parameter %q", p.Name)
		}
		if len(vals) != len(p.W) {
			return fmt.Errorf("nn: load: parameter %q has %d values, want %d",
				p.Name, len(vals), len(p.W))
		}
		copy(p.W, vals)
	}
	return nil
}
