package nn

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	src := PaperCNN(21)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	dst := PaperCNN(99) // different init
	x := make([]float64, PaperInputLen)
	for i := range x {
		x[i] = float64(i) / PaperInputLen
	}
	before := dst.Logits(x)
	if err := dst.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	after := dst.Logits(x)
	want := src.Logits(x)
	same := true
	for i := range want {
		if after[i] != want[i] {
			t.Errorf("logit %d = %v, want %v after load", i, after[i], want[i])
		}
		if after[i] != before[i] {
			same = false
		}
	}
	if same {
		t.Error("Load appears to have been a no-op")
	}
}

func TestLoadArchitectureMismatch(t *testing.T) {
	src := SmallMLP(1, 4, 8, 2)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := PaperCNN(1)
	err := dst.Load(&buf)
	if err == nil || !strings.Contains(err.Error(), "missing parameter") {
		t.Errorf("Load mismatched arch = %v, want missing-parameter error", err)
	}
}

func TestLoadSizeMismatch(t *testing.T) {
	src := SmallMLP(1, 4, 8, 2)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := SmallMLP(1, 4, 16, 2) // same names, different sizes
	err := dst.Load(&buf)
	if err == nil || !strings.Contains(err.Error(), "values, want") {
		t.Errorf("Load mismatched sizes = %v, want size error", err)
	}
}

func TestLoadGarbage(t *testing.T) {
	net := SmallMLP(1, 2, 2, 2)
	if err := net.Load(strings.NewReader("not gob")); err == nil {
		t.Error("Load accepted garbage input")
	}
}
