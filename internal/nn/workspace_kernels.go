package nn

import (
	"advmal/internal/tensor"
)

// Workspace kernels: the per-layer fwdWS/bwdWS implementations. Each one
// computes exactly the same floating-point operations, in exactly the
// same order, as the layer's allocating Forward/Backward — that is the
// invariant the bit-identity property tests enforce — but writes into
// preallocated workspace buffers and keeps all mutable state in the
// wsState, never in the layer. The k=3 convolution (the only kernel
// size the paper's architecture uses) additionally gets a fused
// micro-kernel: the three taps are unrolled into one pass with an
// interior/edge split so the inner loop is branch-free, and the backward
// input gradient is computed gather-style (per input element, taps in
// ascending order) so the per-element accumulation order matches the
// oracle's tap-major loops bit for bit.

// ---------------------------------------------------------------------------
// Conv1D

func (c *Conv1D) fwdWS(_ *wsState, x, y *tensor.T, _ bool) {
	l := x.Cols()
	pad := c.pad()
	lout := y.Cols()
	for o := 0; o < c.cout; o++ {
		yRow := y.Row(o)
		bias := c.b.W[o]
		for t := range yRow {
			yRow[t] = bias
		}
		for ci := 0; ci < c.cin; ci++ {
			wBase := (o*c.cin + ci) * c.k
			wRow := c.w.W[wBase : wBase+c.k]
			xRow := x.Row(ci)
			if c.k == 3 && wRow[0] != 0 && wRow[1] != 0 && wRow[2] != 0 {
				// The oracle skips zero taps entirely; the fused kernel
				// adds every tap unconditionally, which is only
				// bit-identical when no tap is zero (adding a zero
				// product can flip a negative-zero accumulator). Zero
				// taps never occur with trained weights, but the generic
				// path below keeps the equivalence exact regardless.
				if c.same && l >= 2 {
					conv3FwdSame(yRow, xRow, wRow, l)
					continue
				}
				if !c.same && lout >= 1 {
					conv3FwdValid(yRow, xRow, wRow, lout)
					continue
				}
			}
			for j, wj := range wRow {
				if wj == 0 {
					continue
				}
				off := j - pad
				lo := 0
				if off < 0 {
					lo = -off
				}
				hi := lout
				if hi > l-off {
					hi = l - off
				}
				for t := lo; t < hi; t++ {
					yRow[t] += wj * xRow[t+off]
				}
			}
		}
	}
}

// conv3FwdSame accumulates one input channel into yRow for k=3 "same"
// padding (pad=1, lout == l, l >= 2). Per output element the taps are
// added in ascending order (w0, w1, w2), matching the oracle's tap-major
// loop order element-wise.
func conv3FwdSame(yRow, xRow, wRow []float64, l int) {
	w0, w1, w2 := wRow[0], wRow[1], wRow[2]
	// t = 0: the w0 tap would read x[-1]; only w1, w2 contribute.
	v := yRow[0] + w1*xRow[0]
	v += w2 * xRow[1]
	yRow[0] = v
	for t := 1; t < l-1; t++ {
		v := yRow[t] + w0*xRow[t-1]
		v += w1 * xRow[t]
		v += w2 * xRow[t+1]
		yRow[t] = v
	}
	// t = l-1: the w2 tap would read x[l]; only w0, w1 contribute.
	v = yRow[l-1] + w0*xRow[l-2]
	v += w1 * xRow[l-1]
	yRow[l-1] = v
}

// conv3FwdValid accumulates one input channel into yRow for k=3 "valid"
// padding (pad=0, lout == l-2 >= 1). Every output element sees all three
// taps, so the whole loop is the branch-free interior.
func conv3FwdValid(yRow, xRow, wRow []float64, lout int) {
	w0, w1, w2 := wRow[0], wRow[1], wRow[2]
	for t := 0; t < lout; t++ {
		v := yRow[t] + w0*xRow[t]
		v += w1 * xRow[t+1]
		v += w2 * xRow[t+2]
		yRow[t] = v
	}
}

func (c *Conv1D) bwdWS(_ *wsState, x, grad, dx *tensor.T, accum bool) {
	l := x.Cols()
	pad := c.pad()
	lout := grad.Cols()
	dx.Zero()
	for o := 0; o < c.cout; o++ {
		gRow := grad.Row(o)
		if accum {
			var gSum float64
			for _, g := range gRow {
				gSum += g
			}
			c.b.G[o] += gSum
		}
		for ci := 0; ci < c.cin; ci++ {
			wBase := (o*c.cin + ci) * c.k
			wRow := c.w.W[wBase : wBase+c.k]
			xRow := x.Row(ci)
			dxRow := dx.Row(ci)
			if c.k == 3 {
				// The oracle backward has no zero-tap skip, so the fused
				// kernel applies whenever the length guards hold.
				if c.same && l >= 2 {
					conv3BwdSameDx(dxRow, gRow, wRow, l)
					if accum {
						conv3BwdSameDw(c.w.G[wBase:wBase+3], gRow, xRow, l)
					}
					continue
				}
				if !c.same && lout >= 1 {
					conv3BwdValidDx(dxRow, gRow, wRow, lout)
					if accum {
						conv3BwdValidDw(c.w.G[wBase:wBase+3], gRow, xRow, lout)
					}
					continue
				}
			}
			for j := 0; j < c.k; j++ {
				off := j - pad
				lo := 0
				if off < 0 {
					lo = -off
				}
				hi := lout
				if hi > l-off {
					hi = l - off
				}
				wj := wRow[j]
				if accum {
					var dwj float64
					for t := lo; t < hi; t++ {
						g := gRow[t]
						dwj += g * xRow[t+off]
						dxRow[t+off] += wj * g
					}
					c.w.G[wBase+j] += dwj
				} else {
					for t := lo; t < hi; t++ {
						dxRow[t+off] += wj * gRow[t]
					}
				}
			}
		}
	}
}

// conv3BwdSameDx adds one output channel's contribution to the input
// gradient for k=3 "same" padding (lout == l >= 2), gather-style: each
// input element u receives its three tap contributions in ascending tap
// order (w0 from g[u+1], w1 from g[u], w2 from g[u-1]) — the same
// per-element order the oracle's tap-major scatter produces.
func conv3BwdSameDx(dxRow, gRow, wRow []float64, l int) {
	w0, w1, w2 := wRow[0], wRow[1], wRow[2]
	// u = 0: no w2 contribution (it would come from g[-1]).
	v := dxRow[0] + w0*gRow[1]
	v += w1 * gRow[0]
	dxRow[0] = v
	for u := 1; u < l-1; u++ {
		v := dxRow[u] + w0*gRow[u+1]
		v += w1 * gRow[u]
		v += w2 * gRow[u-1]
		dxRow[u] = v
	}
	// u = l-1: no w0 contribution (it would come from g[l]).
	v = dxRow[l-1] + w1*gRow[l-1]
	v += w2 * gRow[l-2]
	dxRow[l-1] = v
}

// conv3BwdSameDw accumulates the three weight gradients for one
// (output, input) channel pair under "same" padding (l >= 2). Each tap's
// scalar accumulator sums over ascending t, exactly like the oracle's
// per-tap loops, with the three sums carried through one merged pass.
func conv3BwdSameDw(gw, gRow, xRow []float64, l int) {
	g0 := gRow[0]
	var dw0 float64
	dw1 := g0 * xRow[0]
	dw2 := g0 * xRow[1]
	for t := 1; t < l-1; t++ {
		g := gRow[t]
		dw0 += g * xRow[t-1]
		dw1 += g * xRow[t]
		dw2 += g * xRow[t+1]
	}
	gl := gRow[l-1]
	dw0 += gl * xRow[l-2]
	dw1 += gl * xRow[l-1]
	gw[0] += dw0
	gw[1] += dw1
	gw[2] += dw2
}

// conv3BwdValidDx adds one output channel's contribution to the input
// gradient for k=3 "valid" padding (lout == l-2 >= 1), gather-style with
// per-element ascending tap order.
func conv3BwdValidDx(dxRow, gRow, wRow []float64, lout int) {
	w0, w1, w2 := wRow[0], wRow[1], wRow[2]
	// Leading edge: u = 0 sees only w0, u = 1 sees w0 (when lout > 1)
	// then w1.
	dxRow[0] += w0 * gRow[0]
	if lout > 1 {
		dxRow[1] += w0 * gRow[1]
	}
	dxRow[1] += w1 * gRow[0]
	for u := 2; u < lout; u++ {
		v := dxRow[u] + w0*gRow[u]
		v += w1 * gRow[u-1]
		v += w2 * gRow[u-2]
		dxRow[u] = v
	}
	// Trailing edge: u = lout sees w1 then w2 (w2 only when lout >= 2,
	// and when lout == 1 that element is u = 1, handled above);
	// u = lout+1 == l-1 sees only w2.
	if lout >= 2 {
		v := dxRow[lout] + w1*gRow[lout-1]
		v += w2 * gRow[lout-2]
		dxRow[lout] = v
	}
	dxRow[lout+1] += w2 * gRow[lout-1]
}

// conv3BwdValidDw accumulates the three weight gradients for one channel
// pair under "valid" padding (lout >= 1) in one branch-free merged pass.
func conv3BwdValidDw(gw, gRow, xRow []float64, lout int) {
	var dw0, dw1, dw2 float64
	for t := 0; t < lout; t++ {
		g := gRow[t]
		dw0 += g * xRow[t]
		dw1 += g * xRow[t+1]
		dw2 += g * xRow[t+2]
	}
	gw[0] += dw0
	gw[1] += dw1
	gw[2] += dw2
}

// ---------------------------------------------------------------------------
// ReLU

func (r *ReLU) fwdWS(s *wsState, x, y *tensor.T, _ bool) {
	for i, v := range x.Data {
		if v > 0 {
			s.mask[i] = true
			y.Data[i] = v
		} else {
			s.mask[i] = false
			y.Data[i] = 0
		}
	}
}

func (r *ReLU) bwdWS(s *wsState, _, grad, dx *tensor.T, _ bool) {
	for i, g := range grad.Data {
		if s.mask[i] {
			dx.Data[i] = g
		} else {
			dx.Data[i] = 0
		}
	}
}

// ---------------------------------------------------------------------------
// MaxPool1D

func (m *MaxPool1D) fwdWS(s *wsState, x, y *tensor.T, _ bool) {
	rows, lout := y.Rows(), y.Cols()
	for r := 0; r < rows; r++ {
		xRow := x.Row(r)
		yRow := y.Row(r)
		for t := 0; t < lout; t++ {
			base := t * m.size
			best := base
			for j := base + 1; j < base+m.size; j++ {
				if xRow[j] > xRow[best] {
					best = j
				}
			}
			yRow[t] = xRow[best]
			s.argmax[r*lout+t] = best
		}
	}
}

func (m *MaxPool1D) bwdWS(s *wsState, _, grad, dx *tensor.T, _ bool) {
	dx.Zero()
	rows, lout := grad.Rows(), grad.Cols()
	for r := 0; r < rows; r++ {
		gRow := grad.Row(r)
		dxRow := dx.Row(r)
		for t := 0; t < lout; t++ {
			dxRow[s.argmax[r*lout+t]] += gRow[t]
		}
	}
}

// ---------------------------------------------------------------------------
// Dropout

func (d *Dropout) fwdWS(s *wsState, x, y *tensor.T, train bool) {
	if !train || d.p <= 0 {
		s.dropped = false
		copy(y.Data, x.Data)
		return
	}
	s.dropped = true
	keep := 1 - d.p
	scale := 1 / keep
	for i, v := range x.Data {
		if s.rng.Float64() < keep {
			s.fmask[i] = scale
			y.Data[i] = v * scale
		} else {
			s.fmask[i] = 0
			y.Data[i] = 0
		}
	}
}

func (d *Dropout) bwdWS(s *wsState, _, grad, dx *tensor.T, _ bool) {
	if !s.dropped {
		copy(dx.Data, grad.Data)
		return
	}
	for i, g := range grad.Data {
		dx.Data[i] = g * s.fmask[i]
	}
}

// ---------------------------------------------------------------------------
// Flatten — the workspace aliases the flat buffers onto the shaped ones
// (see NewWorkspace), so both directions are no-ops.

func (f *Flatten) fwdWS(_ *wsState, _, _ *tensor.T, _ bool) {}

func (f *Flatten) bwdWS(_ *wsState, _, _, _ *tensor.T, _ bool) {}

// ---------------------------------------------------------------------------
// Dense

func (d *Dense) fwdWS(_ *wsState, x, y *tensor.T, _ bool) {
	for o := 0; o < d.out; o++ {
		row := d.w.W[o*d.in : (o+1)*d.in]
		sum := d.b.W[o]
		for i, xi := range x.Data {
			sum += row[i] * xi
		}
		y.Data[o] = sum
	}
}

func (d *Dense) bwdWS(_ *wsState, x, grad, dx *tensor.T, accum bool) {
	dx.Zero()
	for o := 0; o < d.out; o++ {
		g := grad.Data[o]
		if accum {
			d.b.G[o] += g
		}
		if g == 0 {
			continue
		}
		row := d.w.W[o*d.in : (o+1)*d.in]
		if accum {
			gw := d.w.G[o*d.in : (o+1)*d.in]
			for i, xi := range x.Data {
				gw[i] += g * xi
				dx.Data[i] += row[i] * g
			}
		} else {
			for i := range x.Data {
				dx.Data[i] += row[i] * g
			}
		}
	}
}

// Kernel compliance: every layer this package defines has a real
// workspace kernel (external Layer implementations fall back to
// oracleKernel).
var (
	_ wsKernel = (*Conv1D)(nil)
	_ wsKernel = (*ReLU)(nil)
	_ wsKernel = (*MaxPool1D)(nil)
	_ wsKernel = (*Dropout)(nil)
	_ wsKernel = (*Flatten)(nil)
	_ wsKernel = (*Dense)(nil)
)
