package nn

import (
	"math/rand"
)

// Architecture constants from the paper (§IV-B1, Fig. 5).
const (
	// PaperInputLen is the feature-vector length (1 x 23).
	PaperInputLen = 23
	// PaperClasses is benign vs malicious.
	PaperClasses = 2
	// PaperFlattenLen is the flattened size after ConvB2 (92 x 4 = 368).
	PaperFlattenLen = 368
)

// PaperCNN builds the paper's exact detection architecture (Fig. 5):
//
//	ConvB1: Conv1D(46, 1x3, same) + ReLU -> Conv1D(46, 1x3, valid) + ReLU
//	        -> MaxPool(2,2) -> Dropout(0.25)          => 46 x 10
//	ConvB2: Conv1D(92, 1x3, same) + ReLU -> Conv1D(92, 1x3, valid) + ReLU
//	        -> MaxPool(2,2) -> Dropout(0.25)          => 92 x 4
//	CB:     Flatten(368) -> Dense(512) + ReLU -> Dropout(0.5) -> Dense(2)
//
// Softmax is applied by the loss / Probs, so Forward returns logits.
// Weights are He-initialized deterministically from seed.
func PaperCNN(seed int64) *Network {
	return PaperCNNClasses(seed, PaperClasses)
}

// PaperCNNClasses is PaperCNN with an arbitrary number of output logits,
// used for the family-level multi-class classification the paper's
// introduction describes.
func PaperCNNClasses(seed int64, classes int) *Network {
	rng := rand.New(rand.NewSource(seed))
	return NewNetwork([]int{1, PaperInputLen}, classes,
		NewConv1D("conv1", 1, 46, 3, true, rng),
		NewReLU("relu1"),
		NewConv1D("conv2", 46, 46, 3, false, rng),
		NewReLU("relu2"),
		NewMaxPool1D("pool1", 2),
		NewDropout("drop1", 0.25, seed+101),
		NewConv1D("conv3", 46, 92, 3, true, rng),
		NewReLU("relu3"),
		NewConv1D("conv4", 92, 92, 3, false, rng),
		NewReLU("relu4"),
		NewMaxPool1D("pool2", 2),
		NewDropout("drop2", 0.25, seed+202),
		NewFlatten("flatten"),
		NewDense("fc1", PaperFlattenLen, 512, rng),
		NewReLU("relu5"),
		NewDropout("drop3", 0.5, seed+303),
		NewDense("logits", 512, classes, rng),
	)
}

// SmallMLP builds a small fully connected network for tests and quick
// examples: in -> hidden (ReLU) -> classes.
func SmallMLP(seed int64, in, hidden, classes int) *Network {
	rng := rand.New(rand.NewSource(seed))
	return NewNetwork([]int{in}, classes,
		NewDense("fc1", in, hidden, rng),
		NewReLU("relu1"),
		NewDense("fc2", hidden, classes, rng),
	)
}
