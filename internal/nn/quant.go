package nn

import (
	"errors"
	"fmt"
	"math"

	"advmal/internal/tensor"
)

// Quantization errors.
var (
	// ErrNoCalibration indicates Quantize was called without usable
	// calibration ranges (nil, wrong boundary count, or non-finite).
	ErrNoCalibration = errors.New("nn: no calibration")
	// ErrQuantUnsupported indicates a layer stack the int8 compiler
	// cannot lower (e.g. a network whose final MAC layer is not Dense).
	ErrQuantUnsupported = errors.New("nn: architecture not quantizable")
)

// Calibration captures per-boundary activation ranges observed during a
// float forward pass over a representative (training) set. Boundary i is
// the input of layer i; the last boundary is the logit vector. The
// ranges drive the activation quantization scales of the int8 engine and
// are persisted alongside the detector so serving can rebuild the
// quantized tier without access to the training set.
type Calibration struct {
	Min, Max []float64 // len = len(layers)+1
}

// Boundaries returns the number of recorded layer boundaries.
func (c *Calibration) Boundaries() int { return len(c.Min) }

// Valid reports whether the calibration is structurally usable for a
// network with layers layer boundaries: matching lengths, finite values,
// Max >= Min everywhere.
func (c *Calibration) Valid(layers int) bool {
	if c == nil || len(c.Min) != layers+1 || len(c.Max) != layers+1 {
		return false
	}
	for i := range c.Min {
		lo, hi := c.Min[i], c.Max[i]
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) || hi < lo {
			return false
		}
	}
	return true
}

// Calibrate runs eval-mode forward passes over xs on a private view of
// net and records the min/max activation at every layer boundary. The
// set should be the training inputs (or a representative sample); inputs
// outside the observed ranges saturate in the quantized engine, which is
// the standard post-training-quantization trade.
func Calibrate(net *Network, xs [][]float64) (*Calibration, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("%w: empty calibration set", ErrNoCalibration)
	}
	clone := net.CloneShared()
	nb := len(clone.layers) + 1
	c := &Calibration{Min: make([]float64, nb), Max: make([]float64, nb)}
	for i := range c.Min {
		c.Min[i] = math.Inf(1)
		c.Max[i] = math.Inf(-1)
	}
	for _, x := range xs {
		if len(x) != net.InputDim() {
			return nil, fmt.Errorf("%w: got %d features, want %d", ErrBadInput, len(x), net.InputDim())
		}
		t := &tensor.T{Shape: append([]int(nil), clone.inShape...), Data: append([]float64(nil), x...)}
		c.observe(0, t.Data)
		for i, l := range clone.layers {
			t = l.Forward(t, false)
			c.observe(i+1, t.Data)
		}
	}
	if !c.Valid(len(clone.layers)) {
		return nil, fmt.Errorf("%w: non-finite activations during calibration", ErrNoCalibration)
	}
	return c, nil
}

func (c *Calibration) observe(b int, vals []float64) {
	lo, hi := c.Min[b], c.Max[b]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	c.Min[b], c.Max[b] = lo, hi
}

// qParams is one per-tensor affine quantization code: real value v maps
// to q = zp + round(v/scale), clamped to int8. The range is always
// widened to include zero, so zero padding and the ReLU threshold are
// exactly representable (q == zp) and zp itself fits in int8.
type qParams struct {
	scale float64
	zp    int32
}

// affineParams derives the code for an observed [lo, hi] range.
func affineParams(lo, hi float64) qParams {
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi-lo < 1e-9 {
		hi = lo + 1e-9
	}
	s := (hi - lo) / 255
	zp := int32(-128) - iround32(lo/s)
	if zp > 127 {
		zp = 127
	} else if zp < -128 {
		zp = -128
	}
	return qParams{scale: s, zp: zp}
}

// iround32 rounds half away from zero — the one rounding mode used
// everywhere in the quantized path, so results are deterministic.
func iround32(x float64) int32 {
	if x >= 0 {
		return int32(x + 0.5)
	}
	return int32(x - 0.5)
}

// quantize maps a real value into the code, saturating at the int8
// limits. The clamp happens in float space so wildly out-of-range inputs
// (far beyond the calibrated range) saturate to the correct end instead
// of hitting implementation-defined float→int conversion.
func (p qParams) quantize(v float64) int8 {
	qf := float64(p.zp) + v/p.scale
	if qf <= -128 {
		return -128
	}
	if qf >= 127 {
		return 127
	}
	return int8(iround32(qf))
}

// maxQuantTaps bounds the reduction depth of one quantized MAC output
// (cin*k for Conv1D, in for Dense) so int32 accumulation cannot
// overflow: taps*255*255 + |bias| ≤ 16000*65025 + 2^30 < 2^31-1.
// Tensors deeper than this are rejected at compile time.
const maxQuantTaps = 16000

// quantBias quantizes a bias to the accumulator scale, saturating at
// ±2^30 — a bias that large saturates the int8 output anyway, and the
// cap preserves the no-overflow argument above.
func quantBias(v float64) int32 {
	const limit = 1 << 30
	r := math.Round(v)
	if r >= limit {
		return limit
	}
	if r <= -limit {
		return -limit
	}
	return int32(r)
}

// requant rescales an integer accumulator into an output code.
func requant(acc int32, m float64, zp int32) int8 {
	qf := float64(zp) + float64(acc)*m
	if qf <= -128 {
		return -128
	}
	if qf >= 127 {
		return 127
	}
	return int8(iround32(qf))
}

// quantizeWeights computes the per-tensor affine code for one weight
// tensor and returns the pre-centered levels wc = q - zp (at most 256
// distinct values spanning ≤ [-255, 255] — 8 bits of information per
// weight, held in int16 so the MAC kernels skip the per-product
// zero-point correction entirely).
func quantizeWeights(w []float64) (wc []int16, scale float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range w {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	p := affineParams(lo, hi)
	wc = make([]int16, len(w))
	for i, v := range w {
		q := int32(p.quantize(v))
		wc[i] = int16(q - p.zp)
	}
	return wc, p.scale
}

// qOp is one stage of the compiled int8 pipeline. Ops read and write the
// workspace's int8 activation buffer in place (every MAC fully drains
// its input into the centered scratch before overwriting the buffer).
type qOp interface {
	run(ws *QuantWS)
}

// quantRelu clamps the first n activations at the zero point — exactly
// ReLU, because value 0 quantizes to q == zp.
type quantRelu struct {
	n  int
	zp int8
}

func (r *quantRelu) run(ws *QuantWS) {
	buf := ws.buf[:r.n]
	for i, v := range buf {
		if v < r.zp {
			buf[i] = r.zp
		}
	}
}

// quantPool is MaxPool1D on codes: quantization is monotone, so the max
// of codes is the code of the max. It compacts rows in place (write
// offsets never pass read offsets).
type quantPool struct {
	rows, cols, size int
}

func (q *quantPool) run(ws *QuantWS) {
	lout := q.cols / q.size
	buf := ws.buf
	for r := 0; r < q.rows; r++ {
		in := r * q.cols
		out := r * lout
		for t := 0; t < lout; t++ {
			base := in + t*q.size
			best := buf[base]
			for j := 1; j < q.size; j++ {
				if buf[base+j] > best {
					best = buf[base+j]
				}
			}
			buf[out+t] = best
		}
	}
}

// quantConv is Conv1D on codes: centered int16 weights transposed to
// (ci, tap, o) so the innermost loop runs contiguously over output
// channels, int32 accumulation, and a per-tensor requantization into the
// next MAC layer's input code. The position-major loop skips input
// positions whose centered value is zero — post-ReLU activations are
// exactly zero in code space, so on real traffic a large fraction of the
// multiply-accumulate work disappears (the float engine has no analogous
// cheap test on its hot path). Zero padding falls out of the bounds
// check: a padded tap contributes q == zp, i.e. centered 0.
type quantConv struct {
	cin, cout, k, pad, lin, lout int
	wt                           []int16 // (ci*k + j)*cout + o
	bias                         []int32
	inZP                         int32
	m                            float64 // sIn*sW/sOut
	outZP                        int32
}

func (c *quantConv) run(ws *QuantWS) {
	n := c.cin * c.lin
	xc := ws.xc[:n]
	buf := ws.buf
	for i := 0; i < n; i++ {
		xc[i] = int16(int32(buf[i]) - c.inZP)
	}
	acc := ws.acc[:c.lout*c.cout]
	for t := 0; t < c.lout; t++ {
		copy(acc[t*c.cout:(t+1)*c.cout], c.bias)
	}
	cout := c.cout
	for ci := 0; ci < c.cin; ci++ {
		xRow := xc[ci*c.lin : (ci+1)*c.lin]
		wBase := ci * c.k * cout
		for p, v16 := range xRow {
			if v16 == 0 {
				continue
			}
			v := int32(v16)
			for j := 0; j < c.k; j++ {
				t := p + c.pad - j
				if t < 0 || t >= c.lout {
					continue
				}
				// Equal-length reslices so the compiler can prove the
				// indexed accesses below in-bounds and drop the checks.
				aRow := acc[t*cout : t*cout+cout]
				wRow := c.wt[wBase+j*cout:]
				wRow = wRow[:len(aRow)]
				for o, w := range wRow {
					aRow[o] += v * int32(w)
				}
			}
		}
	}
	// Requantize from the (t, o) accumulator layout back into the
	// canonical (channel, position) activation layout.
	for o := 0; o < c.cout; o++ {
		out := buf[o*c.lout : (o+1)*c.lout]
		for t := 0; t < c.lout; t++ {
			out[t] = requant(acc[t*c.cout+o], c.m, c.outZP)
		}
	}
}

// quantDense is Dense on codes with the same layout tricks as quantConv:
// weights transposed to (i, o), zero-input skipping, int32 accumulation.
// The final Dense dequantizes straight to float64 logits instead of
// requantizing — softmax stays in float, which costs nothing and removes
// one quantization step from the most accuracy-sensitive tensor.
type quantDense struct {
	in, out  int
	wt       []int16 // i*out + o
	bias     []int32
	inZP     int32
	m        float64 // sIn*sW/sOut (requant mode)
	outZP    int32
	dequant  bool
	scaleOut float64 // sIn*sW (dequant mode)
}

func (d *quantDense) run(ws *QuantWS) {
	xc := ws.xc[:d.in]
	buf := ws.buf
	for i := 0; i < d.in; i++ {
		xc[i] = int16(int32(buf[i]) - d.inZP)
	}
	acc := ws.acc[:d.out]
	copy(acc, d.bias)
	for i, v16 := range xc {
		if v16 == 0 {
			continue
		}
		v := int32(v16)
		wRow := d.wt[i*d.out : (i+1)*d.out]
		wRow = wRow[:len(acc)]
		for o, w := range wRow {
			acc[o] += v * int32(w)
		}
	}
	if d.dequant {
		for o, a := range acc {
			ws.logits[o] = float64(a) * d.scaleOut
		}
		return
	}
	for o, a := range acc {
		buf[o] = requant(a, d.m, d.outZP)
	}
}

// QuantModel is a network compiled to the int8 inference pipeline:
// per-tensor affine weight quantization (pre-centered int16 levels,
// scale + zero point), activation codes calibrated from a training-set
// pass, integer MACs with a single float rescale per output element, and
// float64 logits/softmax at the very end. It holds only immutable
// compiled state and is safe for concurrent use; execution state lives
// in per-goroutine QuantWS instances (NewWS).
//
// The compiler requantizes each MAC layer's output directly into the
// *next* MAC layer's input code. The ReLU/MaxPool/Dropout/Flatten ops in
// between are monotone or identity in code space, so they run on int8
// without rescaling, and clipping pre-ReLU negatives to the next code's
// floor is exact: ReLU raises them to the zero point (true 0) anyway.
type QuantModel struct {
	inDim    int
	nClasses int
	inQ      qParams
	ops      []qOp
	bufN     int // int8 activation buffer size (max boundary)
	xcN      int // centered-input scratch size (max MAC input)
	accN     int // accumulator size (max MAC output elements)
}

// Quantize compiles net into an int8 QuantModel using the given
// calibration (see Calibrate). The last MAC layer must be a Dense and
// must be the last non-identity layer — true of PaperCNN and SmallMLP —
// otherwise ErrQuantUnsupported is returned.
func Quantize(net *Network, calib *Calibration) (*QuantModel, error) {
	if !calib.Valid(len(net.layers)) {
		return nil, fmt.Errorf("%w: want %d boundary ranges", ErrNoCalibration, len(net.layers)+1)
	}
	shapes := boundaryShapes(net)
	size := func(shape []int) int {
		n := 1
		for _, s := range shape {
			n *= s
		}
		return n
	}
	isMAC := func(l Layer) bool {
		switch l.(type) {
		case *Conv1D, *Dense:
			return true
		}
		return false
	}
	nextMAC := func(from int) int {
		for j := from; j < len(net.layers); j++ {
			if isMAC(net.layers[j]) {
				return j
			}
		}
		return -1
	}

	m := &QuantModel{inDim: net.InputDim(), nClasses: net.nClasses}
	m.inQ = affineParams(calib.Min[0], calib.Max[0])
	cur := m.inQ
	dequantized := false
	for i, l := range net.layers {
		if dequantized {
			return nil, fmt.Errorf("%w: layer %s follows the dequantizing Dense", ErrQuantUnsupported, l.Name())
		}
		if n := size(shapes[i]); n > m.bufN {
			m.bufN = n
		}
		switch v := l.(type) {
		case *Dropout, *Flatten:
			// Identity at eval time / pure reshape on the flat buffer.
		case *ReLU:
			m.ops = append(m.ops, &quantRelu{n: size(shapes[i]), zp: int8(cur.zp)})
		case *MaxPool1D:
			if len(shapes[i]) != 2 {
				return nil, fmt.Errorf("%w: %s on %v input", ErrQuantUnsupported, l.Name(), shapes[i])
			}
			m.ops = append(m.ops, &quantPool{rows: shapes[i][0], cols: shapes[i][1], size: v.size})
		case *Conv1D:
			j := nextMAC(i + 1)
			if j < 0 {
				return nil, fmt.Errorf("%w: final MAC layer %s is a Conv1D, want Dense", ErrQuantUnsupported, l.Name())
			}
			if v.cin*v.k > maxQuantTaps {
				return nil, fmt.Errorf("%w: %s has %d taps per output, max %d for int32 accumulation",
					ErrQuantUnsupported, l.Name(), v.cin*v.k, maxQuantTaps)
			}
			wc, sw := quantizeWeights(v.w.W)
			outQ := affineParams(calib.Min[j], calib.Max[j])
			lin := shapes[i][1]
			op := &quantConv{
				cin: v.cin, cout: v.cout, k: v.k, pad: v.pad(),
				lin: lin, lout: v.OutLen(lin),
				wt:   make([]int16, len(wc)),
				bias: make([]int32, v.cout),
				inZP: cur.zp,
				m:    cur.scale * sw / outQ.scale,
				outZP: outQ.zp,
			}
			for o := 0; o < v.cout; o++ {
				for ci := 0; ci < v.cin; ci++ {
					for t := 0; t < v.k; t++ {
						op.wt[(ci*v.k+t)*v.cout+o] = wc[(o*v.cin+ci)*v.k+t]
					}
				}
			}
			for o, b := range v.b.W {
				op.bias[o] = quantBias(b / (cur.scale * sw))
			}
			if n := v.cin * lin; n > m.xcN {
				m.xcN = n
			}
			if n := op.lout * v.cout; n > m.accN {
				m.accN = n
			}
			m.ops = append(m.ops, op)
			cur = outQ
		case *Dense:
			if v.in > maxQuantTaps {
				return nil, fmt.Errorf("%w: %s has %d taps per output, max %d for int32 accumulation",
					ErrQuantUnsupported, l.Name(), v.in, maxQuantTaps)
			}
			wc, sw := quantizeWeights(v.w.W)
			op := &quantDense{
				in: v.in, out: v.out,
				wt:   make([]int16, len(wc)),
				bias: make([]int32, v.out),
				inZP: cur.zp,
			}
			for o := 0; o < v.out; o++ {
				for in := 0; in < v.in; in++ {
					op.wt[in*v.out+o] = wc[o*v.in+in]
				}
			}
			for o, b := range v.b.W {
				op.bias[o] = quantBias(b / (cur.scale * sw))
			}
			if j := nextMAC(i + 1); j >= 0 {
				outQ := affineParams(calib.Min[j], calib.Max[j])
				op.m = cur.scale * sw / outQ.scale
				op.outZP = outQ.zp
				cur = outQ
			} else {
				op.dequant = true
				op.scaleOut = cur.scale * sw
				dequantized = true
			}
			if v.in > m.xcN {
				m.xcN = v.in
			}
			if v.out > m.accN {
				m.accN = v.out
			}
			m.ops = append(m.ops, op)
		default:
			return nil, fmt.Errorf("%w: layer %s (%T)", ErrQuantUnsupported, l.Name(), l)
		}
	}
	if !dequantized {
		return nil, fmt.Errorf("%w: no final Dense layer", ErrQuantUnsupported)
	}
	if n := size(shapes[len(shapes)-1]); n > m.bufN {
		m.bufN = n
	}
	return m, nil
}

// boundaryShapes probes the activation shape at every layer boundary by
// running a zero tensor through a private view.
func boundaryShapes(net *Network) [][]int {
	clone := net.CloneShared()
	shapes := make([][]int, 0, len(net.layers)+1)
	t := tensor.New(net.inShape...)
	shapes = append(shapes, append([]int(nil), t.Shape...))
	for _, l := range clone.layers {
		t = l.Forward(t, false)
		shapes = append(shapes, append([]int(nil), t.Shape...))
	}
	return shapes
}

// NumClasses returns the logit dimension.
func (m *QuantModel) NumClasses() int { return m.nClasses }

// InputDim returns the flat input dimension.
func (m *QuantModel) InputDim() int { return m.inDim }

// NewWS returns a fresh execution workspace over the model. Workspaces
// are cheap (a few KiB of integer buffers) and not safe for concurrent
// use; the model itself is shared freely.
func (m *QuantModel) NewWS() *QuantWS {
	accN := m.accN
	if accN == 0 {
		accN = 1
	}
	return &QuantWS{
		m:      m,
		buf:    make([]int8, m.bufN),
		xc:     make([]int16, m.xcN),
		acc:    make([]int32, accN),
		logits: make([]float64, m.nClasses),
		probs:  make([]float64, m.nClasses),
	}
}

// QuantWS executes a QuantModel with zero steady-state allocations. Like
// *Workspace, slices returned by Logits/Probs alias internal buffers and
// are valid until the next call; SafeProbs returns a fresh slice.
type QuantWS struct {
	m      *QuantModel
	buf    []int8
	xc     []int16
	acc    []int32
	logits []float64
	probs  []float64
}

// Model returns the compiled model this workspace executes.
func (ws *QuantWS) Model() *QuantModel { return ws.m }

// NumClasses returns the logit dimension.
func (ws *QuantWS) NumClasses() int { return ws.m.nClasses }

// InputDim returns the flat input dimension.
func (ws *QuantWS) InputDim() int { return ws.m.inDim }

func (ws *QuantWS) forward(x []float64) {
	inQ := ws.m.inQ
	inv := 1 / inQ.scale
	zp := float64(inQ.zp)
	for i := 0; i < ws.m.inDim; i++ {
		qf := zp + x[i]*inv
		switch {
		case qf <= -128:
			ws.buf[i] = -128
		case qf >= 127:
			ws.buf[i] = 127
		default:
			ws.buf[i] = int8(iround32(qf))
		}
	}
	for _, op := range ws.m.ops {
		op.run(ws)
	}
}

// Logits runs the quantized forward pass and returns the dequantized
// float64 logits (aliasing an internal buffer).
func (ws *QuantWS) Logits(x []float64) []float64 {
	ws.forward(x)
	return ws.logits
}

// Probs returns the softmax class probabilities (aliasing an internal
// buffer). The softmax itself runs in float64 on dequantized logits.
func (ws *QuantWS) Probs(x []float64) []float64 {
	return SoftmaxInto(ws.probs, ws.Logits(x))
}

// Predict returns the argmax class.
func (ws *QuantWS) Predict(x []float64) int { return Argmax(ws.Logits(x)) }

// SafeProbs is the serving-path variant of Probs: dimension validated up
// front, panics recovered as ErrBadInput, result in a fresh slice.
func (ws *QuantWS) SafeProbs(x []float64) (out []float64, err error) {
	if len(x) != ws.m.inDim {
		return nil, fmt.Errorf("%w: got %d features, want %d", ErrBadInput, len(x), ws.m.inDim)
	}
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("%w: layer panic: %v", ErrBadInput, r)
		}
	}()
	return append([]float64(nil), ws.Probs(x)...), nil
}

// ProbsBatch runs eval-mode probabilities for every row of xs into dst
// (grown as needed and returned), mirroring Workspace.ProbsBatch. The
// quantized path stays row-major even for large batches: the entire
// compiled weight set is a few hundred KiB of int16 and lives in cache,
// so there is no weight-streaming cost for batch-major execution to
// amortize.
func (ws *QuantWS) ProbsBatch(xs [][]float64, dst [][]float64) [][]float64 {
	dst = growRows(dst, len(xs), ws.m.nClasses)
	for r, x := range xs {
		copy(dst[r], ws.Probs(x))
	}
	return dst
}
