package nn

import (
	"context"
	"errors"
	"testing"
	"time"

	"advmal/internal/pool"
)

// TestFitCtxCancelled checks training honours cancellation: a cancelled
// context stops the epoch loop with context.Canceled and the partial
// history survives.
func TestFitCtxCancelled(t *testing.T) {
	x, y := blobs(1, 120, 4)
	net := SmallMLP(2, 4, 16, 2)
	tr := &Trainer{Epochs: 50, BatchSize: 20, Seed: 3, Workers: 2}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	hist, err := tr.FitCtx(ctx, net, x, y)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if hist == nil {
		t.Fatal("partial history lost on cancellation")
	}
}

// TestFitCtxDeadline checks a deadline bounds a long run promptly
// instead of training all epochs.
func TestFitCtxDeadline(t *testing.T) {
	x, y := blobs(2, 400, 4)
	net := SmallMLP(3, 4, 64, 2)
	tr := &Trainer{Epochs: 100000, BatchSize: 8, Seed: 3, Workers: 2}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := tr.FitCtx(ctx, net, x, y)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("deadline honoured only after %v", d)
	}
}

// TestFitCapturesLayerPanic poisons one training vector with the wrong
// dimensionality: the panic inside the layer stack must surface as an
// error identifying the batch, not crash the process.
func TestFitCapturesLayerPanic(t *testing.T) {
	x, y := blobs(1, 60, 4)
	x[17] = []float64{1} // wrong input dim → layer panic
	net := SmallMLP(2, 4, 16, 2)
	tr := &Trainer{Epochs: 3, BatchSize: 20, Seed: 3, Workers: 2}
	_, err := tr.Fit(net, x, y)
	if err == nil {
		t.Fatal("Fit succeeded on a poisoned vector")
	}
	var pe *pool.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("layer panic not captured as PanicError: %v", err)
	}
}

// TestSafeForwardRejectsBadInput checks the recover boundary on the
// inference path: wrong-dimension inputs are errors, never panics.
func TestSafeForwardRejectsBadInput(t *testing.T) {
	net := SmallMLP(1, 4, 8, 2)
	if _, err := net.SafeForward([]float64{1, 2}, false); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput, got %v", err)
	}
	if _, err := net.SafeProbs(nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("SafeProbs(nil): want ErrBadInput, got %v", err)
	}
	out, err := net.SafeForward([]float64{1, 2, 3, 4}, false)
	if err != nil || len(out) != 2 {
		t.Fatalf("valid input rejected: out=%v err=%v", out, err)
	}
}
