package nn

import (
	"math"
	"strings"
	"testing"
)

// constNet returns a network that always predicts the same class: a
// one-layer model with a huge bias on that logit.
func constNet(class int) *Network {
	net := SmallMLP(1, 2, 2, 2)
	for _, p := range net.Params() {
		for i := range p.W {
			p.W[i] = 0
		}
	}
	// Last parameter is the output bias.
	params := net.Params()
	bias := params[len(params)-1]
	bias.W[class] = 100
	return net
}

func TestEvaluateConfusion(t *testing.T) {
	net := constNet(ClassMalware)
	x := [][]float64{{0, 0}, {0, 0}, {0, 0}}
	y := []int{ClassBenign, ClassMalware, ClassMalware}
	m := Evaluate(net, x, y)
	if m.N != 3 {
		t.Errorf("N = %d, want 3", m.N)
	}
	if math.Abs(m.Accuracy-2.0/3.0) > 1e-12 {
		t.Errorf("accuracy = %v, want 2/3", m.Accuracy)
	}
	// All benign misclassified as malware -> FPR 1; no malware missed.
	if m.FPR != 1 || m.FNR != 0 {
		t.Errorf("FPR=%v FNR=%v, want 1/0", m.FPR, m.FNR)
	}
	if m.Confusion[ClassBenign][ClassMalware] != 1 {
		t.Errorf("confusion = %v", m.Confusion)
	}
}

func TestEvaluateAllBenignPredictor(t *testing.T) {
	net := constNet(ClassBenign)
	x := [][]float64{{0, 0}, {0, 0}}
	y := []int{ClassMalware, ClassMalware}
	m := Evaluate(net, x, y)
	if m.FNR != 1 {
		t.Errorf("FNR = %v, want 1 (all malware classified benign)", m.FNR)
	}
	if m.FPR != 0 {
		t.Errorf("FPR = %v, want 0 (no benign samples)", m.FPR)
	}
	if m.Accuracy != 0 {
		t.Errorf("accuracy = %v, want 0", m.Accuracy)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m := Evaluate(constNet(0), nil, nil)
	if m.N != 0 || m.Accuracy != 0 {
		t.Errorf("empty eval = %+v", m)
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{Accuracy: 0.9713, FNR: 0.1126, FPR: 0.0155, N: 511}
	s := m.String()
	for _, want := range []string{"97.13", "11.26", "1.55", "511"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
