package nn

import (
	"fmt"
	"math"
	"math/rand"

	"advmal/internal/tensor"
)

// Workspace is the zero-allocation execution engine for one Network view.
// It preallocates every buffer a forward/backward pass needs — one
// activation tensor per layer boundary, one gradient tensor per boundary,
// per-layer mask/argmax/dropout scratch, and the softmax/Jacobian output
// buffers — sized once from the architecture, so the steady-state hot
// loops (attack iterations, training steps, classify probes) run with
// zero heap allocations.
//
// A workspace accumulates parameter gradients into the Param.G buffers of
// the network view it was built from, exactly like the allocating path,
// so the data-parallel trainer keeps its one-view-per-worker reduction.
// The input-gradient queries (LossGrad, LogitGrad, Jacobian, InputGrad)
// skip the parameter-gradient work entirely — attacks never read it — and
// are therefore roughly twice as fast as a full Backward on dense-heavy
// architectures.
//
// Slices returned by workspace methods alias internal buffers and are
// valid only until the next call on the same workspace. A workspace is
// not safe for concurrent use: give each goroutine its own CloneShared
// view and workspace (weights stay shared, everything mutable is
// per-workspace).
type Workspace struct {
	net     *Network
	kernels []wsKernel
	states  []wsState
	// acts[i] is the input of layer i; acts[len(layers)] the logits.
	acts []*tensor.T
	// gbufs[i] is the gradient w.r.t. acts[i].
	gbufs  []*tensor.T
	params []*Param
	dlog   []float64   // dLoss/dLogits scratch
	probs  []float64   // softmax output
	jac    [][]float64 // nClasses rows of inputDim
	inDim  int
	shapes [][]int    // activation shape at every layer boundary
	bp     *batchPlan // batch-major eval buffers, built on first batch call
}

// wsState is the per-layer mutable state a workspace owns so running the
// engine never mutates the Network's layers: ReLU masks, MaxPool argmax
// indices, Dropout masks and RNG streams.
type wsState struct {
	mask    []bool
	argmax  []int
	fmask   []float64
	rng     *rand.Rand
	dropped bool
}

// wsKernel is the workspace-execution contract a layer implements: run
// forward writing into y, and backward writing into dx, using only the
// state in s (never the layer's own caches). x is the layer input the
// workspace cached during the forward pass. accum controls whether
// parameter gradients are accumulated into the layer's Param.G.
type wsKernel interface {
	fwdWS(s *wsState, x, y *tensor.T, train bool)
	bwdWS(s *wsState, x, grad, dx *tensor.T, accum bool)
}

// NewWorkspace builds a workspace for net, preallocating every buffer
// from the architecture's layer shapes. Dropout streams start from the
// same deterministic default as CloneShared views (seed 1); call Reseed
// before train-mode use when a specific stream is required.
func NewWorkspace(net *Network) *Workspace {
	// Infer the activation shape at every layer boundary by running a
	// zero tensor through a shared-weight clone (so the live network's
	// layer caches are untouched) — the same trick Summary uses.
	probe := net.CloneShared()
	shapes := make([][]int, 0, len(net.layers)+1)
	t := tensor.New(net.inShape...)
	shapes = append(shapes, t.Shape)
	for _, l := range probe.layers {
		t = l.Forward(t, false)
		shapes = append(shapes, t.Shape)
	}

	ws := &Workspace{
		net:     net,
		kernels: make([]wsKernel, len(net.layers)),
		states:  make([]wsState, len(net.layers)),
		acts:    make([]*tensor.T, len(net.layers)+1),
		gbufs:   make([]*tensor.T, len(net.layers)+1),
		params:  net.Params(),
		dlog:    make([]float64, net.nClasses),
		probs:   make([]float64, net.nClasses),
		inDim:   net.InputDim(),
		shapes:  shapes,
	}
	ws.acts[0] = tensor.New(shapes[0]...)
	ws.gbufs[0] = tensor.New(shapes[0]...)
	for i, l := range net.layers {
		if _, isFlatten := l.(*Flatten); isFlatten {
			// Flatten is a pure reshape: its output tensors alias the
			// input tensors' data with a flat shape, so forward and
			// backward through it are no-ops.
			ws.acts[i+1] = &tensor.T{Shape: append([]int(nil), shapes[i+1]...), Data: ws.acts[i].Data}
			ws.gbufs[i+1] = &tensor.T{Shape: append([]int(nil), shapes[i+1]...), Data: ws.gbufs[i].Data}
		} else {
			ws.acts[i+1] = tensor.New(shapes[i+1]...)
			ws.gbufs[i+1] = tensor.New(shapes[i+1]...)
		}
		outSize := ws.acts[i+1].Size()
		switch l := l.(type) {
		case *ReLU:
			ws.states[i].mask = make([]bool, outSize)
		case *MaxPool1D:
			ws.states[i].argmax = make([]int, outSize)
		case *Dropout:
			ws.states[i].fmask = make([]float64, outSize)
			ws.states[i].rng = rand.New(rand.NewSource(1))
		case *Conv1D, *Flatten, *Dense:
			// No per-layer scratch beyond the boundary buffers.
		default:
			_ = l
		}
		if k, ok := l.(wsKernel); ok {
			ws.kernels[i] = k
		} else {
			// A layer type without a workspace kernel (an external Layer
			// implementation) falls back to its own allocating
			// Forward/Backward, copied into the workspace buffers. The
			// zero-alloc guarantee is lost for that layer, correctness is
			// not.
			ws.kernels[i] = &oracleKernel{l: l}
		}
	}
	ws.jac = make([][]float64, net.nClasses)
	jacFlat := make([]float64, net.nClasses*ws.inDim)
	for k := range ws.jac {
		ws.jac[k] = jacFlat[k*ws.inDim : (k+1)*ws.inDim]
	}
	return ws
}

// WS returns the workspace lazily attached to this network view, creating
// it on first use. Like the view itself, the workspace is single-threaded:
// per-worker CloneShared views each get their own via this method. The
// allocating Network methods remain available as the reference oracle.
func (n *Network) WS() *Workspace {
	if n.ws == nil {
		n.ws = NewWorkspace(n)
	}
	return n.ws
}

// Net returns the network view this workspace executes.
func (ws *Workspace) Net() *Network { return ws.net }

// NumClasses implements Engine.
func (ws *Workspace) NumClasses() int { return ws.net.nClasses }

// InputDim returns the flat input dimension.
func (ws *Workspace) InputDim() int { return ws.inDim }

// Reseed gives every stochastic layer a deterministic stream derived from
// seed, using the same per-layer derivation as Network.Reseed, so a
// workspace and an oracle network reseeded identically produce identical
// dropout masks.
func (ws *Workspace) Reseed(seed int64) {
	for i, l := range ws.net.layers {
		switch l := l.(type) {
		case *Dropout:
			ws.states[i].rng = rand.New(rand.NewSource(seed + int64(i)*7919))
		case Reseeder:
			// Fallback-kernel stochastic layers keep their own stream.
			l.Reseed(seed + int64(i)*7919)
		}
	}
}

// ZeroGrad clears the parameter gradients of the underlying view.
func (ws *Workspace) ZeroGrad() {
	for _, p := range ws.params {
		p.ZeroGrad()
	}
}

// Forward runs the network on a flat input vector and returns the logits
// (aliasing an internal buffer). train enables dropout. The input length
// must equal InputDim; a mismatch panics like the oracle layers do (use
// SafeProbs on untrusted inputs).
func (ws *Workspace) Forward(x []float64, train bool) []float64 {
	if len(x) != ws.inDim {
		panic(fmt.Sprintf("nn: workspace: input size %d, want %d", len(x), ws.inDim))
	}
	copy(ws.acts[0].Data, x)
	for i, k := range ws.kernels {
		k.fwdWS(&ws.states[i], ws.acts[i], ws.acts[i+1], train)
	}
	return ws.acts[len(ws.acts)-1].Data
}

// backprop propagates dLogits back through the buffers filled by the last
// Forward and returns the input gradient buffer. accum selects whether
// parameter gradients accumulate into the view's Param.G.
func (ws *Workspace) backprop(dLogits []float64, accum bool) []float64 {
	last := len(ws.gbufs) - 1
	copy(ws.gbufs[last].Data, dLogits)
	for i := len(ws.kernels) - 1; i >= 0; i-- {
		ws.kernels[i].bwdWS(&ws.states[i], ws.acts[i], ws.gbufs[i+1], ws.gbufs[i], accum)
	}
	return ws.gbufs[0].Data
}

// Backward propagates dLogits back through the network (after a Forward),
// accumulates parameter gradients into the view's Param.G exactly like
// the allocating path, and returns the gradient with respect to the flat
// input (aliasing an internal buffer).
func (ws *Workspace) Backward(dLogits []float64) []float64 {
	return ws.backprop(dLogits, true)
}

// InputGrad implements Engine: Backward without the parameter-gradient
// accumulation, the variant every attack loop wants. The returned values
// are bit-identical to the oracle's ZeroGrad+Backward composition — the
// input gradient never depends on the parameter-gradient accumulators.
func (ws *Workspace) InputGrad(dLogits []float64) []float64 {
	return ws.backprop(dLogits, false)
}

// Logits implements Engine (eval-mode forward pass).
func (ws *Workspace) Logits(x []float64) []float64 { return ws.Forward(x, false) }

// Probs implements Engine: softmax class probabilities, eval mode.
func (ws *Workspace) Probs(x []float64) []float64 {
	return SoftmaxInto(ws.probs, ws.Forward(x, false))
}

// Predict implements Engine: the argmax class, eval mode.
func (ws *Workspace) Predict(x []float64) int { return Argmax(ws.Forward(x, false)) }

// LossGrad implements Engine: the cross-entropy loss at x for label and
// the gradient of that loss with respect to the input (eval mode).
func (ws *Workspace) LossGrad(x []float64, label int) (float64, []float64) {
	logits := ws.Forward(x, false)
	loss := softmaxCEInto(ws.dlog, logits, label)
	return loss, ws.backprop(ws.dlog, false)
}

// LogitGrad implements Engine: logits plus the input gradient of logit k.
func (ws *Workspace) LogitGrad(x []float64, k int) ([]float64, []float64) {
	logits := ws.Forward(x, false)
	for i := range ws.dlog {
		ws.dlog[i] = 0
	}
	ws.dlog[k] = 1
	return logits, ws.backprop(ws.dlog, false)
}

// Jacobian implements Engine: one forward pass plus nClasses backward
// passes, filling the workspace's preallocated (nClasses x inputDim) row
// set.
func (ws *Workspace) Jacobian(x []float64) ([]float64, [][]float64) {
	logits := ws.Forward(x, false)
	for k := range ws.jac {
		for i := range ws.dlog {
			ws.dlog[i] = 0
		}
		ws.dlog[k] = 1
		copy(ws.jac[k], ws.backprop(ws.dlog, false))
	}
	return logits, ws.jac
}

// TrainStep is the trainer's whole per-sample inner loop in one
// zero-allocation call: forward in train mode, weighted softmax
// cross-entropy, and a full backward accumulating parameter gradients
// into the view's Param.G. It returns the (weighted) loss and whether the
// prediction was correct. weight scales both the loss and the logit
// gradient (class weighting); 1 applies no scaling.
func (ws *Workspace) TrainStep(x []float64, label int, weight float64) (float64, bool) {
	logits := ws.Forward(x, true)
	loss := softmaxCEInto(ws.dlog, logits, label)
	if weight != 1 {
		loss *= weight
		for j := range ws.dlog {
			ws.dlog[j] *= weight
		}
	}
	correct := Argmax(logits) == label
	ws.backprop(ws.dlog, true)
	return loss, correct
}

// SafeProbs is the serving-path variant of Probs: the input dimension is
// validated up front, any layer panic on a poisoned vector is recovered
// as an error wrapping ErrBadInput, and the probabilities are returned in
// a fresh slice the caller may retain.
func (ws *Workspace) SafeProbs(x []float64) (out []float64, err error) {
	if len(x) != ws.inDim {
		return nil, fmt.Errorf("%w: got %d features, want %d", ErrBadInput, len(x), ws.inDim)
	}
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("%w: layer panic: %v", ErrBadInput, r)
		}
	}()
	return append([]float64(nil), ws.Probs(x)...), nil
}

// ProbsBatch runs eval-mode softmax probabilities for every row of xs.
// Batches of two or more rows execute batch-major (see batchPlan): layers
// outside, rows inside, with Dense/Conv1D weight rows reused across the
// batch — bit-identical to the per-row path and substantially faster
// per row, since each weight row is streamed once per batch instead of
// once per input. Rows are written into dst, which is grown as needed and
// returned; pass a previously returned dst to make steady-state batches
// allocation-free.
func (ws *Workspace) ProbsBatch(xs [][]float64, dst [][]float64) [][]float64 {
	dst = growRows(dst, len(xs), ws.net.nClasses)
	switch len(xs) {
	case 0:
	case 1:
		copy(dst[0], ws.Probs(xs[0]))
	default:
		logits, stride := ws.forwardBatch(xs)
		for r := range xs {
			SoftmaxInto(dst[r], logits[r*stride:r*stride+ws.net.nClasses])
		}
	}
	return dst
}

// PredictBatch runs eval-mode argmax predictions for every row of xs into
// dst (grown as needed and returned), batch-major like ProbsBatch.
func (ws *Workspace) PredictBatch(xs [][]float64, dst []int) []int {
	if cap(dst) < len(xs) {
		dst = make([]int, len(xs))
	}
	dst = dst[:len(xs)]
	switch len(xs) {
	case 0:
	case 1:
		dst[0] = ws.Predict(xs[0])
	default:
		logits, stride := ws.forwardBatch(xs)
		for r := range xs {
			dst[r] = Argmax(logits[r*stride : r*stride+ws.net.nClasses])
		}
	}
	return dst
}

// GradBatch computes the cross-entropy loss and input gradient for every
// (x, label) pair, amortizing dispatch: the batched counterpart of
// LossGrad. Losses and gradient rows are written into the provided
// slices, grown as needed and returned; reuse them across calls to stay
// allocation-free.
func (ws *Workspace) GradBatch(xs [][]float64, labels []int, losses []float64, grads [][]float64) ([]float64, [][]float64) {
	if cap(losses) < len(xs) {
		losses = make([]float64, len(xs))
	}
	losses = losses[:len(xs)]
	grads = growRows(grads, len(xs), ws.inDim)
	for i, x := range xs {
		loss, g := ws.LossGrad(x, labels[i])
		losses[i] = loss
		copy(grads[i], g)
	}
	return losses, grads
}

// growRows resizes dst to n rows of width cols, reusing existing rows.
func growRows(dst [][]float64, n, cols int) [][]float64 {
	if cap(dst) < n {
		grown := make([][]float64, n)
		copy(grown, dst[:cap(dst)])
		dst = grown
	}
	dst = dst[:n]
	for i := range dst {
		if len(dst[i]) != cols {
			dst[i] = make([]float64, cols)
		}
	}
	return dst
}

// SoftmaxInto writes the numerically stable softmax of logits into dst
// (which must have the same length) and returns dst. It performs exactly
// the same operations as Softmax, so results are bit-identical.
func SoftmaxInto(dst, logits []float64) []float64 {
	maxL := math.Inf(-1)
	for _, l := range logits {
		if l > maxL {
			maxL = l
		}
	}
	var sum float64
	for i, l := range logits {
		e := math.Exp(l - maxL)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}

// softmaxCEInto is the allocation-free SoftmaxCE: it writes the loss
// gradient (p - onehot) into d and returns the cross-entropy loss,
// bit-identical to the allocating version.
func softmaxCEInto(d, logits []float64, label int) float64 {
	SoftmaxInto(d, logits)
	q := d[label]
	d[label] -= 1
	if q < 1e-300 {
		q = 1e-300
	}
	return -math.Log(q)
}

// oracleKernel adapts a Layer without a workspace kernel (an external
// implementation) by delegating to its allocating Forward/Backward and
// copying the result into the workspace buffers. Correct, not
// allocation-free; every layer this package defines has a real kernel.
type oracleKernel struct{ l Layer }

func (o *oracleKernel) fwdWS(_ *wsState, x, y *tensor.T, train bool) {
	out := o.l.Forward(x, train)
	copy(y.Data, out.Data)
}

func (o *oracleKernel) bwdWS(_ *wsState, _, grad, dx *tensor.T, _ bool) {
	out := o.l.Backward(grad)
	copy(dx.Data, out.Data)
}
