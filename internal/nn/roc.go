package nn

import (
	"sort"
)

// ROCPoint is one operating point of the detector: the false positive
// and true positive rates at some score threshold.
type ROCPoint struct {
	FPR, TPR, Threshold float64
}

// ROC computes the receiver operating characteristic of the detector's
// malware score (softmax probability of ClassMalware) over the given
// samples, sorted by descending threshold, starting at (0,0) and ending
// at (1,1).
func ROC(net *Network, x [][]float64, y []int) []ROCPoint {
	type scored struct {
		score float64
		pos   bool
	}
	items := make([]scored, 0, len(x))
	var pos, neg int
	ws := net.WS()
	for i := range x {
		p := ws.Probs(x[i])[ClassMalware]
		isPos := y[i] == ClassMalware
		if isPos {
			pos++
		} else {
			neg++
		}
		items = append(items, scored{p, isPos})
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].score > items[j].score })
	curve := []ROCPoint{{FPR: 0, TPR: 0, Threshold: 1}}
	tp, fp := 0, 0
	for i := 0; i < len(items); {
		// Advance over ties so the curve has one point per threshold.
		thr := items[i].score
		for i < len(items) && items[i].score == thr {
			if items[i].pos {
				tp++
			} else {
				fp++
			}
			i++
		}
		pt := ROCPoint{Threshold: thr}
		if pos > 0 {
			pt.TPR = float64(tp) / float64(pos)
		}
		if neg > 0 {
			pt.FPR = float64(fp) / float64(neg)
		}
		curve = append(curve, pt)
	}
	return curve
}

// AUC returns the area under the ROC curve by trapezoidal integration.
func AUC(curve []ROCPoint) float64 {
	var area float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// DetectorAUC is shorthand: ROC + AUC in one call.
func DetectorAUC(net *Network, x [][]float64, y []int) float64 {
	return AUC(ROC(net, x, y))
}
