package nn

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"advmal/internal/tensor"
)

// ErrBadInput indicates an input vector the network cannot process — a
// wrong dimension or a value that makes a layer panic. Serving paths use
// the Safe* methods so untrusted feature vectors surface this error
// instead of crashing the process.
var ErrBadInput = errors.New("nn: bad input")

// Network is a feed-forward stack of layers whose final output is the
// logit vector. The zero value is unusable; build with NewNetwork or
// PaperCNN.
type Network struct {
	layers   []Layer
	inShape  []int
	nClasses int
	ws       *Workspace // lazily built by WS; never serialized or cloned
}

// NewNetwork assembles a network. inShape is the shape the flat input
// vector is reshaped to before the first layer (e.g. (1, 23)); nClasses is
// the size of the final logit vector.
func NewNetwork(inShape []int, nClasses int, layers ...Layer) *Network {
	return &Network{
		layers:   layers,
		inShape:  append([]int(nil), inShape...),
		nClasses: nClasses,
	}
}

// Layers returns the layer stack (not a copy).
func (n *Network) Layers() []Layer { return n.layers }

// NumClasses returns the logit dimension.
func (n *Network) NumClasses() int { return n.nClasses }

// InputDim returns the flat input dimension.
func (n *Network) InputDim() int {
	d := 1
	for _, s := range n.inShape {
		d *= s
	}
	return d
}

// Params returns every learnable parameter in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total learnable parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W)
	}
	return total
}

// ZeroGrad clears all parameter gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// CloneShared returns a view of the network sharing weights but with
// private caches and gradients, for data-parallel training and crafting.
func (n *Network) CloneShared() *Network {
	c := &Network{
		inShape:  append([]int(nil), n.inShape...),
		nClasses: n.nClasses,
		layers:   make([]Layer, len(n.layers)),
	}
	for i, l := range n.layers {
		c.layers[i] = l.CloneShared()
	}
	return c
}

// Reseed gives every stochastic layer a deterministic stream derived from
// seed.
func (n *Network) Reseed(seed int64) {
	for i, l := range n.layers {
		if r, ok := l.(Reseeder); ok {
			r.Reseed(seed + int64(i)*7919)
		}
	}
}

// Forward runs the network on a flat input vector and returns the logits.
// train enables dropout.
func (n *Network) Forward(x []float64, train bool) []float64 {
	t := &tensor.T{Shape: append([]int(nil), n.inShape...), Data: append([]float64(nil), x...)}
	for _, l := range n.layers {
		t = l.Forward(t, train)
	}
	return t.Data
}

// Backward propagates dLogits back through the network (after a Forward)
// and returns the gradient with respect to the flat input. Parameter
// gradients are accumulated.
func (n *Network) Backward(dLogits []float64) []float64 {
	g := &tensor.T{Shape: []int{len(dLogits)}, Data: append([]float64(nil), dLogits...)}
	for i := len(n.layers) - 1; i >= 0; i-- {
		g = n.layers[i].Backward(g)
	}
	return g.Data
}

// SafeForward is Forward with the layer-panic boundary: a shape mismatch
// or any other panic raised by a layer on an untrusted input is recovered
// and returned as an error wrapping ErrBadInput. The input dimension is
// validated up front.
func (n *Network) SafeForward(x []float64, train bool) (out []float64, err error) {
	if len(x) != n.InputDim() {
		return nil, fmt.Errorf("%w: got %d features, want %d", ErrBadInput, len(x), n.InputDim())
	}
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("%w: layer panic: %v", ErrBadInput, r)
		}
	}()
	return n.Forward(x, train), nil
}

// SafeBackward is Backward with the same panic boundary as SafeForward.
func (n *Network) SafeBackward(dLogits []float64) (g []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("%w: layer panic: %v", ErrBadInput, r)
		}
	}()
	return n.Backward(dLogits), nil
}

// SafeProbs returns the softmax class probabilities for x with the
// layer-panic boundary applied — the serving-path counterpart of Probs.
func (n *Network) SafeProbs(x []float64) ([]float64, error) {
	logits, err := n.SafeForward(x, false)
	if err != nil {
		return nil, err
	}
	return Softmax(logits), nil
}

// Logits runs an eval-mode forward pass.
func (n *Network) Logits(x []float64) []float64 { return n.Forward(x, false) }

// Probs returns the softmax class probabilities for x (eval mode).
func (n *Network) Probs(x []float64) []float64 { return Softmax(n.Logits(x)) }

// Predict returns the argmax class for x (eval mode).
func (n *Network) Predict(x []float64) int { return Argmax(n.Logits(x)) }

// LossGrad returns the cross-entropy loss at x for the true label and the
// gradient of that loss with respect to the input (eval mode, exact).
func (n *Network) LossGrad(x []float64, label int) (float64, []float64) {
	logits := n.Forward(x, false)
	loss, dLogits := SoftmaxCE(logits, label)
	n.ZeroGrad()
	return loss, n.Backward(dLogits)
}

// LogitGrad returns logits and the gradient of logit k with respect to the
// input.
func (n *Network) LogitGrad(x []float64, k int) ([]float64, []float64) {
	logits := n.Forward(x, false)
	d := make([]float64, len(logits))
	d[k] = 1
	n.ZeroGrad()
	return logits, n.Backward(d)
}

// Jacobian returns the full (nClasses x inputDim) Jacobian of the logits
// with respect to the input, plus the logits themselves. It runs one
// forward and nClasses backward passes.
func (n *Network) Jacobian(x []float64) ([]float64, [][]float64) {
	logits := n.Forward(x, false)
	jac := make([][]float64, len(logits))
	for k := range logits {
		d := make([]float64, len(logits))
		d[k] = 1
		n.ZeroGrad()
		jac[k] = n.Backward(d)
	}
	return logits, jac
}

// InputGrad implements Engine: it back-propagates dLogits through the
// network after a Forward and returns the gradient with respect to the
// flat input, discarding parameter gradients (they are zeroed first so
// the accumulators hold nothing stale afterwards).
func (n *Network) InputGrad(dLogits []float64) []float64 {
	n.ZeroGrad()
	return n.Backward(dLogits)
}

// Softmax returns the numerically stable softmax of logits.
func Softmax(logits []float64) []float64 {
	maxL := math.Inf(-1)
	for _, l := range logits {
		if l > maxL {
			maxL = l
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, l := range logits {
		e := math.Exp(l - maxL)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// SoftmaxCE returns the cross-entropy loss of logits against label and the
// gradient of the loss with respect to the logits (p - onehot).
func SoftmaxCE(logits []float64, label int) (float64, []float64) {
	p := Softmax(logits)
	d := make([]float64, len(p))
	copy(d, p)
	d[label] -= 1
	// Clamp to avoid log(0) on saturated predictions.
	q := p[label]
	if q < 1e-300 {
		q = 1e-300
	}
	return -math.Log(q), d
}

// Argmax returns the index of the largest element (first on ties).
func Argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// Summary renders a per-layer architecture description with output shapes,
// reproducing Fig. 5 of the paper.
func (n *Network) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Input: %v\n", n.inShape)
	t := tensor.New(n.inShape...)
	clone := n.CloneShared() // avoid clobbering live caches
	for _, l := range clone.layers {
		t = l.Forward(t, false)
		params := 0
		for _, p := range l.Params() {
			params += len(p.W)
		}
		fmt.Fprintf(&sb, "%-12s -> %-12v params=%d\n", l.Name(), t.Shape, params)
	}
	fmt.Fprintf(&sb, "Total params: %d\n", n.NumParams())
	return sb.String()
}
