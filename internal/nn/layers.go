package nn

import (
	"fmt"
	"math/rand"

	"advmal/internal/tensor"
)

// ReLU is the rectified-linear activation used after every convolutional
// and fully connected layer in the paper's network.
type ReLU struct {
	name string
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// CloneShared implements Layer.
func (r *ReLU) CloneShared() Layer { return &ReLU{name: r.name} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.T, _ bool) *tensor.T {
	y := x.Clone()
	if cap(r.mask) < len(y.Data) {
		r.mask = make([]bool, len(y.Data))
	}
	r.mask = r.mask[:len(y.Data)]
	for i, v := range y.Data {
		if v > 0 {
			r.mask[i] = true
			continue
		}
		r.mask[i] = false
		y.Data[i] = 0
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.T) *tensor.T {
	dx := grad.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// MaxPool1D is a max pooling layer with equal size and stride (the paper
// uses 2/2). Trailing elements that do not fill a window are dropped,
// matching standard "valid" pooling.
type MaxPool1D struct {
	name   string
	size   int
	argmax []int
	inCols int
	inRows int
}

// NewMaxPool1D returns a MaxPool1D with the given window size (== stride).
func NewMaxPool1D(name string, size int) *MaxPool1D {
	return &MaxPool1D{name: name, size: size}
}

// Name implements Layer.
func (m *MaxPool1D) Name() string { return m.name }

// Params implements Layer.
func (m *MaxPool1D) Params() []*Param { return nil }

// CloneShared implements Layer.
func (m *MaxPool1D) CloneShared() Layer { return &MaxPool1D{name: m.name, size: m.size} }

// Forward implements Layer.
func (m *MaxPool1D) Forward(x *tensor.T, _ bool) *tensor.T {
	rows, cols := x.Rows(), x.Cols()
	lout := cols / m.size
	m.inRows, m.inCols = rows, cols
	y := tensor.New2D(rows, lout)
	if cap(m.argmax) < rows*lout {
		m.argmax = make([]int, rows*lout)
	}
	m.argmax = m.argmax[:rows*lout]
	for r := 0; r < rows; r++ {
		xRow := x.Row(r)
		yRow := y.Row(r)
		for t := 0; t < lout; t++ {
			base := t * m.size
			best := base
			for j := base + 1; j < base+m.size; j++ {
				if xRow[j] > xRow[best] {
					best = j
				}
			}
			yRow[t] = xRow[best]
			m.argmax[r*lout+t] = best
		}
	}
	return y
}

// Backward implements Layer.
func (m *MaxPool1D) Backward(grad *tensor.T) *tensor.T {
	dx := tensor.New2D(m.inRows, m.inCols)
	lout := grad.Cols()
	for r := 0; r < m.inRows; r++ {
		gRow := grad.Row(r)
		dxRow := dx.Row(r)
		for t := 0; t < lout; t++ {
			dxRow[m.argmax[r*lout+t]] += gRow[t]
		}
	}
	return dx
}

// Dropout is inverted dropout: at train time activations are dropped with
// probability p and survivors scaled by 1/(1-p); at eval time it is the
// identity, so attack gradients are exact.
type Dropout struct {
	name string
	p    float64
	rng  *rand.Rand
	mask []float64
}

// NewDropout returns a Dropout layer with drop probability p.
func NewDropout(name string, p float64, seed int64) *Dropout {
	return &Dropout{name: name, p: p, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// CloneShared implements Layer.
func (d *Dropout) CloneShared() Layer {
	return &Dropout{name: d.name, p: d.p, rng: rand.New(rand.NewSource(1))}
}

// Reseed implements Reseeder.
func (d *Dropout) Reseed(seed int64) { d.rng = rand.New(rand.NewSource(seed)) }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.T, train bool) *tensor.T {
	if !train || d.p <= 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.p
	scale := 1 / keep
	y := x.Clone()
	if cap(d.mask) < len(y.Data) {
		d.mask = make([]float64, len(y.Data))
	}
	d.mask = d.mask[:len(y.Data)]
	for i := range y.Data {
		if d.rng.Float64() < keep {
			d.mask[i] = scale
			y.Data[i] *= scale
		} else {
			d.mask[i] = 0
			y.Data[i] = 0
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.T) *tensor.T {
	if d.mask == nil {
		return grad
	}
	dx := grad.Clone()
	for i := range dx.Data {
		dx.Data[i] *= d.mask[i]
	}
	return dx
}

// Flatten reshapes (C, L) activations to a flat vector.
type Flatten struct {
	name    string
	inShape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// CloneShared implements Layer.
func (f *Flatten) CloneShared() Layer { return &Flatten{name: f.name} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.T, _ bool) *tensor.T {
	f.inShape = append(f.inShape[:0], x.Shape...)
	return &tensor.T{Shape: []int{x.Size()}, Data: x.Data}
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.T) *tensor.T {
	return &tensor.T{Shape: append([]int(nil), f.inShape...), Data: grad.Data}
}

// Dense is a fully connected layer: y = W x + b.
type Dense struct {
	name    string
	in, out int
	w       *Param // out * in
	b       *Param // out
	x       *tensor.T
}

// NewDense returns a He-initialized Dense layer.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		name: name, in: in, out: out,
		w: &Param{Name: name + ".w", W: make([]float64, out*in), G: make([]float64, out*in)},
		b: &Param{Name: name + ".b", W: make([]float64, out), G: make([]float64, out)},
	}
	heInit(rng, d.w.W, in)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// CloneShared implements Layer.
func (d *Dense) CloneShared() Layer {
	return &Dense{
		name: d.name, in: d.in, out: d.out,
		w: &Param{Name: d.w.Name, W: d.w.W, G: make([]float64, len(d.w.G))},
		b: &Param{Name: d.b.Name, W: d.b.W, G: make([]float64, len(d.b.G))},
	}
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.T, _ bool) *tensor.T {
	if x.Size() != d.in {
		panic(fmt.Sprintf("nn: %s: input size %d, want %d", d.name, x.Size(), d.in))
	}
	d.x = x
	y := tensor.New(d.out)
	for o := 0; o < d.out; o++ {
		row := d.w.W[o*d.in : (o+1)*d.in]
		sum := d.b.W[o]
		for i, xi := range x.Data {
			sum += row[i] * xi
		}
		y.Data[o] = sum
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.T) *tensor.T {
	dx := tensor.New(d.in)
	for o := 0; o < d.out; o++ {
		g := grad.Data[o]
		d.b.G[o] += g
		if g == 0 {
			continue
		}
		row := d.w.W[o*d.in : (o+1)*d.in]
		gw := d.w.G[o*d.in : (o+1)*d.in]
		for i, xi := range d.x.Data {
			gw[i] += g * xi
			dx.Data[i] += row[i] * g
		}
	}
	return dx
}

// Interface compliance checks.
var (
	_ Layer    = (*ReLU)(nil)
	_ Layer    = (*MaxPool1D)(nil)
	_ Layer    = (*Dropout)(nil)
	_ Layer    = (*Flatten)(nil)
	_ Layer    = (*Dense)(nil)
	_ Reseeder = (*Dropout)(nil)
)
