package nn

import (
	"math"
	"strings"
	"testing"

	"advmal/internal/tensor"
)

// TestFig5ArchitectureShapes verifies the exact tensor shapes the paper
// reports for every block of the CNN (§IV-B1): 46x23 -> 46x21 -> 46x10 ->
// 92x10 -> 92x8 -> 92x4 -> 368 -> 512 -> 2.
func TestFig5ArchitectureShapes(t *testing.T) {
	net := PaperCNN(1)
	x := tensor.New(1, PaperInputLen)
	wantShapes := map[string][]int{
		"conv1":   {46, 23},
		"conv2":   {46, 21},
		"pool1":   {46, 10},
		"conv3":   {92, 10},
		"conv4":   {92, 8},
		"pool2":   {92, 4},
		"flatten": {368},
		"fc1":     {512},
		"logits":  {2},
	}
	cur := x
	for _, l := range net.Layers() {
		cur = l.Forward(cur, false)
		want, ok := wantShapes[l.Name()]
		if !ok {
			continue
		}
		if len(cur.Shape) != len(want) {
			t.Fatalf("%s: shape %v, want %v", l.Name(), cur.Shape, want)
		}
		for i := range want {
			if cur.Shape[i] != want[i] {
				t.Fatalf("%s: shape %v, want %v", l.Name(), cur.Shape, want)
			}
		}
	}
	if net.NumParams() == 0 {
		t.Error("no parameters")
	}
}

func TestSummaryMentionsEveryLayer(t *testing.T) {
	s := PaperCNN(1).Summary()
	for _, name := range []string{"conv1", "conv4", "pool2", "flatten", "fc1", "logits", "Total params"} {
		if !strings.Contains(s, name) {
			t.Errorf("Summary missing %q:\n%s", name, s)
		}
	}
}

func TestReLU(t *testing.T) {
	r := NewReLU("r")
	in := tensor.FromSlice([]float64{-1, 0, 2})
	out := r.Forward(in, true)
	want := []float64{0, 0, 2}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("relu[%d] = %v, want %v", i, out.Data[i], want[i])
		}
	}
	grad := r.Backward(tensor.FromSlice([]float64{5, 5, 5}))
	wantG := []float64{0, 0, 5}
	for i := range wantG {
		if grad.Data[i] != wantG[i] {
			t.Errorf("relu grad[%d] = %v, want %v", i, grad.Data[i], wantG[i])
		}
	}
}

func TestMaxPool(t *testing.T) {
	m := NewMaxPool1D("m", 2)
	in := &tensor.T{Shape: []int{2, 5}, Data: []float64{
		1, 3, 2, 2, 9, // trailing 9 dropped (odd length)
		4, 1, 0, 5, 7,
	}}
	out := m.Forward(in, true)
	if out.Rows() != 2 || out.Cols() != 2 {
		t.Fatalf("pool out shape %v, want (2,2)", out.Shape)
	}
	want := []float64{3, 2, 4, 5}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("pool[%d] = %v, want %v", i, out.Data[i], want[i])
		}
	}
	grad := m.Backward(&tensor.T{Shape: []int{2, 2}, Data: []float64{10, 20, 30, 40}})
	wantG := []float64{0, 10, 20, 0, 0, 30, 0, 0, 40, 0}
	for i := range wantG {
		if grad.Data[i] != wantG[i] {
			t.Errorf("pool grad[%d] = %v, want %v", i, grad.Data[i], wantG[i])
		}
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout("d", 0.5, 1)
	in := tensor.FromSlice([]float64{1, 2, 3})
	out := d.Forward(in, false)
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Error("dropout at eval changed values")
		}
	}
	// Backward after eval forward is also identity.
	g := d.Backward(tensor.FromSlice([]float64{4, 5, 6}))
	if g.Data[0] != 4 {
		t.Error("dropout backward after eval not identity")
	}
}

func TestDropoutTrainScalesSurvivors(t *testing.T) {
	d := NewDropout("d", 0.5, 42)
	n := 10000
	in := tensor.New(n)
	for i := range in.Data {
		in.Data[i] = 1
	}
	out := d.Forward(in, true)
	var sum float64
	zeros := 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			sum += v
		default:
			t.Fatalf("unexpected dropout output %v (want 0 or 2)", v)
		}
	}
	if zeros < n/3 || zeros > 2*n/3 {
		t.Errorf("dropped %d of %d, want ~half", zeros, n)
	}
	// Inverted dropout keeps the expectation: sum should be near n.
	if math.Abs(sum-float64(n)) > float64(n)/10 {
		t.Errorf("survivor mass = %v, want ~%d", sum, n)
	}
}

func TestDropoutReseedReproduces(t *testing.T) {
	d := NewDropout("d", 0.5, 0)
	in := tensor.FromSlice(make([]float64, 64))
	for i := range in.Data {
		in.Data[i] = 1
	}
	d.Reseed(99)
	a := d.Forward(in, true).Clone()
	d.Reseed(99)
	b := d.Forward(in, true)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("Reseed did not reproduce the mask stream")
		}
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("f")
	in := &tensor.T{Shape: []int{2, 3}, Data: []float64{1, 2, 3, 4, 5, 6}}
	out := f.Forward(in, true)
	if len(out.Shape) != 1 || out.Size() != 6 {
		t.Fatalf("flatten shape %v", out.Shape)
	}
	back := f.Backward(out)
	if back.Rows() != 2 || back.Cols() != 3 {
		t.Errorf("flatten backward shape %v, want (2,3)", back.Shape)
	}
}

func TestDensePanicsOnWrongInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dense accepted wrong input size")
		}
	}()
	d := NewDense("d", 4, 2, newTestRNG())
	d.Forward(tensor.New(3), false)
}

func TestConvPanicsOnWrongChannels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Conv1D accepted wrong channel count")
		}
	}()
	c := NewConv1D("c", 2, 4, 3, true, newTestRNG())
	c.Forward(tensor.New(3, 5), false)
}

func TestCloneSharedSharesWeightsNotGrads(t *testing.T) {
	net := SmallMLP(3, 4, 8, 2)
	clone := net.CloneShared()
	p0 := net.Params()[0]
	c0 := clone.Params()[0]
	if &p0.W[0] != &c0.W[0] {
		t.Error("CloneShared must share weight storage")
	}
	if &p0.G[0] == &c0.G[0] {
		t.Error("CloneShared must not share gradient storage")
	}
	// Clone forward/backward must not clobber the original's caches.
	x := []float64{1, 0, -1, 2}
	want := net.Logits(x)
	clone.LossGrad([]float64{9, 9, 9, 9}, 0)
	got := net.Logits(x)
	for i := range want {
		if want[i] != got[i] {
			t.Error("clone activity changed original outputs")
		}
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 1})
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[1]-0.5) > 1e-12 {
		t.Errorf("Softmax(1,1) = %v", p)
	}
	// Large logits must not overflow.
	p = Softmax([]float64{1000, 0})
	if math.IsNaN(p[0]) || p[0] < 0.999 {
		t.Errorf("Softmax(1000,0) = %v", p)
	}
	var sum float64
	for _, x := range Softmax([]float64{0.3, -2, 5}) {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sums to %v", sum)
	}
}

func TestSoftmaxCE(t *testing.T) {
	loss, grad := SoftmaxCE([]float64{0, 0}, 1)
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Errorf("loss = %v, want ln 2", loss)
	}
	if math.Abs(grad[0]-0.5) > 1e-12 || math.Abs(grad[1]+0.5) > 1e-12 {
		t.Errorf("grad = %v, want [0.5 -0.5]", grad)
	}
	// Saturated wrong prediction has huge but finite loss.
	loss, _ = SoftmaxCE([]float64{1000, 0}, 1)
	if math.IsInf(loss, 0) || math.IsNaN(loss) {
		t.Errorf("saturated loss = %v", loss)
	}
}

func TestArgmax(t *testing.T) {
	tests := []struct {
		in   []float64
		want int
	}{
		{[]float64{1, 3, 2}, 1},
		{[]float64{5}, 0},
		{[]float64{2, 2}, 0}, // first on ties
		{[]float64{-5, -1, -3}, 1},
	}
	for _, tc := range tests {
		if got := Argmax(tc.in); got != tc.want {
			t.Errorf("Argmax(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
