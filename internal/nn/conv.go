package nn

import (
	"fmt"
	"math/rand"

	"advmal/internal/tensor"
)

// Conv1D is a 1-D convolution over (channels, length) activations with
// kernel size K, stride 1, and either "same" (zero) or "valid" padding —
// the two variants the paper's architecture uses.
type Conv1D struct {
	name      string
	cin, cout int
	k         int
	same      bool
	w         *Param // cout * cin * k
	b         *Param // cout
	x         *tensor.T
}

// NewConv1D returns a Conv1D with He-initialized weights.
func NewConv1D(name string, cin, cout, k int, samePad bool, rng *rand.Rand) *Conv1D {
	c := &Conv1D{
		name: name,
		cin:  cin, cout: cout, k: k, same: samePad,
		w: &Param{Name: name + ".w", W: make([]float64, cout*cin*k), G: make([]float64, cout*cin*k)},
		b: &Param{Name: name + ".b", W: make([]float64, cout), G: make([]float64, cout)},
	}
	heInit(rng, c.w.W, cin*k)
	return c
}

// Name implements Layer.
func (c *Conv1D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv1D) Params() []*Param { return []*Param{c.w, c.b} }

// CloneShared implements Layer.
func (c *Conv1D) CloneShared() Layer {
	return &Conv1D{
		name: c.name,
		cin:  c.cin, cout: c.cout, k: c.k, same: c.same,
		w: &Param{Name: c.w.Name, W: c.w.W, G: make([]float64, len(c.w.G))},
		b: &Param{Name: c.b.Name, W: c.b.W, G: make([]float64, len(c.b.G))},
	}
}

func (c *Conv1D) pad() int {
	if c.same {
		return (c.k - 1) / 2
	}
	return 0
}

// OutLen returns the output length for input length l.
func (c *Conv1D) OutLen(l int) int { return l + 2*c.pad() - c.k + 1 }

// Forward implements Layer. Input shape (cin, L); output (cout, OutLen(L)).
func (c *Conv1D) Forward(x *tensor.T, _ bool) *tensor.T {
	if x.Rows() != c.cin {
		panic(fmt.Sprintf("nn: %s: input channels %d, want %d", c.name, x.Rows(), c.cin))
	}
	c.x = x
	l := x.Cols()
	pad := c.pad()
	lout := c.OutLen(l)
	y := tensor.New2D(c.cout, lout)
	for o := 0; o < c.cout; o++ {
		yRow := y.Row(o)
		bias := c.b.W[o]
		for t := range yRow {
			yRow[t] = bias
		}
		for ci := 0; ci < c.cin; ci++ {
			wBase := (o*c.cin + ci) * c.k
			wRow := c.w.W[wBase : wBase+c.k]
			xRow := x.Row(ci)
			for j, wj := range wRow {
				if wj == 0 {
					continue
				}
				// y[t] += w[j] * x[t+j-pad]
				off := j - pad
				lo := 0
				if off < 0 {
					lo = -off
				}
				hi := lout
				if hi > l-off {
					hi = l - off
				}
				for t := lo; t < hi; t++ {
					yRow[t] += wj * xRow[t+off]
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (c *Conv1D) Backward(grad *tensor.T) *tensor.T {
	x := c.x
	l := x.Cols()
	pad := c.pad()
	lout := grad.Cols()
	dx := tensor.New2D(c.cin, l)
	for o := 0; o < c.cout; o++ {
		gRow := grad.Row(o)
		var gSum float64
		for _, g := range gRow {
			gSum += g
		}
		c.b.G[o] += gSum
		for ci := 0; ci < c.cin; ci++ {
			wBase := (o*c.cin + ci) * c.k
			wRow := c.w.W[wBase : wBase+c.k]
			gw := c.w.G[wBase : wBase+c.k]
			xRow := x.Row(ci)
			dxRow := dx.Row(ci)
			for j := 0; j < c.k; j++ {
				off := j - pad
				lo := 0
				if off < 0 {
					lo = -off
				}
				hi := lout
				if hi > l-off {
					hi = l - off
				}
				var dwj float64
				wj := wRow[j]
				for t := lo; t < hi; t++ {
					g := gRow[t]
					dwj += g * xRow[t+off]
					dxRow[t+off] += wj * g
				}
				gw[j] += dwj
			}
		}
	}
	return dx
}

var _ Layer = (*Conv1D)(nil)
