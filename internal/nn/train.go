package nn

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"

	"advmal/internal/pool"
)

// Training errors.
var (
	// ErrNoTrainData indicates Fit was called with an empty dataset.
	ErrNoTrainData = errors.New("nn: no training data")
	// ErrLabelRange indicates a label outside [0, classes).
	ErrLabelRange = errors.New("nn: label out of range")
)

// Optimizer updates shared weights from accumulated gradients.
type Optimizer interface {
	// Step applies the gradients in params (scaled by 1/scale) to the
	// weights and clears nothing; callers zero gradients themselves.
	Step(params []*Param, scale float64)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      [][]float64
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param, scale float64) {
	if s.vel == nil {
		s.vel = make([][]float64, len(params))
		for i, p := range params {
			s.vel[i] = make([]float64, len(p.W))
		}
	}
	inv := 1 / scale
	for i, p := range params {
		v := s.vel[i]
		for j := range p.W {
			g := p.G[j] * inv
			v[j] = s.Momentum*v[j] - s.LR*g
			p.W[j] += v[j]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with standard defaults.
type Adam struct {
	LR    float64 // 0 means 1e-3
	Beta1 float64 // 0 means 0.9
	Beta2 float64 // 0 means 0.999
	Eps   float64 // 0 means 1e-8

	t    int
	m, v [][]float64
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param, scale float64) {
	lr, b1, b2, eps := a.LR, a.Beta1, a.Beta2, a.Eps
	if lr == 0 {
		lr = 1e-3
	}
	if b1 == 0 {
		b1 = 0.9
	}
	if b2 == 0 {
		b2 = 0.999
	}
	if eps == 0 {
		eps = 1e-8
	}
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, len(p.W))
			a.v[i] = make([]float64, len(p.W))
		}
	}
	a.t++
	c1 := 1 - math.Pow(b1, float64(a.t))
	c2 := 1 - math.Pow(b2, float64(a.t))
	inv := 1 / scale
	for i, p := range params {
		m, v := a.m[i], a.v[i]
		for j := range p.W {
			g := p.G[j] * inv
			m[j] = b1*m[j] + (1-b1)*g
			v[j] = b2*v[j] + (1-b2)*g*g
			p.W[j] -= lr * (m[j] / c1) / (math.Sqrt(v[j]/c2) + eps)
		}
	}
}

// Trainer fits a network with mini-batch gradient descent, fanning samples
// within each batch across a fixed-size worker pool of weight-sharing
// network clones. Results are deterministic for a fixed Seed and Workers.
type Trainer struct {
	// Epochs is the maximum number of passes (paper: 200).
	Epochs int
	// BatchSize is the mini-batch size (paper: 100).
	BatchSize int
	// Optimizer defaults to Adam with lr 1e-3.
	Optimizer Optimizer
	// Seed drives shuffling and dropout.
	Seed int64
	// Workers is the data-parallel width; 0 means GOMAXPROCS.
	Workers int
	// EarlyStopLoss stops training once the epoch mean loss stays below
	// this value for Patience consecutive epochs. 0 disables.
	EarlyStopLoss float64
	// Patience is the consecutive-epoch requirement for early stopping;
	// 0 means 3.
	Patience int
	// Verbose, when non-nil, receives one progress line per epoch.
	Verbose io.Writer
	// ClassWeights, when non-nil, scales each sample's loss and gradient
	// by ClassWeights[label] — the standard lever for the class
	// imbalance the paper's §IV-C1 discusses (89% malware vs 11%
	// benign). Must have one entry per class.
	ClassWeights []float64
	// Augment, when non-nil, may replace a training sample just before
	// it is processed (Madry-style online adversarial training). It
	// receives a scratch network view (weights shared with the model
	// being trained, private caches and gradients — safe for crafting),
	// the sample's dataset index, and the sample; returning nil keeps
	// the original. It must be safe for concurrent calls on distinct
	// scratch networks.
	Augment func(scratch *Network, idx int, x []float64, label int) []float64
	// SerialReduction selects the pre-tree per-batch gradient reduction:
	// a serial sweep over params × workers that re-resolves each clone's
	// parameter slice per (param, worker) pair, plus separate per-clone
	// and master ZeroGrad passes. Kept as the measured baseline for
	// `cmd/bench -suite train`; both paths are deterministic, and they
	// agree byte-for-byte for Workers ≤ 2 (the pairwise tree and the
	// serial sweep only differ in floating-point summation order from
	// three workers up).
	SerialReduction bool
}

// reduceChunkSize bounds how many gradient elements one reduction work
// item covers. ~8k float64s (64KiB) is large enough that per-item pool
// overhead vanishes against the adds, and small enough that the paper
// CNN's dominant fc1 tensor (368×512 = 188416 elements) still splits
// into 23 chunks that spread across workers.
const reduceChunkSize = 8192

// gradChunk addresses a contiguous element range [lo, hi) of parameter
// tensor pi. Chunks partition the (param, element) space disjointly, so
// any scheduling of chunks over workers produces the same bits.
type gradChunk struct {
	pi, lo, hi int
}

// GradReducer folds per-clone gradient accumulators into the master
// parameters. The default path (Reduce) splits every tensor into fixed
// element ranges and, within each range, combines clones with a pairwise
// tree in worker-index order — clone w+stride folds into clone w at
// doubling strides, then clone 0's total is written to the master and
// every consumed accumulator is zeroed in the same pass. The combine
// order depends only on worker indices and the element ranges are
// disjoint, so the result is byte-identical no matter how the pool
// schedules chunks; the fused zeroing replaces the trainer's old serial
// per-clone ZeroGrad sweep and the master ZeroGrad after the optimizer
// step. Clone parameter slices are resolved once at construction.
//
// ReduceSerial/ZeroClones reproduce the pre-tree baseline exactly
// (including its per-pair Params() re-resolution); they exist so
// `cmd/bench -suite train` can measure the old cost against Reduce.
type GradReducer struct {
	params []*Param
	clones []*Network
	cp     [][]*Param
	chunks []gradChunk
}

// NewGradReducer prepares a reducer for net and its shared-weight
// training clones. All clone gradient accumulators must be zero before
// the first Reduce (freshly cloned views satisfy this).
func NewGradReducer(net *Network, clones []*Network) *GradReducer {
	r := &GradReducer{params: net.Params(), clones: clones}
	r.cp = make([][]*Param, len(clones))
	for w, c := range clones {
		r.cp[w] = c.Params()
	}
	for pi, p := range r.params {
		for lo := 0; lo < len(p.G); lo += reduceChunkSize {
			r.chunks = append(r.chunks, gradChunk{pi, lo, min(lo+reduceChunkSize, len(p.G))})
		}
	}
	return r
}

// Reduce folds all clone gradients into the master parameters (the
// master accumulators are overwritten, not added to) and zeroes every
// clone accumulator, fanning chunks across up to workers pool workers.
// With a single clone it folds inline to skip goroutine spawn.
func (r *GradReducer) Reduce(ctx context.Context, workers int) error {
	if len(r.clones) == 1 || workers == 1 {
		for _, c := range r.chunks {
			r.fold(c)
		}
		return nil
	}
	return pool.Run(ctx, len(r.chunks), pool.Options{Workers: workers},
		func(_ context.Context, _, k int) error {
			r.fold(r.chunks[k])
			return nil
		})
}

// fold combines one chunk across all clones: pairwise tree in
// worker-index order, then clone 0's segment moves to the master. Each
// source segment is zeroed as it is consumed, so after the fold every
// clone is ready for the next batch without a separate zeroing pass.
func (r *GradReducer) fold(c gradChunk) {
	w := len(r.cp)
	for stride := 1; stride < w; stride *= 2 {
		for a := 0; a+stride < w; a += 2 * stride {
			dst := r.cp[a][c.pi].G[c.lo:c.hi]
			src := r.cp[a+stride][c.pi].G[c.lo:c.hi]
			for j := range dst {
				dst[j] += src[j]
				src[j] = 0
			}
		}
	}
	g := r.params[c.pi].G[c.lo:c.hi]
	root := r.cp[0][c.pi].G[c.lo:c.hi]
	for j := range g {
		g[j] = root[j]
		root[j] = 0
	}
}

// ReduceSerial is the pre-tree baseline: accumulate clone gradients into
// the master sequentially in worker order, re-resolving the clone's
// parameter slice for every (param, worker) pair as the old trainer did.
// The master accumulators must be zero on entry and the caller zeroes
// them (and the clones, via ZeroClones) afterwards — the baseline's
// separate passes are part of what the benchmark measures.
func (r *GradReducer) ReduceSerial() {
	for pi, p := range r.params {
		for w := 0; w < len(r.clones); w++ {
			cg := r.clones[w].Params()[pi].G
			for j := range p.G {
				p.G[j] += cg[j]
			}
		}
	}
}

// ZeroClones is the baseline's serial per-clone gradient zeroing pass.
func (r *GradReducer) ZeroClones() {
	for _, c := range r.clones {
		c.ZeroGrad()
	}
}

// History records per-epoch training statistics.
type History struct {
	Loss     []float64
	Accuracy []float64
	Stopped  int // epoch at which early stopping triggered; 0 if none
}

// Fit trains net on (X, y) without cancellation. Labels must be in
// [0, net.NumClasses()).
func (t *Trainer) Fit(net *Network, x [][]float64, y []int) (*History, error) {
	return t.FitCtx(context.Background(), net, x, y)
}

// FitCtx trains net on (X, y), checking ctx between batches so long runs
// can be cancelled or time-boxed; on cancellation it returns the partial
// history alongside the context's error. Per-batch sample processing fans
// out on the shared worker pool with a strided worker→sample binding, so
// results are byte-identical for a fixed Seed and Workers regardless of
// scheduling. A panic inside a layer (a poisoned feature vector) is
// captured by the pool and returned as an error instead of crashing the
// process.
func (t *Trainer) FitCtx(ctx context.Context, net *Network, x [][]float64, y []int) (*History, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("%w: %d samples, %d labels", ErrNoTrainData, len(x), len(y))
	}
	for i, label := range y {
		if label < 0 || label >= net.NumClasses() {
			return nil, fmt.Errorf("%w: sample %d has label %d", ErrLabelRange, i, label)
		}
	}
	if t.ClassWeights != nil && len(t.ClassWeights) < net.NumClasses() {
		return nil, fmt.Errorf("nn: %d class weights for %d classes",
			len(t.ClassWeights), net.NumClasses())
	}
	epochs := t.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	batch := t.BatchSize
	if batch <= 0 {
		batch = 100
	}
	opt := t.Optimizer
	if opt == nil {
		opt = &Adam{}
	}
	workers := t.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > batch {
		workers = batch
	}
	patience := t.Patience
	if patience <= 0 {
		patience = 3
	}

	rng := rand.New(rand.NewSource(t.Seed))
	// One shared-weight view per worker, each executed through its
	// zero-allocation workspace: parameter gradients accumulate into the
	// view's private Param.G exactly as the allocating path did, and the
	// workspace dropout streams use the same per-worker seed derivation,
	// so training remains byte-identical for a fixed Seed and Workers.
	clones := make([]*Network, workers)
	wss := make([]*Workspace, workers)
	var scratch []*Network
	if t.Augment != nil {
		scratch = make([]*Network, workers)
	}
	for w := range clones {
		clones[w] = net.CloneShared()
		wss[w] = clones[w].WS()
		wss[w].Reseed(t.Seed + int64(w+1)*104729)
		if scratch != nil {
			// A separate view per worker so crafting cannot clobber the
			// gradient accumulation in the training clone.
			scratch[w] = net.CloneShared()
		}
	}
	red := NewGradReducer(net, clones)
	params := red.params
	losses := make([]float64, workers)
	hits := make([]int, workers)
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}

	hist := &History{}
	calm := 0
	for epoch := 1; epoch <= epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		var correct int
		for start := 0; start < len(idx); start += batch {
			end := start + batch
			if end > len(idx) {
				end = len(idx)
			}
			chunk := idx[start:end]
			if t.SerialReduction {
				red.ZeroClones()
			}
			for w := 0; w < workers; w++ {
				losses[w] = 0
				hits[w] = 0
			}
			err := pool.Run(ctx, len(chunk), pool.Options{Workers: workers, Strided: true},
				func(_ context.Context, w, k int) error {
					i := chunk[k]
					xi := x[i]
					if t.Augment != nil {
						if ax := t.Augment(scratch[w], i, xi, y[i]); ax != nil {
							xi = ax
						}
					}
					weight := 1.0
					if t.ClassWeights != nil {
						weight = t.ClassWeights[y[i]]
					}
					loss, hit := wss[w].TrainStep(xi, y[i], weight)
					losses[w] += loss
					if hit {
						hits[w]++
					}
					return nil
				})
			if err != nil {
				return hist, fmt.Errorf("nn: epoch %d: %w", epoch, err)
			}
			// Reduce clone gradients into the master parameters in a
			// fixed order for determinism: the chunked pairwise tree by
			// default (fused zeroing, parallel over the pool), or the
			// serial baseline sweep when benchmarking against it.
			if t.SerialReduction {
				red.ReduceSerial()
				opt.Step(params, float64(len(chunk)))
				net.ZeroGrad()
			} else {
				if err := red.Reduce(ctx, workers); err != nil {
					return hist, fmt.Errorf("nn: epoch %d: reduce: %w", epoch, err)
				}
				opt.Step(params, float64(len(chunk)))
			}
			for w := 0; w < workers; w++ {
				epochLoss += losses[w]
				correct += hits[w]
			}
		}
		meanLoss := epochLoss / float64(len(x))
		acc := float64(correct) / float64(len(x))
		hist.Loss = append(hist.Loss, meanLoss)
		hist.Accuracy = append(hist.Accuracy, acc)
		if t.Verbose != nil {
			fmt.Fprintf(t.Verbose, "epoch %3d/%d loss=%.5f acc=%.4f\n", epoch, epochs, meanLoss, acc)
		}
		if t.EarlyStopLoss > 0 && meanLoss < t.EarlyStopLoss {
			calm++
			if calm >= patience {
				hist.Stopped = epoch
				break
			}
		} else {
			calm = 0
		}
	}
	return hist, nil
}
