package nn

import (
	"math"
	"testing"
)

func TestROCOnSeparableData(t *testing.T) {
	x, y := blobs(11, 200, 4)
	net := SmallMLP(12, 4, 16, 2)
	tr := &Trainer{Epochs: 30, BatchSize: 20, Seed: 13, Workers: 1}
	if _, err := tr.Fit(net, x, y); err != nil {
		t.Fatal(err)
	}
	curve := ROC(net, x, y)
	if len(curve) < 3 {
		t.Fatalf("curve has %d points", len(curve))
	}
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Errorf("curve starts at (%v,%v), want (0,0)", first.FPR, first.TPR)
	}
	if math.Abs(last.FPR-1) > 1e-12 || math.Abs(last.TPR-1) > 1e-12 {
		t.Errorf("curve ends at (%v,%v), want (1,1)", last.FPR, last.TPR)
	}
	// Monotone nondecreasing in both coordinates.
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatalf("curve not monotone at %d", i)
		}
	}
	if auc := AUC(curve); auc < 0.99 {
		t.Errorf("AUC = %v on a separable problem, want ~1", auc)
	}
}

func TestAUCRandomScorer(t *testing.T) {
	// An untrained (random) scorer on balanced data should sit near 0.5.
	x, y := blobs(14, 400, 4)
	// Scramble labels so scores carry no signal.
	for i := range y {
		y[i] = (i / 2) % 2
	}
	net := SmallMLP(15, 4, 8, 2)
	auc := DetectorAUC(net, x, y)
	if auc < 0.3 || auc > 0.7 {
		t.Errorf("random AUC = %v, want near 0.5", auc)
	}
}

func TestAUCPerfectAndInverted(t *testing.T) {
	curve := []ROCPoint{{0, 0, 1}, {0, 1, 0.5}, {1, 1, 0}}
	if auc := AUC(curve); auc != 1 {
		t.Errorf("perfect AUC = %v", auc)
	}
	curve = []ROCPoint{{0, 0, 1}, {1, 0, 0.5}, {1, 1, 0}}
	if auc := AUC(curve); auc != 0 {
		t.Errorf("inverted AUC = %v", auc)
	}
}

func TestROCEmpty(t *testing.T) {
	net := SmallMLP(16, 2, 4, 2)
	curve := ROC(net, nil, nil)
	if len(curve) != 1 {
		t.Errorf("empty ROC = %d points", len(curve))
	}
	if auc := AUC(curve); auc != 0 {
		t.Errorf("empty AUC = %v", auc)
	}
}
