package nn

import (
	"math/rand"
	"testing"
)

// TestBatchForwardBitIdentical is the batch-major counterpart of
// TestWorkspaceBitIdentical: on random architectures (kernel sizes 1/3/5,
// both paddings, random pools and dropouts) and random batches,
// ProbsBatch and PredictBatch are bit-for-bit identical to the allocating
// oracle applied row by row — reordering layers outside and rows inside
// must not change a single bit.
func TestBatchForwardBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		net := buildRandomNet(rng)
		ws := NewWorkspace(net.CloneShared())
		dim := net.InputDim()

		// Vary the batch size across calls so arena growth and reuse both
		// get exercised on the same plan.
		for _, n := range []int{2, 7, 1, 16, 3} {
			xs := make([][]float64, n)
			for i := range xs {
				xs[i] = randVec(rng, dim)
			}
			probs := ws.ProbsBatch(xs, nil)
			preds := ws.PredictBatch(xs, nil)
			for i, x := range xs {
				bitsEqual(t, "batch probs", probs[i], net.Probs(x))
				if preds[i] != net.Predict(x) {
					t.Fatalf("batch predict row %d: ws %d oracle %d", i, preds[i], net.Predict(x))
				}
			}
		}
	}
}

// TestBatchForwardZeroTaps pins the generic conv path inside the batched
// kernel: zeroing one tap of a k=3 convolution must route that channel
// pair through the zero-tap-skipping loop on both engines and stay
// bit-identical (the fused kernel would add a zero product, which can
// flip a negative-zero accumulator — the gate exists for exactly this).
func TestBatchForwardZeroTaps(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	net := PaperCNN(5)
	// Zero a few taps across the conv layers.
	for _, p := range net.Params() {
		if len(p.W)%3 == 0 && len(p.W) > 3 {
			p.W[0] = 0
			p.W[len(p.W)/2] = 0
		}
	}
	ws := NewWorkspace(net.CloneShared())
	xs := make([][]float64, 9)
	for i := range xs {
		xs[i] = randVec(rng, net.InputDim())
	}
	probs := ws.ProbsBatch(xs, nil)
	for i, x := range xs {
		bitsEqual(t, "zero-tap batch probs", probs[i], net.Probs(x))
	}
}

// TestProbsBatchAllocFree pins the serving-path invariant: once the batch
// plan and the destination rows exist, repeated batched inference
// performs zero heap allocations.
func TestProbsBatchAllocFree(t *testing.T) {
	net := PaperCNN(3)
	ws := net.CloneShared().WS()
	rng := rand.New(rand.NewSource(9))
	xs := make([][]float64, 32)
	for i := range xs {
		xs[i] = randVec(rng, net.InputDim())
	}
	var dst [][]float64
	dst = ws.ProbsBatch(xs, dst) // warm: builds the plan and dst rows
	allocs := testing.AllocsPerRun(50, func() {
		dst = ws.ProbsBatch(xs, dst)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ProbsBatch allocates %v allocs/op, want 0", allocs)
	}
	var preds []int
	preds = ws.PredictBatch(xs, preds)
	allocs = testing.AllocsPerRun(50, func() {
		preds = ws.PredictBatch(xs, preds)
	})
	if allocs != 0 {
		t.Fatalf("steady-state PredictBatch allocates %v allocs/op, want 0", allocs)
	}
}
