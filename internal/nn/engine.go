package nn

// Engine is the inference/gradient surface the adversarial attacks,
// evaluation harnesses, and serving paths drive. Two implementations
// exist:
//
//   - *Network — the allocating reference path ("the oracle"): every call
//     returns freshly allocated slices. Simple, obviously correct, and the
//     ground truth the property tests compare against.
//   - *Workspace — the zero-allocation engine: all activation, mask,
//     argmax, and gradient buffers are preallocated once from the layer
//     shapes, and every call writes into them. Bit-for-bit identical to
//     the oracle, several times faster, and the path every hot loop
//     (attack iteration, training step, GEA classify probe) runs on.
//
// Contract difference callers must respect: slices returned by a
// *Workspace alias internal buffers and are only valid until the next
// call on the same workspace — copy them if they must survive. Neither
// implementation is safe for concurrent use; give each goroutine its own
// CloneShared view and workspace (see Network.WS).
type Engine interface {
	// NumClasses returns the logit dimension.
	NumClasses() int
	// Forward runs a forward pass on a flat input and returns the logits.
	Forward(x []float64, train bool) []float64
	// Logits is an eval-mode forward pass.
	Logits(x []float64) []float64
	// Probs returns the softmax class probabilities (eval mode).
	Probs(x []float64) []float64
	// Predict returns the argmax class (eval mode).
	Predict(x []float64) int
	// LossGrad returns the cross-entropy loss at x for label and the
	// gradient of that loss with respect to the input (eval mode).
	LossGrad(x []float64, label int) (float64, []float64)
	// LogitGrad returns the logits and the gradient of logit k with
	// respect to the input.
	LogitGrad(x []float64, k int) ([]float64, []float64)
	// Jacobian returns the logits and the full (nClasses x inputDim)
	// Jacobian of the logits with respect to the input.
	Jacobian(x []float64) ([]float64, [][]float64)
	// InputGrad back-propagates dLogits through the network after a
	// Forward and returns the gradient with respect to the flat input.
	InputGrad(dLogits []float64) []float64
}

// InferenceEngine is the forward-only subset of Engine — what a serving
// tier needs and nothing more. The int8 quantized engine (*QuantWS)
// implements exactly this subset: it cannot honestly provide gradients
// (its arithmetic is not the differentiable float64 computation the
// attacks assume), so it deliberately does not implement Engine.
type InferenceEngine interface {
	// NumClasses returns the logit dimension.
	NumClasses() int
	// Logits is an eval-mode forward pass.
	Logits(x []float64) []float64
	// Probs returns the softmax class probabilities (eval mode).
	Probs(x []float64) []float64
	// Predict returns the argmax class (eval mode).
	Predict(x []float64) int
}

// Interface compliance: the allocating oracle and the workspace engine
// expose the same surface, so attacks and harnesses run on either; the
// quantized workspace joins them on the inference-only subset.
var (
	_ Engine = (*Network)(nil)
	_ Engine = (*Workspace)(nil)

	_ InferenceEngine = (*Network)(nil)
	_ InferenceEngine = (*Workspace)(nil)
	_ InferenceEngine = (*QuantWS)(nil)
)
