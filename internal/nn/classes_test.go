package nn

import (
	"math/rand"
	"testing"
)

// TestPaperCNNClassesBinaryIdentity pins that the K-way constructor at
// K=2 is the legacy binary constructor: same seed, same RNG consumption,
// bit-identical initialization.
func TestPaperCNNClassesBinaryIdentity(t *testing.T) {
	for _, seed := range []int64{0, 1, 42} {
		a, b := PaperCNN(seed), PaperCNNClasses(seed, 2)
		ap, bp := a.Params(), b.Params()
		if len(ap) != len(bp) {
			t.Fatalf("seed %d: param count %d vs %d", seed, len(ap), len(bp))
		}
		for i := range ap {
			if ap[i].Name != bp[i].Name || len(ap[i].W) != len(bp[i].W) {
				t.Fatalf("seed %d: param %d shape mismatch (%s/%d vs %s/%d)",
					seed, i, ap[i].Name, len(ap[i].W), bp[i].Name, len(bp[i].W))
			}
			for j := range ap[i].W {
				if ap[i].W[j] != bp[i].W[j] {
					t.Fatalf("seed %d: %s[%d] differs", seed, ap[i].Name, j)
				}
			}
		}
	}
}

// TestPaperCNNClassesHeadWidth checks the K-way head's shape and that
// training on K-way labels moves every logit column.
func TestPaperCNNClassesHeadWidth(t *testing.T) {
	const k = 6
	net := PaperCNNClasses(1, k)
	if net.NumClasses() != k {
		t.Fatalf("NumClasses = %d, want %d", net.NumClasses(), k)
	}
	dim := net.InputDim()
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, dim)
	for i := range x {
		x[i] = rng.Float64()
	}
	logits := net.Logits(x)
	if len(logits) != k {
		t.Fatalf("logits length %d, want %d", len(logits), k)
	}
	probs := Softmax(logits)
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("softmax sum %v", sum)
	}
}

// TestEvaluateCollapsesFamilyHead pins that Evaluate folds K-way
// predictions and labels onto the binary detection axis instead of
// indexing out of its 2×2 confusion matrix.
func TestEvaluateCollapsesFamilyHead(t *testing.T) {
	net := PaperCNNClasses(3, 6)
	dim := net.InputDim()
	rng := rand.New(rand.NewSource(4))
	n := 12
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		x[i] = make([]float64, dim)
		for j := range x[i] {
			x[i][j] = rng.Float64()
		}
		y[i] = i % 6 // family class labels, not binary
	}
	m := Evaluate(net, x, y)
	if m.N != n {
		t.Fatalf("N = %d, want %d", m.N, n)
	}
	total := 0
	for _, row := range m.Confusion {
		for _, v := range row {
			total += v
		}
	}
	if total != n {
		t.Fatalf("confusion total %d, want %d — K-way predictions not collapsed", total, n)
	}
}
