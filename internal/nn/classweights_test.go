package nn

import (
	"math/rand"
	"testing"
)

// imbalancedBlobs makes an 85/15 imbalanced two-cluster problem with
// overlap, so the unweighted model sacrifices the minority class.
func imbalancedBlobs(seed int64, n int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		label := 0
		center := -0.3
		if i%7 != 0 { // ~86% majority class 1
			label = 1
			center = 0.3
		}
		v := make([]float64, 4)
		for j := range v {
			v[j] = center + rng.NormFloat64()*0.45
		}
		x[i] = v
		y[i] = label
	}
	return x, y
}

func TestClassWeightsShiftErrorTradeoff(t *testing.T) {
	x, y := imbalancedBlobs(3, 700)
	run := func(weights []float64) Metrics {
		net := SmallMLP(8, 4, 16, 2)
		tr := &Trainer{
			Epochs: 40, BatchSize: 32, Seed: 5, Workers: 1,
			ClassWeights: weights,
		}
		if _, err := tr.Fit(net, x, y); err != nil {
			t.Fatalf("Fit: %v", err)
		}
		return Evaluate(net, x, y)
	}
	unweighted := run(nil)
	// Upweight the minority class (label 0 = "benign" here) 6x.
	weighted := run([]float64{6, 1})
	// Minority-class error (FPR with benign=0 convention: benign
	// misclassified) must drop when the minority is upweighted.
	if weighted.FPR >= unweighted.FPR {
		t.Errorf("minority error did not drop: unweighted FPR=%v weighted FPR=%v",
			unweighted.FPR, weighted.FPR)
	}
	// The trade: majority error may rise; overall accuracy stays sane.
	if weighted.Accuracy < 0.6 {
		t.Errorf("weighted accuracy collapsed: %v", weighted.Accuracy)
	}
}

func TestClassWeightsValidation(t *testing.T) {
	x, y := imbalancedBlobs(4, 40)
	net := SmallMLP(9, 4, 8, 2)
	tr := &Trainer{Epochs: 1, BatchSize: 8, ClassWeights: []float64{1}}
	if _, err := tr.Fit(net, x, y); err == nil {
		t.Error("Fit accepted too-short class weights")
	}
}
