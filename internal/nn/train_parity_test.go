package nn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// oracleFit replicates the trainer's algorithm on the allocating oracle
// path — Forward/SoftmaxCE/Backward on per-worker CloneShared views with
// the strided worker binding, the fixed pairwise-tree gradient reduction
// with fused zeroing (serially, whole tensors at a time: the trainer's
// element-range chunking only distributes disjoint work and cannot
// change any bit), and the same optimizer stepping — so the parity tests
// can pin the workspace-backed Trainer to byte-identical weights.
func oracleFit(net *Network, x [][]float64, y []int, seed int64, epochs, batch, workers int, classWeights []float64) {
	rng := rand.New(rand.NewSource(seed))
	clones := make([]*Network, workers)
	for w := range clones {
		clones[w] = net.CloneShared()
		clones[w].Reseed(seed + int64(w+1)*104729)
	}
	params := net.Params()
	opt := &Adam{}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 1; epoch <= epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += batch {
			end := start + batch
			if end > len(idx) {
				end = len(idx)
			}
			chunk := idx[start:end]
			// The pool binds item k to worker k%workers and each worker
			// processes its items in ascending k; replicate serially.
			// (No per-batch ZeroGrad: the tree reduction below zeroes
			// every accumulator it consumes, and fresh clones start zero.)
			for w := 0; w < workers; w++ {
				for k := w; k < len(chunk); k += workers {
					c := clones[w]
					i := chunk[k]
					logits := c.Forward(x[i], true)
					_, dLogits := SoftmaxCE(logits, y[i])
					if classWeights != nil {
						cw := classWeights[y[i]]
						for j := range dLogits {
							dLogits[j] *= cw
						}
					}
					c.Backward(dLogits)
				}
			}
			for stride := 1; stride < workers; stride *= 2 {
				for a := 0; a+stride < workers; a += 2 * stride {
					ap, bp := clones[a].Params(), clones[a+stride].Params()
					for pi := range params {
						dst, src := ap[pi].G, bp[pi].G
						for j := range dst {
							dst[j] += src[j]
							src[j] = 0
						}
					}
				}
			}
			for pi, p := range params {
				root := clones[0].Params()[pi].G
				for j := range p.G {
					p.G[j] = root[j]
					root[j] = 0
				}
			}
			opt.Step(params, float64(len(chunk)))
		}
	}
}

// TestTrainerWorkspaceParity trains the paper CNN twice — once with the
// workspace-backed Trainer, once with the replicated allocating loop —
// and requires every weight to come out bit-identical. This is the
// guarantee that moving the trainer onto the workspace engine changed
// nothing about training, down to the dropout streams and the order of
// every floating-point add.
func TestTrainerWorkspaceParity(t *testing.T) {
	const seed, epochs, batch, workers = 42, 2, 16, 3
	x, y := blobs(3, 40, PaperInputLen)
	weights := []float64{1.0, 2.5}

	trained := PaperCNN(9)
	tr := &Trainer{
		Epochs: epochs, BatchSize: batch, Seed: seed, Workers: workers,
		ClassWeights: weights,
	}
	if _, err := tr.Fit(trained, x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}

	oracle := PaperCNN(9)
	oracleFit(oracle, x, y, seed, epochs, batch, workers, weights)

	tp, op := trained.Params(), oracle.Params()
	for pi := range tp {
		for j := range tp[pi].W {
			if math.Float64bits(tp[pi].W[j]) != math.Float64bits(op[pi].W[j]) {
				t.Fatalf("param %s[%d]: trainer %v oracle %v",
					tp[pi].Name, j, tp[pi].W[j], op[pi].W[j])
			}
		}
	}
}

// requireSameWeights asserts two trained networks carry bit-identical
// weights.
func requireSameWeights(t *testing.T, label string, a, b *Network) {
	t.Helper()
	ap, bp := a.Params(), b.Params()
	for pi := range ap {
		for j := range ap[pi].W {
			if math.Float64bits(ap[pi].W[j]) != math.Float64bits(bp[pi].W[j]) {
				t.Fatalf("%s: param %s[%d]: %v vs %v",
					label, ap[pi].Name, j, ap[pi].W[j], bp[pi].W[j])
			}
		}
	}
}

// TestTrainerReductionParityWorkers pins the chunked parallel tree
// reduction to byte-identical final weights against the serial oracle at
// every worker width the tree exercises differently: the degenerate
// single-clone fold, the one-level tree, and the two-level tree whose
// chunks genuinely race across pool workers. A scheduling-order
// dependence anywhere in the reduction fails this test.
func TestTrainerReductionParityWorkers(t *testing.T) {
	const seed, epochs, batch = 42, 2, 16
	x, y := blobs(5, 40, PaperInputLen)
	weights := []float64{1.0, 2.5}

	for _, workers := range []int{1, 2, 4} {
		trained := PaperCNN(11)
		tr := &Trainer{
			Epochs: epochs, BatchSize: batch, Seed: seed, Workers: workers,
			ClassWeights: weights,
		}
		if _, err := tr.Fit(trained, x, y); err != nil {
			t.Fatalf("workers=%d: Fit: %v", workers, err)
		}

		oracle := PaperCNN(11)
		oracleFit(oracle, x, y, seed, epochs, batch, workers, weights)
		requireSameWeights(t, fmt.Sprintf("workers=%d", workers), trained, oracle)
	}
}

// TestSerialReductionAgreesBelowThreeWorkers checks the documented
// contract on Trainer.SerialReduction: for one and two workers the
// pairwise tree and the serial sweep perform the same floating-point
// additions in the same order, so the two paths must produce
// bit-identical weights. (From three workers up they legitimately
// diverge in summation order only.)
func TestSerialReductionAgreesBelowThreeWorkers(t *testing.T) {
	const seed, epochs, batch = 7, 2, 16
	x, y := blobs(9, 32, PaperInputLen)

	for _, workers := range []int{1, 2} {
		tree := PaperCNN(13)
		tr := &Trainer{Epochs: epochs, BatchSize: batch, Seed: seed, Workers: workers}
		if _, err := tr.Fit(tree, x, y); err != nil {
			t.Fatalf("workers=%d: tree Fit: %v", workers, err)
		}

		serial := PaperCNN(13)
		ts := &Trainer{Epochs: epochs, BatchSize: batch, Seed: seed, Workers: workers,
			SerialReduction: true}
		if _, err := ts.Fit(serial, x, y); err != nil {
			t.Fatalf("workers=%d: serial Fit: %v", workers, err)
		}
		requireSameWeights(t, fmt.Sprintf("serial-vs-tree workers=%d", workers), tree, serial)
	}
}
