package nn

import (
	"math"
	"math/rand"
	"testing"
)

// oracleFit replicates the trainer's pre-workspace algorithm exactly —
// allocating Forward/SoftmaxCE/Backward on per-worker CloneShared views
// with the strided worker binding, fixed-order gradient reduction, and
// the same optimizer stepping — so TestTrainerWorkspaceParity can pin the
// workspace-backed Trainer to byte-identical weights.
func oracleFit(net *Network, x [][]float64, y []int, seed int64, epochs, batch, workers int, classWeights []float64) {
	rng := rand.New(rand.NewSource(seed))
	clones := make([]*Network, workers)
	for w := range clones {
		clones[w] = net.CloneShared()
		clones[w].Reseed(seed + int64(w+1)*104729)
	}
	params := net.Params()
	opt := &Adam{}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 1; epoch <= epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += batch {
			end := start + batch
			if end > len(idx) {
				end = len(idx)
			}
			chunk := idx[start:end]
			for _, c := range clones {
				c.ZeroGrad()
			}
			// The pool binds item k to worker k%workers and each worker
			// processes its items in ascending k; replicate serially.
			for w := 0; w < workers; w++ {
				for k := w; k < len(chunk); k += workers {
					c := clones[w]
					i := chunk[k]
					logits := c.Forward(x[i], true)
					_, dLogits := SoftmaxCE(logits, y[i])
					if classWeights != nil {
						cw := classWeights[y[i]]
						for j := range dLogits {
							dLogits[j] *= cw
						}
					}
					c.Backward(dLogits)
				}
			}
			for pi, p := range params {
				for w := 0; w < workers; w++ {
					cg := clones[w].Params()[pi].G
					for j := range p.G {
						p.G[j] += cg[j]
					}
				}
			}
			opt.Step(params, float64(len(chunk)))
			net.ZeroGrad()
		}
	}
}

// TestTrainerWorkspaceParity trains the paper CNN twice — once with the
// workspace-backed Trainer, once with the replicated allocating loop —
// and requires every weight to come out bit-identical. This is the
// guarantee that moving the trainer onto the workspace engine changed
// nothing about training, down to the dropout streams and the order of
// every floating-point add.
func TestTrainerWorkspaceParity(t *testing.T) {
	const seed, epochs, batch, workers = 42, 2, 16, 3
	x, y := blobs(3, 40, PaperInputLen)
	weights := []float64{1.0, 2.5}

	trained := PaperCNN(9)
	tr := &Trainer{
		Epochs: epochs, BatchSize: batch, Seed: seed, Workers: workers,
		ClassWeights: weights,
	}
	if _, err := tr.Fit(trained, x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}

	oracle := PaperCNN(9)
	oracleFit(oracle, x, y, seed, epochs, batch, workers, weights)

	tp, op := trained.Params(), oracle.Params()
	for pi := range tp {
		for j := range tp[pi].W {
			if math.Float64bits(tp[pi].W[j]) != math.Float64bits(op[pi].W[j]) {
				t.Fatalf("param %s[%d]: trainer %v oracle %v",
					tp[pi].Name, j, tp[pi].W[j], op[pi].W[j])
			}
		}
	}
}
