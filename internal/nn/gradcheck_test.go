package nn

import (
	"math"
	"math/rand"
	"testing"

	"advmal/internal/tensor"
)

// numericalInputGrad estimates dLoss/dx by central finite differences.
func numericalInputGrad(net *Network, x []float64, label int) []float64 {
	const h = 1e-5
	grad := make([]float64, len(x))
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		lp, _ := SoftmaxCE(net.Forward(x, false), label)
		x[i] = orig - h
		lm, _ := SoftmaxCE(net.Forward(x, false), label)
		x[i] = orig
		grad[i] = (lp - lm) / (2 * h)
	}
	return grad
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestInputGradientMatchesNumerical checks the full backward pass through
// every layer type of the paper architecture against finite differences.
func TestInputGradientMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := PaperCNN(11)
	for trial := 0; trial < 3; trial++ {
		x := make([]float64, PaperInputLen)
		for i := range x {
			x[i] = rng.Float64()
		}
		label := trial % 2
		_, analytic := net.LossGrad(x, label)
		numeric := numericalInputGrad(net, x, label)
		if d := maxAbsDiff(analytic, numeric); d > 1e-4 {
			t.Errorf("trial %d: input gradient mismatch %v", trial, d)
		}
	}
}

// TestParamGradientsMatchNumerical spot-checks parameter gradients of
// every layer against finite differences.
func TestParamGradientsMatchNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := PaperCNN(12)
	x := make([]float64, PaperInputLen)
	for i := range x {
		x[i] = rng.Float64()
	}
	label := 1
	_, _ = net.LossGrad(x, label) // fills p.G
	const h = 1e-5
	for _, p := range net.Params() {
		// Check a few entries per parameter tensor.
		for probe := 0; probe < 3 && probe < len(p.W); probe++ {
			j := (probe * 7919) % len(p.W)
			orig := p.W[j]
			p.W[j] = orig + h
			lp, _ := SoftmaxCE(net.Forward(x, false), label)
			p.W[j] = orig - h
			lm, _ := SoftmaxCE(net.Forward(x, false), label)
			p.W[j] = orig
			numeric := (lp - lm) / (2 * h)
			if d := math.Abs(p.G[j] - numeric); d > 1e-4 {
				t.Errorf("%s[%d]: analytic %v, numeric %v", p.Name, j, p.G[j], numeric)
			}
		}
	}
}

// TestJacobianMatchesNumerical verifies per-logit input Jacobians, which
// JSMA, DeepFool, and C&W depend on.
func TestJacobianMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := SmallMLP(13, 6, 10, 3)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	logits, jac := net.Jacobian(x)
	if len(jac) != 3 {
		t.Fatalf("Jacobian rows = %d, want 3", len(jac))
	}
	const h = 1e-5
	for k := range logits {
		for i := range x {
			orig := x[i]
			x[i] = orig + h
			zp := net.Forward(x, false)[k]
			x[i] = orig - h
			zm := net.Forward(x, false)[k]
			x[i] = orig
			numeric := (zp - zm) / (2 * h)
			if d := math.Abs(jac[k][i] - numeric); d > 1e-4 {
				t.Errorf("jac[%d][%d] = %v, numeric %v", k, i, jac[k][i], numeric)
			}
		}
	}
}

// TestLogitGradConsistentWithJacobian cross-checks the two gradient APIs.
func TestLogitGradConsistentWithJacobian(t *testing.T) {
	net := SmallMLP(14, 4, 8, 2)
	x := []float64{0.1, -0.3, 0.7, 0.2}
	_, jac := net.Jacobian(x)
	for k := 0; k < 2; k++ {
		_, g := net.LogitGrad(x, k)
		if d := maxAbsDiff(g, jac[k]); d > 1e-12 {
			t.Errorf("LogitGrad(%d) differs from Jacobian row by %v", k, d)
		}
	}
}

// TestConvolutionKnownValues checks Conv1D against hand-computed output.
func TestConvolutionKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv1D("c", 1, 1, 3, false, rng)
	// Kernel [1, 2, 3], bias 10.
	copy(c.w.W, []float64{1, 2, 3})
	c.b.W[0] = 10
	in := &tensor.T{Shape: []int{1, 4}, Data: []float64{1, 0, -1, 2}}
	out := c.Forward(in, false)
	// valid positions: [1*1+0*2+(-1)*3, 0*1+(-1)*2+2*3] + 10 = [8, 14]
	want := []float64{8, 14}
	if out.Cols() != 2 {
		t.Fatalf("out len = %d, want 2", out.Cols())
	}
	for i := range want {
		if math.Abs(out.Data[i]-want[i]) > 1e-12 {
			t.Errorf("out[%d] = %v, want %v", i, out.Data[i], want[i])
		}
	}
}

func TestConvolutionSamePadding(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv1D("c", 1, 1, 3, true, rng)
	copy(c.w.W, []float64{1, 1, 1})
	c.b.W[0] = 0
	in := &tensor.T{Shape: []int{1, 3}, Data: []float64{1, 2, 3}}
	out := c.Forward(in, false)
	// same padding: [0+1+2, 1+2+3, 2+3+0]
	want := []float64{3, 6, 5}
	if out.Cols() != 3 {
		t.Fatalf("same-pad out len = %d, want 3", out.Cols())
	}
	for i := range want {
		if math.Abs(out.Data[i]-want[i]) > 1e-12 {
			t.Errorf("out[%d] = %v, want %v", i, out.Data[i], want[i])
		}
	}
}
