package nn

import (
	"fmt"
)

// Class labels for the detection task. Malware is the positive class, so
// the false negative rate is the fraction of malware classified benign —
// the disastrous direction the paper highlights.
const (
	ClassBenign  = 0
	ClassMalware = 1
)

// Metrics summarizes binary-detector performance with the three statistics
// the paper reports (§IV-C1): accuracy rate, false negative rate, and
// false positive rate.
type Metrics struct {
	Accuracy  float64   `json:"accuracy"`
	FNR       float64   `json:"fnr"`
	FPR       float64   `json:"fpr"`
	Confusion [2][2]int `json:"confusion"` // [true][predicted]
	N         int       `json:"n"`
}

// String renders the metrics like the paper reports them.
func (m Metrics) String() string {
	return fmt.Sprintf("AR=%.2f%% FNR=%.2f%% FPR=%.2f%% (n=%d)",
		m.Accuracy*100, m.FNR*100, m.FPR*100, m.N)
}

// Evaluate runs the network on every sample and computes Metrics at the
// binary malicious-vs-benign operating point. Class 0 is benign; every
// other class is a malware family, so labels and predictions collapse to
// {benign, malicious} before the confusion matrix is filled. For a
// two-class network with 0/1 labels the collapse is the identity, so the
// legacy binary numbers are unchanged; for a K-way family head this is
// the paper's Table I operating point recovered from family predictions.
func Evaluate(net *Network, x [][]float64, y []int) Metrics {
	var m Metrics
	m.N = len(x)
	correct := 0
	ws := net.WS()
	for i := range x {
		pred := collapseBinary(ws.Predict(x[i]))
		truth := collapseBinary(y[i])
		m.Confusion[truth][pred]++
		if pred == truth {
			correct++
		}
	}
	if m.N > 0 {
		m.Accuracy = float64(correct) / float64(m.N)
	}
	tn := m.Confusion[ClassBenign][ClassBenign]
	fp := m.Confusion[ClassBenign][ClassMalware]
	fn := m.Confusion[ClassMalware][ClassBenign]
	tp := m.Confusion[ClassMalware][ClassMalware]
	if fn+tp > 0 {
		m.FNR = float64(fn) / float64(fn+tp)
	}
	if fp+tn > 0 {
		m.FPR = float64(fp) / float64(fp+tn)
	}
	return m
}

// collapseBinary maps a class index onto the binary detection axis:
// class 0 stays benign, every malware family collapses to ClassMalware.
func collapseBinary(class int) int {
	if class != ClassBenign {
		return ClassMalware
	}
	return ClassBenign
}
