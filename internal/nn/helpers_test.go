package nn

import (
	"math/rand"
)

func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }

// blobs generates two well-separated Gaussian clusters for trainer tests.
func blobs(seed int64, n, dim int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		label := i % 2
		center := -1.0
		if label == 1 {
			center = 1.0
		}
		v := make([]float64, dim)
		for j := range v {
			v[j] = center + rng.NormFloat64()*0.3
		}
		x[i] = v
		y[i] = label
	}
	return x, y
}
