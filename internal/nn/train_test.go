package nn

import (
	"errors"
	"testing"
)

func TestTrainerLearnsBlobs(t *testing.T) {
	x, y := blobs(1, 200, 4)
	net := SmallMLP(2, 4, 16, 2)
	tr := &Trainer{Epochs: 30, BatchSize: 20, Seed: 3, Workers: 2}
	hist, err := tr.Fit(net, x, y)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if len(hist.Loss) == 0 {
		t.Fatal("empty history")
	}
	final := hist.Accuracy[len(hist.Accuracy)-1]
	if final < 0.95 {
		t.Errorf("final train accuracy %v, want >= 0.95", final)
	}
	// Loss must decrease substantially.
	if hist.Loss[len(hist.Loss)-1] > hist.Loss[0]/2 {
		t.Errorf("loss barely dropped: %v -> %v", hist.Loss[0], hist.Loss[len(hist.Loss)-1])
	}
}

func TestTrainerXOR(t *testing.T) {
	// XOR is not linearly separable; the hidden layer must do real work.
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []int{0, 1, 1, 0}
	// Replicate so batches exist.
	var bx [][]float64
	var by []int
	for i := 0; i < 50; i++ {
		bx = append(bx, x...)
		by = append(by, y...)
	}
	net := SmallMLP(9, 2, 16, 2)
	tr := &Trainer{Epochs: 150, BatchSize: 40, Seed: 2, Workers: 1}
	hist, err := tr.Fit(net, bx, by)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := hist.Accuracy[len(hist.Accuracy)-1]; acc < 0.99 {
		t.Errorf("XOR accuracy %v, want ~1", acc)
	}
}

func TestTrainerErrors(t *testing.T) {
	net := SmallMLP(1, 2, 4, 2)
	tr := &Trainer{Epochs: 1}
	if _, err := tr.Fit(net, nil, nil); !errors.Is(err, ErrNoTrainData) {
		t.Errorf("Fit(empty) = %v, want ErrNoTrainData", err)
	}
	if _, err := tr.Fit(net, [][]float64{{1, 2}}, []int{5}); !errors.Is(err, ErrLabelRange) {
		t.Errorf("Fit(bad label) = %v, want ErrLabelRange", err)
	}
	if _, err := tr.Fit(net, [][]float64{{1, 2}}, []int{0, 1}); !errors.Is(err, ErrNoTrainData) {
		t.Errorf("Fit(mismatched lengths) = %v, want ErrNoTrainData", err)
	}
}

func TestTrainerDeterministic(t *testing.T) {
	x, y := blobs(5, 80, 3)
	run := func() []float64 {
		net := SmallMLP(7, 3, 8, 2)
		tr := &Trainer{Epochs: 5, BatchSize: 16, Seed: 9, Workers: 2}
		if _, err := tr.Fit(net, x, y); err != nil {
			t.Fatalf("Fit: %v", err)
		}
		return net.Logits([]float64{0.5, -0.5, 0.2})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("training not deterministic: %v vs %v", a, b)
		}
	}
}

func TestTrainerEarlyStop(t *testing.T) {
	x, y := blobs(6, 100, 3)
	net := SmallMLP(8, 3, 16, 2)
	tr := &Trainer{
		Epochs: 500, BatchSize: 20, Seed: 4, Workers: 1,
		EarlyStopLoss: 0.5, Patience: 2,
	}
	hist, err := tr.Fit(net, x, y)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if hist.Stopped == 0 {
		t.Error("early stopping never triggered on an easy problem")
	}
	if len(hist.Loss) >= 500 {
		t.Errorf("ran all %d epochs despite early stop", len(hist.Loss))
	}
}

func TestTrainerSGD(t *testing.T) {
	x, y := blobs(7, 120, 3)
	net := SmallMLP(9, 3, 16, 2)
	tr := &Trainer{
		Epochs: 60, BatchSize: 20, Seed: 5, Workers: 1,
		Optimizer: &SGD{LR: 0.05, Momentum: 0.9},
	}
	hist, err := tr.Fit(net, x, y)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := hist.Accuracy[len(hist.Accuracy)-1]; acc < 0.9 {
		t.Errorf("SGD accuracy %v, want >= 0.9", acc)
	}
}

func TestTrainerWorkerCountInvariance(t *testing.T) {
	// Gradients are reduced in fixed order, so 1 worker vs 2 workers
	// differ only through dropout streams; without dropout layers the
	// result must be bit-identical.
	x, y := blobs(8, 64, 3)
	run := func(workers int) []float64 {
		net := SmallMLP(10, 3, 8, 2) // no dropout in SmallMLP
		tr := &Trainer{Epochs: 3, BatchSize: 16, Seed: 11, Workers: workers}
		if _, err := tr.Fit(net, x, y); err != nil {
			t.Fatalf("Fit: %v", err)
		}
		return net.Logits([]float64{1, 2, 3})
	}
	a, b := run(1), run(2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker count changed dropout-free training: %v vs %v", a, b)
		}
	}
}

func TestAdamStateGrows(t *testing.T) {
	p := &Param{W: []float64{1}, G: []float64{0.5}}
	a := &Adam{LR: 0.1}
	before := p.W[0]
	a.Step([]*Param{p}, 1)
	if p.W[0] >= before {
		t.Errorf("Adam step did not descend: %v -> %v", before, p.W[0])
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := &Param{W: []float64{0}, G: []float64{1}}
	s := &SGD{LR: 0.1, Momentum: 0.9}
	s.Step([]*Param{p}, 1)
	first := p.W[0]
	s.Step([]*Param{p}, 1)
	second := p.W[0] - first
	if second >= first {
		t.Errorf("momentum did not accelerate: step1 %v step2 %v", first, second)
	}
}
