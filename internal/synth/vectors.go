package synth

import "math/rand"

// LabeledVectors draws n scaled-space (≈[0,1]) feature vectors of the
// given dimension, labeled by family, without running the program
// generator — the index bench suite needs 10k/100k/1M labeled points,
// far beyond what disassembly-backed generation can produce in bench
// time. The distribution mirrors what the real corpus looks like after
// min-max scaling: one cluster center per family (benign plus the five
// malware families), per-family anisotropic spread, plus a small
// uniform background component so the space is not trivially
// separable. Deterministic for a given rng state.
func LabeledVectors(rng *rand.Rand, n, dim int) (vecs [][]float64, labels []string) {
	fams := append([]Family{Benign}, MalwareFamilies()...)
	centers := make([][]float64, len(fams))
	spreads := make([][]float64, len(fams))
	for f := range fams {
		c := make([]float64, dim)
		s := make([]float64, dim)
		for d := 0; d < dim; d++ {
			c[d] = 0.15 + 0.7*rng.Float64()
			s[d] = 0.02 + 0.06*rng.Float64()
		}
		centers[f] = c
		spreads[f] = s
	}
	vecs = make([][]float64, n)
	labels = make([]string, n)
	for i := 0; i < n; i++ {
		f := rng.Intn(len(fams))
		v := make([]float64, dim)
		if rng.Float64() < 0.02 {
			// Background component: corpus stragglers that belong to no
			// tight cluster, keeping nearest-neighbor structure honest.
			for d := 0; d < dim; d++ {
				v[d] = rng.Float64()
			}
		} else {
			for d := 0; d < dim; d++ {
				x := centers[f][d] + rng.NormFloat64()*spreads[f][d]
				if x < 0 {
					x = 0
				} else if x > 1 {
					x = 1
				}
				v[d] = x
			}
		}
		vecs[i] = v
		labels[i] = fams[f].String()
	}
	return vecs, labels
}
