package synth

import (
	"sort"
	"testing"

	"advmal/internal/ir"
)

// smallCorpus is shared across tests in this package; generation is
// deterministic so sharing is safe.
func smallCorpus(t *testing.T) []*Sample {
	t.Helper()
	samples, err := Generate(Config{Seed: 1, NumBenign: 60, NumMal: 150})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return samples
}

func TestGenerateCounts(t *testing.T) {
	samples := smallCorpus(t)
	if len(samples) != 210 {
		t.Fatalf("generated %d samples, want 210", len(samples))
	}
	benign, mal := 0, 0
	for _, s := range samples {
		if s.Malicious {
			mal++
		} else {
			benign++
		}
	}
	if benign != 60 || mal != 150 {
		t.Errorf("class counts %d/%d, want 60/150", benign, mal)
	}
}

func TestGenerateNegativeCounts(t *testing.T) {
	if _, err := Generate(Config{Seed: 1, NumBenign: -1}); err == nil {
		t.Error("Generate accepted negative counts")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Seed: 7, NumBenign: 10, NumMal: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 7, NumBenign: 10, NumMal: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Nodes != b[i].Nodes || a[i].Edges != b[i].Edges {
			t.Fatalf("sample %d differs across identical seeds", i)
		}
		if len(a[i].Prog.Code) != len(b[i].Prog.Code) {
			t.Fatalf("sample %d program differs across identical seeds", i)
		}
	}
	c, err := Generate(Config{Seed: 8, NumBenign: 10, NumMal: 20})
	if err != nil {
		t.Fatal(err)
	}
	identical := true
	for i := range a {
		if a[i].Nodes != c[i].Nodes || a[i].Edges != c[i].Edges {
			identical = false
			break
		}
	}
	if identical {
		t.Error("different seeds produced identical corpora")
	}
}

func TestSamplesValidateAndMatchCachedCFGSizes(t *testing.T) {
	for _, s := range smallCorpus(t) {
		if err := s.Prog.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		cfg, err := ir.Disassemble(s.Prog)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if cfg.G().N() != s.Nodes || cfg.G().M() != s.Edges {
			t.Errorf("%s: cached %d/%d, disassembled %d/%d",
				s.Name, s.Nodes, s.Edges, cfg.G().N(), cfg.G().M())
		}
	}
}

func TestSamplesHaltOnProbeInputs(t *testing.T) {
	it := &ir.Interp{}
	for _, s := range smallCorpus(t) {
		for _, in := range ProbeInputs() {
			if _, err := it.Run(s.Prog, in...); err != nil {
				t.Fatalf("%s on %v: %v", s.Name, in, err)
			}
		}
	}
}

func TestFamilyAssignment(t *testing.T) {
	samples := smallCorpus(t)
	fams := map[Family]int{}
	for _, s := range samples {
		fams[s.Family]++
		if (s.Family == Benign) == s.Malicious {
			t.Fatalf("%s: family %v inconsistent with malicious=%v", s.Name, s.Family, s.Malicious)
		}
	}
	for _, f := range MalwareFamilies() {
		if fams[f] == 0 {
			t.Errorf("family %v has no samples", f)
		}
	}
	if fams[Benign] != 60 {
		t.Errorf("benign count %d, want 60", fams[Benign])
	}
}

func TestFamilyString(t *testing.T) {
	if Mirai.String() != "mirai" || Benign.String() != "benign" {
		t.Error("family names wrong")
	}
	if Family(99).String() != "Family(99)" {
		t.Errorf("unknown family = %q", Family(99))
	}
}

// TestClassStructuralSeparation: the corpus must exhibit the structural
// class difference the detector learns: malware CFGs are denser (more
// edges per node) than benign ones in aggregate.
func TestClassStructuralSeparation(t *testing.T) {
	samples := smallCorpus(t)
	ratio := func(mal bool) float64 {
		var rs []float64
		for _, s := range samples {
			if s.Malicious != mal || s.Nodes < 3 {
				continue
			}
			rs = append(rs, float64(s.Edges)/float64(s.Nodes))
		}
		sort.Float64s(rs)
		return rs[len(rs)/2]
	}
	benignRatio, malRatio := ratio(false), ratio(true)
	if malRatio <= benignRatio {
		t.Errorf("malware edge/node median %.3f not above benign %.3f", malRatio, benignRatio)
	}
}

func TestSizeRanges(t *testing.T) {
	samples := smallCorpus(t)
	for _, s := range samples {
		if s.Nodes < 1 {
			t.Fatalf("%s has %d nodes", s.Name, s.Nodes)
		}
		if !s.Malicious && s.Nodes > 470 {
			t.Errorf("%s: benign size %d beyond clamp", s.Name, s.Nodes)
		}
		if s.Malicious && s.Nodes > 450 {
			t.Errorf("%s: malware size %d beyond clamp", s.Name, s.Nodes)
		}
	}
}

func TestProbeInputsIsolated(t *testing.T) {
	a := ProbeInputs()
	a[0][0] = 999
	b := ProbeInputs()
	if b[0][0] == 999 {
		t.Error("ProbeInputs returns aliased storage")
	}
}

func TestTargetNodesDistribution(t *testing.T) {
	// The benign small-utility mixture component must still dominate.
	samples, err := Generate(Config{Seed: 3, NumBenign: 40, NumMal: 40})
	if err != nil {
		t.Fatal(err)
	}
	sawSmallBenign := false
	for _, s := range samples {
		if !s.Malicious && s.Nodes <= 30 {
			sawSmallBenign = true
		}
	}
	if !sawSmallBenign {
		t.Error("no small benign utilities generated; distribution shifted")
	}
}
