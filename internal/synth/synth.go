// Package synth generates the synthetic IoT software corpus that stands in
// for the paper's dataset (Table I: 276 benign firmware binaries from
// OpenWRT, 2,281 IoT malware samples).
//
// Each sample is a real program in the ir package's instruction set, built
// by composing structural motifs. Benign samples imitate firmware
// utilities: argument checks, if/else diamonds, sequential switch
// dispatch, bounded read loops, early error exits — shallow, sparse,
// chain-like CFGs. Malware samples are built per family (mirai-, gafgyt-,
// tsunami-, dofloo-, xorddos-like) from shared family motif libraries:
// scanner loops, dictionary-attack loops, C&C command loops with back
// edges, flood loops, payload decoders — loop-heavy, denser CFGs whose
// members share structure, mirroring the family-level structural
// similarity the paper's detector exploits.
//
// Every generated program is validated, disassembled, and executed to
// prove it halts. Generation is deterministic for a given Config.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"advmal/internal/ir"
)

// Family identifies the origin of a sample.
type Family int

// Families. Benign is OpenWRT-like firmware; the rest are IoT malware
// families modelled on the ones dominating real IoT corpora.
const (
	Benign Family = iota + 1
	Mirai
	Gafgyt
	Tsunami
	Dofloo
	XorDDoS
)

var familyNames = map[Family]string{
	Benign:  "benign",
	Mirai:   "mirai",
	Gafgyt:  "gafgyt",
	Tsunami: "tsunami",
	Dofloo:  "dofloo",
	XorDDoS: "xorddos",
}

// String returns the family name.
func (f Family) String() string {
	if s, ok := familyNames[f]; ok {
		return s
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// MalwareFamilies lists the malicious families in deterministic order.
func MalwareFamilies() []Family {
	return []Family{Mirai, Gafgyt, Tsunami, Dofloo, XorDDoS}
}

// Sample is one generated IoT software sample.
type Sample struct {
	ID        int         `json:"id"`
	Name      string      `json:"name"`
	Family    Family      `json:"family"`
	Malicious bool        `json:"malicious"`
	Prog      *ir.Program `json:"prog"`
	// Nodes and Edges cache the disassembled CFG order and size.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
}

// Config controls corpus generation. The zero value is not useful; use
// DefaultConfig for the paper's Table I corpus.
type Config struct {
	Seed      int64
	NumBenign int
	NumMal    int
}

// DefaultConfig reproduces Table I: 276 benign and 2,281 malicious samples.
func DefaultConfig() Config {
	return Config{Seed: 1, NumBenign: 276, NumMal: 2281}
}

// Generate builds the corpus: benign samples first, then malware grouped
// by family. Every program is checked to validate, disassemble, and halt
// on a probe set of inputs.
func Generate(cfg Config) ([]*Sample, error) {
	if cfg.NumBenign < 0 || cfg.NumMal < 0 {
		return nil, fmt.Errorf("synth: negative sample counts %d/%d", cfg.NumBenign, cfg.NumMal)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	samples := make([]*Sample, 0, cfg.NumBenign+cfg.NumMal)
	id := 0
	for i := 0; i < cfg.NumBenign; i++ {
		s, err := generateSample(rng, Benign, id)
		if err != nil {
			return nil, err
		}
		samples = append(samples, s)
		id++
	}
	fams := MalwareFamilies()
	for i := 0; i < cfg.NumMal; i++ {
		fam := fams[i%len(fams)]
		s, err := generateSample(rng, fam, id)
		if err != nil {
			return nil, err
		}
		samples = append(samples, s)
		id++
	}
	return samples, nil
}

// generateSample builds one sample, retrying (with fresh randomness) if a
// candidate fails validation or the halting probe. The retry loop is a
// safety net; generated programs are constructed to be bounded.
func generateSample(rng *rand.Rand, fam Family, id int) (*Sample, error) {
	const maxAttempts = 8
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		name := fmt.Sprintf("%s-%04d", fam, id)
		prog, err := buildProgram(rng, fam, name)
		if err != nil {
			lastErr = err
			continue
		}
		cfg, err := ir.Disassemble(prog)
		if err != nil {
			lastErr = err
			continue
		}
		if err := probeHalts(prog); err != nil {
			lastErr = err
			continue
		}
		return &Sample{
			ID:        id,
			Name:      name,
			Family:    fam,
			Malicious: fam != Benign,
			Prog:      prog,
			Nodes:     cfg.G().N(),
			Edges:     cfg.G().M(),
		}, nil
	}
	return nil, fmt.Errorf("synth: sample %d (%v): %w", id, fam, lastErr)
}

// probeInputs are the inputs every program must halt on; the same set is
// used by the GEA functionality verifier.
var probeInputs = [][]int64{
	{0, 0, 0, 0},
	{1, 2, 3, 4},
	{7, 0, 5, 1},
	{-3, 9, 2, 8},
	{100, 55, 1, 0},
}

// ProbeInputs returns the standard halting/equivalence probe inputs.
func ProbeInputs() [][]int64 {
	out := make([][]int64, len(probeInputs))
	for i, in := range probeInputs {
		out[i] = append([]int64(nil), in...)
	}
	return out
}

func probeHalts(p *ir.Program) error {
	it := &ir.Interp{MaxSteps: 1 << 18}
	for _, in := range probeInputs {
		if _, err := it.Run(p, in...); err != nil {
			return fmt.Errorf("synth: halting probe: %w", err)
		}
	}
	return nil
}

// targetNodes draws the desired CFG order for a sample of family fam.
// Both classes use a two-component lognormal mixture (most programs are
// small; a tail of large binaries reaches several hundred blocks) with
// heavily overlapping supports, so raw graph size alone cannot separate
// the classes — the detector must rely on the structural features
// (density, path lengths, centralities) that the family motifs shape.
// This mirrors the paper's corpus, where the benign maximum (455 nodes)
// exceeds the malware maximum (367) while the malware median (64)
// exceeds the benign median (24).
func targetNodes(rng *rand.Rand, fam Family) int {
	logn := func(median, sigma float64) int {
		return int(math.Round(median * math.Exp(rng.NormFloat64()*sigma)))
	}
	var n int
	switch fam {
	case Benign:
		if rng.Float64() < 0.15 {
			n = logn(130, 0.65) // firmware blobs
		} else {
			n = logn(17, 0.75) // small utilities
		}
		return clamp(n, 2, 460)
	case Mirai:
		n = mixture(rng, logn, 34, 0.70)
	case Gafgyt:
		n = mixture(rng, logn, 24, 0.70)
	case Tsunami:
		n = mixture(rng, logn, 48, 0.65)
	case Dofloo:
		n = mixture(rng, logn, 16, 0.70)
	case XorDDoS:
		n = mixture(rng, logn, 30, 0.70)
	default:
		n = mixture(rng, logn, 30, 0.6)
	}
	if rng.Float64() < 0.03 {
		n = 1 + rng.Intn(5) // tiny droppers
	}
	return clamp(n, 1, 440)
}

// mixture draws from the family's small-sample component or the shared
// large-binary tail.
func mixture(rng *rand.Rand, logn func(float64, float64) int, median, sigma float64) int {
	if rng.Float64() < 0.18 {
		return logn(115, 0.6)
	}
	return logn(median, sigma)
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
