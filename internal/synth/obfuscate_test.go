package synth

import (
	"testing"

	"advmal/internal/ir"
)

func obfCorpus(t *testing.T) []*Sample {
	t.Helper()
	samples, err := Generate(Config{Seed: 31, NumBenign: 6, NumMal: 18})
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestObfuscationPreservesBehaviour is the central property: every pass
// at every intensity leaves the observable trace untouched.
func TestObfuscationPreservesBehaviour(t *testing.T) {
	it := &ir.Interp{}
	for _, s := range obfCorpus(t) {
		for _, pass := range Obfuscations() {
			for _, intensity := range []float64{0.3, 1.0} {
				obf, err := Obfuscate(s.Prog, pass, intensity, 7)
				if err != nil {
					t.Fatalf("%s on %s: %v", pass, s.Name, err)
				}
				for _, in := range ProbeInputs() {
					want, err := it.Run(s.Prog, in...)
					if err != nil {
						t.Fatal(err)
					}
					got, err := it.Run(obf, in...)
					if err != nil {
						t.Fatalf("%s(%s) crashed: %v", pass, s.Name, err)
					}
					if !want.Equal(got) {
						t.Fatalf("%s changed %s's behaviour on %v", pass, s.Name, in)
					}
				}
			}
		}
	}
}

// TestObfuscationChangesCFG: the point of obfuscation is to move the
// graph features; every pass must alter the CFG's node or edge count on
// non-trivial programs.
func TestObfuscationChangesCFG(t *testing.T) {
	for _, s := range obfCorpus(t) {
		if s.Nodes < 5 {
			continue
		}
		base, err := ir.Disassemble(s.Prog)
		if err != nil {
			t.Fatal(err)
		}
		for _, pass := range Obfuscations() {
			obf, err := Obfuscate(s.Prog, pass, 1.0, 7)
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := ir.Disassemble(obf)
			if err != nil {
				t.Fatal(err)
			}
			if cfg.G().N() == base.G().N() && cfg.G().M() == base.G().M() {
				t.Errorf("%s left %s's CFG unchanged (%d/%d)",
					pass, s.Name, base.G().N(), base.G().M())
			}
		}
	}
}

func TestObfuscateSplitBlocksGrowsBlocks(t *testing.T) {
	p, err := ir.NewAsm("chain").
		Emit(ir.MovI, 4, 1).
		Emit(ir.AddI, 4, 2).
		Emit(ir.AddI, 4, 3).
		Emit(ir.MovR, 0, 4).
		Emit(ir.Ret).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	obf, err := Obfuscate(p, ObfSplitBlocks, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := ir.Disassemble(p)
	cfg, err := ir.Disassemble(obf)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.G().N() <= base.G().N() {
		t.Errorf("split-blocks: %d -> %d blocks, want growth", base.G().N(), cfg.G().N())
	}
	it := &ir.Interp{}
	tr, err := it.Run(obf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Result != 6 {
		t.Errorf("result = %d, want 6", tr.Result)
	}
}

func TestObfuscateDeterministic(t *testing.T) {
	s := obfCorpus(t)[0]
	a, err := Obfuscate(s.Prog, ObfOpaqueJunk, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Obfuscate(s.Prog, ObfOpaqueJunk, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Code) != len(b.Code) {
		t.Fatal("same seed produced different obfuscations")
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatal("same seed produced different instructions")
		}
	}
}

func TestObfuscateErrors(t *testing.T) {
	valid := obfCorpus(t)[0].Prog
	if _, err := Obfuscate(&ir.Program{}, ObfSplitBlocks, 0.5, 1); err == nil {
		t.Error("accepted invalid program")
	}
	if _, err := Obfuscate(valid, ObfSplitBlocks, 0, 1); err == nil {
		t.Error("accepted zero intensity")
	}
	if _, err := Obfuscate(valid, ObfSplitBlocks, 1.5, 1); err == nil {
		t.Error("accepted intensity > 1")
	}
	if _, err := Obfuscate(valid, Obfuscation(99), 0.5, 1); err == nil {
		t.Error("accepted unknown pass")
	}
}

func TestObfuscationString(t *testing.T) {
	if ObfSplitBlocks.String() != "split-blocks" {
		t.Errorf("name = %q", ObfSplitBlocks)
	}
	if Obfuscation(99).String() != "Obfuscation(99)" {
		t.Errorf("unknown = %q", Obfuscation(99))
	}
}
