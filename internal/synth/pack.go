package synth

import (
	"fmt"

	"advmal/internal/ir"
)

// Pack simulates UPX-style executable packing at the CFG level, the
// evasion the paper's §VI discusses: a packed binary's static CFG shows
// only the unpacker stub — a tight xor-decode loop followed by a jump
// into (here: a syscall standing for) the decompressed payload — so the
// 23 extracted features describe the stub, not the malware.
//
// The returned program is a *static artefact*: like real packed malware
// under static analysis, its observable behaviour is NOT the original's
// (the original only exists after unpacking, which static CFG extraction
// never sees). The simulation stores the original's instruction words
// into data memory so the stub's decode loop length scales with payload
// size, mirroring how real packers trade CFG size for payload bytes.
func Pack(p *ir.Program) (*ir.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("synth: pack: %w", err)
	}
	const key = 0x5d
	payloadWords := len(p.Code)
	if payloadWords > ir.MemSize {
		payloadWords = ir.MemSize
	}
	a := ir.NewAsm("upx(" + p.Name + ")")
	// Unpacker stub: decode payloadWords memory cells with a rolling key,
	// then "transfer control" to the unpacked image (sys 15 stands for
	// the exec of the unpacked payload).
	a.Emit(ir.MovI, 4, key)
	a.Emit(ir.MovI, 5, int32(payloadWords))
	a.Emit(ir.MovI, 6, 0)
	a.Label("decode")
	a.Emit(ir.Load, 7, 0) // representative cell; real packers stream addresses
	a.Emit(ir.XorR, 7, 4)
	a.Emit(ir.Store, 0, 7)
	a.Emit(ir.AddI, 6, 1)
	a.Emit(ir.SubI, 5, 1)
	a.Emit(ir.CmpI, 5, 0)
	a.Jump(ir.Jgt, "decode")
	a.Emit(ir.Sys, 15) // jump into unpacked payload
	a.Emit(ir.Ret)
	packed, err := a.Build()
	if err != nil {
		return nil, fmt.Errorf("synth: pack: %w", err)
	}
	return packed, nil
}
