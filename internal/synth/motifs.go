package synth

import (
	"fmt"
	"math/rand"

	"advmal/internal/ir"
)

// Syscall identifiers used by generated programs. Benign utilities log and
// touch configuration; malware families scan, beacon to C&C, and flood.
const (
	sysLog     = 1
	sysReadCfg = 2
	sysWriteIO = 3
	sysScan    = 10
	sysInfect  = 11
	sysCnC     = 12
	sysFlood   = 13
	sysDNS     = 14
)

// Register conventions for generated code: r0..r3 inputs (read-mostly),
// r4 accumulator, r5 outer loop counter, r6 inner loop counter, r7 temp.
// Every scratch register is written before it is read, and every
// conditional jump is preceded by a cmp in the same motif, so prepending
// code that clobbers scratch state (as GEA does) cannot change behaviour.
const (
	regAcc   = 4
	regOuter = 5
	regInner = 6
	regTmp   = 7
)

// gen carries the state of one program's generation.
type gen struct {
	a      *ir.Asm
	rng    *rand.Rand
	fam    Family
	labels int
	blocks int // running estimate of basic blocks emitted
}

func (g *gen) lab() string {
	g.labels++
	return fmt.Sprintf("L%d", g.labels)
}

func (g *gen) inReg() int32 { return int32(g.rng.Intn(4)) }

func (g *gen) imm(n int) int32 { return int32(g.rng.Intn(n)) }

// arith emits k straight-line instructions that only touch scratch state.
func (g *gen) arith(k int) {
	for i := 0; i < k; i++ {
		switch g.rng.Intn(7) {
		case 0:
			g.a.Emit(ir.AddI, regAcc, g.imm(64))
		case 1:
			g.a.Emit(ir.SubI, regAcc, g.imm(32))
		case 2:
			g.a.Emit(ir.MulI, regAcc, 1+g.imm(3))
		case 3:
			g.a.Emit(ir.MovI, regTmp, g.imm(256))
		case 4:
			g.a.Emit(ir.AddR, regAcc, regTmp)
		case 5:
			g.a.Emit(ir.XorR, regAcc, regTmp)
		case 6:
			g.a.Emit(ir.Store, g.imm(ir.MemSize), regAcc)
		}
	}
}

// sys emits an observable syscall.
func (g *gen) sys(id int32) { g.a.Emit(ir.Sys, id) }

// diamond emits an if/else: ~3 blocks, 4 edges.
func (g *gen) diamond() {
	lElse, lEnd := g.lab(), g.lab()
	g.a.Emit(ir.CmpI, g.inReg(), g.imm(16))
	g.a.Jump(ir.Jle, lElse)
	g.arith(1 + g.rng.Intn(3))
	g.a.Jump(ir.Jmp, lEnd)
	g.a.Label(lElse)
	g.arith(1 + g.rng.Intn(3))
	g.a.Label(lEnd)
	g.blocks += 3
}

// earlyExit emits an error-return path: ~2 blocks.
func (g *gen) earlyExit() {
	lOk := g.lab()
	g.a.Emit(ir.CmpI, g.inReg(), 77+g.imm(100))
	g.a.Jump(ir.Jne, lOk)
	g.a.Emit(ir.MovI, regAcc, -1)
	g.a.Emit(ir.MovR, 0, regAcc)
	g.a.Emit(ir.Ret)
	g.a.Label(lOk)
	g.blocks += 2
}

// loopSimple emits a bounded counting loop with a straight-line body:
// ~2 blocks including a self edge.
func (g *gen) loopSimple(counter int32, iters int32, body func()) {
	lHead := g.lab()
	g.a.Emit(ir.MovI, counter, iters)
	g.a.Label(lHead)
	body()
	g.a.Emit(ir.SubI, counter, 1)
	g.a.Emit(ir.CmpI, counter, 0)
	g.a.Jump(ir.Jgt, lHead)
	g.blocks += 2
}

// nestedLoop emits two nested bounded loops: ~3 blocks, 5 edges.
func (g *gen) nestedLoop(innerBody func()) {
	g.loopSimple(regOuter, 2+g.imm(5), func() {
		g.loopSimple(regInner, 2+g.imm(6), innerBody)
	})
	g.blocks++ // outer decrement block
}

// dispatchSeq emits a sequential switch without back edges (benign
// command-line handling): ~2k+2 blocks.
func (g *gen) dispatchSeq(k int) {
	lEnd := g.lab()
	cases := make([]string, k)
	for i := range cases {
		cases[i] = g.lab()
	}
	sel := g.inReg()
	for i := 0; i < k; i++ {
		g.a.Emit(ir.CmpI, sel, int32(i))
		g.a.Jump(ir.Jeq, cases[i])
	}
	g.arith(1)
	g.a.Jump(ir.Jmp, lEnd)
	for i := 0; i < k; i++ {
		g.a.Label(cases[i])
		g.arith(1 + g.rng.Intn(2))
		g.a.Jump(ir.Jmp, lEnd)
	}
	g.a.Label(lEnd)
	g.blocks += 2*k + 2
}

// cmdLoop emits a C&C command loop: a dispatch whose cases all jump back
// through a bounded decrement block — the back edges give malware CFGs
// their higher density. ~2k+3 blocks.
func (g *gen) cmdLoop(k int) {
	lHead, lDec := g.lab(), g.lab()
	cases := make([]string, k)
	for i := range cases {
		cases[i] = g.lab()
	}
	g.a.Emit(ir.MovI, regOuter, 3+g.imm(5))
	g.a.Label(lHead)
	g.sys(sysCnC)
	sel := g.inReg()
	for i := 0; i < k; i++ {
		g.a.Emit(ir.CmpI, sel, int32(i))
		g.a.Jump(ir.Jeq, cases[i])
	}
	g.a.Jump(ir.Jmp, lDec)
	for i := 0; i < k; i++ {
		g.a.Label(cases[i])
		g.arith(1 + g.rng.Intn(2))
		if g.rng.Float64() < 0.5 {
			g.sys(sysFlood)
		}
		g.a.Jump(ir.Jmp, lDec)
	}
	g.a.Label(lDec)
	g.a.Emit(ir.SubI, regOuter, 1)
	g.a.Emit(ir.CmpI, regOuter, 0)
	g.a.Jump(ir.Jgt, lHead)
	g.blocks += 2*k + 3
}

// scannerLoop emits the telnet-scanner motif: nested loops, a guard
// diamond, and scan/infect syscalls. ~5 blocks.
func (g *gen) scannerLoop() {
	g.loopSimple(regOuter, 2+g.imm(4), func() {
		g.loopSimple(regInner, 2+g.imm(5), func() {
			g.sys(sysScan)
			lSkip := g.lab()
			g.a.Emit(ir.CmpI, g.inReg(), g.imm(8))
			g.a.Jump(ir.Jle, lSkip)
			g.sys(sysInfect)
			g.arith(1)
			g.a.Label(lSkip)
			g.blocks += 2
		})
		g.blocks++
	})
}

// floodLoop emits a tight DDoS payload loop. ~2 blocks.
func (g *gen) floodLoop() {
	g.loopSimple(regOuter, 3+g.imm(5), func() {
		g.a.Emit(ir.MovI, regTmp, g.imm(256))
		g.a.Emit(ir.XorR, regAcc, regTmp)
		g.sys(sysFlood)
		if g.rng.Float64() < 0.4 {
			g.sys(sysDNS)
		}
	})
}

// beacon emits a C&C heartbeat loop containing a diamond. ~4 blocks.
func (g *gen) beacon() {
	g.loopSimple(regOuter, 2+g.imm(4), func() {
		g.sys(sysCnC)
		g.diamond()
	})
}

// decoderLoop emits the xor payload decoder. ~2 blocks.
func (g *gen) decoderLoop() {
	addr := g.imm(ir.MemSize)
	g.a.Emit(ir.MovI, regAcc, 0x5d+g.imm(64))
	g.loopSimple(regOuter, 4+g.imm(4), func() {
		g.a.Emit(ir.Load, regTmp, addr)
		g.a.Emit(ir.XorR, regTmp, regAcc)
		g.a.Emit(ir.Store, addr, regTmp)
	})
}

// guardSkip wraps inner in a conditional forward skip: +1 block, +2 edges.
func (g *gen) guardSkip(inner func()) {
	lSkip := g.lab()
	g.a.Emit(ir.CmpI, g.inReg(), 24+g.imm(64))
	g.a.Jump(ir.Jgt, lSkip)
	inner()
	g.a.Label(lSkip)
	g.blocks++
}

// readCfgLoop is the benign configuration-read loop. ~2 blocks.
func (g *gen) readCfgLoop() {
	g.loopSimple(regOuter, 2+g.imm(6), func() {
		g.sys(sysReadCfg)
		g.a.Emit(ir.Load, regTmp, g.imm(ir.MemSize))
		g.a.Emit(ir.AddR, regAcc, regTmp)
	})
}

// motifTable returns the weighted motif set of a family.
func (g *gen) motifTable() []weighted {
	d := func() { g.diamond() }
	switch g.fam {
	case Benign:
		// Tree-shaped control flow: branches, sequential dispatch, early
		// exits, few loops -> sparse CFGs with long chains.
		return []weighted{
			{0.34, d},
			{0.22, func() { g.dispatchSeq(2 + g.rng.Intn(6)) }},
			{0.06, func() { g.readCfgLoop() }},
			{0.14, func() { g.earlyExit() }},
			{0.04, func() { g.loopSimple(regOuter, 2+g.imm(6), func() { g.arith(2) }) }},
			{0.14, func() { g.guardSkip(d) }},
			{0.06, func() { g.arith(3 + g.rng.Intn(4)); g.sys(sysLog) }},
		}
	case Mirai:
		return []weighted{
			{0.28, func() { g.scannerLoop() }},
			{0.28, func() { g.cmdLoop(3 + g.rng.Intn(5)) }},
			{0.16, func() { g.floodLoop() }},
			{0.18, func() { g.beacon() }},
			{0.05, d},
			{0.05, func() { g.guardSkip(func() { g.floodLoop() }) }},
		}
	case Gafgyt:
		return []weighted{
			{0.38, func() { g.cmdLoop(3 + g.rng.Intn(5)) }},
			{0.18, func() { g.scannerLoop() }},
			{0.16, func() { g.floodLoop() }},
			{0.13, func() { g.beacon() }},
			{0.05, d},
			{0.10, func() { g.loopSimple(regOuter, 2+g.imm(5), func() { g.arith(2) }) }},
		}
	case Tsunami:
		return []weighted{
			{0.42, func() { g.cmdLoop(3 + g.rng.Intn(6)) }},
			{0.22, func() { g.beacon() }},
			{0.16, func() { g.floodLoop() }},
			{0.05, d},
			{0.15, func() { g.nestedLoop(func() { g.arith(1); g.sys(sysFlood) }) }},
		}
	case Dofloo:
		return []weighted{
			{0.36, func() { g.floodLoop() }},
			{0.24, func() { g.nestedLoop(func() { g.sys(sysFlood) }) }},
			{0.18, func() { g.beacon() }},
			{0.06, d},
			{0.16, func() { g.cmdLoop(2 + g.rng.Intn(4)) }},
		}
	case XorDDoS:
		return []weighted{
			{0.28, func() { g.decoderLoop() }},
			{0.20, func() { g.floodLoop() }},
			{0.24, func() { g.cmdLoop(3 + g.rng.Intn(4)) }},
			{0.08, func() { g.guardSkip(func() { g.decoderLoop() }) }},
			{0.05, d},
			{0.15, func() { g.nestedLoop(func() { g.arith(1) }) }},
		}
	default:
		return []weighted{{1, d}}
	}
}

type weighted struct {
	w float64
	f func()
}

func (g *gen) pickMotif() func() {
	table := g.motifTable()
	var total float64
	for _, m := range table {
		total += m.w
	}
	r := g.rng.Float64() * total
	for _, m := range table {
		r -= m.w
		if r <= 0 {
			return m.f
		}
	}
	return table[len(table)-1].f
}

// prologue writes the scratch registers so no later read precedes a write
// (the property GEA's code injection depends on) and emits a family
// signature.
func (g *gen) prologue() {
	g.a.Emit(ir.MovI, regAcc, int32(g.fam)*17)
	g.a.Emit(ir.MovI, regTmp, 0)
	switch g.fam {
	case Benign:
		g.sys(sysLog)
	case Mirai:
		g.a.Emit(ir.MovI, regAcc, 0x4d49) // "MI"
	case Gafgyt, Tsunami:
		g.sys(sysCnC)
	case XorDDoS:
		g.a.Emit(ir.MovI, regAcc, 0x5d)
	}
}

// buildProgram assembles one program of family fam targeting a
// family-conditional CFG size.
func buildProgram(rng *rand.Rand, fam Family, name string) (*ir.Program, error) {
	target := targetNodes(rng, fam)
	g := &gen{a: ir.NewAsm(name), rng: rng, fam: fam, blocks: 1}
	g.prologue()
	switch {
	case target <= 1:
		g.arith(2 + rng.Intn(4))
	case target == 2:
		lRet := g.lab()
		g.arith(1 + rng.Intn(3))
		g.a.Jump(ir.Jmp, lRet)
		g.a.Label(lRet)
	default:
		for first := true; first || g.blocks < target-2; first = false {
			g.pickMotif()()
		}
	}
	g.a.Emit(ir.MovR, 0, regAcc)
	g.a.Emit(ir.Ret)
	return g.a.Build()
}
