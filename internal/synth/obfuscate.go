package synth

import (
	"fmt"
	"math/rand"

	"advmal/internal/ir"
)

// Obfuscation implements the classic CFG-manipulating transformations the
// paper's §II-A attributes to malware authors (function obfuscation,
// control-flow obfuscation). Unlike packing, every pass here is
// *semantics-preserving*: the observable trace is unchanged (verifiable
// with the interpreter), while the CFG — and therefore the 23 features —
// shifts. GEA is the targeted version of this idea; these passes are the
// untargeted counterparts.
type Obfuscation int

// Obfuscation passes.
const (
	// ObfSplitBlocks breaks straight-line runs with unconditional jumps
	// to the next instruction, multiplying basic blocks without changing
	// behaviour (trampoline splitting).
	ObfSplitBlocks Obfuscation = iota + 1
	// ObfOpaqueJunk inserts always-false conditional branches to junk
	// blocks (opaque predicates), adding nodes, edges, and branching.
	ObfOpaqueJunk
	// ObfJumpChains replaces direct jumps with chains of trampoline
	// jumps, lengthening paths.
	ObfJumpChains
)

var obfNames = map[Obfuscation]string{
	ObfSplitBlocks: "split-blocks",
	ObfOpaqueJunk:  "opaque-junk",
	ObfJumpChains:  "jump-chains",
}

// String returns the pass name.
func (o Obfuscation) String() string {
	if s, ok := obfNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Obfuscation(%d)", int(o))
}

// Obfuscations lists all passes in deterministic order.
func Obfuscations() []Obfuscation {
	return []Obfuscation{ObfSplitBlocks, ObfOpaqueJunk, ObfJumpChains}
}

// Obfuscate applies the pass to a copy of p with the given intensity
// (roughly: the fraction of eligible sites transformed, in (0, 1]) using
// deterministic randomness from seed. The result validates and is
// observationally equivalent to p.
func Obfuscate(p *ir.Program, pass Obfuscation, intensity float64, seed int64) (*ir.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("synth: obfuscate: %w", err)
	}
	if intensity <= 0 || intensity > 1 {
		return nil, fmt.Errorf("synth: obfuscate: intensity %v not in (0, 1]", intensity)
	}
	rng := rand.New(rand.NewSource(seed))
	var out *ir.Program
	var err error
	switch pass {
	case ObfSplitBlocks:
		out, err = splitBlocks(p, intensity, rng)
	case ObfOpaqueJunk:
		out, err = opaqueJunk(p, intensity, rng)
	case ObfJumpChains:
		out, err = jumpChains(p, intensity, rng)
	default:
		return nil, fmt.Errorf("synth: unknown obfuscation %v", pass)
	}
	if err != nil {
		return nil, err
	}
	out.Name = fmt.Sprintf("%s(%s)", pass, p.Name)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("synth: obfuscate %v: %w", pass, err)
	}
	return out, nil
}

// rebuild copies p inserting extra instructions: insertAfter[i] gives the
// instructions to append immediately after original instruction i. Jump
// targets are remapped to the new location of their original target.
func rebuild(p *ir.Program, insertAfter map[int][]ir.Instr, insertBefore map[int][]ir.Instr) *ir.Program {
	newIdx := make([]int32, len(p.Code)+1)
	var code []ir.Instr
	for i, ins := range p.Code {
		code = append(code, insertBefore[i]...)
		newIdx[i] = int32(len(code))
		code = append(code, ins)
		code = append(code, insertAfter[i]...)
	}
	newIdx[len(p.Code)] = int32(len(code))
	// Remap jump targets (they index original instructions).
	for i := range code {
		if code[i].Op.IsJump() && code[i].A < 0 {
			// Negative marker: -1-origTarget encodes a target awaiting
			// remap; used by passes that add jumps to original targets.
			code[i].A = newIdx[-1-code[i].A]
		}
	}
	// The original instructions' own targets:
	for i, ins := range p.Code {
		if ins.Op.IsJump() {
			code[newIdx[i]].A = newIdx[ins.A]
		}
	}
	return &ir.Program{Name: p.Name, Code: code}
}

// splitBlocks inserts `jmp <next>` after eligible instructions, cutting
// blocks in two.
func splitBlocks(p *ir.Program, intensity float64, rng *rand.Rand) (*ir.Program, error) {
	after := map[int][]ir.Instr{}
	for i, ins := range p.Code {
		if ins.Op.IsJump() || ins.Op == ir.Ret || i+1 >= len(p.Code) {
			continue
		}
		if rng.Float64() >= intensity {
			continue
		}
		// jmp to the instruction that originally followed i; encoded
		// with the negative marker for rebuild to remap.
		after[i] = []ir.Instr{{Op: ir.Jmp, A: int32(-1 - (i + 1))}}
	}
	return rebuild(p, after, nil), nil
}

// opaqueJunk inserts dead junk blocks wired into the CFG: at selected
// block boundaries the executed path takes a single `jmp` straight to
// the original instruction, skipping a junk block that itself branches
// back into the real code. The junk never executes (so it may write
// anything), but the disassembler — which cannot prove the skip —
// reports its nodes and edges, exactly how opaque-predicate obfuscation
// looks to static CFG extraction.
//
//	jmp <orig>              ; the only executed inserted instruction
//	junk: movi r4, X        ; dead
//	      cmpi r4, Y        ; dead
//	      jle <orig>        ; dead branch: two CFG edges back into code
func opaqueJunk(p *ir.Program, intensity float64, rng *rand.Rand) (*ir.Program, error) {
	before := map[int][]ir.Instr{}
	for i := range p.Code {
		// Insert only at block starts (instruction 0, or after a jump
		// or ret) so the executed `jmp` cannot cut a cmp/jcc pair.
		if i > 0 && !p.Code[i-1].Op.IsJump() && p.Code[i-1].Op != ir.Ret {
			continue
		}
		if rng.Float64() >= intensity {
			continue
		}
		target := int32(-1 - i) // remapped by rebuild to instruction i
		before[i] = []ir.Instr{
			{Op: ir.Jmp, A: target},
			{Op: ir.MovI, A: 4, B: int32(rng.Intn(256))},
			{Op: ir.CmpI, A: 4, B: int32(rng.Intn(64))},
			{Op: ir.Jle, A: target},
		}
	}
	return rebuild(p, nil, before), nil
}

// jumpChains reroutes each selected jump (conditional or not) through a
// chain of two trampoline jumps appended at the end of the program,
// lengthening CFG paths without changing behaviour.
func jumpChains(p *ir.Program, intensity float64, rng *rand.Rand) (*ir.Program, error) {
	out := p.Clone()
	limit := len(out.Code) // only original jumps, not added trampolines
	for i := 0; i < limit; i++ {
		if !out.Code[i].Op.IsJump() {
			continue
		}
		if rng.Float64() >= intensity {
			continue
		}
		target := out.Code[i].A
		// tramp1: jmp tramp2 ; tramp2: jmp target.
		t1 := int32(len(out.Code))
		out.Code = append(out.Code,
			ir.Instr{Op: ir.Jmp, A: t1 + 1},
			ir.Instr{Op: ir.Jmp, A: target},
		)
		out.Code[i].A = t1
	}
	return out, nil
}
