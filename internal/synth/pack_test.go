package synth

import (
	"testing"

	"advmal/internal/ir"
)

func TestPackProducesStubCFG(t *testing.T) {
	samples, err := Generate(Config{Seed: 17, NumBenign: 2, NumMal: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.Nodes < 6 {
			continue // packing a tiny program is uninteresting
		}
		packed, err := Pack(s.Prog)
		if err != nil {
			t.Fatalf("Pack(%s): %v", s.Name, err)
		}
		cfg, err := ir.Disassemble(packed)
		if err != nil {
			t.Fatalf("disassembling packed %s: %v", s.Name, err)
		}
		// The packed CFG is the fixed unpacker stub regardless of how
		// large the original was.
		if cfg.G().N() > 4 {
			t.Errorf("%s: packed CFG has %d nodes, want a tiny stub", s.Name, cfg.G().N())
		}
		if cfg.G().N() >= s.Nodes {
			t.Errorf("%s: packing did not shrink the CFG (%d -> %d)",
				s.Name, s.Nodes, cfg.G().N())
		}
	}
}

func TestPackedProgramHalts(t *testing.T) {
	samples, err := Generate(Config{Seed: 18, NumBenign: 1, NumMal: 4})
	if err != nil {
		t.Fatal(err)
	}
	it := &ir.Interp{}
	for _, s := range samples {
		packed, err := Pack(s.Prog)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := it.Run(packed)
		if err != nil {
			t.Fatalf("packed %s did not halt: %v", s.Name, err)
		}
		// The stub's observable behaviour is the control transfer into
		// the unpacked payload.
		if len(tr.Events) != 1 || tr.Events[0].ID != 15 {
			t.Errorf("packed %s trace = %+v, want single exec event", s.Name, tr.Events)
		}
	}
}

func TestPackStubsAreStructurallyIdentical(t *testing.T) {
	// Different payloads yield the same stub *shape* (same node/edge
	// counts) — exactly why the paper notes packing defeats CFG features.
	samples, err := Generate(Config{Seed: 19, NumBenign: 2, NumMal: 6})
	if err != nil {
		t.Fatal(err)
	}
	var nodes, edges int
	for i, s := range samples {
		packed, err := Pack(s.Prog)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := ir.Disassemble(packed)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			nodes, edges = cfg.G().N(), cfg.G().M()
			continue
		}
		if cfg.G().N() != nodes || cfg.G().M() != edges {
			t.Errorf("stub shape differs across payloads: %d/%d vs %d/%d",
				cfg.G().N(), cfg.G().M(), nodes, edges)
		}
	}
}

func TestPackRejectsInvalid(t *testing.T) {
	if _, err := Pack(&ir.Program{}); err == nil {
		t.Error("Pack accepted an invalid program")
	}
}
