// Package report renders ASCII tables matching the layouts of the paper's
// tables, so every command and bench prints directly comparable output.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple fixed-layout ASCII table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends one row; cells are formatted with fmt.Sprint.
func (t *Table) Add(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
	return t
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func() {
		for _, w := range widths {
			sb.WriteByte('+')
			sb.WriteString(strings.Repeat("-", w+2))
		}
		sb.WriteString("+\n")
	}
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&sb, "| %-*s ", w, c)
		}
		sb.WriteString("|\n")
	}
	line()
	writeRow(t.Headers)
	line()
	for _, row := range t.Rows {
		writeRow(row)
	}
	line()
	return sb.String()
}

// Pct formats a ratio as a percentage with two decimals, e.g. "97.13".
func Pct(x float64) string { return fmt.Sprintf("%.2f", x*100) }

// Ms formats a duration in milliseconds with two decimals.
func Ms(d interface{ Seconds() float64 }) string {
	return fmt.Sprintf("%.2f", d.Seconds()*1000)
}

// F2 formats a float with two decimals.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }
