package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tbl := New("TITLE", "A", "Long header").
		Add("x", 1).
		Add("longer cell", 2.5)
	s := tbl.String()
	if !strings.HasPrefix(s, "TITLE\n") {
		t.Errorf("missing title:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// title + border + header + border + 2 rows + border = 7 lines.
	if len(lines) != 7 {
		t.Fatalf("lines = %d, want 7:\n%s", len(lines), s)
	}
	// All bordered rows share the same width.
	width := len(lines[1])
	for i := 1; i < len(lines); i++ {
		if len(lines[i]) != width {
			t.Errorf("line %d width %d != %d:\n%s", i, len(lines[i]), width, s)
		}
	}
	for _, want := range []string{"| A ", "Long header", "longer cell", "| 2.5 "} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestTableNoTitle(t *testing.T) {
	s := New("", "H").Add("v").String()
	if strings.HasPrefix(s, "\n") {
		t.Error("empty title should not add a blank line")
	}
	if !strings.Contains(s, "| H ") {
		t.Errorf("missing header:\n%s", s)
	}
}

func TestTableShortRow(t *testing.T) {
	// Rows with fewer cells than headers pad with empty cells.
	s := New("", "A", "B").Add("only").String()
	if !strings.Contains(s, "| only |") {
		t.Errorf("short row mishandled:\n%s", s)
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.9713); got != "97.13" {
		t.Errorf("Pct = %q", got)
	}
	if got := F2(5.424); got != "5.42" {
		t.Errorf("F2 = %q", got)
	}
	if got := Ms(25300 * time.Microsecond); got != "25.30" {
		t.Errorf("Ms = %q", got)
	}
}
