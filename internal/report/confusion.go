package report

import "fmt"

// Confusion renders a K×K confusion matrix as a Table: one row per true
// class, one column per predicted class, plus per-class recall and
// precision columns. labels name the classes in index order; confusion
// is [true][predicted]. The layout matches the family-classification
// tables in the paper's companion work, so binary and family heads
// print directly comparable matrices.
func Confusion(title string, labels []string, confusion [][]int) *Table {
	headers := append([]string{"true\\pred"}, labels...)
	headers = append(headers, "recall", "precision")
	t := New(title, headers...)

	k := len(labels)
	colTotal := make([]int, k)
	for _, row := range confusion {
		for p, v := range row {
			if p < k {
				colTotal[p] += v
			}
		}
	}
	for c, row := range confusion {
		cells := make([]any, 0, k+3)
		name := fmt.Sprintf("class%d", c)
		if c < len(labels) {
			name = labels[c]
		}
		cells = append(cells, name)
		rowTotal := 0
		for _, v := range row {
			rowTotal += v
		}
		for p := 0; p < k; p++ {
			v := 0
			if p < len(row) {
				v = row[p]
			}
			cells = append(cells, v)
		}
		recall, precision := "-", "-"
		if c < len(row) {
			if rowTotal > 0 {
				recall = Pct(float64(row[c]) / float64(rowTotal))
			}
			if c < k && colTotal[c] > 0 {
				precision = Pct(float64(row[c]) / float64(colTotal[c]))
			}
		}
		cells = append(cells, recall, precision)
		t.Add(cells...)
	}
	return t
}

// ClassRates renders per-class rate rows (class name, sample count, one
// rate column per metric name) — the per-family metrics companion to
// Confusion. rates[i][j] is metric j for class i, as a ratio.
func ClassRates(title string, labels []string, counts []int, metrics []string, rates [][]float64) *Table {
	headers := append([]string{"class", "n"}, metrics...)
	t := New(title, headers...)
	for i, name := range labels {
		cells := make([]any, 0, len(metrics)+2)
		n := 0
		if i < len(counts) {
			n = counts[i]
		}
		cells = append(cells, name, n)
		for j := range metrics {
			v := "-"
			if i < len(rates) && j < len(rates[i]) {
				v = Pct(rates[i][j])
			}
			cells = append(cells, v)
		}
		t.Add(cells...)
	}
	return t
}
