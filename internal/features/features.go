// Package features extracts the paper's 23 CFG-based features (Table II)
// from a control flow graph and provides the min-max scaler and the
// distortion validator of Fig. 1.
//
// The 23 features are seven groups: four distribution groups — betweenness
// centrality, closeness centrality, degree centrality, and shortest-path
// length — each summarized by {min, max, median, mean, standard deviation},
// plus three scalar features: graph density, number of edges, and number of
// nodes.
package features

import (
	"fmt"
	"math"
	"sort"

	"advmal/internal/graph"
)

// NumFeatures is the length of a feature vector (Table II).
const NumFeatures = 23

// Group identifies one of the seven feature categories of Table II.
type Group int

// Feature categories, in vector order.
const (
	GroupBetweenness Group = iota + 1
	GroupCloseness
	GroupDegree
	GroupShortestPath
	GroupDensity
	GroupEdges
	GroupNodes
)

var groupNames = map[Group]string{
	GroupBetweenness:  "Betweenness centrality",
	GroupCloseness:    "Closeness centrality",
	GroupDegree:       "Degree centrality",
	GroupShortestPath: "Shortest path",
	GroupDensity:      "Density",
	GroupEdges:        "# of Edges",
	GroupNodes:        "# of Nodes",
}

// String returns the Table II name of the group.
func (g Group) String() string {
	if s, ok := groupNames[g]; ok {
		return s
	}
	return fmt.Sprintf("Group(%d)", int(g))
}

// Size returns the number of features in the group (Table II).
func (g Group) Size() int {
	switch g {
	case GroupBetweenness, GroupCloseness, GroupDegree, GroupShortestPath:
		return 5
	case GroupDensity, GroupEdges, GroupNodes:
		return 1
	default:
		return 0
	}
}

// Groups lists the seven categories in feature-vector order.
func Groups() []Group {
	return []Group{
		GroupBetweenness, GroupCloseness, GroupDegree,
		GroupShortestPath, GroupDensity, GroupEdges, GroupNodes,
	}
}

var statNames = [5]string{"min", "max", "median", "mean", "std"}

// Names returns the 23 feature names in vector order.
func Names() []string {
	names := make([]string, 0, NumFeatures)
	for _, g := range Groups() {
		if g.Size() == 5 {
			for _, s := range statNames {
				names = append(names, fmt.Sprintf("%s (%s)", g, s))
			}
			continue
		}
		names = append(names, g.String())
	}
	return names
}

// GroupOf returns the category of feature index i in [0, NumFeatures).
func GroupOf(i int) Group {
	switch {
	case i < 5:
		return GroupBetweenness
	case i < 10:
		return GroupCloseness
	case i < 15:
		return GroupDegree
	case i < 20:
		return GroupShortestPath
	case i == 20:
		return GroupDensity
	case i == 21:
		return GroupEdges
	default:
		return GroupNodes
	}
}

// Vector is a 23-dimensional feature vector in the order of Table II.
type Vector []float64

// Clone returns a copy of the vector.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Summary5 returns {min, max, median, mean, population std} of values.
// An empty input yields all zeros, which is what a degenerate
// (single-node, edge-free) CFG produces.
func Summary5(values []float64) [5]float64 {
	var s [5]float64
	n := len(values)
	if n == 0 {
		return s
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	s[0] = sorted[0]
	s[1] = sorted[n-1]
	if n%2 == 1 {
		s[2] = sorted[n/2]
	} else {
		s[2] = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(n)
	s[3] = mean
	var varSum float64
	for _, x := range sorted {
		d := x - mean
		varSum += d * d
	}
	s[4] = math.Sqrt(varSum / float64(n))
	return s
}

// Extract computes the 23-feature vector of g with the fused single-sweep
// engine (graph.Sweeper): one Brandes pass per source yields betweenness,
// closeness, and the shortest-path multiset together, with sweep scratch
// pooled across calls. The result is bit-for-bit identical to
// ExtractNaive — the property tests in extractor_test.go assert it.
func Extract(g *graph.Graph) Vector {
	sw := sweepers.Get().(*graph.Sweeper)
	defer sweepers.Put(sw)
	return fromProfile(g, sw.Profile(g))
}

// ExtractNaive is the seed reference composition: four independent
// all-sources traversals, one per distribution group. It is kept as the
// oracle the fused engine is verified against; production paths use
// Extract or an Extractor.
func ExtractNaive(g *graph.Graph) Vector {
	v := make(Vector, 0, NumFeatures)
	for _, stats := range [][5]float64{
		Summary5(g.BetweennessCentrality()),
		Summary5(g.ClosenessCentrality()),
		Summary5(g.DegreeCentrality()),
		Summary5(g.ShortestPathLengths()),
	} {
		v = append(v, stats[:]...)
	}
	v = append(v, g.Density(), float64(g.M()), float64(g.N()))
	return v
}

// fromProfile summarizes a sweep profile into the Table II vector.
func fromProfile(g *graph.Graph, p *graph.Profile) Vector {
	v := make(Vector, 0, NumFeatures)
	for _, stats := range [][5]float64{
		Summary5(p.Betweenness),
		Summary5(p.Closeness),
		Summary5(p.Degree),
		Summary5(p.PathLengths),
	} {
		v = append(v, stats[:]...)
	}
	v = append(v, g.Density(), float64(g.M()), float64(g.N()))
	return v
}

// Diff counts the features where a and b differ by more than tol — the
// paper's Avg.FG statistic counts these per crafted adversarial example.
// Vectors of unequal length never agree on the surplus positions: every
// feature index present in only one of the two counts as differing, so
// Diff is symmetric in its arguments.
func Diff(a, b Vector, tol float64) int {
	shared := len(a)
	if len(b) < shared {
		shared = len(b)
	}
	n := len(a) + len(b) - 2*shared
	for i := 0; i < shared; i++ {
		if math.Abs(a[i]-b[i]) > tol {
			n++
		}
	}
	return n
}
