package features

import (
	"errors"
	"math"
	"testing"
)

func fitScaler(t *testing.T, vs []Vector) *Scaler {
	t.Helper()
	s := &Scaler{}
	if err := s.Fit(vs); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return s
}

func TestScalerFitErrors(t *testing.T) {
	s := &Scaler{}
	if err := s.Fit(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("Fit(nil) = %v, want ErrNoData", err)
	}
	if err := s.Fit([]Vector{{1, 2}, {1}}); !errors.Is(err, ErrBadLength) {
		t.Errorf("Fit(ragged) = %v, want ErrBadLength", err)
	}
}

// TestScalerFitPartialFailure is the regression test for the half-fitted
// scaler bug: a ragged Fit must leave the scaler unfitted (seed code
// populated Min/Max before hitting the bad vector, so Fitted() reported
// true and Transform silently used half-scanned ranges).
func TestScalerFitPartialFailure(t *testing.T) {
	s := &Scaler{}
	err := s.Fit([]Vector{{0, 0}, {10, 10}, {5}})
	if !errors.Is(err, ErrBadLength) {
		t.Fatalf("Fit(ragged) = %v, want ErrBadLength", err)
	}
	if s.Fitted() {
		t.Error("Fitted() = true after failed Fit; half-fitted state leaked")
	}
	if _, err := s.Transform(Vector{1, 1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("Transform after failed Fit = %v, want ErrNotFitted", err)
	}
}

// TestScalerFitFailurePreservesPriorFit: a failed re-Fit must not clobber
// ranges learned by an earlier successful Fit.
func TestScalerFitFailurePreservesPriorFit(t *testing.T) {
	s := fitScaler(t, []Vector{{0}, {10}})
	if err := s.Fit([]Vector{{0, 0}, {1}}); !errors.Is(err, ErrBadLength) {
		t.Fatalf("re-Fit(ragged) = %v, want ErrBadLength", err)
	}
	got, err := s.Transform(Vector{5})
	if err != nil {
		t.Fatalf("Transform after failed re-Fit: %v", err)
	}
	if got[0] != 0.5 {
		t.Errorf("Transform = %v, want 0.5 (original ranges preserved)", got[0])
	}
}

func TestScalerNotFitted(t *testing.T) {
	s := &Scaler{}
	if _, err := s.Transform(Vector{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("Transform before Fit = %v, want ErrNotFitted", err)
	}
	if _, err := s.Inverse(Vector{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("Inverse before Fit = %v, want ErrNotFitted", err)
	}
}

func TestScalerTransform(t *testing.T) {
	s := fitScaler(t, []Vector{{0, 10, 5}, {10, 20, 5}})
	got, err := s.Transform(Vector{5, 15, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := Vector{0.5, 0.5, 0} // constant feature maps to 0
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Transform[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScalerTransformOutOfRange(t *testing.T) {
	s := fitScaler(t, []Vector{{0}, {10}})
	got, err := s.Transform(Vector{20})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Errorf("out-of-range value = %v, want 2 (no clipping in Transform)", got[0])
	}
}

func TestScalerWrongLength(t *testing.T) {
	s := fitScaler(t, []Vector{{0, 1}, {1, 2}})
	if _, err := s.Transform(Vector{1}); !errors.Is(err, ErrBadLength) {
		t.Errorf("Transform wrong length = %v, want ErrBadLength", err)
	}
}

func TestScalerRoundTrip(t *testing.T) {
	s := fitScaler(t, []Vector{{-5, 0, 100}, {5, 1, 300}})
	orig := Vector{2.5, 0.25, 150}
	scaled, err := s.Transform(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.Inverse(scaled)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if math.Abs(back[i]-orig[i]) > 1e-9 {
			t.Errorf("roundtrip[%d] = %v, want %v", i, back[i], orig[i])
		}
	}
}

func TestScalerTransformAll(t *testing.T) {
	s := fitScaler(t, []Vector{{0}, {2}})
	out, err := s.TransformAll([]Vector{{0}, {1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 1}
	for i := range want {
		if out[i][0] != want[i] {
			t.Errorf("TransformAll[%d] = %v, want %v", i, out[i][0], want[i])
		}
	}
	if _, err := s.TransformAll([]Vector{{0, 1}}); err == nil {
		t.Error("TransformAll accepted wrong-length vector")
	}
}

func TestScalerTrainVectorsMapIntoBox(t *testing.T) {
	train := []Vector{{3, -1}, {7, 4}, {5, 0}}
	s := fitScaler(t, train)
	v := NewValidator(0)
	for i, tv := range train {
		scaled, err := s.Transform(tv)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Valid(scaled) {
			t.Errorf("train vector %d scaled outside [0,1]: %v", i, scaled)
		}
	}
}

func TestValidator(t *testing.T) {
	v := NewValidator(1e-9)
	tests := []struct {
		in   Vector
		want bool
	}{
		{Vector{0, 0.5, 1}, true},
		{Vector{-0.01, 0.5}, false},
		{Vector{0.5, 1.01}, false},
		{Vector{}, true},
	}
	for _, tc := range tests {
		if got := v.Valid(tc.in); got != tc.want {
			t.Errorf("Valid(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestValidatorClip(t *testing.T) {
	v := NewValidator(0)
	in := Vector{-1, 0.5, 2}
	got := v.Clip(in)
	want := Vector{0, 0.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Clip[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if in[0] != -1 {
		t.Error("Clip mutated its input")
	}
}

// TestValidatorClipValidConsistency is the regression test reconciling
// Clip with Valid: a vector that passes validation must come back from
// Clip unchanged (the seed code clamped the tolerated fringe
// [Lo-Eps, Lo) and (Hi, Hi+Eps] even though Valid accepts it), and a
// clipped vector must always validate.
func TestValidatorClipValidConsistency(t *testing.T) {
	v := NewValidator(0.01)
	// Exactly on the tolerated boundary: Valid accepts, Clip must not touch.
	boundary := Vector{v.Lo - v.Eps, v.Lo, 0.5, v.Hi, v.Hi + v.Eps}
	if !v.Valid(boundary) {
		t.Fatal("boundary vector should be Valid")
	}
	got := v.Clip(boundary)
	for i := range boundary {
		if got[i] != boundary[i] {
			t.Errorf("Clip mutated valid feature %d: %v -> %v", i, boundary[i], got[i])
		}
	}
	// Just outside tolerance: Valid rejects, Clip pulls back to the box.
	escaped := Vector{v.Lo - v.Eps - 1e-9, v.Hi + v.Eps + 1e-9}
	if v.Valid(escaped) {
		t.Fatal("escaped vector should not be Valid")
	}
	clipped := v.Clip(escaped)
	if clipped[0] != v.Lo || clipped[1] != v.Hi {
		t.Errorf("Clip(escaped) = %v, want [%v %v]", clipped, v.Lo, v.Hi)
	}
	if !v.Valid(clipped) {
		t.Error("Clip output must always be Valid")
	}
}

// TestScalerInconsistentDeserialized is the regression test for the
// deserialized-scaler bug: a scaler whose Min is populated but whose
// Max is nil or of a different length — a hand-edited or truncated
// model file decoded straight into the struct — used to pass Fitted()
// (which only checked Min) and then panic inside Transform indexing
// past the shorter Max slice. Such a scaler must report unfitted and
// Transform/Inverse must return ErrNotFitted.
func TestScalerInconsistentDeserialized(t *testing.T) {
	cases := map[string]*Scaler{
		"max-nil":      {Min: []float64{0, 0, 0}},
		"max-shorter":  {Min: []float64{0, 0, 0}, Max: []float64{1, 1}},
		"max-longer":   {Min: []float64{0, 0}, Max: []float64{1, 1, 1}},
		"min-nil-only": {Max: []float64{1, 1}},
		"both-nil":     {},
	}
	for name, s := range cases {
		if s.Fitted() {
			t.Errorf("%s: Fitted() = true for inconsistent scaler", name)
		}
		if _, err := s.Transform(Vector{1, 2, 3}); !errors.Is(err, ErrNotFitted) {
			t.Errorf("%s: Transform = %v, want ErrNotFitted", name, err)
		}
		if _, err := s.Inverse(Vector{1, 2, 3}); !errors.Is(err, ErrNotFitted) {
			t.Errorf("%s: Inverse = %v, want ErrNotFitted", name, err)
		}
	}
	// A consistent deserialized scaler (Min and Max same length) still
	// counts as fitted without an explicit Fit call.
	s := &Scaler{Min: []float64{0, 0}, Max: []float64{2, 4}}
	if !s.Fitted() {
		t.Fatal("consistent deserialized scaler should be fitted")
	}
	got, err := s.Transform(Vector{1, 1})
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if got[0] != 0.5 || got[1] != 0.25 {
		t.Errorf("Transform = %v, want [0.5 0.25]", got)
	}
}
