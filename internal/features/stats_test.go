package features

import (
	"strings"
	"testing"
)

func TestDescribe(t *testing.T) {
	vs := []Vector{
		make(Vector, NumFeatures),
		make(Vector, NumFeatures),
	}
	vs[0][22] = 10 // nodes
	vs[1][22] = 30
	d := Describe(vs)
	if len(d) != NumFeatures {
		t.Fatalf("Describe = %d rows", len(d))
	}
	nodes := d[22]
	if nodes.Feature != "# of Nodes" {
		t.Errorf("feature name = %q", nodes.Feature)
	}
	if nodes.Stats[0] != 10 || nodes.Stats[1] != 30 || nodes.Stats[3] != 20 {
		t.Errorf("node stats = %v", nodes.Stats)
	}
	if Describe(nil) != nil {
		t.Error("Describe(nil) should be nil")
	}
}

func TestCompare(t *testing.T) {
	a := []Vector{make(Vector, NumFeatures)}
	b := []Vector{make(Vector, NumFeatures)}
	a[0][22] = 10
	b[0][22] = 20
	out := Compare("benign", a, "malware", b)
	if !strings.Contains(out, "benign") || !strings.Contains(out, "malware") {
		t.Errorf("Compare missing labels:\n%s", out)
	}
	if !strings.Contains(out, "# of Nodes") {
		t.Errorf("Compare missing feature names:\n%s", out)
	}
	if !strings.Contains(out, "2.00") {
		t.Errorf("Compare missing ratio:\n%s", out)
	}
}

func TestTopDiscriminative(t *testing.T) {
	mk := func(nodeVal, edgeVal float64) Vector {
		v := make(Vector, NumFeatures)
		v[21] = edgeVal
		v[22] = nodeVal
		return v
	}
	// Populations differ strongly on feature 22 (nodes), weakly on 21.
	a := []Vector{mk(10, 5), mk(11, 6), mk(9, 5)}
	b := []Vector{mk(100, 7), mk(105, 8), mk(95, 7)}
	top := TopDiscriminative(a, b, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0] != 22 {
		t.Errorf("most discriminative = %d, want 22 (# of Nodes)", top[0])
	}
	// k beyond dimension clamps.
	if got := TopDiscriminative(a, b, 1000); len(got) != NumFeatures {
		t.Errorf("clamped top = %d features", len(got))
	}
}
