package features

import (
	"fmt"
	"sort"
	"strings"
)

// GroupSummary is the distribution of one feature across a set of
// samples: {min, max, median, mean, std} over the population.
type GroupSummary struct {
	Feature string     `json:"feature"`
	Stats   [5]float64 `json:"stats"` // min, max, median, mean, std
}

// Describe summarizes every feature's distribution across the given
// vectors — the per-class comparative analysis of §III ("number of nodes
// and edges, average shortest path, betweenness, closeness, density").
func Describe(vs []Vector) []GroupSummary {
	if len(vs) == 0 {
		return nil
	}
	dim := len(vs[0])
	names := Names()
	out := make([]GroupSummary, 0, dim)
	col := make([]float64, 0, len(vs))
	for j := 0; j < dim; j++ {
		col = col[:0]
		for _, v := range vs {
			if j < len(v) {
				col = append(col, v[j])
			}
		}
		name := fmt.Sprintf("feature %d", j)
		if j < len(names) {
			name = names[j]
		}
		out = append(out, GroupSummary{Feature: name, Stats: Summary5(col)})
	}
	return out
}

// Compare renders a side-by-side per-feature comparison of two
// populations (e.g. benign vs malware medians), the analysis the paper's
// related work (Alasmary et al.) performs and this paper's §III builds
// on. It reports each feature's median in both populations and the
// relative gap.
func Compare(labelA string, a []Vector, labelB string, b []Vector) string {
	da, db := Describe(a), Describe(b)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-30s %12s %12s %8s\n", "feature (median)", labelA, labelB, "ratio")
	for i := range da {
		if i >= len(db) {
			break
		}
		ma, mb := da[i].Stats[2], db[i].Stats[2]
		ratio := "-"
		if ma != 0 {
			ratio = fmt.Sprintf("%.2f", mb/ma)
		}
		fmt.Fprintf(&sb, "%-30s %12.4f %12.4f %8s\n", da[i].Feature, ma, mb, ratio)
	}
	return sb.String()
}

// TopDiscriminative ranks features by how far apart the two populations'
// medians are relative to their pooled spread (a robust effect size),
// returning the k most separating feature indices, best first.
func TopDiscriminative(a, b []Vector, k int) []int {
	da, db := Describe(a), Describe(b)
	n := len(da)
	if len(db) < n {
		n = len(db)
	}
	type scored struct {
		idx   int
		score float64
	}
	scores := make([]scored, 0, n)
	for i := 0; i < n; i++ {
		spread := da[i].Stats[4] + db[i].Stats[4]
		if spread == 0 {
			spread = 1e-12
		}
		diff := da[i].Stats[2] - db[i].Stats[2]
		if diff < 0 {
			diff = -diff
		}
		scores = append(scores, scored{i, diff / spread})
	}
	sort.SliceStable(scores, func(i, j int) bool { return scores[i].score > scores[j].score })
	if k > len(scores) {
		k = len(scores)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = scores[i].idx
	}
	return out
}
