package features

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"advmal/internal/graph"
)

func vectorsBitEqual(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestExtractFusedMatchesNaive is the tentpole property test: the fused
// single-sweep Extract must equal the seed four-traversal composition
// bit-for-bit on randomized graphs of both generator families, including
// degenerate sizes.
func TestExtractFusedMatchesNaive(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		switch rng.Intn(3) {
		case 0:
			g = graph.RandomDirected(rng, rng.Intn(40), rng.Float64()*0.5)
		case 1:
			g = graph.RandomFlow(rng, 1+rng.Intn(40), rng.Float64()*0.3)
		default:
			g = graph.RandomFlow(rng, 1+rng.Intn(3), rng.Float64()) // degenerate
		}
		return vectorsBitEqual(Extract(g), ExtractNaive(g))
	}, &quick.Config{MaxCount: 80})
	if err != nil {
		t.Error(err)
	}
}

// TestExtractorMatchesNaive covers the cached path end to end: cold
// (miss) and warm (hit) extractions both equal the naive oracle.
func TestExtractorMatchesNaive(t *testing.T) {
	e := NewExtractor(8)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5; i++ {
		g := graph.RandomFlow(rng, 5+rng.Intn(30), 0.2)
		want := ExtractNaive(g)
		if !vectorsBitEqual(e.Extract(g), want) {
			t.Fatalf("cold extract %d != naive", i)
		}
		if !vectorsBitEqual(e.Extract(g), want) {
			t.Fatalf("warm extract %d != naive", i)
		}
	}
}

// TestExtractorCacheHitOnEqualGraphs: hash-equal graphs — including one
// rebuilt with a different edge insertion order — must hit; a mutated
// graph must miss.
func TestExtractorCacheHitOnEqualGraphs(t *testing.T) {
	e := NewExtractor(16)
	b := graph.NewBuilder(5)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 3}}
	for _, ed := range edges {
		if err := b.AddEdge(ed[0], ed[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()

	v1 := e.Extract(g)
	if s := e.Stats(); s.Hits != 0 || s.Misses != 1 {
		t.Fatalf("after first extract: %+v, want 0 hits / 1 miss", s)
	}
	v2 := e.Extract(g)
	if s := e.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("after second extract: %+v, want 1 hit / 1 miss", s)
	}
	if !vectorsBitEqual(v1, v2) {
		t.Fatal("cache hit returned a different vector")
	}

	// Same edge set, reversed insertion order: Builder sorts adjacency,
	// so the content key is identical and this must hit.
	b = graph.NewBuilder(5)
	for i := len(edges) - 1; i >= 0; i-- {
		if err := b.AddEdge(edges[i][0], edges[i][1]); err != nil {
			t.Fatal(err)
		}
	}
	e.Extract(b.Build())
	if s := e.Stats(); s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("reordered rebuild: %+v, want 2 hits / 1 miss", s)
	}

	// One extra edge: different content, must miss.
	b = graph.NewBuilder(5)
	for _, ed := range append(append([][2]int{}, edges...), [2]int{4, 0}) {
		if err := b.AddEdge(ed[0], ed[1]); err != nil {
			t.Fatal(err)
		}
	}
	e.Extract(b.Build())
	if s := e.Stats(); s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("mutated graph: %+v, want 2 hits / 2 misses", s)
	}
}

// TestExtractorCacheBounded: the cache never exceeds its capacity and
// evicts least-recently-used first.
func TestExtractorCacheBounded(t *testing.T) {
	const capacity = 4
	e := NewExtractor(capacity)
	rng := rand.New(rand.NewSource(5))
	graphs := make([]*graph.Graph, 10)
	for i := range graphs {
		graphs[i] = graph.RandomFlow(rng, 4+i, 0.3)
		e.Extract(graphs[i])
		if s := e.Stats(); s.Len > capacity {
			t.Fatalf("cache grew to %d entries, cap %d", s.Len, capacity)
		}
	}
	// The last `capacity` graphs are resident; the first is long evicted.
	base := e.Stats()
	e.Extract(graphs[len(graphs)-1])
	if s := e.Stats(); s.Hits != base.Hits+1 {
		t.Error("most-recent graph should still be cached")
	}
	e.Extract(graphs[0])
	if s := e.Stats(); s.Misses != base.Misses+1 {
		t.Error("oldest graph should have been evicted (LRU)")
	}
}

// TestExtractorCacheMutationSafe: mutating a returned vector must not
// poison the cached copy.
func TestExtractorCacheMutationSafe(t *testing.T) {
	e := NewExtractor(4)
	g := graph.RandomFlow(rand.New(rand.NewSource(2)), 12, 0.2)
	want := ExtractNaive(g)
	v := e.Extract(g)
	for i := range v {
		v[i] = -1
	}
	if !vectorsBitEqual(e.Extract(g), want) {
		t.Fatal("caller mutation leaked into the cache")
	}
}

// TestExtractorNilDelegatesToShared: a nil *Extractor (unwired call
// site) must serve through the process-wide shared extractor.
func TestExtractorNilDelegatesToShared(t *testing.T) {
	g := graph.RandomFlow(rand.New(rand.NewSource(9)), 10, 0.25)
	var e *Extractor
	if !vectorsBitEqual(e.Extract(g), ExtractNaive(g)) {
		t.Fatal("nil extractor result != naive")
	}
}

// TestExtractorConcurrent hammers one extractor from many goroutines
// (run under -race by `make check`) and checks every result against the
// oracle.
func TestExtractorConcurrent(t *testing.T) {
	e := NewExtractor(8)
	rng := rand.New(rand.NewSource(13))
	graphs := make([]*graph.Graph, 6)
	oracle := make([]Vector, len(graphs))
	for i := range graphs {
		graphs[i] = graph.RandomFlow(rng, 8+3*i, 0.25)
		oracle[i] = ExtractNaive(graphs[i])
	}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				j := (w + i) % len(graphs)
				if !vectorsBitEqual(e.Extract(graphs[j]), oracle[j]) {
					errc <- errMismatch
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

var errMismatch = errors.New("concurrent extract mismatch")

// TestExtractorConcurrentChurn is the serving-concurrency regression: a
// cache far smaller than the working set under concurrent mixed hit/miss
// traffic, so lookups, inserts, and evictions interleave constantly
// (run under -race by `make check` and `make race-serve`). Pins three
// invariants: every returned vector matches ground truth bit for bit
// even when its entry is evicted mid-flight (returned vectors are
// private copies, so a reader can also scribble on them freely), the
// hit/miss counters account for exactly every lookup, and the cache
// never exceeds its capacity.
func TestExtractorConcurrentChurn(t *testing.T) {
	const (
		capacity   = 4
		workingSet = 16 // 4x capacity: most lookups evict something
		goroutines = 8
		iters      = 300
	)
	e := NewExtractor(capacity)
	rng := rand.New(rand.NewSource(17))
	graphs := make([]*graph.Graph, workingSet)
	oracle := make([]Vector, workingSet)
	for i := range graphs {
		graphs[i] = graph.RandomFlow(rng, 6+2*i, 0.25)
		oracle[i] = ExtractNaive(graphs[i])
	}
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-goroutine skew: low indices are hot (hits), high ones
			// cold (misses + evictions), so the mix exercises both paths.
			for i := 0; i < iters; i++ {
				var j int
				if i%3 == 0 {
					j = (w*7 + i) % workingSet // cold sweep
				} else {
					j = i % capacity // hot set
				}
				v := e.Extract(graphs[j])
				if !vectorsBitEqual(v, oracle[j]) {
					errc <- errMismatch
					return
				}
				// Returned vectors are private copies: mutating one must
				// never corrupt what other goroutines read.
				for k := range v {
					v[k] = -1
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if got, want := st.Hits+st.Misses, uint64(goroutines*iters); got != want {
		t.Fatalf("counters leak: hits %d + misses %d = %d, want %d lookups",
			st.Hits, st.Misses, got, want)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("churn did not mix hits and misses: %+v", st)
	}
	if st.Len > capacity {
		t.Fatalf("cache exceeded capacity: %d > %d", st.Len, capacity)
	}
	// The cache must still be coherent after the churn: every entry it
	// serves now matches ground truth.
	for i, g := range graphs {
		if !vectorsBitEqual(e.Extract(g), oracle[i]) {
			t.Fatalf("post-churn corruption for graph %d", i)
		}
	}
}
