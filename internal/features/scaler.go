package features

import (
	"errors"
	"fmt"
)

// Scaler errors.
var (
	// ErrNotFitted indicates use of a Scaler before Fit.
	ErrNotFitted = errors.New("features: scaler not fitted")
	// ErrBadLength indicates a vector of the wrong dimension.
	ErrBadLength = errors.New("features: wrong vector length")
	// ErrNoData indicates Fit was called with no vectors.
	ErrNoData = errors.New("features: no vectors to fit")
)

// Scaler min-max normalizes feature vectors to [0, 1] using ranges observed
// on the training split. Test-time values outside the training range map
// outside [0, 1]; attacks clip to the box themselves and the Validator
// flags escapes, mirroring the paper's "distortion validator" (Fig. 1).
type Scaler struct {
	Min    []float64 `json:"min"`
	Max    []float64 `json:"max"`
	fitted bool
}

// Fit learns per-feature minima and maxima from the training vectors.
// A failed Fit leaves the scaler exactly as it was: every vector's
// length is validated before any state is assigned, so a ragged input
// can neither leave the scaler half-fitted nor clobber ranges learned
// by an earlier successful Fit.
func (s *Scaler) Fit(vs []Vector) error {
	if len(vs) == 0 {
		return ErrNoData
	}
	dim := len(vs[0])
	for _, v := range vs[1:] {
		if len(v) != dim {
			return fmt.Errorf("%w: got %d want %d", ErrBadLength, len(v), dim)
		}
	}
	s.Min = make([]float64, dim)
	s.Max = make([]float64, dim)
	copy(s.Min, vs[0])
	copy(s.Max, vs[0])
	for _, v := range vs[1:] {
		for i, x := range v {
			if x < s.Min[i] {
				s.Min[i] = x
			}
			if x > s.Max[i] {
				s.Max[i] = x
			}
		}
	}
	s.fitted = true
	return nil
}

// Fitted reports whether Fit has been called (or ranges were
// deserialized). Deserialized ranges count only when they are
// consistent: a scaler whose Min is set but whose Max is nil or of a
// different length — a hand-edited or truncated model file — must not
// pass as fitted, or Transform would index past the shorter slice and
// panic instead of returning ErrNotFitted.
func (s *Scaler) Fitted() bool {
	return s.fitted || (len(s.Min) > 0 && len(s.Max) == len(s.Min))
}

// Transform returns the scaled copy of v. Constant features map to 0.
func (s *Scaler) Transform(v Vector) (Vector, error) {
	if !s.Fitted() {
		return nil, ErrNotFitted
	}
	if len(v) != len(s.Min) {
		return nil, fmt.Errorf("%w: got %d want %d", ErrBadLength, len(v), len(s.Min))
	}
	out := make(Vector, len(v))
	for i, x := range v {
		span := s.Max[i] - s.Min[i]
		if span == 0 {
			continue
		}
		out[i] = (x - s.Min[i]) / span
	}
	return out, nil
}

// TransformInto scales v into dst without allocating. dst must have the
// scaler's dimension; v is read-only. It is the batch-serving flavour of
// Transform: engines scale each raw row into per-worker scratch under
// whichever model snapshot they are pinned to, so scale + inference stay
// atomic across a hot swap.
func (s *Scaler) TransformInto(dst, v Vector) error {
	if !s.Fitted() {
		return ErrNotFitted
	}
	if len(v) != len(s.Min) || len(dst) != len(s.Min) {
		return fmt.Errorf("%w: got %d into %d, want %d", ErrBadLength, len(v), len(dst), len(s.Min))
	}
	for i, x := range v {
		span := s.Max[i] - s.Min[i]
		if span == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = (x - s.Min[i]) / span
	}
	return nil
}

// TransformAll applies Transform to every vector.
func (s *Scaler) TransformAll(vs []Vector) ([]Vector, error) {
	out := make([]Vector, len(vs))
	for i, v := range vs {
		t, err := s.Transform(v)
		if err != nil {
			return nil, fmt.Errorf("features: vector %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}

// Inverse maps a scaled vector back to raw feature space.
func (s *Scaler) Inverse(v Vector) (Vector, error) {
	if !s.Fitted() {
		return nil, ErrNotFitted
	}
	if len(v) != len(s.Min) {
		return nil, fmt.Errorf("%w: got %d want %d", ErrBadLength, len(v), len(s.Min))
	}
	out := make(Vector, len(v))
	for i, x := range v {
		out[i] = x*(s.Max[i]-s.Min[i]) + s.Min[i]
	}
	return out, nil
}

// Validator implements the distortion-validation step of Fig. 1: a crafted
// adversarial example is accepted only if every feature stays inside the
// feature-space box observed during training, within tolerance Eps.
type Validator struct {
	Lo, Hi float64 // box bounds in scaled space; typically 0 and 1
	Eps    float64 // tolerance
}

// NewValidator returns the standard [0,1] box validator with tolerance eps.
func NewValidator(eps float64) *Validator {
	return &Validator{Lo: 0, Hi: 1, Eps: eps}
}

// Valid reports whether every feature of the scaled vector is inside the
// box, within tolerance.
func (d *Validator) Valid(v Vector) bool {
	for _, x := range v {
		if x < d.Lo-d.Eps || x > d.Hi+d.Eps {
			return false
		}
	}
	return true
}

// Clip returns a copy of v with every escaped feature pulled back to the
// box. Its semantics are aligned with Valid: a feature already inside
// the tolerated box [Lo-Eps, Hi+Eps] is left untouched — so Valid(v)
// implies Clip(v) equals v — and a feature outside it is clamped to the
// nominal bound (Lo or Hi), so Clip's output always satisfies Valid.
func (d *Validator) Clip(v Vector) Vector {
	out := v.Clone()
	for i, x := range out {
		switch {
		case x < d.Lo-d.Eps:
			out[i] = d.Lo
		case x > d.Hi+d.Eps:
			out[i] = d.Hi
		}
	}
	return out
}
