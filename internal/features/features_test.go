package features

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"advmal/internal/graph"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTableIIStructure(t *testing.T) {
	// Table II: 7 categories, 4 of size 5 and 3 of size 1, 23 total.
	groups := Groups()
	if len(groups) != 7 {
		t.Fatalf("Groups() = %d categories, want 7", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += g.Size()
	}
	if total != NumFeatures || NumFeatures != 23 {
		t.Errorf("total features = %d, want 23", total)
	}
	wantSizes := map[Group]int{
		GroupBetweenness: 5, GroupCloseness: 5, GroupDegree: 5,
		GroupShortestPath: 5, GroupDensity: 1, GroupEdges: 1, GroupNodes: 1,
	}
	for g, want := range wantSizes {
		if g.Size() != want {
			t.Errorf("%v.Size() = %d, want %d", g, g.Size(), want)
		}
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != NumFeatures {
		t.Fatalf("Names() = %d entries, want %d", len(names), NumFeatures)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" {
			t.Error("empty feature name")
		}
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
	if names[0] != "Betweenness centrality (min)" {
		t.Errorf("names[0] = %q", names[0])
	}
	if names[22] != "# of Nodes" {
		t.Errorf("names[22] = %q", names[22])
	}
}

func TestGroupOfCoversVector(t *testing.T) {
	counts := map[Group]int{}
	for i := 0; i < NumFeatures; i++ {
		counts[GroupOf(i)]++
	}
	for _, g := range Groups() {
		if counts[g] != g.Size() {
			t.Errorf("GroupOf assigns %d features to %v, want %d", counts[g], g, g.Size())
		}
	}
}

func TestGroupString(t *testing.T) {
	if GroupDensity.String() != "Density" {
		t.Errorf("GroupDensity = %q", GroupDensity)
	}
	if Group(99).String() == "" {
		t.Error("unknown group must render something")
	}
}

func TestSummary5(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want [5]float64 // min, max, median, mean, std
	}{
		{"empty", nil, [5]float64{}},
		{"single", []float64{3}, [5]float64{3, 3, 3, 3, 0}},
		{"odd", []float64{3, 1, 2}, [5]float64{1, 3, 2, 2, math.Sqrt(2.0 / 3.0)}},
		{"even", []float64{4, 1, 3, 2}, [5]float64{1, 4, 2.5, 2.5, math.Sqrt(1.25)}},
		{"constant", []float64{5, 5, 5}, [5]float64{5, 5, 5, 5, 0}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Summary5(tc.in)
			for i := range got {
				if !almostEqual(got[i], tc.want[i]) {
					t.Errorf("Summary5(%v)[%d] = %v, want %v", tc.in, i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestSummary5DoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summary5(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Summary5 mutated its input")
	}
}

func buildPath(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestExtractKnownGraph(t *testing.T) {
	g := buildPath(t, 3) // 0->1->2
	v := Extract(g)
	if len(v) != NumFeatures {
		t.Fatalf("Extract length = %d, want %d", len(v), NumFeatures)
	}
	// Scalar tail: density, edges, nodes.
	if !almostEqual(v[20], 2.0/6.0) {
		t.Errorf("density = %v, want %v", v[20], 2.0/6.0)
	}
	if v[21] != 2 || v[22] != 3 {
		t.Errorf("edges/nodes = %v/%v, want 2/3", v[21], v[22])
	}
	// Betweenness: only the middle node (0.5); max is index 1.
	if !almostEqual(v[1], 0.5) {
		t.Errorf("betweenness max = %v, want 0.5", v[1])
	}
	// Shortest paths multiset {1,1,2}: min 1, max 2, median 1, mean 4/3.
	if !almostEqual(v[15], 1) || !almostEqual(v[16], 2) || !almostEqual(v[17], 1) || !almostEqual(v[18], 4.0/3.0) {
		t.Errorf("shortest-path stats = %v", v[15:20])
	}
}

func TestExtractDegenerateGraph(t *testing.T) {
	g := graph.NewBuilder(1).Build()
	v := Extract(g)
	for i, x := range v[:22] {
		if x != 0 {
			t.Errorf("feature %d = %v on single-node graph, want 0", i, x)
		}
	}
	if v[22] != 1 {
		t.Errorf("nodes = %v, want 1", v[22])
	}
}

// TestExtractRelabelInvariance: features are graph invariants.
func TestExtractRelabelInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomFlow(rng, 4+rng.Intn(25), 0.1)
		perm := rng.Perm(g.N())
		h, err := g.Relabel(perm)
		if err != nil {
			t.Fatal(err)
		}
		a, b := Extract(g), Extract(h)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9 {
				t.Fatalf("feature %d (%s) not relabel-invariant: %v vs %v",
					i, Names()[i], a[i], b[i])
			}
		}
	}
}

func TestExtractAlwaysFinite(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomDirected(rng, 1+rng.Intn(30), rng.Float64()*0.4)
		for _, x := range Extract(g) {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestDiff(t *testing.T) {
	a := Vector{0, 0.5, 1}
	b := Vector{0, 0.6, 1}
	if got := Diff(a, b, 1e-3); got != 1 {
		t.Errorf("Diff = %d, want 1", got)
	}
	if got := Diff(a, b, 0.2); got != 0 {
		t.Errorf("Diff with loose tol = %d, want 0", got)
	}
	if got := Diff(a, a, 1e-9); got != 0 {
		t.Errorf("Diff(a,a) = %d, want 0", got)
	}
}

// TestDiffLengthMismatch is the regression test for the Avg.FG
// under-count: features present in only one vector must count as
// differing, in both argument orders. The seed implementation silently
// ignored b's tail whenever len(b) > len(a) (and a's tail in the
// mirrored call), so this test fails against it.
func TestDiffLengthMismatch(t *testing.T) {
	a := Vector{0, 0.5, 1}
	short := Vector{0} // agrees on the shared prefix
	if got := Diff(a, short, 1e-3); got != 2 {
		t.Errorf("Diff(a, short) = %d, want 2 (surplus features differ)", got)
	}
	if got := Diff(short, a, 1e-3); got != 2 {
		t.Errorf("Diff(short, a) = %d, want 2 (surplus features differ)", got)
	}
	// Shared-prefix disagreement and surplus both count.
	if got := Diff(a, Vector{1}, 1e-3); got != 3 {
		t.Errorf("Diff(a, {1}) = %d, want 3", got)
	}
	if got := Diff(Vector{1}, a, 1e-3); got != 3 {
		t.Errorf("Diff({1}, a) = %d, want 3", got)
	}
	// Symmetry on random-ish unequal lengths.
	b := Vector{0, 0.5, 1, 2, 3}
	if x, y := Diff(a, b, 1e-3), Diff(b, a, 1e-3); x != y || x != 2 {
		t.Errorf("Diff asymmetric: %d vs %d, want 2", x, y)
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares backing array")
	}
}
