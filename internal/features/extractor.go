package features

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"advmal/internal/graph"
)

// sweepers pools fused-sweep scratch across goroutines: Extract and
// Extractor.Extract borrow a graph.Sweeper for the duration of one sweep,
// so parallel corpus builds reuse a small set of scratch arenas instead
// of allocating per call.
var sweepers = sync.Pool{New: func() any { return graph.NewSweeper() }}

// DefaultCacheCapacity bounds the shared extractor's cache. At 23
// float64s plus a 32-byte key per entry this is ~1 MiB of vectors.
const DefaultCacheCapacity = 4096

// GraphKey returns the content hash an Extractor caches under: SHA-256
// over the node count and the sorted out-adjacency lists. Builder sorts
// adjacency at Build time, so two graphs with equal node and edge sets
// (graph.Equal) hash identically regardless of edge insertion order,
// and any added, removed, or rerouted edge changes the key.
func GraphKey(g *graph.Graph) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	n := g.N()
	writeU64(uint64(n))
	for u := 0; u < n; u++ {
		out := g.Out(u)
		writeU64(uint64(len(out)))
		for _, v := range out {
			writeU64(uint64(uint32(v)))
		}
	}
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// Extractor computes Table II feature vectors through the fused sweep
// engine with a bounded, concurrency-safe, content-keyed cache in front:
// vectors are memoized under GraphKey, so hash-equal graphs — the same
// CFG re-disassembled, a GEA minimize probe repeating a candidate, the
// same sample crossing corpus build and classification — are extracted
// once. Raw feature vectors are a pure function of graph content, so
// sharing one Extractor across detectors, pipelines, and goroutines is
// always sound.
//
// Eviction is least-recently-used. The zero-capacity constructor value
// selects DefaultCacheCapacity. A nil *Extractor is valid and delegates
// to the process-wide Shared extractor, which lets struct fields be
// optional at every call site.
type Extractor struct {
	mu     sync.Mutex
	cap    int
	lru    *list.List // front = most recently used; Value is *cacheEntry
	byKey  map[[sha256.Size]byte]*list.Element
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key [sha256.Size]byte
	vec Vector
}

// Shared is the process-wide extractor used when a call site has no
// explicit one wired in (nil *Extractor receivers delegate here).
var Shared = NewExtractor(DefaultCacheCapacity)

// NewExtractor returns an Extractor whose cache holds up to capacity
// vectors; capacity <= 0 selects DefaultCacheCapacity.
func NewExtractor(capacity int) *Extractor {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Extractor{
		cap:   capacity,
		lru:   list.New(),
		byKey: make(map[[sha256.Size]byte]*list.Element),
	}
}

// Extract returns the 23-feature vector of g, serving hash-equal graphs
// from the cache. The returned vector is always a private copy; callers
// may mutate it freely.
func (e *Extractor) Extract(g *graph.Graph) Vector {
	if e == nil {
		return Shared.Extract(g)
	}
	key := GraphKey(g)
	if v, ok := e.lookup(key); ok {
		return v
	}
	// Compute outside the lock; a concurrent miss on the same key does
	// redundant work but stays correct (extraction is deterministic).
	v := Extract(g)
	e.insert(key, v)
	return v
}

func (e *Extractor) lookup(key [sha256.Size]byte) (Vector, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.byKey[key]
	if !ok {
		e.misses++
		return nil, false
	}
	e.hits++
	e.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).vec.Clone(), true
}

func (e *Extractor) insert(key [sha256.Size]byte, v Vector) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.byKey[key]; ok { // lost a compute race; keep the resident entry
		e.lru.MoveToFront(el)
		return
	}
	e.byKey[key] = e.lru.PushFront(&cacheEntry{key: key, vec: v.Clone()})
	for e.lru.Len() > e.cap {
		oldest := e.lru.Back()
		e.lru.Remove(oldest)
		delete(e.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// CacheStats is a point-in-time snapshot of an Extractor's cache.
type CacheStats struct {
	Hits, Misses uint64
	Len, Cap     int
}

// Stats returns the extractor's cache counters.
func (e *Extractor) Stats() CacheStats {
	if e == nil {
		return Shared.Stats()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return CacheStats{Hits: e.hits, Misses: e.misses, Len: e.lru.Len(), Cap: e.cap}
}

// Reset empties the cache and zeroes the counters.
func (e *Extractor) Reset() {
	if e == nil {
		Shared.Reset()
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lru.Init()
	e.byKey = make(map[[sha256.Size]byte]*list.Element)
	e.hits, e.misses = 0, 0
}
