package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"

	"advmal/internal/core"
)

// maxModelBody bounds POST /admin/swap payloads. A serialized paper-CNN
// snapshot is well under a megabyte; 32 MiB leaves headroom for larger
// architectures without letting a stray upload exhaust memory.
const maxModelBody = 32 << 20

// modelInfo is the GET /v1/model response: which snapshot is serving and
// how many hot swaps have been installed. The gateway scrapes it per
// replica after the ready probe so /backends can report fleet skew.
type modelInfo struct {
	Version uint64 `json:"version"`
	Swaps   uint64 `json:"swaps"`
}

// swapResponse is the POST /admin/swap response.
type swapResponse struct {
	OldVersion uint64 `json:"old_version"`
	NewVersion uint64 `json:"new_version"`
}

// handleModel reports the serving snapshot's version. Always mounted —
// it is read-only and the gateway depends on it.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, modelInfo{Version: s.h.Version(), Swaps: s.h.Swaps()})
}

// handleSwap accepts a model gob (the core.Save format), loads it, and
// installs it into the serving handle. In-flight batches finish on the
// old snapshot; everything admitted after the swap scores on the new
// one. Mounted only with Config.Admin — the endpoint is mutating and
// deployments are expected to keep it off the public listener.
func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxModelBody))
	if err != nil {
		s.fail(w, http.StatusRequestEntityTooLarge, fmt.Errorf("reading model: %w", err))
		return
	}
	m, err := core.LoadModel(bytes.NewReader(body))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding model: %w", err))
		return
	}
	old, err := s.h.Swap(m)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, fmt.Errorf("installing model: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, swapResponse{OldVersion: old.Version, NewVersion: m.Version})
}

// GateStatus reports one canary gate's last evaluation: the live and
// candidate readings it compared and whether the candidate passed.
type GateStatus struct {
	// Name identifies the gate: "accuracy", "fnr", "fpr", or
	// "evasion:<attack>".
	Name string `json:"name"`
	// Live and Candidate are the gated metric's readings on the holdout
	// (higher-is-worse for fnr/fpr/evasion, higher-is-better for
	// accuracy).
	Live      float64 `json:"live"`
	Candidate float64 `json:"candidate"`
	// Margin is how far the candidate sat from the gate's threshold —
	// positive is headroom, negative is the violation size.
	Margin float64 `json:"margin"`
	// Pass reports whether this gate admitted the candidate.
	Pass bool `json:"pass"`
}

// LifecycleStatus is the online-retraining loop's published state: cycle
// counters plus the gate-by-gate verdict of the most recent canary
// evaluation. The retraining loop publishes it via SetLifecycle; the
// server folds it into /metrics.
type LifecycleStatus struct {
	CanaryRuns   uint64       `json:"canary_runs"`
	CanaryPassed uint64       `json:"canary_passed"`
	CanaryFailed uint64       `json:"canary_failed"`
	Gates        []GateStatus `json:"gates,omitempty"`
}

// SetLifecycle publishes the retraining loop's latest status for
// /metrics. Safe to call concurrently with serving traffic.
func (s *Server) SetLifecycle(st *LifecycleStatus) { s.lc.Store(st) }

// writeLifecycleText appends the canary series to a /metrics response.
// No lifecycle published means no series — scrapers distinguish "no
// retraining loop" from "loop with zero runs".
func (s *Server) writeLifecycleText(w io.Writer) {
	st := s.lc.Load()
	if st == nil {
		return
	}
	fmt.Fprintf(w, "# HELP advmal_canary_runs_total Candidate canary evaluations performed.\n")
	fmt.Fprintf(w, "# TYPE advmal_canary_runs_total counter\n")
	fmt.Fprintf(w, "advmal_canary_runs_total %d\n", st.CanaryRuns)
	fmt.Fprintf(w, "advmal_canary_passed_total %d\n", st.CanaryPassed)
	fmt.Fprintf(w, "advmal_canary_failed_total %d\n", st.CanaryFailed)
	if len(st.Gates) > 0 {
		fmt.Fprintf(w, "# HELP advmal_canary_gate Last canary's per-gate verdict (1 pass, 0 fail).\n")
		fmt.Fprintf(w, "# TYPE advmal_canary_gate gauge\n")
		for _, g := range st.Gates {
			pass := 0
			if g.Pass {
				pass = 1
			}
			fmt.Fprintf(w, "advmal_canary_gate{gate=%q} %d\n", g.Name, pass)
		}
		fmt.Fprintf(w, "# HELP advmal_canary_gate_margin Last canary's per-gate margin (negative = violation).\n")
		fmt.Fprintf(w, "# TYPE advmal_canary_gate_margin gauge\n")
		for _, g := range st.Gates {
			fmt.Fprintf(w, "advmal_canary_gate_margin{gate=%q} %g\n", g.Name, g.Margin)
		}
	}
}
