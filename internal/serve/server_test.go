package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"advmal/internal/core"
	"advmal/internal/features"
	"advmal/internal/ir"
	"advmal/internal/nn"
)

// testDetector builds a detector with an untrained network and an
// identity scaler — the full serving path without training cost.
func testDetector() *core.Detector {
	min := make([]float64, features.NumFeatures)
	max := make([]float64, features.NumFeatures)
	for i := range max {
		max[i] = 1
	}
	return &core.Detector{
		Scaler:    &features.Scaler{Min: min, Max: max},
		Net:       nn.PaperCNN(0),
		Extractor: features.NewExtractor(64),
	}
}

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Detector == nil {
		cfg.Detector = testDetector()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

const validProgram = "movi r0, 1\nmovi r1, 2\nadd r0, r1\nret\n"

func postClassify(t *testing.T, ts *httptest.Server, contentType, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/classify", contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestServerClassifyText posts raw assembly and checks the verdict
// matches the detector's offline answer field by field.
func TestServerClassifyText(t *testing.T) {
	det := testDetector()
	s, ts := testServer(t, Config{Detector: det, Window: -1})
	resp, body := postClassify(t, ts, "text/plain", validProgram)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var v Verdict
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad verdict JSON %q: %v", body, err)
	}
	prog, err := ir.Parse(validProgram)
	if err != nil {
		t.Fatal(err)
	}
	pred, probs, err := det.Classify(prog)
	if err != nil {
		t.Fatal(err)
	}
	if v.Class != pred || v.Label != Label(pred) || v.Confidence != probs[pred] {
		t.Fatalf("server verdict %+v diverges from offline classify (%d, %v)", v, pred, probs)
	}
	if v.Blocks <= 0 {
		t.Fatalf("verdict missing CFG summary: %+v", v)
	}
	if len(v.Probs) != 2 || v.Probs[pred] != probs[pred] {
		t.Fatalf("probs not faithful: %+v vs %v", v.Probs, probs)
	}
	_ = s
}

// TestServerClassifyJSON posts the JSON request form with a name.
func TestServerClassifyJSON(t *testing.T) {
	_, ts := testServer(t, Config{})
	reqBody, _ := json.Marshal(classifyRequest{Name: "sample-1", Program: validProgram})
	resp, body := postClassify(t, ts, "application/json", string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var v Verdict
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Name != "sample-1" {
		t.Fatalf("name not echoed: %+v", v)
	}
}

// TestServerClassifyVector posts a raw feature vector.
func TestServerClassifyVector(t *testing.T) {
	_, ts := testServer(t, Config{})
	vec := make([]float64, features.NumFeatures)
	for i := range vec {
		vec[i] = 0.25
	}
	reqBody, _ := json.Marshal(vectorRequest{Name: "vec-1", Vector: vec})
	resp, err := http.Post(ts.URL+"/v1/classify/vector", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var v Verdict
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Blocks != 0 || v.Edges != 0 {
		t.Fatalf("vector verdict should omit CFG summary: %+v", v)
	}
	if len(v.Probs) != 2 {
		t.Fatalf("bad probs: %+v", v)
	}
}

// TestServerBadRequests maps malformed inputs to 4xx, never 5xx.
func TestServerBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{MaxBody: 512})
	cases := []struct {
		name, ct, body string
		want           int
	}{
		{"garbage asm", "text/plain", "not a program %%%", http.StatusBadRequest},
		{"bad json", "application/json", "{nope", http.StatusBadRequest},
		{"oversize", "text/plain", strings.Repeat("nop\n", 1024) + "ret\n", http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, body := postClassify(t, ts, tc.ct, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d want %d (body %s)", tc.name, resp.StatusCode, tc.want, body)
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not a JSON envelope: %q", tc.name, body)
		}
	}
	// Wrong-dimension vector → 400.
	reqBody, _ := json.Marshal(vectorRequest{Vector: []float64{1, 2, 3}})
	resp, err := http.Post(ts.URL+"/v1/classify/vector", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("short vector: status %d want 400", resp.StatusCode)
	}
}

// TestServerHealthAndMetrics covers the observability endpoints: healthz
// always up, readyz flipping on drain, and /metrics carrying request,
// verdict, batch, and cache series.
func TestServerHealthAndMetrics(t *testing.T) {
	s, ts := testServer(t, Config{})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", ep, resp.StatusCode)
		}
	}
	// Serve the same program twice: the second hit must come from the
	// feature cache and show up in the hit-rate series.
	for i := 0; i < 2; i++ {
		resp, body := postClassify(t, ts, "text/plain", validProgram)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classify %d: status %d body %s", i, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"advmal_requests_total 2",
		"advmal_verdicts_total",
		"advmal_batch_size_bucket",
		"advmal_queue_wait_seconds_count 2",
		"advmal_inference_seconds_sum",
		"advmal_feature_cache_hits_total 1",
		"advmal_feature_cache_hit_rate 0.5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}
	// Drain: readyz flips to 503 and the batcher reports zero drops.
	s.NotReady()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after NotReady: status %d, want 503", resp.StatusCode)
	}
	if st := s.Drain(); st.Dropped != 0 || st.Accepted != 2 {
		t.Fatalf("drain stats: %+v", st)
	}
}

// TestServerQueueFull429 wedges the engine and checks overload maps to a
// fast 429 with Retry-After.
func TestServerQueueFull429(t *testing.T) {
	eng := &blockEngine{release: make(chan struct{}), classes: 2}
	s, ts := testServer(t, Config{
		Workers: 1, BatchSize: 1, Window: -1, QueueDepth: 1,
		NewEngine: func() BatchEngine { return eng },
	})
	// Wedge: one request in flight, one in queue.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/classify", "text/plain", strings.NewReader(validProgram))
			if err == nil {
				resp.Body.Close()
			}
			errs <- err
		}()
	}
	waitFor(t, func() bool { return eng.entered.Load() == 1 && s.Metrics().Requests.Load() == 2 })
	resp, body := postClassify(t, ts, "text/plain", validProgram)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	go func() { eng.release <- struct{}{}; eng.release <- struct{}{} }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerRequestTimeout504 wedges the engine past the request budget.
func TestServerRequestTimeout504(t *testing.T) {
	eng := &blockEngine{release: make(chan struct{}), classes: 2}
	_, ts := testServer(t, Config{
		Workers: 1, BatchSize: 1, Window: -1, QueueDepth: 4,
		RequestTimeout: 10 * time.Millisecond,
		NewEngine:      func() BatchEngine { return eng },
	})
	resp, body := postClassify(t, ts, "text/plain", validProgram)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d want 504 (body %s)", resp.StatusCode, body)
	}
	eng.release <- struct{}{} // let the worker finish the abandoned batch
}

// TestServerDrainingRejects503 checks post-drain requests get 503.
func TestServerDrainingRejects503(t *testing.T) {
	s, ts := testServer(t, Config{})
	if st := s.Drain(); st.Dropped != 0 {
		t.Fatalf("drain: %+v", st)
	}
	resp, body := postClassify(t, ts, "text/plain", validProgram)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d want 503 (body %s)", resp.StatusCode, body)
	}
}
