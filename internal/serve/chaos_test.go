package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Regression for the drain race: /readyz must flip 200 → 503 exactly
// once per drain, no matter which drain entry point ran — and once it
// has said 503, no later poll may see 200. Run under -race; the poller
// races the drain sequence on purpose.
func TestReadyzDrainOrdering(t *testing.T) {
	s, ts := testServer(t, Config{Window: -1})

	var mu sync.Mutex
	var codes []int
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/readyz")
			if err != nil {
				return
			}
			resp.Body.Close()
			mu.Lock()
			codes = append(codes, resp.StatusCode)
			mu.Unlock()
		}
	}()

	time.Sleep(5 * time.Millisecond) // let the poller observe some 200s
	s.NotReady()
	s.Batcher().Close()
	// Post-drain polls: these MUST all be 503.
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done

	mu.Lock()
	defer mu.Unlock()
	if len(codes) == 0 {
		t.Fatal("poller observed nothing")
	}
	sawUnavailable := false
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			if sawUnavailable {
				t.Fatalf("poll %d saw 200 after an earlier 503 — readiness flapped during drain: %v", i, codes)
			}
		case http.StatusServiceUnavailable:
			sawUnavailable = true
		default:
			t.Fatalf("poll %d: unexpected status %d", i, c)
		}
	}
	if !sawUnavailable {
		t.Fatal("poller never observed the drain 503")
	}
}

// The race the fix targets: a batcher drained directly — without the
// NotReady → Shutdown → Drain ceremony — must still flip /readyz to 503
// before Submit can refuse with ErrDraining. Before the fix /readyz
// consulted only the explicit ready flag and kept answering 200.
func TestReadyzReflectsBatcherDrain(t *testing.T) {
	s, ts := testServer(t, Config{Window: -1})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d before drain, want 200", resp.StatusCode)
	}

	s.Batcher().Close() // direct drain, ready flag never touched
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d after direct batcher drain, want 503", resp.StatusCode)
	}
}

// chaosServer builds a chaos-armed test server and returns the Chaos
// handle alongside it.
func chaosServer(t *testing.T) (*Chaos, *Server, string) {
	t.Helper()
	c := &Chaos{}
	s, ts := testServer(t, Config{Window: -1, Chaos: c})
	return c, s, ts.URL
}

func postChaos(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/chaosz", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// error-every-N injects a 500 on exactly every Nth classify request.
func TestChaosErrorEvery(t *testing.T) {
	c, _, url := chaosServer(t)
	postChaos(t, url, `{"error_every":2}`)

	codes := make([]int, 0, 6)
	for i := 0; i < 6; i++ {
		resp, err := http.Post(url+"/v1/classify", "text/plain", strings.NewReader(validProgram))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	want := []int{200, 500, 200, 500, 200, 500}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("codes = %v, want %v", codes, want)
		}
	}
	if c.Injected() != 3 {
		t.Errorf("injected = %d, want 3", c.Injected())
	}

	// Clear restores clean service.
	postChaos(t, url, `{"clear":true}`)
	resp, err := http.Post(url+"/v1/classify", "text/plain", strings.NewReader(validProgram))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after clear, want 200", resp.StatusCode)
	}
}

// The handler-level slow fault delays classify responses by at least
// the configured amount.
func TestChaosSlow(t *testing.T) {
	_, _, url := chaosServer(t)
	postChaos(t, url, `{"slow_ms":30}`)
	start := time.Now()
	resp, err := http.Post(url+"/v1/classify", "text/plain", strings.NewReader(validProgram))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("slow classify answered in %v, want >= 30ms", d)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// The serialized inference delay gates batch throughput: with one
// worker, k sequential classifies take at least k * delay.
func TestChaosInferDelaySerializes(t *testing.T) {
	c := &Chaos{}
	_, ts := testServer(t, Config{Window: -1, Workers: 1, Chaos: c})
	c.SetInferDelay(10 * time.Millisecond)

	const k = 4
	start := time.Now()
	for i := 0; i < k; i++ {
		resp, err := http.Post(ts.URL+"/v1/classify", "text/plain", strings.NewReader(validProgram))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if d := time.Since(start); d < k*10*time.Millisecond {
		t.Fatalf("%d classifies in %v, want >= %v (delay must serialize in the engine)",
			k, d, k*10*time.Millisecond)
	}
}

// A blackholed classify holds until the client gives up; /readyz and
// /chaosz stay reachable so the fault can be lifted.
func TestChaosBlackhole(t *testing.T) {
	_, _, url := chaosServer(t)
	postChaos(t, url, `{"blackhole":true}`)

	client := &http.Client{Timeout: 50 * time.Millisecond}
	_, err := client.Post(url+"/v1/classify", "text/plain", strings.NewReader(validProgram))
	if err == nil {
		t.Fatal("blackholed classify answered")
	}

	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d during blackhole, want 200 (control plane must stay up)", resp.StatusCode)
	}
	postChaos(t, url, `{"clear":true}`)
	resp2, err := http.Post(url+"/v1/classify", "text/plain", strings.NewReader(validProgram))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d after lifting blackhole, want 200", resp2.StatusCode)
	}
}

// GET /chaosz reports the live knob state; die invokes the installed
// Exit with the kill-style code after answering.
func TestChaosStateAndDie(t *testing.T) {
	c, _, url := chaosServer(t)
	var exitCode atomic.Int64
	exited := make(chan struct{})
	c.Exit = func(code int) {
		exitCode.Store(int64(code))
		close(exited)
	}
	postChaos(t, url, `{"slow_ms":5,"error_every":7}`)

	resp, err := http.Get(url + "/chaosz")
	if err != nil {
		t.Fatal(err)
	}
	var st chaosState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.SlowMs != 5 || st.ErrorEvery != 7 {
		t.Fatalf("state = %+v, want slow_ms 5 error_every 7", st)
	}

	if resp := postChaos(t, url, `{"die":true}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("die request status %d", resp.StatusCode)
	}
	select {
	case <-exited:
	case <-time.After(2 * time.Second):
		t.Fatal("die never invoked Exit")
	}
	if exitCode.Load() != DieExitCode {
		t.Fatalf("exit code %d, want %d", exitCode.Load(), DieExitCode)
	}
}

// A server built without Chaos pays nothing: /chaosz is not routed and
// the nil intercept is a no-op.
func TestChaosDisabledByDefault(t *testing.T) {
	_, ts := testServer(t, Config{Window: -1})
	resp, err := http.Post(ts.URL+"/chaosz", "application/json", strings.NewReader(`{"die":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("/chaosz routed on a server without chaos")
	}
	var c *Chaos
	if c.intercept(nil, nil) {
		t.Fatal("nil chaos intercepted")
	}
}
