package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"advmal/internal/nn"
	"advmal/internal/pool"
)

// wsEngine returns a real inference engine factory over one shared net.
func wsEngine(net *nn.Network) func() BatchEngine {
	return func() BatchEngine { return net.CloneShared().WS() }
}

func randBatch(n, dim int, seed int64) [][]float64 {
	xs := make([][]float64, n)
	v := seed
	for i := range xs {
		xs[i] = make([]float64, dim)
		for j := range xs[i] {
			v = v*6364136223846793005 + 1442695040888963407
			xs[i][j] = float64(v%1000) / 1000
		}
	}
	return xs
}

// TestBatcherMatchesDirect submits concurrently through the batcher and
// checks every result is bit-identical to a direct workspace call — the
// scheduler must change scheduling, never results.
func TestBatcherMatchesDirect(t *testing.T) {
	net := nn.PaperCNN(7)
	b := NewBatcher(BatcherConfig{
		Workers: 2, BatchSize: 8, Window: 500 * time.Microsecond,
		QueueDepth: 256, NewEngine: wsEngine(net),
	})
	defer b.Close()
	ref := net.CloneShared().WS()
	xs := randBatch(48, net.InputDim(), 3)
	want := make([][]float64, len(xs))
	for i, x := range xs {
		want[i] = append([]float64(nil), ref.Probs(x)...)
	}
	var wg sync.WaitGroup
	for i, x := range xs {
		wg.Add(1)
		go func(i int, x []float64) {
			defer wg.Done()
			probs, err := b.Submit(context.Background(), x)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			for c := range probs {
				if probs[c] != want[i][c] {
					t.Errorf("row %d class %d: batcher %v direct %v", i, c, probs[c], want[i][c])
					return
				}
			}
		}(i, x)
	}
	wg.Wait()
}

// blockEngine lets a test hold batches open to fill the queue.
type blockEngine struct {
	release chan struct{} // receive = permission to finish one batch
	entered atomic.Int32  // batches currently or previously started
	classes int
}

func (e *blockEngine) ProbsBatch(xs [][]float64, dst [][]float64) [][]float64 {
	e.entered.Add(1)
	<-e.release
	out := make([][]float64, len(xs))
	for i := range out {
		out[i] = make([]float64, e.classes)
		out[i][0] = 1
	}
	return out
}

func (e *blockEngine) SafeProbs(x []float64) ([]float64, error) {
	p := make([]float64, e.classes)
	p[0] = 1
	return p, nil
}

// TestBatcherQueueFull pins fast-fail admission: with the worker wedged
// and the queue at depth, Submit returns ErrQueueFull immediately.
func TestBatcherQueueFull(t *testing.T) {
	eng := &blockEngine{release: make(chan struct{}), classes: 2}
	m := NewMetrics()
	b := NewBatcher(BatcherConfig{
		Workers: 1, BatchSize: 1, Window: 0, QueueDepth: 2,
		NewEngine: func() BatchEngine { return eng }, Metrics: m,
	})
	// Wedge the worker on one in-flight request, then fill the queue.
	results := make(chan error, 8)
	submit := func() {
		_, err := b.Submit(context.Background(), []float64{1})
		results <- err
	}
	go submit()
	// Wait until the worker is wedged inside the batch (the request is
	// out of the queue) before filling the queue itself.
	waitFor(t, func() bool { return eng.entered.Load() == 1 })
	go submit()
	go submit()
	waitFor(t, func() bool { return m.Requests.Load() == 3 })
	if _, err := b.Submit(context.Background(), []float64{1}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	if m.RejectedFul.Load() != 1 {
		t.Fatalf("queue-full rejections = %d, want 1", m.RejectedFul.Load())
	}
	// Release everything and verify the wedged requests complete.
	go func() {
		for i := 0; i < 3; i++ {
			eng.release <- struct{}{}
		}
	}()
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatalf("wedged request %d failed: %v", i, err)
		}
	}
	b.Close()
}

// TestBatcherDrainZeroDrops is the graceful-shutdown invariant: every
// request accepted before Close gets a result, and the accounting shows
// zero drops.
func TestBatcherDrainZeroDrops(t *testing.T) {
	net := nn.PaperCNN(11)
	b := NewBatcher(BatcherConfig{
		Workers: 2, BatchSize: 4, Window: 200 * time.Microsecond,
		QueueDepth: 256, NewEngine: wsEngine(net),
	})
	xs := randBatch(64, net.InputDim(), 5)
	var wg sync.WaitGroup
	var completed, rejected int64
	var mu sync.Mutex
	for _, x := range xs {
		wg.Add(1)
		go func(x []float64) {
			defer wg.Done()
			probs, err := b.Submit(context.Background(), x)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil && len(probs) == 2:
				completed++
			case errors.Is(err, ErrDraining):
				rejected++
			default:
				t.Errorf("unexpected result: probs=%v err=%v", probs, err)
			}
		}(x)
	}
	// Close while submissions are racing in: accepted ones must still
	// complete, late ones must see ErrDraining.
	b.Close()
	wg.Wait()
	st := b.Stats()
	if st.Dropped != 0 {
		t.Fatalf("drain dropped %d of %d accepted requests", st.Dropped, st.Accepted)
	}
	if completed != int64(st.Completed) {
		t.Fatalf("callers saw %d completions, batcher accounted %d", completed, st.Completed)
	}
	if completed+rejected != int64(len(xs)) {
		t.Fatalf("accounting leak: %d completed + %d rejected != %d submitted",
			completed, rejected, len(xs))
	}
	// Post-drain submissions are turned away, not deadlocked.
	if _, err := b.Submit(context.Background(), xs[0]); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-close submit: err = %v, want ErrDraining", err)
	}
}

// poisonEngine panics batch-wide when any row carries the poison marker,
// and fails only the poisoned row in per-row fallback mode — the fake
// models a data-dependent kernel fault.
type poisonEngine struct{ classes int }

func (e *poisonEngine) ProbsBatch(xs [][]float64, dst [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		if math.IsNaN(x[0]) {
			panic(fmt.Sprintf("poisoned row %d", i))
		}
		out[i] = make([]float64, e.classes)
		out[i][1] = x[0]
	}
	return out
}

func (e *poisonEngine) SafeProbs(x []float64) ([]float64, error) {
	if math.IsNaN(x[0]) {
		return nil, errors.New("poisoned input")
	}
	p := make([]float64, e.classes)
	p[1] = x[0]
	return p, nil
}

// TestBatcherPanicIsolation pins per-batch fault isolation: a row that
// panics the batched kernel fails alone via the per-row fallback, while
// every cohabitant of its batch still gets a correct verdict and the
// panic is counted.
func TestBatcherPanicIsolation(t *testing.T) {
	m := NewMetrics()
	b := NewBatcher(BatcherConfig{
		Workers: 1, BatchSize: 8, Window: time.Millisecond, QueueDepth: 64,
		NewEngine: func() BatchEngine { return &poisonEngine{classes: 2} },
		Metrics:   m,
	})
	defer b.Close()
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	probs := make([][]float64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x := []float64{float64(i + 1)}
			if i == 3 {
				x[0] = math.NaN()
			}
			probs[i], errs[i] = b.Submit(context.Background(), x)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if i == 3 {
			if errs[i] == nil {
				t.Fatalf("poisoned row classified successfully: %v", probs[i])
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("healthy row %d failed: %v", i, errs[i])
		}
		if probs[i][1] != float64(i+1) {
			t.Fatalf("healthy row %d: wrong result %v", i, probs[i])
		}
	}
	if m.Panics.Load() == 0 {
		t.Fatal("batch panic not counted")
	}
}

// TestBatcherPanicError checks the captured panic carries its stack
// pool-style when even the per-row fallback panics.
func TestBatcherPanicError(t *testing.T) {
	var pe *pool.PanicError
	_, err := probsBatchSafe(panicEngine{}, [][]float64{{1}}, nil)
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *pool.PanicError", err)
	}
	if pe.Value != "kernel fault" || len(pe.Stack) == 0 {
		t.Fatalf("panic not preserved: %+v", pe)
	}
}

type panicEngine struct{}

func (panicEngine) ProbsBatch([][]float64, [][]float64) [][]float64 { panic("kernel fault") }
func (panicEngine) SafeProbs([]float64) ([]float64, error)          { panic("kernel fault") }

// TestBatcherContextExpiry: a request whose context dies in queue gets
// its context error immediately; the batcher still executes and accounts
// it without blocking the worker.
func TestBatcherContextExpiry(t *testing.T) {
	eng := &blockEngine{release: make(chan struct{}), classes: 2}
	m := NewMetrics()
	b := NewBatcher(BatcherConfig{
		Workers: 1, BatchSize: 1, Window: 0, QueueDepth: 8,
		NewEngine: func() BatchEngine { return eng }, Metrics: m,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := b.Submit(ctx, []float64{1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if m.Expired.Load() != 1 {
		t.Fatalf("expired = %d, want 1", m.Expired.Load())
	}
	// The worker must still be able to finish the abandoned request
	// (buffered done channel) and then drain cleanly.
	eng.release <- struct{}{}
	b.Close()
	if st := b.Stats(); st.Dropped != 0 {
		t.Fatalf("abandoned request dropped: %+v", st)
	}
}

// TestBatcherBadInput pins Submit-time dimension validation.
func TestBatcherBadInput(t *testing.T) {
	b := NewBatcher(BatcherConfig{
		Workers: 1, InputDim: 23,
		NewEngine: func() BatchEngine { return &blockEngine{release: make(chan struct{}), classes: 2} },
	})
	defer b.Close()
	if _, err := b.Submit(context.Background(), make([]float64, 7)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", err)
	}
}

// waitFor polls cond with a deadline; the queue tests use it to reach a
// known scheduler state without sleeps.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
