package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"advmal/internal/core"
	"advmal/internal/features"
	"advmal/internal/nn"
)

// swapModel builds a complete snapshot over an identity scaler and the
// given network seed — distinct seeds give distinct untrained weights,
// which is all version attribution needs.
func swapModel(seed int64) *core.Model {
	min := make([]float64, features.NumFeatures)
	max := make([]float64, features.NumFeatures)
	for i := range max {
		max[i] = 1
	}
	return &core.Model{
		Scaler:    &features.Scaler{Min: min, Max: max},
		Net:       nn.PaperCNN(seed),
		Extractor: features.NewExtractor(64),
	}
}

// TestAdminSwap covers the admin surface end to end: /v1/model reports
// the serving version, a valid model gob swaps in with correct version
// bookkeeping, garbage is a 400, and without Config.Admin the mutating
// endpoint does not exist.
func TestAdminSwap(t *testing.T) {
	h := core.NewHandle(swapModel(0))
	_, ts := testServer(t, Config{Handle: h, Admin: true, Window: -1})

	var info struct {
		Version uint64 `json:"version"`
		Swaps   uint64 `json:"swaps"`
	}
	getModel := func() {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/model")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/v1/model: status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
	}
	getModel()
	if info.Version != 1 || info.Swaps != 0 {
		t.Fatalf("fresh server: %+v, want version 1 swaps 0", info)
	}

	var blob bytes.Buffer
	if err := swapModel(5).Save(&blob); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/admin/swap", "application/octet-stream", bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var sr swapResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sr.OldVersion != 1 || sr.NewVersion != 2 {
		t.Fatalf("swap: status %d response %+v, want 200 {1 2}", resp.StatusCode, sr)
	}
	getModel()
	if info.Version != 2 || info.Swaps != 1 {
		t.Fatalf("after swap: %+v, want version 2 swaps 1", info)
	}

	// A corrupt payload must be rejected without touching the handle.
	resp, err = http.Post(ts.URL+"/admin/swap", "application/octet-stream", strings.NewReader("not a model gob"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage swap: status %d, want 400", resp.StatusCode)
	}
	if h.Version() != 2 || h.Swaps() != 1 {
		t.Fatalf("garbage swap disturbed the handle: version %d swaps %d", h.Version(), h.Swaps())
	}

	// Admin off: the mutating endpoint is absent, the read-only one stays.
	_, tsRO := testServer(t, Config{Handle: core.NewHandle(swapModel(0)), Window: -1})
	resp, err = http.Post(tsRO.URL+"/admin/swap", "application/octet-stream", bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("swap without -admin: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(tsRO.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/model without -admin: status %d, want 200", resp.StatusCode)
	}
}

// TestSwapMetrics pins the swap and lifecycle series on /metrics:
// advmal_model_version tracks the handle, advmal_model_swaps_total
// counts installs, and a published LifecycleStatus adds the canary
// counters and per-gate series.
func TestSwapMetrics(t *testing.T) {
	h := core.NewHandle(swapModel(0))
	s, ts := testServer(t, Config{Handle: h, Window: -1})

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.String()
	}
	text := scrape()
	for _, want := range []string{"advmal_model_version 1", "advmal_model_swaps_total 0"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}
	if strings.Contains(text, "advmal_canary_runs_total") {
		t.Error("/metrics shows canary series with no lifecycle published")
	}

	if _, err := h.Swap(swapModel(9)); err != nil {
		t.Fatal(err)
	}
	s.SetLifecycle(&LifecycleStatus{
		CanaryRuns: 3, CanaryPassed: 2, CanaryFailed: 1,
		Gates: []GateStatus{
			{Name: "accuracy", Live: 0.9, Candidate: 0.91, Margin: 0.02, Pass: true},
			{Name: "evasion:FGSM", Live: 0.4, Candidate: 0.5, Margin: -0.05, Pass: false},
		},
	})
	text = scrape()
	for _, want := range []string{
		"advmal_model_version 2",
		"advmal_model_swaps_total 1",
		"advmal_canary_runs_total 3",
		"advmal_canary_passed_total 2",
		"advmal_canary_failed_total 1",
		`advmal_canary_gate{gate="accuracy"} 1`,
		`advmal_canary_gate{gate="evasion:FGSM"} 0`,
		`advmal_canary_gate_margin{gate="accuracy"} 0.02`,
		`advmal_canary_gate_margin{gate="evasion:FGSM"} -0.05`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestServerSwapUnderLoad is the zero-drop hot-swap test at the HTTP
// layer: concurrent /v1/classify/vector traffic while the handle swaps
// between two networks. Every response must be 200, and each verdict's
// model_version must name weights that bitwise-reproduce its probs —
// raw rows are scaled and scored under ONE pinned snapshot, so a probs
// vector from one net stamped with the other net's version would be a
// mixed-version wire result. (encoding/json round-trips float64 exactly,
// so bitwise comparison across the wire is sound.)
func TestServerSwapUnderLoad(t *testing.T) {
	nets := []*nn.Network{nn.PaperCNN(1), nn.PaperCNN(2)}
	vec := make([]float64, features.NumFeatures)
	for i := range vec {
		vec[i] = 0.25
	}
	// Identity scaler: raw == scaled, so the allocating oracle is the
	// net's answer on vec directly (the batch kernels are bit-identical
	// to it — see internal/nn/batch.go).
	oracles := make([][]float64, len(nets))
	for i, net := range nets {
		oracles[i] = append([]float64(nil), net.Probs(vec)...)
	}
	if oracles[0][0] == oracles[1][0] {
		t.Fatal("oracle networks agree; the test cannot attribute results")
	}
	// Version v serves nets[(v+1)%2]: v1 is nets[0], each swap i installs
	// nets[(i+1)%2] at version i+2.
	oracleFor := func(version uint64) []float64 { return oracles[(version+1)%2] }

	h := core.NewHandle(&core.Model{
		Scaler:    swapModel(0).Scaler,
		Net:       nets[0],
		Extractor: features.NewExtractor(64),
	})
	_, ts := testServer(t, Config{Handle: h, Window: -1, QueueDepth: 256})

	body, _ := json.Marshal(vectorRequest{Name: "swap-load", Vector: vec})
	const (
		readers   = 6
		perReader = 120
		swaps     = 60
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perReader; i++ {
				resp, err := http.Post(ts.URL+"/v1/classify/vector", "application/json", bytes.NewReader(body))
				if err != nil {
					fail(err)
					return
				}
				var v Verdict
				derr := json.NewDecoder(resp.Body).Decode(&v)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail(errStatus(resp.StatusCode))
					return
				}
				if derr != nil {
					fail(derr)
					return
				}
				if v.ModelVersion == 0 {
					fail(errNoVersion)
					return
				}
				want := oracleFor(v.ModelVersion)
				if len(v.Probs) != len(want) {
					fail(errMixed(v, want))
					return
				}
				for j := range want {
					if v.Probs[j] != want[j] {
						fail(errMixed(v, want))
						return
					}
				}
			}
		}()
	}

	lastVer := h.Version()
	for i := 0; i < swaps; i++ {
		m := &core.Model{
			Scaler:    swapModel(0).Scaler,
			Net:       nets[(i+1)%len(nets)],
			Extractor: features.NewExtractor(64),
		}
		if _, err := h.Swap(m); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		if v := h.Version(); v != lastVer+1 {
			t.Fatalf("swap %d: version %d, want %d", i, v, lastVer+1)
		}
		lastVer++
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if h.Version() != uint64(1+swaps) || h.Swaps() != swaps {
		t.Fatalf("final version %d swaps %d, want %d and %d", h.Version(), h.Swaps(), 1+swaps, swaps)
	}
}

func errStatus(code int) error {
	return fmt.Errorf("non-200 response during hot swap: %d %s", code, http.StatusText(code))
}

var errNoVersion = fmt.Errorf("verdict carries no model_version")

func errMixed(v Verdict, want []float64) error {
	return fmt.Errorf("verdict probs %v do not match version %d's oracle %v (mixed-version wire result)",
		v.Probs, v.ModelVersion, want)
}
