package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"advmal/internal/core"
	"advmal/internal/features"
	"advmal/internal/gea"
	"advmal/internal/index"
	"advmal/internal/nn"
	"advmal/internal/synth"
)

// nanEngine is a fake inference engine whose probabilities are NaN —
// the failure mode a numerically blown-up model produces.
type nanEngine struct{}

func (nanEngine) ProbsBatch(xs [][]float64, dst [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i := range out {
		out[i] = []float64{math.NaN(), math.NaN()}
	}
	return out
}

func (nanEngine) SafeProbs(x []float64) ([]float64, error) {
	return []float64{math.NaN(), math.NaN()}, nil
}

// TestServerNaNProbs is the regression test for the wire-path NaN bug:
// encoding/json refuses NaN, so before the guard a blown-up model
// produced an opaque mid-response encoder failure (status 200 already
// written, body truncated). Now the verdict is rejected up front with a
// typed 500 whose body is a well-formed JSON error envelope.
func TestServerNaNProbs(t *testing.T) {
	_, ts := testServer(t, Config{
		Window:    -1,
		NewEngine: func() BatchEngine { return nanEngine{} },
	})
	resp, body := postClassify(t, ts, "text/plain", validProgram)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500; body %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body is not valid JSON: %q (%v)", body, err)
	}
	if !strings.Contains(eb.Error, "non-finite") {
		t.Fatalf("error %q does not name the non-finite cause", eb.Error)
	}
}

// TestMakeVerdictNonFinite pins the guard itself across NaN and both
// infinities, and that finite probabilities still pass.
func TestMakeVerdictNonFinite(t *testing.T) {
	for _, bad := range [][]float64{
		{math.NaN(), 0.5},
		{0.5, math.Inf(1)},
		{math.Inf(-1), 0.5},
	} {
		if _, err := MakeVerdict("x", bad, 0, 0, false, 1); err == nil {
			t.Errorf("MakeVerdict(%v) succeeded, want ErrNonFiniteProbs", bad)
		}
	}
	if _, err := MakeVerdict("x", []float64{0.25, 0.75}, 1, 0, true, 1); err != nil {
		t.Fatalf("finite probs rejected: %v", err)
	}
}

// TestVerdictHasGraphWire is the regression test for the omitempty bug:
// a single-block program genuinely has zero edges, but `omitempty` on
// Edges erased the field, making "zero edges" indistinguishable from
// "no CFG summary" (vector-path verdicts). The wire form now always
// carries blocks/edges plus the explicit has_graph marker.
func TestVerdictHasGraphWire(t *testing.T) {
	_, ts := testServer(t, Config{Window: -1})

	// A straight-line program: one block, zero edges.
	resp, body := postClassify(t, ts, "text/plain", "movi r0, 1\nret\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	for _, want := range []string{`"has_graph":true`, `"edges":0`, `"blocks":1`} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("classify verdict missing %s on the wire: %s", want, body)
		}
	}

	// The vector path has no CFG at all: has_graph false.
	vec := make([]float64, features.NumFeatures)
	reqBody, _ := json.Marshal(vectorRequest{Vector: vec})
	vresp, err := http.Post(ts.URL+"/v1/classify/vector", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(vresp.Body)
	if vresp.StatusCode != http.StatusOK {
		t.Fatalf("vector status %d, body %s", vresp.StatusCode, buf.Bytes())
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"has_graph":false`)) {
		t.Errorf("vector verdict should carry has_graph:false: %s", buf.Bytes())
	}
}

// testCorpus builds a small labeled similarity corpus in scaled space.
// With testDetector's identity scaler, raw query vectors pass through
// unchanged, so tests can aim queries at known cluster centers.
func testCorpus(t *testing.T) *index.Corpus {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	vecs, labels := synth.LabeledVectors(rng, 600, features.NumFeatures)
	c, err := index.BuildCorpus(index.HNSWConfig{Seed: 7}, vecs, labels, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func postSimilar(t *testing.T, ts *httptest.Server, path, contentType, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestSimilarWithoutIndex: a replica started without -index answers 501
// (≥500, so the gateway's retry ladder tries another replica).
func TestSimilarWithoutIndex(t *testing.T) {
	_, ts := testServer(t, Config{Window: -1})
	resp, body := postSimilar(t, ts, "/v1/similar", "application/json", `{"vector":[0.5]}`)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501; body %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("-index")) {
		t.Fatalf("error should tell the operator how to load an index: %s", body)
	}
}

// TestSimilarVectorQuery drives the vector form end to end: attribution
// agrees with the exact nearest labels, ?k= is honored, an indexed
// vector comes back as a near-duplicate, and bad parameters are 400s.
func TestSimilarVectorQuery(t *testing.T) {
	c := testCorpus(t)
	_, ts := testServer(t, Config{Window: -1, Corpus: c})

	// Query at an indexed point: its own label must win attribution and
	// the near-duplicate radar must fire.
	store := c.HNSW.Store()
	q := store.Vec(42)
	reqBody, _ := json.Marshal(similarRequest{Name: "probe", Vector: q})
	resp, body := postSimilar(t, ts, "/v1/similar?k=3", "application/json", string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var sr SimilarResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	if sr.Name != "probe" || sr.K != 3 || len(sr.Hits) != 3 {
		t.Fatalf("k not honored: %+v", sr)
	}
	if sr.Hits[0].ID != 42 || sr.Hits[0].Dist != 0 {
		t.Fatalf("indexed vector should be its own nearest hit: %+v", sr.Hits[0])
	}
	if !sr.NearDuplicate {
		t.Fatalf("exact indexed vector not flagged near-duplicate: %+v", sr)
	}
	if sr.Family == "" || sr.Votes < 1 {
		t.Fatalf("attribution missing: %+v", sr)
	}
	if sr.Triage.Flagged {
		t.Fatalf("on-manifold query triage-flagged: %+v", sr.Triage)
	}

	// Default k.
	resp, body = postSimilar(t, ts, "/v1/similar", "application/json", string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	sr = SimilarResponse{}
	json.Unmarshal(body, &sr)
	if sr.K != similarDefaultK {
		t.Fatalf("default k = %d, want %d", sr.K, similarDefaultK)
	}

	// Bad inputs.
	for name, tc := range map[string]struct {
		path, body string
		want       int
	}{
		"bad-k":        {"/v1/similar?k=zero", string(reqBody), http.StatusBadRequest},
		"negative-k":   {"/v1/similar?k=-2", string(reqBody), http.StatusBadRequest},
		"empty":        {"/v1/similar", `{}`, http.StatusBadRequest},
		"wrong-dim":    {"/v1/similar", `{"vector":[1,2,3]}`, http.StatusBadRequest},
		"invalid-json": {"/v1/similar", `{"vector":`, http.StatusBadRequest},
	} {
		resp, body := postSimilar(t, ts, tc.path, "application/json", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d; body %s", name, resp.StatusCode, tc.want, body)
		}
	}
}

// TestSimilarProgramQuery posts raw assembly: the program is vectorized
// through the shared detector pipeline before the index lookup.
func TestSimilarProgramQuery(t *testing.T) {
	_, ts := testServer(t, Config{Window: -1, Corpus: testCorpus(t)})
	resp, body := postSimilar(t, ts, "/v1/similar?k=7", "text/plain", validProgram)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var sr SimilarResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Hits) != 7 {
		t.Fatalf("got %d hits, want 7", len(sr.Hits))
	}
	// A 4-instruction toy program sits far from every synthetic family
	// cluster: exactly what triage exists to flag.
	if !sr.Triage.Flagged {
		t.Fatalf("off-manifold program not triage-flagged: %+v", sr.Triage)
	}
	resp, _ = postSimilar(t, ts, "/v1/similar", "text/plain", "not a program")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unparseable program: status %d, want 400", resp.StatusCode)
	}
}

// TestTriageFlagsGEASplices is the adversarial acceptance test: verdicts
// for GEA-spliced programs (a malware body embedded into a benign
// target's CFG behind an opaque predicate, per the paper's Fig. 4) must
// score strictly higher triage distances than verdicts for the clean
// held-out programs they were built from — the splice moves the feature
// vector off the corpus manifold, which is exactly the signal the triage
// threshold is calibrated to catch.
func TestTriageFlagsGEASplices(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.NumBenign = 40
	cfg.NumMal = 120
	sys := core.New(cfg)
	if err := sys.BuildCorpus(); err != nil {
		t.Fatal(err)
	}
	corpus, err := sys.BuildCorpusIndex(index.HNSWConfig{}, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	// Triage needs no trained weights — only the fitted scaler and the
	// labeled index — so an untrained net keeps the test fast.
	det := &core.Detector{Scaler: sys.Scaler, Net: nn.PaperCNN(0), Extractor: sys.Extractor}
	_, ts := testServer(t, Config{Detector: det, Window: -1, Corpus: corpus})

	triageDist := func(progText string) float64 {
		t.Helper()
		resp, body := postClassify(t, ts, "text/plain", progText)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, body %s", resp.StatusCode, body)
		}
		var v Verdict
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Triage == nil {
			t.Fatalf("verdict missing triage block: %s", body)
		}
		return v.Triage.Distance
	}

	// Held-out split: malware originals to splice, one benign target to
	// splice into.
	var malware []*synth.Sample
	var benign *synth.Sample
	for _, r := range sys.Test.Records {
		if r.Sample.Family == synth.Benign {
			if benign == nil {
				benign = r.Sample
			}
			continue
		}
		if len(malware) < 8 {
			malware = append(malware, r.Sample)
		}
	}
	if benign == nil || len(malware) < 4 {
		t.Fatalf("test split too small: benign=%v malware=%d", benign != nil, len(malware))
	}

	var clean, spliced []float64
	for _, m := range malware {
		clean = append(clean, triageDist(m.Prog.String()))
		merged, err := gea.Merge(m.Prog, benign.Prog)
		if err != nil {
			t.Fatalf("gea.Merge(%s): %v", m.Name, err)
		}
		spliced = append(spliced, triageDist(merged.String()))
	}
	median := func(xs []float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	mc, ms := median(clean), median(spliced)
	t.Logf("triage distance: clean median %.4f, GEA-spliced median %.4f (threshold %.4f)",
		mc, ms, corpus.Triage.Threshold)
	if ms <= mc {
		t.Fatalf("GEA splices should sit farther from the corpus manifold: spliced median %.4f ≤ clean median %.4f", ms, mc)
	}
	// And each splice scores higher than the clean program it embeds.
	higher := 0
	for i := range clean {
		if spliced[i] > clean[i] {
			higher++
		}
	}
	if higher*2 <= len(clean) {
		t.Fatalf("only %d/%d splices scored above their clean original", higher, len(clean))
	}
}
