package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"advmal/internal/pool"
)

// Admission and lifecycle errors. Submit returns exactly one of these
// (or the request context's error) — the server maps them to 429/503/504.
var (
	// ErrQueueFull is the fast-fail admission response: the bounded
	// queue is at its depth limit, so the request is rejected
	// immediately instead of waiting.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDraining means Close has begun: the batcher no longer accepts
	// work but will finish everything already queued.
	ErrDraining = errors.New("serve: draining")
	// ErrBadInput means the submitted vector has the wrong dimension.
	ErrBadInput = errors.New("serve: bad input dimension")
)

// BatchEngine is the inference contract the batcher schedules onto: the
// batched fast path plus a recover-guarded per-row fallback used to
// isolate a poisoned row when a batch panics. *nn.Workspace satisfies
// it; tests substitute fakes.
type BatchEngine interface {
	ProbsBatch(xs [][]float64, dst [][]float64) [][]float64
	SafeProbs(x []float64) ([]float64, error)
}

// BatcherConfig configures a Batcher. Zero values select the defaults
// noted on each field.
type BatcherConfig struct {
	// Workers is the number of scheduler goroutines, each owning one
	// BatchEngine. Default GOMAXPROCS.
	Workers int
	// BatchSize is the coalescing cap: a worker flushes a batch once it
	// holds this many requests. Default 64.
	BatchSize int
	// Window is the coalescing deadline: a worker holding at least one
	// request flushes no later than this after it picked up the first,
	// bounding the latency cost of waiting for peers. Zero means flush
	// greedily (take whatever is already queued, never wait).
	Window time.Duration
	// QueueDepth bounds the request queue; a full queue fast-fails
	// Submit with ErrQueueFull. Default 1024.
	QueueDepth int
	// InputDim, when positive, validates vector length at Submit time.
	InputDim int
	// NewEngine builds one engine per worker. Required.
	NewEngine func() BatchEngine
	// Metrics, when non-nil, receives batch-size, queue-wait, and
	// inference-latency observations plus panic counts.
	Metrics *Metrics
}

// request is one queued classification.
type request struct {
	x   []float64
	enq time.Time
	// done is buffered so a worker can always deliver, even when the
	// submitter abandoned the request on context expiry.
	done chan result
}

type result struct {
	probs []float64
	// version stamps the model snapshot that scored this row (0 when the
	// engine is not version-aware, e.g. test fakes).
	version uint64
	err     error
}

// versionedEngine is the optional BatchEngine extension the batcher uses
// to attribute each result to the model snapshot that produced it. The
// handle-bound serving engine implements it; the batcher reads it on the
// worker goroutine immediately after the batch executes.
type versionedEngine interface {
	ModelVersion() uint64
}

// engineVersion returns the engine's current model version, 0 for
// engines that are not version-aware.
func engineVersion(eng BatchEngine) uint64 {
	if v, ok := eng.(versionedEngine); ok {
		return v.ModelVersion()
	}
	return 0
}

// Batcher is the micro-batching scheduler. Submit enqueues a vector
// into a bounded channel; worker goroutines coalesce queued requests
// into batches — flushing when BatchSize is reached or Window elapses —
// and execute them on per-worker engines. A panic inside a batch is
// isolated pool-style: the batch falls back to recover-guarded per-row
// execution so one poisoned vector fails alone.
//
// Lifecycle: Close stops admission and then drains — closing the queue
// channel lets workers keep receiving buffered requests until empty, so
// every request accepted before Close observes a result (the zero-drop
// drain invariant; Stats reports the accounting).
type Batcher struct {
	cfg     BatcherConfig
	queue   chan *request
	mu      sync.RWMutex // guards draining vs. send-on-closed-channel
	drain   bool
	wg      sync.WaitGroup
	started atomic.Uint64 // accepted into the queue
	done    atomic.Uint64 // results delivered (incl. to abandoned requests)
}

// NewBatcher starts the worker pool and returns the batcher.
func NewBatcher(cfg BatcherConfig) *Batcher {
	if cfg.NewEngine == nil {
		panic("serve: BatcherConfig.NewEngine is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	b := &Batcher{cfg: cfg, queue: make(chan *request, cfg.QueueDepth)}
	for w := 0; w < cfg.Workers; w++ {
		b.wg.Add(1)
		go b.worker()
	}
	return b
}

// Submit enqueues x and blocks until its result, the context's deadline,
// or an admission failure. The returned probability vector is the
// caller's to keep. Admission is fast-fail: a full queue returns
// ErrQueueFull immediately (the server turns that into 429), and a
// draining batcher returns ErrDraining (503).
func (b *Batcher) Submit(ctx context.Context, x []float64) ([]float64, error) {
	probs, _, err := b.SubmitV(ctx, x)
	return probs, err
}

// SubmitV is Submit plus attribution: it also returns the version stamp
// of the model snapshot that scored the vector (0 when the engine is
// not version-aware). Replayed corpora and red-team logs keep it so
// every verdict is attributable to the exact weights that produced it,
// even across a hot swap.
func (b *Batcher) SubmitV(ctx context.Context, x []float64) ([]float64, uint64, error) {
	if b.cfg.InputDim > 0 && len(x) != b.cfg.InputDim {
		return nil, 0, fmt.Errorf("%w: got %d features, want %d", ErrBadInput, len(x), b.cfg.InputDim)
	}
	req := &request{x: x, enq: time.Now(), done: make(chan result, 1)}

	// The read lock makes admission atomic with respect to Close: the
	// queue channel cannot be closed between the drain check and the
	// send, so Submit never panics on a closed channel.
	b.mu.RLock()
	if b.drain {
		b.mu.RUnlock()
		b.cfg.Metrics.reject(true)
		return nil, 0, ErrDraining
	}
	select {
	case b.queue <- req:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		b.cfg.Metrics.reject(false)
		return nil, 0, ErrQueueFull
	}
	b.started.Add(1)
	if m := b.cfg.Metrics; m != nil {
		m.Requests.Add(1)
	}

	select {
	case res := <-req.done:
		return res.probs, res.version, res.err
	case <-ctx.Done():
		// The worker will still execute the request and deliver into
		// the buffered channel; only this waiter gives up.
		if m := b.cfg.Metrics; m != nil {
			m.Expired.Add(1)
		}
		return nil, 0, ctx.Err()
	}
}

// reject records an admission rejection (nil-safe).
func (m *Metrics) reject(draining bool) {
	if m == nil {
		return
	}
	if draining {
		m.RejectedDrn.Add(1)
	} else {
		m.RejectedFul.Add(1)
	}
}

// Draining reports whether Close has begun. The server's /readyz
// consults it so a batcher closed directly — not via the NotReady →
// Shutdown → Drain sequence — still flips readiness before any request
// can be refused with ErrDraining.
func (b *Batcher) Draining() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.drain
}

// Close stops admission, waits for every queued request to be executed
// and answered, and then returns. Safe to call more than once.
func (b *Batcher) Close() {
	b.mu.Lock()
	if !b.drain {
		b.drain = true
		close(b.queue)
	}
	b.mu.Unlock()
	b.wg.Wait()
}

// BatcherStats is the drain accounting: Accepted requests entered the
// queue, Completed received results. After Close these are equal —
// Dropped is the difference and the zero-drop invariant is Dropped == 0.
type BatcherStats struct {
	Accepted  uint64 `json:"accepted"`
	Completed uint64 `json:"completed"`
	Dropped   uint64 `json:"dropped"`
}

// Stats returns the current accounting. Only stable after Close.
func (b *Batcher) Stats() BatcherStats {
	acc, done := b.started.Load(), b.done.Load()
	return BatcherStats{Accepted: acc, Completed: done, Dropped: acc - done}
}

// worker owns one engine and loops: block for the batch's first request,
// then coalesce more until BatchSize or Window, then execute. A closed
// queue keeps yielding its buffered requests before reporting closed, so
// the drain path needs no special casing — workers simply run the queue
// dry and exit.
func (b *Batcher) worker() {
	defer b.wg.Done()
	eng := b.cfg.NewEngine()
	var (
		batch []*request
		xs    [][]float64
		dst   [][]float64
	)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		first, ok := <-b.queue
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		if b.cfg.Window > 0 {
			timer.Reset(b.cfg.Window)
			expired := false
		fill:
			for len(batch) < b.cfg.BatchSize {
				select {
				case req, ok := <-b.queue:
					if !ok {
						break fill
					}
					batch = append(batch, req)
				case <-timer.C:
					expired = true
					break fill
				}
			}
			if !expired && !timer.Stop() {
				<-timer.C
			}
		} else {
			// Greedy flush: take whatever is already queued, never wait.
			for len(batch) < b.cfg.BatchSize {
				select {
				case req, ok := <-b.queue:
					if !ok {
						goto exec
					}
					batch = append(batch, req)
				default:
					goto exec
				}
			}
		}
	exec:
		dst = b.exec(eng, batch, &xs, dst)
	}
}

// exec runs one batch and answers every request in it. The engine's dst
// rows are reused across batches, so each result gets a private copy.
func (b *Batcher) exec(eng BatchEngine, batch []*request, xs *[][]float64, dst [][]float64) [][]float64 {
	m := b.cfg.Metrics
	start := time.Now()
	if m != nil {
		m.BatchSize.Observe(float64(len(batch)))
		for _, req := range batch {
			m.QueueWait.ObserveDuration(start.Sub(req.enq))
		}
	}
	*xs = (*xs)[:0]
	for _, req := range batch {
		*xs = append(*xs, req.x)
	}
	out, err := probsBatchSafe(eng, *xs, dst)
	if err == nil {
		dst = out
		// Read the version on the worker goroutine, after the batch ran
		// and before the next bind can move the engine to a new snapshot:
		// this stamps exactly the weights that scored these rows.
		ver := engineVersion(eng)
		for i, req := range batch {
			probs := make([]float64, len(dst[i]))
			copy(probs, dst[i])
			req.done <- result{probs: probs, version: ver}
			b.done.Add(1)
		}
	} else {
		// The batch panicked. Re-run each row alone through the
		// recover-guarded per-row path so the poisoned row fails with
		// its own error and every healthy row still gets its verdict.
		if m != nil {
			m.Panics.Add(1)
		}
		for _, req := range batch {
			probs, rerr := eng.SafeProbs(req.x)
			if rerr == nil {
				probs = append([]float64(nil), probs...)
			}
			req.done <- result{probs: probs, version: engineVersion(eng), err: rerr}
			b.done.Add(1)
		}
	}
	if m != nil {
		m.InferLat.ObserveDuration(time.Since(start))
	}
	return dst
}

// probsBatchSafe is the batch-level panic boundary, capturing faults
// with their stacks pool-style so they stay diagnosable.
func probsBatchSafe(eng BatchEngine, xs [][]float64, dst [][]float64) (out [][]float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, &pool.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return eng.ProbsBatch(xs, dst), nil
}
