// Package serve is the online detection service: a stdlib-only HTTP
// front end over a loaded core.Detector whose inference core is a
// micro-batching scheduler (see Batcher). Requests queue into a bounded
// channel, workers coalesce them into batches — flushing on batch size
// or a latency window — and execute them on per-worker zero-allocation
// nn.Workspaces via ProbsBatch, so single-request latency stays within
// the window while throughput approaches the batched-kernel ceiling.
//
// The package also owns the wire schema (Verdict) shared with
// cmd/classify's -json mode, the serving metrics registry, and the
// latency-summary helpers shared with cmd/loadgen and cmd/bench.
package serve

import "advmal/internal/nn"

// Verdict is the service's response schema for one classified program —
// also emitted, one object per line, by `classify -json`, so offline and
// online verdicts are diffable.
type Verdict struct {
	// Name identifies the program: the request's name field or the
	// source file path. Empty when the caller supplied neither.
	Name string `json:"name,omitempty"`
	// Class is the predicted class index (0 benign, 1 malware).
	Class int `json:"class"`
	// Label is the human-readable class name.
	Label string `json:"label"`
	// Confidence is the predicted class's probability.
	Confidence float64 `json:"confidence"`
	// Probs is the full class-probability vector.
	Probs []float64 `json:"probs"`
	// Blocks and Edges summarize the program's CFG. Omitted for raw
	// feature-vector requests, which carry no graph.
	Blocks int `json:"blocks,omitempty"`
	Edges  int `json:"edges,omitempty"`
}

// Label returns the wire label for a class index.
func Label(class int) string {
	if class == nn.ClassMalware {
		return "malware"
	}
	return "benign"
}

// MakeVerdict assembles a Verdict from a probability vector and CFG
// summary counts (pass zeros for vector-only requests).
func MakeVerdict(name string, probs []float64, blocks, edges int) Verdict {
	class := nn.Argmax(probs)
	return Verdict{
		Name:       name,
		Class:      class,
		Label:      Label(class),
		Confidence: probs[class],
		Probs:      probs,
		Blocks:     blocks,
		Edges:      edges,
	}
}
