// Package serve is the online detection service: a stdlib-only HTTP
// front end over a core.Handle — the atomic pointer to the current
// immutable core.Model snapshot — whose inference core is a
// micro-batching scheduler (see Batcher). Workers re-bind to the
// handle's snapshot per batch and scale + infer under that one pinned
// Model, so a hot swap (POST /admin/swap, or the online retraining
// loop in internal/lifecycle) never mixes versions and never drops a
// request. Requests queue into a bounded
// channel, workers coalesce them into batches — flushing on batch size
// or a latency window — and execute them on per-worker zero-allocation
// nn.Workspaces via ProbsBatch, so single-request latency stays within
// the window while throughput approaches the batched-kernel ceiling.
//
// When a similarity corpus (index.Corpus) is wired in, the service also
// answers /v1/similar — k-NN family attribution and near-duplicate
// detection over the labeled training corpus — and classify verdicts
// carry a triage block scoring each query's distance to the corpus
// manifold (GEA splices land far from it; see internal/index).
//
// The package also owns the wire schema (Verdict) shared with
// cmd/classify's -json mode, the serving metrics registry, and the
// latency-summary helpers shared with cmd/loadgen and cmd/bench.
package serve

import (
	"errors"
	"math"

	"advmal/internal/core"
	"advmal/internal/index"
	"advmal/internal/nn"
)

// ErrNonFiniteProbs reports an inference result that cannot cross the
// wire: encoding/json refuses NaN and ±Inf, so a degenerate model (or a
// SafeProbs fallback row) surfacing them must become a typed error —
// the server maps it to a clean 500 instead of failing mid-response
// with an opaque encoder error.
var ErrNonFiniteProbs = errors.New("serve: inference produced non-finite probabilities")

// Verdict is the service's response schema for one classified program —
// also emitted, one object per line, by `classify -json`, so offline and
// online verdicts are diffable.
type Verdict struct {
	// Name identifies the program: the request's name field or the
	// source file path. Empty when the caller supplied neither.
	Name string `json:"name,omitempty"`
	// Class is the predicted class index: 0 is always benign; under the
	// binary head 1 is malware, under the family head 1..K-1 are the
	// malware families in core.FamilyClasses order.
	Class int `json:"class"`
	// Label is the binary detection verdict ("benign" or "malware") —
	// stable across head widths, so binary and family-head deployments
	// stay diffable on the detection axis.
	Label string `json:"label"`
	// Malicious is the binary verdict as a bool (class != 0); the
	// red-team harness scores evasion on it without re-deriving label
	// semantics.
	Malicious bool `json:"malicious"`
	// Family names the predicted class under a family-head model
	// ("benign", "mirai", ...). Empty under the binary head, which
	// cannot attribute a family.
	Family string `json:"family,omitempty"`
	// Confidence is the predicted class's probability.
	Confidence float64 `json:"confidence"`
	// Probs is the full class-probability vector — one entry per head
	// class, so its length tells the caller the serving head width.
	Probs []float64 `json:"probs"`
	// HasGraph reports whether this verdict came from a real program
	// with a CFG (true) or a raw feature-vector request (false). It is
	// an explicit marker — not omitempty inference — because a
	// single-block, zero-edge program's {0 blocks is impossible, but 1
	// block / 0 edges is real} summary must stay distinguishable from a
	// vector-only verdict for offline/online diffing.
	HasGraph bool `json:"has_graph"`
	// Blocks and Edges summarize the program's CFG; both zero (and
	// meaningless) when HasGraph is false. Always serialized — a
	// legitimate zero is a value, not an absence.
	Blocks int `json:"blocks"`
	Edges  int `json:"edges"`
	// Triage, when a similarity corpus is wired into the server, scores
	// the query's distance to its nearest labeled corpus neighbor.
	Triage *index.TriageInfo `json:"triage,omitempty"`
	// ModelVersion stamps the model snapshot whose weights produced this
	// verdict — across a hot swap, old and new verdicts stay
	// distinguishable in logs and replayed corpora. Offline tools
	// (cmd/classify) stamp the loaded model's version the same way.
	ModelVersion uint64 `json:"model_version"`
}

// Label returns the binary wire label for a class index. Class 0 is
// benign in every head width; any other class is a malware family, so
// it collapses to "malware".
func Label(class int) string {
	if class != nn.ClassBenign {
		return "malware"
	}
	return "benign"
}

// MakeVerdict assembles a Verdict from a probability vector, CFG
// summary counts (pass zeros and hasGraph=false for vector-only
// requests), and the version of the model that produced the probs.
// Non-finite probabilities are rejected with ErrNonFiniteProbs before
// they can poison the JSON encoder.
func MakeVerdict(name string, probs []float64, blocks, edges int, hasGraph bool, modelVersion uint64) (Verdict, error) {
	for _, p := range probs {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return Verdict{}, ErrNonFiniteProbs
		}
	}
	class := nn.Argmax(probs)
	family := ""
	if len(probs) > 2 {
		family = core.ClassName(class, len(probs))
	}
	return Verdict{
		Name:         name,
		Class:        class,
		Label:        Label(class),
		Malicious:    class != nn.ClassBenign,
		Family:       family,
		Confidence:   probs[class],
		Probs:        probs,
		HasGraph:     hasGraph,
		Blocks:       blocks,
		Edges:        edges,
		ModelVersion: modelVersion,
	}, nil
}
