package serve

// The two-tier inference path: bulk traffic runs on the int8 quantized
// engine (~1.7x the float throughput on the paper CNN), and any row the
// quantized model is not confident about — top-two probability margin
// inside the configured band — is re-run on the float64 engine before
// the verdict leaves the worker. The quantized model's argmax agrees
// with the float oracle away from the borderline band (the nn property
// tests pin >=99.9% agreement at margin > 0.2), so escalation confines
// the quantization error to exactly the rows where it could matter.

// tieredEngine is a BatchEngine that serves batches on the bulk engine
// and escalates borderline rows to the precise engine. One instance per
// batcher worker — it reuses internal scratch across batches and is not
// safe for concurrent use (matching the BatchEngine contract).
type tieredEngine struct {
	bulk    BatchEngine // quantized workspace
	precise BatchEngine // float workspace
	band    float64     // escalate when top1-top2 < band
	m       *Metrics

	escX   [][]float64
	escIdx []int
	escDst [][]float64
}

func newTieredEngine(bulk, precise BatchEngine, band float64, m *Metrics) *tieredEngine {
	return &tieredEngine{bulk: bulk, precise: precise, band: band, m: m}
}

// NewTieredEngine builds the two-tier BatchEngine the quantized serving
// path uses: batches run on bulk, rows with a top-two probability margin
// below band re-run on precise. Metrics (optional) receives the
// per-tier row counts. Exposed for the bench harness; servers get this
// wiring from Config.Quantize.
func NewTieredEngine(bulk, precise BatchEngine, band float64, m *Metrics) BatchEngine {
	return newTieredEngine(bulk, precise, band, m)
}

// topTwoMargin returns top1 - top2 of a probability row (0 for rows with
// fewer than two classes, forcing escalation of malformed rows).
func topTwoMargin(p []float64) float64 {
	if len(p) < 2 {
		return 0
	}
	top1, top2 := p[0], p[1]
	if top2 > top1 {
		top1, top2 = top2, top1
	}
	for _, v := range p[2:] {
		if v > top1 {
			top1, top2 = v, top1
		} else if v > top2 {
			top2 = v
		}
	}
	return top1 - top2
}

// ProbsBatch runs the whole batch on the bulk engine, then re-runs the
// borderline rows on the precise engine and overwrites their rows in
// place, so callers see one coherent result.
func (e *tieredEngine) ProbsBatch(xs [][]float64, dst [][]float64) [][]float64 {
	out := e.bulk.ProbsBatch(xs, dst)
	e.escX, e.escIdx = e.escX[:0], e.escIdx[:0]
	for i, p := range out {
		if topTwoMargin(p) < e.band {
			e.escIdx = append(e.escIdx, i)
			e.escX = append(e.escX, xs[i])
		}
	}
	if len(e.escIdx) > 0 {
		e.escDst = e.precise.ProbsBatch(e.escX, e.escDst)
		for j, i := range e.escIdx {
			out[i] = append(out[i][:0], e.escDst[j]...)
		}
	}
	if e.m != nil {
		e.m.TierBulk.Add(uint64(len(xs) - len(e.escIdx)))
		e.m.TierEscalated.Add(uint64(len(e.escIdx)))
	}
	return out
}

// SafeProbs is the per-row fallback: bulk first, escalating to the
// precise engine on a borderline margin or any bulk-side fault (the
// poisoned-row isolation path prefers the engine with the hardened
// reference semantics).
func (e *tieredEngine) SafeProbs(x []float64) ([]float64, error) {
	p, err := e.bulk.SafeProbs(x)
	if err == nil && topTwoMargin(p) >= e.band {
		if e.m != nil {
			e.m.TierBulk.Add(1)
		}
		return p, nil
	}
	if e.m != nil {
		e.m.TierEscalated.Add(1)
	}
	return e.precise.SafeProbs(x)
}
