package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"advmal/internal/index"
	"advmal/internal/ir"
)

// similarRequest is the JSON request body for /v1/similar: a program
// (assembly text, like /v1/classify) or a raw unscaled feature vector.
// Raw assembly with a non-JSON content type is also accepted.
type similarRequest struct {
	Name    string    `json:"name,omitempty"`
	Program string    `json:"program,omitempty"`
	Vector  []float64 `json:"vector,omitempty"`
}

// SimilarResponse is the /v1/similar response: the k nearest labeled
// corpus neighbors, the majority-vote family attribution, the
// near-duplicate verdict, and the triage score.
type SimilarResponse struct {
	Name string `json:"name,omitempty"`
	// K echoes the effective neighbor count (≤ requested when the
	// corpus is smaller).
	K int `json:"k"`
	// Hits lists the nearest corpus entries, closest first.
	Hits []index.Hit `json:"hits"`
	// Family is the majority label among the hits (ties go to the
	// nearer label); Votes is its count.
	Family string `json:"family"`
	Votes  int    `json:"votes"`
	// NearDuplicate reports that the nearest neighbor is within the
	// corpus's duplicate radius — this exact sample (up to feature
	// identity) is already known.
	NearDuplicate bool `json:"near_duplicate"`
	// Triage scores the query's distance to the corpus manifold.
	Triage index.TriageInfo `json:"triage"`
}

// similarDefaultK and similarMaxK bound the ?k= query parameter.
const (
	similarDefaultK = 5
	similarMaxK     = 100
)

// handleSimilar answers k-NN family attribution queries over the loaded
// similarity corpus. Accepts the same program forms as /v1/classify
// plus a raw-vector JSON form; ?k= selects the neighbor count.
func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Chaos.intercept(w, r) {
		return
	}
	corpus := s.cfg.Corpus
	if corpus == nil {
		s.fail(w, http.StatusNotImplemented,
			fmt.Errorf("no similarity index loaded (start serve with -index)"))
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	k := similarDefaultK
	if raw := r.URL.Query().Get("k"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad k %q: want a positive integer", raw))
			return
		}
		k = parsed
		if k > similarMaxK {
			k = similarMaxK
		}
	}
	var req similarRequest
	if ct := r.Header.Get("Content-Type"); ct == "application/json" || ct == "application/json; charset=utf-8" {
		if err := json.Unmarshal(body, &req); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		if req.Program == "" && req.Vector == nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("request needs a program or a vector"))
			return
		}
	} else {
		req.Program = string(body)
	}

	// Similarity queries are served entirely on one snapshot: resolve the
	// handle once and use that model's extractor + scaler for the query.
	m := s.h.Current()
	var vec []float64
	switch {
	case req.Program != "":
		prog, err := ir.Parse(req.Program)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		vec, _, _, err = m.Vectorize(prog)
		if err != nil {
			s.fail(w, http.StatusUnprocessableEntity, err)
			return
		}
	default:
		scaled, err := m.Scaler.Transform(req.Vector)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		vec = scaled
	}

	s.metrics.Similar.Add(1)
	hits, err := corpus.HNSW.Search(vec, k)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("index search: %w", err))
		return
	}
	family, votes := index.Attribution(hits)
	ti := corpus.Triage.Score(hits)
	if ti.Flagged {
		s.metrics.TriageFlagged.Add(1)
	}
	writeJSON(w, http.StatusOK, SimilarResponse{
		Name:          req.Name,
		K:             len(hits),
		Hits:          hits,
		Family:        family,
		Votes:         votes,
		NearDuplicate: hits[0].Dist <= corpus.DupEps,
		Triage:        ti,
	})
}
