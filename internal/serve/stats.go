package serve

import (
	"fmt"
	"sort"
	"time"
)

// LatencySummary condenses a set of observed latencies into the
// percentiles the load generator and the serve bench report.
type LatencySummary struct {
	Count int           `json:"count"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
	Mean  time.Duration `json:"mean_ns"`
}

// Summarize computes the latency summary of samples (which it sorts in
// place). A nil or empty slice yields a zero summary.
func Summarize(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	return LatencySummary{
		Count: len(samples),
		P50:   quantile(samples, 0.50),
		P95:   quantile(samples, 0.95),
		P99:   quantile(samples, 0.99),
		Max:   samples[len(samples)-1],
		Mean:  sum / time.Duration(len(samples)),
	}
}

// quantile returns the q-quantile of sorted samples using the
// nearest-rank method (q in [0, 1]).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders the summary for log lines.
func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v max=%v",
		s.Count, s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond),
		s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}
