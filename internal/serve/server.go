package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"advmal/internal/core"
	"advmal/internal/features"
	"advmal/internal/index"
	"advmal/internal/ir"
)

// Config configures a Server. Exactly one of Handle or Detector is
// required; everything else has the default noted on its field.
type Config struct {
	// Handle is the serving pointer: the server classifies on whatever
	// Model snapshot the handle currently holds, and a Swap installs a
	// new snapshot with zero dropped requests. Required unless Detector
	// is set.
	Handle *core.Handle
	// Detector is the pre-split way to hand the server its model. When
	// Handle is nil, the detector is wrapped in a fresh single-version
	// handle.
	//
	// Deprecated: use Handle.
	Detector *core.Detector
	// Admin mounts the mutating control surface: POST /admin/swap
	// accepts a model gob and hot-swaps it into the handle. Off by
	// default — the read-only GET /v1/model endpoint is always mounted.
	Admin bool
	// BatchSize and Window tune the micro-batcher (see BatcherConfig).
	// Defaults: 64 and 2ms.
	BatchSize int
	Window    time.Duration
	// QueueDepth bounds admission. Default 1024.
	QueueDepth int
	// Workers is the batcher's worker count. Default GOMAXPROCS.
	Workers int
	// RequestTimeout bounds each request's time in queue + inference.
	// Default 5s.
	RequestTimeout time.Duration
	// MaxBody bounds request bodies. Default 1 MiB.
	MaxBody int64
	// NewEngine overrides the per-worker inference engine; nil builds
	// handle-bound engines that re-bind to the current Model snapshot at
	// each batch. Tests use it to inject fakes. Note the batcher feeds
	// engines RAW (unscaled) rows — the default engine scales them under
	// its pinned snapshot; a custom engine must cope with raw input.
	NewEngine func() BatchEngine
	// Quantize routes bulk traffic to the model's int8 quantized
	// compilation, escalating borderline rows to the float engine (see
	// Band). Requires an initial model with calibration ranges — New
	// fails fast otherwise. A hot-swapped candidate that cannot quantize
	// serves float-only rather than failing. Ignored when NewEngine is
	// set.
	Quantize bool
	// Band is the escalation band for the quantized tier: a row whose
	// quantized top-two probability margin is below Band re-runs on the
	// float engine. Default 0.2; negative disables escalation (pure
	// quantized serving). Only meaningful with Quantize.
	Band float64
	// Corpus, when non-nil, arms the similarity layer: /v1/similar
	// (k-NN family attribution over the labeled training corpus) and
	// the triage block on classify verdicts. Load one with index.Load
	// or build it with core.System.BuildCorpusIndex.
	Corpus *index.Corpus
	// Chaos, when non-nil, arms the fault-injection surface: the
	// /chaosz control endpoint, handler-level slow/error/blackhole
	// faults, and the serialized engine inference delay. Production
	// deployments leave it nil.
	Chaos *Chaos
}

// Server is the detection service: HTTP handlers over a Batcher over a
// core.Handle. Create with New, expose via Handler, stop with Drain.
type Server struct {
	cfg     Config
	h       *core.Handle
	batcher *Batcher
	metrics *Metrics
	ready   atomic.Bool
	mux     *http.ServeMux
	// lc holds the latest online-retraining status for /metrics; nil
	// until SetLifecycle publishes one.
	lc atomic.Pointer[LifecycleStatus]
}

// defaultWindow is the default coalescing window.
const defaultWindow = 2 * time.Millisecond

// defaultBand is the default quantized-tier escalation band, matching
// the margin at which the nn property tests pin quant/float argmax
// agreement.
const defaultBand = 0.2

// New builds the server and starts its batcher workers.
func New(cfg Config) (*Server, error) {
	h := cfg.Handle
	if h == nil {
		if cfg.Detector == nil {
			return nil, fmt.Errorf("serve: Config.Handle (or Detector) is required")
		}
		h = core.NewHandle(cfg.Detector)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.Window < 0 {
		cfg.Window = 0
	} else if cfg.Window == 0 {
		cfg.Window = defaultWindow
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 1 << 20
	}
	s := &Server{cfg: cfg, h: h, metrics: NewMetrics()}
	// Stamp the serving head width for the per-family verdict series.
	// Swapped-in candidates keep the width (the lifecycle trainer
	// preserves the live head), so stamping once is sound.
	s.metrics.Classes = h.Current().Net.NumClasses()
	newEngine := cfg.NewEngine
	if newEngine == nil {
		band := cfg.Band
		if band == 0 {
			band = defaultBand
		} else if band < 0 {
			band = 0
		}
		if cfg.Quantize {
			// Fail fast on the INITIAL model: starting a quantized fleet
			// on an uncalibrated model is a configuration error. Swapped-in
			// candidates degrade to float-only instead (see handleEngine).
			if _, err := h.Current().Quantized(); err != nil {
				return nil, fmt.Errorf("serve: quantized tier: %w", err)
			}
		}
		quantize, metrics := cfg.Quantize, s.metrics
		newEngine = func() BatchEngine {
			return newHandleEngine(h, quantize, band, metrics)
		}
	}
	if cfg.Chaos != nil {
		inner := newEngine
		chaos := cfg.Chaos
		newEngine = func() BatchEngine { return chaosEngine{inner: inner(), c: chaos} }
	}
	s.batcher = NewBatcher(BatcherConfig{
		Workers:    cfg.Workers,
		BatchSize:  cfg.BatchSize,
		Window:     cfg.Window,
		QueueDepth: cfg.QueueDepth,
		InputDim:   features.NumFeatures,
		NewEngine:  newEngine,
		Metrics:    s.metrics,
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/classify", s.handleClassify)
	s.mux.HandleFunc("POST /v1/classify/vector", s.handleVector)
	s.mux.HandleFunc("POST /v1/similar", s.handleSimilar)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/model", s.handleModel)
	if cfg.Admin {
		s.mux.HandleFunc("POST /admin/swap", s.handleSwap)
	}
	if cfg.Chaos != nil {
		s.mux.HandleFunc("/chaosz", s.handleChaos)
	}
	s.ready.Store(true)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Handle returns the serving handle, for swap drivers running in the
// same process (the retraining loop started by cmd/serve -retrain).
func (s *Server) Handle() *core.Handle { return s.h }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Batcher exposes the scheduler (drain accounting for shutdown logs).
func (s *Server) Batcher() *Batcher { return s.batcher }

// NotReady flips /readyz to 503 so load balancers stop routing here.
// Called first in the drain sequence, before the listener stops.
func (s *Server) NotReady() { s.ready.Store(false) }

// Drain executes the batcher side of graceful shutdown: stop admission,
// flush everything queued, and return the final accounting. The caller
// is expected to have stopped the HTTP listener first (http.Server.
// Shutdown waits for in-flight handlers, which in turn wait on the
// batcher — so the order is NotReady, Shutdown, Drain).
func (s *Server) Drain() BatcherStats {
	s.ready.Store(false)
	s.batcher.Close()
	return s.batcher.Stats()
}

// classifyRequest is the JSON request body for /v1/classify. The
// endpoint also accepts raw assembly text (any non-JSON content type).
type classifyRequest struct {
	Name    string `json:"name,omitempty"`
	Program string `json:"program"`
}

// vectorRequest is the JSON request body for /v1/classify/vector: a raw
// (unscaled) Table II feature vector.
type vectorRequest struct {
	Name   string    `json:"name,omitempty"`
	Vector []float64 `json:"vector"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// handleClassify accepts one program — as raw assembly text, or as JSON
// {"name": ..., "program": ...} when Content-Type is application/json —
// and answers with a Verdict.
func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Chaos.intercept(w, r) {
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	name := ""
	text := string(body)
	if ct := r.Header.Get("Content-Type"); ct == "application/json" || ct == "application/json; charset=utf-8" {
		var req classifyRequest
		if err := json.Unmarshal(body, &req); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		name, text = req.Name, req.Program
	}
	prog, err := ir.Parse(text)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	// Extract RAW features only — scaling happens inside the batch
	// engine under whichever snapshot scores the row, so the verdict is
	// attributable to exactly one model version across a hot swap.
	raw, blocks, edges, err := s.h.Current().RawFeatures(prog)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.classify(w, r, name, raw, blocks, edges, true)
}

// handleVector accepts a raw feature vector and answers with a Verdict
// (no CFG summary). Scaling happens in the batch engine; the batcher's
// admission check maps a wrong dimension to 400.
func (s *Server) handleVector(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Chaos.intercept(w, r) {
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req vectorRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	s.classify(w, r, req.Name, req.Vector, 0, 0, false)
}

// classify submits a raw vector to the batcher and writes the verdict
// or the mapped admission/execution error.
func (s *Server) classify(w http.ResponseWriter, r *http.Request, name string, vec []float64, blocks, edges int, hasGraph bool) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	probs, ver, err := s.batcher.SubmitV(ctx, vec)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			s.fail(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrDraining):
			s.fail(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, context.DeadlineExceeded):
			s.fail(w, http.StatusGatewayTimeout, err)
		case errors.Is(err, context.Canceled):
			// Client went away; status is moot but 499-style close.
			s.fail(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrBadInput):
			s.fail(w, http.StatusBadRequest, err)
		default:
			s.fail(w, http.StatusInternalServerError, err)
		}
		return
	}
	if ver == 0 {
		// Engine not version-aware (custom NewEngine, e.g. test fakes):
		// fall back to the handle's version at response time.
		ver = s.h.Version()
	}
	v, err := MakeVerdict(name, probs, blocks, edges, hasGraph, ver)
	if err != nil {
		// Non-finite probabilities: a typed 500 with a clear message,
		// never a mid-response JSON encoder failure.
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	if c := s.cfg.Corpus; c != nil {
		// The corpus index lives in scaled space; scale the raw query
		// with the current snapshot's scaler. Triage is advisory, so a
		// scaling failure just omits the block.
		if scaled, serr := s.h.Current().Scaler.Transform(vec); serr == nil {
			if hits, herr := c.HNSW.Search(scaled, 1); herr == nil && len(hits) > 0 {
				ti := c.Triage.Score(hits)
				v.Triage = &ti
				if ti.Flagged {
					s.metrics.TriageFlagged.Add(1)
				}
			}
		}
	}
	s.metrics.Verdict(v.Class)
	writeJSON(w, http.StatusOK, v)
}

// readBody reads a bounded request body, mapping oversize to 413.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds %d bytes", s.cfg.MaxBody))
		} else {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		}
		return nil, false
	}
	return body, true
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteText(w, s.h.Current().Extractor.Stats())
	fmt.Fprintf(w, "# HELP advmal_model_version Version stamp of the model snapshot currently serving.\n")
	fmt.Fprintf(w, "# TYPE advmal_model_version gauge\n")
	fmt.Fprintf(w, "advmal_model_version %d\n", s.h.Version())
	fmt.Fprintf(w, "# HELP advmal_model_swaps_total Hot swaps installed since start.\n")
	fmt.Fprintf(w, "# TYPE advmal_model_swaps_total counter\n")
	fmt.Fprintf(w, "advmal_model_swaps_total %d\n", s.h.Swaps())
	s.writeLifecycleText(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// handleReadyz reports routability. Both the explicit ready flag and the
// batcher's own drain state gate the 200: NotReady flips the flag before
// the listener stops, and checking Batcher.Draining() closes the other
// ordering — a batcher drained directly can never answer ready while
// Submit is already refusing with ErrDraining. Once /readyz has said
// 503, it never says 200 again within a drain (the regression test pins
// this ordering).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() || s.batcher.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ready\n")
}

// fail writes the JSON error envelope and counts it.
func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	if s.metrics != nil {
		s.metrics.Errors.Add(1)
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
