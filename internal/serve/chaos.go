package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// Chaos is the replica-side fault-injection surface: a set of runtime
// knobs the gateway harness flips over HTTP (POST /chaosz) or tests set
// directly. The zero value injects nothing. All knobs are atomics, so
// flipping them mid-load is race-free.
//
// Handler-level faults (slow, error-every, blackhole) fire in the
// classify handlers before the batcher sees the request — they model a
// misbehaving HTTP tier. The inference delay is different: it is applied
// inside each batcher worker's engine, serialized per worker, so it
// models a heavier model and bounds the replica's throughput at
// 1/(delay) per worker regardless of host parallelism. The gateway
// scaling bench leans on that to demonstrate routing scalability with
// replica capacity pinned by service time rather than by host cores.
type Chaos struct {
	slowNs    atomic.Int64  // handler sleep per request
	inferNs   atomic.Int64  // serialized engine sleep per batch
	errEvery  atomic.Int64  // every Nth classify answers 500
	reqCount  atomic.Uint64 // requests seen by the error injector
	blackhole atomic.Bool   // hold classify requests until the client gives up
	injected  atomic.Uint64 // faults actually fired

	// Exit is invoked (in its own goroutine, after the response is
	// written) when a die request arrives. cmd/serve installs os.Exit to
	// simulate a crash; tests install a recorder. Nil ignores die.
	Exit func(code int)
}

// DieExitCode is the exit status of a chaos-killed replica — 128+SIGKILL,
// the same status a real `kill -9` produces.
const DieExitCode = 137

// SetSlow sets the handler-level per-request delay.
func (c *Chaos) SetSlow(d time.Duration) { c.slowNs.Store(int64(d)) }

// SetInferDelay sets the serialized per-batch engine delay.
func (c *Chaos) SetInferDelay(d time.Duration) { c.inferNs.Store(int64(d)) }

// SetErrorEvery makes every nth classify request fail with 500 (0
// disables).
func (c *Chaos) SetErrorEvery(n int) { c.errEvery.Store(int64(n)) }

// SetBlackhole holds classify requests open without answering.
func (c *Chaos) SetBlackhole(on bool) { c.blackhole.Store(on) }

// Injected returns how many faults have fired.
func (c *Chaos) Injected() uint64 { return c.injected.Load() }

// Clear resets every knob.
func (c *Chaos) Clear() {
	c.slowNs.Store(0)
	c.inferNs.Store(0)
	c.errEvery.Store(0)
	c.blackhole.Store(false)
}

// intercept applies handler-level faults to one classify request,
// reporting whether it already answered (or deliberately never will).
// Nil-safe: a server without chaos wiring pays one nil check.
func (c *Chaos) intercept(w http.ResponseWriter, r *http.Request) bool {
	if c == nil {
		return false
	}
	if c.blackhole.Load() {
		c.injected.Add(1)
		// Drain the body first: the server only starts the background
		// read that detects a client disconnect once the request body is
		// consumed, and without it this hold would outlive the client.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // hold until the client hangs up
		w.WriteHeader(http.StatusServiceUnavailable)
		return true
	}
	if d := c.slowNs.Load(); d > 0 {
		t := time.NewTimer(time.Duration(d))
		select {
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
		}
	}
	if n := c.errEvery.Load(); n > 0 {
		if c.reqCount.Add(1)%uint64(n) == 0 {
			c.injected.Add(1)
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: "chaos: injected failure"})
			return true
		}
	}
	return false
}

// chaosEngine decorates a BatchEngine with the serialized inference
// delay. One instance wraps each worker's engine, so the sleep happens
// on the worker goroutine and gates its batch rate.
type chaosEngine struct {
	inner BatchEngine
	c     *Chaos
}

func (e chaosEngine) delay() {
	if d := e.c.inferNs.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

func (e chaosEngine) ProbsBatch(xs [][]float64, dst [][]float64) [][]float64 {
	e.delay()
	return e.inner.ProbsBatch(xs, dst)
}

func (e chaosEngine) SafeProbs(x []float64) ([]float64, error) {
	e.delay()
	return e.inner.SafeProbs(x)
}

// ModelVersion forwards version attribution through the decorator so a
// chaos-wrapped handle engine still stamps verdicts.
func (e chaosEngine) ModelVersion() uint64 { return engineVersion(e.inner) }

// chaosRequest is the POST /chaosz wire format. Pointer fields
// distinguish "leave unchanged" from an explicit zero; Clear applies
// first, so {"clear":true,"slow_ms":5} resets everything and then sets
// one knob.
type chaosRequest struct {
	Clear      bool  `json:"clear,omitempty"`
	SlowMs     *int  `json:"slow_ms,omitempty"`
	InferMs    *int  `json:"infer_ms,omitempty"`
	ErrorEvery *int  `json:"error_every,omitempty"`
	Blackhole  *bool `json:"blackhole,omitempty"`
	Die        bool  `json:"die,omitempty"`
}

// chaosState is the GET /chaosz response.
type chaosState struct {
	SlowMs     int64  `json:"slow_ms"`
	InferMs    int64  `json:"infer_ms"`
	ErrorEvery int64  `json:"error_every"`
	Blackhole  bool   `json:"blackhole"`
	Injected   uint64 `json:"injected"`
}

// handleChaos serves the fault-injection control endpoint (registered
// only when the server was built with a Chaos).
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	c := s.cfg.Chaos
	if r.Method == http.MethodGet {
		writeJSON(w, http.StatusOK, chaosState{
			SlowMs:     c.slowNs.Load() / int64(time.Millisecond),
			InferMs:    c.inferNs.Load() / int64(time.Millisecond),
			ErrorEvery: c.errEvery.Load(),
			Blackhole:  c.blackhole.Load(),
			Injected:   c.injected.Load(),
		})
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req chaosRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if req.Clear {
		c.Clear()
	}
	if req.SlowMs != nil {
		c.SetSlow(time.Duration(*req.SlowMs) * time.Millisecond)
	}
	if req.InferMs != nil {
		c.SetInferDelay(time.Duration(*req.InferMs) * time.Millisecond)
	}
	if req.ErrorEvery != nil {
		c.SetErrorEvery(*req.ErrorEvery)
	}
	if req.Blackhole != nil {
		c.SetBlackhole(*req.Blackhole)
	}
	if req.Die && c.Exit != nil {
		c.injected.Add(1)
		writeJSON(w, http.StatusOK, map[string]string{"status": "dying"})
		// Give the response a moment to flush, then crash.
		go func() {
			time.Sleep(25 * time.Millisecond)
			c.Exit(DieExitCode)
		}()
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
