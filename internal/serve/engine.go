package serve

import (
	"fmt"

	"advmal/internal/core"
)

// handleEngine is the BatchEngine the serving stack runs on after the
// Model/Handle split: one instance per batcher worker, re-binding to the
// handle's current Model snapshot at each batch. Rows arrive RAW
// (unscaled) and are scaled with the pinned snapshot's own scaler right
// before inference, so scale + inference happen atomically under ONE
// model — during a hot swap every request is served entirely by either
// the old or the new snapshot, never a mix.
//
// Binding is per-batch and per-worker: when the snapshot pointer
// changes, the worker builds a fresh inner engine from the NEW Model's
// workspace pool (and its int8 quantized tier when armed). The old
// Model's workspace is not returned anywhere — it drains and dies with
// its snapshot, which is exactly how the per-Model pools make mixed-
// version inference structurally impossible.
type handleEngine struct {
	h        *core.Handle
	quantize bool
	band     float64
	m        *Metrics

	cur    *core.Model // snapshot the inner engine is bound to
	inner  BatchEngine // scaled-space engine over cur's pool/tier
	scaled [][]float64 // per-worker scratch for scaled rows
}

func newHandleEngine(h *core.Handle, quantize bool, band float64, m *Metrics) *handleEngine {
	return &handleEngine{h: h, quantize: quantize, band: band, m: m}
}

// NewHandleEngine exposes the serving engine for external harnesses
// (cmd/bench measures hot-swap overhead through it); the server builds
// its own instances per worker. Rows submitted through it must be RAW
// (unscaled) feature vectors.
func NewHandleEngine(h *core.Handle, quantize bool, band float64, m *Metrics) BatchEngine {
	return newHandleEngine(h, quantize, band, m)
}

// bind re-resolves the handle's current snapshot, rebuilding the inner
// engine when it changed since the last batch. Single-goroutine use per
// the BatchEngine contract.
func (e *handleEngine) bind() BatchEngine {
	mdl := e.h.Current()
	if mdl == e.cur {
		return e.inner
	}
	var inner BatchEngine = mdl.AcquireWS()
	if e.quantize {
		// A candidate without calibration (or with an architecture the
		// int8 compiler cannot express) serves float-only: correctness
		// over throughput, and the canary gates keep such candidates out
		// of quantized fleets anyway.
		if qm, err := mdl.Quantized(); err == nil {
			inner = newTieredEngine(qm.NewWS(), inner, e.band, e.m)
		}
	}
	e.cur, e.inner = mdl, inner
	return inner
}

// ModelVersion reports the version of the snapshot the last batch ran
// on. The batcher reads it on the worker goroutine right after the
// batch executes, so the verdict's model_version names the exact
// weights that scored it.
func (e *handleEngine) ModelVersion() uint64 {
	if e.cur == nil {
		return 0
	}
	return e.cur.Version
}

// ProbsBatch scales the raw rows with the pinned snapshot's scaler into
// per-worker scratch and runs the batch on the snapshot's engine.
func (e *handleEngine) ProbsBatch(xs [][]float64, dst [][]float64) [][]float64 {
	inner := e.bind()
	for len(e.scaled) < len(xs) {
		e.scaled = append(e.scaled, make([]float64, len(xs[0])))
	}
	for i, x := range xs {
		if err := e.cur.Scaler.TransformInto(e.scaled[i], x); err != nil {
			// Dimensions are validated at admission; anything else is a
			// poisoned row. Panic into the batcher's recover boundary so
			// the row fails alone via SafeProbs.
			panic(fmt.Errorf("serve: scale row %d: %w", i, err))
		}
	}
	return inner.ProbsBatch(e.scaled[:len(xs)], dst)
}

// SafeProbs is the recover-guarded per-row fallback over raw input.
func (e *handleEngine) SafeProbs(x []float64) ([]float64, error) {
	inner := e.bind()
	scaled, err := e.cur.Scaler.Transform(x)
	if err != nil {
		return nil, err
	}
	return inner.SafeProbs(scaled)
}
