package serve

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"

	"advmal/internal/core"
	"advmal/internal/features"
)

// Histogram is a fixed-bucket, lock-free histogram. Buckets are
// cumulative-upper-bound style (Prometheus semantics): counts[i] counts
// observations <= bounds[i], with a final implicit +Inf bucket. All
// methods are safe for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // bits of a float64 accumulated via CAS
	total  atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// durationBounds are the latency buckets (seconds): 50µs … 1s.
func durationBounds() []float64 {
	return []float64{50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1}
}

// batchBounds are the batch-size buckets.
func batchBounds() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile returns an upper-bound estimate of the q-quantile: the
// smallest bucket bound whose cumulative count covers fraction q of the
// observations (+Inf bucket falls back to the largest finite bound).
// Zero when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	need := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if cum >= need {
			return b
		}
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// WritePrometheus emits the histogram in Prometheus text exposition
// format under the given metric name. Shared with the gateway's metrics
// registry.
func (h *Histogram) WritePrometheus(w io.Writer, name string) { h.write(w, name) }

// write emits the histogram in Prometheus text exposition format.
func (h *Histogram) write(w io.Writer, name string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

func formatBound(b float64) string {
	if b == math.Trunc(b) && math.Abs(b) < 1e6 {
		return fmt.Sprintf("%g", b)
	}
	return fmt.Sprintf("%g", b)
}

// Metrics is the serving observability registry: atomic counters and
// histograms covering the request path end to end. One instance is
// shared by the server, the batcher, and /metrics.
type Metrics struct {
	// Request-path counters.
	Requests    atomic.Uint64 // accepted into the queue
	RejectedFul atomic.Uint64 // fast-429: queue at depth bound
	RejectedDrn atomic.Uint64 // 503: draining, no longer accepting
	Expired     atomic.Uint64 // request context expired before its result
	Errors      atomic.Uint64 // requests answered with an error verdict
	Panics      atomic.Uint64 // batch panics isolated by the batcher

	// Verdict counters on the binary detection axis (class 0 vs rest).
	VerdictBenign  atomic.Uint64
	VerdictMalware atomic.Uint64
	// ByClass counts verdicts per raw class index — per-family verdict
	// rates under a family-head model. Sized for the family head with
	// headroom; out-of-range classes only bump the binary counters.
	ByClass [8]atomic.Uint64
	// Classes is the serving head width, stamped once at server
	// construction; WriteText emits the per-family verdict series only
	// when it exceeds the binary width.
	Classes int

	// Similarity-layer counters: /v1/similar queries served, and
	// classify/similar responses whose triage distance exceeded the
	// calibrated threshold (the off-manifold, GEA-shaped queries).
	Similar       atomic.Uint64
	TriageFlagged atomic.Uint64

	// Quantized-tier row counters: rows answered by the int8 bulk
	// engine, and rows escalated to the float engine (borderline margin
	// or bulk-side fault). Zero unless Config.Quantize is on.
	TierBulk      atomic.Uint64
	TierEscalated atomic.Uint64

	// Distributions.
	BatchSize *Histogram // rows per executed batch
	QueueWait *Histogram // enqueue → batch start, seconds
	InferLat  *Histogram // batch execution, seconds
}

// NewMetrics returns a registry with the standard buckets.
func NewMetrics() *Metrics {
	return &Metrics{
		BatchSize: NewHistogram(batchBounds()...),
		QueueWait: NewHistogram(durationBounds()...),
		InferLat:  NewHistogram(durationBounds()...),
	}
}

// Verdict records one verdict by class: the binary collapse (class 0 is
// benign, everything else malicious) plus the raw per-class counter.
func (m *Metrics) Verdict(class int) {
	if m == nil {
		return
	}
	if class != 0 {
		m.VerdictMalware.Add(1)
	} else {
		m.VerdictBenign.Add(1)
	}
	if class >= 0 && class < len(m.ByClass) {
		m.ByClass[class].Add(1)
	}
}

// WriteText emits every metric in Prometheus text exposition format,
// plus the feature-cache counters and hit rate from cache (pass a zero
// CacheStats when no extractor is wired in).
func (m *Metrics) WriteText(w io.Writer, cache features.CacheStats) {
	fmt.Fprintf(w, "advmal_requests_total %d\n", m.Requests.Load())
	fmt.Fprintf(w, "advmal_rejected_total{reason=\"queue_full\"} %d\n", m.RejectedFul.Load())
	fmt.Fprintf(w, "advmal_rejected_total{reason=\"draining\"} %d\n", m.RejectedDrn.Load())
	fmt.Fprintf(w, "advmal_expired_total %d\n", m.Expired.Load())
	fmt.Fprintf(w, "advmal_errors_total %d\n", m.Errors.Load())
	fmt.Fprintf(w, "advmal_batch_panics_total %d\n", m.Panics.Load())
	fmt.Fprintf(w, "advmal_verdicts_total{class=\"benign\"} %d\n", m.VerdictBenign.Load())
	fmt.Fprintf(w, "advmal_verdicts_total{class=\"malware\"} %d\n", m.VerdictMalware.Load())
	if m.Classes > 2 {
		for c := 0; c < m.Classes && c < len(m.ByClass); c++ {
			fmt.Fprintf(w, "advmal_verdicts_family_total{family=%q} %d\n",
				core.ClassName(c, m.Classes), m.ByClass[c].Load())
		}
	}
	fmt.Fprintf(w, "advmal_similar_requests_total %d\n", m.Similar.Load())
	fmt.Fprintf(w, "advmal_triage_flagged_total %d\n", m.TriageFlagged.Load())
	fmt.Fprintf(w, "advmal_tier_rows_total{tier=\"bulk\"} %d\n", m.TierBulk.Load())
	fmt.Fprintf(w, "advmal_tier_rows_total{tier=\"escalated\"} %d\n", m.TierEscalated.Load())
	m.BatchSize.write(w, "advmal_batch_size")
	m.QueueWait.write(w, "advmal_queue_wait_seconds")
	m.InferLat.write(w, "advmal_inference_seconds")
	fmt.Fprintf(w, "advmal_feature_cache_hits_total %d\n", cache.Hits)
	fmt.Fprintf(w, "advmal_feature_cache_misses_total %d\n", cache.Misses)
	fmt.Fprintf(w, "advmal_feature_cache_entries %d\n", cache.Len)
	if total := cache.Hits + cache.Misses; total > 0 {
		fmt.Fprintf(w, "advmal_feature_cache_hit_rate %g\n", float64(cache.Hits)/float64(total))
	} else {
		fmt.Fprintf(w, "advmal_feature_cache_hit_rate 0\n")
	}
}
