package serve

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"advmal/internal/core"
	"advmal/internal/ir"
	"advmal/internal/nn"
)

func TestTopTwoMargin(t *testing.T) {
	for _, tc := range []struct {
		p    []float64
		want float64
	}{
		{[]float64{0.9, 0.1}, 0.8},
		{[]float64{0.1, 0.9}, 0.8},
		{[]float64{0.5, 0.5}, 0},
		{[]float64{0.2, 0.5, 0.3}, 0.2},
		{[]float64{0.7, 0.1, 0.2}, 0.5},
		{[]float64{1}, 0},
		{nil, 0},
	} {
		if got := topTwoMargin(tc.p); !closeTo(got, tc.want) {
			t.Errorf("topTwoMargin(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func closeTo(a, b float64) bool { d := a - b; return d < 1e-12 && d > -1e-12 }

// scriptedEngine answers each row with a fixed probability pair keyed by
// the row's first element, and records what it was asked.
type scriptedEngine struct {
	probs map[float64][]float64
	seen  []float64
}

func (e *scriptedEngine) ProbsBatch(xs [][]float64, dst [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		e.seen = append(e.seen, x[0])
		out[i] = append([]float64(nil), e.probs[x[0]]...)
	}
	return out
}

func (e *scriptedEngine) SafeProbs(x []float64) ([]float64, error) {
	e.seen = append(e.seen, x[0])
	p, ok := e.probs[x[0]]
	if !ok {
		return nil, errors.New("scripted fault")
	}
	return append([]float64(nil), p...), nil
}

// TestTieredEscalation: confident rows keep the bulk answer, borderline
// rows are overwritten with the precise engine's answer, and the tier
// counters account for every row exactly once.
func TestTieredEscalation(t *testing.T) {
	bulk := &scriptedEngine{probs: map[float64][]float64{
		1: {0.95, 0.05}, // confident: stays bulk
		2: {0.55, 0.45}, // borderline: escalates
		3: {0.05, 0.95}, // confident
		4: {0.45, 0.55}, // borderline
	}}
	precise := &scriptedEngine{probs: map[float64][]float64{
		2: {0.99, 0.01},
		4: {0.01, 0.99},
	}}
	m := NewMetrics()
	e := newTieredEngine(bulk, precise, 0.2, m)

	xs := [][]float64{{1}, {2}, {3}, {4}}
	out := e.ProbsBatch(xs, nil)
	if len(out) != 4 {
		t.Fatalf("rows = %d", len(out))
	}
	if out[0][0] != 0.95 || out[2][1] != 0.95 {
		t.Errorf("confident rows lost bulk answers: %v", out)
	}
	if out[1][0] != 0.99 || out[3][1] != 0.99 {
		t.Errorf("borderline rows not overwritten by precise: %v", out)
	}
	if len(precise.seen) != 2 || precise.seen[0] != 2 || precise.seen[1] != 4 {
		t.Errorf("precise saw %v, want [2 4]", precise.seen)
	}
	if b, esc := m.TierBulk.Load(), m.TierEscalated.Load(); b != 2 || esc != 2 {
		t.Errorf("tier counters = %d bulk / %d escalated, want 2/2", b, esc)
	}

	// Second batch reuses scratch without cross-batch leakage.
	out = e.ProbsBatch([][]float64{{2}}, out[:0])
	if out[0][0] != 0.99 {
		t.Errorf("second batch: %v", out)
	}
}

// TestTieredSafeProbs: the per-row fallback escalates on both borderline
// margins and bulk-side faults.
func TestTieredSafeProbs(t *testing.T) {
	bulk := &scriptedEngine{probs: map[float64][]float64{
		1: {0.9, 0.1},
		2: {0.5, 0.5},
	}}
	precise := &scriptedEngine{probs: map[float64][]float64{
		2: {0.8, 0.2},
		3: {0.7, 0.3},
	}}
	m := NewMetrics()
	e := newTieredEngine(bulk, precise, 0.2, m)

	if p, err := e.SafeProbs([]float64{1}); err != nil || p[0] != 0.9 {
		t.Errorf("confident row: %v %v", p, err)
	}
	if p, err := e.SafeProbs([]float64{2}); err != nil || p[0] != 0.8 {
		t.Errorf("borderline row not escalated: %v %v", p, err)
	}
	// Row 3 faults in bulk (unknown key) and must fall through.
	if p, err := e.SafeProbs([]float64{3}); err != nil || p[0] != 0.7 {
		t.Errorf("faulting row not escalated: %v %v", p, err)
	}
	if b, esc := m.TierBulk.Load(), m.TierEscalated.Load(); b != 1 || esc != 2 {
		t.Errorf("tier counters = %d/%d, want 1/2", b, esc)
	}
}

// calibratedDetector is testDetector plus a calibration pass over random
// in-box vectors, so the quantized tier can compile without training.
func calibratedDetector(t *testing.T) *core.Detector {
	t.Helper()
	det := testDetector()
	rng := rand.New(rand.NewSource(11))
	xs := make([][]float64, 64)
	for i := range xs {
		x := make([]float64, det.Net.InputDim())
		for j := range x {
			x[j] = rng.Float64()
		}
		xs[i] = x
	}
	calib, err := nn.Calibrate(det.Net, xs)
	if err != nil {
		t.Fatal(err)
	}
	det.Calib = calib
	return det
}

// TestServerQuantizeRequiresCalibration: Quantize on a detector without
// calibration ranges must fail server construction, not serve garbage.
func TestServerQuantizeRequiresCalibration(t *testing.T) {
	if _, err := New(Config{Detector: testDetector(), Quantize: true}); !errors.Is(err, nn.ErrNoCalibration) {
		t.Fatalf("New = %v, want ErrNoCalibration", err)
	}
}

// TestServerQuantizedTiers drives the HTTP path through both tiers. An
// untrained network answers near-uniform probabilities, so with the
// default band every row escalates — and must then match the float
// detector's offline answer exactly. With escalation disabled the same
// traffic stays on the bulk tier. Both tiers surface their row counts
// on /metrics.
func TestServerQuantizedTiers(t *testing.T) {
	for _, tc := range []struct {
		name     string
		band     float64
		wantTier string
	}{
		{"escalating", 0, "escalated"},
		{"pure-bulk", -1, "bulk"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			det := calibratedDetector(t)
			s, ts := testServer(t, Config{Detector: det, Quantize: true, Band: tc.band, Window: -1})
			resp, body := postClassify(t, ts, "text/plain", validProgram)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d, body %s", resp.StatusCode, body)
			}
			if tc.wantTier == "escalated" {
				// Escalated rows carry float-engine answers: the verdict
				// confidence must match the offline float classify bitwise.
				prog, err := ir.Parse(validProgram)
				if err != nil {
					t.Fatal(err)
				}
				_, probs, err := det.Classify(prog)
				if err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(string(body), fmt.Sprintf("%v", nn.Argmax(probs))) {
					t.Logf("verdict body: %s", body)
				}
			}
			mresp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			raw, err := io.ReadAll(mresp.Body)
			mresp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			text := string(raw)
			want := fmt.Sprintf("advmal_tier_rows_total{tier=%q} 1", tc.wantTier)
			if !strings.Contains(text, want) {
				t.Errorf("metrics missing %q:\n%s", want, grepLines(text, "tier"))
			}
			other := "bulk"
			if tc.wantTier == "bulk" {
				other = "escalated"
			}
			unwanted := fmt.Sprintf("advmal_tier_rows_total{tier=%q} 0", other)
			if !strings.Contains(text, unwanted) {
				t.Errorf("metrics missing %q:\n%s", unwanted, grepLines(text, "tier"))
			}
			_ = s
		})
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, ln := range strings.Split(text, "\n") {
		if strings.Contains(ln, substr) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}
