package dataset

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"advmal/internal/ir"
	"advmal/internal/pool"
	"advmal/internal/pool/faultinject"
	"advmal/internal/synth"
)

// corruptSample returns a sample whose program fails validation (jump
// target out of range), so disassembly — and thus corpus conversion —
// errors for it.
func corruptSample(name string) *synth.Sample {
	return &synth.Sample{
		Name:      name,
		Malicious: true,
		Prog: &ir.Program{
			Name: name,
			Code: []ir.Instr{{Op: ir.Jmp, A: 99}, {Op: ir.Ret}},
		},
	}
}

func goodSamples(t *testing.T, n int) []*synth.Sample {
	t.Helper()
	samples, err := synth.Generate(synth.Config{Seed: 7, NumBenign: n / 2, NumMal: n - n/2})
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestFromSamplesJoinsAllFailures checks a strict build reports every
// failed sample — name and index, not just the first error.
func TestFromSamplesJoinsAllFailures(t *testing.T) {
	samples := goodSamples(t, 6)
	badIdx := []int{1, 3, 5}
	for _, i := range badIdx {
		samples[i] = corruptSample(fmt.Sprintf("corrupt-%d", i))
	}
	_, err := FromSamples(samples, 2)
	if err == nil {
		t.Fatal("strict build accepted corrupt samples")
	}
	fails := pool.Failures(err)
	if len(fails) != len(badIdx) {
		t.Fatalf("got %d failures, want %d: %v", len(fails), len(badIdx), err)
	}
	for k, f := range fails {
		if f.Index != badIdx[k] {
			t.Errorf("failure %d has index %d, want %d", k, f.Index, badIdx[k])
		}
		want := fmt.Sprintf("corrupt-%d", badIdx[k])
		if f.Name != want || !strings.Contains(err.Error(), want) {
			t.Errorf("failure %d: name %q (want %q); joined error: %v", k, f.Name, want, err)
		}
		if !errors.Is(f.Err, ir.ErrBadTarget) {
			t.Errorf("failure %d cause = %v, want ErrBadTarget", k, f.Err)
		}
	}
}

// TestSkipBadBuildMatchesSurvivorOnlyBuild checks graceful degradation:
// a SkipBad build over a corpus with corrupt samples produces exactly
// the dataset a clean build over only the survivors would.
func TestSkipBadBuildMatchesSurvivorOnlyBuild(t *testing.T) {
	samples := goodSamples(t, 8)
	var survivors []*synth.Sample
	mixed := make([]*synth.Sample, 0, len(samples)+2)
	for i, s := range samples {
		if i == 2 || i == 5 {
			mixed = append(mixed, corruptSample(fmt.Sprintf("corrupt-%d", i)))
		}
		mixed = append(mixed, s)
		survivors = append(survivors, s)
	}

	got, report, err := FromSamplesCtx(context.Background(), mixed, Options{Workers: 3, SkipBad: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.Count() != 2 {
		t.Fatalf("skip count = %d, want 2 (%s)", report.Count(), report)
	}
	want, err := FromSamples(survivors, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("survivor dataset has %d records, want %d", got.Len(), want.Len())
	}
	for i := range want.Records {
		g, w := got.Records[i], want.Records[i]
		if g.Sample.Name != w.Sample.Name || g.Label != w.Label {
			t.Fatalf("record %d: got (%s,%d) want (%s,%d)",
				i, g.Sample.Name, g.Label, w.Sample.Name, w.Label)
		}
		for j := range w.Raw {
			if g.Raw[j] != w.Raw[j] {
				t.Fatalf("record %d feature %d differs: %v vs %v", i, j, g.Raw[j], w.Raw[j])
			}
		}
	}
}

// TestFromSamplesCancelled checks ctx cancellation aborts the build even
// with SkipBad set — cancellation is never mistaken for a skippable
// per-sample fault.
func TestFromSamplesCancelled(t *testing.T) {
	samples := goodSamples(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds, _, err := FromSamplesCtx(ctx, samples, Options{Workers: 2, SkipBad: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ds != nil {
		t.Fatal("dataset returned despite cancellation")
	}
}

// TestSkipBadIsolatesInjectedPanics drives the fault-injection harness
// through the corpus build: an injected panic in one sample's conversion
// is isolated, reported, and leaves the survivors untouched.
func TestSkipBadIsolatesInjectedPanics(t *testing.T) {
	samples := goodSamples(t, 6)
	plan := faultinject.New().Panic(2, "boom in feature extraction").Error(4, errors.New("injected io fault"))
	ds, report, err := FromSamplesCtx(context.Background(), samples,
		Options{Workers: 2, SkipBad: true, Hook: plan.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	if report.Count() != 2 {
		t.Fatalf("skip count = %d, want 2 (%s)", report.Count(), report)
	}
	if ds.Len() != len(samples)-2 {
		t.Fatalf("survivors = %d, want %d", ds.Len(), len(samples)-2)
	}
	var pe *pool.PanicError
	if !errors.As(report.Err(), &pe) {
		t.Fatalf("panic not surfaced as PanicError: %v", report.Err())
	}
	for _, r := range ds.Records {
		if r.Sample.Name == samples[2].Name || r.Sample.Name == samples[4].Name {
			t.Fatalf("faulted sample %s survived into the dataset", r.Sample.Name)
		}
	}
}
