// Package dataset assembles the corpus the detector trains on: it
// disassembles every sample, extracts the 23 CFG features, carries labels,
// and provides the stratified train/test split and Table I style class
// distribution.
package dataset

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"advmal/internal/features"
	"advmal/internal/ir"
	"advmal/internal/synth"
)

// Split errors.
var (
	// ErrEmpty indicates an empty dataset where records were required.
	ErrEmpty = errors.New("dataset: empty dataset")
	// ErrBadFraction indicates a test fraction outside (0, 1).
	ErrBadFraction = errors.New("dataset: test fraction must be in (0, 1)")
)

// Labels for the binary detection task.
const (
	LabelBenign  = 0
	LabelMalware = 1
)

// Record is one sample with its extracted feature vector.
type Record struct {
	Sample *synth.Sample
	Raw    features.Vector
	Label  int
}

// Dataset is an ordered collection of records.
type Dataset struct {
	Records []*Record
}

// FromSamples disassembles every sample and extracts its feature vector,
// fanning the work across workers goroutines (0 = GOMAXPROCS). The output
// order matches the input order regardless of scheduling.
func FromSamples(samples []*synth.Sample, workers int) (*Dataset, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	records := make([]*Record, len(samples))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(samples); i += workers {
				s := samples[i]
				cfg, err := ir.Disassemble(s.Prog)
				if err != nil {
					errs[w] = fmt.Errorf("dataset: sample %q: %w", s.Name, err)
					return
				}
				label := LabelBenign
				if s.Malicious {
					label = LabelMalware
				}
				records[i] = &Record{
					Sample: s,
					Raw:    features.Extract(cfg.G()),
					Label:  label,
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Dataset{Records: records}, nil
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.Records) }

// CountByLabel returns (benign, malware) counts — the Table I distribution.
func (d *Dataset) CountByLabel() (benign, malware int) {
	for _, r := range d.Records {
		if r.Label == LabelMalware {
			malware++
		} else {
			benign++
		}
	}
	return benign, malware
}

// ByLabel returns the records with the given label, preserving order.
func (d *Dataset) ByLabel(label int) []*Record {
	var out []*Record
	for _, r := range d.Records {
		if r.Label == label {
			out = append(out, r)
		}
	}
	return out
}

// RawVectors returns every record's raw feature vector, in order.
func (d *Dataset) RawVectors() []features.Vector {
	out := make([]features.Vector, len(d.Records))
	for i, r := range d.Records {
		out[i] = r.Raw
	}
	return out
}

// Labels returns every record's label, in order.
func (d *Dataset) Labels() []int {
	out := make([]int, len(d.Records))
	for i, r := range d.Records {
		out[i] = r.Label
	}
	return out
}

// Split partitions the dataset into train and test with per-class
// (stratified) sampling so both splits preserve the class imbalance.
// testFrac is the fraction of each class assigned to test. Deterministic
// for a given seed.
func (d *Dataset) Split(testFrac float64, seed int64) (train, test *Dataset, err error) {
	if d.Len() == 0 {
		return nil, nil, ErrEmpty
	}
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadFraction, testFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	train = &Dataset{}
	test = &Dataset{}
	for _, label := range []int{LabelBenign, LabelMalware} {
		recs := d.ByLabel(label)
		idx := rng.Perm(len(recs))
		nTest := int(float64(len(recs)) * testFrac)
		inTest := make([]bool, len(recs))
		for _, i := range idx[:nTest] {
			inTest[i] = true
		}
		for i, r := range recs {
			if inTest[i] {
				test.Records = append(test.Records, r)
			} else {
				train.Records = append(train.Records, r)
			}
		}
	}
	return train, test, nil
}
