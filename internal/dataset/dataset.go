// Package dataset assembles the corpus the detector trains on: it
// disassembles every sample, extracts the 23 CFG features, carries labels,
// and provides the stratified train/test split and Table I style class
// distribution.
package dataset

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"advmal/internal/features"
	"advmal/internal/ir"
	"advmal/internal/pool"
	"advmal/internal/synth"
)

// Split errors.
var (
	// ErrEmpty indicates an empty dataset where records were required.
	ErrEmpty = errors.New("dataset: empty dataset")
	// ErrBadFraction indicates a test fraction outside (0, 1).
	ErrBadFraction = errors.New("dataset: test fraction must be in (0, 1)")
)

// Labels for the binary detection task.
const (
	LabelBenign  = 0
	LabelMalware = 1
)

// Record is one sample with its extracted feature vector.
type Record struct {
	Sample *synth.Sample
	Raw    features.Vector
	Label  int
}

// Dataset is an ordered collection of records.
type Dataset struct {
	Records []*Record
}

// Options configures corpus assembly.
type Options struct {
	// Workers is the fan-out width; 0 means GOMAXPROCS.
	Workers int
	// SkipBad isolates samples that fail (bad disassembly, a panic in a
	// feature extractor) instead of failing the whole build: the dataset
	// completes on the survivors and the failures are returned in the
	// SkipReport. Without SkipBad any failure aborts the build, but every
	// per-sample failure is still collected — not just the first.
	SkipBad bool
	// Extractor serves feature vectors through the fused sweep engine
	// and its content-keyed cache; nil uses the process-wide shared
	// extractor, so repeated builds over overlapping sample sets hit.
	Extractor *features.Extractor
	// Hook is the pool fault-injection hook, for tests.
	Hook pool.Hook
}

// SkipReport accounts for samples dropped during a SkipBad build.
type SkipReport struct {
	// Total is the number of samples attempted.
	Total int
	// Skipped holds one entry per failed sample, in input order, each
	// carrying the sample's index, name, and cause.
	Skipped []*pool.ItemError
}

// Count returns the number of skipped samples.
func (r *SkipReport) Count() int {
	if r == nil {
		return 0
	}
	return len(r.Skipped)
}

// Err returns the joined per-sample failures, or nil when none.
func (r *SkipReport) Err() error {
	if r.Count() == 0 {
		return nil
	}
	errs := make([]error, len(r.Skipped))
	for i, e := range r.Skipped {
		errs[i] = e
	}
	return errors.Join(errs...)
}

// String summarises the report for progress output.
func (r *SkipReport) String() string {
	if r.Count() == 0 {
		return "no samples skipped"
	}
	names := make([]string, 0, len(r.Skipped))
	for _, e := range r.Skipped {
		names = append(names, e.Name)
	}
	return fmt.Sprintf("skipped %d/%d samples: %s", r.Count(), r.Total, strings.Join(names, ", "))
}

// FromSamplesCtx disassembles every sample and extracts its feature
// vector on the shared worker pool. The output order matches the input
// order regardless of scheduling. The returned SkipReport is never nil;
// with opts.SkipBad it lists the isolated failures, otherwise any failure
// is also returned as the joined error (every failure, with sample name
// and index — not just the first). Cancellation of ctx aborts the build
// regardless of SkipBad.
func FromSamplesCtx(ctx context.Context, samples []*synth.Sample, opts Options) (*Dataset, *SkipReport, error) {
	records := make([]*Record, len(samples))
	err := pool.Run(ctx, len(samples), pool.Options{
		Workers: opts.Workers,
		Hook:    opts.Hook,
		Name:    func(i int) string { return samples[i].Name },
	}, func(_ context.Context, _, i int) error {
		s := samples[i]
		cfg, err := ir.Disassemble(s.Prog)
		if err != nil {
			return err
		}
		label := LabelBenign
		if s.Malicious {
			label = LabelMalware
		}
		records[i] = &Record{
			Sample: s,
			Raw:    opts.Extractor.Extract(cfg.G()),
			Label:  label,
		}
		return nil
	})
	report := &SkipReport{Total: len(samples), Skipped: pool.Failures(err)}
	if ctx.Err() != nil {
		return nil, report, fmt.Errorf("dataset: %w", err)
	}
	if err != nil && !opts.SkipBad {
		return nil, report, fmt.Errorf("dataset: %w", err)
	}
	if report.Count() > 0 {
		kept := make([]*Record, 0, len(records)-report.Count())
		for _, r := range records {
			if r != nil {
				kept = append(kept, r)
			}
		}
		records = kept
	}
	return &Dataset{Records: records}, report, nil
}

// FromSamples is FromSamplesCtx without cancellation or skipping: every
// sample must convert, and on failure the error joins all per-sample
// failures.
func FromSamples(samples []*synth.Sample, workers int) (*Dataset, error) {
	ds, _, err := FromSamplesCtx(context.Background(), samples, Options{Workers: workers})
	return ds, err
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.Records) }

// CountByLabel returns (benign, malware) counts — the Table I distribution.
func (d *Dataset) CountByLabel() (benign, malware int) {
	for _, r := range d.Records {
		if r.Label == LabelMalware {
			malware++
		} else {
			benign++
		}
	}
	return benign, malware
}

// ByLabel returns the records with the given label, preserving order.
func (d *Dataset) ByLabel(label int) []*Record {
	var out []*Record
	for _, r := range d.Records {
		if r.Label == label {
			out = append(out, r)
		}
	}
	return out
}

// RawVectors returns every record's raw feature vector, in order.
func (d *Dataset) RawVectors() []features.Vector {
	out := make([]features.Vector, len(d.Records))
	for i, r := range d.Records {
		out[i] = r.Raw
	}
	return out
}

// Labels returns every record's label, in order.
func (d *Dataset) Labels() []int {
	out := make([]int, len(d.Records))
	for i, r := range d.Records {
		out[i] = r.Label
	}
	return out
}

// Split partitions the dataset into train and test with per-class
// (stratified) sampling so both splits preserve the class imbalance.
// testFrac is the fraction of each class assigned to test. Deterministic
// for a given seed.
func (d *Dataset) Split(testFrac float64, seed int64) (train, test *Dataset, err error) {
	if d.Len() == 0 {
		return nil, nil, ErrEmpty
	}
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadFraction, testFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	train = &Dataset{}
	test = &Dataset{}
	for _, label := range []int{LabelBenign, LabelMalware} {
		recs := d.ByLabel(label)
		idx := rng.Perm(len(recs))
		nTest := int(float64(len(recs)) * testFrac)
		inTest := make([]bool, len(recs))
		for _, i := range idx[:nTest] {
			inTest[i] = true
		}
		for i, r := range recs {
			if inTest[i] {
				test.Records = append(test.Records, r)
			} else {
				train.Records = append(train.Records, r)
			}
		}
	}
	return train, test, nil
}
