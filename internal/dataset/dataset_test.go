package dataset

import (
	"bytes"
	"encoding/csv"
	"errors"
	"strings"
	"testing"

	"advmal/internal/features"
	"advmal/internal/synth"
)

func corpus(t *testing.T) []*synth.Sample {
	t.Helper()
	samples, err := synth.Generate(synth.Config{Seed: 2, NumBenign: 25, NumMal: 60})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return samples
}

func buildDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := FromSamples(corpus(t), 2)
	if err != nil {
		t.Fatalf("FromSamples: %v", err)
	}
	return ds
}

func TestFromSamplesPreservesOrderAndLabels(t *testing.T) {
	samples := corpus(t)
	ds, err := FromSamples(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != len(samples) {
		t.Fatalf("Len = %d, want %d", ds.Len(), len(samples))
	}
	for i, r := range ds.Records {
		if r.Sample != samples[i] {
			t.Fatalf("record %d out of order", i)
		}
		wantLabel := LabelBenign
		if samples[i].Malicious {
			wantLabel = LabelMalware
		}
		if r.Label != wantLabel {
			t.Errorf("record %d label %d, want %d", i, r.Label, wantLabel)
		}
		if len(r.Raw) != features.NumFeatures {
			t.Errorf("record %d has %d features", i, len(r.Raw))
		}
	}
}

func TestFromSamplesWorkerInvariance(t *testing.T) {
	samples := corpus(t)
	a, err := FromSamples(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromSamples(samples, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		for j := range a.Records[i].Raw {
			if a.Records[i].Raw[j] != b.Records[i].Raw[j] {
				t.Fatalf("record %d feature %d differs across worker counts", i, j)
			}
		}
	}
}

func TestCountByLabel(t *testing.T) {
	ds := buildDataset(t)
	benign, malware := ds.CountByLabel()
	if benign != 25 || malware != 60 {
		t.Errorf("counts %d/%d, want 25/60", benign, malware)
	}
}

func TestSplitStratified(t *testing.T) {
	ds := buildDataset(t)
	train, test, err := ds.Split(0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != ds.Len() {
		t.Errorf("split loses records: %d + %d != %d", train.Len(), test.Len(), ds.Len())
	}
	tb, tm := test.CountByLabel()
	if tb != 5 || tm != 12 { // 20% of 25 and of 60
		t.Errorf("test split %d/%d, want 5/12", tb, tm)
	}
	// No overlap.
	seen := map[*Record]bool{}
	for _, r := range train.Records {
		seen[r] = true
	}
	for _, r := range test.Records {
		if seen[r] {
			t.Fatal("record in both splits")
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	ds := buildDataset(t)
	_, testA, err := ds.Split(0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	_, testB, err := ds.Split(0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	if testA.Len() != testB.Len() {
		t.Fatal("same seed produced different split sizes")
	}
	for i := range testA.Records {
		if testA.Records[i] != testB.Records[i] {
			t.Fatal("same seed produced different splits")
		}
	}
	_, testC, err := ds.Split(0.25, 43)
	if err != nil {
		t.Fatal(err)
	}
	different := false
	for i := range testA.Records {
		if testA.Records[i] != testC.Records[i] {
			different = true
			break
		}
	}
	if !different {
		t.Error("different seeds produced identical splits")
	}
}

func TestSplitErrors(t *testing.T) {
	ds := &Dataset{}
	if _, _, err := ds.Split(0.2, 1); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty split = %v, want ErrEmpty", err)
	}
	ds = buildDataset(t)
	for _, frac := range []float64{0, 1, -0.5, 2} {
		if _, _, err := ds.Split(frac, 1); !errors.Is(err, ErrBadFraction) {
			t.Errorf("Split(%v) = %v, want ErrBadFraction", frac, err)
		}
	}
}

func TestVectorsAndLabels(t *testing.T) {
	ds := buildDataset(t)
	vs := ds.RawVectors()
	ys := ds.Labels()
	if len(vs) != ds.Len() || len(ys) != ds.Len() {
		t.Fatal("wrong lengths")
	}
	for i := range vs {
		if &vs[i][0] != &ds.Records[i].Raw[0] {
			t.Fatal("RawVectors must not copy feature data")
		}
	}
}

func TestByLabel(t *testing.T) {
	ds := buildDataset(t)
	if got := len(ds.ByLabel(LabelBenign)); got != 25 {
		t.Errorf("ByLabel(benign) = %d, want 25", got)
	}
	if got := len(ds.ByLabel(LabelMalware)); got != 60 {
		t.Errorf("ByLabel(malware) = %d, want 60", got)
	}
}

func TestSaveLoadSamplesRoundTrip(t *testing.T) {
	samples := corpus(t)[:10]
	var buf bytes.Buffer
	if err := SaveSamples(&buf, samples); err != nil {
		t.Fatalf("SaveSamples: %v", err)
	}
	loaded, err := LoadSamples(&buf)
	if err != nil {
		t.Fatalf("LoadSamples: %v", err)
	}
	if len(loaded) != 10 {
		t.Fatalf("loaded %d, want 10", len(loaded))
	}
	for i, s := range loaded {
		if s.Name != samples[i].Name || s.Nodes != samples[i].Nodes {
			t.Errorf("sample %d metadata differs", i)
		}
		if len(s.Prog.Code) != len(samples[i].Prog.Code) {
			t.Errorf("sample %d program differs", i)
		}
	}
}

func TestLoadSamplesRejectsBadPrograms(t *testing.T) {
	if _, err := LoadSamples(strings.NewReader(`[{"name":"x"}]`)); err == nil {
		t.Error("LoadSamples accepted a sample without a program")
	}
	if _, err := LoadSamples(strings.NewReader(`not json`)); err == nil {
		t.Error("LoadSamples accepted garbage")
	}
	bad := `[{"name":"x","prog":{"name":"x","code":[{"op":14,"a":99}]}}]`
	if _, err := LoadSamples(strings.NewReader(bad)); err == nil {
		t.Error("LoadSamples accepted an invalid program")
	}
}

func TestSaveCSV(t *testing.T) {
	ds := buildDataset(t)
	var buf bytes.Buffer
	if err := ds.SaveCSV(&buf); err != nil {
		t.Fatalf("SaveCSV: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("parsing CSV back: %v", err)
	}
	if len(rows) != ds.Len()+1 {
		t.Fatalf("CSV rows = %d, want %d", len(rows), ds.Len()+1)
	}
	wantCols := 2 + features.NumFeatures + 1
	for i, row := range rows {
		if len(row) != wantCols {
			t.Fatalf("row %d has %d columns, want %d", i, len(row), wantCols)
		}
	}
	if rows[0][0] != "name" || rows[0][wantCols-1] != "label" {
		t.Errorf("header = %v", rows[0])
	}
}
