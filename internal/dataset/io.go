package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"advmal/internal/features"
	"advmal/internal/synth"
)

// SaveSamples writes the corpus (programs included) as JSON.
func SaveSamples(w io.Writer, samples []*synth.Sample) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(samples); err != nil {
		return fmt.Errorf("dataset: save samples: %w", err)
	}
	return nil
}

// LoadSamples reads a corpus previously written by SaveSamples and
// validates every program.
func LoadSamples(r io.Reader) ([]*synth.Sample, error) {
	var samples []*synth.Sample
	if err := json.NewDecoder(r).Decode(&samples); err != nil {
		return nil, fmt.Errorf("dataset: load samples: %w", err)
	}
	for i, s := range samples {
		if s.Prog == nil {
			return nil, fmt.Errorf("dataset: sample %d has no program", i)
		}
		if err := s.Prog.Validate(); err != nil {
			return nil, fmt.Errorf("dataset: sample %d (%s): %w", i, s.Name, err)
		}
	}
	return samples, nil
}

// SaveCSV writes the feature matrix with a header row: name, family, the
// 23 feature columns, and the label.
func (d *Dataset) SaveCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"name", "family"}, features.Names()...)
	header = append(header, "label")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: csv header: %w", err)
	}
	for _, r := range d.Records {
		row := make([]string, 0, len(header))
		row = append(row, r.Sample.Name, r.Sample.Family.String())
		for _, x := range r.Raw {
			row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		}
		row = append(row, strconv.Itoa(r.Label))
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: csv row %q: %w", r.Sample.Name, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: csv flush: %w", err)
	}
	return nil
}
