package index

import (
	"fmt"
	"sort"
)

// Triage turns distance-to-nearest-labeled-neighbor into an online
// adversarial-sample score. The paper's GEA splices (§V) graft a target
// CFG into a sample, moving its 23-dim feature vector off the region
// the training corpus occupies — so a query whose nearest corpus
// neighbor is farther than anything seen during calibration is flagged
// for human triage. Threshold is calibrated on the corpus itself: the
// Quantile of every member's self-excluded nearest-neighbor distance.
type Triage struct {
	// Threshold flags queries whose nearest-neighbor distance exceeds it.
	Threshold float64 `json:"threshold"`
	// Quantile records the calibration quantile (diagnostics only).
	Quantile float64 `json:"quantile"`
}

// TriageInfo is the per-query triage verdict attached to classify and
// similar responses.
type TriageInfo struct {
	// Distance is the Euclidean distance to the nearest labeled neighbor.
	Distance float64 `json:"distance"`
	// NearestID and NearestLabel identify that neighbor.
	NearestID    int    `json:"nearest_id"`
	NearestLabel string `json:"nearest_label"`
	// Threshold echoes the calibrated flag threshold.
	Threshold float64 `json:"threshold"`
	// Flagged is Distance > Threshold: the query sits off the corpus
	// manifold, the GEA signature.
	Flagged bool `json:"flagged"`
}

// Score computes the triage verdict for the nearest hit of a query.
// hits must be non-empty (a search over a non-empty index always is).
func (t Triage) Score(hits []Hit) TriageInfo {
	nearest := hits[0]
	return TriageInfo{
		Distance:     nearest.Dist,
		NearestID:    nearest.ID,
		NearestLabel: nearest.Label,
		Threshold:    t.Threshold,
		Flagged:      nearest.Dist > t.Threshold,
	}
}

// CalibrateTriage computes the flag threshold as the quantile of every
// corpus member's distance to its nearest neighbor other than itself.
// quantile <= 0 selects 0.99 — with min-max scaled features the clean
// tail is tight, so the 99th percentile separates GEA-displaced vectors
// without flagging ordinary unseen samples. The searcher must index the
// same store the calibration walks.
func CalibrateTriage(s Searcher, store Store, quantile float64) (Triage, error) {
	n := store.Len()
	if n < 2 {
		return Triage{}, fmt.Errorf("index: calibrate: need at least 2 entries, have %d", n)
	}
	if quantile <= 0 {
		quantile = 0.99
	}
	if quantile > 1 {
		quantile = 1
	}
	dists := make([]float64, 0, n)
	for id := 0; id < n; id++ {
		hits, err := s.Search(store.Vec(id), 2)
		if err != nil {
			return Triage{}, err
		}
		// The member itself is normally hits[0] at distance 0; take the
		// first hit that is not this id. Exact duplicates make both hits
		// distance 0, which is the right answer anyway.
		d := hits[0].Dist
		if hits[0].ID == id && len(hits) > 1 {
			d = hits[1].Dist
		}
		dists = append(dists, d)
	}
	sort.Float64s(dists)
	pos := int(quantile*float64(len(dists))) - 1
	if pos < 0 {
		pos = 0
	}
	if pos >= len(dists) {
		pos = len(dists) - 1
	}
	return Triage{Threshold: dists[pos], Quantile: quantile}, nil
}
