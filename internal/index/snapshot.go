package index

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// DefaultDupEps is the near-duplicate distance: scaled feature vectors
// closer than this to a corpus member are treated as re-submissions of
// a known sample. Min-max scaled features of distinct CFGs differ by
// far more than this; only true content duplicates land under it.
const DefaultDupEps = 1e-9

// Corpus is the serving artefact cmd/serve loads at startup: the HNSW
// index over the labeled, scaled training corpus, the calibrated triage
// threshold, and the near-duplicate radius. Build one with BuildCorpus,
// persist with Save, restore with Load.
type Corpus struct {
	HNSW   *HNSW
	Triage Triage
	// DupEps is the near-duplicate distance (<= 0 selects DefaultDupEps
	// at build/load time).
	DupEps float64
}

// BuildCorpus indexes the labeled vectors, calibrates the triage
// threshold at quantile (<= 0 selects the 0.99 default), and returns
// the bundle. vecs[i] carries labels[i]; insertion order is id order.
func BuildCorpus(cfg HNSWConfig, vecs [][]float64, labels []string, quantile float64) (*Corpus, error) {
	if len(vecs) != len(labels) {
		return nil, fmt.Errorf("index: build corpus: %d vectors but %d labels", len(vecs), len(labels))
	}
	h := NewHNSW(cfg, nil)
	for i, v := range vecs {
		if _, err := h.Add(labels[i], v); err != nil {
			return nil, fmt.Errorf("index: build corpus: vector %d: %w", i, err)
		}
	}
	tri, err := CalibrateTriage(h, h.Store(), quantile)
	if err != nil {
		return nil, err
	}
	return &Corpus{HNSW: h, Triage: tri, DupEps: DefaultDupEps}, nil
}

// snapshotVersion guards the on-disk layout.
const snapshotVersion = 1

// corpusSnapshot is the gob wire form: the full graph structure plus
// the store's content, so a round trip restores search results
// bit-for-bit (the identity property test pins this).
type corpusSnapshot struct {
	Version        int
	M              int
	EfConstruction int
	EfSearch       int
	Seed           int64
	Draws          int64
	Entry          int32
	MaxLevel       int32
	Levels         []int32
	Links          [][][]int32
	Labels         []string
	Vectors        [][]float64
	Threshold      float64
	Quantile       float64
	DupEps         float64
}

// Save writes the corpus as a gob snapshot.
func (c *Corpus) Save(w io.Writer) error {
	if c.HNSW == nil {
		return fmt.Errorf("index: save: nil index")
	}
	h := c.HNSW
	h.mu.RLock()
	defer h.mu.RUnlock()
	snap := corpusSnapshot{
		Version:        snapshotVersion,
		M:              h.cfg.M,
		EfConstruction: h.cfg.EfConstruction,
		EfSearch:       h.cfg.EfSearch,
		Seed:           h.cfg.Seed,
		Draws:          h.draws,
		Entry:          h.entry,
		MaxLevel:       h.maxLevel,
		Levels:         h.levels,
		Links:          h.links,
		Threshold:      c.Triage.Threshold,
		Quantile:       c.Triage.Quantile,
		DupEps:         c.DupEps,
	}
	n := h.store.Len()
	snap.Labels = make([]string, n)
	snap.Vectors = make([][]float64, n)
	for id := 0; id < n; id++ {
		snap.Labels[id] = h.store.Label(id)
		snap.Vectors[id] = h.store.Vec(id)
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("index: save snapshot: %w", err)
	}
	return nil
}

// Load restores a corpus written by Save. Hardened like
// core.LoadDetector: a corrupt or truncated snapshot comes back as a
// descriptive error, never a panic or a partially wired index, and the
// restored index continues deterministic inserts (the level RNG is
// replayed to its snapshot position).
func Load(r io.Reader) (c *Corpus, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			c, err = nil, fmt.Errorf("%w: %v", ErrCorrupt, rec)
		}
	}()
	var snap corpusSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("index: load snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("%w: snapshot version %d, want %d", ErrCorrupt, snap.Version, snapshotVersion)
	}
	n := len(snap.Vectors)
	if len(snap.Labels) != n || len(snap.Levels) != n || len(snap.Links) != n {
		return nil, fmt.Errorf("%w: inconsistent snapshot (%d vectors, %d labels, %d levels, %d link sets)",
			ErrCorrupt, n, len(snap.Labels), len(snap.Levels), len(snap.Links))
	}
	if n > 0 && (snap.Entry < 0 || int(snap.Entry) >= n) {
		return nil, fmt.Errorf("%w: entry point %d out of range [0,%d)", ErrCorrupt, snap.Entry, n)
	}
	dim := 0
	if n > 0 {
		dim = len(snap.Vectors[0])
	}
	for id := 0; id < n; id++ {
		if len(snap.Vectors[id]) != dim {
			return nil, fmt.Errorf("%w: vector %d has dim %d, want %d", ErrCorrupt, id, len(snap.Vectors[id]), dim)
		}
		for _, x := range snap.Vectors[id] {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("%w: vector %d is not finite", ErrCorrupt, id)
			}
		}
		if int(snap.Levels[id]) != len(snap.Links[id])-1 {
			return nil, fmt.Errorf("%w: node %d level %d but %d link layers",
				ErrCorrupt, id, snap.Levels[id], len(snap.Links[id]))
		}
		for _, layer := range snap.Links[id] {
			for _, nb := range layer {
				if nb < 0 || int(nb) >= n {
					return nil, fmt.Errorf("%w: node %d links to out-of-range %d", ErrCorrupt, id, nb)
				}
			}
		}
	}
	h := NewHNSW(HNSWConfig{
		M:              snap.M,
		EfConstruction: snap.EfConstruction,
		EfSearch:       snap.EfSearch,
		Seed:           snap.Seed,
	}, &MemStore{Labels: snap.Labels, Vectors: snap.Vectors})
	h.levels = snap.Levels
	h.links = snap.Links
	h.entry = snap.Entry
	h.maxLevel = snap.MaxLevel
	// Replay the level RNG to its snapshot position so an index restored
	// from disk assigns the same layers to subsequent inserts as the
	// index that was saved.
	h.rng = rand.New(rand.NewSource(snap.Seed))
	for i := int64(0); i < snap.Draws; i++ {
		h.rng.Float64()
	}
	h.draws = snap.Draws
	dupEps := snap.DupEps
	if dupEps <= 0 {
		dupEps = DefaultDupEps
	}
	return &Corpus{
		HNSW:   h,
		Triage: Triage{Threshold: snap.Threshold, Quantile: snap.Quantile},
		DupEps: dupEps,
	}, nil
}
