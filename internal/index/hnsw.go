package index

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// HNSWConfig tunes the hierarchical small-world index. Zero values
// select the defaults noted on each field, chosen for the 23-dim
// Table II feature space.
type HNSWConfig struct {
	// M is the link budget per node on upper layers (layer 0 allows
	// 2M). Default 16.
	M int
	// EfConstruction is the candidate-beam width during insertion:
	// wider builds a better graph, slower. Default 200.
	EfConstruction int
	// EfSearch is the default candidate-beam width during queries
	// (raised to k when k is larger). Default 128 — sized so recall@10
	// against the exact oracle stays ≥ 0.95 on clustered family
	// corpora, the hard case for graph indexes (the property test pins
	// this).
	EfSearch int
	// Seed drives level assignment. Builds are deterministic for a
	// given seed and insertion sequence.
	Seed int64
}

func (c *HNSWConfig) defaults() {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 128
	}
}

// HNSW is the approximate nearest-neighbor index: a hierarchy of
// navigable small-world graphs over the storage layer. Add serializes
// writers; Search takes a read lock, so concurrent searches proceed in
// parallel and interleave safely with inserts (the race test pins
// this). Determinism: for a fixed config and insertion sequence the
// built graph — and therefore every search result — is reproducible,
// including across a snapshot round trip.
type HNSW struct {
	mu    sync.RWMutex
	cfg   HNSWConfig
	store Store

	levels   []int32   // levels[id] = top layer of node id
	links    [][][]int32 // links[id][layer] = neighbor ids
	entry    int32
	maxLevel int32

	rng      *rand.Rand
	draws    int64 // level draws so far, replayed at snapshot load
	levelMul float64

	// flat aliases the MemStore's vector slice when the store is a
	// *MemStore (the common case), letting the distance hot loop skip
	// the interface dispatch on Store.Vec.
	flat *[][]float64

	// vecs32 is a contiguous float32 shadow of the stored vectors
	// (stride = dim), the working representation of the search hot
	// loop: half the memory traffic of the float64 originals and no
	// per-vector pointer chase, which is what an ANN search over a
	// corpus bigger than cache is actually bound by. Beam ordering and
	// neighbor selection run on float32 distances (deterministically —
	// same arithmetic every run); reported Hit distances are recomputed
	// in float64 from the store for the final k results only.
	vecs32 []float32
	dim    int

	scratch sync.Pool
}

// NewHNSW returns an empty index over store (nil selects a fresh
// MemStore).
func NewHNSW(cfg HNSWConfig, store Store) *HNSW {
	cfg.defaults()
	if store == nil {
		store = NewMemStore()
	}
	h := &HNSW{
		cfg:      cfg,
		store:    store,
		entry:    -1,
		maxLevel: -1,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		levelMul: 1 / math.Log(float64(cfg.M)),
	}
	if ms, ok := store.(*MemStore); ok {
		h.flat = &ms.Vectors
	}
	// A pre-populated store (the snapshot Load path) arrives with vectors
	// the shadow must mirror before any search runs.
	for id, n := 0, store.Len(); id < n; id++ {
		h.append32(store.Vec(id))
	}
	h.scratch.New = func() any { return &searchScratch{} }
	return h
}

// vec returns the stored float64 vector for id via the devirtualized
// fast path when available.
func (h *HNSW) vec(id int32) []float64 {
	if h.flat != nil {
		return (*h.flat)[id]
	}
	return h.store.Vec(int(id))
}

// vec32 returns id's slot in the contiguous float32 shadow.
func (h *HNSW) vec32(id int32) []float32 {
	off := int(id) * h.dim
	return h.vecs32[off : off+h.dim]
}

// append32 grows the float32 shadow with vec's converted copy.
func (h *HNSW) append32(vec []float64) {
	if h.dim == 0 {
		h.dim = len(vec)
	}
	for _, x := range vec {
		h.vecs32 = append(h.vecs32, float32(x))
	}
}

// sqDist32 is the hot-loop squared distance over the float32 shadow.
func sqDist32(a, b []float32) float32 {
	var s float32
	for i, x := range a {
		d := x - b[i]
		s += d * d
	}
	return s
}

// sqDistBound32 is sqDist32 with early abandonment: once the partial
// sum exceeds bound the exact value no longer matters (the caller only
// asks "is it closer than bound?"), so it returns the partial
// immediately. In dense clusters most beam candidates lose to the
// current worst result within a few dimensions. Abandoned partials are
// only ever compared against bound, never stored.
func sqDistBound32(a, b []float32, bound float32) float32 {
	var s float32
	i := 0
	for ; i+8 <= len(a); i += 8 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		d4 := a[i+4] - b[i+4]
		d5 := a[i+5] - b[i+5]
		d6 := a[i+6] - b[i+6]
		d7 := a[i+7] - b[i+7]
		s += d0*d0 + d1*d1 + d2*d2 + d3*d3 + d4*d4 + d5*d5 + d6*d6 + d7*d7
		if s > bound {
			return s
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Config returns the index's resolved configuration.
func (h *HNSW) Config() HNSWConfig { return h.cfg }

// Store returns the underlying storage layer.
func (h *HNSW) Store() Store { return h.store }

// Len implements Searcher.
func (h *HNSW) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.store.Len()
}

// maxLayer caps level assignment; with mL = 1/ln(M) the probability of
// exceeding it is negligible for any corpus that fits in memory.
const maxLayer = 30

// drawLevel assigns a geometric layer to the next node.
func (h *HNSW) drawLevel() int32 {
	h.draws++
	l := int32(math.Floor(-math.Log(1-h.rng.Float64()) * h.levelMul))
	if l > maxLayer {
		l = maxLayer
	}
	return l
}

// Add inserts a labeled vector and returns its id.
func (h *HNSW) Add(label string, vec []float64) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if d := h.store.Dim(); d != 0 && len(vec) != d {
		return 0, fmt.Errorf("%w: got %d want %d", ErrDimMismatch, len(vec), d)
	}
	id := int32(h.store.Append(label, vec))
	h.append32(h.store.Vec(int(id)))
	v := h.vec32(id)
	level := h.drawLevel()
	h.levels = append(h.levels, level)
	nodeLinks := make([][]int32, level+1)
	h.links = append(h.links, nodeLinks)

	if h.entry < 0 {
		h.entry, h.maxLevel = id, level
		return int(id), nil
	}

	sc := h.scratch.Get().(*searchScratch)
	defer h.scratch.Put(sc)

	ep := h.entry
	for l := h.maxLevel; l > level; l-- {
		ep = h.closest(v, ep, l)
	}
	top := level
	if top > h.maxLevel {
		top = h.maxLevel
	}
	for l := top; l >= 0; l-- {
		cands := h.searchLayer(v, ep, h.cfg.EfConstruction, l, sc)
		sel := h.selectNeighbors(v, cands, h.cfg.M, sc.sel[:0])
		sc.sel = sel
		nodeLinks[l] = append([]int32(nil), sel...)
		maxM := h.cfg.M
		if l == 0 {
			maxM = 2 * h.cfg.M
		}
		for _, nb := range sel {
			h.links[nb][l] = append(h.links[nb][l], id)
			if len(h.links[nb][l]) > maxM {
				h.pruneLinks(nb, l, maxM, sc)
			}
		}
		if len(cands) > 0 {
			ep = cands[0].id
		}
	}
	if level > h.maxLevel {
		h.maxLevel, h.entry = level, id
	}
	return int(id), nil
}

// Search implements Searcher.
func (h *HNSW) Search(q []float64, k int) ([]Hit, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.store.Len() == 0 {
		return nil, ErrEmpty
	}
	if len(q) != h.store.Dim() {
		return nil, fmt.Errorf("%w: got %d want %d", ErrDimMismatch, len(q), h.store.Dim())
	}
	if k <= 0 {
		k = 1
	}
	ef := h.cfg.EfSearch
	if ef < k {
		ef = k
	}
	sc := h.scratch.Get().(*searchScratch)
	defer h.scratch.Put(sc)

	q32 := sc.q32[:0]
	for _, x := range q {
		q32 = append(q32, float32(x))
	}
	sc.q32 = q32

	ep := h.entry
	for l := h.maxLevel; l > 0; l-- {
		ep = h.closest(q32, ep, l)
	}
	cands := h.searchLayer(q32, ep, ef, 0, sc)
	if k < len(cands) {
		cands = cands[:k]
	}
	// The beam ran on the float32 shadow; report exact float64 distances
	// for the selected k, re-sorted in case a float32 near-tie inverted.
	hits := make([]Hit, len(cands))
	for i, c := range cands {
		id := int(c.id)
		hits[i] = Hit{ID: id, Label: h.store.Label(id), Dist: math.Sqrt(sqDist(q, h.vec(c.id)))}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Dist != hits[j].Dist {
			return hits[i].Dist < hits[j].Dist
		}
		return hits[i].ID < hits[j].ID
	})
	return hits, nil
}

// closest greedily descends one layer: repeatedly hop to the neighbor
// nearest to q until no neighbor improves.
func (h *HNSW) closest(q []float32, ep int32, layer int32) int32 {
	best := ep
	bestD := sqDist32(q, h.vec32(ep))
	for improved := true; improved; {
		improved = false
		for _, nb := range h.links[best][layer] {
			if d := sqDistBound32(q, h.vec32(nb), bestD); d < bestD {
				best, bestD, improved = nb, d, true
			}
		}
	}
	return best
}

// searchLayer is the beam search of one layer: expand the closest
// unexpanded candidate until the beam's worst result is closer than the
// best remaining candidate. Returns up to ef items sorted ascending by
// distance (ties by id, keeping results deterministic).
func (h *HNSW) searchLayer(q []float32, ep int32, ef int, layer int32, sc *searchScratch) []heapItem {
	sc.reset(len(h.levels))
	sc.visit(ep)
	d := sqDist32(q, h.vec32(ep))
	sc.cand.push(heapItem{dist: d, id: ep}, false)
	sc.res.push(heapItem{dist: d, id: ep}, true)

	for len(sc.cand.items) > 0 {
		c := sc.cand.pop(false)
		if len(sc.res.items) >= ef && c.dist > sc.res.items[0].dist {
			break
		}
		full := len(sc.res.items) >= ef
		bound := float32(math.Inf(1))
		if full {
			bound = sc.res.items[0].dist
		}
		for _, nb := range h.links[c.id][layer] {
			if sc.visited[nb] == sc.gen {
				continue
			}
			sc.visit(nb)
			// Once the beam is full, a candidate only matters if it
			// beats the current worst result — sqDistBound32 abandons
			// the accumulation the moment that becomes impossible.
			// Rejected partials are discarded, never stored, so beam
			// contents carry true float32 distances.
			d := sqDistBound32(q, h.vec32(nb), bound)
			if !full || d < bound {
				sc.cand.push(heapItem{dist: d, id: nb}, false)
				sc.res.push(heapItem{dist: d, id: nb}, true)
				if len(sc.res.items) > ef {
					sc.res.pop(true)
				}
				if full = len(sc.res.items) >= ef; full {
					bound = sc.res.items[0].dist
				}
			}
		}
	}
	// Drain the max-heap back to front: out comes back ascending by
	// distance (ties by id, matching the heap's comparator) without a
	// separate sort.
	out := sc.out[:0]
	if cap(out) < len(sc.res.items) {
		out = make([]heapItem, 0, len(sc.res.items)+ef)
	}
	out = out[:len(sc.res.items)]
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = sc.res.pop(true)
	}
	sc.out = out
	sc.cand.items = sc.cand.items[:0]
	return out
}

// selectNeighbors applies the HNSW diversity heuristic to candidates
// sorted ascending by distance to q: a candidate is kept only if it is
// closer to q than to every already-kept neighbor, so links spread
// across directions instead of bunching inside one cluster. Slots left
// over are filled with the nearest pruned candidates (keep-pruned
// variant), preserving connectivity on clustered corpora.
func (h *HNSW) selectNeighbors(q []float32, cands []heapItem, m int, sel []int32) []int32 {
	if len(cands) <= m {
		for _, c := range cands {
			sel = append(sel, c.id)
		}
		return sel
	}
	pruned := make([]int32, 0, len(cands))
	for _, c := range cands {
		if len(sel) >= m {
			break
		}
		cv := h.vec32(c.id)
		keep := true
		for _, s := range sel {
			if sqDistBound32(cv, h.vec32(s), c.dist) < c.dist {
				keep = false
				break
			}
		}
		if keep {
			sel = append(sel, c.id)
		} else {
			pruned = append(pruned, c.id)
		}
	}
	for _, id := range pruned {
		if len(sel) >= m {
			break
		}
		sel = append(sel, id)
	}
	return sel
}

// pruneLinks re-selects node nb's layer-l links down to maxM using the
// same diversity heuristic, relative to nb's own vector.
func (h *HNSW) pruneLinks(nb int32, l int32, maxM int, sc *searchScratch) {
	v := h.vec32(nb)
	cands := sc.prune[:0]
	for _, id := range h.links[nb][l] {
		cands = append(cands, heapItem{dist: sqDist32(v, h.vec32(id)), id: id})
	}
	sc.prune = cands
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].id < cands[j].id
	})
	h.links[nb][l] = h.selectNeighbors(v, cands, maxM, h.links[nb][l][:0])
}

// heapItem is one (distance, id) pair on a search heap. Distances are
// float32 — the beams order candidates over the float32 shadow; exact
// float64 distances are recomputed only for reported hits.
type heapItem struct {
	dist float32
	id   int32
}

// distHeap is a slice-backed binary heap over heapItems; max selects
// farthest-first (result beam) vs closest-first (candidate queue)
// ordering per call. Ties order by id so every traversal is
// deterministic.
type distHeap struct {
	items []heapItem
}

func (h *distHeap) before(a, b heapItem, max bool) bool {
	if a.dist != b.dist {
		if max {
			return a.dist > b.dist
		}
		return a.dist < b.dist
	}
	if max {
		return a.id > b.id
	}
	return a.id < b.id
}

func (h *distHeap) push(it heapItem, max bool) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.before(h.items[i], h.items[p], max) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *distHeap) pop(max bool) heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		next := i
		if l < last && h.before(h.items[l], h.items[next], max) {
			next = l
		}
		if r < last && h.before(h.items[r], h.items[next], max) {
			next = r
		}
		if next == i {
			break
		}
		h.items[i], h.items[next] = h.items[next], h.items[i]
		i = next
	}
	return top
}

// searchScratch is the pooled per-operation working set: the two beams,
// a generation-stamped visited array (cleared in O(1) per search by
// bumping the generation), and reusable selection buffers.
type searchScratch struct {
	visited []uint32
	gen     uint32
	cand    distHeap
	res     distHeap
	out     []heapItem
	prune   []heapItem
	sel     []int32
	q32     []float32
}

func (sc *searchScratch) reset(n int) {
	if len(sc.visited) < n {
		grown := make([]uint32, n+n/2+8)
		copy(grown, sc.visited)
		sc.visited = grown
	}
	sc.gen++
	if sc.gen == 0 { // wrapped: stamp everything stale
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.gen = 1
	}
	sc.cand.items = sc.cand.items[:0]
	sc.res.items = sc.res.items[:0]
}

func (sc *searchScratch) visit(id int32) { sc.visited[id] = sc.gen }
