package index

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"advmal/internal/synth"
)

// corpus draws n clustered labeled vectors in the shape of the scaled
// feature space (the same generator the bench suite indexes).
func corpus(seed int64, n, dim int) ([][]float64, []string) {
	return synth.LabeledVectors(rand.New(rand.NewSource(seed)), n, dim)
}

func buildBoth(t *testing.T, seed int64, n, dim int) (*Exact, *HNSW, [][]float64) {
	t.Helper()
	vecs, labels := corpus(seed, n, dim)
	ex := NewExact(nil)
	h := NewHNSW(HNSWConfig{Seed: seed}, nil)
	for i, v := range vecs {
		if _, err := ex.Add(labels[i], v); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Add(labels[i], v); err != nil {
			t.Fatal(err)
		}
	}
	return ex, h, vecs
}

// TestExactOracleOrdering pins the oracle itself: hits come back sorted
// ascending by true Euclidean distance with the exact nearest first.
func TestExactOracleOrdering(t *testing.T) {
	ex, _, vecs := buildBoth(t, 1, 500, 23)
	q := vecs[123]
	hits, err := ex.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 10 {
		t.Fatalf("got %d hits, want 10", len(hits))
	}
	if hits[0].ID != 123 || hits[0].Dist != 0 {
		t.Fatalf("query is a stored vector, expected itself first: %+v", hits[0])
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Dist < hits[i-1].Dist {
			t.Fatalf("hits out of order at %d: %v then %v", i, hits[i-1].Dist, hits[i].Dist)
		}
	}
	// Cross-check one distance by hand.
	var want float64
	for d, x := range q {
		diff := x - vecs[hits[3].ID][d]
		want += diff * diff
	}
	if got := hits[3].Dist; math.Abs(got-math.Sqrt(want)) > 1e-12 {
		t.Fatalf("distance %v, hand-computed %v", got, math.Sqrt(want))
	}
}

// recallAt10 measures |HNSW top-10 ∩ exact top-10| / 10 averaged over
// queries.
func recallAt10(t *testing.T, ex *Exact, h *HNSW, queries [][]float64) float64 {
	t.Helper()
	const k = 10
	var hit, total int
	for _, q := range queries {
		want, err := ex.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		truth := make(map[int]bool, k)
		for _, w := range want {
			truth[w.ID] = true
		}
		for _, g := range got {
			if truth[g.ID] {
				hit++
			}
		}
		total += len(want)
	}
	return float64(hit) / float64(total)
}

// TestHNSWRecallProperty pins the headline approximation guarantee:
// recall@10 ≥ 0.95 against the exact oracle, on both the clustered
// corpus shape and adversarially uniform random vectors, across seeds.
func TestHNSWRecallProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("clustered/seed=%d", seed), func(t *testing.T) {
			ex, h, _ := buildBoth(t, seed, 2000, 23)
			rng := rand.New(rand.NewSource(seed + 1000))
			queries, _ := synth.LabeledVectors(rng, 100, 23)
			if r := recallAt10(t, ex, h, queries); r < 0.95 {
				t.Fatalf("recall@10 = %.3f, want ≥ 0.95", r)
			}
		})
	}
	t.Run("uniform", func(t *testing.T) {
		rng := rand.New(rand.NewSource(99))
		ex := NewExact(nil)
		h := NewHNSW(HNSWConfig{Seed: 99}, nil)
		for i := 0; i < 2000; i++ {
			v := make([]float64, 23)
			for d := range v {
				v[d] = rng.Float64()
			}
			ex.Add("x", v)
			h.Add("x", v)
		}
		queries := make([][]float64, 100)
		for i := range queries {
			v := make([]float64, 23)
			for d := range v {
				v[d] = rng.Float64()
			}
			queries[i] = v
		}
		if r := recallAt10(t, ex, h, queries); r < 0.95 {
			t.Fatalf("recall@10 = %.3f, want ≥ 0.95", r)
		}
	})
}

// TestHNSWDeterministicBuild pins reproducibility: the same config and
// insertion sequence yield an identical graph, so every query answers
// identically across two independent builds.
func TestHNSWDeterministicBuild(t *testing.T) {
	vecs, labels := corpus(5, 1500, 23)
	build := func() *HNSW {
		h := NewHNSW(HNSWConfig{Seed: 5}, nil)
		for i, v := range vecs {
			if _, err := h.Add(labels[i], v); err != nil {
				t.Fatal(err)
			}
		}
		return h
	}
	a, b := build(), build()
	for i, la := range a.levels {
		if la != b.levels[i] {
			t.Fatalf("node %d level %d vs %d", i, la, b.levels[i])
		}
	}
	rng := rand.New(rand.NewSource(55))
	queries, _ := synth.LabeledVectors(rng, 50, 23)
	for _, q := range queries {
		ha, err := a.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := b.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(ha) != len(hb) {
			t.Fatalf("result lengths differ: %d vs %d", len(ha), len(hb))
		}
		for i := range ha {
			if ha[i] != hb[i] {
				t.Fatalf("hit %d differs: %+v vs %+v", i, ha[i], hb[i])
			}
		}
	}
}

// TestSnapshotRoundTripIdentity pins the persistence contract: a
// save/load round trip preserves every search result bit for bit, the
// triage calibration, and — because the level RNG is replayed — the
// behaviour of inserts made after the reload.
func TestSnapshotRoundTripIdentity(t *testing.T) {
	vecs, labels := corpus(9, 800, 23)
	c, err := BuildCorpus(HNSWConfig{Seed: 9}, vecs, labels, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Triage != c.Triage || loaded.DupEps != c.DupEps {
		t.Fatalf("metadata drifted: %+v vs %+v", loaded.Triage, c.Triage)
	}
	rng := rand.New(rand.NewSource(91))
	queries, _ := synth.LabeledVectors(rng, 50, 23)
	checkSame := func() {
		t.Helper()
		for _, q := range queries {
			ha, err := c.HNSW.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			hb, err := loaded.HNSW.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(ha) != len(hb) {
				t.Fatalf("result lengths differ: %d vs %d", len(ha), len(hb))
			}
			for i := range ha {
				if ha[i] != hb[i] {
					t.Fatalf("hit %d differs after round trip: %+v vs %+v", i, ha[i], hb[i])
				}
			}
		}
	}
	checkSame()
	// Continue inserting on both sides: the replayed RNG must keep the
	// graphs identical.
	more, moreLabels := corpus(92, 100, 23)
	for i, v := range more {
		if _, err := c.HNSW.Add(moreLabels[i], v); err != nil {
			t.Fatal(err)
		}
		if _, err := loaded.HNSW.Add(moreLabels[i], v); err != nil {
			t.Fatal(err)
		}
	}
	checkSame()
}

// TestSnapshotCorrupt pins the hardening: truncated, garbage, and
// internally inconsistent snapshots come back as errors, never panics
// or half-wired indexes.
func TestSnapshotCorrupt(t *testing.T) {
	vecs, labels := corpus(3, 50, 23)
	c, err := BuildCorpus(HNSWConfig{Seed: 3}, vecs, labels, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	cases := map[string][]byte{
		"empty":     {},
		"garbage":   []byte("not a gob snapshot at all"),
		"truncated": full[:len(full)/2],
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Load succeeded, want error", name)
		}
	}
	// Flip a byte in the middle: either a decode error or a validation
	// error, never success with a silently wrong index... unless the
	// flip only touched a vector payload, in which case the structure
	// still validates — so only assert no panic.
	mut := append([]byte(nil), full...)
	mut[len(mut)/3] ^= 0xff
	_, _ = Load(bytes.NewReader(mut))
}

// TestConcurrentSearchDuringInsert is the race test: one writer
// streaming inserts while many readers search. Run under -race (make
// race-index); correctness assertion is that every search that observes
// a non-empty index returns valid, sorted hits.
func TestConcurrentSearchDuringInsert(t *testing.T) {
	vecs, labels := corpus(13, 3000, 23)
	h := NewHNSW(HNSWConfig{Seed: 13}, nil)
	// Seed a few entries so searches never race an empty index.
	for i := 0; i < 50; i++ {
		if _, err := h.Add(labels[i], vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			queries, _ := synth.LabeledVectors(rng, 50, 23)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				q := queries[i%len(queries)]
				hits, err := h.Search(q, 5)
				if err != nil {
					t.Errorf("search: %v", err)
					return
				}
				for j := 1; j < len(hits); j++ {
					if hits[j].Dist < hits[j-1].Dist {
						t.Errorf("unsorted hits under concurrency")
						return
					}
				}
			}
		}(int64(w + 100))
	}
	for i := 50; i < len(vecs); i++ {
		if _, err := h.Add(labels[i], vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if h.Len() != len(vecs) {
		t.Fatalf("index holds %d entries, want %d", h.Len(), len(vecs))
	}
}

// TestDimAndEmptyErrors pins the error contract shared by both engines.
func TestDimAndEmptyErrors(t *testing.T) {
	for name, s := range map[string]interface {
		Searcher
		Add(string, []float64) (int, error)
	}{
		"exact": NewExact(nil),
		"hnsw":  NewHNSW(HNSWConfig{Seed: 1}, nil),
	} {
		if _, err := s.Search([]float64{1, 2}, 3); !errors.Is(err, ErrEmpty) {
			t.Errorf("%s: empty search err = %v, want ErrEmpty", name, err)
		}
		if _, err := s.Add("a", []float64{1, 2, 3}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := s.Add("b", []float64{1, 2}); !errors.Is(err, ErrDimMismatch) {
			t.Errorf("%s: short add err = %v, want ErrDimMismatch", name, err)
		}
		if _, err := s.Search([]float64{1}, 1); !errors.Is(err, ErrDimMismatch) {
			t.Errorf("%s: short query err = %v, want ErrDimMismatch", name, err)
		}
	}
}

// TestAttribution pins majority voting with nearer-label tie-breaks.
func TestAttribution(t *testing.T) {
	fam, votes := Attribution([]Hit{
		{ID: 0, Label: "mirai", Dist: 0.1},
		{ID: 1, Label: "gafgyt", Dist: 0.2},
		{ID: 2, Label: "mirai", Dist: 0.3},
	})
	if fam != "mirai" || votes != 2 {
		t.Fatalf("got (%s, %d), want (mirai, 2)", fam, votes)
	}
	// 2-2 tie: the nearer label wins.
	fam, _ = Attribution([]Hit{
		{ID: 0, Label: "gafgyt", Dist: 0.1},
		{ID: 1, Label: "mirai", Dist: 0.2},
		{ID: 2, Label: "mirai", Dist: 0.3},
		{ID: 3, Label: "gafgyt", Dist: 0.4},
	})
	if fam != "gafgyt" {
		t.Fatalf("tie should go to the nearer label, got %s", fam)
	}
}

// TestCalibrateTriage pins the triage semantics: corpus-shaped queries
// stay under the threshold, a far off-manifold query is flagged.
func TestCalibrateTriage(t *testing.T) {
	vecs, labels := corpus(21, 1000, 23)
	c, err := BuildCorpus(HNSWConfig{Seed: 21}, vecs, labels, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if c.Triage.Threshold <= 0 {
		t.Fatalf("threshold %v, want > 0", c.Triage.Threshold)
	}
	// A held-out corpus-shaped query: near the manifold, mostly unflagged.
	rng := rand.New(rand.NewSource(210))
	held, _ := synth.LabeledVectors(rng, 200, 23)
	flagged := 0
	for _, q := range held {
		hits, err := c.HNSW.Search(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if c.Triage.Score(hits).Flagged {
			flagged++
		}
	}
	if flagged > len(held)/4 {
		t.Fatalf("%d/%d clean held-out queries flagged — threshold too tight", flagged, len(held))
	}
	// A query far outside [0,1]^23: always flagged.
	far := make([]float64, 23)
	for i := range far {
		far[i] = 10
	}
	hits, err := c.HNSW.Search(far, 1)
	if err != nil {
		t.Fatal(err)
	}
	ti := c.Triage.Score(hits)
	if !ti.Flagged || ti.Distance <= c.Triage.Threshold {
		t.Fatalf("off-manifold query not flagged: %+v", ti)
	}
}
