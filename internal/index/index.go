// Package index provides the similarity layer of the detection system:
// approximate nearest-neighbor search over the scaled 23-dimensional
// Table II feature vectors, used for family attribution ("which family
// is this closest to?"), near-duplicate dedup of incoming samples, and
// adversarial triage — GEA splices (paper §V) move feature vectors off
// the training manifold, so a large distance to the nearest labeled
// neighbor is itself a detection signal.
//
// Two search engines share one storage layer: HNSW, the production
// hierarchical small-world graph index, and Exact, the brute-force scan
// kept as the property-tested oracle HNSW's recall is pinned against.
// Corpus bundles an engine with the calibrated triage threshold into
// the gob-persisted artefact cmd/serve loads at startup.
package index

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Errors shared by the package.
var (
	// ErrDimMismatch indicates a vector whose length differs from the
	// index's dimension.
	ErrDimMismatch = errors.New("index: vector dimension mismatch")
	// ErrEmpty indicates a search over an index with no entries.
	ErrEmpty = errors.New("index: empty index")
	// ErrCorrupt indicates a snapshot that fails validation at load.
	ErrCorrupt = errors.New("index: corrupt snapshot")
)

// Hit is one nearest-neighbor result.
type Hit struct {
	// ID is the entry's storage id (insertion order).
	ID int `json:"id"`
	// Label is the entry's family label.
	Label string `json:"label"`
	// Dist is the Euclidean distance from the query.
	Dist float64 `json:"dist"`
}

// Searcher is the k-NN query contract shared by Exact and HNSW.
// Implementations are safe for concurrent Search; HNSW additionally
// allows Search concurrent with Add.
type Searcher interface {
	// Search returns the k entries nearest to q, closest first. Fewer
	// than k are returned when the index holds fewer entries.
	Search(q []float64, k int) ([]Hit, error)
	// Len returns the number of indexed entries.
	Len() int
}

// Store is the pluggable vector storage layer under an index: an
// id-addressed, append-only collection of labeled vectors. MemStore is
// the in-memory implementation; the gob snapshot layer persists a
// Store's content alongside the index structure built over it.
type Store interface {
	// Append adds a labeled vector and returns its id. The vector is
	// copied; callers may reuse the slice.
	Append(label string, vec []float64) int
	// Vec returns the stored vector for id (not a copy — read only).
	Vec(id int) []float64
	// Label returns the stored label for id.
	Label(id int) string
	// Len returns the number of stored vectors.
	Len() int
	// Dim returns the vector dimension (0 while empty).
	Dim() int
}

// MemStore is the in-memory Store: flat parallel slices, ids are
// insertion order. Not internally synchronized — the owning index
// serializes access.
type MemStore struct {
	Labels  []string
	Vectors [][]float64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Append implements Store.
func (m *MemStore) Append(label string, vec []float64) int {
	m.Labels = append(m.Labels, label)
	m.Vectors = append(m.Vectors, append([]float64(nil), vec...))
	return len(m.Vectors) - 1
}

// Vec implements Store.
func (m *MemStore) Vec(id int) []float64 { return m.Vectors[id] }

// Label implements Store.
func (m *MemStore) Label(id int) string { return m.Labels[id] }

// Len implements Store.
func (m *MemStore) Len() int { return len(m.Vectors) }

// Dim implements Store.
func (m *MemStore) Dim() int {
	if len(m.Vectors) == 0 {
		return 0
	}
	return len(m.Vectors[0])
}

// sqDist returns the squared Euclidean distance between equal-length
// vectors. Comparisons happen in squared space; only reported Hit
// distances pay the square root.
func sqDist(a, b []float64) float64 {
	var s float64
	for i, x := range a {
		d := x - b[i]
		s += d * d
	}
	return s
}

// Exact is the brute-force oracle: Search scans every stored vector.
// O(n·dim) per query — correct by construction, and the baseline the
// bench suite and HNSW's recall property are measured against.
type Exact struct {
	store Store
}

// NewExact returns an exact-scan index over store (nil selects a fresh
// MemStore).
func NewExact(store Store) *Exact {
	if store == nil {
		store = NewMemStore()
	}
	return &Exact{store: store}
}

// Add appends a labeled vector.
func (e *Exact) Add(label string, vec []float64) (int, error) {
	if d := e.store.Dim(); d != 0 && len(vec) != d {
		return 0, fmt.Errorf("%w: got %d want %d", ErrDimMismatch, len(vec), d)
	}
	return e.store.Append(label, vec), nil
}

// Len implements Searcher.
func (e *Exact) Len() int { return e.store.Len() }

// Store returns the underlying storage layer.
func (e *Exact) Store() Store { return e.store }

// Search implements Searcher by scanning the whole store, keeping the
// k best in a bounded max-heap — O(n·dim + n·log k) per query with O(k)
// working memory, so the oracle stays usable as a baseline at 1M
// entries instead of materializing and sorting the full distance list.
func (e *Exact) Search(q []float64, k int) ([]Hit, error) {
	n := e.store.Len()
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(q) != e.store.Dim() {
		return nil, fmt.Errorf("%w: got %d want %d", ErrDimMismatch, len(q), e.store.Dim())
	}
	if k <= 0 {
		k = 1
	}
	var worst exactHeap // max-heap: root is the current k-th best
	for id := 0; id < n; id++ {
		d := sqDist(q, e.store.Vec(id))
		if len(worst) < k {
			worst.push(exactItem{dist: d, id: int32(id)})
			continue
		}
		top := worst[0]
		if d < top.dist || (d == top.dist && int32(id) < top.id) {
			worst.pop()
			worst.push(exactItem{dist: d, id: int32(id)})
		}
	}
	sort.Slice(worst, func(i, j int) bool {
		if worst[i].dist != worst[j].dist {
			return worst[i].dist < worst[j].dist
		}
		return worst[i].id < worst[j].id
	})
	hits := make([]Hit, len(worst))
	for i, it := range worst {
		hits[i] = Hit{ID: int(it.id), Label: e.store.Label(int(it.id)), Dist: math.Sqrt(it.dist)}
	}
	return hits, nil
}

// exactItem and exactHeap are the oracle's own float64 max-heap — kept
// separate from the HNSW beam heaps (which trade down to float32 for
// memory bandwidth) so the reference answer never inherits hot-path
// precision choices.
type exactItem struct {
	dist float64
	id   int32
}

type exactHeap []exactItem

func (h *exactHeap) push(it exactItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !(s[i].dist > s[p].dist || (s[i].dist == s[p].dist && s[i].id > s[p].id)) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *exactHeap) pop() exactItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		next := i
		if l < last && (s[l].dist > s[next].dist || (s[l].dist == s[next].dist && s[l].id > s[next].id)) {
			next = l
		}
		if r < last && (s[r].dist > s[next].dist || (s[r].dist == s[next].dist && s[r].id > s[next].id)) {
			next = r
		}
		if next == i {
			break
		}
		s[i], s[next] = s[next], s[i]
		i = next
	}
	return top
}

// Attribution summarizes a hit list into a family verdict: the majority
// label among the hits (ties broken toward the nearer hit) and its vote
// count.
func Attribution(hits []Hit) (family string, votes int) {
	counts := make(map[string]int, len(hits))
	for _, h := range hits {
		counts[h.Label]++
	}
	for _, h := range hits { // iterate hits (nearest first) so ties go to the nearer label
		if c := counts[h.Label]; c > votes {
			family, votes = h.Label, c
		}
	}
	return family, votes
}
