package ir

import (
	"fmt"
	"sort"
	"strings"

	"advmal/internal/graph"
)

// Block is a basic block: the half-open instruction range [Start, End) of a
// straight-line run with a single entry at Start and a single exit at End-1.
type Block struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Len returns the number of instructions in the block.
func (b Block) Len() int { return b.End - b.Start }

// CFG is the control flow graph recovered from a Program by Disassemble.
// Node i of G corresponds to Blocks[i]; Entry is always block 0 (the block
// containing instruction 0).
type CFG struct {
	Prog    *graph.Graph
	Blocks  []Block
	BlockOf []int // instruction index -> block index
}

// G returns the underlying directed graph.
func (c *CFG) G() *graph.Graph { return c.Prog }

// Disassemble recovers basic blocks and the control flow graph from the
// program's linear instruction stream, the role Radare2 plays in the paper:
// leaders are instruction 0, every jump target, and every instruction that
// follows a control transfer; edges are branch targets plus fallthrough.
// Ret blocks have no successors. The program must validate.
func Disassemble(p *Program) (*CFG, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("ir: disassemble: %w", err)
	}
	n := len(p.Code)
	leader := make([]bool, n)
	leader[0] = true
	for idx, ins := range p.Code {
		if ins.Op.IsJump() {
			leader[ins.A] = true
			if idx+1 < n {
				leader[idx+1] = true
			}
		}
		if ins.Op == Ret && idx+1 < n {
			leader[idx+1] = true
		}
	}
	// Materialize blocks in address order.
	var starts []int
	for idx, isL := range leader {
		if isL {
			starts = append(starts, idx)
		}
	}
	sort.Ints(starts)
	blocks := make([]Block, len(starts))
	blockOf := make([]int, n)
	for k, s := range starts {
		end := n
		if k+1 < len(starts) {
			end = starts[k+1]
		}
		blocks[k] = Block{Start: s, End: end}
		for i := s; i < end; i++ {
			blockOf[i] = k
		}
	}
	b := graph.NewBuilder(len(blocks)).AllowSelfLoops()
	for k, blk := range blocks {
		last := p.Code[blk.End-1]
		switch {
		case last.Op == Ret:
			// No successors.
		case last.Op == Jmp:
			if err := b.AddEdge(k, blockOf[last.A]); err != nil {
				return nil, err
			}
		case last.Op.IsCondJump():
			if err := b.AddEdge(k, blockOf[last.A]); err != nil {
				return nil, err
			}
			if blk.End < n {
				if err := b.AddEdge(k, blockOf[blk.End]); err != nil {
					return nil, err
				}
			}
		default:
			if blk.End < n {
				if err := b.AddEdge(k, blockOf[blk.End]); err != nil {
					return nil, err
				}
			}
		}
	}
	return &CFG{Prog: b.Build(), Blocks: blocks, BlockOf: blockOf}, nil
}

// BlockLabels renders each block's instructions for DOT output, reproducing
// the style of the paper's CFG figures.
func (c *CFG) BlockLabels(p *Program) []string {
	labels := make([]string, len(c.Blocks))
	for k, blk := range c.Blocks {
		var sb strings.Builder
		fmt.Fprintf(&sb, "0x%04x:\\l", blk.Start)
		for i := blk.Start; i < blk.End; i++ {
			sb.WriteString(p.Code[i].String())
			sb.WriteString("\\l")
		}
		labels[k] = sb.String()
	}
	return labels
}

// ExitBlocks returns the indices of blocks that end in Ret.
func (c *CFG) ExitBlocks(p *Program) []int {
	var exits []int
	for k, blk := range c.Blocks {
		if p.Code[blk.End-1].Op == Ret {
			exits = append(exits, k)
		}
	}
	return exits
}
