package ir

import (
	"errors"
	"fmt"
	"strings"
)

// Validation errors.
var (
	// ErrEmptyProgram indicates a program with no instructions.
	ErrEmptyProgram = errors.New("ir: empty program")
	// ErrBadTarget indicates a jump target outside the program.
	ErrBadTarget = errors.New("ir: jump target out of range")
	// ErrBadOperand indicates a register or memory operand out of range.
	ErrBadOperand = errors.New("ir: operand out of range")
	// ErrNoRet indicates a program without any ret instruction.
	ErrNoRet = errors.New("ir: program has no ret")
	// ErrUnknownLabel indicates a reference to an undefined assembler label.
	ErrUnknownLabel = errors.New("ir: unknown label")
	// ErrTooLarge indicates a program over MaxProgramLen instructions.
	ErrTooLarge = errors.New("ir: program too large")
)

// MaxProgramLen bounds program size. Synthetic corpus samples and GEA
// merges stay far below this; the cap exists so hostile or corrupt
// assembly text cannot drive unbounded allocation downstream (CFG
// construction is O(n), feature extraction up to O(n^2)).
const MaxProgramLen = 1 << 16

// Program is a single-function program: a linear instruction stream with
// jump targets encoded as absolute instruction indices.
type Program struct {
	Name string  `json:"name"`
	Code []Instr `json:"code"`
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	return &Program{
		Name: p.Name,
		Code: append([]Instr(nil), p.Code...),
	}
}

// Validate checks structural well-formedness: non-empty, every opcode
// defined, every jump target in range, every register/memory operand in
// range, and at least one ret.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return ErrEmptyProgram
	}
	if len(p.Code) > MaxProgramLen {
		return fmt.Errorf("%w: %d instructions (max %d)", ErrTooLarge, len(p.Code), MaxProgramLen)
	}
	hasRet := false
	for idx, ins := range p.Code {
		if !ins.Op.Valid() {
			return fmt.Errorf("ir: instruction %d: invalid opcode %d", idx, ins.Op)
		}
		switch ins.Op {
		case Ret:
			hasRet = true
		case MovI, AddI, SubI, MulI, CmpI:
			if ins.A < 0 || ins.A >= NumRegs {
				return fmt.Errorf("%w: instruction %d register r%d", ErrBadOperand, idx, ins.A)
			}
		case MovR, AddR, SubR, XorR, CmpR:
			if ins.A < 0 || ins.A >= NumRegs || ins.B < 0 || ins.B >= NumRegs {
				return fmt.Errorf("%w: instruction %d registers r%d,r%d", ErrBadOperand, idx, ins.A, ins.B)
			}
		case Load:
			if ins.A < 0 || ins.A >= NumRegs || ins.B < 0 || ins.B >= MemSize {
				return fmt.Errorf("%w: instruction %d load r%d,[%d]", ErrBadOperand, idx, ins.A, ins.B)
			}
		case Store:
			if ins.A < 0 || ins.A >= MemSize || ins.B < 0 || ins.B >= NumRegs {
				return fmt.Errorf("%w: instruction %d store [%d],r%d", ErrBadOperand, idx, ins.A, ins.B)
			}
		case Jmp, Jeq, Jne, Jlt, Jle, Jgt, Jge:
			if int(ins.A) < 0 || int(ins.A) >= len(p.Code) {
				return fmt.Errorf("%w: instruction %d target %d (len %d)", ErrBadTarget, idx, ins.A, len(p.Code))
			}
		}
	}
	if !hasRet {
		return ErrNoRet
	}
	return nil
}

// String renders the whole program as assembly, one instruction per line
// with its index.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; %s (%d instructions)\n", p.Name, len(p.Code))
	for i, ins := range p.Code {
		fmt.Fprintf(&sb, "%4d: %s\n", i, ins)
	}
	return sb.String()
}

// Asm assembles a program from symbolic instructions. Jump operands refer
// to labels defined with Label; everything else is emitted verbatim.
// The zero value is not usable; create with NewAsm.
type Asm struct {
	name   string
	code   []Instr
	labels map[string]int32
	fixups map[int]string // instruction index -> label
	err    error
}

// NewAsm returns an assembler for a program called name.
func NewAsm(name string) *Asm {
	return &Asm{
		name:   name,
		labels: make(map[string]int32),
		fixups: make(map[int]string),
	}
}

// Label defines label l at the current position. Redefinition is an error
// reported by Build.
func (a *Asm) Label(l string) *Asm {
	if _, dup := a.labels[l]; dup && a.err == nil {
		a.err = fmt.Errorf("ir: duplicate label %q", l)
	}
	a.labels[l] = int32(len(a.code))
	return a
}

// Emit appends a non-jump instruction.
func (a *Asm) Emit(op Op, operands ...int32) *Asm {
	ins := Instr{Op: op}
	if len(operands) > 0 {
		ins.A = operands[0]
	}
	if len(operands) > 1 {
		ins.B = operands[1]
	}
	a.code = append(a.code, ins)
	return a
}

// Jump appends a jump instruction targeting label l.
func (a *Asm) Jump(op Op, l string) *Asm {
	if !op.IsJump() && a.err == nil {
		a.err = fmt.Errorf("ir: %v is not a jump opcode", op)
	}
	a.fixups[len(a.code)] = l
	a.code = append(a.code, Instr{Op: op})
	return a
}

// Build resolves labels and returns the validated program.
func (a *Asm) Build() (*Program, error) {
	if a.err != nil {
		return nil, a.err
	}
	for idx, l := range a.fixups {
		target, ok := a.labels[l]
		if !ok {
			return nil, fmt.Errorf("%w: %q at instruction %d", ErrUnknownLabel, l, idx)
		}
		a.code[idx].A = target
	}
	p := &Program{Name: a.name, Code: a.code}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("ir: assembling %q: %w", a.name, err)
	}
	return p, nil
}
