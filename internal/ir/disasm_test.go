package ir

import (
	"strings"
	"testing"
)

func disasm(t *testing.T, p *Program) *CFG {
	t.Helper()
	cfg, err := Disassemble(p)
	if err != nil {
		t.Fatalf("Disassemble: %v", err)
	}
	return cfg
}

func TestDisassembleStraightLine(t *testing.T) {
	p := mustBuild(t, NewAsm("s").Emit(MovI, 0, 1).Emit(AddI, 0, 2).Emit(Ret))
	cfg := disasm(t, p)
	if cfg.G().N() != 1 || cfg.G().M() != 0 {
		t.Errorf("straight-line program: %d nodes %d edges, want 1/0", cfg.G().N(), cfg.G().M())
	}
	if cfg.Blocks[0].Len() != 3 {
		t.Errorf("block length = %d, want 3", cfg.Blocks[0].Len())
	}
}

func TestDisassembleDiamond(t *testing.T) {
	// if/else with join: 4 blocks, 4 edges.
	p := mustBuild(t, NewAsm("d").
		Emit(CmpI, 0, 0).
		Jump(Jle, "else").
		Emit(AddI, 4, 1).
		Jump(Jmp, "end").
		Label("else").
		Emit(SubI, 4, 1).
		Label("end").
		Emit(Ret))
	cfg := disasm(t, p)
	g := cfg.G()
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("diamond: %d nodes %d edges, want 4/4", g.N(), g.M())
	}
	// Entry branches to then (fallthrough) and else (target).
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) {
		t.Errorf("entry edges wrong: %v", g.Edges())
	}
	// Both arms join at the ret block.
	if !g.HasEdge(1, 3) || !g.HasEdge(2, 3) {
		t.Errorf("join edges wrong: %v", g.Edges())
	}
	if g.OutDegree(3) != 0 {
		t.Error("ret block must have no successors")
	}
}

func TestDisassembleSelfLoop(t *testing.T) {
	p := mustBuild(t, NewAsm("l").
		Emit(MovI, 5, 3).
		Label("head").
		Emit(SubI, 5, 1).
		Emit(CmpI, 5, 0).
		Jump(Jgt, "head").
		Emit(Ret))
	cfg := disasm(t, p)
	g := cfg.G()
	if g.N() != 3 {
		t.Fatalf("loop: %d nodes, want 3", g.N())
	}
	if !g.HasEdge(1, 1) {
		t.Errorf("missing self loop: %v", g.Edges())
	}
}

func TestDisassembleMultipleRets(t *testing.T) {
	p := mustBuild(t, NewAsm("r").
		Emit(CmpI, 0, 7).
		Jump(Jne, "ok").
		Emit(Ret).
		Label("ok").
		Emit(Ret))
	cfg := disasm(t, p)
	exits := cfg.ExitBlocks(p)
	if len(exits) != 2 {
		t.Errorf("ExitBlocks = %v, want 2 exits", exits)
	}
}

func TestDisassembleUnreachableBlockKept(t *testing.T) {
	// GEA relies on never-executed code still appearing in the CFG.
	p := mustBuild(t, NewAsm("u").
		Jump(Jmp, "end").
		Emit(AddI, 4, 1). // dead
		Label("end").
		Emit(Ret))
	cfg := disasm(t, p)
	if cfg.G().N() != 3 {
		t.Errorf("unreachable code dropped: %d nodes, want 3", cfg.G().N())
	}
}

func TestDisassembleBlockPartition(t *testing.T) {
	p := mustBuild(t, NewAsm("p").
		Emit(CmpI, 0, 0).
		Jump(Jle, "a").
		Emit(Nop).
		Label("a").
		Emit(CmpI, 1, 1).
		Jump(Jge, "b").
		Emit(Nop).
		Label("b").
		Emit(Ret))
	cfg := disasm(t, p)
	// Blocks must exactly partition the instruction range.
	covered := 0
	for k, blk := range cfg.Blocks {
		if blk.Start >= blk.End {
			t.Fatalf("block %d empty: %+v", k, blk)
		}
		covered += blk.Len()
		for i := blk.Start; i < blk.End; i++ {
			if cfg.BlockOf[i] != k {
				t.Fatalf("BlockOf[%d] = %d, want %d", i, cfg.BlockOf[i], k)
			}
		}
	}
	if covered != len(p.Code) {
		t.Errorf("blocks cover %d instructions, want %d", covered, len(p.Code))
	}
}

func TestDisassembleInvalidProgram(t *testing.T) {
	if _, err := Disassemble(&Program{}); err == nil {
		t.Error("Disassemble accepted an invalid program")
	}
}

func TestBlockLabels(t *testing.T) {
	p := mustBuild(t, NewAsm("bl").Emit(MovI, 0, 1).Emit(Ret))
	cfg := disasm(t, p)
	labels := cfg.BlockLabels(p)
	if len(labels) != 1 {
		t.Fatalf("labels = %d, want 1", len(labels))
	}
	if !strings.Contains(labels[0], "movi") || !strings.Contains(labels[0], "ret") {
		t.Errorf("label missing instructions: %q", labels[0])
	}
}

// TestDisassembleStability: re-disassembling the identical instruction
// stream yields the identical CFG — the disassembler is a function of the
// program bytes only.
func TestDisassembleStability(t *testing.T) {
	p := mustBuild(t, NewAsm("st").
		Emit(MovI, 5, 2).
		Label("h").
		Emit(CmpI, 5, 0).
		Jump(Jgt, "h").
		Emit(Ret))
	a := disasm(t, p)
	b := disasm(t, p.Clone())
	if !a.G().Equal(b.G()) {
		t.Error("disassembly not stable across clones")
	}
}
