package ir

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestParseOversizedProgram checks the parser rejects inputs over
// MaxProgramLen with an error instead of buffering them all.
func TestParseOversizedProgram(t *testing.T) {
	var sb strings.Builder
	for i := 0; i <= MaxProgramLen; i++ {
		sb.WriteString("nop\n")
	}
	sb.WriteString("ret\n")
	_, err := Parse(sb.String())
	if err == nil {
		t.Fatal("Parse accepted a program over MaxProgramLen")
	}
	if !errors.Is(err, ErrParse) || !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrParse wrapping ErrTooLarge, got %v", err)
	}
}

// TestParseAtSizeLimit checks the cap is not off by one: exactly
// MaxProgramLen instructions must still parse.
func TestParseAtSizeLimit(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < MaxProgramLen-1; i++ {
		sb.WriteString("nop\n")
	}
	sb.WriteString("ret\n")
	p, err := Parse(sb.String())
	if err != nil {
		t.Fatalf("Parse rejected a program at the size limit: %v", err)
	}
	if len(p.Code) != MaxProgramLen {
		t.Fatalf("got %d instructions, want %d", len(p.Code), MaxProgramLen)
	}
}

// TestValidateOversizedProgram checks hand-built oversized programs are
// rejected the same way (the Disassemble/Interp entry points validate).
func TestValidateOversizedProgram(t *testing.T) {
	p := &Program{Name: "huge", Code: make([]Instr, MaxProgramLen+1)}
	for i := range p.Code {
		p.Code[i] = Instr{Op: Nop}
	}
	p.Code[len(p.Code)-1] = Instr{Op: Ret}
	if err := p.Validate(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

// TestInterpUnterminatedLoopHitsBudget runs a program whose loop never
// exits and checks the interpreter cuts it off at the step budget
// promptly — an error, never a hang.
func TestInterpUnterminatedLoopHitsBudget(t *testing.T) {
	p, err := NewAsm("spin").
		Label("top").
		Emit(AddI, 0, 1).
		Jump(Jmp, "top").
		Emit(Ret).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	it := &Interp{MaxSteps: 10_000}
	_, err = it.Run(p)
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("want ErrStepBudget, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("budget cutoff took %v; interpreter is not bounding work", d)
	}
}

// TestInterpDefaultBudgetBoundsUnterminatedLoop is the same check with
// the zero-value interpreter: callers who forget MaxSteps still get the
// DefaultMaxSteps bound rather than an infinite loop.
func TestInterpDefaultBudgetBoundsUnterminatedLoop(t *testing.T) {
	p, err := NewAsm("spin").
		Label("top").
		Jump(Jmp, "top").
		Emit(Ret).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	it := &Interp{}
	if _, err := it.Run(p); !errors.Is(err, ErrStepBudget) {
		t.Fatalf("want ErrStepBudget, got %v", err)
	}
}

// TestParseMalformedNeverPanics throws structurally hostile inputs at
// the parser; each must come back as an error (or a valid program),
// never a panic.
func TestParseMalformedNeverPanics(t *testing.T) {
	inputs := []string{
		"",
		"\n\n\n",
		":",
		"::::",
		"mov",
		"mov r0",
		"mov r0, r1, r2",
		"jmp @999999",
		"jmp @-1",
		"load r0, [99999]",
		"store [99999], r0",
		"movi r99, 1\nret",
		"bogus r0, r1\nret",
		"movi r0, 99999999999999999999\nret",
		strings.Repeat("x", 1<<16),
		"; only a comment",
		"0: ret extra",
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%.40q) panicked: %v", in, r)
				}
			}()
			p, err := Parse(in)
			if err == nil && p != nil {
				if verr := p.Validate(); verr != nil {
					t.Errorf("Parse(%.40q) returned invalid program: %v", in, verr)
				}
			}
		}()
	}
}
