package ir

import (
	"errors"
	"fmt"
)

// Interpreter errors.
var (
	// ErrStepBudget indicates the program exceeded the step budget
	// without reaching a ret (possible infinite loop).
	ErrStepBudget = errors.New("ir: step budget exceeded")
)

// Event is one observable action: a Sys instruction together with the
// values of r0 and r1 at the time of the call. The sequence of events is a
// program's externally visible behaviour; GEA must preserve it exactly.
type Event struct {
	ID int32 `json:"id"`
	R0 int64 `json:"r0"`
	R1 int64 `json:"r1"`
}

// Trace is the observable behaviour of one execution.
type Trace struct {
	Events []Event `json:"events"`
	Result int64   `json:"result"` // r0 at ret
	Steps  int     `json:"steps"`
}

// Equal reports whether two traces are observationally identical (same
// events in order and same result; step counts may differ).
func (t *Trace) Equal(u *Trace) bool {
	if t.Result != u.Result || len(t.Events) != len(u.Events) {
		return false
	}
	for i, e := range t.Events {
		if u.Events[i] != e {
			return false
		}
	}
	return true
}

// Interp executes programs. The zero value is ready to use with the default
// step budget.
type Interp struct {
	// MaxSteps bounds execution; 0 means DefaultMaxSteps.
	MaxSteps int
}

// DefaultMaxSteps is the default execution step budget.
const DefaultMaxSteps = 1 << 20

// Run executes p with inputs loaded into r0..r3 (missing inputs are zero,
// extra inputs are ignored) and returns the observable trace. The program
// must validate. Execution is fully deterministic.
func (it *Interp) Run(p *Program, inputs ...int64) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("ir: run: %w", err)
	}
	budget := it.MaxSteps
	if budget <= 0 {
		budget = DefaultMaxSteps
	}
	var (
		regs [NumRegs]int64
		mem  [MemSize]int64
		flag int // sign of last comparison: -1, 0, +1
		tr   Trace
	)
	for i, in := range inputs {
		if i >= 4 {
			break
		}
		regs[i] = in
	}
	pc := 0
	for steps := 0; ; steps++ {
		if steps >= budget {
			return nil, fmt.Errorf("%w: %q after %d steps", ErrStepBudget, p.Name, steps)
		}
		if pc < 0 || pc >= len(p.Code) {
			// Falling off the end behaves like ret; generated programs
			// always end in ret so this is defensive.
			tr.Result = regs[0]
			tr.Steps = steps
			return &tr, nil
		}
		ins := p.Code[pc]
		next := pc + 1
		switch ins.Op {
		case Nop:
		case MovI:
			regs[ins.A] = int64(ins.B)
		case MovR:
			regs[ins.A] = regs[ins.B]
		case AddI:
			regs[ins.A] += int64(ins.B)
		case AddR:
			regs[ins.A] += regs[ins.B]
		case SubI:
			regs[ins.A] -= int64(ins.B)
		case SubR:
			regs[ins.A] -= regs[ins.B]
		case MulI:
			regs[ins.A] *= int64(ins.B)
		case XorR:
			regs[ins.A] ^= regs[ins.B]
		case Load:
			regs[ins.A] = mem[ins.B]
		case Store:
			mem[ins.A] = regs[ins.B]
		case CmpI:
			flag = cmp(regs[ins.A], int64(ins.B))
		case CmpR:
			flag = cmp(regs[ins.A], regs[ins.B])
		case Jmp:
			next = int(ins.A)
		case Jeq:
			if flag == 0 {
				next = int(ins.A)
			}
		case Jne:
			if flag != 0 {
				next = int(ins.A)
			}
		case Jlt:
			if flag < 0 {
				next = int(ins.A)
			}
		case Jle:
			if flag <= 0 {
				next = int(ins.A)
			}
		case Jgt:
			if flag > 0 {
				next = int(ins.A)
			}
		case Jge:
			if flag >= 0 {
				next = int(ins.A)
			}
		case Sys:
			tr.Events = append(tr.Events, Event{ID: ins.A, R0: regs[0], R1: regs[1]})
		case Ret:
			tr.Result = regs[0]
			tr.Steps = steps + 1
			return &tr, nil
		default:
			return nil, fmt.Errorf("ir: run %q: invalid opcode %d at %d", p.Name, ins.Op, pc)
		}
		pc = next
	}
}

func cmp(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
