// Package ir implements the executable program substrate that stands in for
// the paper's compiled IoT binaries. It provides a small register
// instruction set, an assembler with symbolic labels, a disassembler that
// recovers basic blocks and the control flow graph from the linear
// instruction stream (the role Radare2 plays in the paper), and an
// interpreter whose observable syscall trace is used to verify that GEA
// preserves program functionality.
//
// Programs model a single function (the paper extracts the CFG of sym.main),
// with 8 general-purpose registers, a comparison flag, and a small flat
// memory. Inputs arrive in r0..r3; observable behaviour is the sequence of
// Sys instructions executed together with their argument registers.
package ir

import (
	"fmt"
)

// Op identifies an instruction opcode.
type Op uint8

// Instruction opcodes. Operand conventions (A, B are the two operand
// fields of Instr):
//
//	Nop            -
//	MovI  rd, imm  A=rd  B=imm
//	MovR  rd, rs   A=rd  B=rs
//	AddI  rd, imm  A=rd  B=imm
//	AddR  rd, rs   A=rd  B=rs
//	SubI  rd, imm  A=rd  B=imm
//	SubR  rd, rs   A=rd  B=rs
//	MulI  rd, imm  A=rd  B=imm
//	XorR  rd, rs   A=rd  B=rs
//	Load  rd, addr A=rd  B=addr (direct)
//	Store addr, rs A=addr B=rs
//	CmpI  ra, imm  A=ra  B=imm
//	CmpR  ra, rb   A=ra  B=rb
//	Jmp   target   A=instruction index
//	Jeq/Jne/Jlt/Jle/Jgt/Jge target (conditional on last Cmp)
//	Sys   id       A=syscall id (observable; consumes r0, r1)
//	Ret            -
const (
	Nop Op = iota + 1
	MovI
	MovR
	AddI
	AddR
	SubI
	SubR
	MulI
	XorR
	Load
	Store
	CmpI
	CmpR
	Jmp
	Jeq
	Jne
	Jlt
	Jle
	Jgt
	Jge
	Sys
	Ret

	opEnd // sentinel; keep last
)

var opNames = map[Op]string{
	Nop: "nop", MovI: "movi", MovR: "mov", AddI: "addi", AddR: "add",
	SubI: "subi", SubR: "sub", MulI: "muli", XorR: "xor", Load: "load",
	Store: "store", CmpI: "cmpi", CmpR: "cmp", Jmp: "jmp", Jeq: "jeq",
	Jne: "jne", Jlt: "jlt", Jle: "jle", Jgt: "jgt", Jge: "jge",
	Sys: "sys", Ret: "ret",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o >= Nop && o < opEnd }

// IsJump reports whether o transfers control to an explicit target.
func (o Op) IsJump() bool { return o >= Jmp && o <= Jge }

// IsCondJump reports whether o is a conditional jump (may fall through).
func (o Op) IsCondJump() bool { return o >= Jeq && o <= Jge }

// Terminates reports whether control never falls through past o.
func (o Op) Terminates() bool { return o == Ret || o == Jmp }

// NumRegs is the number of general-purpose registers (r0..r7).
const NumRegs = 8

// MemSize is the number of words of flat data memory.
const MemSize = 256

// Instr is a single instruction. Operand meaning depends on Op; see the
// opcode documentation.
type Instr struct {
	Op Op    `json:"op"`
	A  int32 `json:"a,omitempty"`
	B  int32 `json:"b,omitempty"`
}

// String renders the instruction in assembly-like syntax.
func (i Instr) String() string {
	switch i.Op {
	case Nop, Ret:
		return i.Op.String()
	case MovI, AddI, SubI, MulI, CmpI:
		return fmt.Sprintf("%-5s r%d, %d", i.Op, i.A, i.B)
	case MovR, AddR, SubR, XorR, CmpR:
		return fmt.Sprintf("%-5s r%d, r%d", i.Op, i.A, i.B)
	case Load:
		return fmt.Sprintf("%-5s r%d, [%d]", i.Op, i.A, i.B)
	case Store:
		return fmt.Sprintf("%-5s [%d], r%d", i.Op, i.A, i.B)
	case Jmp, Jeq, Jne, Jlt, Jle, Jgt, Jge:
		return fmt.Sprintf("%-5s @%d", i.Op, i.A)
	case Sys:
		return fmt.Sprintf("%-5s %d", i.Op, i.A)
	default:
		return fmt.Sprintf("%-5s %d, %d", i.Op, i.A, i.B)
	}
}
