package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// FuzzParse feeds arbitrary text to the assembly parser: it must never
// panic, and anything it accepts must validate, disassemble, and render
// back to parseable text.
func FuzzParse(f *testing.F) {
	f.Add("movi r0, 1\nret")
	f.Add("; name\n 0: jmp   @1\n 1: ret\n")
	f.Add("cmpi r1, -3\njle @0\nret")
	f.Add("load r7, [255]\nstore [0], r7\nsys 13\nret")
	f.Add("garbage input !!!")
	f.Add("movi r0\nret")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(text)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse accepted a non-validating program: %v", err)
		}
		if _, err := Disassemble(p); err != nil {
			t.Fatalf("accepted program fails to disassemble: %v", err)
		}
		back, err := Parse(p.String())
		if err != nil {
			t.Fatalf("rendered program does not re-parse: %v", err)
		}
		if len(back.Code) != len(p.Code) {
			t.Fatalf("round trip changed length: %d -> %d", len(p.Code), len(back.Code))
		}
	})
}

// FuzzDisassemble feeds arbitrary instruction encodings: Disassemble
// must never panic and must reject what Validate rejects.
func FuzzDisassemble(f *testing.F) {
	f.Add([]byte{byte(MovI), 0, 5, byte(Ret), 0, 0})
	f.Add([]byte{byte(Jmp), 0, 0, byte(Ret), 0, 0})
	f.Add([]byte{99, 1, 2})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var p Program
		for i := 0; i+2 < len(raw); i += 3 {
			p.Code = append(p.Code, Instr{
				Op: Op(raw[i]),
				A:  int32(int8(raw[i+1])),
				B:  int32(int8(raw[i+2])),
			})
		}
		cfg, err := Disassemble(&p)
		if err != nil {
			return
		}
		// Accepted programs must have a complete block partition.
		covered := 0
		for _, blk := range cfg.Blocks {
			covered += blk.Len()
		}
		if covered != len(p.Code) {
			t.Fatalf("blocks cover %d of %d instructions", covered, len(p.Code))
		}
	})
}

// TestParseRoundTripRandomPrograms: property check that every randomly
// assembled valid program round-trips through text.
func TestParseRoundTripRandomPrograms(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAsm("rt")
		n := 3 + rng.Intn(20)
		a.Label("start")
		for i := 0; i < n; i++ {
			switch rng.Intn(5) {
			case 0:
				a.Emit(MovI, int32(rng.Intn(NumRegs)), int32(rng.Intn(100)-50))
			case 1:
				a.Emit(AddR, int32(rng.Intn(NumRegs)), int32(rng.Intn(NumRegs)))
			case 2:
				a.Emit(CmpI, int32(rng.Intn(NumRegs)), int32(rng.Intn(16)))
				a.Jump(Jge, "end")
			case 3:
				a.Emit(Store, int32(rng.Intn(MemSize)), int32(rng.Intn(NumRegs)))
			case 4:
				a.Emit(Sys, int32(rng.Intn(16)))
			}
		}
		a.Label("end")
		a.Emit(Ret)
		p, err := a.Build()
		if err != nil {
			return false
		}
		back, err := Parse(p.String())
		if err != nil {
			return false
		}
		if len(back.Code) != len(p.Code) {
			return false
		}
		for i := range p.Code {
			if back.Code[i] != p.Code[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
