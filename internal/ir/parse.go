package ir

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrParse wraps assembly text parse failures.
var ErrParse = errors.New("ir: parse error")

// Parse reads the textual assembly format emitted by Program.String back
// into a Program: an optional `; name` header line, then one instruction
// per line, each optionally prefixed with `index:`. Blank lines and
// `;` comments are skipped. Jump targets use `@index` absolute form.
func Parse(text string) (*Program, error) {
	p := &Program{Name: "parsed"}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			// Header comment: "; name (...)".
			if p.Name == "parsed" && len(p.Code) == 0 {
				rest := strings.TrimSpace(strings.TrimPrefix(line, ";"))
				if i := strings.IndexByte(rest, '('); i > 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				if rest != "" {
					p.Name = rest
				}
			}
			continue
		}
		// Strip a leading "NN:" index prefix.
		if i := strings.IndexByte(line, ':'); i > 0 {
			if _, err := strconv.Atoi(strings.TrimSpace(line[:i])); err == nil {
				line = strings.TrimSpace(line[i+1:])
			}
		}
		if line == "" {
			continue
		}
		ins, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrParse, lineNo+1, err)
		}
		if len(p.Code) >= MaxProgramLen {
			// Fail fast rather than buffering an arbitrarily large input
			// only for Validate to reject it.
			return nil, fmt.Errorf("%w: %w (max %d instructions)", ErrParse, ErrTooLarge, MaxProgramLen)
		}
		p.Code = append(p.Code, ins)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	return p, nil
}

var mnemonics = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

func parseInstr(line string) (Instr, error) {
	fields := strings.Fields(line)
	op, ok := mnemonics[fields[0]]
	if !ok {
		return Instr{}, fmt.Errorf("unknown mnemonic %q", fields[0])
	}
	operands := strings.Join(fields[1:], " ")
	parts := splitOperands(operands)
	ins := Instr{Op: op}
	need := operandCount(op)
	if len(parts) != need {
		return Instr{}, fmt.Errorf("%s takes %d operands, got %d", op, need, len(parts))
	}
	for i, part := range parts {
		v, err := parseOperand(part)
		if err != nil {
			return Instr{}, err
		}
		if i == 0 {
			ins.A = v
		} else {
			ins.B = v
		}
	}
	return ins, nil
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func operandCount(op Op) int {
	switch op {
	case Nop, Ret:
		return 0
	case Jmp, Jeq, Jne, Jlt, Jle, Jgt, Jge, Sys:
		return 1
	default:
		return 2
	}
}

func parseOperand(s string) (int32, error) {
	switch {
	case strings.HasPrefix(s, "r"):
		v, err := strconv.Atoi(s[1:])
		if err != nil {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return int32(v), nil
	case strings.HasPrefix(s, "@"):
		v, err := strconv.Atoi(s[1:])
		if err != nil {
			return 0, fmt.Errorf("bad jump target %q", s)
		}
		return int32(v), nil
	case strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]"):
		v, err := strconv.Atoi(s[1 : len(s)-1])
		if err != nil {
			return 0, fmt.Errorf("bad memory address %q", s)
		}
		return int32(v), nil
	default:
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return int32(v), nil
	}
}
