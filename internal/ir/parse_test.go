package ir

import (
	"errors"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	orig := mustBuild(t, NewAsm("roundtrip").
		Emit(MovI, 4, -7).
		Label("head").
		Emit(AddI, 4, 1).
		Emit(CmpI, 4, 9).
		Jump(Jle, "head").
		Emit(Load, 7, 12).
		Emit(Store, 12, 7).
		Emit(XorR, 4, 7).
		Emit(Sys, 13).
		Emit(MovR, 0, 4).
		Emit(Ret))
	parsed, err := Parse(orig.String())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if parsed.Name != "roundtrip" {
		t.Errorf("name = %q", parsed.Name)
	}
	if len(parsed.Code) != len(orig.Code) {
		t.Fatalf("length %d, want %d", len(parsed.Code), len(orig.Code))
	}
	for i := range orig.Code {
		if parsed.Code[i] != orig.Code[i] {
			t.Errorf("instr %d = %+v, want %+v", i, parsed.Code[i], orig.Code[i])
		}
	}
}

func TestParseIgnoresCommentsAndBlanks(t *testing.T) {
	p, err := Parse("; demo\n\n  movi r0, 5\n; trailing comment\nret\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" || len(p.Code) != 2 {
		t.Errorf("parsed %q with %d instructions", p.Name, len(p.Code))
	}
}

func TestParseWithoutIndexPrefixes(t *testing.T) {
	p, err := Parse("movi r0, 1\naddi r0, 2\nret")
	if err != nil {
		t.Fatal(err)
	}
	it := &Interp{}
	tr, err := it.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Result != 3 {
		t.Errorf("result = %d, want 3", tr.Result)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		text string
	}{
		{"unknown mnemonic", "frobnicate r1, r2\nret"},
		{"wrong operand count", "movi r0\nret"},
		{"bad register", "movi rx, 1\nret"},
		{"bad immediate", "movi r0, lots\nret"},
		{"bad target", "jmp @nope\nret"},
		{"bad address", "load r0, [many]\nret"},
		{"out of range target", "jmp @99\nret"},
		{"empty", ""},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.text); !errors.Is(err, ErrParse) {
				t.Errorf("Parse(%q) = %v, want ErrParse", tc.text, err)
			}
		})
	}
}

func TestAnalyze(t *testing.T) {
	p := mustBuild(t, NewAsm("an").
		Emit(CmpI, 0, 7).
		Jump(Jne, "ok").
		Emit(Ret). // early exit
		Label("ok").
		Emit(MovI, 5, 3).
		Label("head").
		Emit(SubI, 5, 1).
		Emit(CmpI, 5, 0).
		Jump(Jgt, "head").
		Emit(Ret))
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Blocks < 4 {
		t.Errorf("blocks = %d", a.Blocks)
	}
	if len(a.ExitBlocks) != 2 {
		t.Errorf("exits = %v, want 2", a.ExitBlocks)
	}
	if a.Loops != 1 {
		t.Errorf("loops = %d, want 1 (the self loop)", a.Loops)
	}
	if len(a.UnreachableBlocks) != 0 {
		t.Errorf("unreachable = %v, want none", a.UnreachableBlocks)
	}
	if len(a.NoExitPath) != 0 {
		t.Errorf("no-exit blocks = %v, want none", a.NoExitPath)
	}
}

func TestAnalyzeFindsDeadCodeAndTraps(t *testing.T) {
	// jmp over a dead block; then a reachable spin without exit path is
	// deliberately NOT constructible with a validating ret-terminated
	// program unless the spin jumps to itself before any ret.
	p := mustBuild(t, NewAsm("dead").
		Jump(Jmp, "live").
		Emit(AddI, 4, 1). // dead
		Label("live").
		Emit(Ret))
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.UnreachableBlocks) != 1 {
		t.Errorf("unreachable = %v, want exactly the dead block", a.UnreachableBlocks)
	}

	// An unconditional self-spin that never reaches ret.
	spin := mustBuild(t, NewAsm("spin").
		Label("s").
		Jump(Jmp, "s").
		Emit(Ret))
	a, err = Analyze(spin)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.NoExitPath) != 1 {
		t.Errorf("no-exit blocks = %v, want the spin block", a.NoExitPath)
	}
}

func TestAnalyzeInvalid(t *testing.T) {
	if _, err := Analyze(&Program{}); err == nil {
		t.Error("Analyze accepted invalid program")
	}
}
