package ir

// Analysis is a static report over a program's CFG: the reachability and
// structure information §II-B of the paper describes CFGs being used for
// (unreachable code, loop structure, exit structure).
type Analysis struct {
	// Blocks is the basic-block count (CFG order).
	Blocks int
	// UnreachableBlocks lists blocks no path from the entry reaches.
	UnreachableBlocks []int
	// ExitBlocks lists blocks ending in ret.
	ExitBlocks []int
	// NoExitPath lists reachable blocks from which no ret is reachable
	// (necessarily-infinite execution once entered).
	NoExitPath []int
	// Loops is the number of natural-loop back edges.
	Loops int
	// SCCCount is the number of strongly connected components.
	SCCCount int
}

// Analyze disassembles the program and computes the static Analysis.
func Analyze(p *Program) (*Analysis, error) {
	cfg, err := Disassemble(p)
	if err != nil {
		return nil, err
	}
	g := cfg.G()
	a := &Analysis{
		Blocks:     g.N(),
		ExitBlocks: cfg.ExitBlocks(p),
		Loops:      len(g.BackEdges(0)),
		SCCCount:   len(g.SCCs()),
	}
	reach := g.ReachableFrom(0)
	for v, ok := range reach {
		if !ok {
			a.UnreachableBlocks = append(a.UnreachableBlocks, v)
		}
	}
	// Blocks that cannot reach any exit: reverse-reachability from exits.
	rev := g.Reverse()
	canExit := make([]bool, g.N())
	for _, e := range a.ExitBlocks {
		for v, ok := range rev.ReachableFrom(e) {
			if ok {
				canExit[v] = true
			}
		}
	}
	for v := range canExit {
		if reach[v] && !canExit[v] {
			a.NoExitPath = append(a.NoExitPath, v)
		}
	}
	return a, nil
}
