package ir

import (
	"errors"
	"strings"
	"testing"
)

func mustBuild(t *testing.T, a *Asm) *Program {
	t.Helper()
	p, err := a.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{Nop, "nop"}, {MovI, "movi"}, {Jle, "jle"}, {Sys, "sys"}, {Ret, "ret"},
		{Op(99), "op(99)"},
	}
	for _, tc := range tests {
		if got := tc.op.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.op, got, tc.want)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !Jmp.IsJump() || !Jge.IsJump() || Ret.IsJump() || AddI.IsJump() {
		t.Error("IsJump misclassifies")
	}
	if Jmp.IsCondJump() || !Jeq.IsCondJump() || !Jge.IsCondJump() {
		t.Error("IsCondJump misclassifies")
	}
	if !Ret.Terminates() || !Jmp.Terminates() || Jeq.Terminates() {
		t.Error("Terminates misclassifies")
	}
	if Op(0).Valid() || Op(200).Valid() || !Sys.Valid() {
		t.Error("Valid misclassifies")
	}
}

func TestInstrString(t *testing.T) {
	tests := []struct {
		ins  Instr
		want string
	}{
		{Instr{Op: Ret}, "ret"},
		{Instr{Op: MovI, A: 3, B: -7}, "movi  r3, -7"},
		{Instr{Op: AddR, A: 1, B: 2}, "add   r1, r2"},
		{Instr{Op: Load, A: 1, B: 9}, "load  r1, [9]"},
		{Instr{Op: Store, A: 9, B: 1}, "store [9], r1"},
		{Instr{Op: Jle, A: 4}, "jle   @4"},
		{Instr{Op: Sys, A: 13}, "sys   13"},
	}
	for _, tc := range tests {
		if got := tc.ins.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestAsmResolvesLabels(t *testing.T) {
	p := mustBuild(t, NewAsm("t").
		Emit(MovI, 0, 1).
		Label("head").
		Emit(AddI, 0, 1).
		Emit(CmpI, 0, 3).
		Jump(Jlt, "head").
		Emit(Ret))
	if p.Code[3].Op != Jlt || p.Code[3].A != 1 {
		t.Errorf("jump not resolved to index 1: %+v", p.Code[3])
	}
}

func TestAsmUnknownLabel(t *testing.T) {
	_, err := NewAsm("t").Jump(Jmp, "nowhere").Emit(Ret).Build()
	if !errors.Is(err, ErrUnknownLabel) {
		t.Errorf("Build = %v, want ErrUnknownLabel", err)
	}
}

func TestAsmDuplicateLabel(t *testing.T) {
	_, err := NewAsm("t").Label("x").Emit(Nop).Label("x").Emit(Ret).Build()
	if err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Errorf("Build = %v, want duplicate label error", err)
	}
}

func TestAsmNonJumpViaJump(t *testing.T) {
	_, err := NewAsm("t").Label("l").Jump(AddI, "l").Emit(Ret).Build()
	if err == nil {
		t.Error("Jump with non-jump opcode accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		prog Program
		want error
	}{
		{"empty", Program{Name: "e"}, ErrEmptyProgram},
		{"noret", Program{Code: []Instr{{Op: Nop}}}, ErrNoRet},
		{"badtarget", Program{Code: []Instr{{Op: Jmp, A: 5}, {Op: Ret}}}, ErrBadTarget},
		{"badreg", Program{Code: []Instr{{Op: MovI, A: 9}, {Op: Ret}}}, ErrBadOperand},
		{"badreg2", Program{Code: []Instr{{Op: AddR, A: 0, B: 12}, {Op: Ret}}}, ErrBadOperand},
		{"badload", Program{Code: []Instr{{Op: Load, A: 0, B: 9999}, {Op: Ret}}}, ErrBadOperand},
		{"badstore", Program{Code: []Instr{{Op: Store, A: -1, B: 0}, {Op: Ret}}}, ErrBadOperand},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.prog.Validate(); !errors.Is(err, tc.want) {
				t.Errorf("Validate() = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestValidateBadOpcode(t *testing.T) {
	p := Program{Code: []Instr{{Op: Op(77)}, {Op: Ret}}}
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted invalid opcode")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := mustBuild(t, NewAsm("orig").Emit(MovI, 0, 1).Emit(Ret))
	c := p.Clone()
	c.Code[0].B = 99
	c.Name = "copy"
	if p.Code[0].B != 1 || p.Name != "orig" {
		t.Error("Clone shares state with the original")
	}
}

func TestProgramString(t *testing.T) {
	p := mustBuild(t, NewAsm("demo").Emit(MovI, 0, 5).Emit(Ret))
	s := p.String()
	for _, want := range []string{"demo", "movi", "ret", "0:", "1:"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
