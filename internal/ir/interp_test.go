package ir

import (
	"errors"
	"testing"
)

func run(t *testing.T, p *Program, inputs ...int64) *Trace {
	t.Helper()
	it := &Interp{}
	tr, err := it.Run(p, inputs...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return tr
}

func TestInterpArithmetic(t *testing.T) {
	tests := []struct {
		name string
		emit func(a *Asm)
		want int64
	}{
		{"movi", func(a *Asm) { a.Emit(MovI, 0, 42) }, 42},
		{"movr", func(a *Asm) { a.Emit(MovI, 1, 7).Emit(MovR, 0, 1) }, 7},
		{"addi", func(a *Asm) { a.Emit(MovI, 0, 40).Emit(AddI, 0, 2) }, 42},
		{"addr", func(a *Asm) { a.Emit(MovI, 0, 40).Emit(MovI, 1, 2).Emit(AddR, 0, 1) }, 42},
		{"subi", func(a *Asm) { a.Emit(MovI, 0, 50).Emit(SubI, 0, 8) }, 42},
		{"subr", func(a *Asm) { a.Emit(MovI, 0, 50).Emit(MovI, 1, 8).Emit(SubR, 0, 1) }, 42},
		{"muli", func(a *Asm) { a.Emit(MovI, 0, 21).Emit(MulI, 0, 2) }, 42},
		{"xorr", func(a *Asm) { a.Emit(MovI, 0, 0xff).Emit(MovI, 1, 0xd5).Emit(XorR, 0, 1) }, 42},
		{"nop", func(a *Asm) { a.Emit(MovI, 0, 42).Emit(Nop) }, 42},
		{"negative", func(a *Asm) { a.Emit(MovI, 0, -42) }, -42},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAsm(tc.name)
			tc.emit(a)
			a.Emit(Ret)
			tr := run(t, mustBuild(t, a))
			if tr.Result != tc.want {
				t.Errorf("result = %d, want %d", tr.Result, tc.want)
			}
		})
	}
}

func TestInterpMemory(t *testing.T) {
	p := mustBuild(t, NewAsm("mem").
		Emit(MovI, 1, 123).
		Emit(Store, 10, 1).
		Emit(Load, 0, 10).
		Emit(Ret))
	if tr := run(t, p); tr.Result != 123 {
		t.Errorf("load/store result = %d, want 123", tr.Result)
	}
	// Uninitialized memory reads as zero.
	p2 := mustBuild(t, NewAsm("mem0").Emit(Load, 0, 200).Emit(Ret))
	if tr := run(t, p2); tr.Result != 0 {
		t.Errorf("uninitialized load = %d, want 0", tr.Result)
	}
}

func TestInterpConditionals(t *testing.T) {
	// Program computes max(r0, r1).
	p := mustBuild(t, NewAsm("max").
		Emit(CmpR, 0, 1).
		Jump(Jge, "done").
		Emit(MovR, 0, 1).
		Label("done").
		Emit(Ret))
	tests := []struct {
		a, b, want int64
	}{
		{3, 5, 5}, {5, 3, 5}, {4, 4, 4}, {-2, -7, -2},
	}
	for _, tc := range tests {
		if tr := run(t, p, tc.a, tc.b); tr.Result != tc.want {
			t.Errorf("max(%d,%d) = %d, want %d", tc.a, tc.b, tr.Result, tc.want)
		}
	}
}

func TestInterpAllJumpKinds(t *testing.T) {
	// For each conditional jump, check both taken and not-taken.
	tests := []struct {
		op    Op
		a, b  int64
		taken bool
	}{
		{Jeq, 1, 1, true}, {Jeq, 1, 2, false},
		{Jne, 1, 2, true}, {Jne, 1, 1, false},
		{Jlt, 1, 2, true}, {Jlt, 2, 2, false},
		{Jle, 2, 2, true}, {Jle, 3, 2, false},
		{Jgt, 3, 2, true}, {Jgt, 2, 2, false},
		{Jge, 2, 2, true}, {Jge, 1, 2, false},
	}
	for _, tc := range tests {
		a := NewAsm("j")
		a.Emit(CmpR, 0, 1)
		a.Jump(tc.op, "taken")
		a.Emit(MovI, 0, 0)
		a.Emit(Ret)
		a.Label("taken")
		a.Emit(MovI, 0, 1)
		a.Emit(Ret)
		tr := run(t, mustBuild(t, a), tc.a, tc.b)
		want := int64(0)
		if tc.taken {
			want = 1
		}
		if tr.Result != want {
			t.Errorf("%v with cmp(%d,%d): result %d, want %d", tc.op, tc.a, tc.b, tr.Result, want)
		}
	}
}

func TestInterpLoop(t *testing.T) {
	// Sum 1..r0.
	p := mustBuild(t, NewAsm("sum").
		Emit(MovI, 4, 0).
		Emit(MovI, 5, 0).
		Label("head").
		Emit(CmpR, 5, 0).
		Jump(Jge, "done").
		Emit(AddI, 5, 1).
		Emit(AddR, 4, 5).
		Jump(Jmp, "head").
		Label("done").
		Emit(MovR, 0, 4).
		Emit(Ret))
	if tr := run(t, p, 10); tr.Result != 55 {
		t.Errorf("sum(10) = %d, want 55", tr.Result)
	}
}

func TestInterpSysTrace(t *testing.T) {
	p := mustBuild(t, NewAsm("tr").
		Emit(MovI, 0, 1).
		Emit(MovI, 1, 2).
		Emit(Sys, 13).
		Emit(AddI, 0, 1).
		Emit(Sys, 14).
		Emit(Ret))
	tr := run(t, p)
	want := []Event{{ID: 13, R0: 1, R1: 2}, {ID: 14, R0: 2, R1: 2}}
	if len(tr.Events) != len(want) {
		t.Fatalf("events = %d, want %d", len(tr.Events), len(want))
	}
	for i, e := range want {
		if tr.Events[i] != e {
			t.Errorf("event %d = %+v, want %+v", i, tr.Events[i], e)
		}
	}
}

func TestInterpInputs(t *testing.T) {
	p := mustBuild(t, NewAsm("in").
		Emit(AddR, 0, 1).
		Emit(AddR, 0, 2).
		Emit(AddR, 0, 3).
		Emit(Ret))
	if tr := run(t, p, 1, 2, 3, 4); tr.Result != 10 {
		t.Errorf("sum of inputs = %d, want 10", tr.Result)
	}
	// Extra inputs beyond r3 are ignored.
	if tr := run(t, p, 1, 2, 3, 4, 100); tr.Result != 10 {
		t.Errorf("extra inputs changed behaviour")
	}
}

func TestInterpStepBudget(t *testing.T) {
	p := mustBuild(t, NewAsm("inf").
		Label("spin").
		Jump(Jmp, "spin").
		Emit(Ret))
	it := &Interp{MaxSteps: 100}
	if _, err := it.Run(p); !errors.Is(err, ErrStepBudget) {
		t.Errorf("Run = %v, want ErrStepBudget", err)
	}
}

func TestInterpInvalidProgram(t *testing.T) {
	it := &Interp{}
	if _, err := it.Run(&Program{}); err == nil {
		t.Error("Run accepted an invalid program")
	}
}

func TestInterpDeterminism(t *testing.T) {
	p := mustBuild(t, NewAsm("det").
		Emit(MovI, 4, 17).
		Emit(MulI, 4, 3).
		Emit(Sys, 1).
		Emit(MovR, 0, 4).
		Emit(Ret))
	a := run(t, p, 5)
	b := run(t, p, 5)
	if !a.Equal(b) {
		t.Error("two runs with identical inputs diverged")
	}
}

func TestTraceEqual(t *testing.T) {
	a := &Trace{Result: 1, Events: []Event{{ID: 1, R0: 2}}}
	b := &Trace{Result: 1, Events: []Event{{ID: 1, R0: 2}}, Steps: 99}
	if !a.Equal(b) {
		t.Error("step counts must not affect equality")
	}
	c := &Trace{Result: 2, Events: []Event{{ID: 1, R0: 2}}}
	if a.Equal(c) {
		t.Error("different results reported equal")
	}
	d := &Trace{Result: 1, Events: []Event{{ID: 1, R0: 3}}}
	if a.Equal(d) {
		t.Error("different events reported equal")
	}
	e := &Trace{Result: 1}
	if a.Equal(e) {
		t.Error("different event counts reported equal")
	}
}
