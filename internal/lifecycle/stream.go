// Package lifecycle closes the serving loop the paper leaves open: the
// detector in production faces a drifting sample distribution (new
// malware variants, fresh obfuscation), so the system continuously
// retrains candidate models on the incoming labeled stream, canary-
// evaluates each candidate against the live model — on clean holdout
// metrics AND on evasion rates under the paper's eight adversarial
// attacks — and hot-swaps the serving core.Handle only when every gate
// passes. A candidate that regresses accuracy, inflates FNR/FPR, or
// becomes easier to evade never reaches traffic.
package lifecycle

import (
	"fmt"

	"advmal/internal/synth"
)

// StreamConfig configures the simulated labeled sample stream.
type StreamConfig struct {
	// Seed drives generation; each window derives its own seed from it,
	// so the stream is deterministic but windows differ.
	Seed int64
	// NumBenign and NumMal size each window. Zero values default to a
	// small retraining window (40 benign / 120 malicious) — enough for
	// the synthetic families to be learnable, small enough to retrain in
	// seconds.
	NumBenign int
	NumMal    int
	// DriftRamp is the per-window increase of obfuscation intensity
	// applied to the malicious fraction, simulating adversaries that
	// mutate families over time. Default 0.1; intensity saturates at 1.
	DriftRamp float64
}

// Stream yields labeled sample windows with ramping family mutation:
// window 0 is the clean distribution, later windows obfuscate an ever-
// larger fraction of each malicious program's eligible sites. Not safe
// for concurrent use; the retraining loop owns it.
type Stream struct {
	cfg    StreamConfig
	window int
}

// NewStream returns a stream over cfg with defaults applied.
func NewStream(cfg StreamConfig) *Stream {
	if cfg.NumBenign <= 0 {
		cfg.NumBenign = 40
	}
	if cfg.NumMal <= 0 {
		cfg.NumMal = 120
	}
	if cfg.DriftRamp <= 0 {
		cfg.DriftRamp = 0.1
	}
	return &Stream{cfg: cfg}
}

// Window reports how many windows have been drawn.
func (s *Stream) Window() int { return s.window }

// Next draws the next labeled window. The malicious fraction is passed
// through the deterministic obfuscation passes with intensity that ramps
// with the window index — the drift the retraining loop exists to chase.
func (s *Stream) Next() ([]*synth.Sample, error) {
	w := s.window
	s.window++
	samples, err := synth.Generate(synth.Config{
		Seed:      s.cfg.Seed + int64(w)*7919,
		NumBenign: s.cfg.NumBenign,
		NumMal:    s.cfg.NumMal,
	})
	if err != nil {
		return nil, fmt.Errorf("lifecycle: window %d: %w", w, err)
	}
	intensity := s.cfg.DriftRamp * float64(w)
	if intensity > 1 {
		intensity = 1
	}
	if intensity <= 0 {
		return samples, nil
	}
	passes := synth.Obfuscations()
	for i, smp := range samples {
		if !smp.Malicious {
			continue
		}
		pass := passes[i%len(passes)]
		mutated, err := synth.Obfuscate(smp.Prog, pass, intensity, s.cfg.Seed+int64(w)*104729+int64(i))
		if err != nil {
			// Obfuscation is best-effort drift simulation: a program the
			// pass cannot transform stays clean rather than killing the
			// window.
			continue
		}
		clone := *smp
		clone.Prog = mutated
		samples[i] = &clone
	}
	return samples, nil
}
